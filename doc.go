// Package repro is a full-stack quantum accelerator in Go, reproducing
// "Quantum Computer Architecture: Towards Full-Stack Quantum
// Accelerators" (Bertels et al., DATE 2020).
//
// The stack spans every layer of the paper: the OpenQL-style programming
// API (internal/openql), the cQASM common assembly (internal/cqasm), the
// compiler with decomposition/optimisation/mapping/scheduling
// (internal/compiler), the eQASM executable ISA (internal/eqasm), the
// micro-architecture with microcode, timing control and queues
// (internal/microarch), and the QX simulator with perfect and realistic
// qubits (internal/qx). On top sit the paper's three accelerators:
// the superconducting control stack (internal/core, internal/rb),
// quantum genome sequencing (internal/genome, internal/qam,
// internal/grover), and hybrid optimisation (internal/tsp, internal/qubo,
// internal/anneal, internal/embed, internal/qaoa).
//
// The benchmark harness in bench_test.go regenerates every figure and
// quantitative claim of the paper; see DESIGN.md for the experiment index
// and EXPERIMENTS.md for paper-vs-measured results.
package repro
