// Package repro is a full-stack quantum accelerator in Go, reproducing
// "Quantum Computer Architecture: Towards Full-Stack Quantum
// Accelerators" (Bertels et al., DATE 2020).
//
// The stack spans every layer of the paper: the OpenQL-style programming
// API (internal/openql), the cQASM common assembly (internal/cqasm), the
// pass-manager compiler (internal/compiler), the eQASM executable ISA
// (internal/eqasm), the micro-architecture with microcode, timing control
// and queues (internal/microarch), and the QX simulator with perfect and
// realistic qubits (internal/qx). On top sit the paper's three
// accelerators: the superconducting control stack (internal/core,
// internal/rb), quantum genome sequencing (internal/genome, internal/qam,
// internal/grover), and hybrid optimisation (internal/tsp, internal/qubo,
// internal/anneal, internal/embed, internal/qaoa).
//
// The hardware layer is described by a first-class device model
// (internal/target): a target.Device unifies qubit count, qubit-plane
// topology, the native gate set with timings, control-channel limits and
// a Calibration table — per-qubit T1/T2 and readout error, per-edge
// two-qubit error. Devices serialise to a canonical JSON schema (golden
// examples under examples/devices/), validate themselves, and carry a
// stable content hash that changes whenever anything — including the
// calibration — changes. The three presets (perfect, superconducting/
// Surface-17, semiconducting) come from target.Preset; compiler.Platform
// is a thin view of a device (compiler.PlatformFor), core stacks are
// built from devices (core.NewStackForDevice, which derives the
// execution noise model from the calibration), and the device hash is
// folded into core.Stack.CompileFingerprint — so re-calibrating a device
// invalidates every compiled artefact cached against the stale table.
// Devices flow through every layer: openql.CompileOptions.Target,
// qserv's GET /backends and per-job "target"/"calibration" overrides,
// and -target/-calibration flags on cmd/qx, cmd/qservd and cmd/openqlc.
//
// The compiler is a configurable pass pipeline rather than a hard-wired
// sequence: compiler.Pass instances (decompose, optimize, map,
// map-noise, lower-swaps, optimize-lowered, fold-rotations, schedule,
// assemble, plus anything registered via compiler.RegisterPass) execute
// over a shared compiler.PassContext under a compiler.Pipeline, which
// records a CompileReport of per-pass wall time, gate count, depth and
// added SWAPs. Pass specs carry per-pass options —
// "map(lookahead=8,strategy=noise)" — parsed up front with
// position-carrying errors, so malformed specs fail at submission, not
// mid-compile. The map-noise pass (equivalently map(strategy=noise))
// weighs placement and routing by calibration edge fidelity instead of
// hop count: it routes around lossy couplers to maximise
// compiler.ExpectedSuccess, and degenerates gate-for-gate to the
// hop-count mapper on uniform calibrations (both differentially tested).
// openql.Program.Compile runs the default pipeline — reproducing the
// classic decompose/optimize/map/schedule flow gate for gate, enforced by
// a differential test — and a pass spec string selects custom pipelines
// end to end: openql.CompileOptions.Passes, core.Stack.Passes (part of
// the compile fingerprint, so the qserv compile cache keys on it),
// per-job "passes" in the qserv API, and -passes flags on cmd/qx,
// cmd/qservd and cmd/openqlc. Per-pass metrics surface in core.Report,
// qserv job views and /stats (with p50/p95/p99 latency percentiles per
// backend and pass), and the CLI pass reports.
//
// Compilation itself is two-level (compiler.Pipeline.Split): the
// platform-generic prefix of a pipeline — the leading decompose/
// optimize/fold-rotations run, whose output depends only on the circuit
// and the native gate set — compiles kernel by kernel, concurrently up
// to a worker budget (openql.CompileOptions.Workers, core.Stack.
// CompileWorkers, -compile-workers on the CLIs) bounded service-wide by
// a shared compiler.WorkerGate, with the per-kernel artefacts
// concatenated deterministically before the variant suffix (mapping,
// scheduling, assembly) runs over the whole program. Kernel boundaries
// are optimisation barriers, so every kernel's prefix artefact
// (compiler.PrefixArtefact) is reusable by any program embedding the
// same kernel. Prefix artefacts cache independently of the full
// compiled artefacts: keyed by gate-set hash + prefix spec + kernel
// content hash (compiler.PrefixKey, openql.Kernel.ContentHash,
// core.Stack.PrefixFingerprint) rather than the device content hash, so
// a recompile that only changes mapping options, scheduling policy or
// calibration re-runs just the suffix — the ≥2x cached-recompile win
// BenchmarkPrefixCachedRecompile measures, locked in by the CI
// benchmark-regression gate (cmd/benchgate against the BENCH_5 baseline
// the workflow promotes between runs as an artifact; machine-local
// baselines from `make bench-baseline` are gitignored).
//
// The execution layer itself is pluggable: internal/qx defines an Engine
// interface — execute a compiled circuit into sampled counts or a final
// state — with three implementations: the naive reference engine, the
// optimized dense engine (specialized bit-twiddling kernels, precompiled
// per-circuit matrix tables, chunk-parallel amplitude application,
// cumulative-distribution sampling), and the stabilizer engine, an
// Aaronson–Gottesman CHP tableau that executes Clifford circuits in
// polynomial time — 100-qubit GHZ sampling and distance-7 surface-code
// ESM rounds in milliseconds, where dense cost doubles per qubit
// (counts beyond 63 qubits are keyed by bitstring in
// qx.Result.WideCounts). The default "auto" meta-engine dispatches per
// circuit: circuit.IsClifford (structural Clifford gates plus any
// rotation at an exact multiple of π/2) and a tableau-compatible noise
// model (stochastic Pauli; amplitude damping forces the dense path)
// select the tableau, everything else runs dense. All engines are
// differentially tested to produce identical seeded counts — the
// stabilizer engine mirrors the dense PRNG walk draw for draw — and
// engine selection threads through every layer: core.Stack.Engine (part
// of the compiled-circuit fingerprint; core.Report.Engine names the
// resolved dispatch target), microarch (any engine-backed simulator),
// per-job engine choice in qserv (the resolved engine surfaces in job
// views, execution spans and qserv_engine_dispatch_total), and -engine
// flags on cmd/qx and cmd/qservd. The fast path lifts the QEC and RB
// layers to the regimes the paper argues for: circuit-level syndrome
// extraction at distance ≥ 7 (internal/qec, examples/surface_code) and
// simultaneous randomized benchmarking on 50+ qubits (internal/rb). A
// CI benchmark (BenchmarkStabilizerVsDense) holds the 22-qubit Clifford
// speedup above 100x through the stabilizer_vs_dense_pct ceiling gate.
// Large shot counts fan out across CPU cores in parallel shot batches
// (qx.Simulator.RunParallel, core.Stack.ParallelShots,
// microarch.Machine.ShotWorkers).
//
// Above the single-caller stack sits the concurrent accelerator service
// (internal/qserv): a bounded job queue feeding per-backend worker pools
// over the heterogeneous accelerators of Fig 1 — the gate-based stacks,
// the annealer and the classical fallback (internal/accel) — with the
// shared two-level compile cache: a full-artefact LRU so exact
// resubmissions skip compilation entirely, and a prefix-artefact LRU so
// map/schedule/calibration variants of known kernels recompile
// suffix-only (both singleflight-deduplicated; /stats reports both hit
// rates and per-backend prefix_hits). Backends support live
// re-calibration (PUT /backends/{name}/calibration) that atomically
// swaps the device's calibration table and rotates the compile-cache
// keys through the device hash. cmd/qservd serves it over HTTP
// (/submit, /jobs/{id}, /stats) and examples/service drives the API end
// to end; this is the host-side runtime that turns the reproduction into
// a multi-tenant system.
//
// The service is observable end to end through internal/obs, a
// dependency-free metrics registry and span tracer. Every job carries a
// trace (ID = job ID) whose spans cover queue wait, compile — cache
// outcome, per-kernel prefix compiles, per-pass suffix timings from the
// CompileReport — and execution down to the engine's shot batches;
// GET /jobs/{id}/trace returns the span tree and span durations sum to
// the job's reported latency exactly. The same registry backs
// GET /metrics (Prometheus text exposition: job counters, per-backend
// latency and queue-wait histograms, both compile-cache levels,
// per-pass compile timings, HTTP request metrics) and GET /stats, which
// is now a thin view over it. Structured slog logging is keyed by
// trace_id, and cmd/qservd exposes net/http/pprof behind -pprof. A CI
// benchmark (BenchmarkObsOverhead) holds the instrumentation overhead
// under 5% through the cmd/benchgate ceiling gate.
//
// Compilation is parametric end to end. Circuits may carry symbolic
// angle expressions (circuit.Sym / circuit.ParamExpr — normalised
// linear forms over named parameters) that survive every compiler pass
// — decomposition scales them, the peephole optimiser folds them,
// mapping, scheduling and eQASM assembly carry them through — into the
// compiled artefact, which records a bind table of every symbolic slot
// in the final circuit and the assembled bundles. Binding a parameter
// point (openql.Compiled.BindArtefact, or circuit.Circuit.Bind before
// compilation) is an O(#slots) patch that shares the schedule, mapping
// result and compile report with the symbolic artefact — no pass
// re-runs — and kernel content hashes treat expressions symbolically,
// so every binding of one ansatz shares a single entry in both
// compile-cache levels. internal/qserv exposes this as variational
// sessions: POST /sessions compiles the parameterised program once and
// pins the artefact (TTL-expired and LRU-bounded), POST
// /sessions/{id}/bind streams parameter points as cheap sub-jobs whose
// traces carry a "bind" span where ordinary jobs record "compile".
// examples/hybrid_qaoa and examples/tsp drive optimiser loops through
// the session API, and BenchmarkParamBindVsRecompile holds the bind
// path at ≥10x over full recompilation through the CI
// bind_vs_compile_pct ceiling.
//
// The benchmark harness in bench_test.go regenerates every figure and
// quantitative claim of the paper; see DESIGN.md for the experiment index
// and EXPERIMENTS.md for paper-vs-measured results.
package repro
