// Service example: the accelerator-as-a-service loop end to end. A qserv
// instance is started in-process on a loopback port, then driven purely
// over its HTTP API the way a remote classical host would: submit gate
// jobs (cQASM text) to heterogeneous backends and a QUBO to the annealer,
// long-poll for results, resubmit to demonstrate the compiled-circuit
// cache, and read back /stats.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/internal/qserv"
)

const bell = `version 1.0
qubits 2
.bell
h q[0]
cnot q[0], q[1]
measure q[0]
measure q[1]
`

const ghz = `version 1.0
qubits 3
.ghz
h q[0]
cnot q[0], q[1]
cnot q[1], q[2]
measure q[0]
measure q[1]
measure q[2]
`

func main() {
	// Server side: the default Fig 1 system behind the HTTP API.
	svc := qserv.DefaultService(qserv.Config{Seed: 42}, 8, 2)
	svc.Start()
	defer svc.Stop()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, svc.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("qserv listening on %s\n\n", base)

	// Client side: everything below uses only net/http + JSON.
	submit := func(req qserv.SubmitRequest) string {
		body, _ := json.Marshal(req)
		resp, err := http.Post(base+"/submit", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var sr qserv.SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			log.Fatalf("submit rejected: %d", resp.StatusCode)
		}
		fmt.Printf("submitted %-7s → backend %-15s (%s)\n", req.Name, sr.Backend, sr.ID)
		return sr.ID
	}
	await := func(id string) qserv.JobView {
		resp, err := http.Get(base + "/jobs/" + id + "?wait=30s")
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var jv qserv.JobView
		if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
			log.Fatal(err)
		}
		if jv.Status != qserv.StatusDone {
			log.Fatalf("job %s: status %s, error %q", id, jv.Status, jv.Error)
		}
		return jv
	}

	// 1. The same Bell circuit on perfect and realistic backends.
	ids := []string{
		submit(qserv.SubmitRequest{Name: "bell", CQASM: bell, Backend: "perfect", Shots: 1024}),
		submit(qserv.SubmitRequest{Name: "bell", CQASM: bell, Backend: "superconducting", Shots: 1024}),
		submit(qserv.SubmitRequest{Name: "ghz", CQASM: ghz, Backend: "perfect", Shots: 1024}),
	}
	// 2. A QUBO for the annealer: minimum at x = (1,1,0), energy -2.
	ids = append(ids, submit(qserv.SubmitRequest{
		Name:    "qubo",
		Backend: "annealer",
		QUBO: &qserv.QUBOJSON{N: 3, Terms: []qserv.QUBOTerm{
			{I: 0, J: 0, V: -1}, {I: 1, J: 1, V: -1}, {I: 0, J: 2, V: 2},
		}},
	}))

	fmt.Println()
	for _, id := range ids {
		jv := await(id)
		switch {
		case jv.Result.Counts != nil:
			fmt.Printf("%-7s on %-15s %5.1f ms  wall %6d ns  counts %v\n",
				jv.Name, jv.Backend, jv.ElapsedMs, jv.Result.WallNs, jv.Result.Counts)
		case jv.Result.Energy != nil:
			fmt.Printf("%-7s on %-15s %5.1f ms  bits %v  energy %v\n",
				jv.Name, jv.Backend, jv.ElapsedMs, jv.Result.Bits, *jv.Result.Energy)
		}
	}

	// 3. Resubmit the Bell circuit: the compile pipeline is skipped.
	fmt.Println()
	rerun := await(submit(qserv.SubmitRequest{Name: "bell", CQASM: bell, Backend: "perfect", Shots: 1024}))
	fmt.Printf("resubmission cache hit: %v (%.1f ms)\n", rerun.CacheHit, rerun.ElapsedMs)

	// 4. Operator view.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st qserv.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/stats: %d submitted, %d done, queue %d/%d, cache hit rate %.0f%%\n",
		st.JobsSubmitted, st.JobsDone, st.QueueDepth, st.QueueCap, 100*st.CacheHitRate)
	for _, b := range st.Backends {
		if b.JobsDone == 0 {
			continue
		}
		fmt.Printf("  %-15s %d jobs, %.1f jobs/s, busy %.1f ms\n",
			b.Name, b.JobsDone, b.JobsPerSec, b.BusyMs)
	}
}
