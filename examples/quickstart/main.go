// Quickstart: the full stack in one page. An OpenQL program is compiled
// to cQASM, executed on perfect qubits (application development mode,
// Fig 2b) and then on the realistic superconducting stack through eQASM
// and the micro-architecture (Fig 2a) — the paper's two directions over
// one toolchain.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/openql"
)

func main() {
	// 1. Write the application's quantum logic in the OpenQL layer.
	program := openql.NewProgram("bell", 2)
	kernel := openql.NewKernel("entangle", 2)
	kernel.H(0).CNOT(0, 1).Measure(0).Measure(1)
	program.AddKernel(kernel)

	fmt.Println("=== cQASM (the common assembly of the stack) ===")
	fmt.Println(program.CQASM())

	// 2. Perfect qubits: verify the algorithm's logic (Fig 2b).
	perfect := core.NewPerfect(2, 42)
	rep, err := perfect.Execute(program, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Perfect qubits (QX simulator) ===")
	fmt.Print(rep.Result.Histogram())

	// 3. Realistic qubits: the same program through the experimental
	// stack — compiler → eQASM → micro-architecture → noisy QX (Fig 2a).
	sc := core.NewSuperconducting(42)
	rep2, err := sc.Execute(program, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Realistic qubits (superconducting stack) ===")
	fmt.Print(rep2.Result.Histogram())
	fmt.Printf("mapping: %d SWAPs inserted (Surface-17 NN constraint)\n", rep2.Mapping.AddedSwaps)
	fmt.Printf("timing: %d ns per shot, %d pulses\n", rep2.Trace.TotalNs, len(rep2.Trace.Pulses))
	fmt.Println("\n=== eQASM (executable assembly) ===")
	fmt.Println(rep2.EQASM)
}
