// Superconducting example: the experimental control stack of §3.1/Fig 6.
// Randomised-benchmarking sequences written in the OpenQL layer are
// compiled to cQASM, lowered to eQASM, and executed by the
// micro-architecture with nanosecond timing on realistic qubits; the
// survival-probability decay yields the error per Clifford. The same
// eQASM is then retargeted to the semiconducting microcode by swapping
// one configuration, as the paper demonstrates.
package main

import (
	"fmt"
	"log"

	"repro/internal/compiler"
	"repro/internal/eqasm"
	"repro/internal/microarch"
	"repro/internal/qx"
	"repro/internal/rb"
)

func main() {
	// 1. Randomised benchmarking on realistic qubits (the experiment the
	// paper's stack ran).
	noisy := qx.NewNoisy(3, qx.Depolarizing(0.004))
	lengths := []int{1, 4, 8, 16, 32, 64}
	points, err := rb.Run(noisy, lengths, 6, 200, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("randomised benchmarking (depolarizing p=0.004):")
	for _, p := range points {
		bar := ""
		for i := 0; i < int(p.Survival*40); i++ {
			bar += "#"
		}
		fmt.Printf("  m=%3d survival %.3f %s\n", p.M, p.Survival, bar)
	}
	f, r := rb.Fit(points)
	fmt.Printf("decay fit: f=%.4f → error per Clifford r=%.4f\n\n", f, r)

	// 2. One RB sequence end-to-end: OpenQL gates → schedule → eQASM →
	// micro-architecture pulses.
	group := rb.Group()
	seqCircuit, err := rb.Sequence(group, 8, noisy.Rand())
	if err != nil {
		log.Fatal(err)
	}
	platform := compiler.Superconducting()
	dec, err := compiler.Decompose(seqCircuit, platform)
	if err != nil {
		log.Fatal(err)
	}
	dec = compiler.Optimize(dec)
	sched, err := compiler.ScheduleCircuit(dec, platform, compiler.ASAP)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := eqasm.Assemble(sched, platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("m=8 RB sequence: %d gates → %d cycles → eQASM:\n%s\n",
		len(sched.Gates), sched.Makespan, prog.String())

	// 3. Execute on both microcode configurations — retargeting via
	// config only (§3.1).
	for _, cfg := range []*microarch.Config{
		microarch.SuperconductingConfig(),
		microarch.SemiconductingConfig(),
	} {
		machine := microarch.New(cfg, qx.New(5))
		report, err := machine.Execute(prog, 256)
		if err != nil {
			log.Fatal(err)
		}
		tr := report.Trace
		fmt.Printf("%-16s %4d pulses, %6d ns, mw util %.1f%%, survival %.3f\n",
			cfg.Name+":", len(tr.Pulses), tr.TotalNs,
			100*tr.Utilization(microarch.ChannelMicrowave),
			report.Result.Probability(0))
	}
}
