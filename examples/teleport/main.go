// Teleportation example: the classical decision constructs of §2.4 —
// quantum logic "encapsulated by classical language structures". A
// payload qubit is teleported with mid-circuit measurement and
// feed-forward corrections, written directly in cQASM with the c-x/c-z
// conditional syntax, parsed and executed on QX.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/algo"
	"repro/internal/circuit"
	"repro/internal/cqasm"
	"repro/internal/qx"
)

const teleportSource = `
version 1.0
# teleport the payload on q[0] to q[2]
qubits 3

.prepare
    ry q[0], 0.927295218001612    # P(1) = sin^2(theta/2) = 0.2

.entangle
    h q[1]
    cnot q[1], q[2]

.bell_measure
    cnot q[0], q[1]
    h q[0]
    measure q[0]
    measure q[1]

.correct
    c-x b[1], q[2]
    c-z b[0], q[2]

.readout
    measure q[2]
`

func main() {
	// Path 1: hand-written cQASM with conditional gates.
	c, err := cqasm.ParseToCircuit(teleportSource)
	if err != nil {
		log.Fatal(err)
	}
	sim := qx.New(42)
	res, err := sim.Run(c, 10000)
	if err != nil {
		log.Fatal(err)
	}
	ones := 0
	for idx, count := range res.Counts {
		if idx&(1<<2) != 0 {
			ones += count
		}
	}
	fmt.Printf("cQASM teleport: Bob measures P(1) = %.3f (payload prepared with 0.200)\n",
		float64(ones)/10000)

	// Path 2: the algo package builder, sweeping payload angles.
	fmt.Println("\npayload sweep (builder API):")
	for _, p := range []float64{0.0, 0.25, 0.5, 0.75, 1.0} {
		theta := 2 * math.Asin(math.Sqrt(p))
		tele := algo.Teleport(func(c *circuit.Circuit) { c.RY(0, theta) })
		tele.Measure(2)
		r, err := qx.New(7).Run(tele, 10000)
		if err != nil {
			log.Fatal(err)
		}
		got := 0
		for idx, count := range r.Counts {
			if idx&(1<<2) != 0 {
				got += count
			}
		}
		fmt.Printf("  prepared P(1)=%.2f → teleported P(1)=%.3f\n", p, float64(got)/10000)
	}

	// Show the round trip: the parsed circuit printed back as cQASM.
	fmt.Println("\ncanonical cQASM of the teleport circuit:")
	fmt.Println(cqasm.PrintCircuit(c))
}
