// Hybrid QAOA example: the Fig 8 execution model. The classical host
// offloads quantum kernels to a registered accelerator fleet; a
// variational loop alternates between the classical optimiser and the
// gate-based quantum accelerator; the same QUBO also goes to the
// annealing accelerator for comparison — "the choice of the quantum
// accelerator is dependent on the specific energy landscape of the
// application".
//
// The gate-based loop runs through the service's variational session
// API: the parameterised ansatz compiles ONCE (symbolic angles survive
// the full pipeline), and every optimiser iteration streams a parameter
// binding that patches the pinned artefact instead of recompiling —
// the per-iteration compile cost drops from the full pipeline to an
// O(#symbols) bind, as the printed timings show.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/accel"
	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/openql"
	"repro/internal/optimize"
	"repro/internal/qaoa"
	"repro/internal/qserv"
	"repro/internal/qubo"
)

// phaseNs digs one phase span's duration out of a finished job's trace.
func phaseNs(j *qserv.Job, phase string) int64 {
	tr := j.Trace()
	if tr == nil {
		return 0
	}
	var find func(v *obs.SpanView) int64
	find = func(v *obs.SpanView) int64 {
		if v.Name == phase {
			return v.DurationNs
		}
		for _, c := range v.Children {
			if ns := find(c); ns > 0 {
				return ns
			}
		}
		return 0
	}
	return find(tr.View().Root)
}

func main() {
	// A frustrated 6-spin ring with fields: small enough to verify
	// exactly, hard enough to need more than a greedy guess.
	q := qubo.New(6)
	for i := 0; i < 6; i++ {
		q.Set(i, i, -1)
		q.Set(i, (i+1)%6, 2.2)
	}
	xOpt, eOpt := q.BruteForce()
	fmt.Printf("exact optimum: %v energy %.3f\n\n", xOpt, eOpt)

	// Heterogeneous system of Fig 1: host + accelerators.
	host := accel.NewHost()
	host.Register(&accel.AnnealAccelerator{SQA: anneal.SQAOptions{Seed: 9, Sweeps: 1200}})
	host.Register(&accel.AnnealAccelerator{Digital: true, DA: anneal.DigitalAnnealerOptions{Seed: 9, Steps: 8000}})
	fmt.Printf("registered accelerators: %v\n\n", host.Accelerators())

	// Path 1: annealing accelerator.
	out, err := host.Offload(accel.AnnealTask{Q: q})
	if err != nil {
		log.Fatal(err)
	}
	annealRes := out.(*anneal.Result)
	fmt.Printf("quantum annealer:  bits %v energy %.3f\n\n", annealRes.Bits, annealRes.Energy)

	// Path 2: gate-based accelerator behind the microservice, driven
	// through a variational session. The depth-3 ansatz keeps its six
	// symbolic angles through the whole compile pipeline.
	problem := qaoa.FromQUBO(q)
	const layers = 3

	svc := qserv.New(qserv.Config{Seed: 9})
	svc.AddBackend(qserv.NewStackBackend(core.NewPerfect(6, 9)), 2)
	svc.Start()
	defer svc.Stop()

	ansatz, err := problem.BuildParametricCircuit(layers)
	if err != nil {
		log.Fatal(err)
	}
	openStart := time.Now()
	sess, err := svc.OpenSession(qserv.Request{
		Name:    "qaoa-ansatz",
		Program: openql.ProgramFromCircuit("qaoa-ansatz", ansatz),
		Shots:   1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	compileOnce := time.Since(openStart)
	fmt.Printf("session %s: ansatz compiled once in %v, symbols %v\n",
		sess.ID, compileOnce.Round(time.Microsecond), sess.Symbols())

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	model := problem.Model
	energyOf := func(counts map[int]int, shots int) float64 {
		spins := make([]int, model.N)
		var e float64
		for idx, n := range counts {
			for i := range spins {
				if idx&(1<<uint(i)) != 0 {
					spins[i] = 1
				} else {
					spins[i] = -1
				}
			}
			e += float64(n) * model.Energy(spins)
		}
		return e / float64(shots)
	}

	// SPSA over (γ, β): every energy evaluation is one bind sub-job
	// against the pinned artefact. Every 20th iteration also submits the
	// equivalently bound literal circuit as an ordinary job — a fresh
	// program that compiles the full pipeline — to show what each
	// iteration would cost without the session.
	var (
		iter        int
		bindNsTotal int64
		bestBind    *qserv.Job
		bestE       = math.Inf(1)
	)
	objective := func(x []float64) float64 {
		gammas, betas := x[:layers], x[layers:]
		vals, err := qaoa.BindValues(gammas, betas)
		if err != nil {
			log.Fatal(err)
		}
		job, err := svc.BindSession(sess.ID, qserv.BindRequest{Values: vals})
		if err != nil {
			log.Fatal(err)
		}
		if err := job.Wait(ctx); err != nil {
			log.Fatal(err)
		}
		res := job.Result().Report.Result
		e := energyOf(res.Counts, res.Shots)
		iter++
		bindNs := phaseNs(job, "bind")
		bindNsTotal += bindNs
		if e < bestE {
			bestE, bestBind = e, job
		}
		if iter%20 == 0 {
			lit, err := problem.BuildCircuit(gammas, betas)
			if err != nil {
				log.Fatal(err)
			}
			ref, err := svc.Submit(qserv.Request{
				Program: openql.ProgramFromCircuit(fmt.Sprintf("lit-%d", iter), lit),
				Shots:   1,
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := ref.Wait(ctx); err != nil {
				log.Fatal(err)
			}
			compileNs := phaseNs(ref, "compile")
			speedup := float64(compileNs) / math.Max(float64(bindNs), 1)
			fmt.Printf("  iter %3d: energy %+.3f  bind %8v vs recompile %8v (%.0fx)\n",
				iter, e,
				time.Duration(bindNs).Round(100*time.Nanosecond),
				time.Duration(compileNs).Round(100*time.Nanosecond), speedup)
		}
		return e
	}
	opt := optimize.SPSA(objective, make([]float64, 2*layers),
		optimize.SPSAOptions{Iterations: 60, Seed: 9})

	// Read out: best assignment seen across the best bind's samples.
	res := bestBind.Result().Report.Result
	bestBits, bestBitsE := make([]int, model.N), math.Inf(1)
	spins := make([]int, model.N)
	for idx := range res.Counts {
		for i := range spins {
			if idx&(1<<uint(i)) != 0 {
				spins[i] = 1
			} else {
				spins[i] = -1
			}
		}
		if e := model.Energy(spins); e < bestBitsE {
			bestBitsE = e
			copy(bestBits, qubo.SpinsToBits(spins))
		}
	}
	st := svc.Stats()
	fmt.Printf("\nQAOA p=%d via session: bits %v energy %.3f (expectation %.3f, %d evaluations)\n",
		layers, bestBits, q.Energy(bestBits), opt.Value, iter)
	fmt.Printf("session totals: %d binds, avg bind %v — vs one full compile %v\n",
		st.Sessions.Binds, time.Duration(bindNsTotal/int64(iter)).Round(100*time.Nanosecond),
		compileOnce.Round(time.Microsecond))

	// Both accelerators must agree with the exact optimum on this size.
	if q.Energy(annealRes.Bits) != eOpt {
		fmt.Println("note: annealer missed the optimum on this run")
	}
	if q.Energy(bestBits) != eOpt {
		fmt.Println("note: QAOA missed the optimum on this run")
	}
}
