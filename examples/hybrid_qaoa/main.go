// Hybrid QAOA example: the Fig 8 execution model. The classical host
// offloads quantum kernels to a registered accelerator fleet; a
// variational loop alternates between the classical optimiser and the
// gate-based quantum accelerator; the same QUBO also goes to the
// annealing accelerator for comparison — "the choice of the quantum
// accelerator is dependent on the specific energy landscape of the
// application".
package main

import (
	"fmt"
	"log"

	"repro/internal/accel"
	"repro/internal/anneal"
	"repro/internal/qaoa"
	"repro/internal/qubo"
	"repro/internal/qx"
)

func main() {
	// A frustrated 6-spin ring with fields: small enough to verify
	// exactly, hard enough to need more than a greedy guess.
	q := qubo.New(6)
	for i := 0; i < 6; i++ {
		q.Set(i, i, -1)
		q.Set(i, (i+1)%6, 2.2)
	}
	xOpt, eOpt := q.BruteForce()
	fmt.Printf("exact optimum: %v energy %.3f\n\n", xOpt, eOpt)

	// Heterogeneous system of Fig 1: host + accelerators.
	host := accel.NewHost()
	host.Register(&accel.AnnealAccelerator{SQA: anneal.SQAOptions{Seed: 9, Sweeps: 1200}})
	host.Register(&accel.AnnealAccelerator{Digital: true, DA: anneal.DigitalAnnealerOptions{Seed: 9, Steps: 8000}})
	fmt.Printf("registered accelerators: %v\n\n", host.Accelerators())

	// Path 1: annealing accelerator.
	out, err := host.Offload(accel.AnnealTask{Q: q})
	if err != nil {
		log.Fatal(err)
	}
	annealRes := out.(*anneal.Result)
	fmt.Printf("quantum annealer:  bits %v energy %.3f\n", annealRes.Bits, annealRes.Energy)

	// Path 2: gate-based accelerator with the hybrid variational loop —
	// shallow parameterised circuits iterated while the classical
	// optimiser (Nelder–Mead over (γ, β)) refines the parameters.
	problem := qaoa.FromQUBO(q)
	sim := qx.New(9)
	res, err := qaoa.Solve(problem, sim, qaoa.Options{Layers: 3, Seed: 9, MaxIter: 200})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QAOA p=3:          bits %v energy %.3f (expectation %.3f, %d circuit evaluations)\n",
		res.BestBits, q.Energy(res.BestBits), res.Energy, res.Evaluations)

	// Both accelerators must agree with the exact optimum on this size.
	if q.Energy(annealRes.Bits) != eOpt {
		fmt.Println("note: annealer missed the optimum on this run")
	}
	if q.Energy(res.BestBits) != eOpt {
		fmt.Println("note: QAOA missed the optimum on this run")
	}

	// Shot-based loop: the statistical aggregation a real accelerator
	// performs (sampled expectation instead of the exact state).
	sampled, err := qaoa.Solve(problem, qx.New(10), qaoa.Options{Layers: 1, Seed: 10, Shots: 512, MaxIter: 60, UseSPSA: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QAOA p=1 sampled:  bits %v energy %.3f (SPSA over 512-shot estimates)\n",
		sampled.BestBits, q.Energy(sampled.BestBits))
}
