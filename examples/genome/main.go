// Genome example: the quantum genome sequencing accelerator of §3.2 and
// Fig 7. Artificial DNA with biological base statistics is sliced into a
// quantum associative memory; noisy reads are aligned by amplitude
// amplification of the nearest match, against classical naive and k-mer
// baselines, and run through the QGS micro-architecture pipeline.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/grover"
	"repro/internal/openql"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// 1. Artificial DNA preserving biological statistics (§3.2: reduced
	// size, same statistical/entropic complexity).
	ref := genome.GenerateDNA(60, rng)
	fmt.Printf("reference: %s\n", ref)
	fmt.Printf("GC content %.2f, base entropy %.3f bits\n\n",
		genome.GCContent(ref), genome.BaseEntropy(ref))

	// 2. Build the quantum aligner: indexed slices in a QAM.
	aligner, err := genome.NewQuantumAligner(ref, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QAM register: %d index + %d data = %d qubits for %d slices\n",
		aligner.IndexBits, aligner.DataBits, aligner.IndexBits+aligner.DataBits, len(ref)-4+1)

	// 3. Align noisy reads; compare with classical baselines.
	idx := genome.BuildIndex(ref, 2)
	reads := genome.SampleReads(ref, 4, 6, 0.05, rng)
	for i, r := range reads {
		naive := genome.NaiveAlign(ref, r.Seq)
		indexed := idx.Align(r.Seq)
		q, err := aligner.Align(r.Seq, 1)
		if err != nil {
			fmt.Printf("read %d %s: no quantum match (%v)\n", i, r.Seq, err)
			continue
		}
		fmt.Printf("read %d %s (origin %2d): naive %2d | index %2d | quantum %2d (P=%.2f, %d iters)\n",
			i, r.Seq, r.Origin, naive.Position, indexed.Position, q.Position, q.SuccessProb, q.Iterations)
	}

	// 4. The Grover primitive at circuit level through the full stack —
	// the search kernel the aligner relies on, compiled and executed on
	// the perfect-qubit stack (Fig 7's QX back end).
	c, err := grover.BuildCircuit(3, 5, 0)
	if err != nil {
		log.Fatal(err)
	}
	prog := openql.NewProgram("grover3", 3)
	k := openql.NewKernel("search", 3)
	for _, g := range c.Gates {
		k.Gate(g.Name, g.Qubits, g.Params...)
	}
	k.MeasureAll()
	prog.AddKernel(k)
	rep, err := core.NewPerfect(3, 11).Execute(prog, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGrover search |101> through the full stack:")
	fmt.Print(rep.Result.Histogram())

	// 5. Scale model.
	fmt.Printf("\nhuman-genome scale: ≈%d logical qubits (paper §2.3: ≈150)\n",
		genome.LogicalQubitEstimate(3_100_000_000, 50))
	fmt.Printf("classical slice table: %d bits vs %d-qubit QAM register\n",
		genome.ClassicalMemoryBits(1<<20, 16), genome.LogicalQubitEstimate(1<<20, 16))
}
