// Surface-code example: circuit-level error-syndrome measurement on the
// stabilizer tableau engine — the regime the Clifford fast path opens.
// A skewed device calibration (a few "hot" qubits an order of magnitude
// worse than the rest) is folded into a stochastic Pauli noise model,
// and one ESM round of the rotated planar code is Monte-Carlo'd at
// distances 3, 5 and 7. Distance 7 needs 73 simulated qubits (49 data +
// 24 Z-ancillas) — far beyond any dense state-vector budget, yet the
// tableau engine runs thousands of shots in milliseconds. The logical
// error rate falling with distance (below threshold) is the paper's
// §2.1 argument for why ESM dominates a fault-tolerant machine's
// workload.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/qec"
	"repro/internal/qx"
	"repro/internal/target"
)

func main() {
	// Two calibration scenarios for a 17-qubit device: the nominal table
	// everywhere at 2% single-qubit error, and a skewed one where three
	// hot qubits degrade to 12% — the averaged physical error rate the
	// noise model derives is what the code has to fight.
	const n = 17
	nominal := target.Perfect(n)
	nominal.Calibration = target.Uniform(n, nil, target.QubitCalibration{SingleQubitError: 0.02}, 0)

	skewed := target.Perfect(n)
	skewed.Calibration = target.Uniform(n, nil, target.QubitCalibration{SingleQubitError: 0.02}, 0)
	for _, hot := range []int{2, 9, 14} {
		skewed.Calibration.Qubits[hot].SingleQubitError = 0.12
	}

	scenarios := []struct {
		name string
		dev  *target.Device
	}{{"nominal", nominal}, {"skewed", skewed}}

	fmt.Println("circuit-level surface-code ESM on the stabilizer engine")
	fmt.Println("logical X error rate per round (8000 shots):")
	fmt.Printf("%-10s %-8s %-8s %-10s\n", "scenario", "p_phys", "distance", "p_logical")
	for _, sc := range scenarios {
		noise := core.NoiseFromDevice(sc.dev)
		if noise == nil {
			log.Fatal("no noise model derived from calibration")
		}
		p := noise.DepolarizingProb
		for _, d := range []int{3, 5, 7} {
			code, err := qec.NewSurfaceCode(d)
			if err != nil {
				log.Fatal(err)
			}
			rate, err := code.CircuitLogicalErrorRate(qx.Stabilizer(), p, 8000, int64(10*d))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-8.4f d=%-6d %-10.5f (%d qubits simulated)\n",
				sc.name, p, d, rate, code.CycleCircuit().NumQubits)
		}
	}

	// The auto meta-engine makes the same choice without being told: the
	// ESM circuit is pure Clifford and the derived noise is stochastic
	// Pauli, so dispatch lands on the tableau.
	code, _ := qec.NewSurfaceCode(7)
	noise := core.NoiseFromDevice(skewed)
	if d, ok := qx.Auto().(qx.Dispatcher); ok {
		eng := d.Dispatch(code.CycleCircuit(), noise)
		fmt.Printf("\nauto-dispatch for the d=7 ESM round: %s\n", eng.Name())
	}
}
