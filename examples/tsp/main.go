// TSP example: reproduces Fig 9 — the 4-city Netherlands route-planning
// instance reduced to a 16-variable QUBO and solved on every accelerator
// model the paper discusses: exact enumeration, simulated annealing,
// path-integral simulated quantum annealing (D-Wave-style), the
// fully-connected digital annealer (Fujitsu-style), and gate-based QAOA,
// plus the Chimera embedding overhead and the 9-vs-90-city capacity
// argument.
package main

import (
	"fmt"
	"log"

	"repro/internal/anneal"
	"repro/internal/embed"
	"repro/internal/qaoa"
	"repro/internal/qx"
	"repro/internal/tsp"
)

func main() {
	g := tsp.Netherlands4()
	fmt.Println("Fig 9: four Dutch cities, scaled Euclidean distances")
	for i, name := range g.Names {
		fmt.Printf("  %d: %s\n", i, name)
	}

	// Reference: enumerate all tours.
	tour, cost := g.BruteForce()
	fmt.Printf("\nexact optimum: %v cost %.2f (paper: 1.42)\n", tour, cost)

	// QUBO reduction: N² = 16 binary variables x_{c,t}.
	enc := tsp.Encode(g, 0)
	fmt.Printf("QUBO: %d variables, %d interactions\n", enc.NumQubits(), enc.Q.NumInteractions())

	show := func(name string, bits []int) {
		t, err := enc.Decode(bits)
		if err != nil {
			fmt.Printf("%-28s infeasible: %v\n", name, err)
			return
		}
		fmt.Printf("%-28s tour %v cost %.2f\n", name, t, g.TourCost(t))
	}

	sa := anneal.SolveQUBO(enc.Q, anneal.SAOptions{Sweeps: 2000, Restarts: 8, Seed: 7})
	show("simulated annealing:", sa.Bits)

	sqa := anneal.SolveQUBOQuantum(enc.Q, anneal.SQAOptions{Sweeps: 1500, Trotter: 8, Restarts: 6, Seed: 7})
	show("simulated quantum annealing:", sqa.Bits)

	da := anneal.DigitalAnneal(enc.Q, anneal.DigitalAnnealerOptions{Steps: 30000, Seed: 7})
	show("digital annealer:", da.Bits)

	// Gate-based accelerator: QAOA over the 16-qubit register.
	problem := qaoa.FromQUBO(enc.Q)
	res, err := qaoa.Solve(problem, qx.New(7), qaoa.Options{Layers: 2, Seed: 7, MaxIter: 60, GridSeeds: 4})
	if err != nil {
		log.Fatal(err)
	}
	show("QAOA p=2 (best sample):", res.BestBits)

	// Hardware capacity: the paper's embedding argument.
	adj := enc.Q.InteractionGraph()
	e, err := embed.AutoEmbedChimera(adj, 16, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nD-Wave 2000Q-style embedding: 16 logical → %d physical qubits (max chain %d)\n",
		e.PhysicalQubits(), e.MaxChainLength())
	cap2000q := embed.CliqueCapacityChimera(16, 4)
	fmt.Printf("clique capacity C(16,16,4): %d variables → max %d cities (paper: 9)\n",
		cap2000q, tsp.MaxCitiesForQubits(cap2000q))
	fmt.Printf("fully-connected 8192-node digital annealer → max %d cities (paper: 90)\n",
		tsp.MaxCitiesForQubits(8192))
}
