// TSP example: reproduces Fig 9 — the 4-city Netherlands route-planning
// instance reduced to a 16-variable QUBO and solved on every accelerator
// model the paper discusses: exact enumeration, simulated annealing,
// path-integral simulated quantum annealing (D-Wave-style), the
// fully-connected digital annealer (Fujitsu-style), and gate-based QAOA,
// plus the Chimera embedding overhead and the 9-vs-90-city capacity
// argument.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/obs"
	"repro/internal/openql"
	"repro/internal/qaoa"
	"repro/internal/qserv"
	"repro/internal/qubo"
	"repro/internal/tsp"
)

// phaseNs digs one phase span's duration out of a finished job's trace.
func phaseNs(j *qserv.Job, phase string) int64 {
	tr := j.Trace()
	if tr == nil {
		return 0
	}
	var find func(v *obs.SpanView) int64
	find = func(v *obs.SpanView) int64 {
		if v.Name == phase {
			return v.DurationNs
		}
		for _, c := range v.Children {
			if ns := find(c); ns > 0 {
				return ns
			}
		}
		return 0
	}
	return find(tr.View().Root)
}

func main() {
	g := tsp.Netherlands4()
	fmt.Println("Fig 9: four Dutch cities, scaled Euclidean distances")
	for i, name := range g.Names {
		fmt.Printf("  %d: %s\n", i, name)
	}

	// Reference: enumerate all tours.
	tour, cost := g.BruteForce()
	fmt.Printf("\nexact optimum: %v cost %.2f (paper: 1.42)\n", tour, cost)

	// QUBO reduction: N² = 16 binary variables x_{c,t}.
	enc := tsp.Encode(g, 0)
	fmt.Printf("QUBO: %d variables, %d interactions\n", enc.NumQubits(), enc.Q.NumInteractions())

	show := func(name string, bits []int) {
		t, err := enc.Decode(bits)
		if err != nil {
			fmt.Printf("%-28s infeasible: %v\n", name, err)
			return
		}
		fmt.Printf("%-28s tour %v cost %.2f\n", name, t, g.TourCost(t))
	}

	sa := anneal.SolveQUBO(enc.Q, anneal.SAOptions{Sweeps: 2000, Restarts: 8, Seed: 7})
	show("simulated annealing:", sa.Bits)

	sqa := anneal.SolveQUBOQuantum(enc.Q, anneal.SQAOptions{Sweeps: 1500, Trotter: 8, Restarts: 6, Seed: 7})
	show("simulated quantum annealing:", sqa.Bits)

	da := anneal.DigitalAnneal(enc.Q, anneal.DigitalAnnealerOptions{Steps: 30000, Seed: 7})
	show("digital annealer:", da.Bits)

	// Gate-based accelerator: QAOA over the 16-qubit register, driven
	// through the service's variational session API. The parameterised
	// ansatz compiles once; the (γ, β) landscape scan then streams
	// parameter bindings that patch the pinned artefact — each grid point
	// costs a microsecond-scale bind instead of a fresh 16-qubit compile.
	problem := qaoa.FromQUBO(enc.Q)
	svc := qserv.New(qserv.Config{Seed: 7})
	svc.AddBackend(qserv.NewStackBackend(core.NewPerfect(16, 7)), 2)
	svc.Start()
	defer svc.Stop()

	ansatz, err := problem.BuildParametricCircuit(1)
	if err != nil {
		log.Fatal(err)
	}
	openStart := time.Now()
	sess, err := svc.OpenSession(qserv.Request{
		Name:    "tsp-ansatz",
		Program: openql.ProgramFromCircuit("tsp-ansatz", ansatz),
		Shots:   768,
	})
	if err != nil {
		log.Fatal(err)
	}
	compileOnce := time.Since(openStart)
	fmt.Printf("\nsession %s: 16-qubit ansatz compiled once in %v, symbols %v\n",
		sess.ID, compileOnce.Round(time.Microsecond), sess.Symbols())

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	model := problem.Model
	var (
		bestBits    []int
		bestBitsE   = math.Inf(1)
		bindNsTotal int64
		points      int
	)
	spins := make([]int, model.N)
	for gi := 0; gi < 6; gi++ {
		for bi := 0; bi < 4; bi++ {
			gamma := 0.05 + float64(gi)*(math.Pi-0.1)/5
			beta := 0.05 + float64(bi)*(math.Pi/2-0.1)/3
			vals, err := qaoa.BindValues([]float64{gamma}, []float64{beta})
			if err != nil {
				log.Fatal(err)
			}
			job, err := svc.BindSession(sess.ID, qserv.BindRequest{Values: vals})
			if err != nil {
				log.Fatal(err)
			}
			if err := job.Wait(ctx); err != nil {
				log.Fatal(err)
			}
			points++
			bindNs := phaseNs(job, "bind")
			bindNsTotal += bindNs
			if points <= 3 {
				fmt.Printf("  point %2d (γ=%.2f β=%.2f): bind %v vs compile-once %v\n",
					points, gamma, beta, time.Duration(bindNs).Round(100*time.Nanosecond),
					compileOnce.Round(time.Microsecond))
			}
			// Keep the best feasible sample across the whole scan.
			for idx := range job.Result().Report.Result.Counts {
				for i := range spins {
					if idx&(1<<uint(i)) != 0 {
						spins[i] = 1
					} else {
						spins[i] = -1
					}
				}
				if e := model.Energy(spins); e < bestBitsE {
					bestBitsE = e
					bestBits = append(bestBits[:0], qubo.SpinsToBits(spins)...)
				}
			}
		}
	}
	fmt.Printf("  scanned %d (γ,β) points: total bind time %v, avg %v per point\n",
		points, time.Duration(bindNsTotal).Round(time.Microsecond),
		time.Duration(bindNsTotal/int64(points)).Round(100*time.Nanosecond))
	show("QAOA p=1 (best sample):", bestBits)

	// Hardware capacity: the paper's embedding argument.
	adj := enc.Q.InteractionGraph()
	e, err := embed.AutoEmbedChimera(adj, 16, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nD-Wave 2000Q-style embedding: 16 logical → %d physical qubits (max chain %d)\n",
		e.PhysicalQubits(), e.MaxChainLength())
	cap2000q := embed.CliqueCapacityChimera(16, 4)
	fmt.Printf("clique capacity C(16,16,4): %d variables → max %d cities (paper: 9)\n",
		cap2000q, tsp.MaxCitiesForQubits(cap2000q))
	fmt.Printf("fully-connected 8192-node digital annealer → max %d cities (paper: 90)\n",
		tsp.MaxCitiesForQubits(8192))
}
