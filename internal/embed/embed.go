// Package embed implements minor embedding of problem graphs into
// hardware topologies (§4.2): combining several physical qubits into
// chains that act as one logical qubit. It provides the deterministic
// native clique embedding of K_n into Chimera (the capacity bound behind
// the paper's "9 cities max on a D-Wave 2000Q") and a greedy heuristic for
// sparser graphs.
package embed

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/topology"
)

// Embedding maps each logical variable to a chain of physical qubits.
type Embedding struct {
	Chains map[int][]int
}

// PhysicalQubits returns the total number of physical qubits used.
func (e *Embedding) PhysicalQubits() int {
	total := 0
	for _, chain := range e.Chains {
		total += len(chain)
	}
	return total
}

// MaxChainLength returns the longest chain (longer chains break more
// easily on hardware).
func (e *Embedding) MaxChainLength() int {
	max := 0
	for _, chain := range e.Chains {
		if len(chain) > max {
			max = len(chain)
		}
	}
	return max
}

// Validate checks that the embedding is a proper minor embedding of the
// given logical adjacency into the target: chains are non-empty,
// vertex-disjoint and connected, and every logical edge has at least one
// physical coupler between the two chains.
func (e *Embedding) Validate(adj [][]int, target *topology.Topology) error {
	used := map[int]int{}
	for v, chain := range e.Chains {
		if len(chain) == 0 {
			return fmt.Errorf("embed: empty chain for variable %d", v)
		}
		for _, q := range chain {
			if q < 0 || q >= target.N {
				return fmt.Errorf("embed: chain of %d uses invalid qubit %d", v, q)
			}
			if owner, taken := used[q]; taken {
				return fmt.Errorf("embed: qubit %d shared by variables %d and %d", q, owner, v)
			}
			used[q] = v
		}
		if !chainConnected(chain, target) {
			return fmt.Errorf("embed: chain of variable %d is disconnected", v)
		}
	}
	for a, neighbors := range adj {
		for _, b := range neighbors {
			if a >= b {
				continue
			}
			ca, okA := e.Chains[a]
			cb, okB := e.Chains[b]
			if !okA || !okB {
				return fmt.Errorf("embed: edge (%d,%d) references unmapped variable", a, b)
			}
			if !chainsCoupled(ca, cb, target) {
				return fmt.Errorf("embed: no coupler for logical edge (%d,%d)", a, b)
			}
		}
	}
	return nil
}

func chainConnected(chain []int, t *topology.Topology) bool {
	if len(chain) == 1 {
		return true
	}
	inChain := map[int]bool{}
	for _, q := range chain {
		inChain[q] = true
	}
	visited := map[int]bool{chain[0]: true}
	queue := []int{chain[0]}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.Neighbors(u) {
			if inChain[v] && !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return len(visited) == len(chain)
}

func chainsCoupled(a, b []int, t *topology.Topology) bool {
	for _, qa := range a {
		for _, qb := range b {
			if t.Adjacent(qa, qb) {
				return true
			}
		}
	}
	return false
}

// CliqueEmbedChimera returns the deterministic native clique embedding of
// K_n into Chimera C(m, m, k): each logical variable occupies an L-shaped
// chain of one half-row and one half-column meeting at a diagonal cell.
// The construction supports n ≤ k·m; chains have length ≈ n/k + 1,
// demonstrating the quadratic physical-qubit overhead the paper reports.
func CliqueEmbedChimera(n, m, k int) (*Embedding, error) {
	if n > k*m {
		return nil, fmt.Errorf("embed: K_%d exceeds clique capacity %d of chimera(%d,%d,%d)", n, k*m, m, m, k)
	}
	idx := func(r, c, side, o int) int { return ((r*m+c)*2+side)*k + o }
	e := &Embedding{Chains: map[int][]int{}}
	for v := 0; v < n; v++ {
		block := v / k // which diagonal cell row/column the variable lives in
		offset := v % k
		span := n/k + 1
		if n%k == 0 {
			span = n / k
		}
		var chain []int
		// Vertical run: left-side qubits down column `block`, rows
		// 0..span-1.
		for r := 0; r < span; r++ {
			chain = append(chain, idx(r, block, 0, offset))
		}
		// Horizontal run: right-side qubits along row `block`, columns
		// 0..span-1.
		for c := 0; c < span; c++ {
			chain = append(chain, idx(block, c, 1, offset))
		}
		e.Chains[v] = dedupe(chain)
	}
	return e, nil
}

func dedupe(xs []int) []int {
	seen := map[int]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// GreedyEmbed attempts a heuristic minor embedding of an arbitrary
// adjacency into the target topology: variables are placed in
// decreasing-degree order on free qubits close to their placed
// neighbours, extending chains along shortest free paths. Returns an
// error when it runs out of free qubits (embedding is NP-hard; the
// heuristic is best-effort, like the probabilistic tools the paper
// references).
func GreedyEmbed(adj [][]int, target *topology.Topology, seed int64) (*Embedding, error) {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		e, err := greedyEmbedOnce(adj, target, seed*31+int64(attempt))
		if err == nil {
			return e, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func greedyEmbedOnce(adj [][]int, target *topology.Topology, seed int64) (*Embedding, error) {
	n := len(adj)
	rng := rand.New(rand.NewSource(seed))
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Shuffle, then stable-sort by degree: ties break randomly across
	// attempts.
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	sort.SliceStable(order, func(a, b int) bool { return len(adj[order[a]]) > len(adj[order[b]]) })

	owner := make([]int, target.N) // physical → logical (-1 free)
	for i := range owner {
		owner[i] = -1
	}
	e := &Embedding{Chains: map[int][]int{}}

	claim := func(v, q int) {
		owner[q] = v
		e.Chains[v] = append(e.Chains[v], q)
	}

	for _, v := range order {
		// Collect already-placed neighbours.
		var placed []int
		for _, u := range adj[v] {
			if _, ok := e.Chains[u]; ok {
				placed = append(placed, u)
			}
		}
		// Choose a free seed qubit minimising total distance to placed
		// chains, with the qubit's free degree as a tie-breaker (room to
		// grow chains later).
		seedQ := -1
		bestCost := 1 << 30
		perm := rng.Perm(target.N)
		for _, q := range perm {
			if owner[q] != -1 {
				continue
			}
			cost := 0
			feasible := true
			for _, u := range placed {
				d := chainDistance(q, e.Chains[u], target)
				if d < 0 {
					feasible = false
					break
				}
				cost += d * 4
			}
			if !feasible {
				continue
			}
			for _, nb := range target.Neighbors(q) {
				if owner[nb] != -1 {
					cost++ // crowded neighbourhood
				}
			}
			if cost < bestCost {
				bestCost = cost
				seedQ = q
			}
		}
		if seedQ == -1 {
			return nil, fmt.Errorf("embed: no free qubit for variable %d", v)
		}
		claim(v, seedQ)
		// Connect to each placed neighbour, closest chain first, with a
		// free shortest path; interior qubits join v's chain so later
		// routes can attach anywhere along it.
		sort.SliceStable(placed, func(a, b int) bool {
			return chainDistance(seedQ, e.Chains[placed[a]], target) <
				chainDistance(seedQ, e.Chains[placed[b]], target)
		})
		for _, u := range placed {
			if chainsCoupled(e.Chains[v], e.Chains[u], target) {
				continue
			}
			path := freePathToChain(e.Chains[v], e.Chains[u], owner, v, target)
			if path == nil {
				return nil, fmt.Errorf("embed: cannot route variable %d to neighbour %d", v, u)
			}
			for _, q := range path {
				if owner[q] == -1 {
					claim(v, q)
				}
			}
		}
	}
	return e, nil
}

func chainDistance(q int, chain []int, t *topology.Topology) int {
	best := -1
	for _, c := range chain {
		d := t.Distance(q, c)
		if d >= 0 && (best < 0 || d < best) {
			best = d
		}
	}
	return best
}

// freePathToChain BFS-routes from v's chain to u's chain through free
// qubits (or v's own); returns interior qubits to absorb into v's chain.
func freePathToChain(from, to []int, owner []int, v int, t *topology.Topology) []int {
	targetSet := map[int]bool{}
	for _, q := range to {
		targetSet[q] = true
	}
	prev := make([]int, t.N)
	for i := range prev {
		prev[i] = -2 // unvisited
	}
	var queue []int
	for _, q := range from {
		prev[q] = -1
		queue = append(queue, q)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.Neighbors(cur) {
			if prev[nb] != -2 {
				continue
			}
			if targetSet[nb] {
				// Reconstruct interior path from cur back to v's chain.
				var interior []int
				for p := cur; p != -1 && owner[p] != v; p = prev[p] {
					interior = append(interior, p)
				}
				return interior
			}
			if owner[nb] == -1 {
				prev[nb] = cur
				queue = append(queue, nb)
			}
		}
	}
	return nil
}

// CliqueCapacityChimera returns the largest complete graph natively
// embeddable in C(m,m,k) by the L-shaped construction (k·m), e.g. 64 for
// the 2000Q's C(16,16,4).
func CliqueCapacityChimera(m, k int) int { return k * m }

// AutoEmbedChimera embeds an arbitrary adjacency into Chimera C(m,m,k):
// it first attempts the greedy heuristic (cheap chains for sparse
// graphs), then falls back to the deterministic clique embedding, which
// covers any subgraph of K_n. This mirrors annealing tool flows, where
// dense QUBOs (like TSP) go straight to clique embeddings.
func AutoEmbedChimera(adj [][]int, m, k int, seed int64) (*Embedding, error) {
	target := topology.Chimera(m, m, k)
	if e, err := GreedyEmbed(adj, target, seed); err == nil {
		if e.Validate(adj, target) == nil {
			return e, nil
		}
	}
	return CliqueEmbedChimera(len(adj), m, k)
}
