package embed

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
	"repro/internal/tsp"
)

func completeAdj(n int) [][]int {
	adj := make([][]int, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				adj[a] = append(adj[a], b)
			}
		}
	}
	return adj
}

func TestCliqueEmbedSmall(t *testing.T) {
	m, k := 4, 4
	target := topology.Chimera(m, m, k)
	for n := 2; n <= k*m; n += 3 {
		e, err := CliqueEmbedChimera(n, m, k)
		if err != nil {
			t.Fatalf("K_%d: %v", n, err)
		}
		if err := e.Validate(completeAdj(n), target); err != nil {
			t.Errorf("K_%d: %v", n, err)
		}
	}
}

func TestCliqueEmbedCapacity(t *testing.T) {
	if _, err := CliqueEmbedChimera(17, 4, 4); err == nil {
		t.Error("K_17 in C(4,4,4) should fail (capacity 16)")
	}
	if got := CliqueCapacityChimera(16, 4); got != 64 {
		t.Errorf("2000Q clique capacity = %d, want 64", got)
	}
}

func TestCliqueEmbedDWave2000Q(t *testing.T) {
	// The paper's capacity argument: TSP needs N² logical variables; on
	// the 2000Q (C(16,16,4), clique capacity 64) 8 cities fit natively,
	// 10 cities (100 > 64) never do.
	m, k := 16, 16
	_ = m
	target := topology.Chimera(16, 16, 4)
	n8 := 8 * 8
	e, err := CliqueEmbedChimera(n8, 16, 4)
	if err != nil {
		t.Fatalf("64-variable clique should embed on 2000Q: %v", err)
	}
	if err := e.Validate(completeAdj(n8), target); err != nil {
		t.Fatal(err)
	}
	if e.PhysicalQubits() > target.N {
		t.Errorf("embedding uses %d qubits, more than %d", e.PhysicalQubits(), target.N)
	}
	if _, err := CliqueEmbedChimera(10*10, 16, 4); err == nil {
		t.Error("10-city TSP (100 vars) must fail on 2000Q, as the paper states")
	}
	_ = k
}

func TestPhysicalQubitOverheadGrowsQuadratically(t *testing.T) {
	// Chain length ≈ n/k+1, so physical qubits ≈ n²/k — the quadratic
	// overhead of embedding.
	e16, err := CliqueEmbedChimera(16, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	e64, err := CliqueEmbedChimera(64, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(e64.PhysicalQubits()) / float64(e16.PhysicalQubits())
	// 4× logical variables should need ≈16× the chain qubits within a
	// generous band.
	if ratio < 8 || ratio > 24 {
		t.Errorf("overhead ratio = %v, expected roughly quadratic (≈16×)", ratio)
	}
	if e64.MaxChainLength() <= e16.MaxChainLength() {
		t.Error("chains should lengthen with clique size")
	}
}

func TestGreedyEmbedPathGraph(t *testing.T) {
	// A path graph embeds into a grid without chains longer than needed.
	n := 6
	adj := make([][]int, n)
	for i := 0; i+1 < n; i++ {
		adj[i] = append(adj[i], i+1)
		adj[i+1] = append(adj[i+1], i)
	}
	target := topology.Grid(3, 3)
	e, err := GreedyEmbed(adj, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(adj, target); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyEmbedSmallCliqueOnChimera(t *testing.T) {
	target := topology.Chimera(2, 2, 4)
	adj := completeAdj(5)
	var ok bool
	for seed := int64(0); seed < 10; seed++ {
		e, err := GreedyEmbed(adj, target, seed)
		if err != nil {
			continue
		}
		if err := e.Validate(adj, target); err != nil {
			t.Fatalf("invalid embedding accepted: %v", err)
		}
		ok = true
		break
	}
	if !ok {
		t.Error("greedy embedder failed K_5 into C(2,2,4) on all seeds")
	}
}

func TestGreedyEmbedFailsWhenTooBig(t *testing.T) {
	target := topology.Grid(2, 2)
	if _, err := GreedyEmbed(completeAdj(5), target, 1); err == nil {
		t.Error("5 variables cannot embed in 4 qubits")
	}
}

func TestAutoEmbedTSPGraph(t *testing.T) {
	// The Fig 9 4-city TSP QUBO (16 variables, dense) embeds into a
	// sufficiently large Chimera; density forces the clique fallback.
	enc := tsp.Encode(tsp.Netherlands4(), 0)
	adj := enc.Q.InteractionGraph()
	target := topology.Chimera(8, 8, 4)
	e, err := AutoEmbedChimera(adj, 8, 4, 1)
	if err != nil {
		t.Fatalf("auto-embed failed: %v", err)
	}
	if err := e.Validate(adj, target); err != nil {
		t.Fatalf("invalid TSP embedding: %v", err)
	}
	// Paper's point: 16 logical variables cost far more physical qubits.
	if e.PhysicalQubits() <= 16 {
		t.Errorf("embedding uses %d physical qubits; expected chain overhead", e.PhysicalQubits())
	}
}

func TestValidateCatchesBadEmbeddings(t *testing.T) {
	target := topology.Grid(2, 2)
	adj := [][]int{{1}, {0}}
	// Disjoint but disconnected chain.
	e := &Embedding{Chains: map[int][]int{0: {0, 3}, 1: {1}}}
	if err := e.Validate(adj, target); err == nil {
		t.Error("disconnected chain accepted")
	}
	// Overlapping chains.
	e = &Embedding{Chains: map[int][]int{0: {0}, 1: {0}}}
	if err := e.Validate(adj, target); err == nil {
		t.Error("overlapping chains accepted")
	}
	// Missing coupler.
	big := topology.Grid(1, 4)
	e = &Embedding{Chains: map[int][]int{0: {0}, 1: {3}}}
	if err := e.Validate(adj, big); err == nil {
		t.Error("uncoupled logical edge accepted")
	}
	// Empty chain.
	e = &Embedding{Chains: map[int][]int{0: {}, 1: {1}}}
	if err := e.Validate(adj, target); err == nil {
		t.Error("empty chain accepted")
	}
}

// Property: every clique embedding that succeeds validates.
func TestCliqueEmbedProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := 2 + int(seed%3+3)%3 // 2..4
		k := 2 + int(seed%2+2)%2 // 2..3
		target := topology.Chimera(m, m, k)
		n := 2 + int(seed%int64(k*m-1)+int64(k*m-1))%(k*m-1)
		e, err := CliqueEmbedChimera(n, m, k)
		if err != nil {
			return n > k*m
		}
		return e.Validate(completeAdj(n), target) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
