// Package density implements an exact density-matrix simulator for small
// registers: unitary evolution ρ → UρU† and Kraus-channel application
// ρ → ΣKρK†. It is the reference against which the QX simulator's
// quantum-trajectory noise unravelling is validated (§2.7: "investigate
// beyond simplistic error models") — trajectories must converge to the
// density-matrix prediction.
package density

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/quantum"
)

// Simulator holds an n-qubit density matrix.
type Simulator struct {
	n   int
	rho quantum.Matrix
}

// New returns the simulator initialised to |0...0><0...0|. The density
// matrix costs 4ⁿ complex entries; n is capped at 10.
func New(n int) *Simulator {
	if n < 1 || n > 10 {
		panic(fmt.Sprintf("density: unsupported qubit count %d", n))
	}
	rho := quantum.NewMatrix(1 << uint(n))
	rho.Set(0, 0, 1)
	return &Simulator{n: n, rho: rho}
}

// NumQubits returns the register size.
func (s *Simulator) NumQubits() int { return s.n }

// Rho returns the current density matrix (not copied; treat as
// read-only).
func (s *Simulator) Rho() quantum.Matrix { return s.rho }

// embed builds the full-register operator of a k-qubit gate matrix.
func (s *Simulator) embed(u quantum.Matrix, qubits []int) quantum.Matrix {
	dim := 1 << uint(s.n)
	full := quantum.NewMatrix(dim)
	// Column c of the full operator is U applied to basis state c.
	for c := 0; c < dim; c++ {
		st := quantum.NewState(s.n)
		st.PrepareBasis(c)
		st.Apply(u, qubits...)
		for r := 0; r < dim; r++ {
			full.Set(r, c, st.Amplitude(r))
		}
	}
	return full
}

// ApplyUnitary applies a gate unitary to the given qubits.
func (s *Simulator) ApplyUnitary(u quantum.Matrix, qubits ...int) {
	full := s.embed(u, qubits)
	s.rho = full.Mul(s.rho).Mul(full.Dagger())
}

// ApplyChannel applies a single-qubit Kraus channel {K_i} to qubit q:
// ρ → Σ_i K_i ρ K_i†.
func (s *Simulator) ApplyChannel(kraus []quantum.Matrix, q int) {
	dim := 1 << uint(s.n)
	out := quantum.NewMatrix(dim)
	for _, k := range kraus {
		full := s.embed(k, []int{q})
		term := full.Mul(s.rho).Mul(full.Dagger())
		out = out.Add(term)
	}
	s.rho = out
}

// RunCircuit executes a measurement-free circuit, applying noise after
// each gate when channels is non-nil (channels receives the gate and
// returns per-operand Kraus sets).
func (s *Simulator) RunCircuit(c *circuit.Circuit, channels func(g circuit.Gate) [][]quantum.Matrix) error {
	if c.NumQubits != s.n {
		return fmt.Errorf("density: circuit has %d qubits, simulator %d", c.NumQubits, s.n)
	}
	for _, g := range c.Gates {
		if !g.IsUnitary() {
			return fmt.Errorf("density: non-unitary op %q unsupported", g.Name)
		}
		u, err := g.Matrix()
		if err != nil {
			return err
		}
		s.ApplyUnitary(u, g.Qubits...)
		if channels != nil {
			sets := channels(g)
			for i, q := range g.Qubits {
				if i < len(sets) && sets[i] != nil {
					s.ApplyChannel(sets[i], q)
				}
			}
		}
	}
	return nil
}

// Probabilities returns the diagonal of ρ (measurement distribution in
// the computational basis).
func (s *Simulator) Probabilities() []float64 {
	dim := 1 << uint(s.n)
	out := make([]float64, dim)
	for i := 0; i < dim; i++ {
		out[i] = real(s.rho.At(i, i))
	}
	return out
}

// Trace returns tr ρ (1 for a valid state).
func (s *Simulator) Trace() float64 { return real(s.rho.Trace()) }

// Purity returns tr ρ², 1 for pure states and 1/2ⁿ for the maximally
// mixed state.
func (s *Simulator) Purity() float64 {
	return real(s.rho.Mul(s.rho).Trace())
}

// Fidelity returns <ψ|ρ|ψ> for a pure reference state.
func (s *Simulator) Fidelity(psi *quantum.State) float64 {
	dim := 1 << uint(s.n)
	var f complex128
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			f += cmplx.Conj(psi.Amplitude(r)) * s.rho.At(r, c) * psi.Amplitude(c)
		}
	}
	return real(f)
}

// Standard single-qubit channels.

// DepolarizingChannel returns the Kraus set of the depolarising channel
// matching qx's trajectory model: with probability p a uniformly random
// Pauli is applied.
func DepolarizingChannel(p float64) []quantum.Matrix {
	id := quantum.I2.Scale(complex(math.Sqrt(1-p), 0))
	x := quantum.X.Scale(complex(math.Sqrt(p/3), 0))
	y := quantum.Y.Scale(complex(math.Sqrt(p/3), 0))
	z := quantum.Z.Scale(complex(math.Sqrt(p/3), 0))
	return []quantum.Matrix{id, x, y, z}
}

// AmplitudeDampingChannel returns the T1 relaxation channel with decay
// probability gamma.
func AmplitudeDampingChannel(gamma float64) []quantum.Matrix {
	k0 := quantum.MatrixFromRows(
		[]complex128{1, 0},
		[]complex128{0, complex(math.Sqrt(1-gamma), 0)},
	)
	k1 := quantum.MatrixFromRows(
		[]complex128{0, complex(math.Sqrt(gamma), 0)},
		[]complex128{0, 0},
	)
	return []quantum.Matrix{k0, k1}
}

// PhaseFlipChannel returns the dephasing channel applying Z with
// probability lambda (the qx trajectory model's dephasing step).
func PhaseFlipChannel(lambda float64) []quantum.Matrix {
	return []quantum.Matrix{
		quantum.I2.Scale(complex(math.Sqrt(1-lambda), 0)),
		quantum.Z.Scale(complex(math.Sqrt(lambda), 0)),
	}
}
