package density

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/quantum"
	"repro/internal/qx"
)

func TestPureEvolutionMatchesStateVector(t *testing.T) {
	c := circuit.New("mix", 3)
	c.H(0).CNOT(0, 1).T(1).CNOT(1, 2).RY(2, 0.7)
	sim := New(3)
	if err := sim.RunCircuit(c, nil); err != nil {
		t.Fatal(err)
	}
	// Reference pure state.
	st := quantum.NewState(3)
	for _, g := range c.Gates {
		m, _ := g.Matrix()
		st.Apply(m, g.Qubits...)
	}
	if f := sim.Fidelity(st); math.Abs(f-1) > 1e-9 {
		t.Errorf("pure evolution fidelity %v", f)
	}
	if p := sim.Purity(); math.Abs(p-1) > 1e-9 {
		t.Errorf("purity %v, want 1", p)
	}
	probs := sim.Probabilities()
	ref := st.Probabilities()
	for i := range probs {
		if math.Abs(probs[i]-ref[i]) > 1e-9 {
			t.Fatalf("probability %d differs: %v vs %v", i, probs[i], ref[i])
		}
	}
}

func TestChannelsPreserveTrace(t *testing.T) {
	channels := map[string][]quantum.Matrix{
		"depolarizing": DepolarizingChannel(0.2),
		"ampdamp":      AmplitudeDampingChannel(0.3),
		"phaseflip":    PhaseFlipChannel(0.25),
	}
	for name, ch := range channels {
		// Kraus completeness: Σ K†K = I.
		sum := quantum.NewMatrix(2)
		for _, k := range ch {
			sum = sum.Add(k.Dagger().Mul(k))
		}
		if !sum.Equal(quantum.Identity(2), 1e-12) {
			t.Errorf("%s: Kraus set not trace preserving", name)
		}
		sim := New(2)
		sim.ApplyUnitary(quantum.H, 0)
		sim.ApplyUnitary(quantum.CNOT, 0, 1)
		sim.ApplyChannel(ch, 0)
		if tr := sim.Trace(); math.Abs(tr-1) > 1e-9 {
			t.Errorf("%s: trace %v after channel", name, tr)
		}
	}
}

func TestDepolarizingReducesPurity(t *testing.T) {
	sim := New(1)
	sim.ApplyUnitary(quantum.H, 0)
	before := sim.Purity()
	sim.ApplyChannel(DepolarizingChannel(0.5), 0)
	after := sim.Purity()
	if after >= before {
		t.Errorf("depolarizing did not mix: %v → %v", before, after)
	}
}

func TestAmplitudeDampingFixedPoint(t *testing.T) {
	// Repeated amplitude damping drives any state to |0>.
	sim := New(1)
	sim.ApplyUnitary(quantum.X, 0)
	for i := 0; i < 60; i++ {
		sim.ApplyChannel(AmplitudeDampingChannel(0.2), 0)
	}
	if p0 := sim.Probabilities()[0]; p0 < 0.999 {
		t.Errorf("P(0) after heavy damping = %v", p0)
	}
}

// The central validation: QX's stochastic trajectories converge to the
// density-matrix prediction for the same depolarising model.
func TestTrajectoriesConvergeToDensityMatrix(t *testing.T) {
	const p = 0.08
	c := circuit.New("noisy", 2)
	c.H(0).CNOT(0, 1).X(1).CZ(0, 1)

	dm := New(2)
	err := dm.RunCircuit(c, func(g circuit.Gate) [][]quantum.Matrix {
		sets := make([][]quantum.Matrix, len(g.Qubits))
		prob := p
		if len(g.Qubits) == 2 {
			prob = 2 * p // matches qx.Depolarizing's two-qubit setting
		}
		for i := range sets {
			sets[i] = DepolarizingChannel(prob)
		}
		return sets
	})
	if err != nil {
		t.Fatal(err)
	}
	want := dm.Probabilities()

	traj := qx.NewNoisy(33, qx.Depolarizing(p))
	const shots = 40000
	res, err := traj.Run(c, shots)
	if err != nil {
		t.Fatal(err)
	}
	for idx := range want {
		got := float64(res.Counts[idx]) / shots
		if math.Abs(got-want[idx]) > 0.01 {
			t.Errorf("outcome %d: trajectories %.4f vs density matrix %.4f", idx, got, want[idx])
		}
	}
}

func TestAmplitudeDampingTrajectoriesConverge(t *testing.T) {
	// Single qubit in |1> decaying: trajectory unravelling vs exact
	// channel, one step.
	const gamma = 0.35
	dm := New(1)
	dm.ApplyUnitary(quantum.X, 0)
	dm.ApplyChannel(AmplitudeDampingChannel(gamma), 0)
	want1 := dm.Probabilities()[1] // = 1 - gamma

	noise := &qx.NoiseModel{T1: 1, GateTimeNs: -math.Log(1 - gamma)} // gamma = 1-exp(-t/T1)
	sim := qx.NewNoisy(44, noise)
	c := circuit.New("decay", 1).X(0)
	const shots = 30000
	res, err := sim.Run(c, shots)
	if err != nil {
		t.Fatal(err)
	}
	got1 := float64(res.Counts[1]) / shots
	if math.Abs(got1-want1) > 0.01 {
		t.Errorf("P(1): trajectories %.4f vs density matrix %.4f", got1, want1)
	}
}

// Property: purity never exceeds 1 and never drops below 1/2ⁿ under any
// sequence of the standard channels.
func TestPurityBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 1 + int(seed%2+2)%2
		sim := New(n)
		sim.ApplyUnitary(quantum.H, 0)
		params := []float64{0.1, 0.3, 0.5}
		for i, p := range params {
			switch (int(seed) + i) % 3 {
			case 0:
				sim.ApplyChannel(DepolarizingChannel(p), i%n)
			case 1:
				sim.ApplyChannel(AmplitudeDampingChannel(p), i%n)
			default:
				sim.ApplyChannel(PhaseFlipChannel(p), i%n)
			}
		}
		pur := sim.Purity()
		min := 1 / math.Pow(2, float64(n))
		return pur <= 1+1e-9 && pur >= min-1e-9 && math.Abs(sim.Trace()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRunCircuitRejectsMeasurement(t *testing.T) {
	c := circuit.New("m", 1).H(0).Measure(0)
	if err := New(1).RunCircuit(c, nil); err == nil {
		t.Error("measurement accepted")
	}
	if err := New(2).RunCircuit(circuit.New("wrong", 1).H(0), nil); err == nil {
		t.Error("size mismatch accepted")
	}
}
