package qserv

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/openql"
	"repro/internal/target"
)

// noisePasses is a pipeline whose suffix routes by calibration data, so
// stale prefix reuse across recalibrations would be observable as wrong
// routing. Its platform-generic prefix is identical to the default
// pipeline's, so both specs share prefix-cache entries.
const noisePasses = "decompose,optimize,map(strategy=noise),lower-swaps,optimize-lowered,schedule,assemble"

// racingProgram is a two-kernel program so the per-kernel prefix path is
// exercised (and the prefix cache holds one entry per kernel).
func racingProgram() *openql.Program {
	p := openql.NewProgram("race", 5)
	k1 := openql.NewKernel("layer", 5)
	for q := 0; q < 5; q++ {
		k1.H(q)
	}
	for q := 0; q < 4; q++ {
		k1.CNOT(q, q+1)
	}
	p.AddKernel(k1)
	k2 := openql.NewKernel("tail", 5)
	k2.CNOT(0, 4).CNOT(1, 3)
	for q := 0; q < 5; q++ {
		k2.RZ(q, 0.1*float64(q+1)).Measure(q)
	}
	p.AddKernel(k2)
	return p
}

// skewedCalibration returns the superconducting calibration with edge
// errors multiplied by f on even edges — enough skew that noise-aware
// routing decisions depend on which table the job compiled against.
func skewedCalibration(f float64) *target.Calibration {
	cal := target.Superconducting().Calibration.Clone()
	for i := range cal.Edges {
		if i%2 == 0 {
			cal.Edges[i].TwoQubitError *= f
		}
	}
	return cal
}

// TestCanonicalTextDistinguishesPrograms pins the full-cache key's
// program half: register width matters even with no kernels, kernel
// partitions key distinctly, and kernel/program names do not.
func TestCanonicalTextDistinguishesPrograms(t *testing.T) {
	if canonicalText(openql.NewProgram("a", 3)) == canonicalText(openql.NewProgram("b", 5)) {
		t.Error("zero-kernel programs of different widths must key distinctly")
	}
	split := openql.NewProgram("s", 2)
	split.AddKernel(openql.NewKernel("k1", 2).H(0))
	split.AddKernel(openql.NewKernel("k2", 2).X(0))
	joined := openql.NewProgram("j", 2)
	joined.AddKernel(openql.NewKernel("k", 2).H(0).X(0))
	if canonicalText(split) == canonicalText(joined) {
		t.Error("different kernel partitions of the same gates must key distinctly")
	}
	renamed := openql.NewProgram("other-name", 2)
	renamed.AddKernel(openql.NewKernel("zz1", 2).H(0))
	renamed.AddKernel(openql.NewKernel("zz2", 2).X(0))
	if canonicalText(split) != canonicalText(renamed) {
		t.Error("program and kernel names must not affect the key")
	}
}

// TestTwoLevelCacheConcurrentOverrides races per-job pass-spec and
// calibration overrides against the two-level compile cache under
// -race, then asserts the cache contracts exactly:
//
//   - singleflight dedup: the full-artefact cache compiles each distinct
//     (calibration, pass spec) combination once, and the prefix cache
//     compiles each kernel once — every concurrent duplicate waits.
//   - freshness: a job compiled under a calibration override produces
//     artefacts identical to an uncached ground-truth compile against
//     that calibration — prefix hits never smuggle stale suffix state
//     across a recalibration.
func TestTwoLevelCacheConcurrentOverrides(t *testing.T) {
	s := New(Config{Seed: 99, RetainJobs: -1, QueueSize: 4096})
	s.AddBackend(NewStackBackend(core.NewSuperconducting(99)), 4)
	s.Start()
	defer s.Stop()

	prog := racingProgram()
	calibrations := []*target.Calibration{nil, skewedCalibration(40), skewedCalibration(0.02)}
	specs := []string{"", noisePasses}

	const rounds = 8
	var wg sync.WaitGroup
	ids := make([][]string, len(calibrations)*len(specs))
	var idsMu sync.Mutex
	for round := 0; round < rounds; round++ {
		for ci, cal := range calibrations {
			for si, spec := range specs {
				wg.Add(1)
				go func(combo int, cal *target.Calibration, spec string) {
					defer wg.Done()
					job, err := s.Submit(Request{
						Program:     prog,
						Backend:     "superconducting",
						Passes:      spec,
						Calibration: cal,
						Shots:       1,
						Seed:        7,
					})
					if err != nil {
						t.Errorf("submit: %v", err)
						return
					}
					if err := job.Wait(context.Background()); err != nil {
						t.Errorf("job %s: %v", job.ID, err)
						return
					}
					idsMu.Lock()
					ids[combo] = append(ids[combo], job.ID)
					idsMu.Unlock()
				}(ci*len(specs)+si, cal, spec)
			}
		}
	}
	wg.Wait()

	combos := len(calibrations) * len(specs)
	if st := s.Cache().Stats(); st.Misses != uint64(combos) {
		t.Errorf("full cache compiled %d times, want exactly %d (singleflight dedup)", st.Misses, combos)
	}
	// Both pass specs share the same platform-generic prefix and all
	// calibration variants share the gate set, so the prefix cache holds
	// exactly one entry per kernel of the program.
	if st := s.PrefixCache().Stats(); st.Misses != uint64(len(prog.Kernels)) {
		t.Errorf("prefix cache compiled %d artefacts, want exactly %d", st.Misses, len(prog.Kernels))
	} else if st.Hits == 0 {
		t.Error("prefix cache never hit despite shared prefixes across variants")
	}

	// Freshness: each combo's artefact must equal an uncached ground-truth
	// compile against its calibration.
	dev := target.Superconducting()
	for ci, cal := range calibrations {
		for si, spec := range specs {
			combo := ci*len(specs) + si
			if len(ids[combo]) == 0 {
				t.Fatalf("combo %d produced no jobs", combo)
			}
			job, ok := s.Job(ids[combo][0])
			if !ok {
				t.Fatalf("job %s vanished", ids[combo][0])
			}
			rep := job.Result().Report
			truthDev := dev
			if cal != nil {
				truthDev = dev.WithCalibration(cal)
			}
			truth, err := core.NewStackForDevice(truthDev, 99)
			if err != nil {
				t.Fatal(err)
			}
			truth.Passes = spec
			compiled, err := truth.Compile(prog)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("cal=%d spec=%d", ci, si)
			if compiled.CQASM != rep.CQASM {
				t.Errorf("%s: cached artefact's cQASM differs from ground truth", label)
			}
			if compiled.EQASM.String() != rep.EQASM {
				t.Errorf("%s: cached artefact's eQASM differs from ground truth", label)
			}
		}
	}
}
