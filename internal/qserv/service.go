package qserv

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compiler"
	"repro/internal/obs"
	"repro/internal/qx"
	"repro/internal/target"
)

// ErrQueueFull is returned by Submit when the bounded job queue is at
// capacity — callers should back off and retry (HTTP maps it to 503).
var ErrQueueFull = errors.New("qserv: job queue full")

// ErrStopped is returned by Submit after Stop.
var ErrStopped = errors.New("qserv: service stopped")

// Config sizes the service. Zero values select the defaults noted per
// field.
type Config struct {
	// QueueSize bounds each backend's job queue (default 64). Queues are
	// per backend so a saturated lane cannot starve the others.
	QueueSize int
	// DefaultWorkers is the pool size used when AddBackend is called with
	// workers <= 0 (default 2).
	DefaultWorkers int
	// DefaultShots is applied to gate jobs submitted with Shots <= 0
	// (default 1024).
	DefaultShots int
	// CacheSize bounds the full-artefact compile cache; negative disables
	// caching (default 256 entries).
	CacheSize int
	// PrefixCacheSize bounds the prefix-artefact cache — level 1 of the
	// two-level compile cache, holding per-kernel platform-generic
	// artefacts that survive recalibrations and map/schedule variants.
	// 0 defaults to 4× the resolved CacheSize (prefix artefacts are
	// smaller and shared across variants); negative disables the level.
	PrefixCacheSize int
	// CompileWorkers is the service-wide kernel-compile parallelism
	// budget: a shared semaphore of this many tokens bounds the total
	// number of kernels compiling concurrently across all jobs and
	// backends, and each compile may use up to this many workers for its
	// own kernels. 0 defaults to GOMAXPROCS; negative compiles serially.
	CompileWorkers int
	// Seed is the base of the per-job seed derivation (default 1).
	Seed int64
	// Engine names the qx execution engine DefaultService configures the
	// gate stacks with ("auto", "stabilizer", "optimized", "reference");
	// empty defaults to "auto", which dispatches each compiled circuit
	// to the stabilizer tableau when it is Clifford with
	// Clifford-compatible noise and to the optimized dense engine
	// otherwise — identical seeded counts either way, only the
	// asymptotics change. Individual jobs may still override it per
	// request.
	Engine string
	// Passes is the compiler pass spec DefaultService configures the gate
	// stacks with; empty uses the default pipeline. Individual jobs may
	// still override it per request.
	Passes string
	// RetainJobs bounds how many completed jobs stay queryable; the
	// oldest finished jobs are evicted beyond it (default 4096; negative
	// retains everything — for tests and short-lived services).
	RetainJobs int
	// SessionTTL bounds how long a variational session stays pinned with
	// no bind activity before it lapses (default 15m; negative disables
	// expiry). Expiry is lazy: sessions are swept on session-store
	// access, not by a background timer.
	SessionTTL time.Duration
	// MaxSessions bounds concurrently open variational sessions; opening
	// beyond it evicts the least-recently-used session (default 256;
	// negative removes the bound).
	MaxSessions int
	// Metrics is the registry the service registers its instruments in;
	// nil creates a private one (exposed via Service.Metrics and the
	// GET /metrics endpoint). A registry hosts at most one service —
	// sharing one across services panics on the duplicate families.
	Metrics *obs.Registry
	// TraceRing bounds how many job traces stay queryable via
	// GET /jobs/{id}/trace (default 1024; negative disables tracing).
	TraceRing int
	// Logger receives the service's structured logs — job lifecycle at
	// Info, per-request HTTP logs at Debug — every record keyed by
	// trace_id. Nil discards everything (library default; qservd passes
	// a real logger).
	Logger *slog.Logger
	// DisableMetrics skips instrument registration and all recording.
	// Only the obs-overhead benchmark should set it: with metrics
	// disabled /stats reports zero counters.
	DisableMetrics bool
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.RetainJobs == 0 {
		c.RetainJobs = 4096
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = 2
	}
	if c.DefaultShots <= 0 {
		c.DefaultShots = 1024
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.PrefixCacheSize == 0 && c.CacheSize > 0 {
		c.PrefixCacheSize = 4 * c.CacheSize
	}
	if c.CompileWorkers == 0 {
		c.CompileWorkers = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Engine == "" {
		c.Engine = qx.EngineAuto
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 15 * time.Minute
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 256
	}
	return c
}

// backendPool couples a backend with its worker lane and its resolved
// instrument handles (nil when metrics are disabled — /stats then
// reports zero counters).
type backendPool struct {
	b       Backend
	workers int
	ch      chan *Job
	met     *poolMetrics
}

// Service is the concurrent accelerator service: bounded per-backend job
// queues feeding worker pools, with a shared two-level compile cache
// (full artefacts + platform-generic prefix artefacts).
type Service struct {
	cfg    Config
	cache  *CompileCache
	prefix *PrefixCache
	env    *CompileEnv
	reg    *obs.Registry
	met    *serviceMetrics
	tracer *obs.Tracer
	log    *slog.Logger

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // completed job IDs, oldest first, for retention
	pools    []*backendPool
	byName   map[string]*backendPool
	started  bool
	stopped  bool
	// drained is created by the first Drain/Stop call and closed when all
	// workers have exited; later calls wait on the same channel.
	drained chan struct{}
	// sessions holds the open variational sessions (guarded by mu, like
	// the lifecycle counters below it).
	sessions    map[string]*Session
	sessOpened  uint64
	sessExpired uint64
	sessEvicted uint64

	wg        sync.WaitGroup
	seq       atomic.Uint64
	submitted atomic.Uint64
	binds     atomic.Uint64
	startedAt time.Time
}

// New returns an unstarted service; register backends with AddBackend,
// then call Start.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		jobs:     map[string]*Job{},
		byName:   map[string]*backendPool{},
		sessions: map[string]*Session{},
	}
	if cfg.CacheSize > 0 {
		s.cache = NewCompileCache(cfg.CacheSize)
	}
	if cfg.PrefixCacheSize > 0 {
		s.prefix = NewPrefixCache(cfg.PrefixCacheSize)
	}
	workers := cfg.CompileWorkers
	if workers < 1 {
		workers = 1
	}
	s.env = &CompileEnv{
		Cache:   s.cache,
		Prefix:  s.prefix,
		Gate:    compiler.NewWorkerGate(workers),
		Workers: workers,
	}
	s.reg = cfg.Metrics
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	if !cfg.DisableMetrics {
		s.met = newServiceMetrics(s.reg)
		s.registerCollectors()
	}
	ring := cfg.TraceRing
	if ring == 0 {
		ring = 1024
	}
	if ring > 0 {
		s.tracer = obs.NewTracer(ring)
	}
	s.log = cfg.Logger
	if s.log == nil {
		// Discard logs entirely: a level above every slog level makes
		// Enabled fail before any record is built.
		s.log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{
			Level: slog.LevelError + 4,
		}))
	}
	return s
}

// registerCollectors wires the scrape-time mirrors: uptime, per-backend
// queue depth and the shared compile caches' hit/miss/entry counts.
func (s *Service) registerCollectors() {
	s.reg.GaugeFunc("qserv_uptime_seconds", "Seconds since Start.", func() float64 {
		s.mu.Lock()
		startedAt := s.startedAt
		s.mu.Unlock()
		if startedAt.IsZero() {
			return 0
		}
		return time.Since(startedAt).Seconds()
	})
	s.reg.GaugeFunc("qserv_sessions_active", "Open variational sessions.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.sweepSessionsLocked(time.Now())
		return float64(len(s.sessions))
	})
	s.reg.OnCollect(func() {
		s.mu.Lock()
		pools := make([]*backendPool, len(s.pools))
		copy(pools, s.pools)
		s.mu.Unlock()
		for _, p := range pools {
			if p.met != nil {
				p.met.queueDepth.Set(float64(len(p.ch)))
			}
		}
		mirror := func(level string, st CacheStats) {
			s.met.cacheOps.With(level, "hit").Set(float64(st.Hits))
			s.met.cacheOps.With(level, "miss").Set(float64(st.Misses))
			s.met.cacheEntries.With(level).Set(float64(st.Entries))
		}
		if s.cache != nil {
			mirror("full", s.cache.Stats())
		}
		if s.prefix != nil {
			mirror("prefix", s.prefix.Stats())
		}
	})
}

// Metrics exposes the service's metric registry — the one behind
// GET /metrics.
func (s *Service) Metrics() *obs.Registry { return s.reg }

// Tracer exposes the service's trace ring (nil when tracing is
// disabled).
func (s *Service) Tracer() *obs.Tracer { return s.tracer }

// Cache exposes the shared full-artefact compile cache (nil when
// disabled).
func (s *Service) Cache() *CompileCache { return s.cache }

// PrefixCache exposes the shared prefix-artefact cache (nil when
// disabled).
func (s *Service) PrefixCache() *PrefixCache { return s.prefix }

// AddBackend registers a backend with its worker-pool size (<= 0 selects
// Config.DefaultWorkers). It must be called before Start.
func (s *Service) AddBackend(b Backend, workers int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		panic("qserv: AddBackend after Start")
	}
	if _, dup := s.byName[b.Name()]; dup {
		panic(fmt.Sprintf("qserv: duplicate backend %q", b.Name()))
	}
	if workers <= 0 {
		workers = s.cfg.DefaultWorkers
	}
	// The channel is the backend's bounded job queue: workers pull from
	// it directly, Submit fails fast once it fills.
	p := &backendPool{
		b:       b,
		workers: workers,
		ch:      make(chan *Job, s.cfg.QueueSize),
		met:     s.met.pool(b.Name()),
	}
	s.pools = append(s.pools, p)
	s.byName[b.Name()] = p
}

// Start launches every worker pool.
func (s *Service) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		panic("qserv: Start called twice")
	}
	if len(s.pools) == 0 {
		panic("qserv: Start with no backends")
	}
	s.started = true
	s.startedAt = time.Now()
	for _, p := range s.pools {
		for i := 0; i < p.workers; i++ {
			s.wg.Add(1)
			go s.worker(p)
		}
	}
}

// Stop rejects further submissions, drains queued jobs to completion and
// waits for all workers to exit, however long that takes. Deadline-bound
// shutdown paths should prefer Drain.
func (s *Service) Stop() {
	_ = s.Drain(context.Background())
}

// Drain is the graceful-shutdown half of Stop: it immediately rejects
// further submissions (Submit returns ErrStopped), closes every pool's
// queue so workers finish the jobs already admitted, and waits for the
// workers to exit — but only as long as ctx allows. On deadline it
// returns ctx.Err() with workers still running; the drain keeps
// completing in the background, so a subsequent Drain (or Stop) call
// picks up the same wait. Draining a never-started service is a no-op;
// concurrent calls share one drain state.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return nil
	}
	if !s.stopped {
		s.stopped = true
		for _, p := range s.pools {
			close(p.ch)
		}
		s.drained = make(chan struct{})
		go func(done chan struct{}) {
			s.wg.Wait()
			close(done)
		}(s.drained)
	}
	done := s.drained
	s.mu.Unlock()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker executes jobs from one pool's lane.
func (s *Service) worker(p *backendPool) {
	defer s.wg.Done()
	for job := range p.ch {
		s.runJob(p, job)
	}
}

// runJob executes one job on its pool's backend, closing the job's
// trace spans at the exact job timestamps (so the root span's duration
// equals the reported latency and queue.wait + run partition it) and
// recording the pool's instruments.
func (s *Service) runJob(p *backendPool, job *Job) {
	job.markRunning()
	submitted, started, _ := job.Times()
	job.queueSpan.EndAt(started)
	root := job.trace.Root()
	runSpan := root.StartChildAt("run", started)
	env := s.env
	if runSpan != nil {
		// Hand the backend a per-job copy of the shared env carrying the
		// run span, so compile/execute phases attach under it.
		jobEnv := *s.env
		jobEnv.Span = runSpan
		env = &jobEnv
	}
	start := time.Now()
	var (
		res *Result
		hit bool
		err error
	)
	if job.sess != nil {
		// Bind sub-job: patch the session's pinned artefact and execute —
		// the compile pipeline is skipped entirely, so it counts as a
		// full-level skip below (the artefact was reused, like a cache
		// hit) and never re-records the original compile's pass metrics.
		res, err = s.runBind(job, env)
		hit = err == nil
	} else {
		res, hit, err = p.b.Run(&job.Req, job.seed, env)
	}
	busy := time.Since(start)
	job.finish(res, hit, err)
	_, _, finished := job.Times()
	runSpan.SetAttr("cache_hit", strconv.FormatBool(hit))
	runSpan.EndAt(finished)
	root.SetAttr("status", string(job.Status()))
	root.EndAt(finished)
	if m := p.met; m != nil {
		m.busy.Add(busy.Seconds())
		m.queueWait.ObserveSeconds(started.Sub(submitted).Nanoseconds())
		m.latency.ObserveSeconds(finished.Sub(submitted).Nanoseconds())
		if err != nil {
			m.failed.Inc()
		} else {
			m.done.Inc()
		}
		// A full-artefact hit skipped the whole pipeline; per-pass
		// metrics aggregate only over jobs that actually compiled, and
		// recordCompile counts prefix-level skips from the report.
		if hit {
			m.fullSkips.Inc()
		}
		if err == nil && res != nil && res.Report != nil {
			if !hit && job.sess == nil {
				m.recordCompile(res.Report.Compile)
			}
			// Execution always ran, cache hit or not.
			if ns := res.Report.ExecNs; ns > 0 {
				m.execSecs.ObserveSeconds(ns)
			}
			// The engine that actually ran the shots — auto dispatch
			// resolved, so the Clifford fast-path hit rate is visible.
			if eng := res.Report.Engine; eng != "" {
				m.m.engineDispatch.With(eng).Inc()
			}
		}
	}
	retireStart := time.Now()
	s.retire(job)
	if s.met != nil {
		// Retention bookkeeping runs after the job is already observable
		// as finished, so it is timed as a metric rather than a trace
		// span — the root span's children must sum to the job latency.
		s.met.retireSecs.ObserveSeconds(time.Since(retireStart).Nanoseconds())
	}
	if err != nil {
		s.log.Info("job failed",
			"trace_id", job.TraceID(), "job", job.ID, "backend", p.b.Name(),
			"error", err.Error(), "elapsed_ms", float64(finished.Sub(submitted).Nanoseconds())/1e6)
	} else {
		s.log.Info("job done",
			"trace_id", job.TraceID(), "job", job.ID, "backend", p.b.Name(),
			"cache_hit", hit, "elapsed_ms", float64(finished.Sub(submitted).Nanoseconds())/1e6)
	}
}

// runBind executes one bind sub-job against its session's pinned
// artefact: an O(#symbols) bind-table patch under a "bind" span — the
// fast path that replaces the compile phase — then ordinary execution.
// The bound copy shares the pinned artefact's schedule, mapping and
// report, so per-bind work is proportional to the patched slots, not
// the circuit.
func (s *Service) runBind(job *Job, env *CompileEnv) (*Result, error) {
	sess := job.sess
	var span *obs.Span
	if env != nil {
		span = env.Span
	}
	bspan := span.StartChild("bind")
	bindStart := time.Now()
	bound, err := sess.compiled.BindArtefact(job.bindVals)
	bindDur := time.Since(bindStart)
	if err != nil {
		bspan.SetAttr("error", err.Error())
		bspan.End()
		return nil, err
	}
	bspan.SetAttr("session", sess.ID)
	bspan.SetAttr("symbols", strconv.Itoa(len(job.bindVals)))
	bspan.End()
	if s.met != nil {
		s.met.bindSecs.ObserveSeconds(bindDur.Nanoseconds())
	}
	rep, err := executeCompiled(sess.stack, bound, sess.numQubits, job.Req.Shots, job.seed, span)
	if err != nil {
		return nil, err
	}
	return &Result{Report: rep}, nil
}

// retire records a finished job for retention and evicts the oldest
// completed jobs beyond Config.RetainJobs (queued and running jobs are
// never evicted).
func (s *Service) retire(job *Job) {
	if s.cfg.RetainJobs < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, job.ID)
	for len(s.finished) > s.cfg.RetainJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// Submit validates, routes and enqueues a request, returning the tracked
// job. It never blocks: a full queue fails fast with ErrQueueFull.
func (s *Service) Submit(req Request) (*Job, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	if req.Shots <= 0 {
		req.Shots = s.cfg.DefaultShots
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		return nil, errors.New("qserv: service not started")
	}
	if s.stopped {
		return nil, ErrStopped
	}
	pool, err := s.route(&req)
	if err != nil {
		return nil, err
	}
	if err := validateDeviceOverrides(&req, pool.b); err != nil {
		return nil, err
	}
	n := s.seq.Add(1)
	seed := req.Seed
	if seed == 0 {
		// Derive a distinct deterministic seed per job from the base seed
		// and the job sequence number (odd multiplier keeps them unique).
		seed = s.cfg.Seed + int64(n)*2654435761
	}
	job := newJob(fmt.Sprintf("job-%d", n), req, pool, seed)
	if s.tracer != nil {
		// The trace ID is the job ID; the root span starts at the job's
		// submit instant so its duration matches the reported latency.
		job.trace = s.tracer.StartAt(job.ID, "job", job.submitted)
		root := job.trace.Root()
		root.SetAttr("backend", pool.b.Name())
		if req.Name != "" {
			root.SetAttr("name", req.Name)
		}
		job.queueSpan = root.StartChildAt("queue.wait", job.submitted)
	}
	// Enqueue straight into the backend's bounded lane: no shared
	// dispatcher, so one saturated backend cannot head-of-line block the
	// others.
	select {
	case pool.ch <- job:
	default:
		return nil, ErrQueueFull
	}
	s.jobs[job.ID] = job
	s.submitted.Add(1)
	if s.met != nil {
		s.met.jobsSubmitted.Inc()
	}
	s.log.Debug("job submitted",
		"trace_id", job.TraceID(), "job", job.ID, "backend", pool.b.Name(), "name", req.Name)
	return job, nil
}

// ErrUnknownBackend distinguishes lookups of unregistered backends
// (HTTP 404) from invalid inputs (HTTP 400).
var ErrUnknownBackend = errors.New("qserv: unknown backend")

// Recalibrate atomically replaces a backend's device calibration: jobs
// already running finish against the old tables, later jobs compile and
// execute against the new ones. The re-calibrated device hashes
// differently, so full-artefact cache entries built against the stale
// tables are never reused, while platform-generic prefix artefacts stay
// live (the prefix passes cannot observe calibration). Returns the
// re-calibrated device.
func (s *Service) Recalibrate(name string, cal *target.Calibration) (*target.Device, error) {
	s.mu.Lock()
	pool, ok := s.byName[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownBackend, name)
	}
	rc, can := pool.b.(Recalibrator)
	if !can {
		return nil, fmt.Errorf("qserv: backend %q does not support live recalibration", name)
	}
	dev, err := rc.Recalibrate(cal)
	if err != nil {
		return nil, err
	}
	if pool.met != nil {
		pool.met.calibReloads.Inc()
	}
	s.log.Info("calibration reloaded", "backend", name, "device_hash", dev.Hash())
	return dev, nil
}

// validateDeviceOverrides checks a request's device target / calibration
// override against the backend it routed to, so invalid overrides are
// rejected at submit time (HTTP 400) instead of failing the job later.
// Request.validate has already vetted the target device itself; what is
// left is backend compatibility: only gate backends take overrides, and
// a bare calibration override needs a calibrated backend device to
// overlay (or an explicit target).
func validateDeviceOverrides(req *Request, b Backend) error {
	if req.Target == nil && req.Calibration == nil {
		return nil
	}
	dp, ok := b.(DeviceProvider)
	if !ok {
		return fmt.Errorf("qserv: backend %q takes no device target or calibration override", b.Name())
	}
	if req.Target == nil && req.Calibration != nil {
		dev := dp.Device()
		if dev.Calibration == nil {
			return fmt.Errorf("qserv: backend %q is uncalibrated; submit a full \"target\" to calibrate it", b.Name())
		}
		if err := dev.WithCalibration(req.Calibration).Validate(); err != nil {
			return err
		}
	}
	return nil
}

// route resolves the request's target pool: by name when given, else the
// first registered backend that accepts the payload.
func (s *Service) route(req *Request) (*backendPool, error) {
	if req.Backend != "" {
		pool, ok := s.byName[req.Backend]
		if !ok {
			return nil, fmt.Errorf("qserv: unknown backend %q", req.Backend)
		}
		if !pool.b.Accepts(req) {
			return nil, fmt.Errorf("qserv: backend %q does not accept this payload", req.Backend)
		}
		return pool, nil
	}
	for _, pool := range s.pools {
		if pool.b.Accepts(req) {
			return pool, nil
		}
	}
	return nil, errors.New("qserv: no backend accepts this payload")
}

// Job looks up a job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Await blocks until the job with the given ID completes or ctx is
// cancelled, returning the job.
func (s *Service) Await(ctx context.Context, id string) (*Job, error) {
	j, ok := s.Job(id)
	if !ok {
		return nil, fmt.Errorf("qserv: unknown job %q", id)
	}
	if err := j.Wait(ctx); err != nil && j.Status() != StatusFailed {
		return j, err
	}
	return j, nil
}

// BackendView is one backend's slice of the GET /backends report: its
// identity and — for gate backends — the full device description behind
// it, calibration included, plus the device content hash clients can use
// to detect re-calibrations.
type BackendView struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"` // "gate" or "accelerator"
	Workers int    `json:"workers"`
	// Device is the hardware target behind a gate backend (topology as
	// an explicit edge list, native gates, timings, calibration).
	Device *target.Device `json:"device,omitempty"`
	// DeviceHash is the device's stable content hash; it changes
	// whenever the device — including its calibration — changes.
	DeviceHash string `json:"device_hash,omitempty"`
}

// Backends describes every registered backend, exposing gate backends'
// devices and calibration data — the discovery half of the target API.
func (s *Service) Backends() []BackendView {
	s.mu.Lock()
	pools := make([]*backendPool, len(s.pools))
	copy(pools, s.pools)
	s.mu.Unlock()
	out := make([]BackendView, 0, len(pools))
	for _, p := range pools {
		bv := BackendView{Name: p.b.Name(), Kind: "accelerator", Workers: p.workers}
		if dp, ok := p.b.(DeviceProvider); ok {
			bv.Kind = "gate"
			bv.Device = dp.Device()
			bv.DeviceHash = bv.Device.Hash()
		}
		out = append(out, bv)
	}
	return out
}

// PassStats is one compiler pass's aggregated slice of the /stats report:
// how often the pass ran across this backend's compiles, the wall time it
// consumed, and the gate-count work it did.
type PassStats struct {
	Pass    string  `json:"pass"`
	Runs    uint64  `json:"runs"`
	TotalMs float64 `json:"total_ms"`
	AvgUs   float64 `json:"avg_us"`
	// P50Us/P95Us/P99Us are latency percentiles estimated from a
	// geometric-bucket histogram of the pass's wall times, so tail
	// compile time is visible per backend and pass, not just averages.
	P50Us float64 `json:"p50_us"`
	P95Us float64 `json:"p95_us"`
	P99Us float64 `json:"p99_us"`
	// GatesIn and GatesOut sum the circuit sizes entering and leaving
	// the pass across all runs.
	GatesIn    uint64 `json:"gates_in"`
	GatesOut   uint64 `json:"gates_out"`
	AddedSwaps uint64 `json:"added_swaps,omitempty"`
}

// BackendStats is one backend's slice of the /stats report.
type BackendStats struct {
	Name       string `json:"name"`
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	JobsDone   uint64 `json:"jobs_done"`
	JobsFailed uint64 `json:"jobs_failed"`
	CacheHits  uint64 `json:"cache_hits"`
	// CompileCacheSkips counts jobs whose whole compile pipeline was
	// skipped by a full-artefact cache hit (numerically CacheHits, spelt
	// out so the pass-latency hit-rate math is auditable: per-pass Runs
	// lag JobsDone by exactly this many jobs). Mirrored to Prometheus as
	// qserv_compile_cache_skips_total{level="full"}.
	CompileCacheSkips uint64 `json:"compile_cache_skips"`
	// PrefixHits counts kernels this backend's compiles served from the
	// prefix-artefact cache — compiles that re-ran only the variant
	// suffix (map/schedule/assemble) against cached decompose/optimize
	// output. Full-artefact cache hits skip compilation entirely and are
	// counted in CacheHits instead.
	PrefixHits uint64  `json:"prefix_hits"`
	BusyMs     float64 `json:"busy_ms"`
	// JobsPerSec is completed jobs divided by service uptime — the
	// per-backend throughput figure.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// CompilePasses breaks the backend's compile time down by pipeline
	// pass (absent for backends that never compiled).
	CompilePasses []PassStats `json:"compile_passes,omitempty"`
}

// Stats is the service-wide instrumentation snapshot.
type Stats struct {
	UptimeSec     float64    `json:"uptime_sec"`
	QueueDepth    int        `json:"queue_depth"`
	QueueCap      int        `json:"queue_cap"`
	JobsSubmitted uint64     `json:"jobs_submitted"`
	JobsDone      uint64     `json:"jobs_done"`
	JobsFailed    uint64     `json:"jobs_failed"`
	CacheHitRate  float64    `json:"cache_hit_rate"`
	Cache         CacheStats `json:"cache"`
	// PrefixHitRate and PrefixCache report the prefix-artefact level of
	// the two-level compile cache: hits are kernels whose platform-
	// generic prefix (decompose/optimize) was fetched instead of
	// recompiled, so misses only pay the map/schedule/assemble suffix.
	PrefixHitRate float64        `json:"prefix_hit_rate"`
	PrefixCache   CacheStats     `json:"prefix_cache"`
	Backends      []BackendStats `json:"backends"`
	// Sessions reports the variational-session layer: open sessions,
	// lifecycle churn and binds streamed through the fast path.
	Sessions SessionStats `json:"sessions"`
}

// Stats returns a point-in-time snapshot of queue depth, per-backend
// throughput and cache effectiveness.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	pools := make([]*backendPool, len(s.pools))
	copy(pools, s.pools)
	startedAt := s.startedAt
	s.sweepSessionsLocked(time.Now())
	sessions := SessionStats{
		Active:  len(s.sessions),
		Opened:  s.sessOpened,
		Expired: s.sessExpired,
		Evicted: s.sessEvicted,
		Binds:   s.binds.Load(),
	}
	s.mu.Unlock()

	uptime := time.Since(startedAt)
	if startedAt.IsZero() {
		uptime = 0
	}
	st := Stats{
		UptimeSec:     uptime.Seconds(),
		JobsSubmitted: s.submitted.Load(),
		Sessions:      sessions,
	}
	for _, p := range pools {
		st.QueueDepth += len(p.ch)
		st.QueueCap += cap(p.ch)
	}
	if s.cache != nil {
		st.Cache = s.cache.Stats()
		st.CacheHitRate = st.Cache.HitRate()
	}
	if s.prefix != nil {
		st.PrefixCache = s.prefix.Stats()
		st.PrefixHitRate = st.PrefixCache.HitRate()
	}
	for _, p := range pools {
		bs := BackendStats{
			Name:       p.b.Name(),
			Workers:    p.workers,
			QueueDepth: len(p.ch),
		}
		// /stats is a thin view over the registry-owned instruments the
		// workers record into; with metrics disabled the counters stay 0.
		if m := p.met; m != nil {
			bs.JobsDone = counterUint(m.done)
			bs.JobsFailed = counterUint(m.failed)
			bs.CacheHits = counterUint(m.fullSkips)
			bs.CompileCacheSkips = bs.CacheHits
			bs.PrefixHits = counterUint(m.prefixSkips)
			bs.BusyMs = m.busy.Value() * 1e3
			bs.CompilePasses = m.passStats()
		}
		st.JobsDone += bs.JobsDone
		st.JobsFailed += bs.JobsFailed
		if sec := uptime.Seconds(); sec > 0 {
			bs.JobsPerSec = float64(bs.JobsDone) / sec
		}
		st.Backends = append(st.Backends, bs)
	}
	return st
}
