package qserv

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/accel"
	"repro/internal/anneal"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cqasm"
	"repro/internal/obs"
	"repro/internal/openql"
	"repro/internal/target"
)

// CompileEnv carries the shared compile resources the service hands each
// backend run: the two cache levels and the service-wide kernel-compile
// budget. A nil env (or nil fields) disables the corresponding resource.
type CompileEnv struct {
	// Cache is the full-artefact compile cache (level 2).
	Cache *CompileCache
	// Prefix is the platform-generic prefix-artefact cache (level 1).
	Prefix *PrefixCache
	// Gate bounds kernel-compile goroutines across all concurrent jobs.
	Gate compiler.WorkerGate
	// Workers is the per-compile kernel parallelism ceiling applied to
	// stacks that don't set their own.
	Workers int
	// Span is the job's run span, under which the backend attaches
	// compile and execute phase spans (nil — the usual shared env —
	// disables tracing; the service hands workers a per-job copy
	// carrying the span).
	Span *obs.Span
}

// Backend is one execution target behind the service's worker pools. Run
// must be safe for concurrent use: workers of the same pool call it in
// parallel.
type Backend interface {
	Name() string
	// Accepts reports whether the backend can run the request's payload.
	Accepts(r *Request) bool
	// Run executes the request with the given per-job seed, consulting the
	// shared compile caches in env (nil disables caching). It returns the
	// result and whether the compile step was a full-artefact cache hit.
	Run(r *Request, seed int64, env *CompileEnv) (*Result, bool, error)
}

// DeviceProvider is implemented by backends that expose a hardware
// target description — the gate backends. The service uses it for the
// /backends view and to validate per-job calibration overrides at
// submit time.
type DeviceProvider interface {
	Device() *target.Device
}

// Recalibrator is implemented by backends whose device calibration can
// be replaced while the service runs — the backend half of
// PUT /backends/{name}/calibration. Recalibrate validates the table
// against the backend's device, applies it atomically (in-flight jobs
// finish against the old tables) and returns the re-calibrated device.
type Recalibrator interface {
	Recalibrate(cal *target.Calibration) (*target.Device, error)
}

// SessionBackend is implemented by backends that can pin a compiled —
// possibly parameterised — artefact for the variational session API
// (POST /sessions): the gate backends. CompileForSession compiles the
// request's program eagerly through the shared caches; the session then
// streams parameter bindings against the pinned artefact without ever
// re-entering the compiler.
type SessionBackend interface {
	Backend
	CompileForSession(r *Request, env *CompileEnv) (*core.Stack, *openql.Program, *openql.Compiled, bool, error)
}

// StackBackend runs gate jobs through a full core.Stack, caching compiled
// circuits across jobs. The stack is held behind an atomic pointer so
// live recalibration can swap it without stalling concurrent workers.
type StackBackend struct {
	stack atomic.Pointer[core.Stack]
}

// NewStackBackend wraps a stack as a service backend.
func NewStackBackend(s *core.Stack) *StackBackend {
	b := &StackBackend{}
	b.stack.Store(s)
	return b
}

// Stack returns the backend's current stack (recalibration replaces it).
func (b *StackBackend) Stack() *core.Stack { return b.stack.Load() }

// Name returns the stack name ("perfect", "superconducting", …).
func (b *StackBackend) Name() string { return b.Stack().Name }

// Device returns the device description behind the backend's stack
// (synthesised for hand-built platforms).
func (b *StackBackend) Device() *target.Device { return b.Stack().Platform.AsDevice() }

// Recalibrate overlays a new calibration table on the backend's device
// and swaps in a stack rebuilt for the re-calibrated device; compiler
// and execution tuning carry over (core.Stack.WithDevice). The new
// device hash keys fresh full-artefact cache entries, so no job ever
// reuses a compile against the stale tables, while platform-generic
// prefix artefacts stay live. Lock-free: concurrent recalibrations
// retry on a CAS.
func (b *StackBackend) Recalibrate(cal *target.Calibration) (*target.Device, error) {
	for {
		cur := b.stack.Load()
		dev := cur.Platform.AsDevice().WithCalibration(cal)
		if err := dev.Validate(); err != nil {
			return nil, err
		}
		next, err := cur.WithDevice(dev)
		if err != nil {
			return nil, err
		}
		if b.stack.CompareAndSwap(cur, next) {
			return dev, nil
		}
	}
}

// Accepts reports whether the request is a gate job.
func (b *StackBackend) Accepts(r *Request) bool { return r.CQASM != "" || r.Program != nil }

// resolveStack materialises the stack a request compiles and executes
// on: the backend's current stack with the request's device, calibration,
// engine and pass overrides applied, plus the service's shared compile
// resources grafted on. The backend's own stack is never mutated —
// overrides copy.
func (b *StackBackend) resolveStack(r *Request, env *CompileEnv) (*core.Stack, error) {
	stack := b.Stack()
	if r.Target != nil || r.Calibration != nil {
		dev := r.Target
		if dev == nil {
			dev = b.Device()
		}
		if r.Calibration != nil {
			dev = dev.WithCalibration(r.Calibration)
		}
		// The device decides mode, platform, noise and microcode; the
		// backend's compiler and execution tuning carries over
		// (core.Stack.WithDevice).
		override, err := stack.WithDevice(dev)
		if err != nil {
			return nil, err
		}
		stack = override
	}
	if (r.Engine != "" && r.Engine != stack.Engine) || (r.Passes != "" && r.Passes != stack.Passes) {
		override := *stack
		if r.Engine != "" {
			override.Engine = r.Engine
		}
		if r.Passes != "" {
			override.Passes = r.Passes
		}
		stack = &override
	}
	// Graft the service's shared compile resources onto a copy of the
	// stack: the prefix cache and worker gate are per-service, not
	// per-backend, and the stack itself is shared across workers.
	if env != nil && (env.Prefix != nil || env.Gate != nil || env.Workers > 0) {
		run := *stack
		if run.PrefixCache == nil && env.Prefix != nil {
			run.PrefixCache = env.Prefix
		}
		if run.CompileGate == nil {
			run.CompileGate = env.Gate
		}
		if run.CompileWorkers == 0 {
			run.CompileWorkers = env.Workers
		}
		stack = &run
	}
	return stack, nil
}

// compileOn compiles the program on the resolved stack through the
// shared full-artefact cache (a nil cache compiles uncached), attaching
// a "compile" phase span under span when tracing is live.
func compileOn(stack *core.Stack, p *openql.Program, cache *CompileCache, span *obs.Span) (*openql.Compiled, bool, error) {
	var (
		compiled *openql.Compiled
		hit      bool
		err      error
	)
	cspan := span.StartChild("compile")
	compileStart := time.Now()
	if cache == nil {
		cspan.SetAttr("cache", "off")
		compiled, err = stack.Compile(p)
	} else {
		// Keyed on the compile fingerprint only: an engine override
		// changes execution, not compilation, so it reuses the entry.
		// Symbolic programs hash their expressions, not any bound values,
		// so every binding of one parameterised program keys this same
		// entry.
		key := cacheKey(stack.CompileFingerprint(), canonicalText(p))
		compiled, hit, err = cache.GetOrCompile(key, func() (*openql.Compiled, error) {
			return stack.Compile(p)
		})
		if err == nil {
			if hit {
				cspan.SetAttr("cache", "hit")
			} else {
				cspan.SetAttr("cache", "miss")
			}
		}
	}
	if err != nil {
		cspan.SetAttr("error", err.Error())
		cspan.End()
		return nil, false, err
	}
	if !hit {
		synthesizeCompileSpans(cspan, compileStart, compiled.Report)
	}
	cspan.End()
	return compiled, hit, nil
}

// executeCompiled runs a concrete artefact on the stack under an
// "execute" phase span, decorating it with shot count and the engine's
// measured wall time.
func executeCompiled(stack *core.Stack, compiled *openql.Compiled, numQubits, shots int, seed int64, span *obs.Span) (*core.Report, error) {
	espan := span.StartChild("execute")
	rep, err := stack.RunCompiled(compiled, numQubits, shots, seed)
	if err != nil {
		espan.SetAttr("error", err.Error())
		espan.End()
		return nil, err
	}
	if espan != nil {
		espan.SetAttr("shots", strconv.Itoa(shots))
		// The engine that actually executed (auto dispatch resolved).
		if rep.Engine != "" {
			espan.SetAttr("engine", rep.Engine)
		}
		if rep.ExecNs > 0 {
			// The engine's measured wall time, anchored so the span ends
			// where the execute phase does.
			d := time.Duration(rep.ExecNs)
			eng := espan.ChildAt("engine", time.Now().Add(-d), d)
			if rep.Engine != "" {
				eng.SetAttr("engine", rep.Engine)
			}
			if res := rep.Result; res != nil && res.Batches > 0 {
				eng.SetAttr("shot_batches", strconv.Itoa(res.Batches))
			}
		}
	}
	espan.End()
	return rep, nil
}

// Run compiles (or cache-fetches) the program and executes it. Per-job
// engine and pass-spec overrides execute (and cache) under a copy of the
// stack with those settings, so jobs on one backend can pick their
// execution engine and compile pipeline independently. An engine override
// reuses the cached compile (engines never change compilation); a pass
// override keys its own cache entry through CompileFingerprint. A device
// target or calibration override rebuilds the stack for the overridden
// device (core.NewStackForDevice), whose content hash keys distinct
// full-artefact cache entries — re-calibrating never reuses stale
// compiles. The prefix level is keyed independently (gate-set hash +
// prefix spec + kernel text), so those same overrides — and pass
// overrides that only change the suffix — still reuse the cached
// platform-generic prefix artefacts and recompile suffix-only.
func (b *StackBackend) Run(r *Request, seed int64, env *CompileEnv) (*Result, bool, error) {
	p, err := b.program(r)
	if err != nil {
		return nil, false, err
	}
	stack, err := b.resolveStack(r, env)
	if err != nil {
		return nil, false, err
	}
	var span *obs.Span
	var cache *CompileCache
	if env != nil {
		span = env.Span
		cache = env.Cache
	}
	compiled, hit, err := compileOn(stack, p, cache, span)
	if err != nil {
		return nil, false, err
	}
	rep, err := executeCompiled(stack, compiled, p.NumQubits, r.Shots, seed, span)
	if err != nil {
		return nil, hit, err
	}
	return &Result{Report: rep}, hit, nil
}

// CompileForSession eagerly compiles the request's gate program for the
// session API: it resolves the request's stack (device, engine and pass
// overrides apply to every bind the session later streams) and compiles
// through the shared caches, preserving any symbolic parameters in the
// artefact. All bindings of one parameterised program share the single
// cache entry the session compile populated. Returns the resolved stack
// the session executes on, the program, the (possibly parametric)
// artefact and whether the compile was a full-artefact cache hit.
func (b *StackBackend) CompileForSession(r *Request, env *CompileEnv) (*core.Stack, *openql.Program, *openql.Compiled, bool, error) {
	p, err := b.program(r)
	if err != nil {
		return nil, nil, nil, false, err
	}
	stack, err := b.resolveStack(r, env)
	if err != nil {
		return nil, nil, nil, false, err
	}
	var cache *CompileCache
	if env != nil {
		cache = env.Cache
	}
	compiled, hit, err := compileOn(stack, p, cache, nil)
	if err != nil {
		return nil, nil, nil, false, err
	}
	return stack, p, compiled, hit, nil
}

// synthesizeCompileSpans grafts the compile report's timing records
// under the compile span: one span per kernel's trip through the
// platform-generic prefix (kernels may have compiled in parallel, so
// each starts at the compile start with its own wall time — overlap is
// honest) and one span per suffix pass row, laid end to end. Offsets
// within the compile span are approximate; durations are the measured
// wall times.
func synthesizeCompileSpans(parent *obs.Span, start time.Time, rep *compiler.CompileReport) {
	if parent == nil || rep == nil {
		return
	}
	for _, k := range rep.Kernels {
		ks := parent.ChildAt("kernel:"+k.Kernel, start, time.Duration(k.WallNs))
		if k.PrefixCached {
			ks.SetAttr("prefix_cached", "true")
		}
	}
	// The leading rows of a kernel-by-kernel compile aggregate the
	// prefix passes over all kernels — already covered by the kernel
	// spans above, so skip them here.
	skip := 0
	if rep.PrefixSpec != "" {
		if passes, err := compiler.ParsePassSpec(rep.PrefixSpec); err == nil {
			skip = len(passes)
		}
	}
	at := start
	for i, m := range rep.Passes {
		if i < skip {
			continue
		}
		d := time.Duration(m.WallNs)
		ps := parent.ChildAt("pass:"+m.Pass, at, d)
		ps.SetAttr("gates", strconv.Itoa(m.GatesBefore)+"->"+strconv.Itoa(m.GatesAfter))
		if m.AddedSwaps > 0 {
			ps.SetAttr("added_swaps", strconv.Itoa(m.AddedSwaps))
		}
		at = at.Add(d)
	}
}

// canonicalText renders the program's kernel partition canonically: one
// content hash per kernel (iterations unrolled, names ignored — see
// openql.Kernel.ContentHash), NUL-joined. The same gate stream submitted
// as cQASM text or built via the OpenQL API keys to one entry, while
// programs that split the same gates across different kernel boundaries
// key distinct entries — they genuinely compile differently, since the
// platform-generic prefix runs per kernel and never optimises across
// kernel boundaries.
func canonicalText(p *openql.Program) string {
	var b strings.Builder
	// The register width leads the key: kernel hashes already fold it in,
	// but a zero-kernel program must still key distinctly per width (its
	// compiled artefact is a width-sized empty circuit).
	fmt.Fprintf(&b, "q%d", p.NumQubits)
	b.WriteByte(0)
	for _, k := range p.Kernels {
		b.WriteString(k.ContentHash(p.NumQubits))
		b.WriteByte(0)
	}
	return b.String()
}

// program materialises the request's gate payload as an OpenQL program.
func (b *StackBackend) program(r *Request) (*openql.Program, error) {
	if r.Program != nil {
		return r.Program, nil
	}
	prog, err := cqasm.Parse(r.CQASM)
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	flat, err := prog.Flatten()
	if err != nil {
		return nil, err
	}
	name := r.Name
	if name == "" {
		name = "cqasm"
	}
	return openql.ProgramFromCircuit(name, flat), nil
}

// AccelBackend adapts an accel.Accelerator — the annealers and classical
// co-processors of Fig 1 — to the service. build turns a request into an
// accelerator instance (configured with the per-job seed) plus its
// offloadable task, returning false when the payload does not fit.
type AccelBackend struct {
	Label string
	build func(r *Request, seed int64) (accel.Accelerator, accel.Task, bool)
}

// Name returns the backend label.
func (b *AccelBackend) Name() string { return b.Label }

// Accepts reports whether the accelerator can run the request.
func (b *AccelBackend) Accepts(r *Request) bool {
	_, _, ok := b.build(r, 0)
	return ok
}

// Run builds the task and offloads it to the wrapped accelerator.
func (b *AccelBackend) Run(r *Request, seed int64, _ *CompileEnv) (*Result, bool, error) {
	acc, t, ok := b.build(r, seed)
	if !ok {
		return nil, false, fmt.Errorf("qserv: backend %q cannot run this payload", b.Label)
	}
	out, err := acc.Execute(t)
	if err != nil {
		return nil, false, err
	}
	switch v := out.(type) {
	case *anneal.Result:
		return &Result{Anneal: v}, false, nil
	case *core.Report:
		return &Result{Report: v}, false, nil
	default:
		return nil, false, fmt.Errorf("qserv: backend %q returned unexpected %T", b.Label, out)
	}
}

// NewAnnealBackend wraps the simulated quantum annealer (or the digital
// annealer when digital is true) as a QUBO backend; each job anneals with
// its own derived seed.
func NewAnnealBackend(label string, digital bool, sqa anneal.SQAOptions, da anneal.DigitalAnnealerOptions) *AccelBackend {
	return &AccelBackend{
		Label: label,
		build: func(r *Request, seed int64) (accel.Accelerator, accel.Task, bool) {
			if r.QUBO == nil {
				return nil, nil, false
			}
			jobSQA, jobDA := sqa, da
			jobSQA.Seed, jobDA.Seed = seed, seed
			acc := &accel.AnnealAccelerator{Digital: digital, SQA: jobSQA, DA: jobDA}
			return acc, accel.AnnealTask{Q: r.QUBO}, true
		},
	}
}

// NewClassicalFallback returns the classical co-processor stand-in: it
// brute-forces QUBOs of at most maxVars variables exactly — the fallback
// lane for problems small enough that quantum offload is not worth it.
func NewClassicalFallback(label string, maxVars int) *AccelBackend {
	acc := &accel.ClassicalAccelerator{Label: label}
	return &AccelBackend{
		Label: label,
		build: func(r *Request, _ int64) (accel.Accelerator, accel.Task, bool) {
			if r.QUBO == nil || r.QUBO.N > maxVars {
				return nil, nil, false
			}
			q := r.QUBO
			return acc, accel.ClassicalTask{
				Name: "qubo-bruteforce",
				F: func() (interface{}, error) {
					bits, energy := q.BruteForce()
					spins := make([]int, len(bits))
					for i, b := range bits {
						spins[i] = 2*b - 1
					}
					return &anneal.Result{Spins: spins, Bits: bits, Energy: energy}, nil
				},
			}, true
		},
	}
}

// Compile-time interface checks.
var (
	_ Backend        = (*StackBackend)(nil)
	_ Backend        = (*AccelBackend)(nil)
	_ DeviceProvider = (*StackBackend)(nil)
	_ Recalibrator   = (*StackBackend)(nil)
	_ SessionBackend = (*StackBackend)(nil)
)
