package qserv

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/compiler"
	"repro/internal/qubo"
	"repro/internal/qx"
	"repro/internal/target"
)

// SubmitRequest is the JSON body of POST /submit. Exactly one of CQASM or
// QUBO must be set.
type SubmitRequest struct {
	Name    string    `json:"name,omitempty"`
	CQASM   string    `json:"cqasm,omitempty"`
	QUBO    *QUBOJSON `json:"qubo,omitempty"`
	Backend string    `json:"backend,omitempty"`
	Engine  string    `json:"engine,omitempty"`
	// Passes is a comma-separated compiler pass spec for this job, with
	// optional per-pass options (e.g. "decompose,optimize,
	// map(lookahead=8,strategy=noise),lower-swaps,schedule,assemble");
	// empty uses the backend's configured pipeline. Malformed specs,
	// unknown pass names and invalid options are rejected at submit time
	// with 400.
	Passes string `json:"passes,omitempty"`
	// Target is a full device description in the device-JSON schema (see
	// GET /backends or examples/devices/) replacing the backend's device
	// for this job. Invalid devices are rejected with 400.
	Target json.RawMessage `json:"target,omitempty"`
	// Calibration overrides the calibration table of the job's device
	// (the target when given, the backend's device otherwise). Invalid
	// tables — wrong qubit count, non-coupler edges, out-of-range error
	// rates — are rejected with 400.
	Calibration *target.Calibration `json:"calibration,omitempty"`
	Shots       int                 `json:"shots,omitempty"`
	Seed        int64               `json:"seed,omitempty"`
}

// QUBOJSON is the wire form of a QUBO: n variables plus sparse
// upper-triangular terms (diagonal terms are the linear coefficients).
type QUBOJSON struct {
	N     int        `json:"n"`
	Terms []QUBOTerm `json:"terms"`
}

// QUBOTerm is one coefficient of the quadratic form.
type QUBOTerm struct {
	I int     `json:"i"`
	J int     `json:"j"`
	V float64 `json:"v"`
}

func (q *QUBOJSON) toQUBO() (*qubo.QUBO, error) {
	if q.N <= 0 {
		return nil, fmt.Errorf("qserv: qubo.n must be positive, got %d", q.N)
	}
	out := qubo.New(q.N)
	for _, t := range q.Terms {
		if t.I < 0 || t.I >= q.N || t.J < 0 || t.J >= q.N {
			return nil, fmt.Errorf("qserv: qubo term (%d,%d) out of range for n=%d", t.I, t.J, q.N)
		}
		out.Add(t.I, t.J, t.V)
	}
	return out, nil
}

// SubmitResponse is the JSON body returned by POST /submit.
type SubmitResponse struct {
	ID      string `json:"id"`
	Status  Status `json:"status"`
	Backend string `json:"backend"`
}

// JobView is the JSON rendering of a job for GET /jobs/{id}.
type JobView struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// TraceID names the job's span tree, served by GET /jobs/{id}/trace
	// (empty when tracing is disabled). It equals the job ID.
	TraceID  string `json:"trace_id,omitempty"`
	Status   Status `json:"status"`
	Backend  string `json:"backend"`
	CacheHit bool   `json:"cache_hit"`
	// Session names the variational session a bind sub-job ran against.
	Session string `json:"session,omitempty"`
	Passes  string `json:"passes,omitempty"`
	// Device names the per-job target device override, when one was
	// submitted; Recalibrated marks a per-job calibration override.
	Device       string     `json:"device,omitempty"`
	Recalibrated bool       `json:"recalibrated,omitempty"`
	Error        string     `json:"error,omitempty"`
	SubmittedAt  time.Time  `json:"submitted_at"`
	StartedAt    *time.Time `json:"started_at,omitempty"`
	FinishedAt   *time.Time `json:"finished_at,omitempty"`
	ElapsedMs    float64    `json:"elapsed_ms,omitempty"`
	// Engine names the qx engine that executed the job's shots. With
	// the "auto" meta-engine this is the resolved dispatch target
	// (stabilizer for Clifford circuits under tableau-compatible noise,
	// optimized otherwise).
	Engine string `json:"engine,omitempty"`
	// CompileReport is the per-pass account (wall time, gate count,
	// depth, added SWAPs) of the compile pipeline behind a gate job's
	// result; on a cache hit it describes the original compilation.
	CompileReport *compiler.CompileReport `json:"compile_report,omitempty"`
	Result        *ResultView             `json:"result,omitempty"`
}

// ResultView is the JSON rendering of a job result.
type ResultView struct {
	// Gate jobs: measurement statistics plus the modelled wall time.
	Counts map[string]int `json:"counts,omitempty"`
	Shots  int            `json:"shots,omitempty"`
	WallNs int            `json:"wall_ns,omitempty"`
	Swaps  int            `json:"added_swaps,omitempty"`
	// Annealing jobs: solution bits and energy.
	Bits   []int    `json:"bits,omitempty"`
	Energy *float64 `json:"energy,omitempty"`
}

func viewJob(j *Job) JobView {
	submitted, started, finished := j.Times()
	v := JobView{
		ID:           j.ID,
		Name:         j.Req.Name,
		TraceID:      j.TraceID(),
		Status:       j.Status(),
		Backend:      j.Backend(),
		CacheHit:     j.CacheHit(),
		Session:      j.Session(),
		Passes:       j.Req.Passes,
		Recalibrated: j.Req.Calibration != nil,
		SubmittedAt:  submitted,
	}
	if j.Req.Target != nil {
		v.Device = j.Req.Target.Name
	}
	if !started.IsZero() {
		v.StartedAt = &started
	}
	if !finished.IsZero() {
		v.FinishedAt = &finished
		v.ElapsedMs = float64(finished.Sub(submitted).Nanoseconds()) / 1e6
	}
	if err := j.Err(); err != nil {
		v.Error = err.Error()
	}
	if res := j.Result(); res != nil {
		rv := &ResultView{}
		if res.Report != nil {
			v.CompileReport = res.Report.Compile
			v.Engine = res.Report.Engine
		}
		if res.Report != nil && res.Report.Result != nil {
			r := res.Report.Result
			rv.Counts = make(map[string]int, len(r.Counts)+len(r.WideCounts))
			//qlint:nondeterministic-ok order-independent: key-preserving copy into a map; encoding/json sorts keys on render
			for idx, c := range r.Counts {
				rv.Counts[qx.BitString(idx, r.NumQubits)] = c
			}
			// Wide registers (>63 qubits, stabilizer engine) already key
			// by bitstring.
			//qlint:nondeterministic-ok order-independent: key-preserving copy into a map; encoding/json sorts keys on render
			for bits, c := range r.WideCounts {
				rv.Counts[bits] = c
			}
			rv.Shots = r.Shots
			rv.WallNs = res.Report.WallNs
			if res.Report.Mapping != nil {
				rv.Swaps = res.Report.Mapping.AddedSwaps
			}
		}
		if res.Anneal != nil {
			rv.Bits = res.Anneal.Bits
			e := res.Anneal.Energy
			rv.Energy = &e
		}
		v.Result = rv
	}
	return v
}

// Handler returns the service's HTTP API:
//
//	POST /submit        submit a job (202, or 503 when the queue is full);
//	                    the response carries the job's trace ID in the
//	                    X-Trace-Id header
//	POST /sessions      open a variational session: eagerly compile a
//	                    parameterised program (cQASM with $name angles)
//	                    and pin the artefact for streaming binds (201)
//	POST /sessions/{id}/bind
//	                    bind the session's parameters and execute as a
//	                    sub-job (202, 404 unknown session, 503 full
//	                    queue); the bind replaces the compile phase with
//	                    an O(#symbols) artefact patch
//	GET  /sessions      open sessions
//	GET  /sessions/{id} one session: symbols, bind count, expiry
//	DELETE /sessions/{id}
//	                    close a session (in-flight binds finish)
//	GET  /jobs/{id}     job status and result; ?wait=2s long-polls
//	GET  /jobs/{id}/trace
//	                    the job's span tree: queue wait, compile (cache
//	                    level, per-kernel prefix, per-pass suffix),
//	                    execution (engine + shot batches) — durations in
//	                    nanoseconds, the root span spanning submit to
//	                    finish exactly
//	PUT  /backends/{name}/calibration
//	                    live re-calibration: replace the backend device's
//	                    calibration table (400 invalid, 404 unknown)
//	GET  /backends      registered backends with device + calibration data
//	GET  /stats         queue depth, per-backend throughput, hit rates of
//	                    both compile-cache levels (full + prefix), per-pass
//	                    compile latency percentiles
//	GET  /metrics       Prometheus text-format exposition of every qserv
//	                    metric (jobs, latency histograms, cache levels,
//	                    compile passes, HTTP traffic)
//	GET  /healthz       liveness probe
//
// Every request passes through the instrumentation middleware:
// per-route counters/latency histograms and a Debug-level access log.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /submit", s.handleSubmit)
	mux.HandleFunc("POST /sessions", s.handleOpenSession)
	mux.HandleFunc("GET /sessions", s.handleSessions)
	mux.HandleFunc("GET /sessions/{id}", s.handleSession)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleCloseSession)
	mux.HandleFunc("POST /sessions/{id}/bind", s.handleBind)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("PUT /backends/{name}/calibration", s.handleCalibration)
	mux.HandleFunc("GET /backends", s.handleBackends)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s.instrument(mux)
}

// statusRecorder captures the response code for the request metrics and
// access log.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps the API mux with request metrics (labelled by the
// matched route pattern, so path parameters don't explode cardinality)
// and structured request logging.
func (s *Service) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		pattern := r.Pattern
		if pattern == "" {
			pattern = "unmatched"
		}
		elapsed := time.Since(start)
		if s.met != nil {
			s.met.httpRequests.With(r.Method, pattern, strconv.Itoa(rec.code)).Inc()
			s.met.httpSecs.With(pattern).ObserveSeconds(elapsed.Nanoseconds())
		}
		s.log.Debug("http request",
			"method", r.Method, "path", r.URL.Path, "pattern", pattern,
			"status", rec.code, "duration_ms", float64(elapsed.Nanoseconds())/1e6)
	})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sr SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad json: %w", err))
		return
	}
	req := Request{
		Name:        sr.Name,
		CQASM:       sr.CQASM,
		Backend:     sr.Backend,
		Engine:      sr.Engine,
		Passes:      sr.Passes,
		Calibration: sr.Calibration,
		Shots:       sr.Shots,
		Seed:        sr.Seed,
	}
	if len(sr.Target) > 0 {
		dev, err := target.Parse(sr.Target)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		req.Target = dev
	}
	if sr.QUBO != nil {
		q, err := sr.QUBO.toQUBO()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		req.QUBO = q
	}
	job, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrStopped):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if id := job.TraceID(); id != "" {
		w.Header().Set("X-Trace-Id", id)
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID:      job.ID,
		Status:  job.Status(),
		Backend: job.Backend(),
	})
}

// handleJobTrace serves the job's span tree. 404 covers unknown jobs,
// disabled tracing and traces evicted from the bounded ring.
func (s *Service) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Job(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	tr, ok := s.tracer.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no trace for job %q (tracing disabled or trace evicted)", id))
		return
	}
	writeJSON(w, http.StatusOK, tr.View())
}

// handleCalibration applies a live calibration reload to a backend:
// the request body is a calibration table in the device-JSON schema.
func (s *Service) handleCalibration(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var cal target.Calibration
	if err := json.NewDecoder(r.Body).Decode(&cal); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad json: %w", err))
		return
	}
	dev, err := s.Recalibrate(name, &cal)
	switch {
	case errors.Is(err, ErrUnknownBackend):
		writeError(w, http.StatusNotFound, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"backend":     name,
		"device_hash": dev.Hash(),
	})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait duration %q", waitStr))
			return
		}
		select {
		case <-job.Done():
		case <-time.After(d):
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, viewJob(job))
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleBackends(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]BackendView{"backends": s.Backends()})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
