package qserv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/openql"
	"repro/internal/qubo"
)

// ansatzProgram builds a one-layer QAOA-flavoured program on 3 qubits.
// With lit nil the angles stay symbolic ($gamma, $beta); otherwise they
// are the literal values — the recompile reference for the fast path.
func ansatzProgram(lit map[string]float64) *openql.Program {
	angle := func(k *openql.Kernel, name string, q int, sym string, coeff float64) {
		if lit == nil {
			k.GateExpr(name, []int{q}, circuit.Sym(sym).Scale(coeff))
		} else {
			k.Gate(name, []int{q}, coeff*lit[sym])
		}
	}
	p := openql.NewProgram("ansatz", 3)
	k := openql.NewKernel("layer", 3)
	for q := 0; q < 3; q++ {
		k.H(q)
		angle(k, "rz", q, "gamma", 2)
		k.CNOT(q, (q+1)%3)
		angle(k, "rx", q, "beta", 1)
	}
	k.MeasureAll()
	p.AddKernel(k)
	return p
}

// TestSessionBindSharesOneCacheEntry is the tentpole contract: every
// binding of one symbolic program — and every session pinning it —
// shares a single full-artefact cache entry and a single prefix entry;
// binds run the fast path (no compile, a "bind" span instead) and their
// counts match an equivalent bind-then-recompile submission.
func TestSessionBindSharesOneCacheEntry(t *testing.T) {
	s := twoBackendService(t, Config{Seed: 11})

	sess, err := s.OpenSession(Request{Name: "ansatz", Program: ansatzProgram(nil), Backend: "perfect", Shots: 128})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Symbols(); !reflect.DeepEqual(got, []string{"beta", "gamma"}) {
		t.Fatalf("Symbols = %v", got)
	}
	if sess.CompileCacheHit() {
		t.Fatal("first compile of the ansatz cannot be a cache hit")
	}
	base := s.Stats()
	if base.Cache.Entries != 1 || base.Cache.Misses != 1 {
		t.Fatalf("after session open: cache = %+v", base.Cache)
	}
	if base.PrefixCache.Entries != 1 {
		t.Fatalf("symbolic ansatz should hold one prefix entry, got %d", base.PrefixCache.Entries)
	}

	// Stream parameter points; none may touch the compiler or the caches.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	points := []map[string]float64{
		{"gamma": 0.3, "beta": -1.1},
		{"gamma": -0.7, "beta": 0.2},
		{"gamma": 1.9, "beta": 2.4},
	}
	for i, vals := range points {
		j, err := s.BindSession(sess.ID, BindRequest{Name: fmt.Sprintf("p%d", i), Values: vals, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(ctx); err != nil {
			t.Fatalf("bind %d: %v", i, err)
		}
		if j.Session() != sess.ID {
			t.Fatalf("bind job session = %q", j.Session())
		}
		if !j.CacheHit() {
			t.Fatal("bind sub-job must count as a skipped pipeline")
		}
		// The bind's trace replaces the compile phase with a bind span.
		if tr := j.Trace(); tr != nil {
			var names []string
			for _, c := range tr.View().Root.Children {
				if c.Name == "run" {
					for _, rc := range c.Children {
						names = append(names, rc.Name)
					}
				}
			}
			if fmt.Sprint(names) != "[bind execute]" {
				t.Fatalf("bind %d run children = %v", i, names)
			}
		}

		// Fast path ≡ bind-then-recompile: a literal submission with the
		// same seed must produce identical counts. The literal program
		// keys its own cache entry — restored below.
		ref, err := s.Submit(Request{Program: ansatzProgram(vals), Backend: "perfect", Shots: 128, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		got := j.Result().Report.Result.Counts
		want := ref.Result().Report.Result.Counts
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("bind %d counts %v != recompile counts %v", i, got, want)
		}
	}

	st := s.Stats()
	// The symbolic entry is still the only artefact the session path ever
	// created; the literal reference submissions added exactly one entry
	// each (they are distinct programs).
	wantEntries := 1 + len(points)
	if st.Cache.Entries != wantEntries {
		t.Fatalf("cache entries = %d, want %d (binds must not add entries)", st.Cache.Entries, wantEntries)
	}
	if st.Cache.Misses != uint64(wantEntries) {
		t.Fatalf("cache misses = %d, want %d (binds must not re-compile)", st.Cache.Misses, wantEntries)
	}
	if st.Sessions.Active != 1 || st.Sessions.Opened != 1 || st.Sessions.Binds != uint64(len(points)) {
		t.Fatalf("session stats = %+v", st.Sessions)
	}

	// A second session on the same symbolic program is a full-artefact
	// cache hit — all sessions of one ansatz share the single entry.
	// (The literal reference submissions above each added their own
	// prefix entry; the symbolic entry count must not grow further.)
	prefixEntries := st.PrefixCache.Entries
	sess2, err := s.OpenSession(Request{Program: ansatzProgram(nil), Backend: "perfect"})
	if err != nil {
		t.Fatal(err)
	}
	if !sess2.CompileCacheHit() {
		t.Fatal("second session on the same ansatz must hit the shared cache entry")
	}
	st2 := s.Stats()
	if st2.Cache.Entries != wantEntries || st2.Cache.Hits != base.Cache.Hits+1 {
		t.Fatalf("after second session: cache = %+v", st2.Cache)
	}
	if st2.PrefixCache.Entries != prefixEntries {
		t.Fatalf("prefix entries grew from %d to %d", prefixEntries, st2.PrefixCache.Entries)
	}
}

func TestSessionValidationAndLifecycle(t *testing.T) {
	s := twoBackendService(t, Config{})

	if _, err := s.OpenSession(Request{QUBO: qubo.New(2)}); err == nil {
		t.Error("QUBO session accepted")
	}
	if _, err := s.OpenSession(Request{Program: ansatzProgram(nil), Backend: "nope"}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := s.BindSession("sess-999", BindRequest{}); err == nil {
		t.Error("bind on unknown session accepted")
	}

	sess, err := s.OpenSession(Request{Program: ansatzProgram(nil), Backend: "perfect", Shots: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BindSession(sess.ID, BindRequest{Values: map[string]float64{"gamma": 1}}); err == nil {
		t.Error("missing symbol accepted")
	}
	if _, err := s.BindSession(sess.ID, BindRequest{Values: map[string]float64{"gamma": 1, "beta": 2, "x": 3}}); err == nil {
		t.Error("stray symbol accepted")
	}
	if got, ok := s.Session(sess.ID); !ok || got != sess {
		t.Fatal("Session lookup failed")
	}
	if err := s.CloseSession(sess.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseSession(sess.ID); err == nil {
		t.Error("double close accepted")
	}
	if _, ok := s.Session(sess.ID); ok {
		t.Error("closed session still visible")
	}

	// Concrete programs pin too; binds carry no values.
	conc, err := s.OpenSession(Request{Program: bellProgram("bell"), Backend: "perfect", Shots: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(conc.Symbols()) != 0 {
		t.Fatalf("bell symbols = %v", conc.Symbols())
	}
	j, err := s.BindSession(conc.ID, BindRequest{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSessionTTLAndLRUEviction(t *testing.T) {
	s := twoBackendService(t, Config{SessionTTL: 50 * time.Millisecond, MaxSessions: 2})

	open := func(name string) *Session {
		t.Helper()
		sess, err := s.OpenSession(Request{Name: name, Program: ansatzProgram(nil), Backend: "perfect"})
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	a, b := open("a"), open("b")
	// Touch a so b is the LRU victim when c arrives.
	if _, err := s.BindSession(a.ID, BindRequest{Values: map[string]float64{"gamma": 1, "beta": 2}}); err != nil {
		t.Fatal(err)
	}
	c := open("c")
	if _, ok := s.Session(b.ID); ok {
		t.Fatal("LRU session survived eviction")
	}
	if _, ok := s.Session(a.ID); !ok {
		t.Fatal("recently used session evicted")
	}
	st := s.Stats()
	if st.Sessions.Evicted != 1 || st.Sessions.Active != 2 {
		t.Fatalf("session stats = %+v", st.Sessions)
	}

	time.Sleep(80 * time.Millisecond)
	if _, ok := s.Session(a.ID); ok {
		t.Fatal("idle session survived its TTL")
	}
	if _, ok := s.Session(c.ID); ok {
		t.Fatal("idle session survived its TTL")
	}
	st = s.Stats()
	if st.Sessions.Active != 0 || st.Sessions.Expired != 2 {
		t.Fatalf("after TTL: session stats = %+v", st.Sessions)
	}
}

func TestSessionHTTP(t *testing.T) {
	s := twoBackendService(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const ansatz = `version 1.0
qubits 2
.layer
h q[0]
rz q[0], 2*$gamma
cnot q[0], q[1]
rx q[1], $beta
measure q[0]
measure q[1]
`
	// Open.
	body, _ := json.Marshal(OpenSessionJSON{Name: "http-ansatz", CQASM: ansatz, Backend: "perfect", Shots: 32})
	resp, err := http.Post(srv.URL+"/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open status = %d", resp.StatusCode)
	}
	var sv SessionView
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !sv.Parametric || !reflect.DeepEqual(sv.Symbols, []string{"beta", "gamma"}) {
		t.Fatalf("session view = %+v", sv)
	}

	// Bind and await the sub-job over HTTP.
	bindBody, _ := json.Marshal(BindJSON{Values: map[string]float64{"gamma": 0.4, "beta": -0.9}})
	resp, err = http.Post(srv.URL+"/sessions/"+sv.ID+"/bind", "application/json", bytes.NewReader(bindBody))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bind status = %d", resp.StatusCode)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/jobs/" + sub.ID + "?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	var jv JobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jv.Status != StatusDone || jv.Session != sv.ID {
		t.Fatalf("bind job view = %+v", jv)
	}
	if len(jv.Result.Counts) == 0 {
		t.Fatal("bind job has no counts")
	}

	// Malformed bind → 400; unknown session → 404.
	resp, _ = http.Post(srv.URL+"/sessions/"+sv.ID+"/bind", "application/json",
		bytes.NewReader([]byte(`{"values":{"gamma":1}}`)))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial bind status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(srv.URL+"/sessions/sess-404/bind", "application/json",
		bytes.NewReader([]byte(`{"values":{}}`)))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session bind status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// List, get, delete.
	resp, _ = http.Get(srv.URL + "/sessions")
	var list map[string][]SessionView
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list["sessions"]) != 1 || list["sessions"][0].Binds != 1 {
		t.Fatalf("session list = %+v", list)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/sessions/"+sv.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL + "/sessions/" + sv.ID)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}
