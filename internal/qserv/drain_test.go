package qserv

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Drain must reject new submits immediately, finish admitted jobs, and
// respect the caller's deadline; a later unbounded call picks up the
// same drain and completes it.
func TestDrainGraceful(t *testing.T) {
	s := DefaultService(Config{Seed: 5, QueueSize: 64}, 4, 1)
	s.Start()
	var jobs []*Job
	for i := 0; i < 5; i++ {
		j, err := s.Submit(Request{CQASM: bellCQASM, Backend: "perfect", Shots: 2000})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// An already-expired context forces the deadline path: the drain
	// starts but cannot possibly finish in zero time.
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := s.Drain(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with expired context = %v, want DeadlineExceeded", err)
	}
	// Submits are rejected from the moment the drain starts.
	if _, err := s.Submit(Request{CQASM: bellCQASM, Backend: "perfect"}); !errors.Is(err, ErrStopped) {
		t.Fatalf("Submit during drain = %v, want ErrStopped", err)
	}
	// The unbounded retry joins the in-progress drain and sees it finish;
	// every admitted job must have completed.
	ctx, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second Drain = %v", err)
	}
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s not terminal after drain", j.ID)
		}
		if j.Status() != StatusDone {
			t.Fatalf("job %s = %s after drain, want done", j.ID, j.Status())
		}
	}
	// Stop after Drain is a no-op, not a double-close panic.
	s.Stop()
}

func TestDrainNeverStarted(t *testing.T) {
	s := New(Config{})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain on never-started service = %v, want nil", err)
	}
}
