// Package qserv is the concurrent quantum accelerator service: the
// host-side runtime that turns the synchronous full-stack pipeline into a
// multi-tenant system. It is the paper's Fig 1 host/accelerator split made
// operational — the classical host "keeps control over the total system
// and delegates the execution of certain parts to the available
// accelerators", and qserv is the piece that does the keeping: admission,
// queueing, scheduling, dispatch and result aggregation for many
// concurrent callers over many heterogeneous backends.
//
// # Architecture
//
//	clients ──HTTP──▶ Service.Submit ──route──┐
//	                        │                 │
//	                 bounded queue     bounded queue     bounded queue
//	                        ▼                 ▼                ▼
//	                  worker pool       worker pool       worker pool
//	                 (perfect stack)  (supercond. stack)  (annealer…)
//	                        │                 │                │
//	            full-artefact cache ◀─shared──┤                │
//	           prefix-artefact cache ◀─shared─┘                │
//	                        │                                  │
//	                  core.Stack.RunCompiled           accel.Accelerator
//	                        │
//	                   qx.Engine (reference | optimized | registered)
//
// A Job is submitted as cQASM text or an *openql.Program (gate jobs) or a
// *qubo.QUBO (annealing jobs), plus a target backend name and a shot
// count. Submit is non-blocking: it resolves the target backend and
// enqueues the job into that backend's bounded queue, returning a job ID
// to poll or await. When the lane is full, Submit fails fast with
// ErrQueueFull — backpressure instead of unbounded memory growth.
// Completed jobs stay queryable up to a retention bound, then the oldest
// are evicted.
//
// Queues are per backend, each drained by its own fixed-size worker pool
// — a gate-based core.Stack (perfect, superconducting, semiconducting),
// the simulated quantum annealer, or the classical fallback from
// internal/accel — so a slow realistic-stack job cannot head-of-line
// block the perfect-qubit lane, mirroring how a heterogeneous system of
// Fig 1 runs its co-processors independently.
//
// # Devices, calibration and the target API
//
// Every gate backend sits on a first-class device description
// (target.Device): topology, native gate set with timings, and a
// calibration table of measured error rates — per-qubit T1/T2 and
// readout error, per-edge two-qubit error. GET /backends returns each
// gate backend's full device, calibration included, plus its stable
// content hash, in the same JSON schema jobs submit:
//
//	{
//	  "name": "lab-chip", "qubits": 4, "cycle_time_ns": 20,
//	  "gates": {"cz": {"duration": 2}, "x90": {"duration": 1}, ...},
//	  "max_parallel_ops": 0,
//	  "topology": {"kind": "linear"},            // or grid/ring/surface17/
//	                                             // custom with "edges": [[0,1],...]
//	  "calibration": {
//	    "qubits": [{"t1_ns": 30000, "t2_ns": 20000,
//	                "readout_error": 0.01, "single_qubit_error": 0.001}, ...],
//	    "edges":  [{"a": 0, "b": 1, "two_qubit_error": 0.005}, ...]
//	  }
//	}
//
// A job may carry a "target" (a full device replacing the backend's —
// the job compiles and executes against it, with mode, noise model and
// microcode derived via core.NewStackForDevice) or a "calibration" (a
// fresh table overlaid onto the job's device — how clients compile
// against newer calibration data than the service booted with). Both
// are validated at submit time and rejected with 400 when invalid:
// malformed device JSON, wrong-size tables, non-coupler edges,
// out-of-range error rates, or overrides aimed at non-gate backends.
// The device content hash is part of core.Stack.CompileFingerprint, and
// therefore of the compile-cache key: re-calibrating changes the hash,
// so jobs against fresh calibration always recompile instead of reusing
// artefacts routed for the stale error rates, while identical tables
// keep hitting their own cached entry.
//
// Beyond per-job overrides, gate backends support live re-calibration:
// PUT /backends/{name}/calibration (Service.Recalibrate) validates a
// fresh table against the backend's topology and atomically swaps the
// backend's device — a compare-and-swap on the stack pointer, so
// in-flight jobs finish against the device they started with while new
// jobs compile against the new table. The swap rotates the device hash
// and with it every full-artefact cache key; prefix artefacts, which
// calibration cannot affect, stay live, so the first post-reload job
// recompiles suffix-only. Reloads are counted per backend
// (qserv_calibration_reloads_total).
//
// # Compiler pass pipelines
//
// Gate compilation runs through the pass-manager compiler rather than a
// fixed sequence: each backend stack compiles with a pipeline of named
// passes (decompose, optimize, map, map-noise, lower-swaps, schedule,
// assemble, …), configured service-wide by Config.Passes and per job
// through Request.Passes / the JSON "passes" field — per-job compilation
// strategies over the same backends. Specs carry per-pass options, e.g.
// "map(lookahead=8,strategy=noise)" for calibration-weighted routing
// that avoids lossy couplers (the map-noise pass; it degenerates to
// plain hop-count mapping on uniform calibrations). Malformed specs,
// unknown pass names and invalid options are rejected at submit time
// with position-carrying errors; a spec lacking a required stage
// (schedule, or assemble on realistic stacks) fails the job at compile
// time with a clear error. The pass spec is part of
// core.Stack.CompileFingerprint, so jobs with different pipelines key
// distinct compile-cache entries and can never alias each other's
// artefacts. Every compiled artefact carries a compiler.CompileReport —
// per-pass wall time, gate count, depth, added SWAPs — which
// GET /jobs/{id} returns with the job and GET /stats aggregates per
// backend and pass (cache hits excluded: they skipped the pipeline),
// including p50/p95/p99 latency percentiles from per-pass histograms,
// so operators can see where compile time goes — averages and tails —
// pass by pass.
//
// # Execution engines and parallel shots
//
// Beneath every gate backend sits the pluggable qx execution-engine layer
// rather than one hard-wired simulator. Config.Engine picks the engine
// the stacks run on — by default the "auto" meta-engine, which
// dispatches each compiled circuit to the stabilizer tableau when it is
// Clifford throughout and the backend noise model is stochastic Pauli
// (polynomial cost, so 100-qubit Clifford jobs execute in milliseconds)
// and to the optimized dense engine otherwise. Each job may override it
// through Request.Engine / the JSON "engine" field — useful for
// differential debugging, since all bundled engines return identical
// seeded counts on circuits they share; an unknown name is rejected at
// submit with a 400 listing qx.EngineNames. The engine that actually
// ran — auto resolved to its dispatch target — surfaces as the job
// view's "engine" field, an "engine" attribute on the execution span,
// and the qserv_engine_dispatch_total{engine=...} counter, making the
// Clifford fast-path hit rate directly observable. Counts for registers
// wider than 63 qubits are rendered into the same bitstring-keyed
// result map as narrow ones. New engines registered with
// qx.RegisterEngine become selectable here with no qserv changes.
//
// Jobs with large shot counts (core.Stack.ParallelShots, default 4096)
// execute as parallel shot batches: shots are split across CPU cores,
// each batch on its own derived-seed simulator, and the counts merged —
// so a single heavy job uses the machine even when its lane has one
// worker. Per-job parallelism composes with the worker pools above it
// and the chunk-parallel amplitude kernels below it (see internal/qx and
// internal/quantum for that concurrency contract).
//
// # The two-level compile cache and parallel kernel compilation
//
// Gate backends share a two-level compile cache. Level 2 — the
// full-artefact cache — is keyed by (canonical kernel partition, stack
// compile fingerprint, which folds in the pass spec and the device
// content hash): repeated submissions of the same program to the same
// target with the same pipeline skip the compiler passes entirely and
// go straight to seeded QX execution (core.Stack.RunCompiled). Level 1
// — the prefix-artefact cache — holds each kernel's output from the
// pipeline's platform-generic prefix (decompose/optimize/
// fold-rotations), keyed by (gate-set hash, canonical prefix spec,
// kernel content hash) and deliberately NOT by the device hash,
// scheduling policy or mapping options, which only the variant suffix
// reads. A job that misses level 2 but hits level 1 — a map/schedule
// variant, a scheduling-policy change, a recalibration — re-runs just
// the suffix passes against the fetched prefix artefacts, the ≥2x
// recompile win BenchmarkPrefixCachedRecompile measures. Recalibrating
// therefore invalidates exactly what the fresh table can affect:
// full-artefact entries rotate with the device hash while prefix
// entries stay live (prefix passes cannot observe calibration — proven
// by a -race test racing calibration overrides against both levels).
//
// Compilation is engine-independent, so jobs that override the engine
// reuse the same entries; jobs that override the pass spec compile (and
// cache) their own full artefacts, sharing prefix artefacts whenever
// their pipelines agree on the generic prefix. In-flight computations
// are deduplicated at both levels (singleflight), so N simultaneous
// submissions of one new program compile each artefact once.
//
// Multi-kernel programs compile their kernels concurrently through the
// prefix passes: Config.CompileWorkers sizes a service-wide
// compiler.WorkerGate shared by every job, so kernel-compile goroutines
// never multiply with the worker pools above them; the per-kernel
// artefacts concatenate deterministically (kernel boundaries are
// optimisation barriers) before the suffix runs once over the whole
// program. Parallel and serial compilation produce identical artefacts.
//
// Execution is deterministic per job: every job gets a derived seed, and
// all mutable simulator state is created per run (see the concurrency
// contract in internal/qx) — engines themselves are stateless and shared
// — so results are reproducible and the whole service is race-free under
// `go test -race`. Parallel shot batches stay deterministic per
// (seed, core count).
//
// # Parametric compilation and variational sessions
//
// Hybrid variational algorithms (QAOA, VQE — the paper's Fig 8 loop)
// resubmit one circuit shape hundreds of times with only rotation
// angles changing. Sessions make that loop cheap. A program whose
// angles are symbolic expressions (circuit.Sym, cQASM `rz q[0],
// 2*$gamma`) compiles with the symbols preserved through every pass;
// the artefact records a bind table of every symbolic slot in the
// final circuit and the assembled eQASM bundles, so binding a
// parameter point (openql.Compiled.BindArtefact) is an O(#slots)
// patch sharing the schedule, mapping result and compile report — the
// mapper, scheduler and assembler never re-run.
//
// Service.OpenSession (POST /sessions) validates and routes like
// Submit, eagerly compiles the parameterised program on its gate
// backend — through the ordinary two-level cache — and pins the
// compiled artefact in a session. Service.BindSession
// (POST /sessions/{id}/bind) then streams parameter points: each bind
// is a cheap sub-job through the same bounded queue and worker pool as
// any other job (backpressure, retention and job views included), but
// its run records a "bind" span — symbols attached — where an ordinary
// job records "compile", and its seeded execution reuses the pinned
// stack. Bind values must cover the session's symbols exactly; missing
// and stray names are rejected at submit. Sessions expire after
// Config.SessionTTL idle time and the store is LRU-bounded by
// Config.MaxSessions (opening past the bound evicts the
// least-recently-used session); expiry is swept lazily on access, and
// DELETE /sessions/{id} closes one explicitly.
//
// The cache interaction is what makes sessions one-compile cheap:
// kernel content hashes fold symbolic expressions in symbolically
// (coefficients and symbol names, not bound values), so every binding
// — and every re-opened session — of one ansatz shares a single
// full-artefact entry and a single per-kernel prefix entry; only a
// genuinely different circuit shape compiles anew. Session counters
// surface as qserv_sessions_active, qserv_sessions_opened_total,
// qserv_binds_total and the qserv_bind_seconds histogram, and
// GET /stats reports the same under "sessions" (active/opened/expired/
// evicted/binds). The bind-versus-recompile win is locked into CI by
// BenchmarkParamBindVsRecompile's bind_vs_compile_pct ceiling (≥10x).
//
// # Observability
//
// The service is instrumented end to end through internal/obs — a
// dependency-free metrics registry and span tracer — wired in by
// default and removable with Config.DisableMetrics / a negative
// Config.TraceRing.
//
// Tracing: every job gets a trace whose ID is the job ID, started at
// submit and retained in a bounded ring (Config.TraceRing). The root
// "job" span is pinned to the job's submit/finish timestamps, so its
// duration equals the reported latency exactly, and its children
// partition it: "queue.wait" (admission to worker pickup) and "run",
// under which the backend records "compile" — with a cache attribute
// (hit/miss/off), per-kernel prefix-compile spans and per-pass suffix
// spans synthesised from the compiler.CompileReport — and "execute"
// with an "engine" child carrying the measured execution time and shot
// batch count. GET /jobs/{id}/trace returns the span tree as JSON,
// GET /jobs/{id} includes the trace_id, and POST /submit echoes it in
// the X-Trace-Id response header.
//
// Metrics: a single obs.Registry (Config.Metrics, or a private one by
// default) holds every counter, gauge and histogram — jobs submitted/
// completed by status, per-backend latency and queue-wait histograms,
// live queue depth, worker busy time, both compile-cache levels
// (qserv_compile_cache_ops_total, _entries, and the explicit
// qserv_compile_cache_skips_total{level=full|prefix} counting work
// skipped: full pipelines and per-kernel prefixes), calibration
// reloads, compile/execute histograms, per-pass compile timings and
// HTTP request counts/durations (every request is wrapped in a timing
// middleware labelled by route pattern). GET /metrics serves the
// Prometheus text exposition; GET /stats is a thin view over the same
// registry, so the two can never disagree. The arithmetic is auditable:
// per backend, pass runs == jobs done − compile_cache_skips{full}.
//
// Logging: Config.Logger accepts a *slog.Logger (default: discard).
// Job lifecycle events log at Info and HTTP access at Debug, all keyed
// by trace_id so logs, metrics and traces join on one identifier.
//
// The embedded HTTP API (Service.Handler) exposes POST /submit,
// GET /jobs/{id} (with optional ?wait=duration long-polling),
// GET /jobs/{id}/trace, the session lifecycle — POST /sessions,
// GET /sessions, GET /sessions/{id}, POST /sessions/{id}/bind,
// DELETE /sessions/{id} — GET /backends — device descriptions,
// calibration data and content hashes — PUT /backends/{name}/calibration,
// GET /metrics, and GET /stats — queue depth, per-backend throughput,
// both cache levels ("cache"/"cache_hit_rate" for full artefacts,
// "prefix_cache"/"prefix_hit_rate" for prefix artefacts, per-backend
// "prefix_hits" counting kernels served suffix-only,
// "compile_cache_skips" making the hit-rate arithmetic explicit) and
// per-pass compile latency percentiles — so operators can see where the
// time went, the service-level analogue of the host's Amdahl accounting
// in internal/accel. Job compile reports carry the per-kernel breakdown
// ("kernels", "prefix_hits", "compile_workers"). cmd/qservd wires the
// default heterogeneous system behind this API (-prefix-cache and
// -compile-workers size the new layer), can serve any device JSON file
// as an extra backend via -target, and adds -metrics, -trace-ring,
// -pprof and the -log-* flags for the observability layer.
//
// # Load testing, SLO methodology and graceful shutdown
//
// Service-level objectives for this stack are not asserted from single
// runs. The load harness (internal/loadgen, cmd/qload) replays
// declarative scenarios (scenarios/*.json) against a booted service and
// gates the results with the repo's experiment standards: every
// scenario runs at 3 fixed seeds (42, 123, 456), each seed's
// deterministically generated workload must satisfy every SLO bound —
// latency percentile ceilings, error/reject-rate ceilings, cache
// hit-rate floors, queue-depth ceilings — and cross-phase "compare"
// hypotheses (e.g. cache-hot p95 beats cache-cold p95) must show at
// least a 20% effect size at every seed, directionally consistent: one
// contradicting seed fails the whole gate even if the 3-seed mean looks
// fine. Workload generation is byte-reproducible — one (scenario, seed)
// pair always yields the identical canonical op stream, with every op
// carrying a non-zero derived seed so the service never substitutes its
// own — which makes a gate failure replayable offline. The measured
// latencies are client-observed submit→result times under open-loop
// Poisson arrivals (ops fire at their scheduled offsets whether or not
// earlier ops finished, so queueing delay is not silently absorbed into
// the arrival process) or closed-loop think-time lanes, and the report
// joins them with the server's own /stats and /metrics deltas — cache
// hit rates, engine-dispatch mix, queue-depth samples — so client and
// server views of the same run can be cross-checked. `make load-smoke`
// is the required CI gate; `make load-gate` is the nightly full matrix.
//
// Load tests lean on the service's graceful shutdown: Service.Drain
// stops admission immediately (Submit fails with ErrStopped), lets the
// worker pools finish every admitted job, and respects the caller's
// context deadline; Service.Stop is Drain with no deadline. cmd/qservd
// traps SIGTERM/SIGINT and drains within -drain-timeout, so in-flight
// jobs complete before the process exits.
//
// Two of this package's contracts are machine-checked by the qlint
// analyzer suite (internal/lint, run by `make lint` and CI): detmap
// keeps map iteration order out of API responses, /stats rows, logs and
// eviction decisions, and spanend verifies every obs span the service
// starts is ended on all return paths. Loops that are provably
// order-independent carry //qlint:nondeterministic-ok annotations with
// their rationale.
package qserv
