package qserv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/target"
)

// scrape fetches GET /metrics from the service's handler and returns
// the exposition body.
func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	return rec.Body.String()
}

// metricValue finds the sample whose name+labels exactly match prefix
// and returns its value.
func metricValue(t *testing.T, body, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", prefix, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition", prefix)
	return 0
}

// The /metrics exposition covers the acceptance surface: queue depth,
// per-backend job counters and latency histograms, both compile-cache
// levels, per-pass compile timings, and (on a second scrape) the HTTP
// request metrics recorded for the first.
func TestMetricsEndpoint(t *testing.T) {
	s := twoBackendService(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ { // one cold compile, two full-artefact hits
		j, err := s.Submit(Request{Program: bellProgram("bell"), Backend: "perfect", Shots: 16})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	h := s.Handler()
	body := scrape(t, h)

	if got := metricValue(t, body, "qserv_jobs_submitted_total"); got != 3 {
		t.Errorf("jobs_submitted_total = %g, want 3", got)
	}
	if got := metricValue(t, body, `qserv_jobs_completed_total{backend="perfect",status="done"}`); got != 3 {
		t.Errorf("jobs_completed done = %g, want 3", got)
	}
	if got := metricValue(t, body, `qserv_job_latency_seconds_count{backend="perfect"}`); got != 3 {
		t.Errorf("latency count = %g, want 3", got)
	}
	if got := metricValue(t, body, `qserv_job_latency_seconds_bucket{backend="perfect",le="+Inf"}`); got != 3 {
		t.Errorf("latency +Inf bucket = %g, want 3", got)
	}
	if got := metricValue(t, body, `qserv_job_queue_wait_seconds_count{backend="perfect"}`); got != 3 {
		t.Errorf("queue wait count = %g, want 3", got)
	}
	if got := metricValue(t, body, `qserv_queue_depth{backend="perfect"}`); got != 0 {
		t.Errorf("queue depth = %g, want 0 after drain", got)
	}
	if got := metricValue(t, body, `qserv_compile_cache_ops_total{level="full",op="hit"}`); got != 2 {
		t.Errorf("full-level cache hits = %g, want 2", got)
	}
	if got := metricValue(t, body, `qserv_compile_cache_ops_total{level="full",op="miss"}`); got != 1 {
		t.Errorf("full-level cache misses = %g, want 1", got)
	}
	metricValue(t, body, `qserv_compile_cache_ops_total{level="prefix",op="hit"}`)
	metricValue(t, body, `qserv_compile_cache_ops_total{level="prefix",op="miss"}`)
	if got := metricValue(t, body, `qserv_compile_cache_entries{level="full"}`); got != 1 {
		t.Errorf("full-level cache entries = %g, want 1", got)
	}
	if got := metricValue(t, body, `qserv_compile_cache_skips_total{backend="perfect",level="full"}`); got != 2 {
		t.Errorf("full-level skips = %g, want 2", got)
	}
	if got := metricValue(t, body, `qserv_compile_pass_runs_total{backend="perfect",pass="decompose"}`); got != 1 {
		t.Errorf("decompose runs = %g, want 1 (cache hits must not re-count passes)", got)
	}
	if got := metricValue(t, body, `qserv_compile_pass_seconds_count{backend="perfect",pass="decompose"}`); got != 1 {
		t.Errorf("decompose histogram count = %g, want 1", got)
	}
	if got := metricValue(t, body, `qserv_compile_seconds_count{backend="perfect"}`); got != 1 {
		t.Errorf("compile count = %g, want 1", got)
	}
	if got := metricValue(t, body, `qserv_execute_seconds_count{backend="perfect"}`); got != 3 {
		t.Errorf("execute count = %g, want 3", got)
	}
	if metricValue(t, body, "qserv_uptime_seconds") <= 0 {
		t.Error("uptime not positive")
	}

	// The scrape above went through the instrumentation middleware; its
	// metrics land after the response is written, so a second scrape
	// sees them.
	body2 := scrape(t, h)
	if got := metricValue(t, body2, `qserv_http_requests_total{method="GET",path="GET /metrics",code="200"}`); got < 1 {
		t.Errorf("http_requests_total for /metrics = %g, want >= 1", got)
	}
	if got := metricValue(t, body2, `qserv_http_request_duration_seconds_count{path="GET /metrics"}`); got < 1 {
		t.Errorf("http duration count = %g, want >= 1", got)
	}
}

// The /stats report is a thin view over the same registry instruments:
// the JSON counters must agree with the exposition, and the explicit
// compile_cache_skips field must account for the pass-run deficit.
func TestStatsMirrorsRegistry(t *testing.T) {
	s := twoBackendService(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		j, err := s.Submit(Request{Program: bellProgram("bell"), Backend: "perfect", Shots: 16})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	var perfect *BackendStats
	for i := range st.Backends {
		if st.Backends[i].Name == "perfect" {
			perfect = &st.Backends[i]
		}
	}
	if perfect == nil {
		t.Fatal("no perfect backend in stats")
	}
	if perfect.JobsDone != 3 || perfect.CacheHits != 2 {
		t.Fatalf("stats: done=%d hits=%d, want 3/2", perfect.JobsDone, perfect.CacheHits)
	}
	if perfect.CompileCacheSkips != perfect.CacheHits {
		t.Errorf("compile_cache_skips = %d, want %d (== cache_hits)",
			perfect.CompileCacheSkips, perfect.CacheHits)
	}
	for _, ps := range perfect.CompilePasses {
		// Auditable hit-rate math: every pass ran JobsDone - skips times.
		if want := perfect.JobsDone - perfect.CompileCacheSkips; ps.Runs != want {
			t.Errorf("pass %s runs = %d, want %d", ps.Pass, ps.Runs, want)
		}
	}
	body := scrape(t, s.Handler())
	if got := metricValue(t, body, `qserv_jobs_completed_total{backend="perfect",status="done"}`); got != float64(perfect.JobsDone) {
		t.Errorf("exposition done = %g, stats done = %d", got, perfect.JobsDone)
	}
	if got := metricValue(t, body, `qserv_worker_busy_seconds_total{backend="perfect"}`); got*1e3 != perfect.BusyMs {
		t.Errorf("exposition busy = %g s, stats busy = %g ms", got, perfect.BusyMs)
	}
}

// The span tree served by GET /jobs/{id}/trace partitions the job's
// reported latency exactly: root = queue.wait + run, and the run span
// carries compile/execute children with synthesized pass detail.
func TestJobTraceEndpoint(t *testing.T) {
	s := twoBackendService(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	j, err := s.Submit(Request{Program: bellProgram("bell"), Backend: "perfect", Shots: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/"+j.ID+"/trace", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET trace = %d: %s", rec.Code, rec.Body.String())
	}
	var tv obs.TraceView
	if err := json.Unmarshal(rec.Body.Bytes(), &tv); err != nil {
		t.Fatal(err)
	}
	if tv.TraceID != j.ID {
		t.Errorf("trace_id = %q, want %q", tv.TraceID, j.ID)
	}
	root := tv.Root
	if root == nil || root.Name != "job" || root.InFlight {
		t.Fatalf("bad root span: %+v", root)
	}
	submitted, _, finished := j.Times()
	if want := finished.Sub(submitted).Nanoseconds(); root.DurationNs != want {
		t.Errorf("root duration = %d ns, want %d (the job's reported latency)", root.DurationNs, want)
	}
	if len(root.Children) != 2 || root.Children[0].Name != "queue.wait" || root.Children[1].Name != "run" {
		t.Fatalf("root children = %+v, want [queue.wait run]", root.Children)
	}
	if sum := root.Children[0].DurationNs + root.Children[1].DurationNs; sum != root.DurationNs {
		t.Errorf("queue.wait + run = %d ns, want %d (exact partition of the root)", sum, root.DurationNs)
	}
	run := root.Children[1]
	if run.Attrs["cache_hit"] != "false" {
		t.Errorf("run attrs = %v, want cache_hit=false", run.Attrs)
	}
	var compile, execute *obs.SpanView
	for _, c := range run.Children {
		switch c.Name {
		case "compile":
			compile = c
		case "execute":
			execute = c
		}
	}
	if compile == nil || execute == nil {
		t.Fatalf("run children = %+v, want compile and execute", run.Children)
	}
	if compile.Attrs["cache"] != "miss" {
		t.Errorf("cold compile cache attr = %q, want miss", compile.Attrs["cache"])
	}
	var passes, kernels int
	for _, c := range compile.Children {
		if strings.HasPrefix(c.Name, "pass:") {
			passes++
		}
		if strings.HasPrefix(c.Name, "kernel:") {
			kernels++
		}
	}
	if passes == 0 && kernels == 0 {
		t.Error("cold compile span has no synthesized pass/kernel children")
	}
	if execute.Attrs["shots"] != "16" {
		t.Errorf("execute shots attr = %q, want 16", execute.Attrs["shots"])
	}

	// The JobView carries the trace ID; unknown jobs 404.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/"+j.ID, nil))
	var jv JobView
	if err := json.Unmarshal(rec.Body.Bytes(), &jv); err != nil {
		t.Fatal(err)
	}
	if jv.TraceID != j.ID {
		t.Errorf("JobView trace_id = %q, want %q", jv.TraceID, j.ID)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/nope/trace", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("trace of unknown job = %d, want 404", rec.Code)
	}
}

// POST /submit tags the response with the job's trace ID.
func TestSubmitTraceHeader(t *testing.T) {
	s := twoBackendService(t, Config{})
	h := s.Handler()
	body, _ := json.Marshal(SubmitRequest{CQASM: bellCQASM, Backend: "perfect", Shots: 8})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/submit", bytes.NewReader(body)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body.String())
	}
	var sr SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if got := rec.Header().Get("X-Trace-Id"); got != sr.ID {
		t.Errorf("X-Trace-Id = %q, want job ID %q", got, sr.ID)
	}
}

// Live recalibration: PUT /backends/{name}/calibration swaps the
// backend device's calibration table atomically, rotates the device
// hash (so stale full-artefact cache entries are never reused), bumps
// the reload counter, and rejects invalid tables, unsupported backends
// and unknown names with the right statuses.
func TestRecalibrationEndpoint(t *testing.T) {
	s := New(Config{})
	s.AddBackend(NewStackBackend(core.NewSuperconducting(21)), 2)
	s.AddBackend(NewClassicalFallback("classical", 8), 1)
	s.Start()
	t.Cleanup(s.Stop)
	h := s.Handler()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	runBell := func() *Job {
		t.Helper()
		j, err := s.Submit(Request{CQASM: bellCQASM, Backend: "superconducting", Shots: 16})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		return j
	}
	runBell()
	if j := runBell(); !j.CacheHit() {
		t.Fatal("second identical submit should hit the compile cache")
	}

	hashBefore := s.Backends()[0].DeviceHash
	cal := target.Superconducting().Calibration.Clone()
	cal.SetEdgeError(0, 9, 0.09)
	body, _ := json.Marshal(cal)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("PUT", "/backends/superconducting/calibration", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("recalibrate = %d: %s", rec.Code, rec.Body.String())
	}
	var out map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	hashAfter := s.Backends()[0].DeviceHash
	if hashAfter == hashBefore {
		t.Error("device hash did not rotate after recalibration")
	}
	if out["device_hash"] != hashAfter {
		t.Errorf("response hash %q != /backends hash %q", out["device_hash"], hashAfter)
	}

	// The same program now compiles against the new device: a cache
	// miss, not a stale reuse.
	if j := runBell(); j.CacheHit() {
		t.Error("job after recalibration reused a stale compile artefact")
	}
	if j := runBell(); !j.CacheHit() {
		t.Error("second job after recalibration should hit the fresh entry")
	}

	mbody := scrape(t, h)
	if got := metricValue(t, mbody, `qserv_calibration_reloads_total{backend="superconducting"}`); got != 1 {
		t.Errorf("calibration_reloads_total = %g, want 1", got)
	}

	// Invalid table: wrong qubit count.
	short, _ := json.Marshal(&target.Calibration{Qubits: make([]target.QubitCalibration, 3)})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("PUT", "/backends/superconducting/calibration", bytes.NewReader(short)))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("invalid calibration = %d, want 400", rec.Code)
	}
	// Accelerator backends don't recalibrate.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("PUT", "/backends/classical/calibration", bytes.NewReader(body)))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("recalibrating an accelerator = %d, want 400", rec.Code)
	}
	// Unknown backends 404.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("PUT", "/backends/nope/calibration", bytes.NewReader(body)))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown backend = %d, want 404", rec.Code)
	}
}

// DisableMetrics + TraceRing < 0 turn the whole observability layer
// off: jobs still run, /metrics serves an (empty) exposition, traces
// 404, and /stats reports zero counters.
func TestObservabilityDisabled(t *testing.T) {
	s := New(Config{DisableMetrics: true, TraceRing: -1})
	s.AddBackend(NewStackBackend(core.NewPerfect(5, 7)), 2)
	s.Start()
	t.Cleanup(s.Stop)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	j, err := s.Submit(Request{Program: bellProgram("bell"), Backend: "perfect", Shots: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if j.TraceID() != "" {
		t.Error("trace ID assigned with tracing disabled")
	}
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("GET /metrics = %d with metrics disabled", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "qserv_") {
		t.Error("disabled registry still exposes qserv families")
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/"+j.ID+"/trace", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("trace with tracing disabled = %d, want 404", rec.Code)
	}
	st := s.Stats()
	if st.Backends[0].JobsDone != 0 {
		t.Error("disabled metrics still counted jobs")
	}
}

// Recalibrate is safe under concurrent submits: the CAS swap never
// loses an update and in-flight jobs finish against a coherent stack.
func TestConcurrentRecalibration(t *testing.T) {
	s := New(Config{QueueSize: 256})
	s.AddBackend(NewStackBackend(core.NewSuperconducting(21)), 4)
	s.Start()
	t.Cleanup(s.Stop)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			cal := target.Superconducting().Calibration.Clone()
			cal.SetEdgeError(0, 9, 0.01+float64(i)*0.01)
			if _, err := s.Recalibrate("superconducting", cal); err != nil {
				t.Errorf("recalibrate %d: %v", i, err)
				return
			}
		}
	}()
	var jobs []*Job
	for i := 0; i < 16; i++ {
		j, err := s.Submit(Request{
			Name:  fmt.Sprintf("bell-%d", i),
			CQASM: bellCQASM, Backend: "superconducting", Shots: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	<-done
	for _, j := range jobs {
		if err := j.Wait(ctx); err != nil {
			t.Fatalf("job %s: %v", j.ID, err)
		}
	}
	body := scrape(t, s.Handler())
	if got := metricValue(t, body, `qserv_calibration_reloads_total{backend="superconducting"}`); got != 8 {
		t.Errorf("calibration_reloads_total = %g, want 8", got)
	}
}
