package qserv

import (
	"repro/internal/anneal"
	"repro/internal/core"
)

// DefaultService wires the paper's Fig 1 heterogeneous system behind the
// service: perfect, superconducting and semiconducting gate stacks, the
// simulated quantum annealer, and the classical QUBO fallback. qubits
// sizes the perfect stack; workers sizes every pool (<= 0 selects
// Config.DefaultWorkers). The service is returned unstarted.
func DefaultService(cfg Config, qubits int, workers int) *Service {
	s := New(cfg)
	seed := cfg.withDefaults().Seed
	s.AddBackend(NewStackBackend(core.NewPerfect(qubits, seed)), workers)
	s.AddBackend(NewStackBackend(core.NewSuperconducting(seed)), workers)
	s.AddBackend(NewStackBackend(core.NewSemiconducting(seed)), workers)
	s.AddBackend(NewAnnealBackend("annealer", false, anneal.SQAOptions{}, anneal.DigitalAnnealerOptions{}), workers)
	s.AddBackend(NewClassicalFallback("classical", 20), workers)
	return s
}
