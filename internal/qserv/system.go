package qserv

import (
	"runtime"

	"repro/internal/anneal"
	"repro/internal/core"
)

// DefaultService wires the paper's Fig 1 heterogeneous system behind the
// service: perfect, superconducting and semiconducting gate stacks, the
// simulated quantum annealer, and the classical QUBO fallback. qubits
// sizes the perfect stack; workers sizes every pool (<= 0 selects
// Config.DefaultWorkers). Every gate stack executes on Config.Engine and
// compiles through Config.Passes (jobs may override both per request)
// and fans large shot counts out in parallel batches. The service is
// returned unstarted.
func DefaultService(cfg Config, qubits int, workers int) *Service {
	s := New(cfg)
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	poolWorkers := workers
	if poolWorkers <= 0 {
		poolWorkers = cfg.DefaultWorkers
	}
	// Budget per-job amplitude-kernel goroutines against the pool size so
	// concurrent jobs do not multiply into CPU oversubscription.
	kernelWorkers := max(1, runtime.GOMAXPROCS(0)/poolWorkers)
	for _, stack := range []*core.Stack{
		core.NewPerfect(qubits, seed),
		core.NewSuperconducting(seed),
		core.NewSemiconducting(seed),
	} {
		stack.Engine = cfg.Engine
		stack.Passes = cfg.Passes
		stack.KernelWorkers = kernelWorkers
		s.AddBackend(NewStackBackend(stack), workers)
	}
	s.AddBackend(NewAnnealBackend("annealer", false, anneal.SQAOptions{}, anneal.DigitalAnnealerOptions{}), workers)
	s.AddBackend(NewClassicalFallback("classical", 20), workers)
	return s
}
