package qserv

import (
	"math"
	"sort"
	"sync"

	"repro/internal/compiler"
	"repro/internal/obs"
)

// serviceMetrics owns every qserv metric family in the service's
// registry. All instruments live here — /stats is a thin read-side view
// over the same handles the workers record into, so the JSON report and
// the Prometheus exposition can never disagree.
//
// A nil *serviceMetrics (Config.DisableMetrics) disables recording
// everywhere; sites guard with a single nil check on the pool or
// service handle.
type serviceMetrics struct {
	jobsSubmitted *obs.Counter
	jobsCompleted *obs.CounterVec // backend, status
	latency       *obs.HistogramVec
	queueWait     *obs.HistogramVec
	queueDepth    *obs.GaugeVec
	busySeconds   *obs.CounterVec
	// cacheSkips counts compile work skipped thanks to the two-level
	// cache, per backend and level: level="full" is jobs whose whole
	// pipeline was skipped (a full-artefact hit), level="prefix" is
	// kernels whose platform-generic prefix was fetched instead of
	// recompiled. Together with the per-level hit/miss mirrors below
	// this makes the /stats pass-latency hit-rate math auditable:
	// pass "runs" lag job counts by exactly these skips.
	cacheSkips   *obs.CounterVec // backend, level
	cacheOps     *obs.CounterVec // level, op — scrape-time mirror of the shared caches
	cacheEntries *obs.GaugeVec   // level — scrape-time mirror
	calibReloads *obs.CounterVec // backend
	compileSecs  *obs.HistogramVec
	execSecs     *obs.HistogramVec
	// engineDispatch counts gate-job executions by the qx engine that
	// actually ran them — with the "auto" meta-engine this is the
	// resolved dispatch target (stabilizer vs optimized), making the
	// Clifford fast-path hit rate directly observable.
	engineDispatch *obs.CounterVec   // engine
	passSecs       *obs.HistogramVec // backend, pass
	passRuns       *obs.CounterVec
	passGatesIn    *obs.CounterVec
	passGatesOut   *obs.CounterVec
	passSwaps      *obs.CounterVec
	retireSecs     *obs.Histogram
	// sessionsOpened/bindsTotal/bindSecs instrument the variational
	// session layer: eager compiles pinned per session, and the bind
	// fast path that patches the pinned artefact instead of compiling.
	// qserv_sessions_active is a GaugeFunc registered next to the other
	// scrape-time mirrors (registerCollectors).
	sessionsOpened *obs.Counter
	bindsTotal     *obs.Counter
	bindSecs       *obs.Histogram
	httpRequests   *obs.CounterVec // method, path, code
	httpSecs       *obs.HistogramVec
}

// newServiceMetrics registers the qserv families. A registry hosts at
// most one service: registering twice panics on the duplicate names.
func newServiceMetrics(r *obs.Registry) *serviceMetrics {
	lb := obs.LatencyBuckets
	return &serviceMetrics{
		jobsSubmitted: r.NewCounter("qserv_jobs_submitted_total",
			"Jobs admitted by Submit."),
		jobsCompleted: r.NewCounterVec("qserv_jobs_completed_total",
			"Jobs completed, by backend and terminal status.", "backend", "status"),
		latency: r.NewHistogramVec("qserv_job_latency_seconds",
			"Submit-to-finish job latency.", lb, "backend"),
		queueWait: r.NewHistogramVec("qserv_job_queue_wait_seconds",
			"Submit-to-start queue wait.", lb, "backend"),
		queueDepth: r.NewGaugeVec("qserv_queue_depth",
			"Queued jobs per backend, sampled at scrape.", "backend"),
		busySeconds: r.NewCounterVec("qserv_worker_busy_seconds_total",
			"Total worker time spent executing jobs.", "backend"),
		cacheSkips: r.NewCounterVec("qserv_compile_cache_skips_total",
			"Compile work skipped by cache level: full = whole pipelines, prefix = per-kernel prefixes.",
			"backend", "level"),
		cacheOps: r.NewCounterVec("qserv_compile_cache_ops_total",
			"Shared compile-cache lookups by level and outcome.", "level", "op"),
		cacheEntries: r.NewGaugeVec("qserv_compile_cache_entries",
			"Entries held per compile-cache level.", "level"),
		calibReloads: r.NewCounterVec("qserv_calibration_reloads_total",
			"Live calibration reloads applied via PUT /backends/{name}/calibration.", "backend"),
		compileSecs: r.NewHistogramVec("qserv_compile_seconds",
			"Wall time of full compile-pipeline runs (cache hits excluded).", lb, "backend"),
		execSecs: r.NewHistogramVec("qserv_execute_seconds",
			"Measured execution wall time per gate job.", lb, "backend"),
		engineDispatch: r.NewCounterVec("qserv_engine_dispatch_total",
			"Gate-job executions by the qx engine that ran them (auto resolves to its dispatch target).", "engine"),
		passSecs: r.NewHistogramVec("qserv_compile_pass_seconds",
			"Wall time per compiler pass run.", lb, "backend", "pass"),
		passRuns: r.NewCounterVec("qserv_compile_pass_runs_total",
			"Compiler pass executions.", "backend", "pass"),
		passGatesIn: r.NewCounterVec("qserv_compile_pass_gates_in_total",
			"Gates entering each compiler pass.", "backend", "pass"),
		passGatesOut: r.NewCounterVec("qserv_compile_pass_gates_out_total",
			"Gates leaving each compiler pass.", "backend", "pass"),
		passSwaps: r.NewCounterVec("qserv_compile_pass_added_swaps_total",
			"Routing SWAPs inserted by mapping passes.", "backend", "pass"),
		retireSecs: r.NewHistogram("qserv_job_retire_seconds",
			"Wall time of job retention bookkeeping after finish (outside the job's trace: the job is already observable as finished).", lb),
		sessionsOpened: r.NewCounter("qserv_sessions_opened_total",
			"Variational sessions opened (eager compiles pinned for streaming binds)."),
		bindsTotal: r.NewCounter("qserv_binds_total",
			"Parameter bindings streamed through sessions — jobs served by the bind fast path instead of the compiler."),
		bindSecs: r.NewHistogram("qserv_bind_seconds",
			"Wall time of artefact bind patches (the per-iteration compile-replacement cost).", lb),
		httpRequests: r.NewCounterVec("qserv_http_requests_total",
			"HTTP API requests by method, route pattern and status code.",
			"method", "path", "code"),
		httpSecs: r.NewHistogramVec("qserv_http_request_duration_seconds",
			"HTTP API request latency by route pattern.", lb, "path"),
	}
}

// pool resolves one backend's handles out of the vecs, so the worker
// hot path touches no label lookups. Nil-safe: a nil receiver (metrics
// disabled) yields a nil poolMetrics.
func (m *serviceMetrics) pool(backend string) *poolMetrics {
	if m == nil {
		return nil
	}
	return &poolMetrics{
		m:            m,
		backend:      backend,
		done:         m.jobsCompleted.With(backend, "done"),
		failed:       m.jobsCompleted.With(backend, "failed"),
		latency:      m.latency.With(backend),
		queueWait:    m.queueWait.With(backend),
		queueDepth:   m.queueDepth.With(backend),
		busy:         m.busySeconds.With(backend),
		fullSkips:    m.cacheSkips.With(backend, "full"),
		prefixSkips:  m.cacheSkips.With(backend, "prefix"),
		calibReloads: m.calibReloads.With(backend),
		compileSecs:  m.compileSecs.With(backend),
		execSecs:     m.execSecs.With(backend),
		passes:       map[string]*passHandles{},
	}
}

// poolMetrics is one backend pool's resolved instrument handles — the
// only per-job state the pool keeps; /stats reads these same handles
// back.
type poolMetrics struct {
	m       *serviceMetrics
	backend string

	done, failed           *obs.Counter
	latency, queueWait     *obs.Histogram
	queueDepth             *obs.Gauge
	busy                   *obs.Counter
	fullSkips, prefixSkips *obs.Counter
	calibReloads           *obs.Counter
	compileSecs, execSecs  *obs.Histogram

	mu     sync.Mutex
	passes map[string]*passHandles
}

// passHandles is one compiler pass's resolved instruments within a pool.
type passHandles struct {
	dur      *obs.Histogram
	runs     *obs.Counter
	gatesIn  *obs.Counter
	gatesOut *obs.Counter
	swaps    *obs.Counter
}

// pass resolves (and caches) the handles for one pass name.
func (p *poolMetrics) pass(name string) *passHandles {
	p.mu.Lock()
	defer p.mu.Unlock()
	h, ok := p.passes[name]
	if !ok {
		h = &passHandles{
			dur:      p.m.passSecs.With(p.backend, name),
			runs:     p.m.passRuns.With(p.backend, name),
			gatesIn:  p.m.passGatesIn.With(p.backend, name),
			gatesOut: p.m.passGatesOut.With(p.backend, name),
			swaps:    p.m.passSwaps.With(p.backend, name),
		}
		p.passes[name] = h
	}
	return h
}

// recordCompile folds one compile report into the pool's pass
// instruments — called only for jobs that actually ran the pipeline
// (full-artefact cache hits reuse a prior job's artefact and are
// counted as skips instead).
func (p *poolMetrics) recordCompile(rep *compiler.CompileReport) {
	if p == nil || rep == nil {
		return
	}
	p.compileSecs.ObserveSeconds(rep.TotalNs)
	if rep.PrefixHits > 0 {
		p.prefixSkips.Add(float64(rep.PrefixHits))
	}
	for _, m := range rep.Passes {
		h := p.pass(m.Pass)
		h.runs.Inc()
		h.dur.ObserveSeconds(m.WallNs)
		h.gatesIn.Add(float64(m.GatesBefore))
		h.gatesOut.Add(float64(m.GatesAfter))
		if m.AddedSwaps > 0 {
			h.swaps.Add(float64(m.AddedSwaps))
		}
	}
}

// passStats renders the pool's per-pass instruments as the /stats
// report rows, sorted by pass name.
func (p *poolMetrics) passStats() []PassStats {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	names := make([]string, 0, len(p.passes))
	handles := make(map[string]*passHandles, len(p.passes))
	//qlint:nondeterministic-ok order-independent: key-preserving snapshot copy under lock; names are sorted below
	for name, h := range p.passes {
		names = append(names, name)
		handles[name] = h
	}
	p.mu.Unlock()
	if len(handles) == 0 {
		return nil
	}
	sort.Strings(names)
	out := make([]PassStats, 0, len(handles))
	for _, name := range names {
		h := handles[name]
		runs := h.dur.Count()
		ps := PassStats{
			Pass:       name,
			Runs:       runs,
			TotalMs:    h.dur.Sum() * 1e3,
			GatesIn:    counterUint(h.gatesIn),
			GatesOut:   counterUint(h.gatesOut),
			AddedSwaps: counterUint(h.swaps),
			P50Us:      h.dur.Quantile(0.50) * 1e6,
			P95Us:      h.dur.Quantile(0.95) * 1e6,
			P99Us:      h.dur.Quantile(0.99) * 1e6,
		}
		if runs > 0 {
			ps.AvgUs = h.dur.Sum() / float64(runs) * 1e6
		}
		out = append(out, ps)
	}
	return out
}

// counterUint reads a counter back as the integer it accumulated.
func counterUint(c *obs.Counter) uint64 {
	return uint64(math.Round(c.Value()))
}
