package qserv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/openql"
	"repro/internal/qubo"
	"repro/internal/qx"
)

const bellCQASM = `version 1.0
qubits 2
.bell
h q[0]
cnot q[0], q[1]
measure q[0]
measure q[1]
`

func bellProgram(name string) *openql.Program {
	p := openql.NewProgram(name, 2)
	k := openql.NewKernel("entangle", 2)
	k.H(0).CNOT(0, 1).Measure(0).Measure(1)
	p.AddKernel(k)
	return p
}

// twoBackendService returns a started service over the perfect and
// semiconducting stacks — one direct-QX lane and one
// eQASM/micro-architecture lane.
func twoBackendService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	s.AddBackend(NewStackBackend(core.NewPerfect(5, 7)), 3)
	s.AddBackend(NewStackBackend(core.NewSemiconducting(7)), 3)
	s.Start()
	t.Cleanup(s.Stop)
	return s
}

func TestSubmitValidation(t *testing.T) {
	s := twoBackendService(t, Config{})
	if _, err := s.Submit(Request{}); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := s.Submit(Request{CQASM: bellCQASM, QUBO: qubo.New(2)}); err == nil {
		t.Error("two payloads accepted")
	}
	if _, err := s.Submit(Request{CQASM: bellCQASM, Backend: "nope"}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := s.Submit(Request{QUBO: qubo.New(2)}); err == nil {
		t.Error("unroutable payload accepted")
	}
}

// TestEndToEndConcurrent is the service's end-to-end contract: N jobs
// submitted concurrently across two backends, all awaited, then the same
// programs resubmitted with a nonzero cache hit rate. Run with -race.
func TestEndToEndConcurrent(t *testing.T) {
	s := twoBackendService(t, Config{QueueSize: 128, Seed: 11})

	const perBackend = 6
	submit := func() []*Job {
		var (
			mu   sync.Mutex
			jobs []*Job
			wg   sync.WaitGroup
		)
		for i := 0; i < perBackend; i++ {
			for _, backend := range []string{"perfect", "semiconducting"} {
				i, backend := i, backend
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Three distinct programs per backend, so each round
					// compiles 3 programs per backend and repeats them.
					j, err := s.Submit(Request{
						Name:    fmt.Sprintf("bell-%s-%d", backend, i%3),
						Program: bellProgram(fmt.Sprintf("bell%d", i%3)),
						Backend: backend,
						Shots:   64,
					})
					if err != nil {
						t.Errorf("submit: %v", err)
						return
					}
					mu.Lock()
					jobs = append(jobs, j)
					mu.Unlock()
				}()
			}
		}
		wg.Wait()
		return jobs
	}

	await := func(jobs []*Job) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, j := range jobs {
			if err := j.Wait(ctx); err != nil {
				t.Fatalf("job %s on %s failed: %v", j.ID, j.Backend(), err)
			}
			res := j.Result()
			if res == nil || res.Report == nil || res.Report.Result == nil {
				t.Fatalf("job %s: missing result", j.ID)
			}
			total := 0
			for _, c := range res.Report.Result.Counts {
				total += c
			}
			if total != 64 {
				t.Errorf("job %s: %d shots aggregated, want 64", j.ID, total)
			}
		}
	}

	await(submit())
	first := s.Stats()
	if first.JobsDone != 2*perBackend {
		t.Fatalf("round 1: %d jobs done, want %d", first.JobsDone, 2*perBackend)
	}

	// Resubmission of the same programs must hit the compile cache.
	await(submit())
	st := s.Stats()
	if st.JobsDone != 4*perBackend {
		t.Fatalf("round 2: %d jobs done, want %d", st.JobsDone, 4*perBackend)
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("no cache hits on resubmission: %+v", st.Cache)
	}
	if st.CacheHitRate <= 0 {
		t.Errorf("cache hit rate %v, want > 0", st.CacheHitRate)
	}
	// 3 distinct programs per backend → at most 6 cold compiles total.
	if st.Cache.Misses > 6 {
		t.Errorf("%d cold compiles, want <= 6 (singleflight dedup)", st.Cache.Misses)
	}
	for _, b := range st.Backends {
		if b.JobsDone != 2*perBackend {
			t.Errorf("backend %s: %d jobs, want %d", b.Name, b.JobsDone, 2*perBackend)
		}
		if b.JobsPerSec <= 0 {
			t.Errorf("backend %s: throughput not reported", b.Name)
		}
	}
}

func TestCacheSingleflightAndLRU(t *testing.T) {
	c := NewCompileCache(2)
	var compiles atomic.Int32
	compile := func() (*openql.Compiled, error) {
		compiles.Add(1)
		time.Sleep(5 * time.Millisecond)
		return &openql.Compiled{}, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.GetOrCompile("k1", compile); err != nil {
				t.Errorf("GetOrCompile: %v", err)
			}
		}()
	}
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Errorf("%d compiles for one key under concurrency, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 7 {
		t.Errorf("stats %+v, want 1 miss / 7 hits", st)
	}

	// LRU eviction: k1, k2 cached (max 2); touching k1 then adding k3
	// must evict k2.
	c.GetOrCompile("k2", compile)
	c.GetOrCompile("k1", compile)
	c.GetOrCompile("k3", compile)
	before := compiles.Load()
	c.GetOrCompile("k1", compile) // still cached
	if compiles.Load() != before {
		t.Error("k1 evicted despite recent use")
	}
	c.GetOrCompile("k2", compile) // evicted → recompiles
	if compiles.Load() != before+1 {
		t.Error("k2 not evicted as LRU")
	}

	// Failed compiles are not cached.
	c.Clear()
	fails := 0
	boom := func() (*openql.Compiled, error) { fails++; return nil, fmt.Errorf("boom") }
	c.GetOrCompile("bad", boom)
	c.GetOrCompile("bad", boom)
	if fails != 2 {
		t.Errorf("failed compile cached (%d invocations, want 2)", fails)
	}
}

func TestAnnealAndClassicalBackends(t *testing.T) {
	s := New(Config{Seed: 3})
	s.AddBackend(NewAnnealBackend("annealer", false, anneal.SQAOptions{Sweeps: 200}, anneal.DigitalAnnealerOptions{}), 2)
	s.AddBackend(NewClassicalFallback("classical", 16), 1)
	s.Start()
	defer s.Stop()

	// MAXCUT-style toy QUBO with known minimum: x0=1, x1=1, energy -2.
	q := qubo.New(3)
	q.Set(0, 0, -1)
	q.Set(1, 1, -1)
	q.Set(0, 2, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for _, backend := range []string{"annealer", "classical"} {
		j, err := s.Submit(Request{QUBO: q, Backend: backend})
		if err != nil {
			t.Fatalf("%s submit: %v", backend, err)
		}
		if err := j.Wait(ctx); err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		res := j.Result()
		if res == nil || res.Anneal == nil {
			t.Fatalf("%s: missing anneal result", backend)
		}
		if res.Anneal.Energy != -2 {
			t.Errorf("%s: energy %v, want -2", backend, res.Anneal.Energy)
		}
	}

	// Default routing sends a QUBO to the first accepting backend.
	j, err := s.Submit(Request{QUBO: q})
	if err != nil {
		t.Fatal(err)
	}
	if j.Backend() != "annealer" {
		t.Errorf("routed to %s, want annealer", j.Backend())
	}
	j.Wait(ctx)
}

// blockingBackend runs jobs only when released — for backpressure tests.
type blockingBackend struct {
	release chan struct{}
}

func (b *blockingBackend) Name() string            { return "blocker" }
func (b *blockingBackend) Accepts(r *Request) bool { return true }
func (b *blockingBackend) Run(r *Request, seed int64, env *CompileEnv) (*Result, bool, error) {
	<-b.release
	return &Result{}, false, nil
}

func TestQueueFullBackpressure(t *testing.T) {
	bb := &blockingBackend{release: make(chan struct{})}
	s := New(Config{QueueSize: 2})
	s.AddBackend(bb, 1)
	s.Start()
	defer s.Stop()
	defer close(bb.release)

	var full bool
	var jobs []*Job
	// Worker lane (1 running + 1 buffered) plus queue (2) saturate well
	// within 10 submissions.
	for i := 0; i < 10; i++ {
		j, err := s.Submit(Request{CQASM: bellCQASM})
		if err == ErrQueueFull {
			full = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		// Give the dispatcher a moment to drain the queue into the lane.
		time.Sleep(time.Millisecond)
	}
	if !full {
		t.Fatal("queue never reported full")
	}
	if st := s.Stats(); st.QueueDepth == 0 {
		t.Error("stats report empty queue while saturated")
	}
	for range jobs {
		bb.release <- struct{}{}
	}
}

func TestHTTPAPI(t *testing.T) {
	s := twoBackendService(t, Config{Seed: 5})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	submit := func(body string) SubmitResponse {
		t.Helper()
		resp, err := http.Post(srv.URL+"/submit", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		var sr SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}

	body, _ := json.Marshal(SubmitRequest{Name: "bell", CQASM: bellCQASM, Backend: "perfect", Shots: 256})
	sr := submit(string(body))
	if sr.ID == "" || sr.Backend != "perfect" {
		t.Fatalf("bad submit response %+v", sr)
	}

	// Long-poll the job to completion.
	resp, err := http.Get(srv.URL + "/jobs/" + sr.ID + "?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	var jv JobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jv.Status != StatusDone {
		t.Fatalf("job not done after wait: %+v", jv)
	}
	total := 0
	for bits, c := range jv.Result.Counts {
		if bits != "00" && bits != "11" {
			t.Errorf("non-Bell outcome %q on perfect qubits", bits)
		}
		total += c
	}
	if total != 256 {
		t.Errorf("counts sum %d, want 256", total)
	}

	// Resubmit: the compile must be served from cache.
	sr2 := submit(string(body))
	resp, err = http.Get(srv.URL + "/jobs/" + sr2.ID + "?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	jv = JobView{}
	json.NewDecoder(resp.Body).Decode(&jv)
	resp.Body.Close()
	if !jv.CacheHit {
		t.Error("resubmission did not hit the compile cache")
	}

	// Stats report the activity.
	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.JobsSubmitted < 2 || st.Cache.Hits == 0 {
		t.Errorf("stats missing activity: %+v", st)
	}

	// Error paths.
	if resp, _ := http.Get(srv.URL + "/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job → %d, want 404", resp.StatusCode)
	}
	if resp, _ := http.Post(srv.URL+"/submit", "application/json", bytes.NewBufferString("{}")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty submit → %d, want 400", resp.StatusCode)
	}
	if resp, _ := http.Post(srv.URL+"/submit", "application/json", bytes.NewBufferString(`{"qubo":{"n":2,"terms":[{"i":5,"j":0,"v":1}]}}`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range qubo term → %d, want 400", resp.StatusCode)
	}
}

func TestCQASMSubmissionSharesCacheWithProgram(t *testing.T) {
	// The same logical circuit submitted as text and as a Program must
	// land on one cache entry (keying on the canonical render).
	s := twoBackendService(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	j1, err := s.Submit(Request{CQASM: bellCQASM, Backend: "perfect", Shots: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(Request{Program: bellProgram("bell"), Backend: "perfect", Shots: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit() {
		t.Error("builder-API resubmission of the text-submitted circuit missed the cache")
	}
}

func TestDeterministicSeeds(t *testing.T) {
	// Same request + same pinned seed → identical counts.
	run := func() map[int]int {
		s := twoBackendService(t, Config{})
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		j, err := s.Submit(Request{Program: bellProgram("b"), Backend: "perfect", Shots: 128, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		return j.Result().Report.Result.Counts
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("count maps differ: %v vs %v", a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("seeded runs diverge at %d: %d vs %d", k, v, b[k])
		}
	}
}

func TestCompletedJobRetention(t *testing.T) {
	s := New(Config{RetainJobs: 3, Seed: 2})
	s.AddBackend(NewClassicalFallback("classical", 8), 1)
	s.Start()
	defer s.Stop()

	q := qubo.New(2)
	q.Set(0, 0, -1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var ids []string
	for i := 0; i < 6; i++ {
		j, err := s.Submit(Request{QUBO: q})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Error("oldest completed job not evicted beyond RetainJobs")
	}
	if _, ok := s.Job(ids[5]); !ok {
		t.Error("newest completed job evicted")
	}
}

func TestNoHeadOfLineBlocking(t *testing.T) {
	// A saturated backend lane must not prevent submission to, or
	// execution on, another backend.
	bb := &blockingBackend{release: make(chan struct{})}
	s := New(Config{QueueSize: 1, Seed: 2})
	s.AddBackend(bb, 1)
	s.AddBackend(NewClassicalFallback("classical", 8), 1)
	s.Start()
	defer s.Stop()
	defer close(bb.release)

	// Saturate the blocker lane: 1 running + 1 queued.
	var blocked []*Job
	for i := 0; i < 8; i++ {
		j, err := s.Submit(Request{CQASM: bellCQASM, Backend: "blocker"})
		if err == ErrQueueFull {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		blocked = append(blocked, j)
	}

	// The classical lane still accepts and completes work.
	q := qubo.New(2)
	q.Set(0, 0, -1)
	j, err := s.Submit(Request{QUBO: q, Backend: "classical"})
	if err != nil {
		t.Fatalf("classical lane rejected while blocker saturated: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("classical job stalled behind saturated blocker lane: %v", err)
	}
	for range blocked {
		bb.release <- struct{}{}
	}
}

// Per-job engine selection: the same seeded job must return identical
// counts whichever engine executes it, an unknown engine must be rejected
// at submit time, and an engine override must reuse the compile-cache
// entry — compilation is engine-independent.
func TestPerJobEngineSelection(t *testing.T) {
	s := twoBackendService(t, Config{Seed: 9})

	run := func(engine string) *Job {
		t.Helper()
		job, err := s.Submit(Request{Program: bellProgram("eng"), Backend: "perfect",
			Engine: engine, Shots: 200, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		return job
	}

	ref := run(qx.EngineReference)
	opt := run(qx.EngineOptimized)
	def := run("")
	if !reflect.DeepEqual(ref.Result().Report.Result.Counts, opt.Result().Report.Result.Counts) {
		t.Errorf("engines diverge: %v vs %v",
			ref.Result().Report.Result.Counts, opt.Result().Report.Result.Counts)
	}
	if !reflect.DeepEqual(def.Result().Report.Result.Counts, opt.Result().Report.Result.Counts) {
		t.Errorf("default engine diverges from optimized: %v vs %v",
			def.Result().Report.Result.Counts, opt.Result().Report.Result.Counts)
	}

	if _, err := s.Submit(Request{Program: bellProgram("bad"), Engine: "warp-drive"}); err == nil {
		t.Error("unknown engine accepted at submit")
	}

	// One compile entry serves every engine; the overridden resubmissions
	// must have hit it.
	if !opt.CacheHit() || !def.CacheHit() {
		t.Error("engine-overridden resubmission missed the compile cache")
	}
	if st := s.Cache().Stats(); st.Entries != 1 {
		t.Errorf("engine overrides fragmented the cache: %d entries", st.Entries)
	}
}

func TestHTTPEngineField(t *testing.T) {
	s := twoBackendService(t, Config{Seed: 5})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(SubmitRequest{Name: "bell", CQASM: bellCQASM,
		Backend: "perfect", Engine: qx.EngineReference, Shots: 64})
	resp, err := http.Post(srv.URL+"/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("engine submit status %d", resp.StatusCode)
	}

	bad, _ := json.Marshal(SubmitRequest{Name: "bell", CQASM: bellCQASM, Engine: "warp-drive"})
	resp, err = http.Post(srv.URL+"/submit", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus engine submit status %d, want 400", resp.StatusCode)
	}
	// The rejection must name every valid choice so clients can self-serve.
	for _, name := range qx.EngineNames() {
		if !strings.Contains(string(msg), name) {
			t.Errorf("400 body %q does not list engine %q", msg, name)
		}
	}
}

// The default engine is auto: a Clifford job submitted with no engine
// override must be dispatched to the stabilizer engine, the resolved
// target must surface in the job view and the dispatch counter, and a
// non-Clifford job must fall back to the dense optimized engine.
func TestAutoDispatchEndToEnd(t *testing.T) {
	s := DefaultService(Config{Seed: 21}, 4, 1)
	s.Start()
	defer s.Stop()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	submit := func(src string) string {
		t.Helper()
		body, _ := json.Marshal(SubmitRequest{Name: "auto", CQASM: src,
			Backend: "perfect", Shots: 64})
		resp, err := http.Post(srv.URL+"/submit", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		var v JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v.ID
	}
	engineOf := func(id string) string {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(srv.URL + "/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var v JobView
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if v.Status == StatusDone {
				return v.Engine
			}
			if v.Status == StatusFailed || time.Now().After(deadline) {
				t.Fatalf("job %s did not finish: %+v", id, v)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	if eng := engineOf(submit(bellCQASM)); eng != qx.EngineStabilizer {
		t.Errorf("Clifford job ran on %q, want %q", eng, qx.EngineStabilizer)
	}
	tCQASM := "version 1.0\nqubits 1\nh q[0]\nt q[0]\nmeasure q[0]\n"
	if eng := engineOf(submit(tCQASM)); eng != qx.EngineOptimized {
		t.Errorf("non-Clifford job ran on %q, want %q", eng, qx.EngineOptimized)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`qserv_engine_dispatch_total{engine="stabilizer"} 1`,
		`qserv_engine_dispatch_total{engine="optimized"} 1`,
	} {
		if !strings.Contains(string(expo), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// DefaultService must thread Config.Engine into every gate stack while
// leaving the annealing lanes untouched.
func TestDefaultServiceEngineConfig(t *testing.T) {
	s := DefaultService(Config{Seed: 3, Engine: qx.EngineReference}, 4, 1)
	s.Start()
	defer s.Stop()
	job, err := s.Submit(Request{Program: bellProgram("cfg"), Backend: "perfect", Shots: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if job.Result().Report == nil {
		t.Fatal("no report from reference-engine stack")
	}
}

// Per-job pass-spec selection: an invalid spec is rejected at submit
// time, a custom spec keys its own compile-cache entry (miss on first
// use, hit on reuse), and the default-spec entry is left untouched.
func TestPerJobPassSelection(t *testing.T) {
	s := twoBackendService(t, Config{Seed: 13})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	run := func(passes string) *Job {
		t.Helper()
		j, err := s.Submit(Request{Program: bellProgram("pass"), Backend: "perfect",
			Passes: passes, Shots: 32})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		return j
	}

	if _, err := s.Submit(Request{Program: bellProgram("bad"), Passes: "decompose,teleport"}); err == nil {
		t.Error("unknown pass spec accepted at submit")
	}

	def1 := run("")
	if def1.CacheHit() {
		t.Error("first default-spec compile reported a cache hit")
	}
	custom1 := run("decompose,fold-rotations,optimize,schedule")
	if custom1.CacheHit() {
		t.Error("custom pass spec shared the default spec's cache entry")
	}
	custom2 := run("decompose,fold-rotations,optimize,schedule")
	if !custom2.CacheHit() {
		t.Error("repeated custom pass spec missed its own cache entry")
	}
	def2 := run("")
	if !def2.CacheHit() {
		t.Error("custom-spec jobs evicted or aliased the default entry")
	}
	if st := s.Cache().Stats(); st.Entries != 2 {
		t.Errorf("%d cache entries, want 2 (default + custom spec)", st.Entries)
	}

	// The compile report reflects the executed pipeline, cached or not.
	rep := custom2.Result().Report
	if rep == nil || rep.Compile == nil ||
		rep.Compile.PassSpec != "decompose,fold-rotations,optimize,schedule" {
		t.Fatalf("job compile report missing or wrong: %+v", rep)
	}

	// A spec that compiles but lacks the schedule pass fails the job with
	// a clear error rather than crashing a worker.
	j, err := s.Submit(Request{Program: bellProgram("nosched"), Backend: "perfect",
		Passes: "decompose,optimize"})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(ctx); err == nil || !strings.Contains(err.Error(), "schedule") {
		t.Errorf("schedule-less job error = %v", err)
	}
}

// Per-pass compile metrics must surface in Stats, aggregated only over
// jobs that actually compiled (cache hits excluded).
func TestStatsCompilePassMetrics(t *testing.T) {
	s := twoBackendService(t, Config{Seed: 21})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		j, err := s.Submit(Request{Program: bellProgram("stats"), Backend: "perfect", Shots: 16})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	var perfect *BackendStats
	for i := range st.Backends {
		if st.Backends[i].Name == "perfect" {
			perfect = &st.Backends[i]
		}
	}
	if perfect == nil || len(perfect.CompilePasses) == 0 {
		t.Fatalf("no compile-pass stats on the perfect backend: %+v", st.Backends)
	}
	byPass := map[string]PassStats{}
	for _, ps := range perfect.CompilePasses {
		byPass[ps.Pass] = ps
	}
	// One cold compile, two cache hits → each pass aggregated exactly
	// once (cache hits skip the pipeline).
	wantRuns := map[string]uint64{"decompose": 1, "optimize": 1, "map": 1,
		"lower-swaps": 1, "optimize-lowered": 1, "schedule": 1, "assemble": 1}
	for want, runs := range wantRuns {
		ps, ok := byPass[want]
		if !ok {
			t.Errorf("pass %q missing from stats", want)
			continue
		}
		if ps.Runs != runs {
			t.Errorf("pass %q runs = %d, want %d (cache hits must not aggregate)", want, ps.Runs, runs)
		}
	}
	if byPass["decompose"].GatesIn == 0 {
		t.Error("decompose gate counts not aggregated")
	}
}

// The HTTP surface: "passes" field accepted and echoed, bad specs are a
// 400, and the job view carries the per-pass compile report.
func TestHTTPPassesField(t *testing.T) {
	s := twoBackendService(t, Config{Seed: 5})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	spec := "decompose,optimize,map,lower-swaps,schedule,assemble"
	body, _ := json.Marshal(SubmitRequest{Name: "bell", CQASM: bellCQASM,
		Backend: "perfect", Passes: spec, Shots: 32})
	resp, err := http.Post(srv.URL+"/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr SubmitResponse
	json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("passes submit status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/jobs/" + sr.ID + "?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	var jv JobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jv.Status != StatusDone {
		t.Fatalf("job failed: %+v", jv)
	}
	if jv.Passes != spec {
		t.Errorf("job view passes = %q, want %q", jv.Passes, spec)
	}
	if jv.CompileReport == nil || len(jv.CompileReport.Passes) == 0 {
		t.Fatal("job view missing the per-pass compile report")
	}
	if jv.CompileReport.PassSpec != spec {
		t.Errorf("compile report spec = %q", jv.CompileReport.PassSpec)
	}

	bad, _ := json.Marshal(SubmitRequest{CQASM: bellCQASM, Passes: "decompose,teleport"})
	resp, err = http.Post(srv.URL+"/submit", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus passes submit status %d, want 400", resp.StatusCode)
	}

	// /stats carries per-pass compile metrics.
	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	found := false
	for _, b := range st.Backends {
		for _, ps := range b.CompilePasses {
			if ps.Pass == "schedule" && ps.Runs > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("/stats missing per-pass compile metrics")
	}
}

// DefaultService must thread Config.Passes into every gate stack.
func TestDefaultServicePassesConfig(t *testing.T) {
	spec := "decompose,optimize,schedule,assemble"
	s := DefaultService(Config{Seed: 3, Passes: spec}, 4, 1)
	s.Start()
	defer s.Stop()
	job, err := s.Submit(Request{Program: bellProgram("cfg"), Backend: "superconducting", Shots: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := job.Result().Report
	if rep == nil || rep.Compile == nil || rep.Compile.PassSpec != spec {
		t.Fatalf("configured pass spec not used: %+v", rep)
	}
}
