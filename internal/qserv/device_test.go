package qserv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qubo"
	"repro/internal/target"
)

// labDeviceJSON is a 4-qubit calibrated linear device in the wire
// schema, used as a per-job target override.
const labDeviceJSON = `{
	"name": "lab-chip", "qubits": 4, "cycle_time_ns": 20,
	"gates": {"i":{"duration":1},"rz":{"duration":1},"x90":{"duration":1},"mx90":{"duration":1},
	          "y90":{"duration":1},"my90":{"duration":1},"cz":{"duration":2},
	          "measure":{"duration":15},"prep_z":{"duration":10},"wait":{"duration":1},"barrier":{"duration":0}},
	"topology": {"kind": "linear"},
	"calibration": {
		"qubits": [
			{"t1_ns": 30000, "t2_ns": 20000, "readout_error": 0.01, "single_qubit_error": 0.001},
			{"t1_ns": 30000, "t2_ns": 20000, "readout_error": 0.01, "single_qubit_error": 0.001},
			{"t1_ns": 30000, "t2_ns": 20000, "readout_error": 0.01, "single_qubit_error": 0.001},
			{"t1_ns": 30000, "t2_ns": 20000, "readout_error": 0.01, "single_qubit_error": 0.001}
		],
		"edges": [
			{"a":0,"b":1,"two_qubit_error":0.005},
			{"a":1,"b":2,"two_qubit_error":0.005},
			{"a":2,"b":3,"two_qubit_error":0.005}
		]
	}
}`

func awaitJob(t *testing.T, s *Service, req Request) *Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job %s: %v", j.ID, err)
	}
	return j
}

// Acceptance: re-calibrating a device changes CompileFingerprint and
// misses the qserv compile cache — jobs against fresher calibration
// never reuse artefacts compiled for the stale table.
func TestRecalibrationMissesCompileCache(t *testing.T) {
	s := New(Config{Seed: 13})
	s.AddBackend(NewStackBackend(core.NewSuperconducting(13)), 2)
	s.Start()
	t.Cleanup(s.Stop)

	base := Request{Program: bellProgram("recal"), Backend: "superconducting", Shots: 8}
	if j := awaitJob(t, s, base); j.CacheHit() {
		t.Fatal("first compile reported a cache hit")
	}
	if j := awaitJob(t, s, base); !j.CacheHit() {
		t.Fatal("identical resubmission missed the compile cache")
	}

	// Fresh calibration data: one edge degraded.
	recal := target.Superconducting().Calibration
	recal.SetEdgeError(0, 9, 0.2)
	withCal := base
	withCal.Calibration = recal
	if j := awaitJob(t, s, withCal); j.CacheHit() {
		t.Fatal("re-calibrated job reused a compile cached for the stale calibration")
	}
	// The same fresh table resubmitted hits its own entry.
	if j := awaitJob(t, s, withCal); !j.CacheHit() {
		t.Fatal("identical re-calibrated resubmission missed the cache")
	}
	// And the original calibration still hits the original entry.
	if j := awaitJob(t, s, base); !j.CacheHit() {
		t.Fatal("original calibration no longer hits its cache entry")
	}
}

// Per-job device targets: the job compiles and executes against the
// submitted device, keyed separately in the compile cache.
func TestPerJobTargetOverride(t *testing.T) {
	s := twoBackendService(t, Config{Seed: 5})
	dev, err := target.Parse([]byte(labDeviceJSON))
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Program: bellProgram("target"), Backend: "perfect", Target: dev, Shots: 16}
	j := awaitJob(t, s, req)
	if j.CacheHit() {
		t.Error("first targeted job reported a cache hit")
	}
	res := j.Result()
	if res == nil || res.Report == nil || res.Report.Result == nil {
		t.Fatal("targeted job returned no report")
	}
	if res.Report.EQASM == "" {
		t.Error("calibrated target did not execute through the realistic path")
	}
	if res.Report.Stack != "lab-chip" {
		t.Errorf("report stack %q, want lab-chip", res.Report.Stack)
	}
	if j2 := awaitJob(t, s, req); !j2.CacheHit() {
		t.Error("identical targeted job missed the compile cache")
	}
	if j3 := awaitJob(t, s, Request{Program: bellProgram("target"), Backend: "perfect", Shots: 16}); j3.CacheHit() {
		t.Error("untargeted job shared the targeted job's cache entry")
	}
}

// Invalid overrides are rejected at Submit (HTTP 400), never enqueued.
func TestDeviceOverrideValidation(t *testing.T) {
	s := New(Config{Seed: 1})
	s.AddBackend(NewStackBackend(core.NewPerfect(5, 1)), 1)
	s.AddBackend(NewStackBackend(core.NewSemiconducting(1)), 1)
	s.AddBackend(NewAnnealBackend("annealer", false, anneal.SQAOptions{}, anneal.DigitalAnnealerOptions{}), 1)
	s.Start()
	t.Cleanup(s.Stop)

	badDev := target.Perfect(3)
	badDev.NumQubits = 0
	if _, err := s.Submit(Request{CQASM: bellCQASM, Target: badDev}); err == nil {
		t.Error("invalid target device accepted")
	}
	// Calibration overrides need the routed backend to be calibrated.
	cal := target.Semiconducting().Calibration
	if _, err := s.Submit(Request{CQASM: bellCQASM, Backend: "perfect", Calibration: cal}); err == nil {
		t.Error("calibration override on an uncalibrated backend accepted")
	}
	// Wrong-size table against the semiconducting device.
	shortCal := &target.Calibration{Qubits: make([]target.QubitCalibration, 3)}
	if _, err := s.Submit(Request{CQASM: bellCQASM, Backend: "semiconducting", Calibration: shortCal}); err == nil {
		t.Error("wrong-size calibration accepted")
	}
	// Overrides on non-gate backends are rejected.
	if _, err := s.Submit(Request{QUBO: qubo.New(3), Backend: "annealer", Calibration: cal}); err == nil {
		t.Error("calibration on an annealing job accepted")
	}
	// A valid override passes.
	okCal := target.Semiconducting().Calibration
	okCal.SetEdgeError(0, 1, 0.05)
	if _, err := s.Submit(Request{CQASM: bellCQASM, Backend: "semiconducting", Calibration: okCal}); err != nil {
		t.Errorf("valid calibration override rejected: %v", err)
	}
}

// GET /backends exposes each gate backend's device — calibration
// included — and its content hash; accelerator lanes carry no device.
func TestHTTPBackendsEndpoint(t *testing.T) {
	s := New(Config{Seed: 1})
	s.AddBackend(NewStackBackend(core.NewSuperconducting(1)), 2)
	s.AddBackend(NewAnnealBackend("annealer", false, anneal.SQAOptions{}, anneal.DigitalAnnealerOptions{}), 1)
	s.Start()
	t.Cleanup(s.Stop)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/backends")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /backends = %d", resp.StatusCode)
	}
	var body struct {
		Backends []struct {
			Name       string          `json:"name"`
			Kind       string          `json:"kind"`
			Workers    int             `json:"workers"`
			Device     json.RawMessage `json:"device"`
			DeviceHash string          `json:"device_hash"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Backends) != 2 {
		t.Fatalf("%d backends, want 2", len(body.Backends))
	}
	sc := body.Backends[0]
	if sc.Name != "superconducting" || sc.Kind != "gate" || sc.DeviceHash == "" {
		t.Errorf("superconducting view wrong: %+v", sc)
	}
	dev, err := target.Parse(sc.Device)
	if err != nil {
		t.Fatalf("backend device JSON does not round-trip: %v", err)
	}
	if dev.Calibration == nil || len(dev.Calibration.Qubits) != 17 {
		t.Error("backend device missing calibration data")
	}
	if dev.Hash() != sc.DeviceHash {
		t.Error("device_hash does not match the device body")
	}
	ann := body.Backends[1]
	if ann.Kind != "accelerator" || len(ann.Device) > 0 {
		t.Errorf("annealer view wrong: %+v", ann)
	}
}

// The HTTP surface: a target override compiles against the submitted
// device (echoed in the job view), invalid target/calibration JSON is a
// 400.
func TestHTTPTargetAndCalibration(t *testing.T) {
	s := twoBackendService(t, Config{Seed: 9})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/submit", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&m)
		return resp, m
	}

	// Valid device target.
	resp, m := post(fmt.Sprintf(`{"cqasm": %q, "backend": "perfect", "target": %s, "shots": 8}`,
		bellCQASM, labDeviceJSON))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("targeted submit = %d (%v)", resp.StatusCode, m)
	}
	id := m["id"].(string)
	jr, err := http.Get(srv.URL + "/jobs/" + id + "?wait=15s")
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(jr.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if view.Status != StatusDone {
		t.Fatalf("targeted job status %s (%s)", view.Status, view.Error)
	}
	if view.Device != "lab-chip" {
		t.Errorf("job view device %q, want lab-chip", view.Device)
	}

	// Malformed device JSON → 400 with the target error.
	resp, m = post(fmt.Sprintf(`{"cqasm": %q, "target": {"name":"x","qubits":0}}`, bellCQASM))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid target = %d, want 400", resp.StatusCode)
	}
	if msg, _ := m["error"].(string); !strings.Contains(msg, "no qubits") {
		t.Errorf("error %q does not explain the invalid device", msg)
	}

	// Invalid calibration override → 400.
	resp, m = post(fmt.Sprintf(
		`{"cqasm": %q, "backend": "semiconducting", "calibration": {"qubits": [{"t1_ns": -5}]}}`, bellCQASM))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid calibration = %d, want 400 (%v)", resp.StatusCode, m)
	}
}

// /stats carries per-pass latency percentiles so tail compile time is
// visible per backend.
func TestStatsPassLatencyPercentiles(t *testing.T) {
	s := twoBackendService(t, Config{Seed: 17, CacheSize: -1}) // no cache: every job compiles
	for i := 0; i < 8; i++ {
		awaitJob(t, s, Request{Program: bellProgram(fmt.Sprintf("p%d", i)), Backend: "perfect", Shots: 4})
	}
	st := s.Stats()
	var perfect *BackendStats
	for i := range st.Backends {
		if st.Backends[i].Name == "perfect" {
			perfect = &st.Backends[i]
		}
	}
	if perfect == nil || len(perfect.CompilePasses) == 0 {
		t.Fatal("no compile-pass stats")
	}
	for _, ps := range perfect.CompilePasses {
		if ps.Runs != 8 {
			t.Errorf("pass %s runs = %d, want 8", ps.Pass, ps.Runs)
		}
		if ps.P50Us <= 0 || ps.P95Us < ps.P50Us || ps.P99Us < ps.P95Us {
			t.Errorf("pass %s percentiles not monotone: p50=%g p95=%g p99=%g",
				ps.Pass, ps.P50Us, ps.P95Us, ps.P99Us)
		}
	}
}

// Latency histogram semantics after the obs migration: the shared
// geometric ladder keeps sub-microsecond pass times and multi-ms
// outliers apart, and its quantile estimates bracket the recorded
// values the way the old hand-rolled histogram did.
func TestLatencyHistogram(t *testing.T) {
	h := obs.NewRegistry().NewHistogram("test_latency_seconds", "t", obs.LatencyBuckets)
	for i := 0; i < 99; i++ {
		h.ObserveSeconds(1000) // ~1 µs
	}
	h.ObserveSeconds(50_000_000) // one 50 ms outlier
	if p50 := h.Quantile(0.50) * 1e6; p50 <= 0 || p50 > 2 {
		t.Errorf("p50 = %g µs, want ~1 µs", p50)
	}
	if p99 := h.Quantile(0.995) * 1e6; p99 < 1000 {
		t.Errorf("p99.5 = %g µs, should catch the 50 ms outlier", p99)
	}
}
