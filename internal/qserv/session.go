package qserv

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/openql"
	"repro/internal/target"
)

// ErrUnknownSession distinguishes lookups of unknown (or expired)
// sessions — HTTP 404 — from invalid inputs (HTTP 400).
var ErrUnknownSession = errors.New("qserv: unknown session")

// Session pins one eagerly compiled — typically parameterised — artefact
// so a variational optimiser can stream parameter bindings against it.
// Each bind is a cheap sub-job through the session backend's ordinary
// queue and worker pool: the worker patches the pinned artefact's bind
// table (O(#symbols), never re-entering the compiler) and executes the
// bound copy. The artefact itself lives in the shared full-artefact
// cache, keyed by the program's symbolic content hash, so every session
// on — and every binding of — one ansatz shares a single cache entry per
// level.
type Session struct {
	// ID names the session ("sess-N").
	ID string

	pool      *backendPool
	stack     *core.Stack
	compiled  *openql.Compiled
	numQubits int
	symbols   []string
	name      string
	shots     int
	engine    string
	passes    string
	hit       bool
	created   time.Time

	mu       sync.Mutex
	lastUsed time.Time
	binds    uint64
}

// Symbols returns the sorted free parameters of the pinned artefact
// (empty for a concrete program).
func (ss *Session) Symbols() []string { return append([]string(nil), ss.symbols...) }

// Backend returns the name of the backend the session is pinned to.
func (ss *Session) Backend() string { return ss.pool.b.Name() }

// CompileCacheHit reports whether the session's eager compile was served
// from the shared full-artefact cache — true whenever another session
// (or job) already compiled the same symbolic program on the same stack.
func (ss *Session) CompileCacheHit() bool { return ss.hit }

func (ss *Session) usage() (lastUsed time.Time, binds uint64) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.lastUsed, ss.binds
}

// BindRequest is one parameter binding streamed into a session. Values
// must bind every free symbol of the session's artefact exactly (and be
// empty for a concrete program).
type BindRequest struct {
	// Name labels the bind job in views and logs; optional.
	Name string
	// Values maps each free symbol to its angle.
	Values map[string]float64
	// Shots overrides the session's per-bind shot count when positive.
	Shots int
	// Seed pins the bind's random seed; 0 derives a fresh deterministic
	// seed, distinct per bind.
	Seed int64
}

// OpenSession eagerly compiles the request's gate program — symbolic
// parameters preserved — and pins the artefact for streaming binds. The
// request routes exactly like Submit (backend, engine, passes, device
// and calibration overrides all apply), must carry a gate payload, and
// compiles through the shared caches: opening a second session on the
// same program is a cache hit, not a recompile. Idle sessions expire
// after Config.SessionTTL; opening beyond Config.MaxSessions evicts the
// least-recently-used session.
func (s *Service) OpenSession(req Request) (*Session, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	if req.QUBO != nil {
		return nil, errors.New("qserv: sessions pin gate programs; QUBO payloads have no parameters to bind")
	}
	if req.Shots <= 0 {
		req.Shots = s.cfg.DefaultShots
	}
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return nil, errors.New("qserv: service not started")
	}
	if s.stopped {
		s.mu.Unlock()
		return nil, ErrStopped
	}
	pool, err := s.route(&req)
	if err == nil {
		err = validateDeviceOverrides(&req, pool.b)
	}
	var sb SessionBackend
	if err == nil {
		var ok bool
		if sb, ok = pool.b.(SessionBackend); !ok {
			err = fmt.Errorf("qserv: backend %q does not support sessions", pool.b.Name())
		}
	}
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}

	// Compile outside the service lock: an eager compile can be slow and
	// must not stall Submit. The shared cache deduplicates concurrent
	// opens of the same program.
	stack, p, compiled, hit, err := sb.CompileForSession(&req, s.env)
	if err != nil {
		return nil, err
	}

	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return nil, ErrStopped
	}
	s.sweepSessionsLocked(now)
	if s.cfg.MaxSessions > 0 {
		for len(s.sessions) >= s.cfg.MaxSessions {
			s.evictLRUSessionLocked()
		}
	}
	n := s.seq.Add(1)
	sess := &Session{
		ID:        fmt.Sprintf("sess-%d", n),
		pool:      pool,
		stack:     stack,
		compiled:  compiled,
		numQubits: p.NumQubits,
		symbols:   compiled.Symbols(),
		name:      req.Name,
		shots:     req.Shots,
		engine:    req.Engine,
		passes:    req.Passes,
		hit:       hit,
		created:   now,
		lastUsed:  now,
	}
	s.sessions[sess.ID] = sess
	s.sessOpened++
	if s.met != nil {
		s.met.sessionsOpened.Inc()
	}
	s.log.Info("session opened",
		"session", sess.ID, "backend", pool.b.Name(), "name", req.Name,
		"symbols", len(sess.symbols), "compile_cache_hit", hit)
	return sess, nil
}

// BindSession binds the session's free parameters and enqueues the bound
// execution as a sub-job on the session's backend lane, returning the
// tracked job. The worker never recompiles: it patches the pinned
// artefact's bind table and executes. Like Submit it never blocks — a
// full queue fails fast with ErrQueueFull. Bindings are validated here,
// so malformed value sets are rejected at submit time.
func (s *Service) BindSession(id string, breq BindRequest) (*Job, error) {
	s.mu.Lock()
	s.sweepSessionsLocked(time.Now())
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownSession, id)
	}
	// Strict symbol check up front: every free symbol bound, no strays.
	if len(breq.Values) != len(sess.symbols) {
		return nil, fmt.Errorf("qserv: session %s binds %d symbols %v, got %d values",
			id, len(sess.symbols), sess.symbols, len(breq.Values))
	}
	for _, sym := range sess.symbols {
		if _, ok := breq.Values[sym]; !ok {
			return nil, fmt.Errorf("qserv: session %s: missing value for symbol %q", id, sym)
		}
	}
	shots := breq.Shots
	if shots <= 0 {
		shots = sess.shots
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		return nil, errors.New("qserv: service not started")
	}
	if s.stopped {
		return nil, ErrStopped
	}
	n := s.seq.Add(1)
	seed := breq.Seed
	if seed == 0 {
		seed = s.cfg.Seed + int64(n)*2654435761
	}
	req := Request{
		Name:    breq.Name,
		Backend: sess.pool.b.Name(),
		Engine:  sess.engine,
		Passes:  sess.passes,
		Shots:   shots,
		Seed:    breq.Seed,
	}
	job := newJob(fmt.Sprintf("job-%d", n), req, sess.pool, seed)
	job.sess = sess
	job.bindVals = breq.Values
	if s.tracer != nil {
		job.trace = s.tracer.StartAt(job.ID, "job", job.submitted)
		root := job.trace.Root()
		root.SetAttr("backend", sess.pool.b.Name())
		root.SetAttr("session", sess.ID)
		if req.Name != "" {
			root.SetAttr("name", req.Name)
		}
		job.queueSpan = root.StartChildAt("queue.wait", job.submitted)
	}
	select {
	case sess.pool.ch <- job:
	default:
		return nil, ErrQueueFull
	}
	s.jobs[job.ID] = job
	s.submitted.Add(1)
	s.binds.Add(1)
	sess.mu.Lock()
	sess.lastUsed = job.submitted
	sess.binds++
	sess.mu.Unlock()
	if s.met != nil {
		s.met.jobsSubmitted.Inc()
		s.met.bindsTotal.Inc()
	}
	s.log.Debug("bind submitted",
		"trace_id", job.TraceID(), "job", job.ID, "session", sess.ID,
		"backend", sess.pool.b.Name(), "name", req.Name)
	return job, nil
}

// CloseSession unpins a session; in-flight binds finish normally (they
// hold their own reference to the pinned artefact). Closing an unknown
// or expired session returns ErrUnknownSession.
func (s *Service) CloseSession(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return fmt.Errorf("%w %q", ErrUnknownSession, id)
	}
	delete(s.sessions, id)
	s.log.Info("session closed", "session", id)
	return nil
}

// Session looks up an open session by ID.
func (s *Service) Session(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepSessionsLocked(time.Now())
	ss, ok := s.sessions[id]
	return ss, ok
}

// Sessions lists the open sessions, oldest first.
func (s *Service) Sessions() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepSessionsLocked(time.Now())
	out := make([]*Session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		out = append(out, ss)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].created.Before(out[j].created) })
	return out
}

// sweepSessionsLocked drops sessions idle past Config.SessionTTL.
// Expiry is lazy — checked on every session-store access — so no
// background timer is needed and tests stay deterministic.
func (s *Service) sweepSessionsLocked(now time.Time) {
	if s.cfg.SessionTTL <= 0 {
		return
	}
	// Sweep in sorted id order so the expiry log lines come out in a
	// reproducible sequence.
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		lastUsed, _ := s.sessions[id].usage()
		if now.Sub(lastUsed) > s.cfg.SessionTTL {
			delete(s.sessions, id)
			s.sessExpired++
			s.log.Info("session expired", "session", id, "idle", now.Sub(lastUsed).String())
		}
	}
}

// evictLRUSessionLocked drops the least-recently-used session to make
// room for a new one.
func (s *Service) evictLRUSessionLocked() {
	var victim string
	var oldest time.Time
	//qlint:nondeterministic-ok order-independent: strict lastUsed ordering with lowest-id tie-break yields one victim regardless of iteration order
	for id, ss := range s.sessions {
		lastUsed, _ := ss.usage()
		// Tie-break equal timestamps on the id so the evicted session does
		// not depend on map iteration order.
		if victim == "" || lastUsed.Before(oldest) || (lastUsed.Equal(oldest) && id < victim) {
			victim, oldest = id, lastUsed
		}
	}
	if victim == "" {
		return
	}
	delete(s.sessions, victim)
	s.sessEvicted++
	s.log.Info("session evicted", "session", victim)
}

// SessionStats is the session slice of the /stats report.
type SessionStats struct {
	// Active is the number of currently open sessions.
	Active int `json:"active"`
	// Opened, Expired and Evicted count session lifecycle events since
	// Start: TTL expiries and LRU evictions are split out so capacity
	// pressure is distinguishable from idle churn.
	Opened  uint64 `json:"opened"`
	Expired uint64 `json:"expired"`
	Evicted uint64 `json:"evicted"`
	// Binds counts parameter bindings streamed through sessions — the
	// jobs that skipped compilation entirely via the bind fast path.
	Binds uint64 `json:"binds"`
}

// SessionView is the JSON rendering of a session for the HTTP API.
type SessionView struct {
	ID      string `json:"id"`
	Name    string `json:"name,omitempty"`
	Backend string `json:"backend"`
	// Symbols are the free parameters every bind must supply.
	Symbols    []string `json:"symbols,omitempty"`
	Parametric bool     `json:"parametric"`
	// CompileCacheHit reports whether the eager compile reused a shared
	// full-artefact cache entry.
	CompileCacheHit bool      `json:"compile_cache_hit"`
	Binds           uint64    `json:"binds"`
	Shots           int       `json:"shots"`
	Engine          string    `json:"engine,omitempty"`
	Passes          string    `json:"passes,omitempty"`
	CreatedAt       time.Time `json:"created_at"`
	LastUsedAt      time.Time `json:"last_used_at"`
	// ExpiresAt is when the session lapses if no further bind arrives
	// (absent when expiry is disabled).
	ExpiresAt *time.Time `json:"expires_at,omitempty"`
}

func (s *Service) viewSession(ss *Session) SessionView {
	lastUsed, binds := ss.usage()
	v := SessionView{
		ID:              ss.ID,
		Name:            ss.name,
		Backend:         ss.pool.b.Name(),
		Symbols:         ss.Symbols(),
		Parametric:      len(ss.symbols) > 0,
		CompileCacheHit: ss.hit,
		Binds:           binds,
		Shots:           ss.shots,
		Engine:          ss.engine,
		Passes:          ss.passes,
		CreatedAt:       ss.created,
		LastUsedAt:      lastUsed,
	}
	if s.cfg.SessionTTL > 0 {
		exp := lastUsed.Add(s.cfg.SessionTTL)
		v.ExpiresAt = &exp
	}
	return v
}

// OpenSessionJSON is the JSON body of POST /sessions: the parameterised
// program (cQASM with $name parameters) plus the same routing and
// override fields as POST /submit. Shots is the default per-bind shot
// count.
type OpenSessionJSON struct {
	Name    string `json:"name,omitempty"`
	CQASM   string `json:"cqasm"`
	Backend string `json:"backend,omitempty"`
	Engine  string `json:"engine,omitempty"`
	Passes  string `json:"passes,omitempty"`
	// Target and Calibration override the session's device exactly like
	// their POST /submit counterparts; every bind executes against the
	// overridden device.
	Target      json.RawMessage     `json:"target,omitempty"`
	Calibration *target.Calibration `json:"calibration,omitempty"`
	Shots       int                 `json:"shots,omitempty"`
}

// BindJSON is the JSON body of POST /sessions/{id}/bind.
type BindJSON struct {
	Name   string             `json:"name,omitempty"`
	Values map[string]float64 `json:"values"`
	Shots  int                `json:"shots,omitempty"`
	Seed   int64              `json:"seed,omitempty"`
}

func (s *Service) handleOpenSession(w http.ResponseWriter, r *http.Request) {
	var or OpenSessionJSON
	if err := json.NewDecoder(r.Body).Decode(&or); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad json: %w", err))
		return
	}
	req := Request{
		Name:        or.Name,
		CQASM:       or.CQASM,
		Backend:     or.Backend,
		Engine:      or.Engine,
		Passes:      or.Passes,
		Calibration: or.Calibration,
		Shots:       or.Shots,
	}
	if len(or.Target) > 0 {
		dev, err := target.Parse(or.Target)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		req.Target = dev
	}
	sess, err := s.OpenSession(req)
	switch {
	case errors.Is(err, ErrStopped):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.viewSession(sess))
}

func (s *Service) handleSessions(w http.ResponseWriter, r *http.Request) {
	sessions := s.Sessions()
	views := make([]SessionView, 0, len(sessions))
	for _, ss := range sessions {
		views = append(views, s.viewSession(ss))
	}
	writeJSON(w, http.StatusOK, map[string][]SessionView{"sessions": views})
}

func (s *Service) handleSession(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.Session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w %q", ErrUnknownSession, r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.viewSession(ss))
}

func (s *Service) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.CloseSession(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"session": id, "status": "closed"})
}

func (s *Service) handleBind(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var br BindJSON
	if err := json.NewDecoder(r.Body).Decode(&br); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad json: %w", err))
		return
	}
	job, err := s.BindSession(id, BindRequest{
		Name: br.Name, Values: br.Values, Shots: br.Shots, Seed: br.Seed,
	})
	switch {
	case errors.Is(err, ErrUnknownSession):
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrStopped):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if tid := job.TraceID(); tid != "" {
		w.Header().Set("X-Trace-Id", tid)
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID:      job.ID,
		Status:  job.Status(),
		Backend: job.Backend(),
	})
}
