package qserv

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/anneal"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/openql"
	"repro/internal/qubo"
	"repro/internal/qx"
	"repro/internal/target"
)

// Status is the lifecycle state of a job.
type Status string

// Job lifecycle states.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Request describes one unit of work submitted to the service. Exactly one
// payload field — CQASM, Program or QUBO — must be set.
type Request struct {
	// Name labels the job in views and logs; optional.
	Name string
	// CQASM is gate-job source text, parsed and lifted into an OpenQL
	// program on the worker.
	CQASM string
	// Program is a gate job submitted programmatically.
	Program *openql.Program
	// QUBO is an annealing job.
	QUBO *qubo.QUBO
	// Backend names the target backend; empty routes to the first backend
	// that accepts the payload.
	Backend string
	// Engine selects the qx execution engine for this job's gate
	// execution ("reference", "optimized", or any registered engine);
	// empty uses the backend stack's configured engine. Ignored by
	// annealing backends.
	Engine string
	// Passes is a comma-separated compiler pass spec for this job's gate
	// compilation, with optional per-pass options (e.g. "decompose,
	// map(lookahead=8,strategy=noise),lower-swaps,schedule,assemble");
	// empty uses the backend stack's configured pipeline. Part of the
	// compile-cache key, so jobs with different pipelines never share a
	// compiled artefact. Ignored by annealing backends.
	Passes string
	// Target replaces the backend's device for this job: compilation,
	// noise-aware mapping and execution-mode selection all run against
	// this device description, and its content hash keys the compile
	// cache. Only gate backends accept targets; invalid devices are
	// rejected at submit time.
	Target *target.Device
	// Calibration overrides the calibration table of the job's device
	// (the Target when set, the backend's device otherwise) — how a
	// client compiles against fresher calibration data than the service
	// was started with. The re-calibrated device hashes differently, so
	// the job never reuses compile-cache entries built against the stale
	// table. Requires a calibrated gate backend or an explicit Target;
	// invalid tables are rejected at submit time.
	Calibration *target.Calibration
	// Shots is the number of executions aggregated into the result
	// (gate jobs); defaults to the service's DefaultShots.
	Shots int
	// Seed pins the job's random seed; 0 derives a fresh deterministic
	// seed per job.
	Seed int64
}

// validate checks that exactly one payload is present.
func (r *Request) validate() error {
	n := 0
	if r.CQASM != "" {
		n++
	}
	if r.Program != nil {
		n++
	}
	if r.QUBO != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("qserv: request must carry exactly one of cqasm, program or qubo (got %d)", n)
	}
	if r.Engine != "" {
		if _, err := qx.EngineByName(r.Engine); err != nil {
			return err
		}
	}
	if r.Passes != "" {
		// Reject malformed specs, unknown pass names and invalid pass
		// options at submit time; mode-dependent checks (schedule/assemble
		// presence) surface when the job compiles.
		if _, err := compiler.ParsePassSpec(r.Passes); err != nil {
			return err
		}
	}
	if (r.Target != nil || r.Calibration != nil) && r.QUBO != nil {
		return errors.New("qserv: device targets and calibration overrides apply to gate jobs only")
	}
	if r.Target != nil {
		dev := r.Target
		if r.Calibration != nil {
			dev = dev.WithCalibration(r.Calibration)
		}
		if err := dev.Validate(); err != nil {
			return err
		}
	}
	// A calibration override without a target is validated against the
	// routed backend's device in Submit.
	return nil
}

// Result is the union of backend outputs: gate jobs produce a full-stack
// Report, annealing jobs (and the classical QUBO fallback) an anneal
// Result.
type Result struct {
	Report *core.Report
	Anneal *anneal.Result
}

// Job is one tracked unit of work. All accessors are safe for concurrent
// use; the service mutates the job from exactly one worker at a time.
type Job struct {
	ID  string
	Req Request

	pool *backendPool // resolved at submit time
	seed int64

	// sess and bindVals mark a session bind sub-job (BindSession): the
	// worker patches the session's pinned artefact with these values
	// instead of running the backend's compile path. Both are set before
	// the job is enqueued and never reassigned.
	sess     *Session
	bindVals map[string]float64

	// trace is the job's span tree (nil when tracing is disabled); the
	// trace ID is the job ID. queueSpan covers submit-to-start and is
	// ended by the worker when the job leaves the queue. Both are set
	// before the job is enqueued and never reassigned, so workers read
	// them without the job mutex.
	trace     *obs.Trace
	queueSpan *obs.Span

	mu        sync.Mutex
	status    Status
	err       error
	result    *Result
	cacheHit  bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	done      chan struct{}
}

func newJob(id string, req Request, pool *backendPool, seed int64) *Job {
	return &Job{
		ID:        id,
		Req:       req,
		pool:      pool,
		seed:      seed,
		status:    StatusQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Err returns the failure cause, nil unless Status is StatusFailed.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the job's output, nil until Status is StatusDone.
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// CacheHit reports whether the job's compile step was served from the
// compiled-circuit cache.
func (j *Job) CacheHit() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cacheHit
}

// Backend returns the name of the backend the job was routed to.
func (j *Job) Backend() string { return j.pool.b.Name() }

// Session returns the ID of the session a bind sub-job ran against
// ("" for ordinary jobs).
func (j *Job) Session() string {
	if j.sess == nil {
		return ""
	}
	return j.sess.ID
}

// Trace returns the job's span tree (nil when tracing is disabled).
func (j *Job) Trace() *obs.Trace { return j.trace }

// TraceID returns the job's trace ID ("" when tracing is disabled).
func (j *Job) TraceID() string { return j.trace.ID() }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes or ctx is cancelled, returning the
// job's error (nil on success) or the context's error.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Times returns the submit/start/finish instants (zero until reached).
func (j *Job) Times() (submitted, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted, j.started, j.finished
}

func (j *Job) markRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *Job) finish(res *Result, cacheHit bool, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	j.cacheHit = cacheHit
	if err != nil {
		j.status = StatusFailed
		j.err = err
	} else {
		j.status = StatusDone
		j.result = res
	}
	j.mu.Unlock()
	close(j.done)
}
