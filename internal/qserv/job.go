package qserv

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/anneal"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/openql"
	"repro/internal/qubo"
	"repro/internal/qx"
)

// Status is the lifecycle state of a job.
type Status string

// Job lifecycle states.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Request describes one unit of work submitted to the service. Exactly one
// payload field — CQASM, Program or QUBO — must be set.
type Request struct {
	// Name labels the job in views and logs; optional.
	Name string
	// CQASM is gate-job source text, parsed and lifted into an OpenQL
	// program on the worker.
	CQASM string
	// Program is a gate job submitted programmatically.
	Program *openql.Program
	// QUBO is an annealing job.
	QUBO *qubo.QUBO
	// Backend names the target backend; empty routes to the first backend
	// that accepts the payload.
	Backend string
	// Engine selects the qx execution engine for this job's gate
	// execution ("reference", "optimized", or any registered engine);
	// empty uses the backend stack's configured engine. Ignored by
	// annealing backends.
	Engine string
	// Passes is a comma-separated compiler pass spec for this job's gate
	// compilation (e.g. "decompose,optimize,map,lower-swaps,schedule,
	// assemble"); empty uses the backend stack's configured pipeline.
	// Part of the compile-cache key, so jobs with different pipelines
	// never share a compiled artefact. Ignored by annealing backends.
	Passes string
	// Shots is the number of executions aggregated into the result
	// (gate jobs); defaults to the service's DefaultShots.
	Shots int
	// Seed pins the job's random seed; 0 derives a fresh deterministic
	// seed per job.
	Seed int64
}

// validate checks that exactly one payload is present.
func (r *Request) validate() error {
	n := 0
	if r.CQASM != "" {
		n++
	}
	if r.Program != nil {
		n++
	}
	if r.QUBO != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("qserv: request must carry exactly one of cqasm, program or qubo (got %d)", n)
	}
	if r.Engine != "" {
		if _, err := qx.EngineByName(r.Engine); err != nil {
			return err
		}
	}
	if r.Passes != "" {
		// Reject unknown pass names at submit time; mode-dependent checks
		// (schedule/assemble presence) surface when the job compiles.
		if _, err := compiler.ParsePassSpec(r.Passes); err != nil {
			return err
		}
	}
	return nil
}

// Result is the union of backend outputs: gate jobs produce a full-stack
// Report, annealing jobs (and the classical QUBO fallback) an anneal
// Result.
type Result struct {
	Report *core.Report
	Anneal *anneal.Result
}

// Job is one tracked unit of work. All accessors are safe for concurrent
// use; the service mutates the job from exactly one worker at a time.
type Job struct {
	ID  string
	Req Request

	pool *backendPool // resolved at submit time
	seed int64

	mu        sync.Mutex
	status    Status
	err       error
	result    *Result
	cacheHit  bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	done      chan struct{}
}

func newJob(id string, req Request, pool *backendPool, seed int64) *Job {
	return &Job{
		ID:        id,
		Req:       req,
		pool:      pool,
		seed:      seed,
		status:    StatusQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Err returns the failure cause, nil unless Status is StatusFailed.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the job's output, nil until Status is StatusDone.
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// CacheHit reports whether the job's compile step was served from the
// compiled-circuit cache.
func (j *Job) CacheHit() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cacheHit
}

// Backend returns the name of the backend the job was routed to.
func (j *Job) Backend() string { return j.pool.b.Name() }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes or ctx is cancelled, returning the
// job's error (nil on success) or the context's error.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Times returns the submit/start/finish instants (zero until reached).
func (j *Job) Times() (submitted, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted, j.started, j.finished
}

func (j *Job) markRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *Job) finish(res *Result, cacheHit bool, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	j.cacheHit = cacheHit
	if err != nil {
		j.status = StatusFailed
		j.err = err
	} else {
		j.status = StatusDone
		j.result = res
	}
	j.mu.Unlock()
	close(j.done)
}
