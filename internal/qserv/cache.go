package qserv

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"repro/internal/compiler"
	"repro/internal/openql"
)

// cacheKey derives the compiled-circuit cache key from the stack's
// compiler fingerprint and the program's canonical kernel text: two
// submissions with equal keys compile to identical artefacts.
func cacheKey(stackFingerprint, programText string) string {
	h := sha256.New()
	h.Write([]byte(stackFingerprint))
	h.Write([]byte{0})
	h.Write([]byte(programText))
	return hex.EncodeToString(h.Sum(nil))
}

// flightCache is a bounded LRU cache with singleflight semantics over
// values of type V: concurrent lookups of the same missing key are
// deduplicated — one caller computes, the rest wait for its result.
// It backs both levels of the two-level compile cache (full artefacts
// and platform-generic prefix artefacts).
type flightCache[V any] struct {
	mu      sync.Mutex
	max     int
	entries map[string]*flightEntry[V]
	lru     *list.List // front = most recently used; element values are *flightEntry[V]
	hits    uint64
	misses  uint64
}

type flightEntry[V any] struct {
	key   string
	ready chan struct{} // closed once val/err are set
	val   V
	err   error
	elem  *list.Element
}

func newFlightCache[V any](max int) *flightCache[V] {
	if max < 1 {
		max = 1
	}
	return &flightCache[V]{
		max:     max,
		entries: map[string]*flightEntry[V]{},
		lru:     list.New(),
	}
}

// getOrCompute returns the value for key, invoking compute at most once
// per missing key across concurrent callers. The second return reports
// whether the result was served from cache (a waiter on an in-flight
// computation counts as a hit: it skipped the work).
func (c *flightCache[V]) getOrCompute(key string, compute func() (V, error)) (V, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		<-e.ready
		return e.val, true, e.err
	}
	e := &flightEntry[V]{key: key, ready: make(chan struct{})}
	c.misses++
	c.entries[key] = e
	e.elem = c.lru.PushFront(e)
	for c.lru.Len() > c.max {
		// Evict the least-recently-used entry. Waiters on an evicted
		// in-flight entry still hold the entry pointer, so they observe
		// its result once ready closes; only the map loses the reference.
		back := c.lru.Back()
		victim := back.Value.(*flightEntry[V])
		c.lru.Remove(back)
		victim.elem = nil
		delete(c.entries, victim.key)
	}
	c.mu.Unlock()

	val, err := compute()
	c.mu.Lock()
	e.val, e.err = val, err
	if err != nil {
		// Failed computations are not cached; later callers retry.
		if e.elem != nil {
			c.lru.Remove(e.elem)
			e.elem = nil
		}
		if cur, ok := c.entries[key]; ok && cur == e {
			delete(c.entries, key)
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return val, false, err
}

// clear empties the cache and resets the hit/miss counters.
func (c *flightCache[V]) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Detach live entries from the old list first: an in-flight
	// computation that later fails must not Remove a stale element from
	// the re-init'd list (list.Remove would corrupt its length).
	//qlint:nondeterministic-ok order-independent: detaches every entry identically; no output depends on visit order
	for _, e := range c.entries {
		e.elem = nil
	}
	c.entries = map[string]*flightEntry[V]{}
	c.lru.Init()
	c.hits, c.misses = 0, 0
}

// stats returns a snapshot of the cache counters.
func (c *flightCache[V]) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.lru.Len()}
}

// CompileCache is the full-artefact level of the two-level compile
// cache: a bounded LRU of compiled programs shared by all gate backends
// of a service, keyed by (compile fingerprint, program text). Concurrent
// lookups of the same missing key are deduplicated: one caller compiles,
// the rest wait for its result. Cached *openql.Compiled values are
// shared across jobs and must be treated as immutable
// (core.Stack.RunCompiled only reads them).
type CompileCache struct {
	c *flightCache[*openql.Compiled]
}

// NewCompileCache returns a cache holding at most max entries (minimum 1).
func NewCompileCache(max int) *CompileCache {
	return &CompileCache{c: newFlightCache[*openql.Compiled](max)}
}

// GetOrCompile returns the compiled program for key, invoking compile at
// most once per missing key across concurrent callers. The second return
// reports whether the result was served from cache (a waiter on an
// in-flight compile counts as a hit: it skipped the compile pipeline).
func (c *CompileCache) GetOrCompile(key string, compile func() (*openql.Compiled, error)) (*openql.Compiled, bool, error) {
	return c.c.getOrCompute(key, compile)
}

// Clear empties the cache and resets the hit/miss counters.
func (c *CompileCache) Clear() { c.c.clear() }

// Stats returns a snapshot of the cache counters.
func (c *CompileCache) Stats() CacheStats { return c.c.stats() }

// PrefixCache is the prefix-artefact level of the two-level compile
// cache: a bounded LRU of per-kernel platform-generic prefix artefacts
// (circuits after decompose/optimize/fold-rotations), keyed by
// (gate-set hash, prefix pass spec, kernel text) — deliberately NOT by
// the device content hash, scheduling policy or mapping options, none of
// which the prefix passes can observe. Recompiles that only change those
// therefore re-run just the variant suffix against cached prefix
// artefacts, and re-calibrating a device leaves its prefix entries live.
// It implements compiler.PrefixCache, the interface openql consults
// mid-compile.
type PrefixCache struct {
	c *flightCache[*compiler.PrefixArtefact]
}

// NewPrefixCache returns a cache holding at most max entries (minimum 1).
func NewPrefixCache(max int) *PrefixCache {
	return &PrefixCache{c: newFlightCache[*compiler.PrefixArtefact](max)}
}

// GetOrCompute returns the prefix artefact for key, invoking compute at
// most once per missing key across concurrent callers. The second return
// reports whether the artefact was served from cache.
func (c *PrefixCache) GetOrCompute(key string, compute func() (*compiler.PrefixArtefact, error)) (*compiler.PrefixArtefact, bool, error) {
	return c.c.getOrCompute(key, compute)
}

// Clear empties the cache and resets the hit/miss counters.
func (c *PrefixCache) Clear() { c.c.clear() }

// Stats returns a snapshot of the cache counters.
func (c *PrefixCache) Stats() CacheStats { return c.c.stats() }

// Compile-time check: the prefix cache plugs into the compiler layer.
var _ compiler.PrefixCache = (*PrefixCache)(nil)

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// HitRate returns hits / (hits+misses), 0 when idle.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
