package qserv

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"repro/internal/openql"
)

// cacheKey derives the compiled-circuit cache key from the stack's
// compiler fingerprint and the program's canonical cQASM text: two
// submissions with equal keys compile to identical artefacts.
func cacheKey(stackFingerprint, programCQASM string) string {
	h := sha256.New()
	h.Write([]byte(stackFingerprint))
	h.Write([]byte{0})
	h.Write([]byte(programCQASM))
	return hex.EncodeToString(h.Sum(nil))
}

// CompileCache is a bounded LRU cache of compiled programs shared by all
// gate backends of a service. Concurrent lookups of the same missing key
// are deduplicated: one caller compiles, the rest wait for its result.
// Cached *openql.Compiled values are shared across jobs and must be
// treated as immutable (core.Stack.RunCompiled only reads them).
type CompileCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently used; element values are *cacheEntry
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key      string
	ready    chan struct{} // closed once compiled/err are set
	compiled *openql.Compiled
	err      error
	elem     *list.Element
}

// NewCompileCache returns a cache holding at most max entries (minimum 1).
func NewCompileCache(max int) *CompileCache {
	if max < 1 {
		max = 1
	}
	return &CompileCache{
		max:     max,
		entries: map[string]*cacheEntry{},
		lru:     list.New(),
	}
}

// GetOrCompile returns the compiled program for key, invoking compile at
// most once per missing key across concurrent callers. The second return
// reports whether the result was served from cache (a waiter on an
// in-flight compile counts as a hit: it skipped the compile pipeline).
func (c *CompileCache) GetOrCompile(key string, compile func() (*openql.Compiled, error)) (*openql.Compiled, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		<-e.ready
		return e.compiled, true, e.err
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.misses++
	c.entries[key] = e
	e.elem = c.lru.PushFront(e)
	for c.lru.Len() > c.max {
		// Evict the least-recently-used entry. Waiters on an evicted
		// in-flight entry still hold the entry pointer, so they observe
		// its result once ready closes; only the map loses the reference.
		back := c.lru.Back()
		victim := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		victim.elem = nil
		delete(c.entries, victim.key)
	}
	c.mu.Unlock()

	compiled, err := compile()
	c.mu.Lock()
	e.compiled, e.err = compiled, err
	if err != nil {
		// Failed compiles are not cached; later submissions retry.
		if e.elem != nil {
			c.lru.Remove(e.elem)
			e.elem = nil
		}
		if cur, ok := c.entries[key]; ok && cur == e {
			delete(c.entries, key)
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return compiled, false, err
}

// Clear empties the cache and resets the hit/miss counters.
func (c *CompileCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Detach live entries from the old list first: an in-flight compile
	// that later fails must not Remove a stale element from the re-init'd
	// list (list.Remove would corrupt its length).
	for _, e := range c.entries {
		e.elem = nil
	}
	c.entries = map[string]*cacheEntry{}
	c.lru.Init()
	c.hits, c.misses = 0, 0
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// HitRate returns hits / (hits+misses), 0 when idle.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (c *CompileCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.lru.Len()}
}
