package eqasm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/circuit"
	"repro/internal/compiler"
)

// Assemble lowers a scheduled circuit into an eQASM program: gates that
// start on the same cycle and share opcode and parameters are merged into
// one masked operation; mask registers are allocated with reuse; bundle
// pre-intervals encode the schedule's timing. This is the cQASM→eQASM
// back-end pass of §3.1.
func Assemble(s *compiler.Schedule, p *compiler.Platform) (*Program, error) {
	prog := &Program{Name: "assembled", NumQubits: s.NumQubits}
	salloc := newMaskAlloc(NumSRegs)
	talloc := newMaskAlloc(NumTRegs)

	cycles := s.Cycles()
	bundles := s.Bundles()
	prevIssue := 0
	for ci, cycle := range cycles {
		// Group this cycle's gates by opcode+params.
		type groupKey struct {
			name   string
			params string
			twoQ   bool
		}
		groups := map[groupKey][]circuit.Gate{}
		var order []groupKey
		for _, sg := range bundles[cycle] {
			g := sg.Gate
			name, twoQ, err := opcodeFor(g)
			if err != nil {
				return nil, err
			}
			if len(p.Gates) > 0 && g.IsUnitary() && !p.Supports(g.Name) {
				return nil, fmt.Errorf("eqasm: gate %q is not primitive on platform %s; decompose first", g.Name, p.Name)
			}
			key := groupKey{name: name, params: gateParamsKey(g), twoQ: twoQ}
			if _, seen := groups[key]; !seen {
				order = append(order, key)
			}
			groups[key] = append(groups[key], g)
		}
		if len(order) == 0 {
			continue
		}
		var ops []QOp
		for _, key := range order {
			gs := groups[key]
			if key.twoQ {
				pairs := make([][2]int, len(gs))
				for i, g := range gs {
					pairs[i] = [2]int{g.Qubits[0], g.Qubits[1]}
				}
				sort.Slice(pairs, func(a, b int) bool {
					if pairs[a][0] != pairs[b][0] {
						return pairs[a][0] < pairs[b][0]
					}
					return pairs[a][1] < pairs[b][1]
				})
				reg, fresh := talloc.get(pairsKey(pairs))
				if fresh {
					prog.Instrs = append(prog.Instrs, SMIT{Reg: reg, Pairs: pairs})
				}
				ops = append(ops, QOp{Name: key.name, TwoQ: true, Reg: reg, Params: gs[0].Params, Exprs: gs[0].Exprs})
			} else {
				var qubits []int
				for _, g := range gs {
					if g.Name == circuit.OpMeasureAll {
						for q := 0; q < s.NumQubits; q++ {
							qubits = append(qubits, q)
						}
						continue
					}
					qubits = append(qubits, g.Qubits...)
				}
				sort.Ints(qubits)
				reg, fresh := salloc.get(qubitsKey(qubits))
				if fresh {
					prog.Instrs = append(prog.Instrs, SMIS{Reg: reg, Qubits: qubits})
				}
				ops = append(ops, QOp{Name: key.name, TwoQ: false, Reg: reg, Params: gs[0].Params, Exprs: gs[0].Exprs})
			}
		}
		pre := cycle - prevIssue
		if ci == 0 {
			pre = cycle
		}
		prog.Instrs = append(prog.Instrs, Bundle{PreWait: pre, Ops: ops})
		prevIssue = cycle
	}
	// Trailing wait so the program's cycle count matches the makespan.
	if tail := s.Makespan - prevIssue; tail > 0 && len(cycles) > 0 {
		prog.Instrs = append(prog.Instrs, QWait{Cycles: tail})
	}
	return prog, nil
}

// opcodeFor maps an IR gate to its eQASM opcode.
func opcodeFor(g circuit.Gate) (string, bool, error) {
	if g.HasCond {
		// Feed-forward requires the fast conditional-execution path of a
		// richer eQASM profile; this subset targets open-loop sequences.
		return "", false, fmt.Errorf("eqasm: classically-controlled gate %q is not supported by this eQASM subset", g.Name)
	}
	switch g.Name {
	case circuit.OpMeasure, circuit.OpMeasureAll:
		return "measz", false, nil
	case circuit.OpPrepZ:
		return "prepz", false, nil
	case circuit.OpBarrier, circuit.OpWait, circuit.OpDisplay:
		return "", false, fmt.Errorf("eqasm: directive %q must be resolved by the scheduler", g.Name)
	}
	if len(g.Qubits) == 2 {
		return g.Name, true, nil
	}
	if len(g.Qubits) == 1 {
		return g.Name, false, nil
	}
	return "", false, fmt.Errorf("eqasm: cannot encode %d-qubit gate %q", len(g.Qubits), g.Name)
}

// gateParamsKey keys a gate's parameters for same-cycle merging. Symbolic
// slots key on the canonical expression text, so two ops merge only when
// their angles are the same function of the symbols — equal placeholder
// literals must never collapse distinct expressions into one masked op.
func gateParamsKey(g circuit.Gate) string {
	parts := make([]string, len(g.Params))
	for i, p := range g.Params {
		if g.Symbolic(i) {
			parts[i] = "E:" + g.Exprs[i].String()
		} else {
			parts[i] = fmt.Sprintf("%.17g", p)
		}
	}
	return strings.Join(parts, ",")
}

func qubitsKey(qs []int) string {
	parts := make([]string, len(qs))
	for i, q := range qs {
		parts[i] = fmt.Sprintf("%d", q)
	}
	return "s:" + strings.Join(parts, ",")
}

func pairsKey(pairs [][2]int) string {
	parts := make([]string, len(pairs))
	for i, p := range pairs {
		parts[i] = fmt.Sprintf("%d-%d", p[0], p[1])
	}
	return "t:" + strings.Join(parts, ",")
}

// maskAlloc allocates mask registers with content reuse and FIFO
// eviction.
type maskAlloc struct {
	size  int
	byKey map[string]int
	keyOf []string
	next  int
}

func newMaskAlloc(size int) *maskAlloc {
	return &maskAlloc{size: size, byKey: map[string]int{}, keyOf: make([]string, size)}
}

// get returns the register holding key, allocating (fresh=true) if absent.
func (a *maskAlloc) get(key string) (reg int, fresh bool) {
	if r, ok := a.byKey[key]; ok {
		return r, false
	}
	r := a.next
	a.next = (a.next + 1) % a.size
	if old := a.keyOf[r]; old != "" {
		delete(a.byKey, old)
	}
	a.keyOf[r] = key
	a.byKey[key] = r
	return r, true
}
