package eqasm

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads eQASM text (as produced by Program.String) back into a
// Program. The "# qubits: n" header is required; other comments are
// ignored.
func Parse(src string) (*Program, error) {
	p := &Program{Name: "parsed"}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if strings.HasPrefix(body, "qubits:") {
				n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(body, "qubits:")))
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("eqasm: line %d: bad qubits header", lineNo+1)
				}
				p.NumQubits = n
			} else if strings.HasPrefix(body, "eqasm:") {
				p.Name = strings.TrimSpace(strings.TrimPrefix(body, "eqasm:"))
			}
			continue
		}
		in, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("eqasm: line %d: %v", lineNo+1, err)
		}
		p.Instrs = append(p.Instrs, in)
	}
	if p.NumQubits == 0 {
		return nil, fmt.Errorf("eqasm: missing '# qubits: n' header")
	}
	return p, nil
}

func parseInstr(line string) (Instr, error) {
	lower := strings.ToLower(line)
	switch {
	case strings.HasPrefix(lower, "smis "):
		rest := strings.TrimSpace(line[5:])
		reg, body, err := splitRegBody(rest, "s")
		if err != nil {
			return nil, err
		}
		qubits, err := parseIntSet(body)
		if err != nil {
			return nil, err
		}
		return SMIS{Reg: reg, Qubits: qubits}, nil
	case strings.HasPrefix(lower, "smit "):
		rest := strings.TrimSpace(line[5:])
		reg, body, err := splitRegBody(rest, "t")
		if err != nil {
			return nil, err
		}
		pairs, err := parsePairSet(body)
		if err != nil {
			return nil, err
		}
		return SMIT{Reg: reg, Pairs: pairs}, nil
	case strings.HasPrefix(lower, "qwait "):
		n, err := strconv.Atoi(strings.TrimSpace(line[6:]))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad qwait %q", line)
		}
		return QWait{Cycles: n}, nil
	case strings.HasPrefix(lower, "bs "):
		rest := strings.TrimSpace(line[3:])
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bundle missing operations: %q", line)
		}
		pre, err := strconv.Atoi(fields[0])
		if err != nil || pre < 0 {
			return nil, fmt.Errorf("bad bundle pre-interval in %q", line)
		}
		var ops []QOp
		for _, part := range strings.Split(fields[1], "|") {
			op, err := parseQOp(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			ops = append(ops, op)
		}
		return Bundle{PreWait: pre, Ops: ops}, nil
	default:
		return nil, fmt.Errorf("unknown instruction %q", line)
	}
}

func splitRegBody(rest, prefix string) (int, string, error) {
	comma := strings.Index(rest, ",")
	if comma < 0 {
		return 0, "", fmt.Errorf("missing register separator in %q", rest)
	}
	regTok := strings.TrimSpace(rest[:comma])
	if !strings.HasPrefix(strings.ToLower(regTok), prefix) {
		return 0, "", fmt.Errorf("expected %s register, got %q", prefix, regTok)
	}
	reg, err := strconv.Atoi(regTok[1:])
	if err != nil || reg < 0 {
		return 0, "", fmt.Errorf("bad register %q", regTok)
	}
	return reg, strings.TrimSpace(rest[comma+1:]), nil
}

func parseIntSet(body string) ([]int, error) {
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, "{") || !strings.HasSuffix(body, "}") {
		return nil, fmt.Errorf("expected {…}, got %q", body)
	}
	inner := strings.TrimSpace(body[1 : len(body)-1])
	if inner == "" {
		return nil, nil
	}
	var out []int
	for _, tok := range strings.Split(inner, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad qubit %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

func parsePairSet(body string) ([][2]int, error) {
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, "{") || !strings.HasSuffix(body, "}") {
		return nil, fmt.Errorf("expected {…}, got %q", body)
	}
	inner := strings.TrimSpace(body[1 : len(body)-1])
	var out [][2]int
	for inner != "" {
		open := strings.Index(inner, "(")
		if open < 0 {
			break
		}
		close := strings.Index(inner, ")")
		if close < open {
			return nil, fmt.Errorf("unbalanced pair in %q", body)
		}
		toks := strings.Split(inner[open+1:close], ",")
		if len(toks) != 2 {
			return nil, fmt.Errorf("pair needs two qubits in %q", body)
		}
		a, errA := strconv.Atoi(strings.TrimSpace(toks[0]))
		b, errB := strconv.Atoi(strings.TrimSpace(toks[1]))
		if errA != nil || errB != nil || a < 0 || b < 0 {
			return nil, fmt.Errorf("bad pair in %q", body)
		}
		out = append(out, [2]int{a, b})
		inner = inner[close+1:]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty pair set %q", body)
	}
	return out, nil
}

func parseQOp(s string) (QOp, error) {
	fields := strings.SplitN(s, " ", 2)
	if len(fields) != 2 {
		return QOp{}, fmt.Errorf("bad quantum op %q", s)
	}
	name := strings.ToLower(fields[0])
	rest := strings.Split(fields[1], ",")
	regTok := strings.TrimSpace(rest[0])
	if len(regTok) < 2 {
		return QOp{}, fmt.Errorf("bad register in %q", s)
	}
	twoQ := false
	switch regTok[0] {
	case 's':
		twoQ = false
	case 't':
		twoQ = true
	default:
		return QOp{}, fmt.Errorf("bad register kind in %q", s)
	}
	reg, err := strconv.Atoi(regTok[1:])
	if err != nil || reg < 0 {
		return QOp{}, fmt.Errorf("bad register index in %q", s)
	}
	op := QOp{Name: name, TwoQ: twoQ, Reg: reg}
	for _, tok := range rest[1:] {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return QOp{}, fmt.Errorf("bad parameter in %q", s)
		}
		op.Params = append(op.Params, v)
	}
	return op, nil
}
