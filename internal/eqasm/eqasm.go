// Package eqasm implements the executable quantum instruction set of the
// stack's back end (§3.1): a timed assembly in the style of eQASM
// (Fu et al.), with single-qubit and two-qubit mask registers (SMIS/SMIT),
// explicit waits (QWAIT) and instruction bundles with pre-intervals. A
// second compiler pass lowers a scheduled cQASM circuit into eQASM, taking
// platform timing into account; the micro-architecture executes it with
// nanosecond-precision timing.
package eqasm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/circuit"
)

// Register-file sizes, following the published eQASM design.
const (
	NumSRegs = 32 // single-qubit mask registers s0..s31
	NumTRegs = 64 // two-qubit mask registers t0..t63
)

// Instr is one eQASM instruction.
type Instr interface {
	fmt.Stringer
	isInstr()
}

// SMIS sets a single-qubit mask register to a set of qubits.
type SMIS struct {
	Reg    int
	Qubits []int
}

func (SMIS) isInstr() {}

func (i SMIS) String() string {
	parts := make([]string, len(i.Qubits))
	for k, q := range i.Qubits {
		parts[k] = fmt.Sprintf("%d", q)
	}
	return fmt.Sprintf("smis s%d, {%s}", i.Reg, strings.Join(parts, ", "))
}

// SMIT sets a two-qubit mask register to a set of qubit pairs.
type SMIT struct {
	Reg   int
	Pairs [][2]int
}

func (SMIT) isInstr() {}

func (i SMIT) String() string {
	parts := make([]string, len(i.Pairs))
	for k, p := range i.Pairs {
		parts[k] = fmt.Sprintf("(%d, %d)", p[0], p[1])
	}
	return fmt.Sprintf("smit t%d, {%s}", i.Reg, strings.Join(parts, ", "))
}

// QWait idles the quantum pipeline for a number of cycles.
type QWait struct {
	Cycles int
}

func (QWait) isInstr() {}

func (i QWait) String() string { return fmt.Sprintf("qwait %d", i.Cycles) }

// QOp is one quantum operation inside a bundle, applied to a mask
// register.
type QOp struct {
	Name   string // platform opcode: x90, cz, measz, ...
	TwoQ   bool   // true → Reg indexes a T register, else an S register
	Reg    int
	Params []float64 // rotation angle for parametric ops
	// Exprs, when non-nil, runs parallel to Params and marks symbolic
	// slots (same convention as circuit.Gate.Exprs): the op's angle is
	// the expression and Params holds a placeholder until the artefact
	// is bound. Assembly never merges ops with different expressions.
	Exprs []*circuit.ParamExpr
}

// Symbolic reports whether parameter slot i is a symbolic expression.
func (o QOp) Symbolic(i int) bool {
	return i < len(o.Exprs) && !o.Exprs[i].IsConst()
}

func (o QOp) String() string {
	reg := fmt.Sprintf("s%d", o.Reg)
	if o.TwoQ {
		reg = fmt.Sprintf("t%d", o.Reg)
	}
	if len(o.Params) > 0 {
		if o.Symbolic(0) {
			return fmt.Sprintf("%s %s, %s", o.Name, reg, o.Exprs[0].String())
		}
		return fmt.Sprintf("%s %s, %.17g", o.Name, reg, o.Params[0])
	}
	return fmt.Sprintf("%s %s", o.Name, reg)
}

// Bundle issues one or more quantum operations simultaneously, PreWait
// cycles after the previous bundle's issue.
type Bundle struct {
	PreWait int
	Ops     []QOp
}

func (Bundle) isInstr() {}

func (b Bundle) String() string {
	parts := make([]string, len(b.Ops))
	for i, o := range b.Ops {
		parts[i] = o.String()
	}
	return fmt.Sprintf("bs %d %s", b.PreWait, strings.Join(parts, " | "))
}

// Program is an assembled eQASM program.
type Program struct {
	Name      string
	NumQubits int
	Instrs    []Instr
}

// String renders the program as eQASM text.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# eqasm: %s\n", p.Name)
	fmt.Fprintf(&b, "# qubits: %d\n", p.NumQubits)
	for _, in := range p.Instrs {
		b.WriteString(in.String() + "\n")
	}
	return b.String()
}

// Event is one timed quantum operation produced by walking a program: the
// interface between eQASM and the micro-architecture's timing control
// unit.
type Event struct {
	Cycle  int
	Op     string
	Qubits []int // flattened operands; pairs are consecutive
	TwoQ   bool
	Params []float64
}

// Timeline expands the program into cycle-stamped events, resolving mask
// registers. It validates register indices and use-before-set.
func (p *Program) Timeline() ([]Event, error) {
	sregs := make(map[int][]int)
	tregs := make(map[int][][2]int)
	cycle := 0
	var events []Event
	for idx, in := range p.Instrs {
		switch i := in.(type) {
		case SMIS:
			if i.Reg < 0 || i.Reg >= NumSRegs {
				return nil, fmt.Errorf("eqasm: instr %d: s register %d out of range", idx, i.Reg)
			}
			sregs[i.Reg] = append([]int(nil), i.Qubits...)
		case SMIT:
			if i.Reg < 0 || i.Reg >= NumTRegs {
				return nil, fmt.Errorf("eqasm: instr %d: t register %d out of range", idx, i.Reg)
			}
			tregs[i.Reg] = append([][2]int(nil), i.Pairs...)
		case QWait:
			if i.Cycles < 0 {
				return nil, fmt.Errorf("eqasm: instr %d: negative wait", idx)
			}
			cycle += i.Cycles
		case Bundle:
			cycle += i.PreWait
			for _, op := range i.Ops {
				ev := Event{Cycle: cycle, Op: op.Name, TwoQ: op.TwoQ, Params: op.Params}
				if op.TwoQ {
					pairs, ok := tregs[op.Reg]
					if !ok {
						return nil, fmt.Errorf("eqasm: instr %d: t%d used before set", idx, op.Reg)
					}
					for _, pr := range pairs {
						ev.Qubits = append(ev.Qubits, pr[0], pr[1])
					}
				} else {
					qs, ok := sregs[op.Reg]
					if !ok {
						return nil, fmt.Errorf("eqasm: instr %d: s%d used before set", idx, op.Reg)
					}
					ev.Qubits = append([]int(nil), qs...)
				}
				for _, q := range ev.Qubits {
					if q < 0 || q >= p.NumQubits {
						return nil, fmt.Errorf("eqasm: instr %d: qubit %d out of range", idx, q)
					}
				}
				events = append(events, ev)
			}
		default:
			return nil, fmt.Errorf("eqasm: instr %d: unknown instruction type %T", idx, in)
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].Cycle < events[b].Cycle })
	return events, nil
}
