package eqasm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/compiler"
)

func scheduleBell(t *testing.T) (*compiler.Schedule, *compiler.Platform) {
	t.Helper()
	p := compiler.Superconducting()
	dec, err := compiler.Decompose(circuit.Bell().MeasureAll(), p)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := compiler.ScheduleCircuit(dec, p, compiler.ASAP)
	if err != nil {
		t.Fatal(err)
	}
	return sched, p
}

func TestAssembleBell(t *testing.T) {
	sched, p := scheduleBell(t)
	prog, err := Assemble(sched, p)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NumQubits != 2 {
		t.Errorf("qubits = %d", prog.NumQubits)
	}
	events, err := prog.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	// The timeline must contain a cz and a measz, in causal order.
	var czCycle, measCycle = -1, -1
	for _, ev := range events {
		switch ev.Op {
		case "cz":
			czCycle = ev.Cycle
		case "measz":
			measCycle = ev.Cycle
		}
	}
	if czCycle < 0 || measCycle < 0 {
		t.Fatalf("missing ops in timeline: %+v", events)
	}
	if measCycle <= czCycle {
		t.Errorf("measurement at %d not after cz at %d", measCycle, czCycle)
	}
	// Timeline cycles must match the schedule makespan bound.
	for _, ev := range events {
		if ev.Cycle < 0 || ev.Cycle >= sched.Makespan {
			t.Errorf("event %v outside makespan %d", ev, sched.Makespan)
		}
	}
}

func TestAssembleMergesParallelOps(t *testing.T) {
	p := compiler.Superconducting()
	c := circuit.New("par", 4)
	for q := 0; q < 4; q++ {
		c.Add("x90", []int{q})
	}
	sched, err := compiler.ScheduleCircuit(c, p, compiler.ASAP)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(sched, p)
	if err != nil {
		t.Fatal(err)
	}
	// All four x90 start at cycle 0 with identical params: one SMIS with
	// 4 qubits plus one bundle with one op.
	var smisCount, bundleCount int
	for _, in := range prog.Instrs {
		switch i := in.(type) {
		case SMIS:
			smisCount++
			if len(i.Qubits) != 4 {
				t.Errorf("mask holds %d qubits, want 4", len(i.Qubits))
			}
		case Bundle:
			bundleCount++
			if len(i.Ops) != 1 {
				t.Errorf("bundle has %d ops, want 1", len(i.Ops))
			}
		}
	}
	if smisCount != 1 || bundleCount != 1 {
		t.Errorf("smis=%d bundles=%d, want 1 and 1", smisCount, bundleCount)
	}
}

func TestAssembleRejectsNonPrimitive(t *testing.T) {
	p := compiler.Superconducting()
	c := circuit.New("bad", 2).H(0)
	sched, err := compiler.ScheduleCircuit(c, p, compiler.ASAP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble(sched, p); err == nil {
		t.Error("non-primitive gate assembled")
	}
}

func TestMaskRegisterReuse(t *testing.T) {
	a := newMaskAlloc(2)
	r1, fresh1 := a.get("a")
	if !fresh1 {
		t.Error("first get should be fresh")
	}
	r2, _ := a.get("b")
	if r1 == r2 {
		t.Error("distinct keys share a register")
	}
	r1b, fresh := a.get("a")
	if fresh || r1b != r1 {
		t.Error("repeat get should hit cache")
	}
	// Third distinct key evicts FIFO.
	a.get("c")
	_, freshA := a.get("a")
	if !freshA {
		t.Error("evicted key should be fresh again")
	}
}

func TestTimelineUseBeforeSet(t *testing.T) {
	p := &Program{NumQubits: 2, Instrs: []Instr{
		Bundle{PreWait: 0, Ops: []QOp{{Name: "x90", Reg: 0}}},
	}}
	if _, err := p.Timeline(); err == nil {
		t.Error("use-before-set accepted")
	}
}

func TestTimelineRegisterBounds(t *testing.T) {
	p := &Program{NumQubits: 2, Instrs: []Instr{SMIS{Reg: NumSRegs, Qubits: []int{0}}}}
	if _, err := p.Timeline(); err == nil {
		t.Error("out-of-range s register accepted")
	}
	p2 := &Program{NumQubits: 2, Instrs: []Instr{SMIT{Reg: NumTRegs, Pairs: [][2]int{{0, 1}}}}}
	if _, err := p2.Timeline(); err == nil {
		t.Error("out-of-range t register accepted")
	}
}

func TestTimelineQubitBounds(t *testing.T) {
	p := &Program{NumQubits: 2, Instrs: []Instr{
		SMIS{Reg: 0, Qubits: []int{5}},
		Bundle{PreWait: 0, Ops: []QOp{{Name: "x90", Reg: 0}}},
	}}
	if _, err := p.Timeline(); err == nil {
		t.Error("out-of-range qubit accepted")
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	sched, p := scheduleBell(t)
	prog, err := Assemble(sched, p)
	if err != nil {
		t.Fatal(err)
	}
	text := prog.String()
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("parse failed: %v\n%s", err, text)
	}
	ev1, err := prog.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := back.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("round trip changed event count %d → %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		a, b := ev1[i], ev2[i]
		if a.Cycle != b.Cycle || a.Op != b.Op || len(a.Qubits) != len(b.Qubits) {
			t.Errorf("event %d changed: %+v vs %+v", i, a, b)
		}
	}
}

// Property: assembling any random scheduled circuit yields a timeline
// whose event count equals the scheduled gate count (no op lost or
// duplicated) and whose cycles are monotonically compatible with the
// schedule.
func TestAssembleProperty(t *testing.T) {
	p := compiler.Superconducting()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.RandomCircuit(4, 3, rng)
		dec, err := compiler.Decompose(c, p)
		if err != nil {
			return false
		}
		sched, err := compiler.ScheduleCircuit(dec, p, compiler.ASAP)
		if err != nil {
			return false
		}
		prog, err := Assemble(sched, p)
		if err != nil {
			return false
		}
		events, err := prog.Timeline()
		if err != nil {
			return false
		}
		// Count gate instances in events (masks may merge several gates
		// into one event).
		gateInstances := 0
		for _, ev := range events {
			if ev.TwoQ {
				gateInstances += len(ev.Qubits) / 2
			} else {
				gateInstances += len(ev.Qubits)
			}
		}
		return gateInstances == len(sched.Gates)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"smis s0, {0}\n",                     // missing qubits header
		"# qubits: 2\nnope s0, {0}\n",        // unknown instr
		"# qubits: 2\nsmis x0, {0}\n",        // bad register kind
		"# qubits: 2\nsmis s0, 0\n",          // missing braces
		"# qubits: 2\nqwait -3\n",            // negative wait
		"# qubits: 2\nbs 0\n",                // bundle without ops
		"# qubits: 2\nsmit t0, {(0 1)}\n",    // malformed pair
		"# qubits: 2\nbs 0 x90 s0, notnum\n", // bad param
		"# qubits: -2\nqwait 1\n",            // bad header
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{SMIS{Reg: 3, Qubits: []int{0, 2}}, "smis s3, {0, 2}"},
		{SMIT{Reg: 1, Pairs: [][2]int{{0, 1}}}, "smit t1, {(0, 1)}"},
		{QWait{Cycles: 7}, "qwait 7"},
		{Bundle{PreWait: 2, Ops: []QOp{{Name: "cz", TwoQ: true, Reg: 1}}}, "bs 2 cz t1"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	op := QOp{Name: "rz", Reg: 0, Params: []float64{0.5}}
	if !strings.HasPrefix(op.String(), "rz s0, 0.5") {
		t.Errorf("param op string = %q", op.String())
	}
}
