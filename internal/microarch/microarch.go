// Package microarch implements the quantum micro-architecture layer
// (§2.5, Figs 5–7): the classical digital control that executes eQASM.
// Instructions flow through fetch/decode into the microcode unit, which
// expands each quantum opcode into codewords; the timing control unit
// releases codewords to per-qubit operation queues at nanosecond-precise
// instants; the analogue-digital interface (ADI) turns codewords into
// pulses for the qubit chip — here, the QX simulator.
//
// Retargeting the same micro-architecture to a different quantum
// technology (superconducting → semiconducting, §3.1) only requires a
// different microcode configuration, as in the paper.
package microarch

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/eqasm"
	"repro/internal/qx"
)

// ChannelKind distinguishes the physical control lines of the ADI.
type ChannelKind string

// Channel kinds of the analogue-digital interface.
const (
	ChannelMicrowave ChannelKind = "mw"   // single-qubit rotations
	ChannelFlux      ChannelKind = "flux" // two-qubit interactions
	ChannelMeasure   ChannelKind = "meas" // readout
)

// MicroOp is one codeword emitted by the microcode unit.
type MicroOp struct {
	Codeword       int
	DurationCycles int
	Channel        ChannelKind
}

// Config is the microcode table plus machine parameters — the
// configuration file that retargets the micro-architecture.
type Config struct {
	Name        string
	CycleTimeNs int
	// Microcode maps an eQASM opcode to its codeword sequence.
	Microcode map[string][]MicroOp
	// QueueDepth bounds each per-qubit operation queue; 0 = unbounded.
	QueueDepth int
}

// SuperconductingConfig returns the microcode table of the transmon
// control stack (Fig 6): microwave table for single-qubit ops, flux
// table for CZ, readout pulse for measurement.
func SuperconductingConfig() *Config {
	return &Config{
		Name:        "superconducting",
		CycleTimeNs: 20,
		Microcode: map[string][]MicroOp{
			"i":     {{Codeword: 0, DurationCycles: 1, Channel: ChannelMicrowave}},
			"x90":   {{Codeword: 1, DurationCycles: 1, Channel: ChannelMicrowave}},
			"mx90":  {{Codeword: 2, DurationCycles: 1, Channel: ChannelMicrowave}},
			"y90":   {{Codeword: 3, DurationCycles: 1, Channel: ChannelMicrowave}},
			"my90":  {{Codeword: 4, DurationCycles: 1, Channel: ChannelMicrowave}},
			"rz":    {{Codeword: 5, DurationCycles: 1, Channel: ChannelMicrowave}},
			"cz":    {{Codeword: 16, DurationCycles: 2, Channel: ChannelFlux}},
			"swap":  {{Codeword: 17, DurationCycles: 6, Channel: ChannelFlux}},
			"measz": {{Codeword: 32, DurationCycles: 15, Channel: ChannelMeasure}},
			"prepz": {{Codeword: 33, DurationCycles: 10, Channel: ChannelMeasure}},
		},
		QueueDepth: 64,
	}
}

// SemiconductingConfig returns the spin-qubit microcode: same opcodes,
// different codewords and much longer exchange-gate pulses — the paper's
// retargeting demonstration.
func SemiconductingConfig() *Config {
	return &Config{
		Name:        "semiconducting",
		CycleTimeNs: 100,
		Microcode: map[string][]MicroOp{
			"i":    {{Codeword: 100, DurationCycles: 1, Channel: ChannelMicrowave}},
			"x90":  {{Codeword: 101, DurationCycles: 1, Channel: ChannelMicrowave}},
			"mx90": {{Codeword: 102, DurationCycles: 1, Channel: ChannelMicrowave}},
			"y90":  {{Codeword: 103, DurationCycles: 1, Channel: ChannelMicrowave}},
			"my90": {{Codeword: 104, DurationCycles: 1, Channel: ChannelMicrowave}},
			"rz":   {{Codeword: 105, DurationCycles: 1, Channel: ChannelMicrowave}},
			// Exchange-based two-qubit gate: pulse train of 2 codewords.
			"cz":    {{Codeword: 116, DurationCycles: 2, Channel: ChannelFlux}, {Codeword: 117, DurationCycles: 2, Channel: ChannelFlux}},
			"swap":  {{Codeword: 118, DurationCycles: 8, Channel: ChannelFlux}},
			"measz": {{Codeword: 132, DurationCycles: 30, Channel: ChannelMeasure}},
			"prepz": {{Codeword: 133, DurationCycles: 20, Channel: ChannelMeasure}},
		},
		QueueDepth: 64,
	}
}

// Pulse is one analogue event emitted by the ADI.
type Pulse struct {
	Qubit      int
	Codeword   int
	Channel    ChannelKind
	StartNs    int
	DurationNs int
	Param      float64 // rotation angle for parametric codewords
}

// Trace is the cycle-accurate execution record.
type Trace struct {
	Config       string
	TotalCycles  int
	TotalNs      int
	Pulses       []Pulse
	MaxQueueFill int
	// ChannelBusyNs accumulates pulse time per channel kind.
	ChannelBusyNs map[ChannelKind]int
	InstrCount    int
	EventCount    int
}

// Utilization returns busy-time / total-time for one channel kind across
// all qubits that used it.
func (t *Trace) Utilization(kind ChannelKind) float64 {
	if t.TotalNs == 0 {
		return 0
	}
	return float64(t.ChannelBusyNs[kind]) / float64(t.TotalNs)
}

// Machine executes eQASM programs against the QX simulator backend.
type Machine struct {
	Config *Config
	// Backend runs the decoded gates; nil executes timing-only (no
	// quantum state), which the paper's stack uses for hardware
	// bring-up. Any engine-backed simulator works: the ADI only drives
	// the qx API, so swapping the execution engine (reference, optimized,
	// or a registered alternative) never touches this layer.
	Backend *qx.Simulator
	// ShotWorkers > 1 splits the per-shot quantum execution across that
	// many goroutines, each on its own derived-seed simulator (see
	// qx.Simulator.RunParallel); 0 or 1 keeps shots serial. Timing
	// decode is unaffected — it is simulated once either way.
	ShotWorkers int
}

// New returns a machine with the given microcode config and backend.
func New(cfg *Config, backend *qx.Simulator) *Machine {
	return &Machine{Config: cfg, Backend: backend}
}

// RunReport couples the timing trace with the measurement results of the
// quantum backend.
type RunReport struct {
	Trace  *Trace
	Result *qx.Result
}

// Execute runs the program for the given number of shots. Timing is
// simulated once (it is identical across shots); the quantum backend is
// sampled per shot.
func (m *Machine) Execute(prog *eqasm.Program, shots int) (*RunReport, error) {
	events, err := prog.Timeline()
	if err != nil {
		return nil, err
	}
	trace, gates, err := m.decode(prog, events)
	if err != nil {
		return nil, err
	}
	report := &RunReport{Trace: trace}
	if m.Backend != nil && shots > 0 {
		res, err := m.runBackend(prog, gates, shots)
		if err != nil {
			return nil, err
		}
		report.Result = res
	}
	return report, nil
}

// runBackend executes the decoded gate sequence on the quantum backend.
// The physical register is compacted onto the qubits the program touches
// (idle qubits stay in |0> and carry no information), which keeps the
// state-vector cost proportional to the active circuit rather than the
// full chip.
func (m *Machine) runBackend(prog *eqasm.Program, gates []circuit.Gate, shots int) (*qx.Result, error) {
	used := map[int]bool{}
	for _, g := range gates {
		for _, q := range g.Qubits {
			used[q] = true
		}
	}
	phys := make([]int, 0, len(used))
	for q := 0; q < prog.NumQubits; q++ {
		if used[q] {
			phys = append(phys, q)
		}
	}
	compactOf := map[int]int{}
	for i, q := range phys {
		compactOf[q] = i
	}
	c := circuit.New(prog.Name, len(phys))
	for _, g := range gates {
		ng := g.Clone()
		for i, q := range ng.Qubits {
			ng.Qubits[i] = compactOf[q]
		}
		c.AddGate(ng)
	}
	var (
		res *qx.Result
		err error
	)
	if m.ShotWorkers > 1 {
		res, err = m.Backend.RunParallel(c, shots, m.ShotWorkers)
	} else {
		res, err = m.Backend.Run(c, shots)
	}
	if err != nil {
		return nil, err
	}
	if len(phys) == prog.NumQubits {
		return res, nil
	}
	// Expand outcome indices back to physical bit positions.
	full := &qx.Result{
		NumQubits:          prog.NumQubits,
		Shots:              res.Shots,
		Counts:             map[int]int{},
		GateErrorsInjected: res.GateErrorsInjected,
	}
	for idx, count := range res.Counts {
		fullIdx := 0
		for i, q := range phys {
			if idx&(1<<uint(i)) != 0 {
				fullIdx |= 1 << uint(q)
			}
		}
		full.Counts[fullIdx] += count
	}
	return full, nil
}

// decode expands timeline events through the microcode unit and the
// timing control unit, producing the pulse trace and the equivalent gate
// sequence in event order.
func (m *Machine) decode(prog *eqasm.Program, events []eqasm.Event) (*Trace, []circuit.Gate, error) {
	trace := &Trace{
		Config:        m.Config.Name,
		ChannelBusyNs: map[ChannelKind]int{},
		InstrCount:    len(prog.Instrs),
		EventCount:    len(events),
	}
	queueFill := map[int]int{}
	var gates []circuit.Gate
	endCycle := 0
	for _, ev := range events {
		ops, ok := m.Config.Microcode[ev.Op]
		if !ok {
			return nil, nil, fmt.Errorf("microarch: no microcode for opcode %q on %s", ev.Op, m.Config.Name)
		}
		// Expand per qubit (or per pair for two-qubit ops).
		operands := operandGroups(ev)
		for _, group := range operands {
			cycle := ev.Cycle
			for _, mo := range ops {
				for _, q := range group {
					p := Pulse{
						Qubit:      q,
						Codeword:   mo.Codeword,
						Channel:    mo.Channel,
						StartNs:    cycle * m.Config.CycleTimeNs,
						DurationNs: mo.DurationCycles * m.Config.CycleTimeNs,
					}
					if len(ev.Params) > 0 {
						p.Param = ev.Params[0]
					}
					trace.Pulses = append(trace.Pulses, p)
					trace.ChannelBusyNs[mo.Channel] += p.DurationNs
					queueFill[q]++
					if m.Config.QueueDepth > 0 && queueFill[q] > m.Config.QueueDepth {
						return nil, nil, fmt.Errorf("microarch: operation queue overflow on qubit %d", q)
					}
				}
				cycle += mo.DurationCycles
			}
			if cycle > endCycle {
				endCycle = cycle
			}
			g, err := eventGate(ev, group)
			if err != nil {
				return nil, nil, err
			}
			gates = append(gates, g)
		}
		// Queues drain as the timing control unit releases codewords.
		for q, fill := range queueFill {
			if fill > trace.MaxQueueFill {
				trace.MaxQueueFill = fill
			}
			queueFill[q] = 0
		}
	}
	trace.TotalCycles = endCycle
	trace.TotalNs = endCycle * m.Config.CycleTimeNs
	sort.SliceStable(trace.Pulses, func(i, j int) bool { return trace.Pulses[i].StartNs < trace.Pulses[j].StartNs })
	return trace, gates, nil
}

// operandGroups splits an event's flattened operand list into per-gate
// groups: singletons for one-qubit ops, pairs for two-qubit ops.
func operandGroups(ev eqasm.Event) [][]int {
	var out [][]int
	if ev.TwoQ {
		for i := 0; i+1 < len(ev.Qubits); i += 2 {
			out = append(out, []int{ev.Qubits[i], ev.Qubits[i+1]})
		}
	} else {
		for _, q := range ev.Qubits {
			out = append(out, []int{q})
		}
	}
	return out
}

// eventGate converts a decoded event group back into an IR gate for the
// quantum backend.
func eventGate(ev eqasm.Event, group []int) (circuit.Gate, error) {
	switch ev.Op {
	case "measz":
		return circuit.Gate{Name: circuit.OpMeasure, Qubits: []int{group[0]}}, nil
	case "prepz":
		return circuit.Gate{Name: circuit.OpPrepZ, Qubits: []int{group[0]}}, nil
	default:
		return circuit.NewGate(ev.Op, group, ev.Params...)
	}
}
