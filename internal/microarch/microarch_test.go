package microarch

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/compiler"
	"repro/internal/eqasm"
	"repro/internal/qx"
)

// compileToEqasm runs the full front end: decompose → schedule → assemble.
func compileToEqasm(t *testing.T, c *circuit.Circuit, p *compiler.Platform) *eqasm.Program {
	t.Helper()
	dec, err := compiler.Decompose(c, p)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := compiler.ScheduleCircuit(dec, p, compiler.ASAP)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := eqasm.Assemble(sched, p)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestExecuteBellEndToEnd(t *testing.T) {
	p := compiler.Superconducting()
	prog := compileToEqasm(t, circuit.Bell().MeasureAll(), p)
	m := New(SuperconductingConfig(), qx.New(7))
	report, err := m.Execute(prog, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if report.Result == nil {
		t.Fatal("no quantum result")
	}
	p00 := report.Result.Probability(0)
	p11 := report.Result.Probability(3)
	if math.Abs(p00-0.5) > 0.05 || math.Abs(p11-0.5) > 0.05 {
		t.Errorf("Bell through microarch: p00=%v p11=%v", p00, p11)
	}
	if len(report.Trace.Pulses) == 0 {
		t.Error("no pulses traced")
	}
	if report.Trace.TotalNs <= 0 {
		t.Error("no time elapsed")
	}
}

func TestPulseTimingPrecision(t *testing.T) {
	p := compiler.Superconducting()
	c := circuit.New("seq", 1)
	c.Add("x90", []int{0})
	c.Add("x90", []int{0})
	prog := compileToEqasm(t, c, p)
	m := New(SuperconductingConfig(), nil)
	report, err := m.Execute(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Trace.Pulses) != 2 {
		t.Fatalf("pulses = %d, want 2", len(report.Trace.Pulses))
	}
	// Second x90 must start exactly one cycle (20 ns) after the first.
	if report.Trace.Pulses[0].StartNs != 0 || report.Trace.Pulses[1].StartNs != 20 {
		t.Errorf("pulse starts %d, %d; want 0, 20",
			report.Trace.Pulses[0].StartNs, report.Trace.Pulses[1].StartNs)
	}
}

func TestRetargetingChangesOnlyTiming(t *testing.T) {
	// The same eQASM program executes on both technologies; only the
	// microcode config differs (the paper's key retargeting claim).
	scPlat := compiler.Superconducting()
	c := circuit.Bell().MeasureAll()
	prog := compileToEqasm(t, c, scPlat)

	sc := New(SuperconductingConfig(), qx.New(3))
	semi := New(SemiconductingConfig(), qx.New(3))
	rsc, err := sc.Execute(prog, 500)
	if err != nil {
		t.Fatal(err)
	}
	rsemi, err := semi.Execute(prog, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Same measurement statistics (same seed, same program)...
	if rsc.Result.Counts[0] != rsemi.Result.Counts[0] {
		t.Errorf("retargeting changed results: %v vs %v", rsc.Result.Counts, rsemi.Result.Counts)
	}
	// ...but different wall-clock: semiconducting cycles are 5× longer.
	if rsemi.Trace.TotalNs <= rsc.Trace.TotalNs {
		t.Errorf("semiconducting (%d ns) should be slower than superconducting (%d ns)",
			rsemi.Trace.TotalNs, rsc.Trace.TotalNs)
	}
	// Codewords must come from the respective tables.
	if rsc.Trace.Pulses[0].Codeword >= 100 {
		t.Error("superconducting trace uses semiconducting codewords")
	}
	if rsemi.Trace.Pulses[0].Codeword < 100 {
		t.Error("semiconducting trace uses superconducting codewords")
	}
}

func TestMissingMicrocode(t *testing.T) {
	cfg := &Config{Name: "tiny", CycleTimeNs: 10, Microcode: map[string][]MicroOp{}}
	prog := &eqasm.Program{NumQubits: 1, Instrs: []eqasm.Instr{
		eqasm.SMIS{Reg: 0, Qubits: []int{0}},
		eqasm.Bundle{PreWait: 0, Ops: []eqasm.QOp{{Name: "x90", Reg: 0}}},
	}}
	m := New(cfg, nil)
	if _, err := m.Execute(prog, 0); err == nil {
		t.Error("missing microcode accepted")
	}
}

func TestChannelUtilization(t *testing.T) {
	p := compiler.Superconducting()
	c := circuit.New("u", 2)
	c.Add("x90", []int{0})
	c.Add("cz", []int{0, 1})
	prog := compileToEqasm(t, c, p)
	m := New(SuperconductingConfig(), nil)
	report, err := m.Execute(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	mw := report.Trace.Utilization(ChannelMicrowave)
	flux := report.Trace.Utilization(ChannelFlux)
	if mw <= 0 || flux <= 0 {
		t.Errorf("utilizations mw=%v flux=%v should be positive", mw, flux)
	}
	// One 20 ns mw pulse, one cz = 2 pulses × 40 ns (both qubits);
	// total 60 ns: mw busy 20, flux busy 80.
	if report.Trace.ChannelBusyNs[ChannelMicrowave] != 20 {
		t.Errorf("mw busy = %d", report.Trace.ChannelBusyNs[ChannelMicrowave])
	}
	if report.Trace.ChannelBusyNs[ChannelFlux] != 80 {
		t.Errorf("flux busy = %d", report.Trace.ChannelBusyNs[ChannelFlux])
	}
}

func TestQueueOverflow(t *testing.T) {
	cfg := SuperconductingConfig()
	cfg.QueueDepth = 1
	// A parametric pulse train would need 2 queue slots on the same
	// qubit within one event: build via semiconducting cz (2 micro-ops).
	semi := SemiconductingConfig()
	semi.QueueDepth = 1
	prog := &eqasm.Program{NumQubits: 2, Instrs: []eqasm.Instr{
		eqasm.SMIT{Reg: 0, Pairs: [][2]int{{0, 1}}},
		eqasm.Bundle{PreWait: 0, Ops: []eqasm.QOp{{Name: "cz", TwoQ: true, Reg: 0}}},
	}}
	m := New(semi, nil)
	if _, err := m.Execute(prog, 0); err == nil {
		t.Error("queue overflow not detected")
	}
}

func TestNoisyBackendThroughMicroarch(t *testing.T) {
	p := compiler.Superconducting()
	prog := compileToEqasm(t, circuit.GHZ(4).MeasureAll(), p)
	m := New(SuperconductingConfig(), qx.NewNoisy(5, qx.Depolarizing(0.02)))
	report, err := m.Execute(prog, 400)
	if err != nil {
		t.Fatal(err)
	}
	good := report.Result.Counts[0] + report.Result.Counts[15]
	if good == 400 {
		t.Error("realistic qubits produced no errors")
	}
	if good < 200 {
		t.Errorf("too many errors: %d/400 good", good)
	}
}

func TestBackendCompactionRemapsOutcomes(t *testing.T) {
	// A program touching only qubits 3 and 9 of a 17-qubit chip must
	// return outcomes in the 17-qubit physical bit positions while
	// simulating just 2 qubits internally.
	prog := &eqasm.Program{NumQubits: 17, Instrs: []eqasm.Instr{
		eqasm.SMIS{Reg: 0, Qubits: []int{3}},
		eqasm.Bundle{PreWait: 0, Ops: []eqasm.QOp{{Name: "x90", Reg: 0}}},
		eqasm.Bundle{PreWait: 1, Ops: []eqasm.QOp{{Name: "x90", Reg: 0}}},
		eqasm.SMIS{Reg: 1, Qubits: []int{3, 9}},
		eqasm.Bundle{PreWait: 1, Ops: []eqasm.QOp{{Name: "measz", Reg: 1}}},
	}}
	m := New(SuperconductingConfig(), qx.New(9))
	report, err := m.Execute(prog, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Two x90 = X on qubit 3: outcome must be bit 3 set, bit 9 clear.
	if report.Result.Counts[1<<3] != 200 {
		t.Errorf("compacted outcome remap wrong: %v", report.Result.Counts)
	}
	if report.Result.NumQubits != 17 {
		t.Errorf("result register size %d", report.Result.NumQubits)
	}
}

func TestShotWorkersParallelBackend(t *testing.T) {
	p := compiler.Superconducting()
	prog := compileToEqasm(t, circuit.Bell().MeasureAll(), p)
	m := New(SuperconductingConfig(), qx.NewNoisy(7, qx.Depolarizing(0.01)))
	m.ShotWorkers = 4
	report, err := m.Execute(prog, 400)
	if err != nil {
		t.Fatal(err)
	}
	if report.Result == nil {
		t.Fatal("no quantum result")
	}
	total := 0
	for _, n := range report.Result.Counts {
		total += n
	}
	if total != 400 || report.Result.Shots != 400 {
		t.Errorf("parallel shots merged %d (Shots=%d), want 400", total, report.Result.Shots)
	}
	// Timing decode is shot-independent and must be unaffected.
	if report.Trace == nil || report.Trace.TotalNs <= 0 {
		t.Error("parallel shot execution lost the timing trace")
	}
}
