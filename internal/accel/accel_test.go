package accel

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/openql"
	"repro/internal/qubo"
	"repro/internal/tsp"
)

func TestHostOffloadCircuit(t *testing.T) {
	h := DefaultSystem(4, 1)
	p := openql.NewProgram("bell", 2)
	p.AddKernel(openql.NewKernel("k", 2).H(0).CNOT(0, 1).MeasureAll())
	out, err := h.Offload(CircuitTask{Program: p, Shots: 500})
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := out.(*core.Report)
	if !ok {
		t.Fatalf("unexpected result type %T", out)
	}
	if rep.Result.Shots != 500 {
		t.Error("shots lost")
	}
	if log := h.Dispatches(); len(log) != 1 || log[0].TaskKind != "quantum-circuit" {
		t.Errorf("dispatch log wrong: %+v", log)
	}
}

func TestHostOffloadAnneal(t *testing.T) {
	h := DefaultSystem(2, 2)
	q := qubo.New(3)
	q.Set(0, 0, -1)
	q.Set(1, 1, -1)
	q.Set(0, 1, 3)
	out, err := h.Offload(AnnealTask{Q: q})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := out.(*anneal.Result)
	if !ok {
		t.Fatalf("unexpected result type %T", out)
	}
	_, wantE := q.BruteForce()
	if math.Abs(res.Energy-wantE) > 1e-9 {
		t.Errorf("annealer energy %v, want %v", res.Energy, wantE)
	}
}

func TestHostOffloadClassical(t *testing.T) {
	h := DefaultSystem(2, 3)
	out, err := h.Offload(ClassicalTask{Name: "sum", F: func() (interface{}, error) {
		return 41 + 1, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if out.(int) != 42 {
		t.Error("classical task result wrong")
	}
}

func TestHostRejectsUnknownTask(t *testing.T) {
	h := NewHost()
	if _, err := h.Offload(ClassicalTask{F: func() (interface{}, error) { return nil, nil }}); err == nil {
		t.Error("empty host accepted a task")
	}
}

func TestAcceleratorsListing(t *testing.T) {
	h := DefaultSystem(2, 4)
	names := h.Accelerators()
	if len(names) != 4 {
		t.Fatalf("accelerators = %v", names)
	}
}

func TestDigitalAnnealerPreferredWhenFirst(t *testing.T) {
	h := NewHost()
	h.Register(&AnnealAccelerator{Digital: true, DA: anneal.DigitalAnnealerOptions{Seed: 5, Steps: 2000}})
	q := qubo.New(4)
	q.Set(0, 0, -2)
	out, err := h.Offload(AnnealTask{Q: q})
	if err != nil {
		t.Fatal(err)
	}
	if log := h.Dispatches(); log[0].Accelerator != "digital-annealer" {
		t.Errorf("dispatched to %s", log[0].Accelerator)
	}
	if out.(*anneal.Result).Bits[0] != 1 {
		t.Error("wrong solution")
	}
}

func TestHybridLoopSolvesTSP(t *testing.T) {
	// Fig 8: classical logic proposes annealing tasks until a feasible
	// optimal tour is found.
	g := tsp.Netherlands4()
	enc := tsp.Encode(g, 0)
	h := NewHost()
	h.Register(&AnnealAccelerator{SQA: anneal.SQAOptions{Sweeps: 1500, Trotter: 8, Restarts: 6, Seed: 7}})

	propose := func(iter int, prev interface{}) (Task, error) {
		return AnnealTask{Q: enc.Q}, nil
	}
	done := func(result interface{}) bool {
		res := result.(*anneal.Result)
		tour, err := enc.Decode(res.Bits)
		if err != nil {
			return false
		}
		return math.Abs(g.TourCost(tour)-1.42) < 1e-9
	}
	out, iters, err := h.HybridLoop(10, propose, done)
	if err != nil {
		t.Fatal(err)
	}
	if iters > 10 {
		t.Error("loop overran")
	}
	res := out.(*anneal.Result)
	tour, err := enc.Decode(res.Bits)
	if err != nil {
		t.Fatalf("final result infeasible: %v", err)
	}
	if math.Abs(g.TourCost(tour)-1.42) > 1e-9 {
		t.Errorf("final tour cost %v", g.TourCost(tour))
	}
}

func TestHybridLoopProposeError(t *testing.T) {
	h := DefaultSystem(2, 8)
	_, _, err := h.HybridLoop(3, func(int, interface{}) (Task, error) {
		return nil, fmt.Errorf("boom")
	}, func(interface{}) bool { return true })
	if err == nil {
		t.Error("propose error swallowed")
	}
}

func TestDispatchTiming(t *testing.T) {
	h := DefaultSystem(2, 9)
	_, _ = h.Offload(ClassicalTask{Name: "noop", F: func() (interface{}, error) { return nil, nil }})
	if log := h.Dispatches(); len(log) != 1 || log[0].Elapsed < 0 {
		t.Error("dispatch timing not recorded")
	}
}
