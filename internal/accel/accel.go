// Package accel models the heterogeneous system architecture of Fig 1 and
// Fig 3: a classical host processor that "keeps control over the total
// system and delegates the execution of certain parts to the available
// accelerators" — quantum gate-based, quantum annealing-based, and
// classical (FPGA/GPU-style) co-processors behind one offload interface,
// with Amdahl-style accounting of where the time went.
package accel

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/openql"
	"repro/internal/qubo"
)

// Task is a unit of work the host can offload.
type Task interface {
	Kind() string
}

// CircuitTask asks a gate-based quantum accelerator to run an OpenQL
// program.
type CircuitTask struct {
	Program *openql.Program
	Shots   int
}

// Kind identifies the task class.
func (CircuitTask) Kind() string { return "quantum-circuit" }

// AnnealTask asks an annealing accelerator to minimise a QUBO.
type AnnealTask struct {
	Q *qubo.QUBO
}

// Kind identifies the task class.
func (AnnealTask) Kind() string { return "quantum-anneal" }

// ClassicalTask wraps arbitrary host-side computation (the FPGA/GPU/NPU
// stand-in).
type ClassicalTask struct {
	Name string
	F    func() (interface{}, error)
}

// Kind identifies the task class.
func (ClassicalTask) Kind() string { return "classical" }

// Accelerator is a co-processor that accepts certain task kinds.
type Accelerator interface {
	Name() string
	Accepts(t Task) bool
	Execute(t Task) (interface{}, error)
}

// GateAccelerator wraps a full core.Stack as the gate-based quantum
// co-processor.
type GateAccelerator struct {
	Stack *core.Stack
}

// Name returns the accelerator identifier.
func (g *GateAccelerator) Name() string { return "quantum-gates(" + g.Stack.Name + ")" }

// Accepts reports whether the task is a circuit task.
func (g *GateAccelerator) Accepts(t Task) bool {
	_, ok := t.(CircuitTask)
	return ok
}

// Execute runs the program through the full stack.
func (g *GateAccelerator) Execute(t Task) (interface{}, error) {
	ct, ok := t.(CircuitTask)
	if !ok {
		return nil, fmt.Errorf("accel: %s cannot run %s", g.Name(), t.Kind())
	}
	return g.Stack.Execute(ct.Program, ct.Shots)
}

// AnnealAccelerator wraps the simulated quantum annealer (or, with
// Digital=true, the fully-connected digital annealer).
type AnnealAccelerator struct {
	Digital bool
	SQA     anneal.SQAOptions
	DA      anneal.DigitalAnnealerOptions
}

// Name returns the accelerator identifier.
func (a *AnnealAccelerator) Name() string {
	if a.Digital {
		return "digital-annealer"
	}
	return "quantum-annealer"
}

// Accepts reports whether the task is an anneal task.
func (a *AnnealAccelerator) Accepts(t Task) bool {
	_, ok := t.(AnnealTask)
	return ok
}

// Execute minimises the QUBO.
func (a *AnnealAccelerator) Execute(t Task) (interface{}, error) {
	at, ok := t.(AnnealTask)
	if !ok {
		return nil, fmt.Errorf("accel: %s cannot run %s", a.Name(), t.Kind())
	}
	if a.Digital {
		return anneal.DigitalAnneal(at.Q, a.DA), nil
	}
	return anneal.SolveQUBOQuantum(at.Q, a.SQA), nil
}

// ClassicalAccelerator executes classical tasks (the other co-processors
// of Fig 1).
type ClassicalAccelerator struct{ Label string }

// Name returns the accelerator identifier.
func (c *ClassicalAccelerator) Name() string { return c.Label }

// Accepts reports whether the task is classical.
func (c *ClassicalAccelerator) Accepts(t Task) bool {
	_, ok := t.(ClassicalTask)
	return ok
}

// Execute runs the wrapped function.
func (c *ClassicalAccelerator) Execute(t Task) (interface{}, error) {
	ct, ok := t.(ClassicalTask)
	if !ok {
		return nil, fmt.Errorf("accel: %s cannot run %s", c.Name(), t.Kind())
	}
	return ct.F()
}

// Dispatch records one offload for the host's Amdahl accounting.
type Dispatch struct {
	TaskKind    string
	Accelerator string
	Elapsed     time.Duration
	Err         error
}

// Host is the classical control processor of Fig 1: it owns the
// accelerator registry and delegates kernels. Offload and Dispatches are
// safe for concurrent use, so worker pools (internal/qserv) can share one
// host; Register is not — wire the system up before serving traffic.
type Host struct {
	accelerators []Accelerator

	mu  sync.Mutex
	log []Dispatch
}

// NewHost returns an empty host.
func NewHost() *Host { return &Host{} }

// Register adds an accelerator to the system.
func (h *Host) Register(a Accelerator) { h.accelerators = append(h.accelerators, a) }

// Accelerators lists registered accelerator names.
func (h *Host) Accelerators() []string {
	out := make([]string, len(h.accelerators))
	for i, a := range h.accelerators {
		out[i] = a.Name()
	}
	return out
}

// Dispatches returns a snapshot of the offload log for Amdahl accounting.
func (h *Host) Dispatches() []Dispatch {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Dispatch, len(h.log))
	copy(out, h.log)
	return out
}

// Offload delegates a task to the first accelerator that accepts it.
func (h *Host) Offload(t Task) (interface{}, error) {
	for _, a := range h.accelerators {
		if !a.Accepts(t) {
			continue
		}
		start := time.Now()
		out, err := a.Execute(t)
		h.mu.Lock()
		h.log = append(h.log, Dispatch{
			TaskKind:    t.Kind(),
			Accelerator: a.Name(),
			Elapsed:     time.Since(start),
			Err:         err,
		})
		h.mu.Unlock()
		return out, err
	}
	return nil, fmt.Errorf("accel: no accelerator accepts task kind %q", t.Kind())
}

// HybridLoop is the Fig 8 execution model: the classical logic proposes
// parameters, the quantum accelerator is invoked in bursts, and the loop
// continues until the classical side is satisfied.
//   - propose: returns the next task given the iteration and previous
//     result (nil result on the first call).
//   - done: inspects the latest result and signals termination.
func (h *Host) HybridLoop(maxIter int, propose func(iter int, prev interface{}) (Task, error), done func(result interface{}) bool) (interface{}, int, error) {
	var prev interface{}
	for iter := 0; iter < maxIter; iter++ {
		task, err := propose(iter, prev)
		if err != nil {
			return nil, iter, err
		}
		out, err := h.Offload(task)
		if err != nil {
			return nil, iter, err
		}
		prev = out
		if done(out) {
			return out, iter + 1, nil
		}
	}
	return prev, maxIter, nil
}

// DefaultSystem wires the Fig 1 system: a host with a perfect-qubit gate
// accelerator, a quantum annealer, a digital annealer and a classical
// FPGA stand-in.
func DefaultSystem(qubits int, seed int64) *Host {
	h := NewHost()
	h.Register(&GateAccelerator{Stack: core.NewPerfect(qubits, seed)})
	h.Register(&AnnealAccelerator{SQA: anneal.SQAOptions{Seed: seed}})
	h.Register(&AnnealAccelerator{Digital: true, DA: anneal.DigitalAnnealerOptions{Seed: seed}})
	h.Register(&ClassicalAccelerator{Label: "fpga"})
	return h
}

// Compile-time interface checks.
var (
	_ Accelerator = (*GateAccelerator)(nil)
	_ Accelerator = (*AnnealAccelerator)(nil)
	_ Accelerator = (*ClassicalAccelerator)(nil)
)
