package compiler

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
)

// Policy selects the scheduling strategy (§2.6 "scheduling of
// operations").
type Policy int

const (
	// ASAP starts every gate as early as its operands allow.
	ASAP Policy = iota
	// ALAP starts every gate as late as possible without extending the
	// ASAP makespan (useful to minimise idle decoherence before use).
	ALAP
)

func (p Policy) String() string {
	if p == ALAP {
		return "alap"
	}
	return "asap"
}

// ScheduledGate is a gate with an assigned start cycle and duration.
type ScheduledGate struct {
	Gate     circuit.Gate
	Cycle    int // start cycle
	Duration int // in cycles
}

// Schedule is a timed circuit: the output of the scheduling pass and the
// input of eQASM generation.
type Schedule struct {
	NumQubits int
	Policy    Policy
	Gates     []ScheduledGate // sorted by Cycle, stable w.r.t. input order
	Makespan  int             // total cycles
}

// Bundles groups scheduled gates by start cycle, in cycle order —
// the bundle view matches cQASM's { g | g } syntax and eQASM's
// instruction bundles.
func (s *Schedule) Bundles() map[int][]ScheduledGate {
	out := map[int][]ScheduledGate{}
	for _, sg := range s.Gates {
		out[sg.Cycle] = append(out[sg.Cycle], sg)
	}
	return out
}

// Cycles returns the sorted list of start cycles that have gates.
func (s *Schedule) Cycles() []int {
	set := map[int]bool{}
	for _, sg := range s.Gates {
		set[sg.Cycle] = true
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// ScheduleCircuit assigns start cycles to every gate of c under the
// platform's gate durations, the qubit-dependency constraint, and the
// platform's control-channel limit (MaxParallelOps). Barriers synchronise
// all qubits.
func ScheduleCircuit(c *circuit.Circuit, p *Platform, policy Policy) (*Schedule, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	asap := scheduleASAP(c, p)
	if policy == ASAP {
		return asap, nil
	}
	// ALAP: schedule the reversed gate list ASAP, then mirror the times
	// inside the same makespan.
	rev := circuit.New(c.Name, c.NumQubits)
	for i := len(c.Gates) - 1; i >= 0; i-- {
		rev.AddGate(c.Gates[i].Clone())
	}
	revSched := scheduleASAP(rev, p)
	makespan := revSched.Makespan
	out := &Schedule{NumQubits: c.NumQubits, Policy: ALAP, Makespan: makespan}
	// revSched.Gates[i] corresponds to c.Gates[len-1-i].
	n := len(c.Gates)
	out.Gates = make([]ScheduledGate, n)
	for i, sg := range revSched.Gates {
		mirrored := ScheduledGate{
			Gate:     sg.Gate,
			Duration: sg.Duration,
			Cycle:    makespan - sg.Cycle - sg.Duration,
		}
		out.Gates[n-1-i] = mirrored
	}
	sort.SliceStable(out.Gates, func(i, j int) bool { return out.Gates[i].Cycle < out.Gates[j].Cycle })
	return out, nil
}

func scheduleASAP(c *circuit.Circuit, p *Platform) *Schedule {
	qubitFree := make([]int, c.NumQubits) // first free cycle per qubit
	// busy[cycle] counts operations executing in that cycle, for the
	// control-channel constraint.
	busy := map[int]int{}
	out := &Schedule{NumQubits: c.NumQubits, Policy: ASAP}
	allFree := func() int {
		max := 0
		for _, f := range qubitFree {
			if f > max {
				max = f
			}
		}
		return max
	}
	for _, g := range c.Gates {
		dur := p.Duration(g.Name)
		var start int
		var qubits []int
		switch g.Name {
		case circuit.OpBarrier:
			// Synchronise: all qubits become free at the same cycle.
			t := allFree()
			for q := range qubitFree {
				qubitFree[q] = t
			}
			continue
		case circuit.OpMeasureAll:
			start = allFree()
			qubits = nil // occupies every qubit
		default:
			qubits = g.Qubits
			for _, q := range qubits {
				if qubitFree[q] > start {
					start = qubitFree[q]
				}
			}
			// A conditional gate additionally depends on the measurement
			// that produced its classical bit (keyed by qubit index).
			if g.HasCond && g.CondBit < len(qubitFree) && qubitFree[g.CondBit] > start {
				start = qubitFree[g.CondBit]
			}
		}
		// Control-channel limit: find the earliest start ≥ start whose
		// whole duration window has capacity.
		if p.MaxParallelOps > 0 {
			for {
				ok := true
				for t := start; t < start+dur; t++ {
					if busy[t] >= p.MaxParallelOps {
						ok = false
						break
					}
				}
				if ok {
					break
				}
				start++
			}
			for t := start; t < start+dur; t++ {
				busy[t]++
			}
		}
		end := start + dur
		if qubits == nil {
			for q := range qubitFree {
				qubitFree[q] = end
			}
		} else {
			for _, q := range qubits {
				qubitFree[q] = end
			}
		}
		if end > out.Makespan {
			out.Makespan = end
		}
		out.Gates = append(out.Gates, ScheduledGate{Gate: g.Clone(), Cycle: start, Duration: dur})
	}
	sort.SliceStable(out.Gates, func(i, j int) bool { return out.Gates[i].Cycle < out.Gates[j].Cycle })
	return out
}

// Validate checks that no two gates overlap on a qubit and the channel
// limit holds.
func (s *Schedule) Validate(p *Platform) error {
	type interval struct{ start, end, idx int }
	perQubit := map[int][]interval{}
	for i, sg := range s.Gates {
		qs := sg.Gate.Qubits
		if sg.Gate.Name == circuit.OpMeasureAll {
			qs = nil
			for q := 0; q < s.NumQubits; q++ {
				qs = append(qs, q)
			}
		}
		for _, q := range qs {
			perQubit[q] = append(perQubit[q], interval{sg.Cycle, sg.Cycle + sg.Duration, i})
		}
	}
	// Check qubits in sorted order so the reported overlap is
	// deterministic when several qubits have one.
	qubits := make([]int, 0, len(perQubit))
	for q := range perQubit {
		qubits = append(qubits, q)
	}
	sort.Ints(qubits)
	for _, q := range qubits {
		ivs := perQubit[q]
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].start < ivs[i-1].end {
				return fmt.Errorf("compiler: schedule overlap on qubit %d between gates %d and %d",
					q, ivs[i-1].idx, ivs[i].idx)
			}
		}
	}
	if p != nil && p.MaxParallelOps > 0 {
		busy := map[int]int{}
		for _, sg := range s.Gates {
			for t := sg.Cycle; t < sg.Cycle+sg.Duration; t++ {
				busy[t]++
				if busy[t] > p.MaxParallelOps {
					return fmt.Errorf("compiler: channel limit exceeded at cycle %d", t)
				}
			}
		}
	}
	return nil
}
