package compiler

import (
	"testing"

	"repro/internal/target"
)

func TestPipelineSplit(t *testing.T) {
	cases := []struct {
		spec   string
		prefix string
		suffix string
	}{
		{
			spec:   DefaultPassSpec(true),
			prefix: "decompose,optimize",
			suffix: "map,lower-swaps,optimize-lowered,schedule,assemble",
		},
		{
			spec:   DefaultPassSpec(false),
			prefix: "decompose",
			suffix: "map,lower-swaps,schedule,assemble",
		},
		{
			// fold-rotations is generic: it extends the prefix.
			spec:   "decompose,optimize,fold-rotations,schedule",
			prefix: "decompose,optimize,fold-rotations",
			suffix: "schedule",
		},
		{
			// A pipeline that opens with a variant pass has no prefix.
			spec:   "map,schedule",
			prefix: "",
			suffix: "map,schedule",
		},
		{
			// A generic pass after a variant pass stays in the suffix:
			// only the leading run is cacheable.
			spec:   "decompose,map,optimize,schedule",
			prefix: "decompose",
			suffix: "map,optimize,schedule",
		},
		{
			// Canonical rendering: whitespace dropped, options sorted.
			spec:   " decompose , optimize, map( strategy=noise , lookahead=8 ) ,schedule ",
			prefix: "decompose,optimize",
			suffix: "map(lookahead=8,strategy=noise),schedule",
		},
	}
	for _, tc := range cases {
		pl, err := NewPipeline(tc.spec)
		if err != nil {
			t.Fatalf("NewPipeline(%q): %v", tc.spec, err)
		}
		prefix, suffix := pl.Split()
		if prefix.Spec != tc.prefix {
			t.Errorf("Split(%q) prefix = %q, want %q", tc.spec, prefix.Spec, tc.prefix)
		}
		if suffix.Spec != tc.suffix {
			t.Errorf("Split(%q) suffix = %q, want %q", tc.spec, suffix.Spec, tc.suffix)
		}
		if prefix.Len()+suffix.Len() != pl.Len() {
			t.Errorf("Split(%q) loses passes: %d + %d != %d",
				tc.spec, prefix.Len(), suffix.Len(), pl.Len())
		}
	}
}

func TestIsGenericRegistry(t *testing.T) {
	generic := map[string]bool{
		"decompose":      true,
		"optimize":       true,
		"fold-rotations": true,
	}
	for _, name := range PassNames() {
		p, ok := PassByName(name)
		if !ok {
			t.Fatalf("registered pass %q not found", name)
		}
		if got := IsGeneric(p); got != generic[name] {
			t.Errorf("IsGeneric(%q) = %v, want %v", name, got, generic[name])
		}
	}
}

// TestGateSetHash pins the prefix-cache keying contract: the hash tracks
// the native gate set and nothing else — re-calibrating a device rotates
// its content hash but not its gate-set hash, which is what keeps prefix
// artefacts live across recalibrations.
func TestGateSetHash(t *testing.T) {
	sc := Superconducting()
	if sc.GateSetHash() != sc.GateSetHash() {
		t.Fatal("GateSetHash is not stable")
	}
	// The two hardware presets share one primitive gate set at different
	// speeds: durations are suffix-only, so their prefix artefacts are
	// interchangeable and their gate-set hashes must agree.
	if sc.GateSetHash() != Semiconducting().GateSetHash() {
		t.Error("same gate names at different durations must share a gate-set hash")
	}
	if sc.GateSetHash() == Perfect(5).GateSetHash() {
		t.Error("different gate sets must hash differently")
	}

	dev := target.Superconducting()
	cal := dev.Calibration.Clone()
	for i := range cal.Edges {
		cal.Edges[i].TwoQubitError *= 3
	}
	recal := PlatformFor(dev.WithCalibration(cal))
	if sc.ContentHash() == recal.ContentHash() {
		t.Error("recalibration must rotate the content hash")
	}
	if sc.GateSetHash() != recal.GateSetHash() {
		t.Error("recalibration must NOT rotate the gate-set hash")
	}
}

func TestPrefixKeyDistinct(t *testing.T) {
	base := PrefixKey("g", "decompose,optimize", "circuit")
	for _, k := range []string{
		PrefixKey("g2", "decompose,optimize", "circuit"),
		PrefixKey("g", "decompose", "circuit"),
		PrefixKey("g", "decompose,optimize", "circuit2"),
	} {
		if k == base {
			t.Error("prefix keys must differ when any component differs")
		}
	}
	if PrefixKey("g", "decompose,optimize", "circuit") != base {
		t.Error("prefix keys must be deterministic")
	}
}

func TestWorkerGateNilSafe(t *testing.T) {
	var g WorkerGate
	g.Acquire() // must not block or panic
	g.Release()

	g = NewWorkerGate(2)
	g.Acquire()
	g.Acquire()
	done := make(chan struct{})
	go func() {
		g.Acquire()
		g.Release()
		close(done)
	}()
	g.Release()
	<-done
	g.Release()
}
