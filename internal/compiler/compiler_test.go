package compiler

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/quantum"
	"repro/internal/topology"
)

// circuitUnitary computes the full unitary of a (measurement-free)
// circuit by applying it to every basis state.
func circuitUnitary(c *circuit.Circuit) quantum.Matrix {
	dim := 1 << uint(c.NumQubits)
	m := quantum.NewMatrix(dim)
	for col := 0; col < dim; col++ {
		s := quantum.NewState(c.NumQubits)
		s.PrepareBasis(col)
		for _, g := range c.Gates {
			if !g.IsUnitary() {
				continue
			}
			u, err := g.Matrix()
			if err != nil {
				panic(err)
			}
			s.Apply(u, g.Qubits...)
		}
		for row := 0; row < dim; row++ {
			m.Set(row, col, s.Amplitude(row))
		}
	}
	return m
}

// embedGate builds the full-register unitary of a single gate.
func embedGate(t *testing.T, name string, n int, qubits []int, params ...float64) quantum.Matrix {
	t.Helper()
	c := circuit.New("embed", n)
	c.Add(name, qubits, params...)
	return circuitUnitary(c)
}

func nisqPlatform(n int) *Platform {
	return &Platform{
		Name:        "nisq-test",
		NumQubits:   n,
		CycleTimeNs: 20,
		Gates:       nisqGates(1, 2, 15, 10),
	}
}

// TestDecomposeEveryRule checks that decomposing each registered gate to
// the NISQ primitive set preserves the unitary up to global phase.
func TestDecomposeEveryRule(t *testing.T) {
	p := nisqPlatform(3)
	for _, name := range circuit.Names() {
		spec, _ := circuit.Lookup(name)
		qubits := make([]int, spec.Arity)
		for i := range qubits {
			qubits[i] = i
		}
		params := make([]float64, spec.NumParams)
		for i := range params {
			params[i] = 0.9 - 0.35*float64(i)
		}
		c := circuit.New("one", 3)
		c.Add(name, qubits, params...)
		dec, err := Decompose(c, p)
		if err != nil {
			t.Errorf("%s: decompose failed: %v", name, err)
			continue
		}
		for _, g := range dec.Gates {
			if !p.Supports(g.Name) {
				t.Errorf("%s: non-primitive %q survived decomposition", name, g.Name)
			}
		}
		want := circuitUnitary(c)
		got := circuitUnitary(dec)
		if !got.EqualUpToPhase(want, 1e-8) {
			t.Errorf("%s: decomposition changed the unitary", name)
		}
	}
}

func TestDecomposePassThroughForPerfect(t *testing.T) {
	c := circuit.New("p", 3).Toffoli(0, 1, 2).H(0)
	dec, err := Decompose(c, Perfect(3))
	if err != nil {
		t.Fatal(err)
	}
	if dec.GateCount() != 2 {
		t.Errorf("perfect platform decomposed anyway: %d gates", dec.GateCount())
	}
}

func TestDecomposeKeepsMeasurement(t *testing.T) {
	c := circuit.New("m", 2).H(0).Measure(0)
	dec, err := Decompose(c, nisqPlatform(2))
	if err != nil {
		t.Fatal(err)
	}
	if dec.GateCount(circuit.OpMeasure) != 1 {
		t.Error("measurement lost")
	}
}

// Property: decomposition of random circuits preserves the unitary up to
// phase.
func TestDecomposeProperty(t *testing.T) {
	p := nisqPlatform(4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.RandomCircuit(3, 3, rng)
		dec, err := Decompose(c, p)
		if err != nil {
			return false
		}
		return circuitUnitary(dec).EqualUpToPhase(circuitUnitary(c), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeCancelsPairs(t *testing.T) {
	c := circuit.New("o", 2)
	c.H(0).H(0).X(1).CNOT(0, 1).CNOT(0, 1).X(1)
	opt := Optimize(c)
	if opt.GateCount() != 0 {
		t.Errorf("expected full cancellation, got %d gates: %v", opt.GateCount(), opt.Gates)
	}
}

func TestOptimizeCancelsNamedInverses(t *testing.T) {
	c := circuit.New("o2", 1).S(0).Sdag(0).T(0).Tdag(0)
	opt := Optimize(c)
	if opt.GateCount() != 0 {
		t.Errorf("s/sdag t/tdag not cancelled: %v", opt.Gates)
	}
}

func TestOptimizeMergesRotations(t *testing.T) {
	c := circuit.New("r", 1).RZ(0, 0.5).RZ(0, 0.7).RZ(0, -1.2)
	opt := Optimize(c)
	if opt.GateCount() != 0 {
		t.Errorf("rz sum to zero should vanish, got %v", opt.Gates)
	}
	c2 := circuit.New("r2", 1).RX(0, 0.5).RX(0, 0.25)
	opt2 := Optimize(c2)
	if opt2.GateCount() != 1 || math.Abs(opt2.Gates[0].Params[0]-0.75) > 1e-12 {
		t.Errorf("rx merge wrong: %v", opt2.Gates)
	}
}

func TestOptimizeRespectsInterveningGates(t *testing.T) {
	c := circuit.New("i", 1).H(0).X(0).H(0)
	opt := Optimize(c)
	if opt.GateCount() != 3 {
		t.Errorf("H X H wrongly optimised to %v", opt.Gates)
	}
}

func TestOptimizeRespectsMeasurement(t *testing.T) {
	c := circuit.New("m", 1).H(0).Measure(0).H(0)
	opt := Optimize(c)
	if opt.GateCount("h") != 2 {
		t.Errorf("H measure H wrongly cancelled: %v", opt.Gates)
	}
}

func TestOptimizeDropsIdentities(t *testing.T) {
	c := circuit.New("id", 1).I(0).RZ(0, 0).I(0)
	if got := Optimize(c).GateCount(); got != 0 {
		t.Errorf("identities survived: %d", got)
	}
}

// Property: optimisation preserves the unitary exactly up to phase.
func TestOptimizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.RandomCircuit(3, 4, rng)
		// Insert some redundant pairs to exercise cancellation.
		c.H(0).H(0).S(1).Sdag(1)
		opt := Optimize(c)
		if opt.GateCount() > c.GateCount() {
			return false
		}
		return circuitUnitary(opt).EqualUpToPhase(circuitUnitary(c), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestScheduleASAPRespectsDependencies(t *testing.T) {
	p := nisqPlatform(3)
	c := circuit.New("s", 3)
	c.Add("x90", []int{0})
	c.Add("cz", []int{0, 1})
	c.Add("x90", []int{2})
	sched, err := ScheduleCircuit(c, p, ASAP)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(p); err != nil {
		t.Fatal(err)
	}
	// x90 on q2 can start at 0 in parallel with x90 on q0; cz waits.
	byName := map[string]ScheduledGate{}
	for _, sg := range sched.Gates {
		byName[sg.Gate.String()] = sg
	}
	if byName["x90 q[2]"].Cycle != 0 {
		t.Errorf("independent gate delayed to %d", byName["x90 q[2]"].Cycle)
	}
	if byName["cz q[0], q[1]"].Cycle != 1 {
		t.Errorf("cz scheduled at %d, want 1", byName["cz q[0], q[1]"].Cycle)
	}
	if sched.Makespan != 3 {
		t.Errorf("makespan %d, want 3", sched.Makespan)
	}
}

func TestScheduleALAPDelaysEarlyGates(t *testing.T) {
	p := nisqPlatform(3)
	c := circuit.New("alap", 3)
	c.Add("x90", []int{2}) // only needed by the final cz: has slack
	c.Add("x90", []int{0})
	c.Add("cz", []int{0, 1})
	c.Add("cz", []int{1, 2})
	asap, _ := ScheduleCircuit(c, p, ASAP)
	alap, err := ScheduleCircuit(c, p, ALAP)
	if err != nil {
		t.Fatal(err)
	}
	if err := alap.Validate(p); err != nil {
		t.Fatal(err)
	}
	if alap.Makespan != asap.Makespan {
		t.Errorf("ALAP makespan %d != ASAP %d", alap.Makespan, asap.Makespan)
	}
	// ASAP puts x90 q2 at cycle 0; ALAP must push it to cycle 2, right
	// before its consumer cz(1,2) which starts at 3.
	for _, sg := range alap.Gates {
		if sg.Gate.String() == "x90 q[2]" && sg.Cycle != 2 {
			t.Errorf("ALAP put x90 q[2] at cycle %d, want 2", sg.Cycle)
		}
	}
}

func TestScheduleChannelLimit(t *testing.T) {
	p := nisqPlatform(4)
	p.MaxParallelOps = 1
	c := circuit.New("lim", 4)
	for q := 0; q < 4; q++ {
		c.Add("x90", []int{q})
	}
	sched, err := ScheduleCircuit(c, p, ASAP)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(p); err != nil {
		t.Fatal(err)
	}
	if sched.Makespan != 4 {
		t.Errorf("serialised makespan %d, want 4", sched.Makespan)
	}
}

func TestScheduleBarrier(t *testing.T) {
	p := nisqPlatform(2)
	c := circuit.New("bar", 2)
	c.Add("measure", []int{0}) // 15 cycles
	c.Barrier()
	c.Add("x90", []int{1})
	sched, _ := ScheduleCircuit(c, p, ASAP)
	for _, sg := range sched.Gates {
		if sg.Gate.Name == "x90" && sg.Cycle < 15 {
			t.Errorf("barrier ignored: x90 at %d", sg.Cycle)
		}
	}
}

func TestMapAllToAllIsIdentity(t *testing.T) {
	c := circuit.Bell()
	res, err := MapCircuit(c, Perfect(2), MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AddedSwaps != 0 || res.Circuit.GateCount() != c.GateCount() {
		t.Error("all-to-all mapping modified circuit")
	}
}

func TestMapLinearInsertsSwaps(t *testing.T) {
	p := &Platform{Name: "lin", NumQubits: 5, Gates: nisqGates(1, 2, 15, 10), Topology: topology.Linear(5)}
	c := circuit.New("far", 5)
	c.Add("cz", []int{0, 4})
	res, err := MapCircuit(c, p, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AddedSwaps != 3 {
		t.Errorf("swaps = %d, want 3 (distance 4 → 3 swaps)", res.AddedSwaps)
	}
	// Every two-qubit gate in the result must be NN.
	for _, g := range res.Circuit.Gates {
		if g.IsTwoQubit() && !p.Topology.Adjacent(g.Qubits[0], g.Qubits[1]) {
			t.Errorf("non-adjacent gate survived: %v", g)
		}
	}
}

// mapPreservesSemantics checks that the mapped circuit equals the original
// under the final layout permutation: for each logical basis input, the
// output distributions agree modulo qubit relabelling.
func mapPreservesSemantics(t *testing.T, c *circuit.Circuit, p *Platform, opts MapOptions) {
	t.Helper()
	res, err := MapCircuit(c, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	n := c.NumQubits
	// Simulate original.
	orig := quantum.NewState(n)
	for _, g := range c.Gates {
		m, _ := g.Matrix()
		orig.Apply(m, g.Qubits...)
	}
	// Simulate mapped on the full physical register, with logical qubit l
	// starting at physical res.InitialLayout[l].
	phys := quantum.NewState(res.Circuit.NumQubits)
	for _, g := range res.Circuit.Gates {
		m, _ := g.Matrix()
		phys.Apply(m, g.Qubits...)
	}
	// Compare per-basis probabilities after permuting physical indices
	// back through the final layout.
	pOrig := orig.Probabilities()
	pPhys := phys.Probabilities()
	agg := make([]float64, len(pOrig))
	for idx, prob := range pPhys {
		if prob == 0 {
			continue
		}
		logical := 0
		for l := 0; l < n; l++ {
			if idx&(1<<uint(res.FinalLayout[l])) != 0 {
				logical |= 1 << uint(l)
			}
		}
		agg[logical] += prob
	}
	for i := range pOrig {
		if math.Abs(pOrig[i]-agg[i]) > 1e-8 {
			t.Fatalf("mapping changed semantics at basis %d: %v vs %v", i, pOrig[i], agg[i])
		}
	}
}

func TestMapPreservesSemanticsOnGrid(t *testing.T) {
	p := &Platform{Name: "g", NumQubits: 9, Gates: nisqGates(1, 2, 15, 10), Topology: topology.Grid(3, 3)}
	rng := rand.New(rand.NewSource(4))
	c := circuit.RandomCircuit(9, 4, rng)
	mapPreservesSemantics(t, c, p, MapOptions{})
	mapPreservesSemantics(t, c, p, MapOptions{Lookahead: true})
	mapPreservesSemantics(t, c, p, MapOptions{Placement: GreedyPlacement})
}

func TestMapRejectsThreeQubitGates(t *testing.T) {
	p := &Platform{Name: "lin", NumQubits: 3, Gates: nisqGates(1, 2, 15, 10), Topology: topology.Linear(3)}
	c := circuit.New("t", 3).Toffoli(0, 1, 2)
	if _, err := MapCircuit(c, p, MapOptions{}); err == nil {
		t.Error("3-qubit gate accepted by mapper")
	}
}

func TestMapRejectsTooManyQubits(t *testing.T) {
	p := &Platform{Name: "small", NumQubits: 2, Gates: nisqGates(1, 2, 15, 10), Topology: topology.Linear(2)}
	c := circuit.New("big", 3).H(2)
	if _, err := MapCircuit(c, p, MapOptions{}); err == nil {
		t.Error("oversized circuit accepted")
	}
}

func TestGreedyPlacementReducesSwaps(t *testing.T) {
	// A circuit whose hot pair (0,8) is distant under trivial placement
	// on a 3×3 grid.
	p := &Platform{Name: "g", NumQubits: 9, Gates: nisqGates(1, 2, 15, 10), Topology: topology.Grid(3, 3)}
	c := circuit.New("hot", 9)
	for i := 0; i < 10; i++ {
		c.Add("cz", []int{0, 8})
	}
	trivial, err := MapCircuit(c, p, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := MapCircuit(c, p, MapOptions{Placement: GreedyPlacement})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.AddedSwaps > trivial.AddedSwaps {
		t.Errorf("greedy placement worse: %d vs %d swaps", greedy.AddedSwaps, trivial.AddedSwaps)
	}
	if greedy.AddedSwaps != 0 {
		t.Errorf("hot pair should be adjacent after greedy placement, got %d swaps", greedy.AddedSwaps)
	}
}

func TestPlatformJSONRoundTrip(t *testing.T) {
	p := Superconducting()
	data, err := p.MarshalConfig()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadPlatform(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != p.Name || back.NumQubits != p.NumQubits {
		t.Error("round trip lost identity")
	}
	if back.Topology.NumEdges() != p.Topology.NumEdges() {
		t.Errorf("topology edges %d != %d", back.Topology.NumEdges(), p.Topology.NumEdges())
	}
}

func TestLoadPlatformKinds(t *testing.T) {
	cases := []string{
		`{"name":"a","qubits":4,"topology":{"kind":"linear"}}`,
		`{"name":"b","qubits":4,"topology":{"kind":"ring"}}`,
		`{"name":"c","qubits":6,"topology":{"kind":"grid","rows":2,"cols":3}}`,
		`{"name":"d","qubits":4,"topology":{"kind":"full"}}`,
		`{"name":"e","qubits":4,"topology":{"kind":"star"}}`,
		`{"name":"f","qubits":17,"topology":{"kind":"surface17"}}`,
		`{"name":"g","qubits":32,"topology":{"kind":"chimera","rows":2,"cols":2,"k":4}}`,
		`{"name":"h","qubits":3,"topology":{"kind":"custom","edges":[[0,1],[1,2]]}}`,
	}
	for _, src := range cases {
		if _, err := LoadPlatform([]byte(src)); err != nil {
			t.Errorf("LoadPlatform(%s): %v", src, err)
		}
	}
	bad := []string{
		`{"name":"x","qubits":4,"topology":{"kind":"grid","rows":3,"cols":3}}`,
		`{"name":"x","qubits":4,"topology":{"kind":"nope"}}`,
		`{"name":"x","qubits":0}`,
		`not json`,
	}
	for _, src := range bad {
		if _, err := LoadPlatform([]byte(src)); err == nil {
			t.Errorf("LoadPlatform accepted %s", src)
		}
	}
}

func TestPlatformPresets(t *testing.T) {
	for _, p := range []*Platform{Superconducting(), Semiconducting(), Perfect(5)} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	sc := Superconducting()
	if !sc.Supports("cz") || sc.Supports("toffoli") {
		t.Error("superconducting primitive set wrong")
	}
	if sc.Duration("measure") != 15 {
		t.Errorf("measure duration = %d", sc.Duration("measure"))
	}
	if sc.Duration("unknown-gate") != 1 {
		t.Error("default duration should be 1")
	}
}

func TestConditionalGateScheduleDependsOnMeasure(t *testing.T) {
	p := nisqPlatform(3)
	c := circuit.New("ff", 3)
	c.AddGate(circuit.Gate{Name: circuit.OpMeasure, Qubits: []int{0}}) // 15 cycles
	c.AddGate(circuit.Gate{Name: "x90", Qubits: []int{2}, HasCond: true, CondBit: 0})
	sched, err := ScheduleCircuit(c, p, ASAP)
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range sched.Gates {
		if sg.Gate.Name == "x90" && sg.Cycle < 15 {
			t.Errorf("conditional gate at cycle %d, before its measurement completes", sg.Cycle)
		}
	}
}

func TestConditionalDecomposePropagates(t *testing.T) {
	p := nisqPlatform(2)
	c := circuit.New("cond", 2)
	c.AddGate(circuit.Gate{Name: "h", Qubits: []int{1}, HasCond: true, CondBit: 0})
	dec, err := Decompose(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if dec.GateCount() == 0 {
		t.Fatal("nothing decomposed")
	}
	for _, g := range dec.Gates {
		if !g.HasCond || g.CondBit != 0 {
			t.Errorf("condition lost on %v", g)
		}
	}
}

func TestOptimizeKeepsConditionalPairs(t *testing.T) {
	c := circuit.New("ff", 1)
	c.AddGate(circuit.Gate{Name: "x", Qubits: []int{0}, HasCond: true, CondBit: 0})
	c.AddGate(circuit.Gate{Name: "x", Qubits: []int{0}, HasCond: true, CondBit: 0})
	// Two conditional X gates would cancel only when the condition holds;
	// the optimiser must not assume that.
	if got := Optimize(c).GateCount(); got != 2 {
		t.Errorf("conditional pair collapsed to %d gates", got)
	}
}

func TestMapRemapsConditionBit(t *testing.T) {
	p := &Platform{Name: "lin", NumQubits: 3, Gates: nisqGates(1, 2, 15, 10), Topology: topology.Linear(3)}
	c := circuit.New("ff", 3)
	c.Add("cz", []int{0, 2}) // forces a swap, relocating a qubit
	c.Measure(0)
	c.AddGate(circuit.Gate{Name: "x", Qubits: []int{1}, HasCond: true, CondBit: 0})
	res, err := MapCircuit(c, p, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var measPhys, condPhys = -1, -1
	for _, g := range res.Circuit.Gates {
		switch {
		case g.Name == circuit.OpMeasure:
			measPhys = g.Qubits[0]
		case g.HasCond:
			condPhys = g.CondBit
		}
	}
	if measPhys == -1 || condPhys != measPhys {
		t.Errorf("condition bit %d does not follow measurement qubit %d", condPhys, measPhys)
	}
}
