package compiler

import (
	"errors"
	"strings"
	"testing"
)

func TestParseSpecEntriesAndOptions(t *testing.T) {
	entries, err := ParseSpec(" decompose , map( lookahead = 8 , strategy = noise ) ,schedule")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("%d entries, want 3", len(entries))
	}
	if entries[0].Name != "decompose" || entries[0].Options != nil {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	m := entries[1]
	if m.Name != "map" || m.Options["lookahead"] != "8" || m.Options["strategy"] != "noise" {
		t.Errorf("map entry = %+v", m)
	}
	if entries[2].Name != "schedule" {
		t.Errorf("entry 2 = %+v", entries[2])
	}
	// Empty option lists are allowed.
	if _, err := ParseSpec("map(),schedule"); err != nil {
		t.Errorf("map() rejected: %v", err)
	}
}

// Malformed specs are rejected at parse time with position-carrying
// errors, never mid-compile.
func TestParseSpecMalformed(t *testing.T) {
	cases := []struct {
		spec    string
		wantPos int // zero-based offset reported by the SpecError
		wantMsg string
	}{
		{"map(", 3, "unterminated"},
		{"map(lookahead=8", 3, "unterminated"},
		{"map(x=)", 6, "empty value"},
		{"map(=3)", 4, "empty option key"},
		{"map(x)", 4, "missing '='"},
		{"map(x=1,x=2)", 8, "duplicate option \"x\""},
		{"map()x", 5, "expected ','"},
		{",map", 0, "empty pass name"},
		{"map,,schedule", 4, "empty pass name"},
		{"map,", 4, "empty pass name"},
		{"", 0, "empty pass spec"},
		{"   ", 0, "empty pass spec"},
		{"map)x", 3, "unexpected"},
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.spec)
		if err == nil {
			t.Errorf("spec %q accepted", tc.spec)
			continue
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("spec %q: error %T does not carry a position: %v", tc.spec, err, err)
			continue
		}
		if se.Pos != tc.wantPos {
			t.Errorf("spec %q: error at col %d, want col %d (%v)", tc.spec, se.Pos+1, tc.wantPos+1, err)
		}
		if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Errorf("spec %q: error %q missing %q", tc.spec, err, tc.wantMsg)
		}
	}
}

// ResolveSpec rejects unknown passes, options on optionless passes and
// invalid option values for the map passes — all before compilation.
func TestResolveSpecValidatesOptions(t *testing.T) {
	for _, tc := range []struct {
		spec    string
		wantMsg string
	}{
		{"teleport", "unknown pass"},
		{"decompose(x=1),schedule", "takes no options"},
		{"map(zoom=2)", "unknown option"},
		{"map(strategy=warp)", "not hop or noise"},
		{"map-noise(strategy=noise)", "unknown option"},
		{"map(lookahead=maybe)", "lookahead"},
		{"map(lookahead=-2)", "positive"},
		{"map(window=-1)", "positive"},
		{"map(placement=random)", "not trivial or greedy"},
	} {
		_, err := ResolveSpec(tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.wantMsg) {
			t.Errorf("spec %q: error %v, want substring %q", tc.spec, err, tc.wantMsg)
		}
	}
	bound, err := ResolveSpec("decompose,map-noise(lookahead=4,placement=greedy),schedule")
	if err != nil {
		t.Fatal(err)
	}
	if len(bound) != 3 || bound[1].Pass.Name() != "map-noise" || bound[1].Options["lookahead"] != "4" {
		t.Errorf("bound = %+v", bound)
	}
}

func TestPassOptionsGetters(t *testing.T) {
	o := PassOptions{"a": "8", "b": "true", "c": "x"}
	if n, err := o.Int("a", 0); err != nil || n != 8 {
		t.Errorf("Int(a) = %d, %v", n, err)
	}
	if n, err := o.Int("missing", 7); err != nil || n != 7 {
		t.Errorf("Int default = %d, %v", n, err)
	}
	if _, err := o.Int("c", 0); err == nil {
		t.Error("Int(c) accepted non-integer")
	}
	if b, err := o.Bool("b", false); err != nil || !b {
		t.Errorf("Bool(b) = %v, %v", b, err)
	}
	if _, err := o.Bool("c", false); err == nil {
		t.Error("Bool(c) accepted non-boolean")
	}
	if o.String("c", "") != "x" || o.String("missing", "d") != "d" {
		t.Error("String getter wrong")
	}
}

// mapOptionsFrom overlays spec options onto the context's MapOptions.
func TestMapOptionsOverlay(t *testing.T) {
	base := MapOptions{Placement: TrivialPlacement}
	opts, strategy, err := mapOptionsFrom(base, PassOptions{
		"lookahead": "8", "placement": "greedy", "strategy": "noise",
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !opts.Lookahead || opts.LookaheadWindow != 8 || opts.Placement != GreedyPlacement || strategy != "noise" {
		t.Errorf("opts = %+v strategy %s", opts, strategy)
	}
	opts, strategy, err = mapOptionsFrom(MapOptions{Lookahead: true, LookaheadWindow: 3}, PassOptions{"lookahead": "false"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Lookahead {
		t.Errorf("lookahead=false did not disable lookahead: %+v", opts)
	}
	if strategy != "hop" {
		t.Errorf("strategy defaulted to %q, want hop", strategy)
	}
}
