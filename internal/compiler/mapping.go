package compiler

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/topology"
)

// PlacementStrategy selects the initial logical→physical assignment.
type PlacementStrategy int

const (
	// TrivialPlacement maps logical qubit i to physical qubit i.
	TrivialPlacement PlacementStrategy = iota
	// GreedyPlacement places strongly-interacting logical qubits on
	// adjacent, high-degree physical qubits.
	GreedyPlacement
)

// MapOptions configures the mapping pass.
type MapOptions struct {
	Placement PlacementStrategy
	// Lookahead enables the routing heuristic that picks the SWAP
	// direction minimising the distance of upcoming two-qubit gates
	// (window of LookaheadWindow gates; default 5).
	Lookahead       bool
	LookaheadWindow int
}

// MapResult is the output of the mapping pass: the routed circuit over
// physical qubits plus the bookkeeping the run-time needs.
type MapResult struct {
	Circuit       *circuit.Circuit
	InitialLayout []int // logical → physical
	FinalLayout   []int // logical → physical after routing
	AddedSwaps    int
	// LatencyFactor is depth(mapped)/depth(original); ≥ 1.
	LatencyFactor float64
	// MeasurePhys records, per measured logical qubit, the physical qubit
	// it occupied when its measurement was emitted — the run-time needs
	// this to translate outcome bitmasks back to logical order.
	MeasurePhys map[int]int
}

// MapCircuit places the logical qubits of c onto the platform's topology
// and inserts SWAP chains so that every two-qubit gate acts on adjacent
// physical qubits — the "placement and routing of qubits" stage of §2.6.
// Gates of arity ≥ 3 must be decomposed first.
func MapCircuit(c *circuit.Circuit, p *Platform, opts MapOptions) (*MapResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if p.Topology == nil {
		// All-to-all: mapping is the identity.
		layout := identityLayout(c.NumQubits)
		mp := map[int]int{}
		for q := 0; q < c.NumQubits; q++ {
			mp[q] = q
		}
		return &MapResult{
			Circuit:       c.Clone(),
			InitialLayout: layout,
			FinalLayout:   append([]int(nil), layout...),
			LatencyFactor: 1,
			MeasurePhys:   mp,
		}, nil
	}
	topo := p.Topology
	if c.NumQubits > topo.N {
		return nil, fmt.Errorf("compiler: circuit needs %d qubits, topology has %d", c.NumQubits, topo.N)
	}
	for _, g := range c.Gates {
		if g.IsUnitary() && len(g.Qubits) > 2 {
			return nil, fmt.Errorf("compiler: mapping requires decomposed circuits; found %d-qubit gate %q", len(g.Qubits), g.Name)
		}
	}

	var l2p []int
	switch opts.Placement {
	case GreedyPlacement:
		l2p = greedyPlacement(c, topo)
	default:
		l2p = identityLayout(topo.N)
	}
	p2l := invert(l2p, topo.N)
	initial := append([]int(nil), l2p...)

	window := opts.LookaheadWindow
	if window <= 0 {
		window = 5
	}

	out := circuit.New(c.Name+"_mapped", topo.N)
	swaps := 0
	// Pre-extract the positions of two-qubit gates for lookahead.
	var upcoming []twoQ
	for i, g := range c.Gates {
		if g.IsTwoQubit() {
			upcoming = append(upcoming, twoQ{i, g.Qubits[0], g.Qubits[1]})
		}
	}
	nextTwoQ := 0

	measurePhys := map[int]int{}
	for gi, g := range c.Gates {
		for nextTwoQ < len(upcoming) && upcoming[nextTwoQ].idx <= gi {
			nextTwoQ++
		}
		if !g.IsTwoQubit() {
			// Remap operands and emit; record measurement bindings.
			ng := g.Clone()
			for i, q := range ng.Qubits {
				ng.Qubits[i] = l2p[q]
			}
			switch g.Name {
			case circuit.OpMeasure:
				measurePhys[g.Qubits[0]] = ng.Qubits[0]
			case circuit.OpMeasureAll:
				for l := 0; l < c.NumQubits; l++ {
					measurePhys[l] = l2p[l]
				}
			}
			if ng.HasCond {
				// The classical bit lives where the producing
				// measurement physically happened.
				if p, ok := measurePhys[g.CondBit]; ok {
					ng.CondBit = p
				} else {
					ng.CondBit = l2p[g.CondBit]
				}
			}
			out.AddGate(ng)
			continue
		}
		la, lb := g.Qubits[0], g.Qubits[1]
		pa, pb := l2p[la], l2p[lb]
		for !topo.Adjacent(pa, pb) {
			// Choose which endpoint to step toward the other.
			path := topo.ShortestPath(pa, pb)
			if path == nil {
				return nil, fmt.Errorf("compiler: qubits %d and %d are disconnected", pa, pb)
			}
			// Candidate moves: step a forward, or step b backward.
			stepA := [2]int{pa, path[1]}
			stepB := [2]int{pb, path[len(path)-2]}
			chosen := stepA
			if opts.Lookahead {
				costA := lookaheadCost(topo, l2p, upcoming[nextTwoQ:], window, stepA)
				costB := lookaheadCost(topo, l2p, upcoming[nextTwoQ:], window, stepB)
				if costB < costA {
					chosen = stepB
				}
			}
			emitSwap(out, chosen[0], chosen[1])
			swaps++
			applySwap(l2p, p2l, chosen[0], chosen[1])
			pa, pb = l2p[la], l2p[lb]
		}
		ng := g.Clone()
		ng.Qubits[0], ng.Qubits[1] = pa, pb
		if ng.HasCond {
			if p, ok := measurePhys[g.CondBit]; ok {
				ng.CondBit = p
			} else {
				ng.CondBit = l2p[g.CondBit]
			}
		}
		out.AddGate(ng)
	}

	origDepth := c.Depth()
	factor := 1.0
	if origDepth > 0 {
		factor = float64(out.Depth()) / float64(origDepth)
	}
	// Default the measurement binding to the final layout for logical
	// qubits the program never explicitly measures.
	for l := 0; l < c.NumQubits; l++ {
		if _, ok := measurePhys[l]; !ok {
			measurePhys[l] = l2p[l]
		}
	}
	return &MapResult{
		Circuit:       out,
		InitialLayout: initial,
		FinalLayout:   l2p,
		AddedSwaps:    swaps,
		LatencyFactor: factor,
		MeasurePhys:   measurePhys,
	}, nil
}

func identityLayout(n int) []int {
	l := make([]int, n)
	for i := range l {
		l[i] = i
	}
	return l
}

func invert(l2p []int, n int) []int {
	p2l := make([]int, n)
	for i := range p2l {
		p2l[i] = -1
	}
	for l, p := range l2p {
		p2l[p] = l
	}
	return p2l
}

func applySwap(l2p, p2l []int, pa, pb int) {
	la, lb := p2l[pa], p2l[pb]
	p2l[pa], p2l[pb] = lb, la
	if la >= 0 {
		l2p[la] = pb
	}
	if lb >= 0 {
		l2p[lb] = pa
	}
}

func emitSwap(out *circuit.Circuit, a, b int) {
	out.SWAP(a, b)
}

// twoQ records the position and logical operands of a two-qubit gate, for
// the routing lookahead.
type twoQ struct{ idx, a, b int }

// lookaheadCost evaluates a candidate swap by the total distance of the
// next `window` two-qubit gates under the post-swap layout.
func lookaheadCost(topo *topology.Topology, l2p []int, upcoming []twoQ, window int, swap [2]int) int {
	// Apply the swap to a scratch copy of the layout.
	scratch := append([]int(nil), l2p...)
	for l, p := range scratch {
		if p == swap[0] {
			scratch[l] = swap[1]
		} else if p == swap[1] {
			scratch[l] = swap[0]
		}
	}
	cost := 0
	for i := 0; i < len(upcoming) && i < window; i++ {
		g := upcoming[i]
		d := topo.Distance(scratch[g.a], scratch[g.b])
		// Discount later gates.
		cost += d * (window - i)
	}
	return cost
}

// greedyPlacement assigns the most-interacting logical qubits to the
// highest-degree physical qubits, keeping frequent partners adjacent
// where possible.
func greedyPlacement(c *circuit.Circuit, topo *topology.Topology) []int {
	n := topo.N
	// Interaction counts between logical qubits.
	inter := map[[2]int]int{}
	degree := make([]int, c.NumQubits)
	for _, g := range c.Gates {
		if !g.IsTwoQubit() {
			continue
		}
		a, b := g.Qubits[0], g.Qubits[1]
		if a > b {
			a, b = b, a
		}
		inter[[2]int{a, b}]++
		degree[g.Qubits[0]]++
		degree[g.Qubits[1]]++
	}
	// Order logical qubits by interaction degree, descending.
	order := make([]int, c.NumQubits)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return degree[order[i]] > degree[order[j]] })

	l2p := make([]int, n)
	for i := range l2p {
		l2p[i] = -1
	}
	usedPhys := make([]bool, n)

	// Place the busiest logical qubit on the highest-degree physical
	// qubit; place subsequent qubits adjacent to their most frequent
	// already-placed partner when possible.
	physByDegree := make([]int, n)
	for i := range physByDegree {
		physByDegree[i] = i
	}
	sort.SliceStable(physByDegree, func(i, j int) bool {
		return topo.Degree(physByDegree[i]) > topo.Degree(physByDegree[j])
	})
	takeFree := func(candidates []int) int {
		for _, p := range candidates {
			if !usedPhys[p] {
				return p
			}
		}
		for _, p := range physByDegree {
			if !usedPhys[p] {
				return p
			}
		}
		return -1
	}
	for _, l := range order {
		// Find the most frequent placed partner. Ties break toward the
		// lowest partner id so placement is deterministic — map iteration
		// order must never leak into routing results.
		bestPartner, bestCount := -1, 0
		//qlint:nondeterministic-ok order-independent: strict count ordering with lowest-partner-id tie-break yields one winner regardless of iteration order
		for pair, count := range inter {
			var other int
			switch l {
			case pair[0]:
				other = pair[1]
			case pair[1]:
				other = pair[0]
			default:
				continue
			}
			if l2p[other] < 0 {
				continue
			}
			if count > bestCount || (count == bestCount && bestPartner >= 0 && other < bestPartner) {
				bestPartner, bestCount = other, count
			}
		}
		var phys int
		if bestPartner >= 0 {
			phys = takeFree(topo.Neighbors(l2p[bestPartner]))
		} else {
			phys = takeFree(nil)
		}
		l2p[l] = phys
		usedPhys[phys] = true
	}
	// Fill the remaining identity slots for logical ids ≥ c.NumQubits.
	for l := c.NumQubits; l < n; l++ {
		l2p[l] = takeFree(nil)
		usedPhys[l2p[l]] = true
	}
	return l2p
}
