package compiler

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/circuit"
)

// Pass is one retargetable stage of the compiler pipeline (Fig 4): it
// reads and rewrites the artefacts carried by a PassContext. Passes must
// be stateless — one registered instance is shared by every concurrent
// compilation — with all per-run configuration read from the context.
type Pass interface {
	Name() string
	Run(ctx *PassContext) error
}

// PassContext carries the artefacts a compilation accumulates as it moves
// down the pipeline: the circuit being rewritten plus the mapping,
// schedule and assembly outputs, alongside the immutable target
// configuration the passes read.
type PassContext struct {
	// Platform is the compilation target; never nil.
	Platform *Platform
	// Mapping configures the map pass.
	Mapping MapOptions
	// Policy configures the schedule pass.
	Policy Policy
	// Assemble enables target-assembly passes (realistic targets); when
	// false the assemble pass is a no-op, matching perfect-qubit targets
	// that execute cQASM directly.
	Assemble bool
	// Assembler lowers the scheduled circuit to the target's executable
	// form, storing the result in Assembled. It is injected by the layer
	// that owns the assembly format — the openql layer injects eQASM
	// assembly, which sits above this package in the import graph.
	Assembler func(*PassContext) error
	// ProgramName labels assembly output.
	ProgramName string
	// Options carries the current pass's spec options (e.g. the
	// lookahead=8 of "map(lookahead=8)"); the pipeline sets it before
	// each pass runs. Nil when the entry carried none.
	Options PassOptions

	// Circuit is the gate stream being rewritten; every pass leaves it
	// valid for the next.
	Circuit *circuit.Circuit
	// MapResult is set by the map pass (nil for all-to-all targets).
	MapResult *MapResult
	// SwapsLowered is set by the lower-swaps pass when it decomposed
	// routing SWAPs; optimize-lowered keys off it.
	SwapsLowered bool
	// Schedule is set by the schedule pass.
	Schedule *Schedule
	// Assembled holds the output of assembly passes registered from
	// higher layers (the openql layer's "assemble" pass stores an
	// *eqasm.Program); the compiler core never inspects it.
	Assembled any
}

// passFunc adapts a function to the Pass interface for the built-ins.
type passFunc struct {
	name string
	fn   func(ctx *PassContext) error
}

func (p passFunc) Name() string               { return p.name }
func (p passFunc) Run(ctx *PassContext) error { return p.fn(ctx) }

// NewPass wraps a named function as a Pass.
func NewPass(name string, fn func(ctx *PassContext) error) Pass {
	return passFunc{name: name, fn: fn}
}

// optionPass is a passFunc that also validates per-pass spec options at
// parse time (see OptionsChecker).
type optionPass struct {
	passFunc
	check func(PassOptions) error
}

func (p optionPass) CheckOptions(opts PassOptions) error { return p.check(opts) }

// NewOptionPass wraps a named function as a Pass whose spec options are
// validated by check when the spec is parsed.
func NewOptionPass(name string, fn func(ctx *PassContext) error, check func(PassOptions) error) Pass {
	return optionPass{passFunc{name: name, fn: fn}, check}
}

var (
	passMu       sync.RWMutex
	passRegistry = map[string]Pass{}
)

// RegisterPass adds a pass to the named-pass registry, making it
// selectable in pass specs. It panics on a duplicate or empty name;
// registration happens at init time.
func RegisterPass(p Pass) {
	name := p.Name()
	if name == "" || strings.ContainsAny(name, ", \t\n") {
		panic(fmt.Sprintf("compiler: invalid pass name %q", name))
	}
	passMu.Lock()
	defer passMu.Unlock()
	if _, dup := passRegistry[name]; dup {
		panic(fmt.Sprintf("compiler: duplicate pass %q", name))
	}
	passRegistry[name] = p
}

// PassByName looks a pass up in the registry.
func PassByName(name string) (Pass, bool) {
	passMu.RLock()
	defer passMu.RUnlock()
	p, ok := passRegistry[name]
	return p, ok
}

// PassNames returns the sorted names of every registered pass.
func PassNames() []string {
	passMu.RLock()
	defer passMu.RUnlock()
	out := make([]string, 0, len(passRegistry))
	for name := range passRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultPassSpec returns the pass sequence equivalent to the classic
// hard-wired compiler flow: decompose to primitives, (optionally)
// optimise, map to the topology, lower routing SWAPs to primitives,
// re-optimise the lowered SWAP chains (optimize-lowered no-ops when
// lower-swaps had nothing to do, exactly like the classic flow),
// schedule, assemble.
func DefaultPassSpec(optimize bool) string {
	if optimize {
		return "decompose,optimize,map,lower-swaps,optimize-lowered,schedule,assemble"
	}
	return "decompose,map,lower-swaps,schedule,assemble"
}

// PassMetrics records one pass execution: wall time plus the circuit-size
// observables that make compile-path hot spots and pass effectiveness
// visible.
type PassMetrics struct {
	Pass        string `json:"pass"`
	WallNs      int64  `json:"wall_ns"`
	GatesBefore int    `json:"gates_before"`
	GatesAfter  int    `json:"gates_after"`
	DepthBefore int    `json:"depth_before"`
	DepthAfter  int    `json:"depth_after"`
	// AddedSwaps is the number of routing SWAPs the pass inserted
	// (nonzero only for mapping passes).
	AddedSwaps int `json:"added_swaps,omitempty"`
}

// CompileReport is the per-pass account of one pipeline execution.
type CompileReport struct {
	PassSpec string        `json:"pass_spec"`
	Passes   []PassMetrics `json:"passes"`
	TotalNs  int64         `json:"total_ns"`
}

// String renders the report as an aligned table, one row per pass.
func (r *CompileReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %14s %14s %6s\n", "pass", "time", "gates", "depth", "swaps")
	for _, m := range r.Passes {
		swaps := "-"
		if m.AddedSwaps > 0 {
			swaps = fmt.Sprintf("%d", m.AddedSwaps)
		}
		fmt.Fprintf(&b, "%-16s %12s %14s %14s %6s\n",
			m.Pass, time.Duration(m.WallNs).String(),
			fmt.Sprintf("%d → %d", m.GatesBefore, m.GatesAfter),
			fmt.Sprintf("%d → %d", m.DepthBefore, m.DepthAfter),
			swaps)
	}
	fmt.Fprintf(&b, "%-16s %12s\n", "total", time.Duration(r.TotalNs).String())
	return b.String()
}

// Pipeline is an ordered, named pass list — the configurable compiler of
// the pass-manager architecture. Build one with NewPipeline and execute
// it with Run; a Pipeline is immutable and safe for concurrent Run calls
// on distinct contexts.
type Pipeline struct {
	Spec   string
	passes []BoundPass
}

// NewPipeline parses a pass spec — including per-pass options such as
// "map(lookahead=8,strategy=noise)" — into an executable pipeline.
func NewPipeline(spec string) (*Pipeline, error) {
	passes, err := ResolveSpec(spec)
	if err != nil {
		return nil, err
	}
	return &Pipeline{Spec: spec, passes: passes}, nil
}

// Passes returns the pipeline's pass names in execution order.
func (pl *Pipeline) Passes() []string {
	out := make([]string, len(pl.passes))
	for i, p := range pl.passes {
		out[i] = p.Pass.Name()
	}
	return out
}

// Run executes the pipeline over the context, recording per-pass wall
// time, gate count, depth and added SWAPs. On error it reports which pass
// failed.
func (pl *Pipeline) Run(ctx *PassContext) (*CompileReport, error) {
	if ctx.Platform == nil {
		return nil, fmt.Errorf("compiler: pipeline %q run without a platform", pl.Spec)
	}
	if ctx.Circuit == nil {
		return nil, fmt.Errorf("compiler: pipeline %q run without a circuit", pl.Spec)
	}
	report := &CompileReport{PassSpec: pl.Spec, Passes: make([]PassMetrics, 0, len(pl.passes))}
	// Nothing mutates the circuit between passes, so each pass's before
	// metrics are the previous pass's after metrics — one depth scan per
	// pass instead of two on this instrumented hot path.
	gates, depth := len(ctx.Circuit.Gates), ctx.Circuit.Depth()
	for _, bp := range pl.passes {
		p := bp.Pass
		m := PassMetrics{
			Pass:        p.Name(),
			GatesBefore: gates,
			DepthBefore: depth,
		}
		swapsBefore := 0
		if ctx.MapResult != nil {
			swapsBefore = ctx.MapResult.AddedSwaps
		}
		ctx.Options = bp.Options
		start := time.Now()
		if err := p.Run(ctx); err != nil {
			return nil, fmt.Errorf("compiler: pass %q: %w", p.Name(), err)
		}
		m.WallNs = time.Since(start).Nanoseconds()
		gates, depth = len(ctx.Circuit.Gates), ctx.Circuit.Depth()
		m.GatesAfter = gates
		m.DepthAfter = depth
		if ctx.MapResult != nil {
			m.AddedSwaps = ctx.MapResult.AddedSwaps - swapsBefore
		}
		report.TotalNs += m.WallNs
		report.Passes = append(report.Passes, m)
	}
	return report, nil
}
