package compiler

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/circuit"
)

// Pass is one retargetable stage of the compiler pipeline (Fig 4): it
// reads and rewrites the artefacts carried by a PassContext. Passes must
// be stateless — one registered instance is shared by every concurrent
// compilation — with all per-run configuration read from the context.
type Pass interface {
	Name() string
	Run(ctx *PassContext) error
}

// PassContext carries the artefacts a compilation accumulates as it moves
// down the pipeline: the circuit being rewritten plus the mapping,
// schedule and assembly outputs, alongside the immutable target
// configuration the passes read.
type PassContext struct {
	// Platform is the compilation target; never nil.
	Platform *Platform
	// Mapping configures the map pass.
	Mapping MapOptions
	// Policy configures the schedule pass.
	Policy Policy
	// Assemble enables target-assembly passes (realistic targets); when
	// false the assemble pass is a no-op, matching perfect-qubit targets
	// that execute cQASM directly.
	Assemble bool
	// Assembler lowers the scheduled circuit to the target's executable
	// form, storing the result in Assembled. It is injected by the layer
	// that owns the assembly format — the openql layer injects eQASM
	// assembly, which sits above this package in the import graph.
	Assembler func(*PassContext) error
	// ProgramName labels assembly output.
	ProgramName string
	// Options carries the current pass's spec options (e.g. the
	// lookahead=8 of "map(lookahead=8)"); the pipeline sets it before
	// each pass runs. Nil when the entry carried none.
	Options PassOptions

	// Circuit is the gate stream being rewritten; every pass leaves it
	// valid for the next.
	Circuit *circuit.Circuit
	// MapResult is set by the map pass (nil for all-to-all targets).
	MapResult *MapResult
	// SwapsLowered is set by the lower-swaps pass when it decomposed
	// routing SWAPs; optimize-lowered keys off it.
	SwapsLowered bool
	// Schedule is set by the schedule pass.
	Schedule *Schedule
	// Assembled holds the output of assembly passes registered from
	// higher layers (the openql layer's "assemble" pass stores an
	// *eqasm.Program); the compiler core never inspects it.
	Assembled any
}

// passFunc adapts a function to the Pass interface for the built-ins.
type passFunc struct {
	name string
	fn   func(ctx *PassContext) error
}

func (p passFunc) Name() string               { return p.name }
func (p passFunc) Run(ctx *PassContext) error { return p.fn(ctx) }

// NewPass wraps a named function as a Pass.
func NewPass(name string, fn func(ctx *PassContext) error) Pass {
	return passFunc{name: name, fn: fn}
}

// optionPass is a passFunc that also validates per-pass spec options at
// parse time (see OptionsChecker).
type optionPass struct {
	passFunc
	check func(PassOptions) error
}

func (p optionPass) CheckOptions(opts PassOptions) error { return p.check(opts) }

// NewOptionPass wraps a named function as a Pass whose spec options are
// validated by check when the spec is parsed.
func NewOptionPass(name string, fn func(ctx *PassContext) error, check func(PassOptions) error) Pass {
	return optionPass{passFunc{name: name, fn: fn}, check}
}

// platformGeneric is the marker interface of passes whose output depends
// only on the circuit and the platform's native gate set (Platform.Gates
// / Platform.Supports) — never on topology, timings, control limits,
// calibration data, mapping or scheduling configuration. The leading run
// of such passes is the cacheable prefix of a pipeline (see
// Pipeline.Split and PrefixArtefact).
type platformGeneric interface {
	PlatformGeneric()
}

// genericPass is a passFunc marked platform-generic.
type genericPass struct{ passFunc }

func (genericPass) PlatformGeneric() {}

// NewGenericPass wraps a named function as a platform-generic Pass. Only
// mark a pass generic when its Run reads nothing from the PassContext
// beyond Circuit and the platform's gate set: generic passes are cached
// across mapping, scheduling and calibration variants, so any hidden
// dependency would serve stale artefacts.
func NewGenericPass(name string, fn func(ctx *PassContext) error) Pass {
	return genericPass{passFunc{name: name, fn: fn}}
}

// IsGeneric reports whether a pass is marked platform-generic.
func IsGeneric(p Pass) bool {
	_, ok := p.(platformGeneric)
	return ok
}

var (
	passMu       sync.RWMutex
	passRegistry = map[string]Pass{}
)

// RegisterPass adds a pass to the named-pass registry, making it
// selectable in pass specs. It panics on a duplicate or empty name;
// registration happens at init time.
func RegisterPass(p Pass) {
	name := p.Name()
	if name == "" || strings.ContainsAny(name, ", \t\n") {
		panic(fmt.Sprintf("compiler: invalid pass name %q", name))
	}
	passMu.Lock()
	defer passMu.Unlock()
	if _, dup := passRegistry[name]; dup {
		panic(fmt.Sprintf("compiler: duplicate pass %q", name))
	}
	passRegistry[name] = p
}

// PassByName looks a pass up in the registry.
func PassByName(name string) (Pass, bool) {
	passMu.RLock()
	defer passMu.RUnlock()
	p, ok := passRegistry[name]
	return p, ok
}

// PassNames returns the sorted names of every registered pass.
func PassNames() []string {
	passMu.RLock()
	defer passMu.RUnlock()
	out := make([]string, 0, len(passRegistry))
	for name := range passRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultPassSpec returns the pass sequence equivalent to the classic
// hard-wired compiler flow: decompose to primitives, (optionally)
// optimise, map to the topology, lower routing SWAPs to primitives,
// re-optimise the lowered SWAP chains (optimize-lowered no-ops when
// lower-swaps had nothing to do, exactly like the classic flow),
// schedule, assemble.
func DefaultPassSpec(optimize bool) string {
	if optimize {
		return "decompose,optimize,map,lower-swaps,optimize-lowered,schedule,assemble"
	}
	return "decompose,map,lower-swaps,schedule,assemble"
}

// PassMetrics records one pass execution: wall time plus the circuit-size
// observables that make compile-path hot spots and pass effectiveness
// visible.
type PassMetrics struct {
	Pass        string `json:"pass"`
	WallNs      int64  `json:"wall_ns"`
	GatesBefore int    `json:"gates_before"`
	GatesAfter  int    `json:"gates_after"`
	DepthBefore int    `json:"depth_before"`
	DepthAfter  int    `json:"depth_after"`
	// AddedSwaps is the number of routing SWAPs the pass inserted
	// (nonzero only for mapping passes).
	AddedSwaps int `json:"added_swaps,omitempty"`
}

// KernelCompile records one kernel's trip through the platform-generic
// prefix of the pipeline when a program compiles kernel-by-kernel.
type KernelCompile struct {
	Kernel string `json:"kernel"`
	// PrefixCached marks the kernel's prefix artefact as served from the
	// prefix cache — the prefix passes did not run for it.
	PrefixCached bool `json:"prefix_cached,omitempty"`
	// WallNs is the kernel's prefix compile time (0 on a cache hit).
	WallNs int64 `json:"wall_ns"`
	// Passes are the kernel's prefix pass metrics (absent on cache hits).
	Passes []PassMetrics `json:"passes,omitempty"`
}

// CompileReport is the per-pass account of one pipeline execution. When
// the program compiled kernel-by-kernel (a non-empty platform-generic
// prefix), the prefix rows in Passes aggregate over the kernels that
// actually ran the prefix — gate counts, depths and wall time summed —
// while Kernels carries the per-kernel breakdown and PrefixHits counts
// the kernels whose artefact came from the prefix cache (their pass
// metrics are excluded from Passes: nothing ran for them).
type CompileReport struct {
	PassSpec string        `json:"pass_spec"`
	Passes   []PassMetrics `json:"passes"`
	TotalNs  int64         `json:"total_ns"`
	// PrefixSpec is the canonical spec of the pipeline's platform-generic
	// prefix (empty when the pipeline has none or compiled in one shot).
	PrefixSpec string `json:"prefix_spec,omitempty"`
	// PrefixHits counts kernels served from the prefix cache.
	PrefixHits int `json:"prefix_hits,omitempty"`
	// CompileWorkers is the kernel-compile parallelism the compilation
	// ran with (0 when it compiled in one shot).
	CompileWorkers int `json:"compile_workers,omitempty"`
	// Kernels is the per-kernel prefix account, in program order.
	Kernels []KernelCompile `json:"kernels,omitempty"`
}

// String renders the report as an aligned table, one row per pass, plus
// a prefix-cache summary line when the program compiled kernel-by-kernel.
func (r *CompileReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %14s %14s %6s\n", "pass", "time", "gates", "depth", "swaps")
	for _, m := range r.Passes {
		swaps := "-"
		if m.AddedSwaps > 0 {
			swaps = fmt.Sprintf("%d", m.AddedSwaps)
		}
		fmt.Fprintf(&b, "%-16s %12s %14s %14s %6s\n",
			m.Pass, time.Duration(m.WallNs).String(),
			fmt.Sprintf("%d → %d", m.GatesBefore, m.GatesAfter),
			fmt.Sprintf("%d → %d", m.DepthBefore, m.DepthAfter),
			swaps)
	}
	fmt.Fprintf(&b, "%-16s %12s\n", "total", time.Duration(r.TotalNs).String())
	if len(r.Kernels) > 0 {
		fmt.Fprintf(&b, "kernels %d  prefix %q  cache hits %d/%d  workers %d\n",
			len(r.Kernels), r.PrefixSpec, r.PrefixHits, len(r.Kernels), r.CompileWorkers)
	}
	return b.String()
}

// Pipeline is an ordered, named pass list — the configurable compiler of
// the pass-manager architecture. Build one with NewPipeline and execute
// it with Run; a Pipeline is immutable and safe for concurrent Run calls
// on distinct contexts.
type Pipeline struct {
	Spec   string
	passes []BoundPass
}

// NewPipeline parses a pass spec — including per-pass options such as
// "map(lookahead=8,strategy=noise)" — into an executable pipeline.
func NewPipeline(spec string) (*Pipeline, error) {
	passes, err := ResolveSpec(spec)
	if err != nil {
		return nil, err
	}
	return &Pipeline{Spec: spec, passes: passes}, nil
}

// Passes returns the pipeline's pass names in execution order.
func (pl *Pipeline) Passes() []string {
	out := make([]string, len(pl.passes))
	for i, p := range pl.passes {
		out[i] = p.Pass.Name()
	}
	return out
}

// Len returns the number of passes in the pipeline.
func (pl *Pipeline) Len() int { return len(pl.passes) }

// Split partitions the pipeline into its platform-generic prefix — the
// longest leading run of passes marked generic (see NewGenericPass) —
// and the variant suffix (mapping, scheduling, assembly: everything
// that depends on topology, timings, calibration or per-variant
// options). Both halves are executable pipelines over the same bound
// passes; their Spec fields are canonical renderings (options sorted by
// key), so equivalent spellings of a prefix produce equal cache keys.
// Either half may be empty (Len 0); running an empty pipeline is a
// no-op that returns an empty report.
func (pl *Pipeline) Split() (prefix, suffix *Pipeline) {
	n := 0
	for _, bp := range pl.passes {
		if !IsGeneric(bp.Pass) {
			break
		}
		n++
	}
	return pl.slice(0, n), pl.slice(n, len(pl.passes))
}

// slice returns the sub-pipeline over passes[i:j] with a canonical spec.
func (pl *Pipeline) slice(i, j int) *Pipeline {
	sub := pl.passes[i:j]
	return &Pipeline{Spec: canonicalSpec(sub), passes: sub}
}

// canonicalSpec renders bound passes back to a normalized spec string:
// comma-separated names with options sorted by key, no whitespace.
func canonicalSpec(passes []BoundPass) string {
	var b strings.Builder
	for i, bp := range passes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(bp.Pass.Name())
		if len(bp.Options) > 0 {
			keys := make([]string, 0, len(bp.Options))
			for k := range bp.Options {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteByte('(')
			for j, k := range keys {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(k)
				b.WriteByte('=')
				b.WriteString(bp.Options[k])
			}
			b.WriteByte(')')
		}
	}
	return b.String()
}

// Run executes the pipeline over the context, recording per-pass wall
// time, gate count, depth and added SWAPs. On error it reports which pass
// failed.
func (pl *Pipeline) Run(ctx *PassContext) (*CompileReport, error) {
	if ctx.Platform == nil {
		return nil, fmt.Errorf("compiler: pipeline %q run without a platform", pl.Spec)
	}
	if ctx.Circuit == nil {
		return nil, fmt.Errorf("compiler: pipeline %q run without a circuit", pl.Spec)
	}
	report := &CompileReport{PassSpec: pl.Spec, Passes: make([]PassMetrics, 0, len(pl.passes))}
	if len(pl.passes) == 0 {
		return report, nil
	}
	// Nothing mutates the circuit between passes, so each pass's before
	// metrics are the previous pass's after metrics — one depth scan per
	// pass instead of two on this instrumented hot path.
	gates, depth := len(ctx.Circuit.Gates), ctx.Circuit.Depth()
	for _, bp := range pl.passes {
		p := bp.Pass
		m := PassMetrics{
			Pass:        p.Name(),
			GatesBefore: gates,
			DepthBefore: depth,
		}
		swapsBefore := 0
		if ctx.MapResult != nil {
			swapsBefore = ctx.MapResult.AddedSwaps
		}
		ctx.Options = bp.Options
		start := time.Now()
		if err := p.Run(ctx); err != nil {
			return nil, fmt.Errorf("compiler: pass %q: %w", p.Name(), err)
		}
		m.WallNs = time.Since(start).Nanoseconds()
		gates, depth = len(ctx.Circuit.Gates), ctx.Circuit.Depth()
		m.GatesAfter = gates
		m.DepthAfter = depth
		if ctx.MapResult != nil {
			m.AddedSwaps = ctx.MapResult.AddedSwaps - swapsBefore
		}
		report.TotalNs += m.WallNs
		report.Passes = append(report.Passes, m)
	}
	return report, nil
}
