package compiler

import (
	"math"

	"repro/internal/circuit"
)

// FoldRotations merges z-axis rotations separated by gates they commute
// with — a commutation-aware optimisation strictly stronger than the
// peephole rotation merge, which stops at the first intervening gate on
// the same qubit. An rz commutes with every computational-basis-diagonal
// gate on its qubit (z, s, t, rz, cz, cphase, crz and their inverses) and
// with a CNOT that uses the qubit as control, so patterns like
//
//	rz q[0]; cnot q[0], q[1]; rz q[0]
//
// fold into one rotation. Folding runs to a fixpoint together with
// zero-angle removal; the input circuit is not modified.
func FoldRotations(c *circuit.Circuit) *circuit.Circuit {
	gates := make([]circuit.Gate, len(c.Gates))
	for i, g := range c.Gates {
		gates[i] = g.Clone()
	}
	removed := make([]bool, len(gates))
	for i := 0; i < len(gates); i++ {
		if removed[i] || gates[i].Name != "rz" || gates[i].HasCond {
			continue
		}
		q := gates[i].Qubits[0]
	scan:
		for j := i + 1; j < len(gates); j++ {
			if removed[j] {
				continue
			}
			o := gates[j]
			switch o.Name {
			case circuit.OpBarrier, circuit.OpMeasureAll:
				break scan
			}
			if !gateTouches(o, q) {
				continue
			}
			// Conditional gates fire data-dependently; treat them as
			// commutation barriers on their qubits.
			if o.HasCond {
				break
			}
			if o.Name == "rz" && o.Qubits[0] == q {
				if gates[i].Symbolic(0) || o.Symbolic(0) {
					// Folding symbolic with literal z-rotations keeps a
					// symbolic sum; literals land in the constant term.
					setSlot(&gates[i], 0, slotExpr(gates[i], 0).Add(slotExpr(o, 0)))
				} else {
					gates[i].Params[0] += o.Params[0]
				}
				removed[j] = true
				continue
			}
			if !commutesWithRZ(o, q) {
				break
			}
		}
	}
	out := circuit.New(c.Name, c.NumQubits)
	for i, g := range gates {
		if removed[i] {
			continue
		}
		if g.Name == "rz" && !g.HasCond && !g.Symbolic(0) && math.Abs(normalizeAngle(g.Params[0])) < 1e-12 {
			continue
		}
		out.AddGate(g)
	}
	return out
}

// zDiagonalGates are unitaries diagonal in the computational basis: they
// commute with rz on any of their qubits.
var zDiagonalGates = map[string]bool{
	"i": true, "z": true, "s": true, "sdag": true, "t": true, "tdag": true,
	"rz": true, "phase": true, "cz": true, "cphase": true, "crz": true,
}

// commutesWithRZ reports whether gate o commutes with an rz on qubit q
// (o is known to touch q). Non-unitary operations never commute here:
// folding a phase across a measurement would change the post-measurement
// state seen by later gates.
func commutesWithRZ(o circuit.Gate, q int) bool {
	if !o.IsUnitary() {
		return false
	}
	if zDiagonalGates[o.Name] {
		return true
	}
	// CNOT is diagonal on its control: |0⟩⟨0|⊗I + |1⟩⟨1|⊗X.
	if o.Name == "cnot" && o.Qubits[0] == q {
		return true
	}
	return false
}

// gateTouches reports whether the gate operates on qubit q.
func gateTouches(g circuit.Gate, q int) bool {
	for _, gq := range g.Qubits {
		if gq == q {
			return true
		}
	}
	return false
}
