package compiler

import (
	"math"

	"repro/internal/circuit"
)

// FoldRotations merges z-axis rotations separated by gates they commute
// with — a commutation-aware optimisation strictly stronger than the
// peephole rotation merge, which stops at the first intervening gate on
// the same qubit. Commutation is driven by zCommutationTable: an rz
// commutes with every computational-basis-diagonal gate on its qubit
// (z, s, t, rz, cz, cphase, crz and their inverses) and with a
// controlled gate that uses the qubit as a control (cnot, toffoli,
// fredkin), so patterns like
//
//	rz q[0]; cnot q[0], q[1]; rz q[0]
//
// fold into one rotation. Folding runs to a fixpoint together with
// zero-angle removal; the input circuit is not modified.
func FoldRotations(c *circuit.Circuit) *circuit.Circuit {
	gates := make([]circuit.Gate, len(c.Gates))
	for i, g := range c.Gates {
		gates[i] = g.Clone()
	}
	removed := make([]bool, len(gates))
	for i := 0; i < len(gates); i++ {
		if removed[i] || gates[i].Name != "rz" || gates[i].HasCond {
			continue
		}
		q := gates[i].Qubits[0]
	scan:
		for j := i + 1; j < len(gates); j++ {
			if removed[j] {
				continue
			}
			o := gates[j]
			switch o.Name {
			case circuit.OpBarrier, circuit.OpMeasureAll:
				break scan
			}
			if !gateTouches(o, q) {
				continue
			}
			// Conditional gates fire data-dependently; treat them as
			// commutation barriers on their qubits.
			if o.HasCond {
				break
			}
			if o.Name == "rz" && o.Qubits[0] == q {
				if gates[i].Symbolic(0) || o.Symbolic(0) {
					// Folding symbolic with literal z-rotations keeps a
					// symbolic sum; literals land in the constant term.
					setSlot(&gates[i], 0, slotExpr(gates[i], 0).Add(slotExpr(o, 0)))
				} else {
					gates[i].Params[0] += o.Params[0]
				}
				removed[j] = true
				continue
			}
			if !commutesWithRZ(o, q) {
				break
			}
		}
	}
	out := circuit.New(c.Name, c.NumQubits)
	for i, g := range gates {
		if removed[i] {
			continue
		}
		if g.Name == "rz" && !g.HasCond && !g.Symbolic(0) && math.Abs(normalizeAngle(g.Params[0])) < 1e-12 {
			continue
		}
		out.AddGate(g)
	}
	return out
}

// zCommute describes on which operand positions a unitary gate commutes
// with a z-rotation: either everywhere (the gate is diagonal in the
// computational basis) or on its leading control operands (the gate is
// block-diagonal there — |0⟩⟨0|⊗I + |1⟩⟨1|⊗U, so any z-diagonal phase
// on a control passes through).
type zCommute struct {
	all      bool // diagonal: commutes with rz on every operand
	controls int  // otherwise: the first `controls` operands are controls
}

// zCommutationTable is the gate-commutation table the fold pass consults.
// A gate absent from the table conservatively commutes nowhere. New
// registry gates that are diagonal or control-diagonal extend the fold's
// reach by adding one entry here — no pass logic changes.
var zCommutationTable = map[string]zCommute{
	// Diagonal in the computational basis.
	"i": {all: true}, "z": {all: true},
	"s": {all: true}, "sdag": {all: true},
	"t": {all: true}, "tdag": {all: true},
	"rz": {all: true}, "phase": {all: true},
	"cz": {all: true}, "cphase": {all: true}, "crz": {all: true},
	// Control-diagonal: diagonal on the control operand(s) only.
	"cnot":    {controls: 1},
	"toffoli": {controls: 2},
	"fredkin": {controls: 1},
}

// commutesWithRZ reports whether gate o commutes with an rz on qubit q
// (o is known to touch q), per the commutation table. Non-unitary
// operations never commute here: folding a phase across a measurement
// would change the post-measurement state seen by later gates.
func commutesWithRZ(o circuit.Gate, q int) bool {
	if !o.IsUnitary() {
		return false
	}
	zc, ok := zCommutationTable[o.Name]
	if !ok {
		return false
	}
	if zc.all {
		return true
	}
	for i := 0; i < zc.controls && i < len(o.Qubits); i++ {
		if o.Qubits[i] == q {
			return true
		}
	}
	return false
}

// gateTouches reports whether the gate operates on qubit q.
func gateTouches(g circuit.Gate, q int) bool {
	for _, gq := range g.Qubits {
		if gq == q {
			return true
		}
	}
	return false
}
