package compiler

// Built-in passes: the classic decompose/optimize/map/schedule stages of
// the hard-wired compiler, each wrapped as a registry entry so pipelines
// can reorder, repeat or omit them per compilation.

import (
	"fmt"
	"sort"
)

func init() {
	// decompose, optimize and fold-rotations are platform-generic: their
	// output depends only on the circuit and the native gate set, so a
	// leading run of them forms the cacheable prefix of a pipeline (see
	// Pipeline.Split). Everything from mapping onward is variant-specific
	// — topology, calibration, scheduling policy, per-pass options.
	RegisterPass(NewGenericPass("decompose", runDecompose))
	RegisterPass(NewGenericPass("optimize", runOptimize))
	RegisterPass(NewOptionPass("map", runMap, checkMapOptions(true)))
	RegisterPass(NewOptionPass("map-noise", runMapNoise, checkMapOptions(false)))
	RegisterPass(NewPass("lower-swaps", runLowerSwaps))
	RegisterPass(NewPass("optimize-lowered", runOptimizeLowered))
	RegisterPass(NewGenericPass("fold-rotations", runFoldRotations))
	RegisterPass(NewPass("schedule", runSchedule))
	RegisterPass(NewPass("assemble", runAssemble))
}

// runDecompose rewrites every gate the platform does not support natively
// into supported primitives.
func runDecompose(ctx *PassContext) error {
	c, err := Decompose(ctx.Circuit, ctx.Platform)
	if err != nil {
		return err
	}
	ctx.Circuit = c
	return nil
}

// runOptimize applies the peephole trio (pair cancellation, rotation
// merging, identity removal) to a fixpoint.
func runOptimize(ctx *PassContext) error {
	ctx.Circuit = Optimize(ctx.Circuit)
	return nil
}

// runFoldRotations applies the commutation-aware z-rotation folding pass.
func runFoldRotations(ctx *PassContext) error {
	ctx.Circuit = FoldRotations(ctx.Circuit)
	return nil
}

// mapOptionsFrom overlays a map pass's spec options onto the base
// MapOptions from the context and resolves the routing strategy:
// placement=trivial|greedy, lookahead=<bool|window>, window=<int>,
// strategy=hop|noise.
func mapOptionsFrom(base MapOptions, o PassOptions, allowStrategy bool) (MapOptions, string, error) {
	opts := base
	strategy := "hop"
	// Validate keys in sorted order so the reported unknown option is
	// deterministic when a spec carries several.
	keys := make([]string, 0, len(o))
	for key := range o {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		switch key {
		case "placement", "lookahead", "window":
		case "strategy":
			if !allowStrategy {
				return opts, "", fmt.Errorf("unknown option %q (available: placement, lookahead, window)", key)
			}
		default:
			avail := "placement, lookahead, window"
			if allowStrategy {
				avail += ", strategy"
			}
			return opts, "", fmt.Errorf("unknown option %q (available: %s)", key, avail)
		}
	}
	switch v := o.String("placement", ""); v {
	case "":
	case "trivial":
		opts.Placement = TrivialPlacement
	case "greedy":
		opts.Placement = GreedyPlacement
	default:
		return opts, "", fmt.Errorf("option placement=%q is not trivial or greedy", v)
	}
	if v, ok := o["lookahead"]; ok {
		// lookahead=8 enables lookahead routing with that window;
		// lookahead=true/false toggles it with the default window.
		if n, err := o.Int("lookahead", 0); err == nil {
			if n <= 0 {
				return opts, "", fmt.Errorf("option lookahead=%q must be a positive window", v)
			}
			opts.Lookahead = true
			opts.LookaheadWindow = n
		} else if b, berr := o.Bool("lookahead", false); berr == nil {
			opts.Lookahead = b
		} else {
			return opts, "", fmt.Errorf("option lookahead=%q is neither a window size nor a boolean", v)
		}
	}
	if n, err := o.Int("window", 0); err != nil {
		return opts, "", err
	} else if n != 0 {
		if n < 0 {
			return opts, "", fmt.Errorf("option window=%d must be positive", n)
		}
		opts.LookaheadWindow = n
	}
	switch v := o.String("strategy", "hop"); v {
	case "hop", "noise":
		strategy = v
	default:
		return opts, "", fmt.Errorf("option strategy=%q is not hop or noise", v)
	}
	return opts, strategy, nil
}

// checkMapOptions validates a map pass's options at spec-parse time.
func checkMapOptions(allowStrategy bool) func(PassOptions) error {
	return func(o PassOptions) error {
		_, _, err := mapOptionsFrom(MapOptions{}, o, allowStrategy)
		return err
	}
}

// runMap places logical qubits onto the platform topology and routes
// two-qubit gates with SWAP chains; with strategy=noise it weighs
// routing by the device calibration. All-to-all targets skip the pass
// entirely (MapResult stays nil), preserving the classic compiler's
// behaviour of mapping only constrained topologies.
func runMap(ctx *PassContext) error {
	if ctx.Platform.Topology == nil {
		return nil
	}
	opts, strategy, err := mapOptionsFrom(ctx.Mapping, ctx.Options, true)
	if err != nil {
		return err
	}
	var mr *MapResult
	if strategy == "noise" {
		mr, err = MapCircuitNoise(ctx.Circuit, ctx.Platform, opts)
	} else {
		mr, err = MapCircuit(ctx.Circuit, ctx.Platform, opts)
	}
	if err != nil {
		return err
	}
	ctx.MapResult = mr
	ctx.Circuit = mr.Circuit
	return nil
}

// runMapNoise is the noise-aware mapping pass: placement and routing
// weighted by calibration edge fidelity instead of hop count (see
// MapCircuitNoise). Equivalent to map(strategy=noise).
func runMapNoise(ctx *PassContext) error {
	if ctx.Platform.Topology == nil {
		return nil
	}
	opts, _, err := mapOptionsFrom(ctx.Mapping, ctx.Options, false)
	if err != nil {
		return err
	}
	mr, err := MapCircuitNoise(ctx.Circuit, ctx.Platform, opts)
	if err != nil {
		return err
	}
	ctx.MapResult = mr
	ctx.Circuit = mr.Circuit
	return nil
}

// runLowerSwaps decomposes the SWAPs inserted by routing into platform
// primitives. The decomposition acts on the same adjacent pair, so the
// nearest-neighbour constraint is preserved. A no-op before mapping or on
// platforms with a native swap.
func runLowerSwaps(ctx *PassContext) error {
	if ctx.MapResult == nil || ctx.Platform.Supports("swap") {
		return nil
	}
	c, err := Decompose(ctx.Circuit, ctx.Platform)
	if err != nil {
		return err
	}
	ctx.Circuit = c
	ctx.SwapsLowered = true
	return nil
}

// runOptimizeLowered re-runs the peephole optimiser, but only when a
// preceding lower-swaps pass actually lowered routing SWAPs — the classic
// compiler re-optimised exactly the lowered SWAP chains, and on targets
// with a native swap (or no topology) it left the routed circuit alone.
func runOptimizeLowered(ctx *PassContext) error {
	if !ctx.SwapsLowered {
		return nil
	}
	ctx.Circuit = Optimize(ctx.Circuit)
	return nil
}

// runSchedule assigns start cycles under the platform's gate durations
// and control-channel limits.
func runSchedule(ctx *PassContext) error {
	sched, err := ScheduleCircuit(ctx.Circuit, ctx.Platform, ctx.Policy)
	if err != nil {
		return err
	}
	ctx.Schedule = sched
	return nil
}

// runAssemble lowers the scheduled circuit to the target's executable
// form through the injected Assembler (eQASM for realistic stacks). A
// no-op on perfect targets, which execute cQASM directly, so one
// pipeline spec serves both qubit modes.
func runAssemble(ctx *PassContext) error {
	if !ctx.Assemble {
		return nil
	}
	if ctx.Assembler == nil {
		return fmt.Errorf("no assembler injected for an assembly-enabled target")
	}
	if ctx.Schedule == nil {
		return fmt.Errorf("assemble requires a schedule; put the \"schedule\" pass first")
	}
	return ctx.Assembler(ctx)
}
