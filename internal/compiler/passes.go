package compiler

// Built-in passes: the classic decompose/optimize/map/schedule stages of
// the hard-wired compiler, each wrapped as a registry entry so pipelines
// can reorder, repeat or omit them per compilation.

import "fmt"

func init() {
	RegisterPass(NewPass("decompose", runDecompose))
	RegisterPass(NewPass("optimize", runOptimize))
	RegisterPass(NewPass("map", runMap))
	RegisterPass(NewPass("lower-swaps", runLowerSwaps))
	RegisterPass(NewPass("optimize-lowered", runOptimizeLowered))
	RegisterPass(NewPass("fold-rotations", runFoldRotations))
	RegisterPass(NewPass("schedule", runSchedule))
	RegisterPass(NewPass("assemble", runAssemble))
}

// runDecompose rewrites every gate the platform does not support natively
// into supported primitives.
func runDecompose(ctx *PassContext) error {
	c, err := Decompose(ctx.Circuit, ctx.Platform)
	if err != nil {
		return err
	}
	ctx.Circuit = c
	return nil
}

// runOptimize applies the peephole trio (pair cancellation, rotation
// merging, identity removal) to a fixpoint.
func runOptimize(ctx *PassContext) error {
	ctx.Circuit = Optimize(ctx.Circuit)
	return nil
}

// runFoldRotations applies the commutation-aware z-rotation folding pass.
func runFoldRotations(ctx *PassContext) error {
	ctx.Circuit = FoldRotations(ctx.Circuit)
	return nil
}

// runMap places logical qubits onto the platform topology and routes
// two-qubit gates with SWAP chains. All-to-all targets skip the pass
// entirely (MapResult stays nil), preserving the classic compiler's
// behaviour of mapping only constrained topologies.
func runMap(ctx *PassContext) error {
	if ctx.Platform.Topology == nil {
		return nil
	}
	mr, err := MapCircuit(ctx.Circuit, ctx.Platform, ctx.Mapping)
	if err != nil {
		return err
	}
	ctx.MapResult = mr
	ctx.Circuit = mr.Circuit
	return nil
}

// runLowerSwaps decomposes the SWAPs inserted by routing into platform
// primitives. The decomposition acts on the same adjacent pair, so the
// nearest-neighbour constraint is preserved. A no-op before mapping or on
// platforms with a native swap.
func runLowerSwaps(ctx *PassContext) error {
	if ctx.MapResult == nil || ctx.Platform.Supports("swap") {
		return nil
	}
	c, err := Decompose(ctx.Circuit, ctx.Platform)
	if err != nil {
		return err
	}
	ctx.Circuit = c
	ctx.SwapsLowered = true
	return nil
}

// runOptimizeLowered re-runs the peephole optimiser, but only when a
// preceding lower-swaps pass actually lowered routing SWAPs — the classic
// compiler re-optimised exactly the lowered SWAP chains, and on targets
// with a native swap (or no topology) it left the routed circuit alone.
func runOptimizeLowered(ctx *PassContext) error {
	if !ctx.SwapsLowered {
		return nil
	}
	ctx.Circuit = Optimize(ctx.Circuit)
	return nil
}

// runSchedule assigns start cycles under the platform's gate durations
// and control-channel limits.
func runSchedule(ctx *PassContext) error {
	sched, err := ScheduleCircuit(ctx.Circuit, ctx.Platform, ctx.Policy)
	if err != nil {
		return err
	}
	ctx.Schedule = sched
	return nil
}

// runAssemble lowers the scheduled circuit to the target's executable
// form through the injected Assembler (eQASM for realistic stacks). A
// no-op on perfect targets, which execute cQASM directly, so one
// pipeline spec serves both qubit modes.
func runAssemble(ctx *PassContext) error {
	if !ctx.Assemble {
		return nil
	}
	if ctx.Assembler == nil {
		return fmt.Errorf("no assembler injected for an assembly-enabled target")
	}
	if ctx.Schedule == nil {
		return fmt.Errorf("assemble requires a schedule; put the \"schedule\" pass first")
	}
	return ctx.Assembler(ctx)
}
