package compiler

import "repro/internal/circuit"

// slotExpr returns the value of parameter slot i of g as an expression:
// the attached symbolic expression, or a constant wrapping the literal.
func slotExpr(g circuit.Gate, i int) *circuit.ParamExpr {
	if g.Symbolic(i) {
		return g.Exprs[i]
	}
	return circuit.Lit(g.Params[i])
}

// setSlot writes expression e into parameter slot i of g: constant
// expressions collapse back to a plain literal (dropping the Exprs slice
// when no symbolic slot remains), symbolic ones install the expression
// with a 0 placeholder literal.
func setSlot(g *circuit.Gate, i int, e *circuit.ParamExpr) {
	if e.IsConst() {
		g.Params[i] = 0
		if e != nil {
			g.Params[i] = e.Const
		}
		if g.Exprs != nil {
			g.Exprs[i] = nil
			if !g.IsParametric() {
				g.Exprs = nil
			}
		}
		return
	}
	g.Params[i] = 0
	if g.Exprs == nil {
		g.Exprs = make([]*circuit.ParamExpr, len(g.Params))
	}
	g.Exprs[i] = e
}
