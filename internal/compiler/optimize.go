package compiler

import (
	"math"

	"repro/internal/circuit"
)

// Optimize applies peephole optimisations to a fixpoint: cancellation of
// adjacent self-inverse pairs, merging of consecutive rotations about the
// same axis, and removal of identity gates and zero-angle rotations.
// "Adjacent" means no intervening gate touches any of the pair's qubits.
func Optimize(c *circuit.Circuit) *circuit.Circuit {
	out := c.Clone()
	for {
		n := len(out.Gates)
		out = cancelPairs(out)
		out = mergeRotations(out)
		out = dropIdentities(out)
		if len(out.Gates) == n {
			return out
		}
	}
}

var selfInversePairs = map[string]string{
	"x": "x", "y": "y", "z": "z", "h": "h", "i": "i",
	"cnot": "cnot", "cz": "cz", "swap": "swap",
	"toffoli": "toffoli", "fredkin": "fredkin",
	"s": "sdag", "sdag": "s", "t": "tdag", "tdag": "t",
	"x90": "mx90", "mx90": "x90", "y90": "my90", "my90": "y90",
	"iswap": "iswapdag", "iswapdag": "iswap",
}

var rotationGates = map[string]bool{"rx": true, "ry": true, "rz": true, "phase": true, "cphase": true, "crz": true}

// nextOnQubits returns the index of the first gate after i that shares a
// qubit with g, or -1. blocked reports whether a non-unitary op intervened.
func nextOnQubits(gates []circuit.Gate, i int) (int, bool) {
	g := gates[i]
	qset := map[int]bool{}
	for _, q := range g.Qubits {
		qset[q] = true
	}
	for j := i + 1; j < len(gates); j++ {
		other := gates[j]
		if other.Name == circuit.OpBarrier || other.Name == circuit.OpMeasureAll {
			return j, true
		}
		for _, q := range other.Qubits {
			if qset[q] {
				return j, !other.IsUnitary()
			}
		}
	}
	return -1, false
}

func sameOperands(a, b circuit.Gate) bool {
	if len(a.Qubits) != len(b.Qubits) {
		return false
	}
	for i := range a.Qubits {
		if a.Qubits[i] != b.Qubits[i] {
			return false
		}
	}
	return true
}

func cancelPairs(c *circuit.Circuit) *circuit.Circuit {
	gates := c.Gates
	removed := make([]bool, len(gates))
	for i := 0; i < len(gates); i++ {
		if removed[i] {
			continue
		}
		g := gates[i]
		inv, ok := selfInversePairs[g.Name]
		if !ok || g.HasCond {
			continue
		}
		j, blocked := nextOnQubits(gates, i)
		if j < 0 || blocked || removed[j] {
			continue
		}
		other := gates[j]
		if other.HasCond {
			continue // conditional gates fire data-dependently; keep both
		}
		if other.Name == inv && sameOperands(g, other) {
			removed[i], removed[j] = true, true
		}
	}
	out := circuit.New(c.Name, c.NumQubits)
	for i, g := range gates {
		if !removed[i] {
			out.AddGate(g)
		}
	}
	return out
}

func mergeRotations(c *circuit.Circuit) *circuit.Circuit {
	gates := c.Gates
	removed := make([]bool, len(gates))
	out := circuit.New(c.Name, c.NumQubits)
	for i := 0; i < len(gates); i++ {
		if removed[i] {
			continue
		}
		g := gates[i].Clone()
		if rotationGates[g.Name] && !g.HasCond {
			// Absorb following rotations of the same kind on the same
			// operands. pos tracks the scan position without disturbing
			// the outer loop, so skipped-over gates on other qubits are
			// still emitted in order.
			pos := i
			for {
				j, blocked := nextOnQubits(gates, pos)
				if j < 0 || blocked || removed[j] {
					break
				}
				other := gates[j]
				if other.Name != g.Name || !sameOperands(g, other) || other.HasCond {
					break
				}
				if g.Symbolic(0) || other.Symbolic(0) {
					// Merging a symbolic slot keeps the sum symbolic (a
					// literal contributes to the constant term), so the
					// bind table stays exact across the merge.
					setSlot(&g, 0, slotExpr(g, 0).Add(slotExpr(other, 0)))
				} else {
					g.Params[0] += other.Params[0]
				}
				removed[j] = true
				pos = j
			}
		}
		out.AddGate(g)
	}
	return out
}

func dropIdentities(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.Name, c.NumQubits)
	for _, g := range c.Gates {
		// Identities are no-ops whether or not they are conditional.
		if g.Name == "i" {
			continue
		}
		// A symbolic rotation's angle is unknown until bind time, so it is
		// never a removable identity.
		if rotationGates[g.Name] && !g.Symbolic(0) && math.Abs(normalizeAngle(g.Params[0])) < 1e-12 {
			continue
		}
		out.AddGate(g)
	}
	return out
}

// normalizeAngle maps an angle to (−π, π].
func normalizeAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
