package compiler

import (
	"fmt"
	"strconv"
	"strings"
)

// PassOptions are the per-pass parameters of one pass-spec entry, e.g.
// the {"lookahead": "8", "strategy": "noise"} of "map(lookahead=8,
// strategy=noise)". Keys and values are strings at the spec layer;
// passes interpret them with the typed getters.
type PassOptions map[string]string

// String returns the option value, or def when absent.
func (o PassOptions) String(key, def string) string {
	if v, ok := o[key]; ok {
		return v
	}
	return def
}

// Int parses the option as an integer, def when absent.
func (o PassOptions) Int(key string, def int) (int, error) {
	v, ok := o[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("option %s=%q is not an integer", key, v)
	}
	return n, nil
}

// Bool parses the option as a boolean ("true"/"false"/"1"/"0"), def when
// absent.
func (o PassOptions) Bool(key string, def bool) (bool, error) {
	v, ok := o[key]
	if !ok {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("option %s=%q is not a boolean", key, v)
	}
	return b, nil
}

// SpecEntry is one parsed pass-spec element: a pass name, its options,
// and where in the spec string it started (for error reporting).
type SpecEntry struct {
	Name    string
	Options PassOptions
	// Pos is the zero-based byte offset of the entry's name in the spec.
	Pos int
}

// SpecError is a pass-spec syntax or resolution error carrying the
// offending position, so a malformed spec — "map(", "map(x=)", a
// duplicated option key — is rejected at parse time with an exact
// location instead of failing mid-compile.
type SpecError struct {
	Spec string
	Pos  int // zero-based byte offset into Spec
	Msg  string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("compiler: pass spec %q: col %d: %s", e.Spec, e.Pos+1, e.Msg)
}

func specErr(spec string, pos int, format string, args ...any) error {
	return &SpecError{Spec: spec, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ParseSpec tokenises a pass spec — comma-separated entries of the form
// name or name(key=value,...) — without consulting the pass registry.
// Whitespace around names, keys and values is ignored. All syntax errors
// carry the spec position (see SpecError).
func ParseSpec(spec string) ([]SpecEntry, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, specErr(spec, 0, "empty pass spec (available passes: %s)",
			strings.Join(PassNames(), ", "))
	}
	var entries []SpecEntry
	i := 0
	for {
		// One entry: name [ '(' options ')' ].
		start := skipSpace(spec, i)
		nameEnd := start
		for nameEnd < len(spec) && spec[nameEnd] != ',' && spec[nameEnd] != '(' && spec[nameEnd] != ')' && spec[nameEnd] != '=' {
			nameEnd++
		}
		name := strings.TrimSpace(spec[start:nameEnd])
		if name == "" {
			return nil, specErr(spec, start, "empty pass name")
		}
		if nameEnd < len(spec) && (spec[nameEnd] == ')' || spec[nameEnd] == '=') {
			return nil, specErr(spec, nameEnd, "unexpected %q after pass name %q", string(spec[nameEnd]), name)
		}
		entry := SpecEntry{Name: name, Pos: start}
		i = nameEnd
		if i < len(spec) && spec[i] == '(' {
			opts, next, err := parseOptions(spec, i+1, name)
			if err != nil {
				return nil, err
			}
			entry.Options = opts
			i = next
		}
		entries = append(entries, entry)
		i = skipSpace(spec, i)
		if i >= len(spec) {
			break
		}
		if spec[i] != ',' {
			return nil, specErr(spec, i, "expected ',' after pass %q, found %q", name, string(spec[i]))
		}
		i++
	}
	return entries, nil
}

// parseOptions parses "key=value, key=value)" starting just past the
// opening parenthesis, returning the options and the index past ')'.
func parseOptions(spec string, i int, pass string) (PassOptions, int, error) {
	open := i - 1
	opts := PassOptions{}
	for {
		i = skipSpace(spec, i)
		if i >= len(spec) {
			return nil, 0, specErr(spec, open, "unterminated option list for pass %q", pass)
		}
		if spec[i] == ')' {
			// Allow "name()" and a trailing comma before ')'.
			return opts, i + 1, nil
		}
		keyStart := i
		for i < len(spec) && spec[i] != '=' && spec[i] != ',' && spec[i] != ')' {
			i++
		}
		key := strings.TrimSpace(spec[keyStart:i])
		if i >= len(spec) {
			return nil, 0, specErr(spec, open, "unterminated option list for pass %q", pass)
		}
		if spec[i] != '=' {
			return nil, 0, specErr(spec, keyStart, "option %q of pass %q missing '='", key, pass)
		}
		if key == "" {
			return nil, 0, specErr(spec, keyStart, "empty option key for pass %q", pass)
		}
		i++ // past '='
		valStart := i
		for i < len(spec) && spec[i] != ',' && spec[i] != ')' {
			i++
		}
		val := strings.TrimSpace(spec[valStart:i])
		if i >= len(spec) {
			return nil, 0, specErr(spec, open, "unterminated option list for pass %q", pass)
		}
		if val == "" {
			return nil, 0, specErr(spec, valStart, "empty value for option %q of pass %q", key, pass)
		}
		if _, dup := opts[key]; dup {
			return nil, 0, specErr(spec, keyStart, "duplicate option %q for pass %q", key, pass)
		}
		opts[key] = val
		if spec[i] == ',' {
			i++
		}
	}
}

func skipSpace(s string, i int) int {
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n') {
		i++
	}
	return i
}

// OptionsChecker is implemented by passes that accept per-pass options;
// ResolveSpec calls it at parse time so unknown keys and malformed
// values are rejected before any compilation starts (and, in qserv, at
// job submission with a 400).
type OptionsChecker interface {
	CheckOptions(opts PassOptions) error
}

// BoundPass is a registry pass bound to the options of one spec entry.
type BoundPass struct {
	Pass    Pass
	Options PassOptions
}

// ResolveSpec parses a pass spec and resolves every entry against the
// pass registry, validating options with each pass's OptionsChecker.
// Errors carry the spec position.
func ResolveSpec(spec string) ([]BoundPass, error) {
	entries, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	bound := make([]BoundPass, 0, len(entries))
	for _, e := range entries {
		p, ok := PassByName(e.Name)
		if !ok {
			return nil, specErr(spec, e.Pos, "unknown pass %q (available: %s)",
				e.Name, strings.Join(PassNames(), ", "))
		}
		if len(e.Options) > 0 {
			checker, ok := p.(OptionsChecker)
			if !ok {
				return nil, specErr(spec, e.Pos, "pass %q takes no options", e.Name)
			}
			if err := checker.CheckOptions(e.Options); err != nil {
				return nil, specErr(spec, e.Pos, "pass %q: %v", e.Name, err)
			}
		}
		bound = append(bound, BoundPass{Pass: p, Options: e.Options})
	}
	return bound, nil
}

// ParsePassSpec resolves a pass spec against the registry and returns
// the passes in order, discarding per-pass options — the entry point for
// callers that only need to know the spec is valid. Unknown names, bad
// syntax and invalid options are all rejected here, at parse time.
func ParsePassSpec(spec string) ([]Pass, error) {
	bound, err := ResolveSpec(spec)
	if err != nil {
		return nil, err
	}
	passes := make([]Pass, len(bound))
	for i, b := range bound {
		passes[i] = b.Pass
	}
	return passes, nil
}
