package compiler

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/target"
	"repro/internal/topology"
)

// Noise-aware placement and routing: the mapping stage of §2.6 weighted
// by the device's calibration table instead of hop count alone. Each
// edge carries a cost derived from its measured two-qubit error — the
// negative log success probability of gating across it, with routing
// SWAPs paying three two-qubit gates — so weighted shortest paths route
// around lossy couplers whenever a cleaner detour exists. On a uniform
// calibration every edge costs the same, the weights carry no signal,
// and the router degenerates — by construction, via delegation — to the
// hop-count router, producing gate-for-gate identical artefacts.

// swapGatesPerEdge is the two-qubit gate count of one routing SWAP
// (three CZ/CNOTs), the factor a swap's edge risk is scaled by.
const swapGatesPerEdge = 3

// hopEpsilon is the residual per-edge cost on zero-error couplers, so
// weighted paths stay finite-length and ties break toward fewer hops.
const hopEpsilon = 1e-9

// edgeRisk converts a two-qubit error probability into an additive cost:
// -ln(1-p), the negative log success of one gate across the edge.
func edgeRisk(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return -math.Log1p(-p)
}

// noiseWeights is the per-call routing state: symmetric per-edge swap
// costs and the all-pairs weighted distances derived from them. It is
// rebuilt per MapCircuitNoise call — nothing is cached on the shared
// topology, keeping concurrent compilations race-free.
type noiseWeights struct {
	topo  *topology.Topology
	swap  [][]float64 // swap[a][b]: cost of one SWAP across edge (a,b); +Inf when not adjacent
	wdist [][]float64 // all-pairs weighted distances over swap costs
}

func newNoiseWeights(topo *topology.Topology, cal *target.Calibration) *noiseWeights {
	n := topo.N
	w := &noiseWeights{topo: topo}
	w.swap = make([][]float64, n)
	for a := 0; a < n; a++ {
		w.swap[a] = make([]float64, n)
		for b := range w.swap[a] {
			w.swap[a][b] = math.Inf(1)
		}
	}
	for _, e := range topo.Edges() {
		cost := swapGatesPerEdge*edgeRisk(cal.EdgeError(e[0], e[1])) + hopEpsilon
		w.swap[e[0]][e[1]] = cost
		w.swap[e[1]][e[0]] = cost
	}
	w.wdist = make([][]float64, n)
	for src := 0; src < n; src++ {
		w.wdist[src] = w.dijkstra(src)
	}
	return w
}

// distHeap is a deterministic min-heap of (distance, node), tie-broken
// by node id.
type distItem struct {
	node int
	d    float64
}
type distHeap []distItem

func (h distHeap) Len() int { return len(h) }
func (h distHeap) Less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].node < h[j].node
}
func (h distHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)   { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

func (w *noiseWeights) dijkstra(src int) []float64 {
	n := w.topo.N
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	done := make([]bool, n)
	h := &distHeap{{node: src}}
	for h.Len() > 0 {
		it := heap.Pop(h).(distItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, v := range w.topo.Neighbors(it.node) {
			if nd := it.d + w.swap[it.node][v]; nd < dist[v] {
				dist[v] = nd
				heap.Push(h, distItem{node: v, d: nd})
			}
		}
	}
	return dist
}

// path returns a weighted-shortest path from a to b inclusive, built by
// deterministic greedy next-hop descent over wdist (sorted neighbour
// order breaks ties). Nil when disconnected.
func (w *noiseWeights) path(a, b int) []int {
	if math.IsInf(w.wdist[a][b], 1) {
		return nil
	}
	const tol = 1e-12
	path := []int{a}
	for a != b {
		next := -1
		best := math.Inf(1)
		for _, x := range w.topo.Neighbors(a) {
			if d := w.swap[a][x] + w.wdist[x][b]; d < best-tol {
				best = d
				next = x
			}
		}
		if next < 0 {
			return nil
		}
		a = next
		path = append(path, a)
	}
	return path
}

// lookahead scores a candidate swap: the swap's own cost plus the
// weighted distances the current and upcoming two-qubit gates would see
// under the post-swap layout (the current gate dominates; future gates
// are discounted like the hop router's lookahead window).
func (w *noiseWeights) lookahead(l2p []int, cur twoQ, upcoming []twoQ, window int, swap [2]int) float64 {
	scratch := append([]int(nil), l2p...)
	for l, p := range scratch {
		if p == swap[0] {
			scratch[l] = swap[1]
		} else if p == swap[1] {
			scratch[l] = swap[0]
		}
	}
	cost := w.swap[swap[0]][swap[1]]
	cost += float64(window+1) * w.wdist[scratch[cur.a]][scratch[cur.b]]
	for i := 0; i < len(upcoming) && i < window; i++ {
		g := upcoming[i]
		cost += float64(window-i) * w.wdist[scratch[g.a]][scratch[g.b]]
	}
	return cost
}

// MapCircuitNoise places and routes the circuit like MapCircuit, but
// weighs every routing decision by the platform's calibration data: SWAP
// chains prefer high-fidelity couplers even when that costs extra hops,
// maximising the routed circuit's expected success probability (see
// ExpectedSuccess). Without a topology, without calibration, or under a
// calibration whose edges are uniform — no routing signal — it
// delegates to MapCircuit and returns bit-identical results.
func MapCircuitNoise(c *circuit.Circuit, p *Platform, opts MapOptions) (*MapResult, error) {
	cal := p.Calibration()
	if p.Topology == nil || cal == nil || cal.UniformEdges(p.Topology) {
		return MapCircuit(c, p, opts)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	topo := p.Topology
	if c.NumQubits > topo.N {
		return nil, fmt.Errorf("compiler: circuit needs %d qubits, topology has %d", c.NumQubits, topo.N)
	}
	for _, g := range c.Gates {
		if g.IsUnitary() && len(g.Qubits) > 2 {
			return nil, fmt.Errorf("compiler: mapping requires decomposed circuits; found %d-qubit gate %q", len(g.Qubits), g.Name)
		}
	}
	w := newNoiseWeights(topo, cal)

	var l2p []int
	switch opts.Placement {
	case GreedyPlacement:
		l2p = greedyPlacement(c, topo)
	default:
		l2p = identityLayout(topo.N)
	}
	p2l := invert(l2p, topo.N)
	initial := append([]int(nil), l2p...)

	// Swap-direction scoring always weighs the current gate's edge costs
	// — that is what noise-aware routing is — but the future-gate window
	// is only consulted under Lookahead, mirroring the hop router's
	// toggle.
	window := 0
	if opts.Lookahead {
		window = opts.LookaheadWindow
		if window <= 0 {
			window = 5
		}
	}

	out := circuit.New(c.Name+"_mapped", topo.N)
	swaps := 0
	var upcoming []twoQ
	for i, g := range c.Gates {
		if g.IsTwoQubit() {
			upcoming = append(upcoming, twoQ{i, g.Qubits[0], g.Qubits[1]})
		}
	}
	nextTwoQ := 0

	measurePhys := map[int]int{}
	for gi, g := range c.Gates {
		for nextTwoQ < len(upcoming) && upcoming[nextTwoQ].idx <= gi {
			nextTwoQ++
		}
		if !g.IsTwoQubit() {
			ng := g.Clone()
			for i, q := range ng.Qubits {
				ng.Qubits[i] = l2p[q]
			}
			switch g.Name {
			case circuit.OpMeasure:
				measurePhys[g.Qubits[0]] = ng.Qubits[0]
			case circuit.OpMeasureAll:
				for l := 0; l < c.NumQubits; l++ {
					measurePhys[l] = l2p[l]
				}
			}
			if ng.HasCond {
				if p, ok := measurePhys[g.CondBit]; ok {
					ng.CondBit = p
				} else {
					ng.CondBit = l2p[g.CondBit]
				}
			}
			out.AddGate(ng)
			continue
		}
		la, lb := g.Qubits[0], g.Qubits[1]
		cur := twoQ{gi, la, lb}
		pa, pb := l2p[la], l2p[lb]
		for !topo.Adjacent(pa, pb) {
			path := w.path(pa, pb)
			if path == nil {
				return nil, fmt.Errorf("compiler: qubits %d and %d are disconnected", pa, pb)
			}
			// Step an endpoint one edge along the weighted-shortest path,
			// whichever end the lookahead scores cheaper (front by
			// default, mirroring the hop router's preference).
			stepA := [2]int{pa, path[1]}
			stepB := [2]int{pb, path[len(path)-2]}
			chosen := stepA
			if costA, costB := w.lookahead(l2p, cur, upcoming[nextTwoQ:], window, stepA),
				w.lookahead(l2p, cur, upcoming[nextTwoQ:], window, stepB); costB < costA {
				chosen = stepB
			}
			emitSwap(out, chosen[0], chosen[1])
			swaps++
			applySwap(l2p, p2l, chosen[0], chosen[1])
			pa, pb = l2p[la], l2p[lb]
		}
		ng := g.Clone()
		ng.Qubits[0], ng.Qubits[1] = pa, pb
		if ng.HasCond {
			if p, ok := measurePhys[g.CondBit]; ok {
				ng.CondBit = p
			} else {
				ng.CondBit = l2p[g.CondBit]
			}
		}
		out.AddGate(ng)
	}

	origDepth := c.Depth()
	factor := 1.0
	if origDepth > 0 {
		factor = float64(out.Depth()) / float64(origDepth)
	}
	for l := 0; l < c.NumQubits; l++ {
		if _, ok := measurePhys[l]; !ok {
			measurePhys[l] = l2p[l]
		}
	}
	return &MapResult{
		Circuit:       out,
		InitialLayout: initial,
		FinalLayout:   l2p,
		AddedSwaps:    swaps,
		LatencyFactor: factor,
		MeasurePhys:   measurePhys,
	}, nil
}

// ExpectedSuccess estimates the probability a physical (routed) circuit
// executes without a gate or readout error under the platform's
// calibration: the product of per-gate success probabilities — (1-p₂)
// per two-qubit gate on its edge, cubed for SWAPs, (1-p₁) per
// single-qubit gate, (1-p_ro) per measured qubit. Uncalibrated
// platforms report 1. This is the objective noise-aware routing
// optimises and the differential tests compare routers on.
func ExpectedSuccess(c *circuit.Circuit, p *Platform) float64 {
	cal := p.Calibration()
	if cal == nil {
		return 1
	}
	esp := 1.0
	for _, g := range c.Gates {
		switch {
		case g.Name == circuit.OpMeasure:
			esp *= 1 - cal.Qubit(g.Qubits[0]).ReadoutError
		case g.Name == circuit.OpMeasureAll:
			for q := 0; q < c.NumQubits; q++ {
				esp *= 1 - cal.Qubit(q).ReadoutError
			}
		case !g.IsUnitary():
			// prep, barrier, wait: no calibrated error channel.
		case g.IsTwoQubit():
			succ := 1 - cal.EdgeError(g.Qubits[0], g.Qubits[1])
			if g.Name == "swap" && !p.Supports("swap") {
				// A routing SWAP lowers to three two-qubit primitives.
				succ = succ * succ * succ
			}
			esp *= succ
		case len(g.Qubits) == 1:
			esp *= 1 - cal.Qubit(g.Qubits[0]).SingleQubitError
		}
	}
	return esp
}
