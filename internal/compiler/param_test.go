package compiler

import (
	"math"
	"testing"

	"repro/internal/circuit"
)

// TestOptimizeMergesSymbolicRotations: merging symbolic with literal
// rotations must keep a symbolic sum rather than collapsing to the
// placeholder literal.
func TestOptimizeMergesSymbolicRotations(t *testing.T) {
	c := circuit.New("m", 1)
	c.RZExpr(0, circuit.Sym("theta"))
	c.RZ(0, 0.5)
	c.RZExpr(0, circuit.Sym("theta").Scale(2))

	out := Optimize(c)
	if got := len(out.Gates); got != 1 {
		t.Fatalf("expected 1 merged gate, got %d:\n%s", got, out)
	}
	g := out.Gates[0]
	if !g.Symbolic(0) {
		t.Fatalf("merged rotation lost its symbols: %+v", g)
	}
	if s := g.Exprs[0].String(); s != "3*$theta+0.5" {
		t.Fatalf("merged expr = %q", s)
	}
}

// TestOptimizeKeepsSymbolicZeroPlaceholder: a symbolic rotation carries a 0
// placeholder literal; dropIdentities must not treat it as a zero-angle
// identity.
func TestOptimizeKeepsSymbolicZeroPlaceholder(t *testing.T) {
	c := circuit.New("k", 1)
	c.RZExpr(0, circuit.Sym("theta"))
	out := Optimize(c)
	if len(out.Gates) != 1 {
		t.Fatalf("symbolic rotation was dropped:\n%s", out)
	}
}

// TestFoldRotationsSymbolicAcrossCNOTControl: folding across a commuting
// CNOT control with a mix of symbolic and literal rz keeps the symbolic
// sum, and the fold is exact under binding.
func TestFoldRotationsSymbolicAcrossCNOTControl(t *testing.T) {
	c := circuit.New("f", 2)
	c.RZExpr(0, circuit.Sym("gamma"))
	c.CNOT(0, 1)
	c.RZ(0, 0.25)
	c.RZExpr(0, circuit.Sym("gamma").Neg())

	out := FoldRotations(c)
	var rzs []circuit.Gate
	for _, g := range out.Gates {
		if g.Name == "rz" {
			rzs = append(rzs, g)
		}
	}
	if len(rzs) != 1 {
		t.Fatalf("expected 1 folded rz, got %d:\n%s", len(rzs), out)
	}
	// gamma − gamma cancels symbolically; 0.25 remains.
	if rzs[0].Symbolic(0) {
		t.Fatalf("cancelling symbols should leave a literal, got %+v", rzs[0])
	}
	if rzs[0].Params[0] != 0.25 {
		t.Fatalf("folded angle = %v", rzs[0].Params[0])
	}
}

// TestDecomposePreservesSymbols: decomposing parametric gates to the NISQ
// set scales expressions instead of baking in placeholder literals.
func TestDecomposePreservesSymbols(t *testing.T) {
	p := nisqPlatform(2)
	c := circuit.New("d", 2)
	c.RXExpr(0, circuit.Sym("beta"))
	c.CPhaseExpr(0, 1, circuit.Sym("gamma"))

	out, err := Decompose(c, p)
	if err != nil {
		t.Fatal(err)
	}
	var exprs []string
	for _, g := range out.Gates {
		if g.Name == "rz" && g.Symbolic(0) {
			exprs = append(exprs, g.Exprs[0].String())
		}
	}
	want := []string{"$beta", "0.5*$gamma", "0.5*$gamma", "-0.5*$gamma"}
	if len(exprs) != len(want) {
		t.Fatalf("symbolic rz exprs = %v, want %v\n%s", exprs, want, out)
	}
	for i := range want {
		if exprs[i] != want[i] {
			t.Fatalf("expr %d = %q, want %q", i, exprs[i], want[i])
		}
	}

	// Decompose-then-bind equals bind-then-decompose gate for gate.
	vals := map[string]float64{"beta": 0.375, "gamma": -1.5}
	boundFirst, err := c.Bind(vals)
	if err != nil {
		t.Fatal(err)
	}
	dbf, err := Decompose(boundFirst, p)
	if err != nil {
		t.Fatal(err)
	}
	dThenB, err := out.Bind(vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(dbf.Gates) != len(dThenB.Gates) {
		t.Fatalf("gate counts differ: %d vs %d", len(dbf.Gates), len(dThenB.Gates))
	}
	for i := range dbf.Gates {
		a, b := dbf.Gates[i], dThenB.Gates[i]
		if a.Name != b.Name || len(a.Params) != len(b.Params) {
			t.Fatalf("gate %d: %v vs %v", i, a, b)
		}
		for k := range a.Params {
			if math.Abs(a.Params[k]-b.Params[k]) != 0 {
				t.Fatalf("gate %d param %d: %v vs %v", i, k, a.Params[k], b.Params[k])
			}
		}
	}
}
