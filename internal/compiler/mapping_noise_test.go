package compiler

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/target"
)

// sameGates reports gate-for-gate equality of two circuits.
func sameGates(a, b *circuit.Circuit) bool {
	if len(a.Gates) != len(b.Gates) || a.NumQubits != b.NumQubits {
		return false
	}
	for i := range a.Gates {
		ga, gb := a.Gates[i], b.Gates[i]
		if ga.Name != gb.Name || len(ga.Qubits) != len(gb.Qubits) ||
			ga.HasCond != gb.HasCond || ga.CondBit != gb.CondBit ||
			len(ga.Params) != len(gb.Params) {
			return false
		}
		for j := range ga.Qubits {
			if ga.Qubits[j] != gb.Qubits[j] {
				return false
			}
		}
		for j := range ga.Params {
			if ga.Params[j] != gb.Params[j] {
				return false
			}
		}
	}
	return true
}

// randomNISQCircuit builds a routable circuit: cz/single-qubit gates
// plus measurement, over the platform's native set.
func randomNISQCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New("rand", n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(4) {
		case 0:
			c.Add("x90", []int{rng.Intn(n)})
		case 1:
			c.Add("rz", []int{rng.Intn(n)}, rng.Float64())
		default:
			a := rng.Intn(n)
			b := rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.Add("cz", []int{a, b})
		}
	}
	c.MeasureAll()
	return c
}

// On a uniform calibration — no routing signal — the noise-aware mapper
// must produce gate-for-gate the same artefacts as the hop-count mapper,
// over randomized circuits, placements and lookahead settings.
func TestMapNoiseDegeneratesToHopOnUniformCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Superconducting() // uniform preset calibration
	if p.Calibration() == nil || !p.Calibration().UniformEdges(p.Topology) {
		t.Fatal("superconducting preset should carry a uniform calibration")
	}
	for i := 0; i < 25; i++ {
		c := randomNISQCircuit(rng, 8, 30)
		opts := MapOptions{
			Lookahead:       i%2 == 0,
			LookaheadWindow: 1 + i%7,
		}
		if i%3 == 0 {
			opts.Placement = GreedyPlacement
		}
		hop, err := MapCircuit(c, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		noise, err := MapCircuitNoise(c, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !sameGates(hop.Circuit, noise.Circuit) {
			t.Fatalf("iteration %d: uniform calibration routed differently\nhop:\n%s\nnoise:\n%s",
				i, hop.Circuit, noise.Circuit)
		}
		if hop.AddedSwaps != noise.AddedSwaps {
			t.Fatalf("iteration %d: swaps differ %d vs %d", i, hop.AddedSwaps, noise.AddedSwaps)
		}
	}
}

// lossySurface17 is the Surface-17 device with one deliberately lossy
// coupler: edge (0,9), which lies on the hop router's 0→1 path.
func lossySurface17(edgeErr float64) *Platform {
	dev := target.Superconducting()
	dev.Calibration.SetEdgeError(0, 9, edgeErr)
	return PlatformFor(dev)
}

// touchesEdge reports whether any two-qubit gate of the circuit acts
// across the (a,b) pair.
func touchesEdge(c *circuit.Circuit, a, b int) bool {
	for _, g := range c.Gates {
		if !g.IsTwoQubit() {
			continue
		}
		if (g.Qubits[0] == a && g.Qubits[1] == b) || (g.Qubits[0] == b && g.Qubits[1] == a) {
			return true
		}
	}
	return false
}

// Acceptance: on a Surface-17 device with one deliberately lossy edge,
// the noise-aware router routes around that edge while the hop-count
// router (which is blind to calibration) crosses it, and the noise-aware
// routing wins on expected success probability.
func TestMapNoiseRoutesAroundLossyEdge(t *testing.T) {
	p := lossySurface17(0.25)
	c := circuit.New("cz01", 17)
	c.Add("cz", []int{0, 1}) // distance 2: via ancilla 9 (lossy) or 11

	hop, err := MapCircuit(c, p, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noise, err := MapCircuitNoise(c, p, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !touchesEdge(hop.Circuit, 0, 9) {
		t.Fatalf("hop router did not cross the lossy edge — test premise broken:\n%s", hop.Circuit)
	}
	if touchesEdge(noise.Circuit, 0, 9) {
		t.Fatalf("noise-aware router crossed the lossy (0,9) edge:\n%s", noise.Circuit)
	}
	espHop := ExpectedSuccess(hop.Circuit, p)
	espNoise := ExpectedSuccess(noise.Circuit, p)
	if espNoise <= espHop {
		t.Errorf("noise routing ESP %.4f does not beat hop routing ESP %.4f", espNoise, espHop)
	}
}

// Differential: across randomized circuits on randomly skewed
// calibrations, noise-aware routing must beat hop-count routing on
// expected success probability in aggregate, and never lose
// catastrophically.
func TestMapNoiseBeatsHopOnSkewedCalibrations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	wins, losses := 0, 0
	var logRatioSum float64
	const trials = 30
	for i := 0; i < trials; i++ {
		dev := target.Superconducting()
		// Skew: every edge gets a random error over two orders of
		// magnitude, so routing choices matter.
		for j := range dev.Calibration.Edges {
			dev.Calibration.Edges[j].TwoQubitError = math.Pow(10, -3+2.5*rng.Float64())
		}
		p := PlatformFor(dev)
		c := randomNISQCircuit(rng, 9, 40)
		hop, err := MapCircuit(c, p, MapOptions{Lookahead: true})
		if err != nil {
			t.Fatal(err)
		}
		noise, err := MapCircuitNoise(c, p, MapOptions{Lookahead: true})
		if err != nil {
			t.Fatal(err)
		}
		espHop := ExpectedSuccess(hop.Circuit, p)
		espNoise := ExpectedSuccess(noise.Circuit, p)
		logRatioSum += math.Log(espNoise / espHop)
		switch {
		case espNoise > espHop:
			wins++
		case espNoise < espHop:
			losses++
		}
	}
	if wins <= losses {
		t.Errorf("noise routing won %d and lost %d of %d skewed trials", wins, losses, trials)
	}
	if logRatioSum <= 0 {
		t.Errorf("mean ESP log-ratio %.4f not positive: noise routing does not beat hop routing in aggregate",
			logRatioSum/trials)
	}
}

// The map-noise registry pass produces identical pipeline artefacts to
// map on uniform calibrations, and the map(strategy=noise) spelling is
// the same pass.
func TestMapNoisePassPipelineEquivalence(t *testing.T) {
	p := Superconducting()
	rng := rand.New(rand.NewSource(3))
	c := randomNISQCircuit(rng, 6, 24)
	run := func(spec string) (*PassContext, *CompileReport) {
		pl, err := NewPipeline(spec)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &PassContext{Platform: p, Circuit: c.Clone()}
		rep, err := pl.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return ctx, rep
	}
	base, _ := run("decompose,map,lower-swaps,schedule")
	noise, _ := run("decompose,map-noise,lower-swaps,schedule")
	opt, _ := run("decompose,map(strategy=noise),lower-swaps,schedule")
	if !sameGates(base.Circuit, noise.Circuit) {
		t.Error("map-noise on uniform calibration differs from map")
	}
	if !sameGates(noise.Circuit, opt.Circuit) {
		t.Error("map(strategy=noise) differs from map-noise")
	}
	if base.Schedule.Makespan != noise.Schedule.Makespan {
		t.Errorf("makespans differ: %d vs %d", base.Schedule.Makespan, noise.Schedule.Makespan)
	}
}

// ExpectedSuccess multiplies per-gate success under the calibration.
func TestExpectedSuccess(t *testing.T) {
	dev := target.Superconducting()
	p := PlatformFor(dev)
	c := circuit.New("esp", 17)
	c.Add("x90", []int{0})
	c.Add("cz", []int{0, 9})
	c.Add("swap", []int{0, 9})
	c.Measure(0)
	want := (1 - 1e-3) * (1 - 5e-3) * math.Pow(1-5e-3, 3) * (1 - 0.01)
	if got := ExpectedSuccess(c, p); math.Abs(got-want) > 1e-12 {
		t.Errorf("ESP = %.9f, want %.9f", got, want)
	}
	if got := ExpectedSuccess(c, Perfect(17)); got != 1 {
		t.Errorf("uncalibrated ESP = %g, want 1", got)
	}
}
