package compiler

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/topology"
)

func TestPassRegistryHasBuiltins(t *testing.T) {
	for _, name := range []string{"decompose", "optimize", "map", "lower-swaps", "optimize-lowered", "fold-rotations", "schedule", "assemble"} {
		if _, ok := PassByName(name); !ok {
			t.Errorf("built-in pass %q not registered", name)
		}
	}
	names := PassNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("PassNames not sorted: %v", names)
		}
	}
}

func TestParsePassSpecErrors(t *testing.T) {
	for _, spec := range []string{"", "   ", "decompose,,schedule", "decompose,teleport"} {
		if _, err := ParsePassSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	// Unknown-pass errors list the available passes.
	_, err := ParsePassSpec("teleport")
	if err == nil || !strings.Contains(err.Error(), "decompose") {
		t.Errorf("unknown-pass error does not list available passes: %v", err)
	}
	passes, err := ParsePassSpec(" decompose , optimize,schedule ")
	if err != nil {
		t.Fatalf("whitespace-padded spec rejected: %v", err)
	}
	if len(passes) != 3 || passes[0].Name() != "decompose" || passes[2].Name() != "schedule" {
		t.Errorf("parsed passes wrong: %v", passes)
	}
}

func TestRegisterPassRejectsDuplicatesAndBadNames(t *testing.T) {
	for _, name := range []string{"", "has space", "has,comma", "decompose"} {
		name := name
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RegisterPass(%q) did not panic", name)
				}
			}()
			RegisterPass(NewPass(name, func(*PassContext) error { return nil }))
		}()
	}
}

func TestPipelineRunRecordsMetrics(t *testing.T) {
	c := circuit.New("pipe", 3).Toffoli(0, 1, 2).H(0).H(0)
	pl, err := NewPipeline("decompose,optimize,map,lower-swaps,schedule")
	if err != nil {
		t.Fatal(err)
	}
	ctx := &PassContext{Platform: nisqPlatform(3), Circuit: c}
	rep, err := pl.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Schedule == nil {
		t.Fatal("schedule pass produced no schedule")
	}
	if len(rep.Passes) != 5 {
		t.Fatalf("%d pass metrics, want 5", len(rep.Passes))
	}
	dec := rep.Passes[0]
	if dec.Pass != "decompose" || dec.GatesBefore != 3 || dec.GatesAfter <= 3 {
		t.Errorf("decompose metrics wrong: %+v", dec)
	}
	opt := rep.Passes[1]
	if opt.GatesBefore != dec.GatesAfter || opt.GatesAfter >= opt.GatesBefore {
		t.Errorf("optimize metrics wrong: %+v (h·h should cancel)", opt)
	}
	var total int64
	for _, m := range rep.Passes {
		if m.WallNs < 0 {
			t.Errorf("pass %s has negative wall time", m.Pass)
		}
		total += m.WallNs
	}
	if rep.TotalNs != total {
		t.Errorf("TotalNs %d != sum of passes %d", rep.TotalNs, total)
	}
	if !strings.Contains(rep.String(), "decompose") {
		t.Error("report table missing pass rows")
	}
}

func TestPipelineMapRecordsAddedSwaps(t *testing.T) {
	// Linear topology forces routing SWAPs for the distant pair.
	p := &Platform{Name: "lin", NumQubits: 4, CycleTimeNs: 1,
		Gates: map[string]GateInfo{}, Topology: topology.Linear(4)}
	c := circuit.New("far", 4).CNOT(0, 3)
	pl, err := NewPipeline("map,schedule")
	if err != nil {
		t.Fatal(err)
	}
	ctx := &PassContext{Platform: p, Circuit: c}
	rep, err := pl.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.MapResult == nil || ctx.MapResult.AddedSwaps == 0 {
		t.Fatal("routing inserted no swaps on a linear topology")
	}
	if rep.Passes[0].AddedSwaps != ctx.MapResult.AddedSwaps {
		t.Errorf("map pass recorded %d swaps, MapResult has %d",
			rep.Passes[0].AddedSwaps, ctx.MapResult.AddedSwaps)
	}
}

func TestPipelineReportsFailingPass(t *testing.T) {
	// Mapping rejects 3-qubit gates: the error must name the pass.
	p := &Platform{Name: "lin", NumQubits: 3, CycleTimeNs: 1,
		Gates: map[string]GateInfo{}, Topology: topology.Linear(3)}
	c := circuit.New("bad", 3).Toffoli(0, 1, 2)
	pl, err := NewPipeline("map,schedule")
	if err != nil {
		t.Fatal(err)
	}
	_, err = pl.Run(&PassContext{Platform: p, Circuit: c})
	if err == nil || !strings.Contains(err.Error(), `pass "map"`) {
		t.Errorf("error does not name the failing pass: %v", err)
	}
}

func TestDefaultPassSpecParses(t *testing.T) {
	for _, optimize := range []bool{true, false} {
		spec := DefaultPassSpec(optimize)
		if _, err := ParsePassSpec(spec); err != nil {
			t.Errorf("default spec (optimize=%v) does not parse: %v", optimize, err)
		}
		if strings.Contains(spec, "optimize") != optimize {
			t.Errorf("default spec (optimize=%v) = %q", optimize, spec)
		}
	}
}

func TestFoldRotationsAcrossCNOTControl(t *testing.T) {
	// rz q0; cnot q0,q1; rz q0 — the peephole merge cannot cross the
	// CNOT; commutation-aware folding can (rz is diagonal on the control).
	c := circuit.New("fold", 2).RZ(0, 0.3).CNOT(0, 1).RZ(0, 0.4)
	out := FoldRotations(c)
	if out.GateCount("rz") != 1 {
		t.Fatalf("rz count %d after folding, want 1\n%s", out.GateCount("rz"), out)
	}
	if Optimize(c).GateCount("rz") != 2 {
		t.Error("peephole already merges across CNOT; fold pass is not a stronger test")
	}
	if !circuitUnitary(out).EqualUpToPhase(circuitUnitary(c), 1e-9) {
		t.Error("folding changed the unitary")
	}
}

func TestFoldRotationsAcrossToffoliControls(t *testing.T) {
	// The commutation table marks both toffoli operands 0 and 1 as
	// controls: rz on either folds across; rz on the target must not.
	for _, q := range []int{0, 1} {
		c := circuit.New("tof", 3).RZ(q, 0.3).Toffoli(0, 1, 2).RZ(q, 0.4)
		out := FoldRotations(c)
		if out.GateCount("rz") != 1 {
			t.Fatalf("rz on toffoli control %d not folded: %s", q, out)
		}
		if !circuitUnitary(out).EqualUpToPhase(circuitUnitary(c), 1e-9) {
			t.Errorf("folding across toffoli control %d changed the unitary", q)
		}
	}
	c := circuit.New("toftgt", 3).RZ(2, 0.3).Toffoli(0, 1, 2).RZ(2, 0.4)
	if out := FoldRotations(c); out.GateCount("rz") != 2 {
		t.Fatalf("fold merged across a toffoli target: %s", out)
	}
}

func TestFoldRotationsBlockedByTarget(t *testing.T) {
	// rz on the CNOT *target* does not commute — folding must not merge.
	c := circuit.New("block", 2).RZ(1, 0.3).CNOT(0, 1).RZ(1, 0.4)
	out := FoldRotations(c)
	if out.GateCount("rz") != 2 {
		t.Fatalf("fold merged across a CNOT target: %s", out)
	}
}

func TestFoldRotationsDropsZeroAngle(t *testing.T) {
	c := circuit.New("zero", 2).RZ(0, 0.7).CZ(0, 1).RZ(0, -0.7)
	out := FoldRotations(c)
	if out.GateCount("rz") != 0 {
		t.Fatalf("cancelling rotations not removed: %s", out)
	}
	if out.GateCount("cz") != 1 {
		t.Error("cz lost")
	}
}

func TestFoldRotationsRespectsMeasurementAndConditionals(t *testing.T) {
	c := circuit.New("meas", 2).RZ(0, 0.3)
	c.Measure(0)
	c.RZ(0, 0.4)
	if out := FoldRotations(c); out.GateCount("rz") != 2 {
		t.Errorf("folded across a measurement: %s", out)
	}

	cc := circuit.New("cond", 2).RZ(0, 0.3)
	g, err := circuit.NewGate("x", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	g.HasCond, g.CondBit = true, 1
	cc.AddGate(g)
	cc.RZ(0, 0.4)
	if out := FoldRotations(cc); out.GateCount("rz") != 2 {
		t.Errorf("folded across a conditional gate: %s", out)
	}
}

// Property: on random circuits over a diagonal-heavy gate set, folding
// preserves the unitary up to global phase and never grows the circuit.
func TestFoldRotationsProperty(t *testing.T) {
	gates := []func(c *circuit.Circuit, rng *rand.Rand){
		func(c *circuit.Circuit, rng *rand.Rand) { c.RZ(rng.Intn(3), rng.Float64()*2*math.Pi) },
		func(c *circuit.Circuit, rng *rand.Rand) { c.H(rng.Intn(3)) },
		func(c *circuit.Circuit, rng *rand.Rand) { c.T(rng.Intn(3)) },
		func(c *circuit.Circuit, rng *rand.Rand) { c.S(rng.Intn(3)) },
		func(c *circuit.Circuit, rng *rand.Rand) {
			a := rng.Intn(3)
			c.CNOT(a, (a+1+rng.Intn(2))%3)
		},
		func(c *circuit.Circuit, rng *rand.Rand) {
			a := rng.Intn(3)
			c.CZ(a, (a+1+rng.Intn(2))%3)
		},
		func(c *circuit.Circuit, rng *rand.Rand) {
			a := rng.Intn(3)
			c.CPhase(a, (a+1+rng.Intn(2))%3, rng.Float64())
		},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.New("prop", 3)
		for i := 0; i < 24; i++ {
			gates[rng.Intn(len(gates))](c, rng)
		}
		out := FoldRotations(c)
		if len(out.Gates) > len(c.Gates) {
			return false
		}
		return circuitUnitary(out).EqualUpToPhase(circuitUnitary(c), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
