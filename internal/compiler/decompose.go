package compiler

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// Decompose rewrites every gate the platform does not support natively
// into supported primitives, applying rules recursively. It returns a new
// circuit; the input is not modified. Reversible-circuit design and gate
// decomposition are the first stages of the paper's compiler (§2.4).
func Decompose(c *circuit.Circuit, p *Platform) (*circuit.Circuit, error) {
	out := circuit.New(c.Name, c.NumQubits)
	for _, g := range c.Gates {
		if err := decomposeInto(out, g, p, 0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

const maxDecomposeDepth = 16

func decomposeInto(out *circuit.Circuit, g circuit.Gate, p *Platform, depth int) error {
	if depth > maxDecomposeDepth {
		return fmt.Errorf("compiler: decomposition of %q did not terminate", g.Name)
	}
	// Non-unitary operations and native gates pass through. A platform
	// with an empty gate table accepts everything (perfect target).
	if !g.IsUnitary() || len(p.Gates) == 0 || p.Supports(g.Name) {
		out.AddGate(g.Clone())
		return nil
	}
	sub, err := expand(g)
	if err != nil {
		return err
	}
	for _, s := range sub {
		// Classical control distributes over the decomposition: each
		// primitive fires under the same condition.
		s.HasCond = g.HasCond
		s.CondBit = g.CondBit
		if err := decomposeInto(out, s, p, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// expand returns the one-level decomposition of g into more primitive
// gates (correct up to global phase). The rules bottom out in the NISQ
// set {x90, mx90, y90, my90, rz, cz}.
func expand(g circuit.Gate) ([]circuit.Gate, error) {
	q := g.Qubits
	mk := func(name string, qubits []int, params ...float64) circuit.Gate {
		ng, err := circuit.NewGate(name, qubits, params...)
		if err != nil {
			panic(err) // rules are static; an error is a programming bug
		}
		return ng
	}
	// mkE builds a primitive whose single parameter is slot i of g scaled
	// by k — symbolic slots stay symbolic (the expression is scaled), so
	// decomposition preserves the bind relation exactly.
	mkE := func(name string, qubits []int, i int, k float64) circuit.Gate {
		if !g.Symbolic(i) {
			return mk(name, qubits, g.Params[i]*k)
		}
		ng, err := circuit.NewGateExpr(name, qubits, g.Exprs[i].Scale(k))
		if err != nil {
			panic(err)
		}
		return ng
	}
	switch g.Name {
	case "x":
		return []circuit.Gate{mk("x90", q), mk("x90", q)}, nil
	case "y":
		return []circuit.Gate{mk("y90", q), mk("y90", q)}, nil
	case "z":
		return []circuit.Gate{mk("rz", q, math.Pi)}, nil
	case "h":
		// H = Y90 · Z (apply z first).
		return []circuit.Gate{mk("z", q), mk("y90", q)}, nil
	case "s":
		return []circuit.Gate{mk("rz", q, math.Pi/2)}, nil
	case "sdag":
		return []circuit.Gate{mk("rz", q, -math.Pi/2)}, nil
	case "t":
		return []circuit.Gate{mk("rz", q, math.Pi/4)}, nil
	case "tdag":
		return []circuit.Gate{mk("rz", q, -math.Pi/4)}, nil
	case "rx":
		// RX(θ) = Y90 · RZ(θ) · MY90 (apply my90 first): Y90 maps the z
		// axis onto the x axis.
		return []circuit.Gate{mk("my90", q), mkE("rz", q, 0, 1), mk("y90", q)}, nil
	case "ry":
		// RY(θ) = MX90 · RZ(θ) · X90 (apply x90 first).
		return []circuit.Gate{mk("x90", q), mkE("rz", q, 0, 1), mk("mx90", q)}, nil
	case "phase":
		// Phase(θ) = RZ(θ) up to global phase.
		return []circuit.Gate{mkE("rz", q, 0, 1)}, nil
	case "u3":
		// U3(θ,φ,λ) = RZ(φ)·RY(θ)·RZ(λ) up to global phase.
		return []circuit.Gate{
			mkE("rz", q, 2, 1),
			mkE("ry", q, 0, 1),
			mkE("rz", q, 1, 1),
		}, nil
	case "cnot":
		// CNOT(c,t) = H_t · CZ · H_t.
		c, t := q[0], q[1]
		return []circuit.Gate{
			mk("h", []int{t}),
			mk("cz", []int{c, t}),
			mk("h", []int{t}),
		}, nil
	case "cz":
		// For CNOT-native platforms: CZ = H_t · CNOT · H_t. To avoid a
		// rewrite cycle with the cnot rule, expand directly to the NISQ
		// realisation of H around a cz is impossible — instead express CZ
		// via cphase, which bottoms out in rz/cnot.
		return []circuit.Gate{mk("cphase", q, math.Pi)}, nil
	case "swap":
		a, b := q[0], q[1]
		return []circuit.Gate{
			mk("cnot", []int{a, b}),
			mk("cnot", []int{b, a}),
			mk("cnot", []int{a, b}),
		}, nil
	case "iswap":
		// iSWAP = SWAP · CZ · (S⊗S) (apply the phases first).
		a, b := q[0], q[1]
		return []circuit.Gate{
			mk("s", []int{a}),
			mk("s", []int{b}),
			mk("cz", []int{a, b}),
			mk("swap", []int{a, b}),
		}, nil
	case "iswapdag":
		a, b := q[0], q[1]
		return []circuit.Gate{
			mk("swap", []int{a, b}),
			mk("cz", []int{a, b}),
			mk("sdag", []int{a}),
			mk("sdag", []int{b}),
		}, nil
	case "cphase":
		// CPhase(θ) = RZ_a(θ/2)·RZ_b(θ/2)·CNOT·RZ_b(−θ/2)·CNOT up to
		// global phase.
		a, b := q[0], q[1]
		return []circuit.Gate{
			mkE("rz", []int{a}, 0, 0.5),
			mkE("rz", []int{b}, 0, 0.5),
			mk("cnot", []int{a, b}),
			mkE("rz", []int{b}, 0, -0.5),
			mk("cnot", []int{a, b}),
		}, nil
	case "crz":
		a, b := q[0], q[1]
		return []circuit.Gate{
			mkE("rz", []int{b}, 0, 0.5),
			mk("cnot", []int{a, b}),
			mkE("rz", []int{b}, 0, -0.5),
			mk("cnot", []int{a, b}),
		}, nil
	case "toffoli":
		// Standard 15-gate Clifford+T decomposition.
		a, b, t := q[0], q[1], q[2]
		return []circuit.Gate{
			mk("h", []int{t}),
			mk("cnot", []int{b, t}),
			mk("tdag", []int{t}),
			mk("cnot", []int{a, t}),
			mk("t", []int{t}),
			mk("cnot", []int{b, t}),
			mk("tdag", []int{t}),
			mk("cnot", []int{a, t}),
			mk("t", []int{b}),
			mk("t", []int{t}),
			mk("h", []int{t}),
			mk("cnot", []int{a, b}),
			mk("t", []int{a}),
			mk("tdag", []int{b}),
			mk("cnot", []int{a, b}),
		}, nil
	case "fredkin":
		// CSWAP(c; a, b) = CNOT(b,a) · Toffoli(c,a,b) · CNOT(b,a).
		c, a, b := q[0], q[1], q[2]
		return []circuit.Gate{
			mk("cnot", []int{b, a}),
			mk("toffoli", []int{c, a, b}),
			mk("cnot", []int{b, a}),
		}, nil
	case "i", "x90", "mx90", "y90", "my90", "rz":
		// Already primitive; a platform that rejects these cannot be
		// targeted.
		return nil, fmt.Errorf("compiler: gate %q is a base primitive the platform does not support", g.Name)
	default:
		return nil, fmt.Errorf("compiler: no decomposition rule for gate %q", g.Name)
	}
}
