package compiler

// Two-level compilation support: the platform-generic prefix of a
// pipeline (decompose, optimize, fold-rotations — passes whose output
// depends only on the circuit and the platform's native gate set) can be
// compiled once per kernel and cached independently of the mapping,
// scheduling and calibration configuration the variant suffix depends
// on. This file holds the artefact type the prefix stage produces, the
// cache interface higher layers (qserv) implement, the shared worker
// gate that bounds kernel-compile parallelism service-wide, and the key
// derivation both sides agree on.

import (
	"crypto/sha256"
	"encoding/hex"

	"repro/internal/circuit"
)

// PrefixArtefact is the output of one kernel's run through a pipeline's
// platform-generic prefix: the rewritten circuit plus the per-pass
// metrics recorded while building it. Artefacts are shared across
// compilations by the prefix cache and must be treated as immutable —
// consumers concatenate via circuit.Append, which deep-copies gates, and
// never rewrite the stored circuit in place.
type PrefixArtefact struct {
	// Circuit is the kernel circuit after the prefix passes; immutable.
	Circuit *circuit.Circuit
	// Passes are the prefix pass metrics from the compilation that built
	// the artefact (informational on cache hits: the fetch skipped them).
	Passes []PassMetrics
}

// PrefixCache is the level-1 store of the two-level compile cache: it
// maps prefix keys (see PrefixKey) to prefix artefacts, deduplicating
// concurrent computations of the same missing key. The boolean result
// reports whether the artefact was served from cache. qserv implements
// it with an LRU + singleflight cache shared by all gate backends.
type PrefixCache interface {
	GetOrCompute(key string, compute func() (*PrefixArtefact, error)) (*PrefixArtefact, bool, error)
}

// PrefixKey derives the cache key of one kernel's prefix artefact from
// everything the prefix passes can observe: the platform's gate-set hash
// (Platform.GateSetHash — deliberately excluding topology, timings and
// calibration, which only the suffix reads), the canonical prefix pass
// spec, and the kernel's canonical circuit text. Re-calibrating a device
// therefore leaves prefix keys unchanged — only the full-artefact cache,
// keyed on the complete compile fingerprint, rotates — which is exactly
// what lets a recalibration recompile suffix-only.
func PrefixKey(gateSetHash, prefixSpec, kernelText string) string {
	h := sha256.New()
	h.Write([]byte(gateSetHash))
	h.Write([]byte{0})
	h.Write([]byte(prefixSpec))
	h.Write([]byte{0})
	h.Write([]byte(kernelText))
	return hex.EncodeToString(h.Sum(nil))
}

// WorkerGate is a counting semaphore shared by every compilation of a
// service: it bounds the total number of kernel-compile goroutines
// across concurrent jobs, so per-program parallelism cannot multiply
// with the worker pools above it and oversubscribe the machine. A nil
// WorkerGate imposes no bound. Tokens are acquired one at a time around
// each kernel's prefix run and released immediately after, so gated
// compilations cannot deadlock (no goroutine ever holds a token while
// waiting for another).
type WorkerGate chan struct{}

// NewWorkerGate returns a gate admitting at most n concurrent kernel
// compilations (minimum 1).
func NewWorkerGate(n int) WorkerGate {
	if n < 1 {
		n = 1
	}
	return make(WorkerGate, n)
}

// Acquire takes a token, blocking while n compilations are in flight.
// A nil gate admits immediately.
func (g WorkerGate) Acquire() {
	if g != nil {
		g <- struct{}{}
	}
}

// Release returns a token taken by Acquire. A no-op on a nil gate.
func (g WorkerGate) Release() {
	if g != nil {
		<-g
	}
}
