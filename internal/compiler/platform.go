// Package compiler implements the quantum compiler layer of the stack
// (§2.4–§2.6): gate decomposition to a target's primitive set, circuit
// optimisation, ASAP/ALAP and resource-constrained scheduling, and
// mapping/routing under nearest-neighbour constraints — including
// noise-aware routing weighted by the device's calibration data. A
// Platform is a thin compiler-side view of a target.Device, the
// configuration that retargets the same passes to different quantum
// technologies, exactly as the paper's micro-architecture was retargeted
// from superconducting to semiconducting qubits by "changes in the
// configuration file for the compiler".
package compiler

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"repro/internal/target"
	"repro/internal/topology"
)

// GateInfo holds per-gate platform parameters. It is the device-layer
// gate spec: platforms view devices, they do not redefine them.
type GateInfo = target.GateSpec

// Platform is the compiler's view of a compilation target: its primitive
// gate set, gate timings, qubit connectivity and control-channel limits,
// plus (through Target) the device calibration data that noise-aware
// passes weigh their decisions by. Build one from a device with
// PlatformFor; hand-constructed Platforms (Target nil) remain valid
// uncalibrated targets.
type Platform struct {
	Name        string `json:"name"`
	NumQubits   int    `json:"qubits"`
	CycleTimeNs int    `json:"cycle_time_ns"`
	// Gates maps primitive gate names to their parameters. A gate absent
	// from this map must be decomposed before execution.
	Gates map[string]GateInfo `json:"gates"`
	// MaxParallelOps bounds the number of simultaneously executing
	// operations (control-channel limit); 0 means unlimited.
	MaxParallelOps int `json:"max_parallel_ops"`
	// Topology is the qubit connectivity; nil means all-to-all (perfect
	// qubits, §2.1).
	Topology *topology.Topology `json:"-"`
	// Target is the device this platform views; nil for hand-built
	// platforms. It carries the calibration table and the identity the
	// content hash is derived from. A Platform treats its device as
	// immutable: re-calibrations produce new devices (and platforms),
	// never in-place edits.
	Target *target.Device `json:"-"`

	// hashOnce/hash memoise ContentHash — it sits on the per-submission
	// compile-cache path, and canonical-marshal+SHA-256 of a full device
	// is too expensive to redo per lookup. Platforms are shared by
	// pointer; the zero value works for hand-built literals.
	hashOnce sync.Once
	hash     string
	// gateHashOnce/gateHash memoise GateSetHash the same way.
	gateHashOnce sync.Once
	gateHash     string
}

// PlatformFor returns the compiler view of a device. The view shares the
// device's topology and gate table; treat both as immutable.
func PlatformFor(dev *target.Device) *Platform {
	gates := dev.Gates
	if gates == nil {
		gates = map[string]GateInfo{}
	}
	return &Platform{
		Name:           dev.Name,
		NumQubits:      dev.NumQubits,
		CycleTimeNs:    dev.CycleTimeNs,
		Gates:          gates,
		MaxParallelOps: dev.MaxParallelOps,
		Topology:       dev.Topology,
		Target:         dev,
	}
}

// AsDevice returns the device behind the platform. Hand-built platforms
// (Target nil) synthesise an equivalent uncalibrated device from their
// fields, so every platform has a device form — and therefore a content
// hash.
func (p *Platform) AsDevice() *target.Device {
	if p.Target != nil {
		return p.Target
	}
	return &target.Device{
		Name:           p.Name,
		NumQubits:      p.NumQubits,
		CycleTimeNs:    p.CycleTimeNs,
		Gates:          p.Gates,
		MaxParallelOps: p.MaxParallelOps,
		Topology:       p.Topology,
	}
}

// ContentHash returns the stable content hash of the platform's device
// form (see target.Device.Hash), computed once per platform.
// Re-calibrating a device changes the hash, which is what lets stack
// fingerprints — and the compile caches keyed on them — distinguish
// device revisions.
func (p *Platform) ContentHash() string {
	p.hashOnce.Do(func() { p.hash = p.AsDevice().Hash() })
	return p.hash
}

// GateSetHash returns a stable hash of the platform's native gate set —
// the sorted gate names. This is everything the platform-generic prefix
// passes (decompose, optimize, fold-rotations) can observe: they test
// gate-set membership (Supports) and nothing else. Gate durations,
// topology, cycle time, control limits and calibration are deliberately
// excluded — only the variant suffix reads them — which is what keeps
// prefix artefacts valid across re-mappings, re-schedulings,
// re-calibrations and re-timings of the same gate set; devices that
// differ only in those (e.g. the superconducting and semiconducting
// presets, which share one primitive set at different speeds) share
// prefix-cache entries.
func (p *Platform) GateSetHash() string {
	p.gateHashOnce.Do(func() {
		names := make([]string, 0, len(p.Gates))
		for name := range p.Gates {
			names = append(names, name)
		}
		sort.Strings(names)
		h := sha256.New()
		for _, name := range names {
			h.Write([]byte(name))
			h.Write([]byte{0})
		}
		p.gateHash = hex.EncodeToString(h.Sum(nil))
	})
	return p.gateHash
}

// Calibration returns the device calibration table, nil for
// uncalibrated targets.
func (p *Platform) Calibration() *target.Calibration {
	if p.Target == nil {
		return nil
	}
	return p.Target.Calibration
}

// Supports reports whether the platform executes the gate natively.
func (p *Platform) Supports(name string) bool {
	_, ok := p.Gates[name]
	return ok
}

// Duration returns the cycle count of a gate (default 1 for unknown
// gates, so perfect platforms need no exhaustive table).
func (p *Platform) Duration(name string) int {
	if info, ok := p.Gates[name]; ok && info.DurationCycles > 0 {
		return info.DurationCycles
	}
	return 1
}

// Adjacent reports whether a two-qubit gate between physical qubits a and
// b is allowed.
func (p *Platform) Adjacent(a, b int) bool {
	if p.Topology == nil {
		return true
	}
	return p.Topology.Adjacent(a, b)
}

// Validate checks internal consistency.
func (p *Platform) Validate() error {
	if p.NumQubits <= 0 {
		return fmt.Errorf("compiler: platform %q has no qubits", p.Name)
	}
	if p.Topology != nil && p.Topology.N != p.NumQubits {
		return fmt.Errorf("compiler: platform %q topology size %d != qubits %d",
			p.Name, p.Topology.N, p.NumQubits)
	}
	return nil
}

// Perfect returns the perfect-qubit platform: every registered gate is
// primitive, connectivity is all-to-all and there are no channel limits.
// This is the application-development target of §2.1.
func Perfect(n int) *Platform {
	return PlatformFor(target.Perfect(n))
}

// Superconducting returns the view of the transmon device preset:
// Surface-17 connectivity, 20 ns cycles, uniform calibration — the
// experimental target of §3.1.
func Superconducting() *Platform {
	return PlatformFor(target.Superconducting())
}

// Semiconducting returns the view of the spin-qubit device preset:
// linear array, slower two-qubit exchange gates, 100 ns cycles — the
// second technology the paper's micro-architecture was retargeted to.
func Semiconducting() *Platform {
	return PlatformFor(target.Semiconducting())
}

// nisqGates is the shared hardware primitive set; kept as a package
// helper for tests building bespoke platforms.
func nisqGates(single, two, meas, prep int) map[string]GateInfo {
	return target.NISQGates(single, two, meas, prep)
}

// LoadPlatform parses a platform from device JSON (see the target
// package for the schema; legacy platform configs are a subset of it).
func LoadPlatform(data []byte) (*Platform, error) {
	dev, err := target.Parse(data)
	if err != nil {
		return nil, err
	}
	return PlatformFor(dev), nil
}

// MarshalConfig renders the platform's device form back to JSON
// (topologies are emitted as explicit edge lists).
func (p *Platform) MarshalConfig() ([]byte, error) {
	return p.AsDevice().Marshal()
}
