// Package compiler implements the quantum compiler layer of the stack
// (§2.4–§2.6): gate decomposition to a platform's primitive set, circuit
// optimisation, ASAP/ALAP and resource-constrained scheduling, and
// mapping/routing under nearest-neighbour constraints. A Platform is the
// configuration file that retargets the same passes to different quantum
// technologies, exactly as the paper's micro-architecture was retargeted
// from superconducting to semiconducting qubits by "changes in the
// configuration file for the compiler".
package compiler

import (
	"encoding/json"
	"fmt"

	"repro/internal/topology"
)

// GateInfo holds per-gate platform parameters.
type GateInfo struct {
	// DurationCycles is the gate latency in micro-architecture cycles.
	DurationCycles int `json:"duration"`
}

// Platform describes a compilation target: its primitive gate set, gate
// timings, qubit connectivity and control-channel limits.
type Platform struct {
	Name        string `json:"name"`
	NumQubits   int    `json:"qubits"`
	CycleTimeNs int    `json:"cycle_time_ns"`
	// Gates maps primitive gate names to their parameters. A gate absent
	// from this map must be decomposed before execution.
	Gates map[string]GateInfo `json:"gates"`
	// MaxParallelOps bounds the number of simultaneously executing
	// operations (control-channel limit); 0 means unlimited.
	MaxParallelOps int `json:"max_parallel_ops"`
	// Topology is the qubit connectivity; nil means all-to-all (perfect
	// qubits, §2.1).
	Topology *topology.Topology `json:"-"`
}

// Supports reports whether the platform executes the gate natively.
func (p *Platform) Supports(name string) bool {
	_, ok := p.Gates[name]
	return ok
}

// Duration returns the cycle count of a gate (default 1 for unknown
// gates, so perfect platforms need no exhaustive table).
func (p *Platform) Duration(name string) int {
	if info, ok := p.Gates[name]; ok && info.DurationCycles > 0 {
		return info.DurationCycles
	}
	return 1
}

// Adjacent reports whether a two-qubit gate between physical qubits a and
// b is allowed.
func (p *Platform) Adjacent(a, b int) bool {
	if p.Topology == nil {
		return true
	}
	return p.Topology.Adjacent(a, b)
}

// Validate checks internal consistency.
func (p *Platform) Validate() error {
	if p.NumQubits <= 0 {
		return fmt.Errorf("compiler: platform %q has no qubits", p.Name)
	}
	if p.Topology != nil && p.Topology.N != p.NumQubits {
		return fmt.Errorf("compiler: platform %q topology size %d != qubits %d",
			p.Name, p.Topology.N, p.NumQubits)
	}
	return nil
}

// Perfect returns the perfect-qubit platform: every registered gate is
// primitive, connectivity is all-to-all and there are no channel limits.
// This is the application-development target of §2.1.
func Perfect(n int) *Platform {
	return &Platform{
		Name:        "perfect",
		NumQubits:   n,
		CycleTimeNs: 1,
		Gates:       map[string]GateInfo{},
	}
}

// nisqGates is the primitive set shared by the hardware-like presets:
// microwave single-qubit rotations, flux-based CZ, measurement and reset.
func nisqGates(single, two, meas, prep int) map[string]GateInfo {
	return map[string]GateInfo{
		"i":       {DurationCycles: single},
		"rz":      {DurationCycles: single},
		"x90":     {DurationCycles: single},
		"mx90":    {DurationCycles: single},
		"y90":     {DurationCycles: single},
		"my90":    {DurationCycles: single},
		"cz":      {DurationCycles: two},
		"measure": {DurationCycles: meas},
		"prep_z":  {DurationCycles: prep},
		"wait":    {DurationCycles: 1},
		"barrier": {DurationCycles: 0},
	}
}

// Superconducting returns a transmon-style platform: Surface-17
// connectivity, 20 ns cycles, 1-cycle microwave gates, 2-cycle CZ,
// 15-cycle measurement — the experimental target of §3.1.
func Superconducting() *Platform {
	return &Platform{
		Name:           "superconducting",
		NumQubits:      17,
		CycleTimeNs:    20,
		Gates:          nisqGates(1, 2, 15, 10),
		MaxParallelOps: 0,
		Topology:       topology.Surface17(),
	}
}

// Semiconducting returns a spin-qubit-style platform: linear array,
// slower two-qubit exchange gates, 100 ns cycles — the second technology
// the paper's micro-architecture was retargeted to.
func Semiconducting() *Platform {
	return &Platform{
		Name:           "semiconducting",
		NumQubits:      8,
		CycleTimeNs:    100,
		Gates:          nisqGates(1, 4, 30, 20),
		MaxParallelOps: 2, // shared control lines restrict parallelism
		Topology:       topology.Linear(8),
	}
}

// platformJSON is the on-disk form, with a declarative topology spec.
type platformJSON struct {
	Name           string              `json:"name"`
	NumQubits      int                 `json:"qubits"`
	CycleTimeNs    int                 `json:"cycle_time_ns"`
	Gates          map[string]GateInfo `json:"gates"`
	MaxParallelOps int                 `json:"max_parallel_ops"`
	Topology       *topologySpec       `json:"topology,omitempty"`
}

type topologySpec struct {
	Kind string `json:"kind"` // linear, ring, grid, full, star, surface17, chimera
	Rows int    `json:"rows,omitempty"`
	Cols int    `json:"cols,omitempty"`
	K    int    `json:"k,omitempty"`
	// Edges lists explicit extra/custom edges for kind "custom".
	Edges [][2]int `json:"edges,omitempty"`
}

// LoadPlatform parses a platform from its JSON configuration.
func LoadPlatform(data []byte) (*Platform, error) {
	var pj platformJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, fmt.Errorf("compiler: bad platform config: %w", err)
	}
	p := &Platform{
		Name:           pj.Name,
		NumQubits:      pj.NumQubits,
		CycleTimeNs:    pj.CycleTimeNs,
		Gates:          pj.Gates,
		MaxParallelOps: pj.MaxParallelOps,
	}
	if p.Gates == nil {
		p.Gates = map[string]GateInfo{}
	}
	if pj.Topology != nil {
		topo, err := buildTopology(pj.Topology, pj.NumQubits)
		if err != nil {
			return nil, err
		}
		p.Topology = topo
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MarshalConfig renders the platform back to JSON (custom topologies are
// emitted as explicit edge lists).
func (p *Platform) MarshalConfig() ([]byte, error) {
	pj := platformJSON{
		Name:           p.Name,
		NumQubits:      p.NumQubits,
		CycleTimeNs:    p.CycleTimeNs,
		Gates:          p.Gates,
		MaxParallelOps: p.MaxParallelOps,
	}
	if p.Topology != nil {
		pj.Topology = &topologySpec{Kind: "custom", Edges: p.Topology.Edges()}
	}
	return json.MarshalIndent(pj, "", "  ")
}

func buildTopology(spec *topologySpec, n int) (*topology.Topology, error) {
	switch spec.Kind {
	case "linear":
		return topology.Linear(n), nil
	case "ring":
		return topology.Ring(n), nil
	case "grid":
		if spec.Rows*spec.Cols != n {
			return nil, fmt.Errorf("compiler: grid %dx%d != %d qubits", spec.Rows, spec.Cols, n)
		}
		return topology.Grid(spec.Rows, spec.Cols), nil
	case "full":
		return topology.FullyConnected(n), nil
	case "star":
		return topology.Star(n), nil
	case "surface17":
		if n != 17 {
			return nil, fmt.Errorf("compiler: surface17 requires 17 qubits, got %d", n)
		}
		return topology.Surface17(), nil
	case "chimera":
		t := topology.Chimera(spec.Rows, spec.Cols, spec.K)
		if t.N != n {
			return nil, fmt.Errorf("compiler: chimera(%d,%d,%d) has %d qubits, config says %d",
				spec.Rows, spec.Cols, spec.K, t.N, n)
		}
		return t, nil
	case "custom":
		t := topology.New("custom", n)
		for _, e := range spec.Edges {
			t.AddEdge(e[0], e[1])
		}
		return t, nil
	default:
		return nil, fmt.Errorf("compiler: unknown topology kind %q", spec.Kind)
	}
}
