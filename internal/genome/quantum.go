package genome

import (
	"fmt"
	"math"

	"repro/internal/grover"
	"repro/internal/qam"
)

// QuantumAligner aligns reads against a reference by storing every
// indexed reference slice in a quantum associative memory and recalling
// the closest match (§3.2): "the reference DNA is sliced and stored as
// indexed entries in a superposed quantum database … A quantum search on
// the database amplifies the measurement probability of the nearest match
// to the query and thereby of the corresponding index."
type QuantumAligner struct {
	Reference string
	ReadLen   int
	IndexBits int
	DataBits  int
	memory    *qam.Memory
}

// NewQuantumAligner slices the reference into all substrings of length
// readLen and stores (index ‖ encoded slice) patterns. The register is
// IndexBits + 2·readLen qubits and must fit in the simulator.
func NewQuantumAligner(reference string, readLen int) (*QuantumAligner, error) {
	positions := len(reference) - readLen + 1
	if positions < 1 {
		return nil, fmt.Errorf("genome: reference shorter than read length")
	}
	indexBits := bitsFor(positions)
	dataBits := 2 * readLen
	n := indexBits + dataBits
	if n > 24 {
		return nil, fmt.Errorf("genome: aligner needs %d qubits (> 24); shrink the reference or read length", n)
	}
	patterns := make([]int, 0, positions)
	seen := map[int]bool{}
	for pos := 0; pos < positions; pos++ {
		data, err := EncodeSequence(reference[pos : pos+readLen])
		if err != nil {
			return nil, err
		}
		pat := pos | data<<uint(indexBits)
		if seen[pat] {
			continue // identical slice at duplicate position cannot repeat; indexes differ, so this never fires
		}
		seen[pat] = true
		patterns = append(patterns, pat)
	}
	mem, err := qam.Store(n, patterns)
	if err != nil {
		return nil, err
	}
	return &QuantumAligner{
		Reference: reference,
		ReadLen:   readLen,
		IndexBits: indexBits,
		DataBits:  dataBits,
		memory:    mem,
	}, nil
}

func bitsFor(n int) int {
	b := 0
	for (1 << uint(b)) < n {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// QuantumAlignment is the result of a quantum alignment.
type QuantumAlignment struct {
	Position    int
	Mismatches  int
	SuccessProb float64 // probability mass on correct-match patterns
	Iterations  int     // Grover iterations used
	Qubits      int
}

// Align amplifies the slices within maxMismatch base mismatches of the
// read and returns the most probable index. The oracle compares decoded
// bases, not raw bits, so one base error counts once.
func (a *QuantumAligner) Align(read string, maxMismatch int) (*QuantumAlignment, error) {
	if len(read) != a.ReadLen {
		return nil, fmt.Errorf("genome: read length %d != aligner %d", len(read), a.ReadLen)
	}
	readCode, err := EncodeSequence(read)
	if err != nil {
		return nil, err
	}
	oracle := func(idx int) bool {
		data := idx >> uint(a.IndexBits)
		return baseMismatches(data, readCode, a.ReadLen) <= maxMismatch
	}
	// Count matching stored patterns to pick the optimal iteration count.
	matches := 0
	for _, p := range a.memory.Patterns {
		if oracle(p) {
			matches++
		}
	}
	if matches == 0 {
		return nil, fmt.Errorf("genome: no slice within %d mismatches", maxMismatch)
	}
	iterations := grover.OptimalIterations(a.memory.Capacity(), matches)
	if iterations == 0 {
		iterations = 1
	}
	res := grover.Amplify(a.memory.State(), oracle, iterations)
	probs := res.State.Probabilities()
	bestIdx, bestP := 0, 0.0
	for idx, p := range probs {
		if p > bestP {
			bestIdx, bestP = idx, p
		}
	}
	pos := bestIdx & (1<<uint(a.IndexBits) - 1)
	data := bestIdx >> uint(a.IndexBits)
	return &QuantumAlignment{
		Position:    pos,
		Mismatches:  baseMismatches(data, readCode, a.ReadLen),
		SuccessProb: res.SuccessProb,
		Iterations:  iterations,
		Qubits:      a.IndexBits + a.DataBits,
	}, nil
}

// baseMismatches counts differing bases between two 2-bit-packed
// sequences of the given length.
func baseMismatches(a, b, length int) int {
	mism := 0
	for i := 0; i < length; i++ {
		if (a>>uint(2*i))&3 != (b>>uint(2*i))&3 {
			mism++
		}
	}
	return mism
}

// LogicalQubitEstimate models the register size for genome-scale
// alignment: an index register of ⌈log₂N⌉ qubits, 2L data qubits for an
// L-base read, and an ancilla counter of ⌈log₂2L⌉+2 qubits for the
// mismatch comparator. For the human genome (N≈3.1·10⁹) with L=50 reads
// this gives ≈141 — the "around 150 logical qubits" estimate of §2.3.
func LogicalQubitEstimate(genomeLen, readLen int) int {
	index := int(math.Ceil(math.Log2(float64(genomeLen))))
	data := 2 * readLen
	ancilla := int(math.Ceil(math.Log2(float64(2*readLen)))) + 2
	return index + data + ancilla
}

// ClassicalMemoryBits returns the bits a classical index of all slices
// needs (positions × 2L data bits), against which the QAM's n-qubit
// register is the exponential-capacity claim of §2.3.
func ClassicalMemoryBits(genomeLen, readLen int) int {
	positions := genomeLen - readLen + 1
	if positions < 0 {
		return 0
	}
	return positions * 2 * readLen
}
