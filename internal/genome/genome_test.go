package genome

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateDNAStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dna := GenerateDNA(20000, rng)
	if len(dna) != 20000 {
		t.Fatalf("length %d", len(dna))
	}
	for i := 0; i < len(dna); i++ {
		if BaseIndex(dna[i]) < 0 {
			t.Fatalf("invalid base %q", dna[i])
		}
	}
	gc := GCContent(dna)
	if gc < 0.35 || gc > 0.50 {
		t.Errorf("GC content %v outside human-like band", gc)
	}
	h := BaseEntropy(dna)
	if h < 1.9 || h > 2.0 {
		t.Errorf("entropy %v should be near but below 2 bits", h)
	}
	// CpG depletion: count CG dinucleotides vs GC.
	cg := strings.Count(dna, "CG")
	gcPairs := strings.Count(dna, "GC")
	if cg*2 >= gcPairs {
		t.Errorf("CpG not depleted: CG=%d GC=%d", cg, gcPairs)
	}
}

func TestEncodeDecodeSequence(t *testing.T) {
	code, err := EncodeSequence("ACGT")
	if err != nil {
		t.Fatal(err)
	}
	if got := DecodeSequence(code, 4); got != "ACGT" {
		t.Errorf("round trip = %q", got)
	}
	if _, err := EncodeSequence("ACGX"); err == nil {
		t.Error("invalid base accepted")
	}
	if _, err := EncodeSequence(strings.Repeat("A", 31)); err == nil {
		t.Error("overlong sequence accepted")
	}
}

// Property: encode/decode round-trips for random sequences.
func TestEncodeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		seq := GenerateDNA(n, rng)
		code, err := EncodeSequence(seq)
		if err != nil {
			return false
		}
		return DecodeSequence(code, n) == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSampleReads(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := GenerateDNA(500, rng)
	reads := SampleReads(ref, 20, 50, 0, rng)
	for _, r := range reads {
		if ref[r.Origin:r.Origin+20] != r.Seq {
			t.Fatalf("error-free read differs from reference at %d", r.Origin)
		}
	}
	noisy := SampleReads(ref, 20, 200, 0.1, rng)
	mismatches := 0
	for _, r := range noisy {
		orig := ref[r.Origin : r.Origin+20]
		for j := range r.Seq {
			if r.Seq[j] != orig[j] {
				mismatches++
			}
		}
	}
	rate := float64(mismatches) / float64(200*20)
	if rate < 0.05 || rate > 0.15 {
		t.Errorf("observed error rate %v, want ≈0.1", rate)
	}
}

func TestNaiveAlign(t *testing.T) {
	ref := "AAAACGTACGTAAAA"
	a := NaiveAlign(ref, "ACGTACGT")
	if a.Position != 3 || a.Mismatches != 0 {
		t.Errorf("alignment = %+v", a)
	}
	// One error still aligns to the right place.
	a = NaiveAlign(ref, "ACGTTCGT")
	if a.Position != 3 || a.Mismatches != 1 {
		t.Errorf("noisy alignment = %+v", a)
	}
	if a.Comparisons <= 0 {
		t.Error("no comparisons counted")
	}
}

func TestIndexAlignMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := GenerateDNA(2000, rng)
	idx := BuildIndex(ref, 8)
	reads := SampleReads(ref, 24, 40, 0.02, rng)
	for _, r := range reads {
		naive := NaiveAlign(ref, r.Seq)
		indexed := idx.Align(r.Seq)
		if indexed.Position < 0 {
			// Seed-and-extend can miss when every seed k-mer has an
			// error; acceptable for a heuristic, skip.
			continue
		}
		if indexed.Mismatches < naive.Mismatches {
			t.Fatalf("indexed better than exhaustive?! %+v vs %+v", indexed, naive)
		}
		if indexed.Comparisons >= naive.Comparisons {
			t.Errorf("index did not reduce comparisons: %d vs %d", indexed.Comparisons, naive.Comparisons)
		}
	}
}

func TestQuantumAlignerExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := GenerateDNA(60, rng) // 6 index bits + 8 data bits = 14 qubits
	qa, err := NewQuantumAligner(ref, 4)
	if err != nil {
		t.Fatal(err)
	}
	reads := SampleReads(ref, 4, 10, 0, rng)
	for _, r := range reads {
		res, err := qa.Align(r.Seq, 0)
		if err != nil {
			t.Fatal(err)
		}
		// The recalled slice must equal the read (duplicates may map to a
		// different but identical position).
		got := ref[res.Position : res.Position+4]
		if got != r.Seq {
			t.Errorf("aligned %q at %d, want %q", got, res.Position, r.Seq)
		}
		if res.SuccessProb < 0.5 {
			t.Errorf("success prob %v", res.SuccessProb)
		}
	}
}

func TestQuantumAlignerApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := GenerateDNA(40, rng)
	qa, err := NewQuantumAligner(ref, 4)
	if err != nil {
		t.Fatal(err)
	}
	reads := SampleReads(ref, 4, 6, 0.15, rng)
	for _, r := range reads {
		res, err := qa.Align(r.Seq, 1)
		if err != nil {
			continue // read may have ≥2 errors; oracle finds nothing
		}
		if res.Mismatches > 1 {
			t.Errorf("returned slice with %d mismatches under bound 1", res.Mismatches)
		}
	}
}

func TestQuantumAlignerSizeGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ref := GenerateDNA(4000, rng)
	if _, err := NewQuantumAligner(ref, 12); err == nil {
		t.Error("oversized aligner accepted")
	}
	if _, err := NewQuantumAligner("ACG", 10); err == nil {
		t.Error("reference shorter than read accepted")
	}
}

func TestLogicalQubitEstimate(t *testing.T) {
	// Human genome with 50-base reads: the paper's ≈150 logical qubits.
	got := LogicalQubitEstimate(3_100_000_000, 50)
	if got < 130 || got > 160 {
		t.Errorf("human-genome estimate = %d, want ≈150 (paper §2.3)", got)
	}
	// Small instances stay small.
	if small := LogicalQubitEstimate(1024, 4); small > 30 {
		t.Errorf("small estimate = %d", small)
	}
}

func TestClassicalMemoryComparison(t *testing.T) {
	// The QAM register is exponentially smaller than the classical slice
	// table.
	classical := ClassicalMemoryBits(1<<20, 16)
	quantum := LogicalQubitEstimate(1<<20, 16)
	if classical <= quantum*1000 {
		t.Errorf("classical %d bits vs quantum %d qubits: expected orders of magnitude", classical, quantum)
	}
}
