// Package genome implements the quantum genome sequencing accelerator of
// §3.2: artificial DNA generation that "preserves the statistical and
// entropic complexity of the base pairs in biological genomes; yet in a
// reduced size", read sampling with sequencing errors, classical
// alignment baselines, and the quantum aligner that stores indexed
// reference slices in a quantum associative memory and recalls the
// closest match with Grover-style amplification.
package genome

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Bases of DNA in encoding order: A=0, C=1, G=2, T=3 (2 bits per base).
const Bases = "ACGT"

// markovOrder1 is an order-1 transition table with human-like dinucleotide
// bias: overall GC content ≈ 41 % and the characteristic CpG (C→G)
// depletion of mammalian genomes. Rows: previous base A,C,G,T; columns:
// next base A,C,G,T.
var markovOrder1 = [4][4]float64{
	{0.33, 0.18, 0.27, 0.22}, // after A
	{0.35, 0.25, 0.05, 0.35}, // after C (CpG depletion: C→G rare)
	{0.28, 0.21, 0.25, 0.26}, // after G
	{0.22, 0.20, 0.25, 0.33}, // after T
}

// GenerateDNA returns an artificial DNA string of the given length from
// the order-1 Markov model.
func GenerateDNA(length int, rng *rand.Rand) string {
	if length <= 0 {
		return ""
	}
	var b strings.Builder
	b.Grow(length)
	cur := rng.Intn(4)
	b.WriteByte(Bases[cur])
	for i := 1; i < length; i++ {
		r := rng.Float64()
		row := markovOrder1[cur]
		next := 3
		acc := 0.0
		for j := 0; j < 4; j++ {
			acc += row[j]
			if r < acc {
				next = j
				break
			}
		}
		b.WriteByte(Bases[next])
		cur = next
	}
	return b.String()
}

// BaseIndex returns the 2-bit code of a base, or -1 for a non-base byte.
func BaseIndex(b byte) int {
	switch b {
	case 'A', 'a':
		return 0
	case 'C', 'c':
		return 1
	case 'G', 'g':
		return 2
	case 'T', 't':
		return 3
	}
	return -1
}

// EncodeSequence packs a DNA string into an integer, 2 bits per base,
// first base in the lowest bits. Sequences longer than 30 bases overflow.
func EncodeSequence(seq string) (int, error) {
	if len(seq) > 30 {
		return 0, fmt.Errorf("genome: sequence %q too long to encode", seq)
	}
	out := 0
	for i := 0; i < len(seq); i++ {
		code := BaseIndex(seq[i])
		if code < 0 {
			return 0, fmt.Errorf("genome: invalid base %q", seq[i])
		}
		out |= code << uint(2*i)
	}
	return out, nil
}

// DecodeSequence unpacks an integer into a DNA string of the given
// length.
func DecodeSequence(code, length int) string {
	var b strings.Builder
	for i := 0; i < length; i++ {
		b.WriteByte(Bases[(code>>uint(2*i))&3])
	}
	return b.String()
}

// BaseEntropy returns the empirical Shannon entropy of the base
// distribution in bits (max 2 for uniform ACGT).
func BaseEntropy(seq string) float64 {
	var counts [4]float64
	total := 0.0
	for i := 0; i < len(seq); i++ {
		if c := BaseIndex(seq[i]); c >= 0 {
			counts[c]++
			total++
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := c / total
			h -= p * math.Log2(p)
		}
	}
	return h
}

// GCContent returns the fraction of G and C bases.
func GCContent(seq string) float64 {
	if len(seq) == 0 {
		return 0
	}
	gc := 0
	for i := 0; i < len(seq); i++ {
		if c := BaseIndex(seq[i]); c == 1 || c == 2 {
			gc++
		}
	}
	return float64(gc) / float64(len(seq))
}

// Read is one sequencing read with its true origin (for evaluation).
type Read struct {
	Seq    string
	Origin int // position in the reference the read was sampled from
}

// SampleReads draws reads of the given length from random reference
// positions, flipping each base to a random other base with probability
// errRate — the "inherent read errors in the sequence" of §3.2.
func SampleReads(reference string, readLen, count int, errRate float64, rng *rand.Rand) []Read {
	if readLen <= 0 || readLen > len(reference) {
		panic("genome: bad read length")
	}
	reads := make([]Read, count)
	for i := range reads {
		pos := rng.Intn(len(reference) - readLen + 1)
		seq := []byte(reference[pos : pos+readLen])
		for j := range seq {
			if rng.Float64() < errRate {
				// Substitute with one of the three other bases.
				cur := BaseIndex(seq[j])
				seq[j] = Bases[(cur+1+rng.Intn(3))%4]
			}
		}
		reads[i] = Read{Seq: string(seq), Origin: pos}
	}
	return reads
}

// Alignment is the result of aligning one read.
type Alignment struct {
	Position   int
	Mismatches int
	// Comparisons counts base-level comparisons (the classical work
	// metric for the quantum-vs-classical benchmarks).
	Comparisons int
}

// NaiveAlign scans every reference position and returns the one with the
// fewest mismatches (first on ties).
func NaiveAlign(reference, read string) Alignment {
	best := Alignment{Position: -1, Mismatches: len(read) + 1}
	comparisons := 0
	for pos := 0; pos+len(read) <= len(reference); pos++ {
		mism := 0
		for j := 0; j < len(read); j++ {
			comparisons++
			if reference[pos+j] != read[j] {
				mism++
				if mism >= best.Mismatches {
					break // early exit: cannot beat the current best
				}
			}
		}
		if mism < best.Mismatches {
			best.Mismatches = mism
			best.Position = pos
		}
	}
	best.Comparisons = comparisons
	return best
}

// Index is a k-mer hash index over the reference (the classical
// seed-and-extend baseline, in the spirit of BWA-style aligners the
// paper's group accelerated on FPGAs).
type Index struct {
	K         int
	Reference string
	seeds     map[string][]int
}

// BuildIndex indexes every k-mer of the reference.
func BuildIndex(reference string, k int) *Index {
	idx := &Index{K: k, Reference: reference, seeds: map[string][]int{}}
	for pos := 0; pos+k <= len(reference); pos++ {
		kmer := reference[pos : pos+k]
		idx.seeds[kmer] = append(idx.seeds[kmer], pos)
	}
	return idx
}

// Align seeds with the read's k-mers and verifies candidates, returning
// the best position (fewest mismatches).
func (idx *Index) Align(read string) Alignment {
	best := Alignment{Position: -1, Mismatches: len(read) + 1}
	comparisons := 0
	tried := map[int]bool{}
	for off := 0; off+idx.K <= len(read); off += idx.K {
		kmer := read[off : off+idx.K]
		for _, seedPos := range idx.seeds[kmer] {
			pos := seedPos - off
			if pos < 0 || pos+len(read) > len(idx.Reference) || tried[pos] {
				continue
			}
			tried[pos] = true
			mism := 0
			for j := 0; j < len(read); j++ {
				comparisons++
				if idx.Reference[pos+j] != read[j] {
					mism++
					if mism >= best.Mismatches {
						break
					}
				}
			}
			if mism < best.Mismatches {
				best.Mismatches = mism
				best.Position = pos
			}
		}
	}
	best.Comparisons = comparisons
	return best
}
