// Package qam implements the quantum associative memory of §3.2
// (Ventura–Martinez style): a set of bit patterns stored as an equal
// superposition, recalled by amplitude amplification of the patterns
// closest to a query — the primitive behind the DNA read-alignment
// accelerator, where "the reference DNA is sliced and stored as indexed
// entries in a superposed quantum database giving exponential increase in
// capacity".
package qam

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/grover"
	"repro/internal/quantum"
)

// Memory is a quantum associative memory over n qubits.
type Memory struct {
	NumQubits int
	Patterns  []int
	state     *quantum.State
}

// Store builds the memory state: an equal superposition over the given
// patterns. (The Ventura–Martinez construction reaches this state with a
// polynomial-length circuit; here the state is prepared directly, which
// is unitarily equivalent.)
func Store(n int, patterns []int) (*Memory, error) {
	if n < 1 || n > 24 {
		return nil, fmt.Errorf("qam: unsupported register size %d", n)
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("qam: no patterns to store")
	}
	seen := map[int]bool{}
	for _, p := range patterns {
		if p < 0 || p >= 1<<uint(n) {
			return nil, fmt.Errorf("qam: pattern %d out of range for %d qubits", p, n)
		}
		if seen[p] {
			return nil, fmt.Errorf("qam: duplicate pattern %d", p)
		}
		seen[p] = true
	}
	s := quantum.NewState(n)
	s.SetAmplitude(0, 0)
	amp := complex(1/math.Sqrt(float64(len(patterns))), 0)
	for _, p := range patterns {
		s.SetAmplitude(p, amp)
	}
	return &Memory{NumQubits: n, Patterns: append([]int(nil), patterns...), state: s}, nil
}

// State returns a copy of the stored superposition.
func (m *Memory) State() *quantum.State { return m.state.Clone() }

// Capacity returns the number of stored patterns; the superposition holds
// them in n qubits — the exponential capacity increase of §3.2.
func (m *Memory) Capacity() int { return len(m.Patterns) }

// HammingDistance counts differing bits between two n-bit words.
func HammingDistance(a, b int) int { return bits.OnesCount(uint(a ^ b)) }

// RecallResult reports a recall operation.
type RecallResult struct {
	State       *quantum.State
	Iterations  int
	SuccessProb float64 // mass on patterns within the distance bound
	Matches     []int   // stored patterns within the distance bound
}

// Recall amplifies the stored patterns within maxDist Hamming distance of
// query, using amplitude amplification about the memory state. With
// iterations ≤ 0 the optimal count for the match fraction is used.
func (m *Memory) Recall(query, maxDist, iterations int) (*RecallResult, error) {
	if query < 0 || query >= 1<<uint(m.NumQubits) {
		return nil, fmt.Errorf("qam: query %d out of range", query)
	}
	var matches []int
	for _, p := range m.Patterns {
		if HammingDistance(p, query) <= maxDist {
			matches = append(matches, p)
		}
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("qam: no stored pattern within distance %d of query", maxDist)
	}
	oracle := func(idx int) bool { return HammingDistance(idx, query) <= maxDist }
	if iterations <= 0 {
		iterations = grover.OptimalIterations(len(m.Patterns), len(matches))
		if iterations == 0 {
			iterations = 1
		}
	}
	res := grover.Amplify(m.state, oracle, iterations)
	// Success = mass on the matching stored patterns specifically.
	var p float64
	probs := res.State.Probabilities()
	for _, pat := range matches {
		p += probs[pat]
	}
	return &RecallResult{
		State:       res.State,
		Iterations:  iterations,
		SuccessProb: p,
		Matches:     matches,
	}, nil
}

// BestRecall measures the recalled state's distribution and returns the
// most probable basis state — the "closest match" estimate of §3.2.
func (m *Memory) BestRecall(query, maxDist int) (int, float64, error) {
	res, err := m.Recall(query, maxDist, 0)
	if err != nil {
		return 0, 0, err
	}
	probs := res.State.Probabilities()
	best, bestP := 0, 0.0
	for idx, p := range probs {
		if p > bestP {
			best, bestP = idx, p
		}
	}
	return best, bestP, nil
}
