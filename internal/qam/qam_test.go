package qam

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStoreBuildsUniformSuperposition(t *testing.T) {
	patterns := []int{3, 5, 9}
	m, err := Store(4, patterns)
	if err != nil {
		t.Fatal(err)
	}
	probs := m.State().Probabilities()
	want := 1.0 / 3
	for idx, p := range probs {
		stored := idx == 3 || idx == 5 || idx == 9
		if stored && math.Abs(p-want) > 1e-9 {
			t.Errorf("pattern %d probability %v, want %v", idx, p, want)
		}
		if !stored && p > 1e-12 {
			t.Errorf("non-pattern %d has probability %v", idx, p)
		}
	}
	if m.Capacity() != 3 {
		t.Errorf("capacity = %d", m.Capacity())
	}
}

func TestStoreValidation(t *testing.T) {
	if _, err := Store(2, nil); err == nil {
		t.Error("empty pattern set accepted")
	}
	if _, err := Store(2, []int{5}); err == nil {
		t.Error("out-of-range pattern accepted")
	}
	if _, err := Store(2, []int{1, 1}); err == nil {
		t.Error("duplicate pattern accepted")
	}
	if _, err := Store(30, []int{0}); err == nil {
		t.Error("oversized register accepted")
	}
}

func TestHammingDistance(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0b0000, 0b0000, 0},
		{0b1111, 0b0000, 4},
		{0b1010, 0b0110, 2},
	}
	for _, c := range cases {
		if got := HammingDistance(c.a, c.b); got != c.want {
			t.Errorf("Hamming(%b,%b) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRecallExactMatch(t *testing.T) {
	// 16 stored patterns in 6 qubits; recall one exactly.
	patterns := make([]int, 16)
	for i := range patterns {
		patterns[i] = i * 4 // spread across the space
	}
	m, err := Store(6, patterns)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Recall(24, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0] != 24 {
		t.Fatalf("matches = %v", res.Matches)
	}
	if res.SuccessProb < 0.9 {
		t.Errorf("recall success %v", res.SuccessProb)
	}
}

func TestRecallApproximateMatch(t *testing.T) {
	// Query differs from one stored pattern by one bit.
	m, err := Store(5, []int{0b00000, 0b11111, 0b10101, 0b01010})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Recall(0b11011, 1, 0) // distance 1 from 11111
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0] != 0b11111 {
		t.Fatalf("matches = %v", res.Matches)
	}
	if res.SuccessProb < 0.9 {
		t.Errorf("approximate recall success %v", res.SuccessProb)
	}
}

func TestRecallNoMatch(t *testing.T) {
	m, _ := Store(4, []int{0})
	if _, err := m.Recall(0b1111, 1, 0); err == nil {
		t.Error("impossible recall accepted")
	}
	if _, err := m.Recall(99, 0, 0); err == nil {
		t.Error("out-of-range query accepted")
	}
}

func TestBestRecallReturnsNearest(t *testing.T) {
	m, err := Store(6, []int{7, 21, 42, 56})
	if err != nil {
		t.Fatal(err)
	}
	best, p, err := m.BestRecall(20, 1) // distance 1 from 21 only
	if err != nil {
		t.Fatal(err)
	}
	if best != 21 {
		t.Errorf("best recall = %d, want 21", best)
	}
	if p < 0.5 {
		t.Errorf("best probability %v", p)
	}
}

// Property: recall never amplifies states that were not stored.
func TestRecallSupportProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 4 + int(seed%3+3)%3
		dim := 1 << uint(n)
		patterns := []int{}
		for i := 0; i < dim; i += 3 {
			patterns = append(patterns, i)
		}
		m, err := Store(n, patterns)
		if err != nil {
			return false
		}
		q := patterns[int(seed%int64(len(patterns))+int64(len(patterns)))%len(patterns)]
		res, err := m.Recall(q, 0, 0)
		if err != nil {
			return false
		}
		stored := map[int]bool{}
		for _, p := range patterns {
			stored[p] = true
		}
		for idx, prob := range res.State.Probabilities() {
			if !stored[idx] && prob > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
