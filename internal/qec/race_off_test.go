//go:build !race

package qec

const raceEnabled = false
