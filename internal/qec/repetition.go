package qec

import (
	"fmt"
	"math/rand"
)

// RepetitionCode is the distance-d bit-flip code: the "small code"
// alternative to surface codes that Preskill's NISQ argument (§2.1)
// brought back into focus — d data qubits, d−1 parity ancillas, majority
// decoding.
type RepetitionCode struct {
	D int
}

// NewRepetitionCode returns a distance-d repetition code (d odd ≥ 3).
func NewRepetitionCode(d int) (*RepetitionCode, error) {
	if d < 3 || d%2 == 0 {
		return nil, fmt.Errorf("qec: repetition distance must be odd ≥ 3, got %d", d)
	}
	return &RepetitionCode{D: d}, nil
}

// Syndrome returns the parities of adjacent data-qubit pairs.
func (rc *RepetitionCode) Syndrome(errs []bool) []int {
	var defects []int
	for i := 0; i+1 < rc.D; i++ {
		if errs[i] != errs[i+1] {
			defects = append(defects, i)
		}
	}
	return defects
}

// Decode corrects by majority vote: if more than half the qubits flipped,
// the minority is "corrected" into a logical error.
func (rc *RepetitionCode) Decode(errs []bool) (correction []bool) {
	count := 0
	for _, e := range errs {
		if e {
			count++
		}
	}
	correction = make([]bool, rc.D)
	if count > rc.D/2 {
		// Majority flipped: decoder flips the remaining minority (a
		// logical error).
		for i, e := range errs {
			correction[i] = !e
		}
	} else {
		copy(correction, errs)
	}
	return correction
}

// LogicalErrorRate estimates the probability that more than ⌊d/2⌋ qubits
// flip (majority decoding fails) at physical error rate p.
func (rc *RepetitionCode) LogicalErrorRate(p float64, trials int, rng *rand.Rand) float64 {
	failures := 0
	for t := 0; t < trials; t++ {
		count := 0
		for q := 0; q < rc.D; q++ {
			if rng.Float64() < p {
				count++
			}
		}
		if count > rc.D/2 {
			failures++
		}
	}
	return float64(failures) / float64(trials)
}

// ESMCycleOps counts the operations of one parity-check round: per
// ancilla 1 prep + 2 CNOTs + 1 measure.
func (rc *RepetitionCode) ESMCycleOps() int {
	return (rc.D - 1) * 4
}

// OverheadFraction returns the fraction of operations spent on error
// correction when logicalOps logical operations are interleaved with
// rounds ESM rounds — quantifying the paper's "fault-tolerant computation
// can easily consume more than 90% of the actual computational activity".
func OverheadFraction(esmOpsPerRound, rounds, logicalOps int) float64 {
	qec := esmOpsPerRound * rounds
	total := qec + logicalOps
	if total == 0 {
		return 0
	}
	return float64(qec) / float64(total)
}
