package qec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSurfaceCodeLayout(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		sc, err := NewSurfaceCode(d)
		if err != nil {
			t.Fatal(err)
		}
		if sc.NumDataQubits() != d*d {
			t.Errorf("d=%d: data qubits %d", d, sc.NumDataQubits())
		}
		if sc.NumAncillas() != d*d-1 {
			t.Errorf("d=%d: ancillas %d, want %d", d, sc.NumAncillas(), d*d-1)
		}
		// Half of stabilizers (±1) of each type.
		z, x := 0, 0
		for _, s := range sc.Stabilizers {
			switch s.Type {
			case ZType:
				z++
			case XType:
				x++
			}
			if len(s.Support) != 2 && len(s.Support) != 4 {
				t.Errorf("d=%d: stabilizer support %d", d, len(s.Support))
			}
		}
		if z+x != d*d-1 || abs(z-x) > 1 {
			t.Errorf("d=%d: type split %d/%d", d, z, x)
		}
	}
	if _, err := NewSurfaceCode(4); err == nil {
		t.Error("even distance accepted")
	}
	if _, err := NewSurfaceCode(1); err == nil {
		t.Error("d=1 accepted")
	}
}

func TestStabilizersCommute(t *testing.T) {
	// Every X stabilizer must share an even number of qubits with every
	// Z stabilizer.
	sc, _ := NewSurfaceCode(5)
	for _, a := range sc.Stabilizers {
		if a.Type != XType {
			continue
		}
		inA := map[int]bool{}
		for _, q := range a.Support {
			inA[q] = true
		}
		for _, b := range sc.Stabilizers {
			if b.Type != ZType {
				continue
			}
			shared := 0
			for _, q := range b.Support {
				if inA[q] {
					shared++
				}
			}
			if shared%2 != 0 {
				t.Fatalf("anticommuting stabilizers (%d,%d)/(%d,%d) share %d qubits",
					a.I, a.J, b.I, b.J, shared)
			}
		}
	}
}

func TestSingleErrorAlwaysCorrected(t *testing.T) {
	// Distance 3 corrects every single X error.
	sc, _ := NewSurfaceCode(3)
	for q := 0; q < sc.NumDataQubits(); q++ {
		errs := make([]bool, sc.NumDataQubits())
		errs[q] = true
		defects := sc.SyndromeZ(errs)
		correction := sc.DecodeZ(defects)
		residual := make([]bool, len(errs))
		for i := range errs {
			residual[i] = errs[i] != correction[i]
		}
		if len(sc.SyndromeZ(residual)) != 0 {
			t.Errorf("qubit %d: residual syndrome not clean", q)
		}
		if sc.LogicalXParity(residual) {
			t.Errorf("qubit %d: single error caused logical flip", q)
		}
	}
}

// Property: the decoder always returns to the code space (clean
// syndrome), for any error pattern.
func TestDecoderAlwaysCleansSyndrome(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := []int{3, 5}[int(seed%2+2)%2]
		sc, _ := NewSurfaceCode(d)
		res := sc.RunCycle(0.15, rng)
		return res.ResidualOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLogicalErrorRateImprovesWithDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := 0.02 // below threshold
	sc3, _ := NewSurfaceCode(3)
	sc5, _ := NewSurfaceCode(5)
	l3 := sc3.LogicalErrorRate(p, 4000, rng)
	l5 := sc5.LogicalErrorRate(p, 4000, rng)
	if l3 <= 0 {
		t.Skip("no failures at d=3; increase trials")
	}
	if l5 >= l3 {
		t.Errorf("d=5 (%v) should beat d=3 (%v) below threshold", l5, l3)
	}
	// And both should beat the unencoded qubit.
	if l3 >= p {
		t.Errorf("d=3 logical rate %v worse than physical %v", l3, p)
	}
}

func TestLogicalErrorRateScalesWithP(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sc, _ := NewSurfaceCode(3)
	low := sc.LogicalErrorRate(0.01, 3000, rng)
	high := sc.LogicalErrorRate(0.10, 3000, rng)
	if high <= low {
		t.Errorf("logical rate should grow with p: %v vs %v", low, high)
	}
}

func TestESMCycleOps(t *testing.T) {
	sc, _ := NewSurfaceCode(3)
	ops := sc.ESMCycleOps()
	// 8 stabilizers: 4 bulk (4 CNOT) + 4 boundary (2 CNOT) = 24 CNOTs,
	// 8 preps, 8 measures, 4 X-type × 2 H = 8. Total 48.
	if ops != 48 {
		t.Errorf("d=3 ESM ops = %d, want 48", ops)
	}
	sc5, _ := NewSurfaceCode(5)
	if sc5.ESMCycleOps() <= ops {
		t.Error("larger code should cost more per round")
	}
}

func TestOverheadFractionClaim(t *testing.T) {
	// One logical gate per ESM round on d=3: QEC consumes > 90 % of ops,
	// the paper's claim.
	sc, _ := NewSurfaceCode(3)
	frac := OverheadFraction(sc.ESMCycleOps(), 1, 1)
	if frac < 0.9 {
		t.Errorf("QEC overhead fraction %v, want > 0.9", frac)
	}
	if OverheadFraction(0, 0, 0) != 0 {
		t.Error("zero case")
	}
}

func TestRepetitionCode(t *testing.T) {
	rc, err := NewRepetitionCode(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRepetitionCode(4); err == nil {
		t.Error("even distance accepted")
	}
	// Single error: syndrome localises it, decode fixes it.
	errs := []bool{false, true, false, false, false}
	if got := rc.Syndrome(errs); len(got) != 2 {
		t.Errorf("syndrome %v", got)
	}
	corr := rc.Decode(errs)
	for i := range errs {
		if errs[i] != corr[i] {
			t.Error("single error not corrected")
		}
	}
	// Majority error: logical flip.
	errs = []bool{true, true, true, false, false}
	corr = rc.Decode(errs)
	same := 0
	for i := range errs {
		if corr[i] == errs[i] {
			same++
		}
	}
	if same != 0 {
		t.Error("majority case should correct the complement")
	}
}

func TestRepetitionSuppression(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := 0.05
	var prev float64 = 1
	for _, d := range []int{3, 5, 7} {
		rc, _ := NewRepetitionCode(d)
		rate := rc.LogicalErrorRate(p, 20000, rng)
		if rate >= prev {
			t.Errorf("d=%d rate %v not below previous %v", d, rate, prev)
		}
		prev = rate
	}
}

func TestRepetitionESMOps(t *testing.T) {
	rc, _ := NewRepetitionCode(3)
	if rc.ESMCycleOps() != 8 {
		t.Errorf("ops = %d, want 8", rc.ESMCycleOps())
	}
}
