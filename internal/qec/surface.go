// Package qec implements the quantum error correction substrate of §2.1
// ("realistic qubits"): the rotated planar surface code with data and
// ancilla qubits, error-syndrome measurement (ESM) rounds, a greedy
// matching decoder, logical error-rate estimation, and the small
// repetition codes Preskill's NISQ argument favours. The noise model is
// code-capacity (i.i.d. data-qubit errors, perfect syndrome extraction);
// circuit-level noise is modelled separately by the qx layer.
package qec

import (
	"fmt"
)

// StabilizerType distinguishes X- and Z-type plaquettes.
type StabilizerType int

// Stabilizer types.
const (
	ZType StabilizerType = iota // detects X (bit-flip) errors
	XType                       // detects Z (phase-flip) errors
)

// Stabilizer is one plaquette of the rotated surface code.
type Stabilizer struct {
	Type StabilizerType
	// I, J are plaquette coordinates: corners are data qubits
	// (I,J), (I,J+1), (I+1,J), (I+1,J+1) clipped to the d×d grid.
	I, J    int
	Support []int // data-qubit indices r*d+c
}

// SurfaceCode is a distance-d rotated planar surface code: d² data
// qubits and d²−1 stabilizers.
type SurfaceCode struct {
	D           int
	Stabilizers []Stabilizer
}

// NewSurfaceCode builds the distance-d rotated layout (d odd ≥ 3):
// interior plaquettes checkerboarded Z/X, Z-type half-plaquettes on the
// north/south boundaries and X-type on the west/east boundaries.
func NewSurfaceCode(d int) (*SurfaceCode, error) {
	if d < 3 || d%2 == 0 {
		return nil, fmt.Errorf("qec: distance must be odd and ≥ 3, got %d", d)
	}
	sc := &SurfaceCode{D: d}
	for i := -1; i < d; i++ {
		for j := -1; j < d; j++ {
			var support []int
			for _, rc := range [][2]int{{i, j}, {i, j + 1}, {i + 1, j}, {i + 1, j + 1}} {
				if rc[0] >= 0 && rc[0] < d && rc[1] >= 0 && rc[1] < d {
					support = append(support, rc[0]*d+rc[1])
				}
			}
			if len(support) < 2 {
				continue // no single-qubit stabilizers in the rotated code
			}
			sType := ZType
			if abs(i+j)%2 == 1 {
				sType = XType
			}
			north := i == -1
			south := i == d-1
			west := j == -1
			east := j == d-1
			if len(support) == 2 {
				// Boundary plaquette: keep only Z on north/south, only X
				// on west/east.
				if (north || south) && sType != ZType {
					continue
				}
				if (west || east) && sType != XType {
					continue
				}
			}
			sc.Stabilizers = append(sc.Stabilizers, Stabilizer{Type: sType, I: i, J: j, Support: support})
		}
	}
	if got, want := len(sc.Stabilizers), d*d-1; got != want {
		return nil, fmt.Errorf("qec: layout bug: %d stabilizers, want %d", got, want)
	}
	return sc, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// NumDataQubits returns d².
func (sc *SurfaceCode) NumDataQubits() int { return sc.D * sc.D }

// NumAncillas returns d²−1 (one ancilla per stabilizer).
func (sc *SurfaceCode) NumAncillas() int { return len(sc.Stabilizers) }

// SyndromeZ measures all Z-stabilizers against an X-error configuration
// (bit i set ⇔ data qubit i has an X error) and returns the indices of
// defect stabilizers (odd parity).
func (sc *SurfaceCode) SyndromeZ(xErrors []bool) []int {
	var defects []int
	for si, s := range sc.Stabilizers {
		if s.Type != ZType {
			continue
		}
		parity := 0
		for _, q := range s.Support {
			if xErrors[q] {
				parity ^= 1
			}
		}
		if parity == 1 {
			defects = append(defects, si)
		}
	}
	return defects
}

// LogicalXParity reports whether the X-error configuration flips the
// logical qubit: the overlap parity with the logical-Z column (c = 0).
// This is invariant across logical-Z representatives once the syndrome
// is clean.
func (sc *SurfaceCode) LogicalXParity(xErrors []bool) bool {
	parity := false
	for r := 0; r < sc.D; r++ {
		if xErrors[r*sc.D+0] {
			parity = !parity
		}
	}
	return parity
}

// ESMCycleOps counts the physical operations of one full error-syndrome
// measurement round: per stabilizer one ancilla preparation, one CNOT per
// support qubit, a basis change pair (H) for X-type, and one measurement.
// This is the bookkeeping behind the paper's ">90 % of computational
// activity" claim.
func (sc *SurfaceCode) ESMCycleOps() int {
	ops := 0
	for _, s := range sc.Stabilizers {
		ops++                 // prep ancilla
		ops += len(s.Support) // CNOTs
		if s.Type == XType {
			ops += 2 // H before and after
		}
		ops++ // measurement
	}
	return ops
}
