//go:build race

package qec

// raceEnabled relaxes wall-clock assertions under the race detector,
// whose instrumentation slows execution by an order of magnitude.
const raceEnabled = true
