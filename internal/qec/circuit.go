package qec

import (
	"repro/internal/circuit"
	"repro/internal/qx"
)

// zStabilizerIndices returns the indices (into Stabilizers) of the
// Z-type plaquettes, in layout order. Ancilla zi of CycleCircuit serves
// Stabilizers[zStabilizerIndices()[zi]].
func (sc *SurfaceCode) zStabilizerIndices() []int {
	var zs []int
	for si, s := range sc.Stabilizers {
		if s.Type == ZType {
			zs = append(zs, si)
		}
	}
	return zs
}

// CycleCircuit builds one circuit-level Z-syndrome extraction round as a
// pure Clifford circuit: data qubits 0..d²−1 hold the logical |0⟩, an
// identity layer on every data qubit gives a stochastic Pauli noise
// model one error-injection site per data qubit, and each Z plaquette
// gets an ancilla (qubit d²+zi) that is prepared, CNOT-coupled to its
// support and measured. The data qubits are measured last, so each shot
// yields both the syndrome and the actual error pattern.
//
// The circuit is Clifford throughout — under a tableau-compatible noise
// model (e.g. depolarizing) the stabilizer engine executes it in
// O(n²) per shot, which is what opens distance ≥ 7 (73 qubits at d=7)
// to direct Monte-Carlo on the simulator.
func (sc *SurfaceCode) CycleCircuit() *circuit.Circuit {
	nd := sc.NumDataQubits()
	zs := sc.zStabilizerIndices()
	c := circuit.New("surface_cycle", nd+len(zs))
	for q := 0; q < nd; q++ {
		c.I(q)
	}
	for zi, si := range zs {
		a := nd + zi
		c.PrepZ(a)
		for _, q := range sc.Stabilizers[si].Support {
			c.CNOT(q, a)
		}
		c.Measure(a)
	}
	for q := 0; q < nd; q++ {
		c.Measure(q)
	}
	return c
}

// CircuitLogicalErrorRate estimates the logical X error rate of one
// circuit-level ESM round under single-qubit depolarizing noise of
// probability p, executed on the given qx engine (nil selects the
// default) for the given number of shots. Each distinct measured
// outcome is decoded once: ancilla bits give the defect set, DecodeZ
// proposes a correction, and a shot fails when the residual error
// (measured data bits XOR correction) anticommutes with logical Z
// (odd overlap with column 0).
//
// Only the identity layer sees noise (CNOTs draw the two-qubit channel,
// which is off here), so the effective per-data-qubit bit-flip rate is
// 2p/3 — X and Y flip the bit, Z acts trivially on |0⟩.
func (sc *SurfaceCode) CircuitLogicalErrorRate(engine qx.Engine, p float64, shots int, seed int64) (float64, error) {
	c := sc.CycleCircuit()
	sim := qx.NewNoisyWithEngine(seed, &qx.NoiseModel{DepolarizingProb: p}, engine)
	res, err := sim.Run(c, shots)
	if err != nil {
		return 0, err
	}
	nd := sc.NumDataQubits()
	zs := sc.zStabilizerIndices()
	failures := 0
	tally := func(bit func(q int) bool, n int) {
		var defects []int
		for zi, si := range zs {
			if bit(nd + zi) {
				defects = append(defects, si)
			}
		}
		correction := sc.DecodeZ(defects)
		parity := false
		for r := 0; r < sc.D; r++ {
			q := r * sc.D
			if bit(q) != correction[q] {
				parity = !parity
			}
		}
		if parity {
			failures += n
		}
	}
	for idx, n := range res.Counts {
		idx := idx
		tally(func(q int) bool { return idx>>uint(q)&1 == 1 }, n)
	}
	for bits, n := range res.WideCounts {
		bits := bits
		tally(func(q int) bool { return bits[len(bits)-1-q] == '1' }, n)
	}
	return float64(failures) / float64(res.Shots), nil
}
