package qec

import (
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/qx"
)

func TestCycleCircuitIsClifford(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		sc, err := NewSurfaceCode(d)
		if err != nil {
			t.Fatal(err)
		}
		c := sc.CycleCircuit()
		wantQubits := sc.NumDataQubits() + len(sc.zStabilizerIndices())
		if c.NumQubits != wantQubits {
			t.Errorf("d=%d: cycle circuit has %d qubits, want %d", d, c.NumQubits, wantQubits)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("d=%d: %v", d, err)
		}
		if !circuit.IsClifford(c) {
			t.Errorf("d=%d: cycle circuit not recognised as Clifford", d)
		}
	}
}

// The qec experiment must be engine-independent: the stabilizer tableau
// and the dense engines share the PRNG walk, so the seeded logical error
// rate is bit-identical — the strongest possible differential evidence
// that the fast path computes the same physics.
func TestCircuitLogicalErrorRateEngineAgreement(t *testing.T) {
	sc, _ := NewSurfaceCode(3)
	const p, shots, seed = 0.04, 1500, 77
	stab, err := sc.CircuitLogicalErrorRate(qx.Stabilizer(), p, shots, seed)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := sc.CircuitLogicalErrorRate(qx.Optimized(), p, shots, seed)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sc.CircuitLogicalErrorRate(qx.Reference(), p, shots, seed)
	if err != nil {
		t.Fatal(err)
	}
	if stab != dense || stab != ref {
		t.Errorf("seeded logical error rates diverge: stabilizer=%v optimized=%v reference=%v",
			stab, dense, ref)
	}
}

func TestCircuitLogicalErrorRateImprovesWithDistance(t *testing.T) {
	const p, shots = 0.02, 4000
	var prev = 1.0
	for i, d := range []int{3, 5, 7} {
		sc, _ := NewSurfaceCode(d)
		rate, err := sc.CircuitLogicalErrorRate(qx.Stabilizer(), p, shots, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		if rate >= prev {
			t.Errorf("d=%d circuit-level rate %v not below d=%d rate %v", d, rate, d-2, prev)
		}
		prev = rate
	}
}

// Distance-7 is the acceptance bar: 73 qubits, circuit-level noise,
// comfortably under a second on the tableau engine — far beyond any
// dense state-vector budget (2^73 amplitudes).
func TestCircuitD7CycleFast(t *testing.T) {
	sc, err := NewSurfaceCode(7)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rate, err := sc.CircuitLogicalErrorRate(qx.Stabilizer(), 0.03, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	budget := time.Second
	if raceEnabled {
		budget = 30 * time.Second
	}
	if elapsed > budget {
		t.Errorf("d=7 circuit-level cycle took %v, want < %v", elapsed, budget)
	}
	if rate < 0 || rate > 0.5 {
		t.Errorf("d=7 logical error rate %v out of range", rate)
	}
}
