package qec

import (
	"math/rand"
)

// DecodeZ corrects an X-error syndrome by greedy matching: defects are
// paired with each other or with the west/east boundaries (where X
// chains may terminate undetected), choosing globally cheapest options
// first. It returns the correction as a set of data-qubit X flips.
// exactMatchLimit bounds the defect count for exact matching; beyond it
// the decoder falls back to a greedy pairing.
const exactMatchLimit = 16

func (sc *SurfaceCode) DecodeZ(defects []int) []bool {
	correction := make([]bool, sc.NumDataQubits())
	if len(defects) == 0 {
		return correction
	}
	var pairs [][2]int
	var boundary []int
	if len(defects) <= exactMatchLimit {
		pairs, boundary = sc.matchExact(defects)
	} else {
		pairs, boundary = sc.matchGreedy(defects)
	}
	for _, pr := range pairs {
		sc.applyPairPath(correction, sc.Stabilizers[pr[0]], sc.Stabilizers[pr[1]])
	}
	for _, di := range boundary {
		sc.applyBoundaryPath(correction, sc.Stabilizers[di])
	}
	return correction
}

// matchExact finds the minimum-total-cost matching (pairings plus
// boundary exits) by bitmask dynamic programming — equivalent to
// minimum-weight perfect matching with boundary nodes.
func (sc *SurfaceCode) matchExact(defects []int) (pairs [][2]int, boundary []int) {
	n := len(defects)
	bCost := make([]int, n)
	pCost := make([][]int, n)
	for i, di := range defects {
		bCost[i] = sc.boundaryCost(sc.Stabilizers[di])
		pCost[i] = make([]int, n)
		for j, dj := range defects {
			pCost[i][j] = pairCost(sc.Stabilizers[di], sc.Stabilizers[dj])
		}
	}
	const inf = 1 << 30
	size := 1 << uint(n)
	f := make([]int32, size)
	choice := make([]int32, size) // encoded decision for reconstruction
	for s := 1; s < size; s++ {
		f[s] = inf
		i := lowestBit(s)
		// Boundary exit for defect i.
		rest := s &^ (1 << uint(i))
		if c := int32(bCost[i]) + f[rest]; c < f[s] {
			f[s] = c
			choice[s] = -1
		}
		// Pair i with any other defect j in s.
		for j := i + 1; j < n; j++ {
			if s&(1<<uint(j)) == 0 {
				continue
			}
			rem := rest &^ (1 << uint(j))
			if c := int32(pCost[i][j]) + f[rem]; c < f[s] {
				f[s] = c
				choice[s] = int32(j)
			}
		}
	}
	// Reconstruct.
	for s := size - 1; s > 0; {
		i := lowestBit(s)
		if choice[s] == -1 {
			boundary = append(boundary, defects[i])
			s &^= 1 << uint(i)
		} else {
			j := int(choice[s])
			pairs = append(pairs, [2]int{defects[i], defects[j]})
			s &^= (1 << uint(i)) | (1 << uint(j))
		}
	}
	return pairs, boundary
}

func lowestBit(s int) int {
	i := 0
	for s&1 == 0 {
		s >>= 1
		i++
	}
	return i
}

// matchGreedy pairs defects whose pairing undercuts their combined
// boundary cost, most profitable first; leftovers exit via boundaries.
func (sc *SurfaceCode) matchGreedy(defects []int) (pairs [][2]int, boundary []int) {
	remaining := append([]int(nil), defects...)
	for len(remaining) > 1 {
		bestGain := 0
		bestA, bestB := -1, -1
		for ai := 0; ai < len(remaining); ai++ {
			a := sc.Stabilizers[remaining[ai]]
			for bi := ai + 1; bi < len(remaining); bi++ {
				b := sc.Stabilizers[remaining[bi]]
				gain := sc.boundaryCost(a) + sc.boundaryCost(b) - pairCost(a, b)
				if gain > bestGain {
					bestGain, bestA, bestB = gain, ai, bi
				}
			}
		}
		if bestA == -1 {
			break
		}
		pairs = append(pairs, [2]int{remaining[bestA], remaining[bestB]})
		remaining = removeIndices(remaining, bestA, bestB)
	}
	boundary = append(boundary, remaining...)
	return pairs, boundary
}

// pairCost is the diagonal-step distance between two Z plaquettes.
func pairCost(a, b Stabilizer) int {
	di := abs(a.I - b.I)
	dj := abs(a.J - b.J)
	if di > dj {
		return di
	}
	return dj
}

// boundaryCost is the cheaper of exiting west (j+1 steps) or east
// (d−1−j steps).
func (sc *SurfaceCode) boundaryCost(a Stabilizer) int {
	west := a.J + 1
	east := sc.D - 1 - a.J
	if west < east {
		return west
	}
	return east
}

// applyPairPath flips the data qubits on a diagonal path from plaquette a
// to plaquette b. Each diagonal step (di,dj) ∈ {±1}² between Z
// plaquettes crosses exactly one data qubit: (i + (di+1)/2, j + (dj+1)/2).
func (sc *SurfaceCode) applyPairPath(correction []bool, a, b Stabilizer) {
	i, j := a.I, a.J
	for i != b.I || j != b.J {
		di, dj := sign(b.I-i), sign(b.J-j)
		if di == 0 {
			// Zigzag: step away then back in i while progressing j.
			di = 1
			if i+1 >= sc.D-1 {
				di = -1
			}
		}
		if dj == 0 {
			dj = 1
			if j+1 >= sc.D-1 {
				dj = -1
			}
		}
		flip(correction, sc.D, i+(di+1)/2, j+(dj+1)/2)
		i += di
		j += dj
	}
}

// applyBoundaryPath flips qubits from plaquette a to the nearest X
// boundary (west or east) along a diagonal chain.
func (sc *SurfaceCode) applyBoundaryPath(correction []bool, a Stabilizer) {
	west := a.J + 1
	east := sc.D - 1 - a.J
	i, j := a.I, a.J
	dj := -1
	steps := west
	if east < west {
		dj = 1
		steps = east
	}
	for s := 0; s < steps; s++ {
		di := 1
		if i+1 >= sc.D-1 {
			di = -1
		}
		flip(correction, sc.D, i+(di+1)/2, j+(dj+1)/2)
		i += di
		j += dj
	}
}

func flip(correction []bool, d, r, c int) {
	if r >= 0 && r < d && c >= 0 && c < d {
		correction[r*d+c] = !correction[r*d+c]
	}
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

func removeIndices(xs []int, idx ...int) []int {
	drop := map[int]bool{}
	for _, i := range idx {
		drop[i] = true
	}
	out := xs[:0]
	for i, x := range xs {
		if !drop[i] {
			out = append(out, x)
		}
	}
	return out
}

// CycleResult reports one code-capacity QEC cycle.
type CycleResult struct {
	Defects      int
	LogicalError bool
	ResidualOK   bool // syndrome clean after correction
}

// RunCycle injects i.i.d. X errors with probability p per data qubit,
// extracts the Z syndrome, decodes, and reports whether a logical error
// survived.
func (sc *SurfaceCode) RunCycle(p float64, rng *rand.Rand) CycleResult {
	errs := make([]bool, sc.NumDataQubits())
	for q := range errs {
		if rng.Float64() < p {
			errs[q] = true
		}
	}
	defects := sc.SyndromeZ(errs)
	correction := sc.DecodeZ(defects)
	residual := make([]bool, len(errs))
	for q := range errs {
		residual[q] = errs[q] != correction[q]
	}
	return CycleResult{
		Defects:      len(defects),
		LogicalError: sc.LogicalXParity(residual),
		ResidualOK:   len(sc.SyndromeZ(residual)) == 0,
	}
}

// LogicalErrorRate estimates the logical X error rate at physical error
// probability p over the given number of Monte-Carlo trials.
func (sc *SurfaceCode) LogicalErrorRate(p float64, trials int, rng *rand.Rand) float64 {
	failures := 0
	for t := 0; t < trials; t++ {
		if sc.RunCycle(p, rng).LogicalError {
			failures++
		}
	}
	return float64(failures) / float64(trials)
}
