package target

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// randomDevice builds a structurally valid random device: random size,
// random ring/linear/custom topology, random gate table and a random
// (sometimes absent) calibration.
func randomDevice(rng *rand.Rand) *Device {
	n := 2 + rng.Intn(10)
	d := &Device{
		Name:           "dev-" + string(rune('a'+rng.Intn(26))),
		NumQubits:      n,
		CycleTimeNs:    1 + rng.Intn(200),
		MaxParallelOps: rng.Intn(4),
		Gates:          map[string]GateSpec{},
	}
	for _, g := range []string{"rz", "x90", "cz", "measure"} {
		if rng.Intn(3) > 0 {
			d.Gates[g] = GateSpec{DurationCycles: 1 + rng.Intn(20)}
		}
	}
	switch rng.Intn(4) {
	case 0:
		d.Topology = topology.Linear(n)
	case 1:
		d.Topology = topology.Ring(n)
	case 2:
		t := topology.New("custom", n)
		for i := 0; i+1 < n; i++ {
			t.AddEdge(i, i+1)
		}
		for k := 0; k < n/2; k++ {
			t.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		d.Topology = t
	default:
		// all-to-all
	}
	if rng.Intn(3) > 0 {
		cal := &Calibration{Qubits: make([]QubitCalibration, n)}
		for q := range cal.Qubits {
			cal.Qubits[q] = QubitCalibration{
				T1Ns:             float64(10_000 + rng.Intn(90_000)),
				T2Ns:             float64(5_000 + rng.Intn(40_000)),
				ReadoutError:     float64(rng.Intn(100)) / 1000,
				SingleQubitError: float64(rng.Intn(50)) / 10000,
			}
		}
		if d.Topology != nil {
			for _, e := range d.Topology.Edges() {
				if rng.Intn(4) > 0 {
					cal.Edges = append(cal.Edges, EdgeCalibration{
						A: e[0], B: e[1], TwoQubitError: float64(rng.Intn(200)) / 10000,
					})
				}
			}
		}
		d.Calibration = cal
	}
	return d
}

// Property: marshal → unmarshal → hash equal, over randomized devices.
func TestDeviceJSONRoundTripHashEqual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDevice(rng)
		if err := d.Validate(); err != nil {
			t.Fatalf("random device invalid: %v", err)
		}
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("parse of own marshal failed: %v\n%s", err, data)
		}
		if back.Hash() != d.Hash() {
			t.Logf("hash mismatch after round trip:\n%s", data)
			return false
		}
		// A second round trip must be byte-stable (canonical form).
		data2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		return string(data) == string(data2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHashChangesWithCalibration(t *testing.T) {
	d := Superconducting()
	base := d.Hash()
	if d.Hash() != base {
		t.Fatal("hash is not stable across calls")
	}
	recal := d.WithCalibration(d.Calibration.Clone().SetEdgeError(0, 9, 0.2))
	if recal.Hash() == base {
		t.Error("re-calibrating an edge did not change the device hash")
	}
	if d.Hash() != base {
		t.Error("WithCalibration mutated the receiver")
	}
	if d.WithCalibration(d.Calibration.Clone()).Hash() != base {
		t.Error("identical calibration changed the hash")
	}
	uncal := d.WithCalibration(nil)
	if uncal.Hash() == base {
		t.Error("dropping calibration did not change the hash")
	}
}

func TestHashIndependentOfEdgeOrder(t *testing.T) {
	d := Semiconducting()
	shuffled := d.Clone()
	for i, j := 0, len(shuffled.Calibration.Edges)-1; i < j; i, j = i+1, j-1 {
		shuffled.Calibration.Edges[i], shuffled.Calibration.Edges[j] =
			shuffled.Calibration.Edges[j], shuffled.Calibration.Edges[i]
	}
	if d.Hash() != shuffled.Hash() {
		t.Error("calibration edge order leaks into the content hash")
	}
}

func TestDeviceValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(d *Device)
		want string
	}{
		{"no qubits", func(d *Device) { d.NumQubits = 0 }, "no qubits"},
		{"topology size", func(d *Device) { d.Topology = topology.Linear(5) }, "topology size"},
		{"negative duration", func(d *Device) { d.Gates["cz"] = GateSpec{DurationCycles: -1} }, "negative duration"},
		{"cal count", func(d *Device) { d.Calibration.Qubits = d.Calibration.Qubits[:3] }, "qubit entries"},
		{"cal readout", func(d *Device) { d.Calibration.Qubits[0].ReadoutError = 1.5 }, "readout error"},
		{"cal 1q error", func(d *Device) { d.Calibration.Qubits[2].SingleQubitError = -0.1 }, "single-qubit error"},
		{"cal T1", func(d *Device) { d.Calibration.Qubits[1].T1Ns = -1 }, "negative T1/T2"},
		{"cal edge range", func(d *Device) { d.Calibration.Edges[0].B = 99 }, "out of range"},
		{"cal non-coupler", func(d *Device) {
			d.Calibration.Edges[0] = EdgeCalibration{A: 0, B: 4, TwoQubitError: 0.01}
		}, "not a coupler"},
		{"cal duplicate edge", func(d *Device) {
			d.Calibration.Edges = append(d.Calibration.Edges, d.Calibration.Edges[0])
		}, "listed twice"},
		{"cal edge error", func(d *Device) { d.Calibration.Edges[0].TwoQubitError = 1 }, "outside [0,1)"},
	}
	for _, tc := range cases {
		d := Semiconducting()
		tc.mut(d)
		err := d.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got error %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if err := Semiconducting().Validate(); err != nil {
		t.Errorf("unmutated preset invalid: %v", err)
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	for _, src := range []string{
		`not json`,
		`{"name":"x","qubits":0}`,
		// A declared topology with no qubits must error, not panic in
		// the topology constructors.
		`{"name":"x","qubits":0,"topology":{"kind":"linear"}}`,
		`{"name":"x","qubits":-2,"topology":{"kind":"custom","edges":[[0,1]]}}`,
		`{"name":"x","qubits":3,"topology":{"kind":"nosuch"}}`,
		`{"name":"x","qubits":3,"topology":{"kind":"grid","rows":2,"cols":2}}`,
		`{"name":"x","qubits":3,"calibration":{"qubits":[{"t1_ns":1}]}}`,
	} {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

func TestParseDeclarativeTopologies(t *testing.T) {
	for _, tc := range []struct {
		src   string
		edges int
	}{
		{`{"name":"l","qubits":4,"topology":{"kind":"linear"}}`, 3},
		{`{"name":"r","qubits":4,"topology":{"kind":"ring"}}`, 4},
		{`{"name":"g","qubits":4,"topology":{"kind":"grid","rows":2,"cols":2}}`, 4},
		{`{"name":"f","qubits":4,"topology":{"kind":"full"}}`, 6},
		{`{"name":"s","qubits":4,"topology":{"kind":"star"}}`, 3},
		{`{"name":"s17","qubits":17,"topology":{"kind":"surface17"}}`, 24},
		{`{"name":"c","qubits":3,"topology":{"kind":"custom","edges":[[0,1],[1,2]]}}`, 2},
	} {
		d, err := Parse([]byte(tc.src))
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		if d.Topology.NumEdges() != tc.edges {
			t.Errorf("%s: %d edges, want %d", tc.src, d.Topology.NumEdges(), tc.edges)
		}
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		d, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		if d.Name != name {
			t.Errorf("preset %q named %q", name, d.Name)
		}
		// Fresh instances: mutating one must not leak into the next.
		if d.Calibration != nil {
			d.Calibration.Qubits[0].ReadoutError = 0.9
			d2, _ := Preset(name)
			if d2.Calibration.Qubits[0].ReadoutError == 0.9 {
				t.Errorf("preset %q shares calibration state across calls", name)
			}
		}
	}
	if _, err := Preset("nosuch"); err == nil || !strings.Contains(err.Error(), "perfect") {
		t.Errorf("unknown-preset error does not list presets: %v", err)
	}
	if sc := Superconducting(); sc.Calibration.EdgeError(0, 9) != 5e-3 {
		t.Error("superconducting preset missing uniform edge calibration")
	}
}

func TestCalibrationLookupsAndUniformity(t *testing.T) {
	topo := topology.Linear(3)
	cal := Uniform(3, topo, QubitCalibration{T1Ns: 1000}, 0.01)
	if !cal.UniformEdges(topo) {
		t.Error("uniform table not reported uniform")
	}
	cal.SetEdgeError(1, 2, 0.3)
	if cal.UniformEdges(topo) {
		t.Error("skewed table reported uniform")
	}
	if got := cal.EdgeError(2, 1); got != 0.3 {
		t.Errorf("EdgeError reversed orientation = %g, want 0.3", got)
	}
	if got := cal.EdgeError(0, 2); got != 0 {
		t.Errorf("missing edge error = %g, want 0", got)
	}
	if cal.Qubit(0).T1Ns != 1000 || cal.Qubit(99) != (QubitCalibration{}) {
		t.Error("Qubit lookup wrong")
	}
	var nilCal *Calibration
	if !nilCal.UniformEdges(topo) || nilCal.EdgeError(0, 1) != 0 || nilCal.Qubit(0) != (QubitCalibration{}) {
		t.Error("nil calibration accessors not zero-valued")
	}

	// All-to-all (nil topology): uniform iff listed errors are equal and
	// either zero or covering every pair.
	full := &Calibration{Qubits: make([]QubitCalibration, 3)}
	if !full.UniformEdges(nil) {
		t.Error("edgeless all-to-all table not uniform")
	}
	full.SetEdgeError(0, 1, 0.01).SetEdgeError(0, 2, 0.01).SetEdgeError(1, 2, 0.01)
	if !full.UniformEdges(nil) {
		t.Error("fully-listed equal-error all-to-all table not uniform")
	}
	partial := &Calibration{Qubits: make([]QubitCalibration, 3)}
	partial.SetEdgeError(0, 1, 0.01)
	if partial.UniformEdges(nil) {
		t.Error("partially-listed nonzero all-to-all table reported uniform")
	}
	zeros := &Calibration{Qubits: make([]QubitCalibration, 3)}
	zeros.SetEdgeError(0, 1, 0)
	if !zeros.UniformEdges(nil) {
		t.Error("all-zero listed errors not uniform")
	}
}
