package target

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// goldenPath locates the checked-in device files relative to this
// package.
func goldenPath(name string) string {
	return filepath.Join("..", "..", "examples", "devices", name+".json")
}

// The golden files under examples/devices/ are the canonical wire form
// of the three presets: byte-identical to Marshal, and parsing them
// yields a device hash-equal to the in-code preset. They double as the
// reference schema for user-authored device files.
func TestPresetGoldenFiles(t *testing.T) {
	for _, name := range PresetNames() {
		want, err := os.ReadFile(goldenPath(name))
		if err != nil {
			t.Fatalf("golden file for preset %q missing: %v", name, err)
		}
		d, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("preset %q drifted from examples/devices/%s.json — regenerate the golden file", name, name)
		}
		parsed, err := Parse(want)
		if err != nil {
			t.Fatalf("golden file for %q does not parse: %v", name, err)
		}
		if parsed.Hash() != d.Hash() {
			t.Errorf("golden file for %q parses to hash %s, preset has %s",
				name, parsed.Hash()[:12], d.Hash()[:12])
		}
	}
}

// LoadFile and OverlayCalibrationFile back the CLIs' -target and
// -calibration flags.
func TestLoadFileAndCalibrationOverlay(t *testing.T) {
	dev, err := LoadFile(goldenPath("semiconducting"))
	if err != nil {
		t.Fatal(err)
	}
	if dev.Hash() != Semiconducting().Hash() {
		t.Error("loaded device differs from the preset")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing device file accepted")
	}

	fresh := Semiconducting().Calibration
	fresh.SetEdgeError(0, 1, 0.09)
	data, err := json.Marshal(fresh)
	if err != nil {
		t.Fatal(err)
	}
	calPath := filepath.Join(t.TempDir(), "cal.json")
	if err := os.WriteFile(calPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recal, err := OverlayCalibrationFile(dev, calPath)
	if err != nil {
		t.Fatal(err)
	}
	if recal.Calibration.EdgeError(0, 1) != 0.09 {
		t.Error("overlay did not apply the fresh table")
	}
	if dev.Calibration.EdgeError(0, 1) == 0.09 {
		t.Error("overlay mutated the original device")
	}
	if same, err := OverlayCalibrationFile(dev, ""); err != nil || same != dev {
		t.Error("empty path must return the device unchanged")
	}
	if err := os.WriteFile(calPath, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OverlayCalibrationFile(dev, calPath); err == nil {
		t.Error("malformed calibration file accepted")
	}
	if err := os.WriteFile(calPath, []byte(`{"qubits":[{"t1_ns":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OverlayCalibrationFile(dev, calPath); err == nil {
		t.Error("wrong-size calibration file accepted")
	}
}
