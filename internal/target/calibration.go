package target

import (
	"fmt"

	"repro/internal/topology"
)

// QubitCalibration is the measured error data of one physical qubit.
type QubitCalibration struct {
	// T1Ns and T2Ns are relaxation/dephasing times in nanoseconds; zero
	// disables the corresponding decoherence channel.
	T1Ns float64 `json:"t1_ns"`
	T2Ns float64 `json:"t2_ns"`
	// ReadoutError is the probability a measurement outcome is flipped.
	ReadoutError float64 `json:"readout_error"`
	// SingleQubitError is the depolarising probability per single-qubit
	// gate on this qubit.
	SingleQubitError float64 `json:"single_qubit_error,omitempty"`
}

// EdgeCalibration is the measured two-qubit gate error of one coupler.
type EdgeCalibration struct {
	A int `json:"a"`
	B int `json:"b"`
	// TwoQubitError is the depolarising probability per two-qubit gate
	// across this edge.
	TwoQubitError float64 `json:"two_qubit_error"`
}

// Calibration is a device's measured error table: one entry per qubit
// plus one entry per coupled pair. It is the data a noise-aware compiler
// pass weighs placement and routing decisions by, and the data the
// execution layer derives its noise model from.
type Calibration struct {
	Qubits []QubitCalibration `json:"qubits"`
	Edges  []EdgeCalibration  `json:"edges,omitempty"`
}

// Clone returns a deep copy.
func (c *Calibration) Clone() *Calibration {
	out := &Calibration{
		Qubits: append([]QubitCalibration(nil), c.Qubits...),
		Edges:  append([]EdgeCalibration(nil), c.Edges...),
	}
	return out
}

// Validate checks the table against a device of n qubits with the given
// topology (nil = all-to-all): one entry per qubit, probabilities in
// [0, 1), non-negative coherence times, and every edge entry naming a
// coupler that exists (at most once).
func (c *Calibration) Validate(n int, topo *topology.Topology) error {
	if len(c.Qubits) != n {
		return fmt.Errorf("calibration has %d qubit entries, device has %d qubits", len(c.Qubits), n)
	}
	for q, qc := range c.Qubits {
		if qc.T1Ns < 0 || qc.T2Ns < 0 {
			return fmt.Errorf("calibration qubit %d has negative T1/T2", q)
		}
		if qc.ReadoutError < 0 || qc.ReadoutError >= 1 {
			return fmt.Errorf("calibration qubit %d readout error %g outside [0,1)", q, qc.ReadoutError)
		}
		if qc.SingleQubitError < 0 || qc.SingleQubitError >= 1 {
			return fmt.Errorf("calibration qubit %d single-qubit error %g outside [0,1)", q, qc.SingleQubitError)
		}
	}
	seen := map[[2]int]bool{}
	for _, e := range c.Edges {
		a, b := e.A, e.B
		if a > b {
			a, b = b, a
		}
		if a < 0 || b >= n || a == b {
			return fmt.Errorf("calibration edge (%d,%d) out of range for %d qubits", e.A, e.B, n)
		}
		if topo != nil && !topo.Adjacent(e.A, e.B) {
			return fmt.Errorf("calibration edge (%d,%d) is not a coupler of the topology", e.A, e.B)
		}
		if seen[[2]int{a, b}] {
			return fmt.Errorf("calibration edge (%d,%d) listed twice", e.A, e.B)
		}
		seen[[2]int{a, b}] = true
		if e.TwoQubitError < 0 || e.TwoQubitError >= 1 {
			return fmt.Errorf("calibration edge (%d,%d) two-qubit error %g outside [0,1)", e.A, e.B, e.TwoQubitError)
		}
	}
	return nil
}

// EdgeError returns the two-qubit error of the (a,b) coupler, in either
// orientation; pairs without an entry report zero error.
func (c *Calibration) EdgeError(a, b int) float64 {
	if c == nil {
		return 0
	}
	for _, e := range c.Edges {
		if (e.A == a && e.B == b) || (e.A == b && e.B == a) {
			return e.TwoQubitError
		}
	}
	return 0
}

// Qubit returns qubit q's calibration (the zero value when q is out of
// range or the table is nil).
func (c *Calibration) Qubit(q int) QubitCalibration {
	if c == nil || q < 0 || q >= len(c.Qubits) {
		return QubitCalibration{}
	}
	return c.Qubits[q]
}

// UniformEdges reports whether every edge of the topology carries the
// same two-qubit error — a calibration with no routing signal. A nil
// topology (all-to-all) is uniform exactly when every listed edge error
// is equal and covers the same value as unlisted pairs (i.e. all zero,
// or all equal with every qubit pair listed).
func (c *Calibration) UniformEdges(topo *topology.Topology) bool {
	if c == nil {
		return true
	}
	if topo == nil {
		if len(c.Edges) == 0 {
			return true
		}
		first := c.Edges[0].TwoQubitError
		for _, e := range c.Edges[1:] {
			if e.TwoQubitError != first {
				return false
			}
		}
		if first == 0 {
			return true
		}
		// Nonzero uniform error only counts as uniform when no pair is
		// left at the implicit zero default.
		n := len(c.Qubits)
		return len(c.Edges) == n*(n-1)/2
	}
	edges := topo.Edges()
	if len(edges) == 0 {
		return true
	}
	first := c.EdgeError(edges[0][0], edges[0][1])
	for _, e := range edges[1:] {
		if c.EdgeError(e[0], e[1]) != first {
			return false
		}
	}
	return true
}

// Uniform builds a homogeneous calibration: every qubit carries the same
// coherence/readout/gate-error figures and every topology edge the same
// two-qubit error. It is how the presets express their data sheets and a
// convenient base for tests that skew a single qubit or edge.
func Uniform(n int, topo *topology.Topology, qc QubitCalibration, twoQubitError float64) *Calibration {
	cal := &Calibration{Qubits: make([]QubitCalibration, n)}
	for i := range cal.Qubits {
		cal.Qubits[i] = qc
	}
	if topo != nil {
		for _, e := range topo.Edges() {
			cal.Edges = append(cal.Edges, EdgeCalibration{A: e[0], B: e[1], TwoQubitError: twoQubitError})
		}
	}
	return cal
}

// SetEdgeError sets (or adds) the two-qubit error of the (a,b) coupler
// in place, returning the calibration for chaining — the test-and-tool
// hook for skewing one edge of a uniform table.
func (c *Calibration) SetEdgeError(a, b int, p float64) *Calibration {
	for i, e := range c.Edges {
		if (e.A == a && e.B == b) || (e.A == b && e.B == a) {
			c.Edges[i].TwoQubitError = p
			return c
		}
	}
	c.Edges = append(c.Edges, EdgeCalibration{A: a, B: b, TwoQubitError: p})
	return c
}
