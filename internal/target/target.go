// Package target is the hardware-description layer of the stack: a
// first-class model of one quantum device that unifies everything the
// compiler must know about the hardware it compiles for — qubit count,
// qubit-plane topology, the native gate set with per-gate timings,
// control-channel limits, and a Calibration table of measured error
// rates (per-qubit T1/T2 and readout error, per-edge two-qubit error).
//
// The paper's full-stack argument is that the compiler sits on a real
// description of the hardware layer, and that retargeting the stack from
// one technology to another is a change of configuration, not of code.
// A target.Device is that configuration made concrete: it serialises to
// and from JSON (see Parse and Device.MarshalJSON), validates itself,
// and carries a stable content hash (Device.Hash) so every layer above —
// compiler platforms, core stack fingerprints, the qserv compile cache —
// can tell two device revisions apart. Re-calibrating a device changes
// its hash, which invalidates cached compiles built against the stale
// calibration.
//
// The three classic presets (perfect, superconducting/Surface-17,
// semiconducting) are constructed by Preset; compiler.Platform is a thin
// view over a Device (compiler.PlatformFor).
package target

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/topology"
)

// GateSpec holds per-gate device parameters.
type GateSpec struct {
	// DurationCycles is the gate latency in micro-architecture cycles.
	DurationCycles int `json:"duration"`
}

// Device is one compilation/execution target: the unified hardware
// description the compiler and runtime layers read.
type Device struct {
	Name        string
	NumQubits   int
	CycleTimeNs int
	// Gates maps native gate names to their parameters. An empty map
	// means every gate is primitive (the perfect-qubit abstraction); a
	// gate absent from a non-empty map must be decomposed before
	// execution.
	Gates map[string]GateSpec
	// MaxParallelOps bounds simultaneously executing operations
	// (control-channel limit); 0 means unlimited.
	MaxParallelOps int
	// Topology is the qubit connectivity; nil means all-to-all.
	Topology *topology.Topology
	// Calibration is the device's measured error data; nil means
	// uncalibrated (an ideal device).
	Calibration *Calibration
}

// Validate checks internal consistency: positive qubit count, a topology
// sized to the register, non-negative gate durations, and a calibration
// table consistent with both.
func (d *Device) Validate() error {
	if d.NumQubits <= 0 {
		return fmt.Errorf("target: device %q has no qubits", d.Name)
	}
	if d.CycleTimeNs < 0 {
		return fmt.Errorf("target: device %q has negative cycle time", d.Name)
	}
	if d.Topology != nil && d.Topology.N != d.NumQubits {
		return fmt.Errorf("target: device %q topology size %d != qubits %d",
			d.Name, d.Topology.N, d.NumQubits)
	}
	// Check gates in sorted order so the reported offender is
	// deterministic when several have negative durations.
	names := make([]string, 0, len(d.Gates))
	for name := range d.Gates {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if d.Gates[name].DurationCycles < 0 {
			return fmt.Errorf("target: device %q gate %q has negative duration", d.Name, name)
		}
	}
	if d.Calibration != nil {
		if err := d.Calibration.Validate(d.NumQubits, d.Topology); err != nil {
			return fmt.Errorf("target: device %q: %w", d.Name, err)
		}
	}
	return nil
}

// Clone returns a deep copy of the device. The topology is shared — it
// is immutable once built — but gates and calibration are copied, so a
// clone can be re-calibrated without aliasing the original.
func (d *Device) Clone() *Device {
	out := &Device{
		Name:           d.Name,
		NumQubits:      d.NumQubits,
		CycleTimeNs:    d.CycleTimeNs,
		MaxParallelOps: d.MaxParallelOps,
		Topology:       d.Topology,
	}
	if d.Gates != nil {
		out.Gates = make(map[string]GateSpec, len(d.Gates))
		//qlint:nondeterministic-ok order-independent: key-preserving copy into a fresh map
		for k, v := range d.Gates {
			out.Gates[k] = v
		}
	}
	if d.Calibration != nil {
		out.Calibration = d.Calibration.Clone()
	}
	return out
}

// WithCalibration returns a copy of the device carrying the given
// calibration table (nil removes calibration). The receiver is not
// mutated — re-calibration produces a new device value with a new Hash.
func (d *Device) WithCalibration(cal *Calibration) *Device {
	out := d.Clone()
	if cal != nil {
		cal = cal.Clone()
	}
	out.Calibration = cal
	return out
}

// Hash returns the device's stable content hash: the SHA-256 of its
// canonical JSON form, hex-encoded. Two devices with identical hardware
// descriptions and calibration data hash equal regardless of how they
// were constructed (preset, JSON, or by hand); any change — a gate
// duration, an edge, a re-calibrated error rate — changes the hash.
func (d *Device) Hash() string {
	data, err := json.Marshal(d)
	if err != nil {
		// Marshal of a Device cannot fail: every field is a plain value.
		panic(fmt.Sprintf("target: hashing device %q: %v", d.Name, err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// deviceJSON is the wire form. Topology is declarative (a kind plus
// parameters, or an explicit edge list); calibration is inline.
type deviceJSON struct {
	Name           string              `json:"name"`
	NumQubits      int                 `json:"qubits"`
	CycleTimeNs    int                 `json:"cycle_time_ns"`
	Gates          map[string]GateSpec `json:"gates,omitempty"`
	MaxParallelOps int                 `json:"max_parallel_ops,omitempty"`
	Topology       *TopologySpec       `json:"topology,omitempty"`
	Calibration    *Calibration        `json:"calibration,omitempty"`
}

// TopologySpec is the declarative on-disk form of a connectivity graph.
type TopologySpec struct {
	Kind string `json:"kind"` // linear, ring, grid, full, star, surface17, chimera, custom
	Rows int    `json:"rows,omitempty"`
	Cols int    `json:"cols,omitempty"`
	K    int    `json:"k,omitempty"`
	// Edges lists explicit edges for kind "custom".
	Edges [][2]int `json:"edges,omitempty"`
}

// Build materialises the spec into a topology over n qubits.
func (spec *TopologySpec) Build(n int) (*topology.Topology, error) {
	if n <= 0 {
		// Guard before the topology constructors, which panic on
		// non-positive sizes.
		return nil, fmt.Errorf("target: topology %q needs a positive qubit count, got %d", spec.Kind, n)
	}
	switch spec.Kind {
	case "linear":
		return topology.Linear(n), nil
	case "ring":
		return topology.Ring(n), nil
	case "grid":
		if spec.Rows*spec.Cols != n {
			return nil, fmt.Errorf("target: grid %dx%d != %d qubits", spec.Rows, spec.Cols, n)
		}
		return topology.Grid(spec.Rows, spec.Cols), nil
	case "full":
		return topology.FullyConnected(n), nil
	case "star":
		return topology.Star(n), nil
	case "surface17":
		if n != 17 {
			return nil, fmt.Errorf("target: surface17 requires 17 qubits, got %d", n)
		}
		return topology.Surface17(), nil
	case "chimera":
		t := topology.Chimera(spec.Rows, spec.Cols, spec.K)
		if t.N != n {
			return nil, fmt.Errorf("target: chimera(%d,%d,%d) has %d qubits, config says %d",
				spec.Rows, spec.Cols, spec.K, t.N, n)
		}
		return t, nil
	case "custom":
		t := topology.New("custom", n)
		for _, e := range spec.Edges {
			t.AddEdge(e[0], e[1])
		}
		return t, nil
	default:
		return nil, fmt.Errorf("target: unknown topology kind %q", spec.Kind)
	}
}

// MarshalJSON renders the device in its canonical wire form. The
// topology is emitted as an explicit sorted edge list (kind "custom"),
// which makes the encoding — and therefore Hash — independent of how the
// topology was originally specified.
func (d *Device) MarshalJSON() ([]byte, error) {
	dj := deviceJSON{
		Name:           d.Name,
		NumQubits:      d.NumQubits,
		CycleTimeNs:    d.CycleTimeNs,
		Gates:          d.Gates,
		MaxParallelOps: d.MaxParallelOps,
		Calibration:    canonicalCalibration(d.Calibration),
	}
	if d.Topology != nil {
		dj.Topology = &TopologySpec{Kind: "custom", Edges: d.Topology.Edges()}
	}
	return json.Marshal(dj)
}

// canonicalCalibration returns the calibration with its edge list sorted,
// so the wire form (and the content hash built on it) does not depend on
// declaration order. Nil passes through.
func canonicalCalibration(cal *Calibration) *Calibration {
	if cal == nil {
		return nil
	}
	out := cal.Clone()
	for i, e := range out.Edges {
		if e.A > e.B {
			out.Edges[i].A, out.Edges[i].B = e.B, e.A
		}
	}
	sort.Slice(out.Edges, func(i, j int) bool {
		if out.Edges[i].A != out.Edges[j].A {
			return out.Edges[i].A < out.Edges[j].A
		}
		return out.Edges[i].B < out.Edges[j].B
	})
	return out
}

// UnmarshalJSON parses the wire form, materialising the declarative
// topology spec. Use Parse to also validate.
func (d *Device) UnmarshalJSON(data []byte) error {
	var dj deviceJSON
	if err := json.Unmarshal(data, &dj); err != nil {
		return fmt.Errorf("target: bad device JSON: %w", err)
	}
	d.Name = dj.Name
	d.NumQubits = dj.NumQubits
	d.CycleTimeNs = dj.CycleTimeNs
	d.Gates = dj.Gates
	d.MaxParallelOps = dj.MaxParallelOps
	d.Topology = nil
	d.Calibration = canonicalCalibration(dj.Calibration)
	if dj.Topology != nil {
		if dj.NumQubits <= 0 {
			return fmt.Errorf("target: device %q declares a topology but %d qubits", dj.Name, dj.NumQubits)
		}
		topo, err := dj.Topology.Build(dj.NumQubits)
		if err != nil {
			return err
		}
		d.Topology = topo
	}
	return nil
}

// Parse decodes and validates a device from its JSON form — the entry
// point for device files loaded by the CLIs and for per-job target
// overrides submitted to qserv.
func Parse(data []byte) (*Device, error) {
	d := &Device{}
	if err := json.Unmarshal(data, d); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// LoadFile reads and validates a device JSON file — the -target flag of
// the CLIs.
func LoadFile(path string) (*Device, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// OverlayCalibrationFile returns a copy of the device re-calibrated with
// the table in the given JSON file, validated against the device — the
// -calibration flag of the CLIs. An empty path returns the device
// unchanged.
func OverlayCalibrationFile(dev *Device, path string) (*Device, error) {
	if path == "" {
		return dev, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cal Calibration
	if err := json.Unmarshal(data, &cal); err != nil {
		return nil, fmt.Errorf("target: bad calibration file %s: %w", path, err)
	}
	out := dev.WithCalibration(&cal)
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Marshal renders the device as indented canonical JSON — the format of
// the golden device files under examples/devices/.
func (d *Device) Marshal() ([]byte, error) {
	compact, err := json.Marshal(d)
	if err != nil {
		return nil, err
	}
	buf, err := json.MarshalIndent(json.RawMessage(compact), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
