package target

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/topology"
)

// DefaultPerfectQubits sizes the perfect preset when it is selected by
// name (the perfect device is otherwise sized by the application; see
// Perfect).
const DefaultPerfectQubits = 10

// NISQGates is the primitive set shared by the hardware presets:
// microwave single-qubit rotations, flux-based CZ, measurement and
// reset, parameterised by the four duration classes.
func NISQGates(single, two, meas, prep int) map[string]GateSpec {
	return map[string]GateSpec{
		"i":       {DurationCycles: single},
		"rz":      {DurationCycles: single},
		"x90":     {DurationCycles: single},
		"mx90":    {DurationCycles: single},
		"y90":     {DurationCycles: single},
		"my90":    {DurationCycles: single},
		"cz":      {DurationCycles: two},
		"measure": {DurationCycles: meas},
		"prep_z":  {DurationCycles: prep},
		"wait":    {DurationCycles: 1},
		"barrier": {DurationCycles: 0},
	}
}

// Perfect returns the perfect-qubit device over n qubits: every gate
// primitive, all-to-all connectivity, no channel limits, no calibration
// — the application-development target of §2.1.
func Perfect(n int) *Device {
	return &Device{
		Name:        "perfect",
		NumQubits:   n,
		CycleTimeNs: 1,
		Gates:       map[string]GateSpec{},
	}
}

// Superconducting returns the transmon device: Surface-17 connectivity,
// 20 ns cycles, 1-cycle microwave gates, 2-cycle CZ, 15-cycle
// measurement — the experimental target of §3.1 — with a uniform
// calibration table matching its data sheet (T1 ≈ 30 µs, T2 ≈ 20 µs,
// 0.1 % single-qubit error, 0.5 % two-qubit error, 1 % readout error).
func Superconducting() *Device {
	topo := topology.Surface17()
	return &Device{
		Name:        "superconducting",
		NumQubits:   17,
		CycleTimeNs: 20,
		Gates:       NISQGates(1, 2, 15, 10),
		Topology:    topo,
		Calibration: Uniform(17, topo, QubitCalibration{
			T1Ns:             30_000,
			T2Ns:             20_000,
			ReadoutError:     0.01,
			SingleQubitError: 1e-3,
		}, 5e-3),
	}
}

// Semiconducting returns the spin-qubit device: linear array, slower
// exchange-based two-qubit gates, 100 ns cycles, shared control lines
// restricting parallelism — the second technology the paper's
// micro-architecture was retargeted to.
func Semiconducting() *Device {
	topo := topology.Linear(8)
	return &Device{
		Name:           "semiconducting",
		NumQubits:      8,
		CycleTimeNs:    100,
		Gates:          NISQGates(1, 4, 30, 20),
		MaxParallelOps: 2,
		Topology:       topo,
		Calibration: Uniform(8, topo, QubitCalibration{
			T1Ns:             80_000,
			T2Ns:             40_000,
			ReadoutError:     0.03,
			SingleQubitError: 2e-3,
		}, 1e-2),
	}
}

// presets maps preset names to constructors. Each call builds a fresh
// Device, so callers may re-calibrate without aliasing.
var presets = map[string]func() *Device{
	"perfect":         func() *Device { return Perfect(DefaultPerfectQubits) },
	"superconducting": Superconducting,
	"semiconducting":  Semiconducting,
}

// Preset constructs one of the named built-in devices: "perfect" (sized
// to DefaultPerfectQubits; use Perfect for other sizes),
// "superconducting" (Surface-17) or "semiconducting" (linear spin-qubit
// array).
func Preset(name string) (*Device, error) {
	ctor, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("target: unknown preset %q (available: %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	return ctor(), nil
}

// PresetNames returns the sorted preset names.
func PresetNames() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
