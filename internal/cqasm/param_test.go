package cqasm

import (
	"strings"
	"testing"

	"repro/internal/circuit"
)

func TestParseSymbolicParams(t *testing.T) {
	src := `version 1.0
qubits 2

.ansatz
    h q[0]
    rz q[0], 2*$gamma
    rx q[1], $beta
    rz q[1], -$gamma
    cr q[0], q[1], $gamma/2
    rz q[0], 0.25
`
	c, err := ParseToCircuit(src)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsParametric() {
		t.Fatal("parsed circuit should be parametric")
	}
	if got := c.Symbols(); len(got) != 2 || got[0] != "beta" || got[1] != "gamma" {
		t.Fatalf("Symbols = %v", got)
	}
	wantExprs := map[int]string{1: "2*$gamma", 2: "$beta", 3: "-$gamma", 4: "0.5*$gamma"}
	for i, want := range wantExprs {
		g := c.Gates[i]
		if !g.Symbolic(0) {
			t.Fatalf("gate %d (%s) should be symbolic", i, g.Name)
		}
		if got := g.Exprs[0].String(); got != want {
			t.Fatalf("gate %d expr = %q, want %q", i, got, want)
		}
	}
	if c.Gates[5].IsParametric() || c.Gates[5].Params[0] != 0.25 {
		t.Fatalf("literal gate parsed wrong: %+v", c.Gates[5])
	}

	// Print → parse round-trip preserves the expressions.
	printed := PrintCircuit(c)
	c2, err := ParseToCircuit(printed)
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, printed)
	}
	for i := range c.Gates {
		if c.Gates[i].String() != c2.Gates[i].String() {
			t.Fatalf("round-trip gate %d: %q vs %q", i, c.Gates[i].String(), c2.Gates[i].String())
		}
	}

	// Binding the parsed circuit yields the literal values.
	b, err := c.Bind(map[string]float64{"gamma": 1.5, "beta": -0.5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Gates[1].Params[0] != 3.0 || b.Gates[4].Params[0] != 0.75 {
		t.Fatalf("bound params wrong: %v %v", b.Gates[1].Params[0], b.Gates[4].Params[0])
	}
}

func TestParseSymbolicErrors(t *testing.T) {
	cases := []string{
		"version 1.0\nqubits 1\n.k\n    rz q[0], $\n",
		"version 1.0\nqubits 1\n.k\n    rz q[0], $ga mma\n",
		"version 1.0\nqubits 1\n.k\n    rz q[0], x*$g\n",
		"version 1.0\nqubits 1\n.k\n    wait $g\n",
	}
	for _, src := range cases {
		if _, err := ParseToCircuit(src); err == nil {
			t.Fatalf("expected parse error for %q", strings.Split(src, "\n")[3])
		}
	}
}

func TestSymbolic(t *testing.T) {
	// circuit.Gate renders symbolic slots through the same canonical form
	// the printer uses.
	g, err := circuit.NewGateExpr("rz", []int{0}, circuit.Sym("theta"))
	if err != nil {
		t.Fatal(err)
	}
	if got := formatGate(g); got != "rz q[0], $theta" {
		t.Fatalf("formatGate = %q", got)
	}
}
