package cqasm

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
)

// Print renders a Program as cQASM source text that Parse accepts
// (round-trip safe).
func Print(p *Program) string {
	var b strings.Builder
	version := p.Version
	if version == "" {
		version = "1.0"
	}
	fmt.Fprintf(&b, "version %s\n", version)
	fmt.Fprintf(&b, "qubits %d\n", p.NumQubits)
	for _, sub := range p.Subcircuits {
		b.WriteString("\n")
		if sub.Iterations > 1 {
			fmt.Fprintf(&b, ".%s(%d)\n", sub.Name, sub.Iterations)
		} else {
			fmt.Fprintf(&b, ".%s\n", sub.Name)
		}
		for _, bundle := range sub.Bundles {
			b.WriteString("    " + formatBundle(bundle) + "\n")
		}
	}
	return b.String()
}

// PrintCircuit renders a flat circuit as cQASM.
func PrintCircuit(c *circuit.Circuit) string {
	return Print(FromCircuit(c))
}

func formatBundle(bundle Bundle) string {
	if len(bundle.Gates) == 1 {
		return formatGate(bundle.Gates[0])
	}
	parts := make([]string, len(bundle.Gates))
	for i, g := range bundle.Gates {
		parts[i] = formatGate(g)
	}
	return "{ " + strings.Join(parts, " | ") + " }"
}

func formatGate(g circuit.Gate) string {
	var parts []string
	name := g.Name
	if g.HasCond {
		name = "c-" + name
		parts = append(parts, fmt.Sprintf("b[%d]", g.CondBit))
	}
	for _, q := range g.Qubits {
		parts = append(parts, fmt.Sprintf("q[%d]", q))
	}
	for i, p := range g.Params {
		if g.Symbolic(i) {
			// Canonical expression text ("$theta", "2*$gamma", …).
			// Single-term expressions round-trip through the parser;
			// multi-term sums only arise in compiled artefacts, which are
			// printed for inspection rather than re-parsing.
			parts = append(parts, g.Exprs[i].String())
			continue
		}
		parts = append(parts, formatFloat(p))
	}
	if len(parts) == 0 {
		return name
	}
	return name + " " + strings.Join(parts, ", ")
}

func formatFloat(v float64) string {
	// Full precision so parse→print→parse is exact.
	return strings.TrimSpace(fmt.Sprintf("%.17g", v))
}
