// Package cqasm implements the common quantum assembly language of the
// stack (§2.4): a textual, platform-independent representation of quantum
// circuits produced by the OpenQL compiler and executed by QX. It supports
// the core of cQASM 1.0: a version header, a qubit declaration,
// subcircuits with iteration counts, parallel bundles in braces, gate
// parameters (including pi expressions) and comments.
package cqasm

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
)

// Program is a parsed cQASM source: a qubit register plus an ordered list
// of subcircuits.
type Program struct {
	Version     string
	NumQubits   int
	Subcircuits []Subcircuit
}

// Subcircuit is a named block of bundles, optionally repeated.
type Subcircuit struct {
	Name       string
	Iterations int // 1 if not specified
	Bundles    []Bundle
}

// Bundle is one source line: one gate, or several gates executed in
// parallel (brace syntax). Gates in a bundle must touch disjoint qubits.
type Bundle struct {
	Gates []circuit.Gate
}

// Flatten expands the program into a single flat circuit: subcircuit
// iterations are unrolled and bundles serialised in order (semantically
// equivalent because bundled gates commute by disjointness).
func (p *Program) Flatten() (*circuit.Circuit, error) {
	c := circuit.New("cqasm", p.NumQubits)
	for _, sub := range p.Subcircuits {
		iters := sub.Iterations
		if iters < 1 {
			iters = 1
		}
		for it := 0; it < iters; it++ {
			for _, b := range sub.Bundles {
				for _, g := range b.Gates {
					for _, q := range g.Qubits {
						if q >= p.NumQubits {
							return nil, fmt.Errorf("cqasm: qubit %d exceeds register size %d", q, p.NumQubits)
						}
					}
					c.AddGate(g.Clone())
				}
			}
		}
	}
	return c, nil
}

// Validate checks register bounds, bundle disjointness and gate validity.
func (p *Program) Validate() error {
	if p.NumQubits <= 0 {
		return fmt.Errorf("cqasm: missing or invalid qubits declaration")
	}
	for _, sub := range p.Subcircuits {
		for bi, b := range sub.Bundles {
			seen := map[int]bool{}
			for _, g := range b.Gates {
				if err := g.Validate(); err != nil {
					return fmt.Errorf("cqasm: subcircuit %s bundle %d: %w", sub.Name, bi, err)
				}
				for _, q := range g.Qubits {
					if q >= p.NumQubits {
						return fmt.Errorf("cqasm: subcircuit %s bundle %d: qubit %d out of range", sub.Name, bi, q)
					}
					if seen[q] {
						return fmt.Errorf("cqasm: subcircuit %s bundle %d: qubit %d used twice in parallel bundle", sub.Name, bi, q)
					}
					seen[q] = true
				}
			}
		}
	}
	return nil
}

// FromCircuit wraps a flat circuit as a single-subcircuit program, one
// gate per bundle.
func FromCircuit(c *circuit.Circuit) *Program {
	name := c.Name
	if name == "" {
		name = "main"
	}
	sub := Subcircuit{Name: sanitizeName(name), Iterations: 1}
	for _, g := range c.Gates {
		sub.Bundles = append(sub.Bundles, Bundle{Gates: []circuit.Gate{g.Clone()}})
	}
	return &Program{
		Version:     "1.0",
		NumQubits:   c.NumQubits,
		Subcircuits: []Subcircuit{sub},
	}
}

func sanitizeName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	if b.Len() == 0 {
		return "main"
	}
	return b.String()
}
