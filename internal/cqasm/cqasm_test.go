package cqasm

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

const sample = `
version 1.0
# Bell pair with measurement
qubits 2

.init
    prep_z q[0]
    prep_z q[1]

.entangle
    h q[0]
    cnot q[0], q[1]

.readout
    measure q[0]
    measure q[1]
`

func TestParseSample(t *testing.T) {
	p, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if p.Version != "1.0" || p.NumQubits != 2 {
		t.Errorf("header parsed wrong: %+v", p)
	}
	if len(p.Subcircuits) != 3 {
		t.Fatalf("subcircuits = %d, want 3", len(p.Subcircuits))
	}
	if p.Subcircuits[1].Name != "entangle" {
		t.Errorf("name = %q", p.Subcircuits[1].Name)
	}
	c, err := p.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if c.GateCount() != 6 {
		t.Errorf("flattened gates = %d, want 6", c.GateCount())
	}
}

func TestParseIterationsAndBundles(t *testing.T) {
	src := `
version 1.0
qubits 3
.loop(3)
    { x q[0] | y q[1] | z q[2] }
    cnot q[0], q[1]
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Subcircuits[0].Iterations != 3 {
		t.Errorf("iterations = %d", p.Subcircuits[0].Iterations)
	}
	if len(p.Subcircuits[0].Bundles[0].Gates) != 3 {
		t.Errorf("bundle size = %d", len(p.Subcircuits[0].Bundles[0].Gates))
	}
	c, _ := p.Flatten()
	if c.GateCount() != 12 { // (3+1) × 3 iterations
		t.Errorf("flattened = %d gates, want 12", c.GateCount())
	}
}

func TestParsePiExpressions(t *testing.T) {
	cases := map[string]float64{
		"pi":       math.Pi,
		"-pi":      -math.Pi,
		"pi/2":     math.Pi / 2,
		"-pi/4":    -math.Pi / 4,
		"3*pi/2":   3 * math.Pi / 2,
		"2*pi":     2 * math.Pi,
		"0.5":      0.5,
		"-1.25":    -1.25,
		"1e-3":     1e-3,
		"+pi/8":    math.Pi / 8,
		"0.5*pi":   math.Pi / 2,
		"1.5*pi/3": math.Pi / 2,
	}
	for src, want := range cases {
		got, err := parseNumber(src)
		if err != nil {
			t.Errorf("parseNumber(%q): %v", src, err)
			continue
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("parseNumber(%q) = %v, want %v", src, got, want)
		}
	}
	for _, bad := range []string{"pie", "pi/0", "x*pi", "pi/", "q[1]"} {
		if _, err := parseNumber(bad); err == nil {
			t.Errorf("parseNumber(%q) should fail", bad)
		}
	}
}

func TestParseGateAliases(t *testing.T) {
	src := "version 1.0\nqubits 3\ncx q[0], q[1]\ntdg q[0]\nccx q[0], q[1], q[2]\nmeasure_z q[0]\n"
	c, err := ParseToCircuit(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Name != "cnot" || c.Gates[1].Name != "tdag" || c.Gates[2].Name != "toffoli" {
		t.Errorf("aliases wrong: %v", c.Gates)
	}
	if c.Gates[3].Name != circuit.OpMeasure {
		t.Errorf("measure_z alias wrong: %v", c.Gates[3])
	}
}

func TestParseMeasureWithBitTarget(t *testing.T) {
	src := "version 1.0\nqubits 2\nmeasure q[1], b[1]\n"
	c, err := ParseToCircuit(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Qubits[0] != 1 {
		t.Error("bit operand broke qubit parsing")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"version 1.0\nqubits 0\n",
		"version 1.0\nqubits 2\nnosuchgate q[0]\n",
		"version 1.0\nqubits 2\nh q[5]\n",
		"version 1.0\nqubits 2\ncnot q[0] q[1]\n",      // missing comma
		"version 1.0\nqubits 2\n{ x q[0] | y q[0] }\n", // overlapping bundle
		"version 1.0\nqubits 2\n{ x q[0]\n",            // unterminated
		"version 1.0\nqubits 2\n.(3)\n",                // empty name
		"version 1.0\nqubits 2\nh q[0\n",               // unterminated ref
		"h q[0]\n",                                     // no qubits declaration
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted invalid source %q", src)
		}
	}
}

func TestCommentsStripped(t *testing.T) {
	src := "version 1.0 # trailing\nqubits 1 // both styles\nh q[0] # gate comment\n"
	c, err := ParseToCircuit(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.GateCount() != 1 {
		t.Errorf("gates = %d", c.GateCount())
	}
}

func TestPrintRoundTrip(t *testing.T) {
	p, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	text := Print(p)
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	c1, _ := p.Flatten()
	c2, _ := p2.Flatten()
	if c1.GateCount() != c2.GateCount() {
		t.Errorf("round trip changed gate count %d → %d", c1.GateCount(), c2.GateCount())
	}
	for i := range c1.Gates {
		if c1.Gates[i].String() != c2.Gates[i].String() {
			t.Errorf("gate %d changed: %s → %s", i, c1.Gates[i], c2.Gates[i])
		}
	}
}

// Property: printing any random circuit and re-parsing reproduces the
// exact gate sequence.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.RandomCircuit(1+rng.Intn(5), 1+rng.Intn(4), rng)
		c.MeasureAll()
		text := PrintCircuit(c)
		back, err := ParseToCircuit(text)
		if err != nil {
			return false
		}
		if back.GateCount() != c.GateCount() {
			return false
		}
		for i := range c.Gates {
			a, b := c.Gates[i], back.Gates[i]
			if a.Name != b.Name || len(a.Qubits) != len(b.Qubits) || len(a.Params) != len(b.Params) {
				return false
			}
			for j := range a.Qubits {
				if a.Qubits[j] != b.Qubits[j] {
					return false
				}
			}
			for j := range a.Params {
				if math.Abs(a.Params[j]-b.Params[j]) > 1e-15 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPrintBundleSyntax(t *testing.T) {
	p := &Program{
		Version:   "1.0",
		NumQubits: 2,
		Subcircuits: []Subcircuit{{
			Name:       "par",
			Iterations: 2,
			Bundles: []Bundle{{Gates: []circuit.Gate{
				{Name: "x", Qubits: []int{0}},
				{Name: "y", Qubits: []int{1}},
			}}},
		}},
	}
	text := Print(p)
	if !strings.Contains(text, "{ x q[0] | y q[1] }") {
		t.Errorf("bundle not printed: %s", text)
	}
	if !strings.Contains(text, ".par(2)") {
		t.Errorf("iterations not printed: %s", text)
	}
	p2, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Subcircuits[0].Iterations != 2 {
		t.Error("iterations lost in round trip")
	}
}

func TestFromCircuitSanitizesName(t *testing.T) {
	c := circuit.New("my circuit-2!", 1).H(0)
	p := FromCircuit(c)
	if p.Subcircuits[0].Name != "my_circuit_2_" {
		t.Errorf("sanitized name = %q", p.Subcircuits[0].Name)
	}
	if _, err := Parse(Print(p)); err != nil {
		t.Errorf("sanitized program does not re-parse: %v", err)
	}
}

func TestConditionalGateParsing(t *testing.T) {
	src := "version 1.0\nqubits 3\nmeasure q[0]\nc-x b[0], q[2]\nc-z b[1], q[2]\n"
	c, err := ParseToCircuit(src)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Gates[1].HasCond || c.Gates[1].CondBit != 0 || c.Gates[1].Name != "x" {
		t.Errorf("c-x parsed wrong: %+v", c.Gates[1])
	}
	if !c.Gates[2].HasCond || c.Gates[2].CondBit != 1 {
		t.Errorf("c-z parsed wrong: %+v", c.Gates[2])
	}
	// Round trip preserves the condition.
	back, err := ParseToCircuit(PrintCircuit(c))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Gates[1].HasCond || back.Gates[1].CondBit != 0 {
		t.Errorf("condition lost in round trip: %+v", back.Gates[1])
	}
}

func TestConditionalGateErrors(t *testing.T) {
	bad := []string{
		"version 1.0\nqubits 2\nc-x q[0]\n",             // missing bit
		"version 1.0\nqubits 2\nc-x b[0], b[1], q[0]\n", // two bits
		"version 1.0\nqubits 2\nc-measure b[0], q[0]\n", // conditional non-unitary
		"version 1.0\nqubits 2\nc-x b[, q[0]\n",         // malformed bit
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

// randomProgram builds a random but print-safe Program: sanitized
// subcircuit names, iteration counts, multi-gate bundles over disjoint
// qubits, parameterised and classically-controlled gates.
func randomProgram(rng *rand.Rand) *Program {
	n := 2 + rng.Intn(5)
	p := &Program{Version: "1.0", NumQubits: n}
	mk := func(name string, qubits []int, params ...float64) circuit.Gate {
		g, err := circuit.NewGate(name, qubits, params...)
		if err != nil {
			panic(err)
		}
		return g
	}
	randomGate := func(avoid map[int]bool) (circuit.Gate, bool) {
		free := make([]int, 0, n)
		for q := 0; q < n; q++ {
			if !avoid[q] {
				free = append(free, q)
			}
		}
		rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
		angle := rng.Float64()*4*math.Pi - 2*math.Pi
		switch k := rng.Intn(10); {
		case k < 3 && len(free) >= 1: // plain single-qubit gate
			names := []string{"h", "x", "y", "z", "s", "sdag", "t", "tdag"}
			return mk(names[rng.Intn(len(names))], free[:1]), true
		case k < 5 && len(free) >= 1: // rotation with an arbitrary float param
			names := []string{"rx", "ry", "rz"}
			return mk(names[rng.Intn(len(names))], free[:1], angle), true
		case k < 7 && len(free) >= 2: // two-qubit gate
			if rng.Intn(2) == 0 {
				return mk("cphase", free[:2], angle), true
			}
			names := []string{"cnot", "cz", "swap"}
			return mk(names[rng.Intn(len(names))], free[:2]), true
		case k < 8 && len(free) >= 3:
			return mk("toffoli", free[:3]), true
		case k < 9 && len(free) >= 1: // classically-controlled gate
			g := mk("x", free[:1])
			g.HasCond = true
			g.CondBit = rng.Intn(n)
			return g, true
		case len(free) >= 1: // non-unitary ops
			if rng.Intn(2) == 0 {
				return circuit.Gate{Name: circuit.OpMeasure, Qubits: free[:1]}, true
			}
			return circuit.Gate{Name: circuit.OpPrepZ, Qubits: free[:1]}, true
		}
		return circuit.Gate{}, false
	}
	for si, subs := 0, 1+rng.Intn(3); si < subs; si++ {
		sub := Subcircuit{Name: "sub" + string(rune('a'+si)), Iterations: 1 + rng.Intn(3)}
		for bi, bundles := 0, 1+rng.Intn(6); bi < bundles; bi++ {
			var b Bundle
			used := map[int]bool{}
			for gi, gates := 0, 1+rng.Intn(2); gi < gates; gi++ {
				g, ok := randomGate(used)
				if !ok {
					break
				}
				for _, q := range g.Qubits {
					used[q] = true
				}
				b.Gates = append(b.Gates, g)
			}
			if len(b.Gates) > 0 {
				sub.Bundles = append(sub.Bundles, b)
			}
		}
		if len(sub.Bundles) > 0 {
			p.Subcircuits = append(p.Subcircuits, sub)
		}
	}
	if len(p.Subcircuits) == 0 {
		p.Subcircuits = []Subcircuit{{Name: "main", Iterations: 1,
			Bundles: []Bundle{{Gates: []circuit.Gate{mk("h", []int{0})}}}}}
	}
	return p
}

// Property: Parse(Print(p)) reproduces the same program — qubit count,
// subcircuit names and iteration counts, bundle structure and every gate
// (names, operands, exact float parameters, conditional bits).
func TestPrintParseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randomProgram(rng)
		text := Print(orig)
		parsed, err := Parse(text)
		if err != nil {
			t.Logf("round-trip parse failed: %v\n%s", err, text)
			return false
		}
		if !reflect.DeepEqual(parsed, orig) {
			t.Logf("round-trip mismatch:\noriginal: %+v\nparsed:   %+v\ntext:\n%s", orig, parsed, text)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
