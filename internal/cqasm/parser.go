package cqasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/circuit"
)

// Parse reads cQASM source text into a Program. Errors carry 1-based line
// numbers.
func Parse(src string) (*Program, error) {
	p := &Program{}
	var cur *Subcircuit
	ensureSub := func() *Subcircuit {
		if cur == nil {
			p.Subcircuits = append(p.Subcircuits, Subcircuit{Name: "default", Iterations: 1})
			cur = &p.Subcircuits[len(p.Subcircuits)-1]
		}
		return cur
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lower := strings.ToLower(line)

		switch {
		case strings.HasPrefix(lower, "version"):
			p.Version = strings.TrimSpace(line[len("version"):])
		case strings.HasPrefix(lower, "qubits"):
			n, err := strconv.Atoi(strings.TrimSpace(line[len("qubits"):]))
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("cqasm: line %d: bad qubits declaration %q", lineNo+1, line)
			}
			p.NumQubits = n
		case strings.HasPrefix(line, "."):
			name, iters, err := parseSubcircuitHeader(line)
			if err != nil {
				return nil, fmt.Errorf("cqasm: line %d: %v", lineNo+1, err)
			}
			p.Subcircuits = append(p.Subcircuits, Subcircuit{Name: name, Iterations: iters})
			cur = &p.Subcircuits[len(p.Subcircuits)-1]
		case strings.HasPrefix(line, "{"):
			bundle, err := parseBundle(line)
			if err != nil {
				return nil, fmt.Errorf("cqasm: line %d: %v", lineNo+1, err)
			}
			sub := ensureSub()
			sub.Bundles = append(sub.Bundles, bundle)
		default:
			g, err := parseGateLine(line)
			if err != nil {
				return nil, fmt.Errorf("cqasm: line %d: %v", lineNo+1, err)
			}
			sub := ensureSub()
			sub.Bundles = append(sub.Bundles, Bundle{Gates: []circuit.Gate{g}})
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseToCircuit parses source and flattens it in one step.
func ParseToCircuit(src string) (*circuit.Circuit, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return p.Flatten()
}

func stripComment(line string) string {
	if i := strings.Index(line, "#"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return line
}

func parseSubcircuitHeader(line string) (string, int, error) {
	body := strings.TrimPrefix(line, ".")
	iters := 1
	if i := strings.Index(body, "("); i >= 0 {
		if !strings.HasSuffix(body, ")") {
			return "", 0, fmt.Errorf("unterminated iteration count in %q", line)
		}
		n, err := strconv.Atoi(strings.TrimSpace(body[i+1 : len(body)-1]))
		if err != nil || n < 1 {
			return "", 0, fmt.Errorf("bad iteration count in %q", line)
		}
		iters = n
		body = body[:i]
	}
	name := strings.TrimSpace(body)
	if name == "" {
		return "", 0, fmt.Errorf("empty subcircuit name")
	}
	return name, iters, nil
}

func parseBundle(line string) (Bundle, error) {
	if !strings.HasSuffix(line, "}") {
		return Bundle{}, fmt.Errorf("unterminated bundle %q", line)
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(line, "{"), "}")
	var b Bundle
	for _, part := range strings.Split(inner, "|") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		g, err := parseGateLine(part)
		if err != nil {
			return Bundle{}, err
		}
		b.Gates = append(b.Gates, g)
	}
	if len(b.Gates) == 0 {
		return Bundle{}, fmt.Errorf("empty bundle")
	}
	return b, nil
}

// parseGateLine parses "name operand, operand, ..." where operands are
// q[i] qubit references, b[i] classical-bit references, or numeric
// parameters (floats or pi expressions). A "c-" prefix marks a
// classically-controlled gate whose first b[i] operand is the condition.
func parseGateLine(line string) (circuit.Gate, error) {
	fields := strings.SplitN(line, " ", 2)
	name := strings.ToLower(strings.TrimSpace(fields[0]))
	if name == "" {
		return circuit.Gate{}, fmt.Errorf("empty gate line")
	}
	conditional := false
	if strings.HasPrefix(name, "c-") {
		conditional = true
		name = name[2:]
	}
	aliases := map[string]string{
		"measure_z": circuit.OpMeasure,
		"cx":        "cnot",
		"prep":      circuit.OpPrepZ,
		"tdg":       "tdag",
		"sdg":       "sdag",
		"ccx":       "toffoli",
		"cr":        "cphase",
	}
	if canon, ok := aliases[name]; ok {
		name = canon
	}

	var qubits []int
	var params []float64
	var exprs []*circuit.ParamExpr
	symbolic := false
	var bits []int
	if len(fields) == 2 {
		for _, op := range strings.Split(fields[1], ",") {
			op = strings.TrimSpace(op)
			if op == "" {
				return circuit.Gate{}, fmt.Errorf("empty operand in %q", line)
			}
			if q, ok, err := parseQubitRef(op); ok {
				if err != nil {
					return circuit.Gate{}, err
				}
				qubits = append(qubits, q)
				continue
			}
			if strings.HasPrefix(strings.ToLower(op), "b[") {
				if !strings.HasSuffix(op, "]") {
					return circuit.Gate{}, fmt.Errorf("unterminated bit reference %q", op)
				}
				bit, err := strconv.Atoi(strings.TrimSpace(op[2 : len(op)-1]))
				if err != nil || bit < 0 {
					return circuit.Gate{}, fmt.Errorf("bad bit index in %q", op)
				}
				bits = append(bits, bit)
				continue
			}
			if e, ok, err := parseSymbolRef(op); ok {
				if err != nil {
					return circuit.Gate{}, fmt.Errorf("bad operand %q: %v", op, err)
				}
				params = append(params, 0)
				exprs = append(exprs, e)
				symbolic = true
				continue
			}
			v, err := parseNumber(op)
			if err != nil {
				return circuit.Gate{}, fmt.Errorf("bad operand %q: %v", op, err)
			}
			params = append(params, v)
			exprs = append(exprs, nil)
		}
	}

	var g circuit.Gate
	if circuit.IsNonUnitary(name) {
		if symbolic {
			return circuit.Gate{}, fmt.Errorf("symbolic parameter on non-unitary %q in %q", name, line)
		}
		// Bit operands of a measure are the implicit per-qubit bits.
		g = circuit.Gate{Name: name, Qubits: qubits, Params: params}
	} else if symbolic {
		all := make([]*circuit.ParamExpr, len(params))
		for i := range params {
			if exprs[i] != nil {
				all[i] = exprs[i]
			} else {
				all[i] = circuit.Lit(params[i])
			}
		}
		var err error
		g, err = circuit.NewGateExpr(name, qubits, all...)
		if err != nil {
			return circuit.Gate{}, err
		}
	} else {
		var err error
		g, err = circuit.NewGate(name, qubits, params...)
		if err != nil {
			return circuit.Gate{}, err
		}
	}
	if conditional {
		if len(bits) != 1 {
			return circuit.Gate{}, fmt.Errorf("conditional gate needs exactly one b[i] operand in %q", line)
		}
		g.HasCond = true
		g.CondBit = bits[0]
	}
	if err := g.Validate(); err != nil {
		return circuit.Gate{}, err
	}
	return g, nil
}

func parseQubitRef(op string) (int, bool, error) {
	low := strings.ToLower(op)
	if !strings.HasPrefix(low, "q[") {
		return 0, false, nil
	}
	if !strings.HasSuffix(op, "]") {
		return 0, true, fmt.Errorf("unterminated qubit reference %q", op)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(op[2 : len(op)-1]))
	if err != nil || idx < 0 {
		return 0, true, fmt.Errorf("bad qubit index in %q", op)
	}
	return idx, true, nil
}

// parseSymbolRef recognises symbolic parameter operands of the forms
// "$name", "-$name", "k*$name" and "k*$name/m" (k, m numeric, name an
// identifier) and returns the corresponding linear expression. ok is
// false when the operand does not reference a symbol at all.
func parseSymbolRef(op string) (*circuit.ParamExpr, bool, error) {
	s := strings.TrimSpace(op)
	if !strings.Contains(s, "$") {
		return nil, false, nil
	}
	coeff := 1.0
	if strings.HasPrefix(s, "-") {
		coeff = -1
		s = strings.TrimSpace(s[1:])
	} else if strings.HasPrefix(s, "+") {
		s = strings.TrimSpace(s[1:])
	}
	if i := strings.Index(s, "*"); i >= 0 {
		k, err := strconv.ParseFloat(strings.TrimSpace(s[:i]), 64)
		if err != nil {
			return nil, true, fmt.Errorf("bad symbol multiplier")
		}
		coeff *= k
		s = strings.TrimSpace(s[i+1:])
	}
	if i := strings.Index(s, "/"); i >= 0 {
		m, err := strconv.ParseFloat(strings.TrimSpace(s[i+1:]), 64)
		if err != nil || m == 0 {
			return nil, true, fmt.Errorf("bad symbol divisor")
		}
		coeff /= m
		s = strings.TrimSpace(s[:i])
	}
	if !strings.HasPrefix(s, "$") {
		return nil, true, fmt.Errorf("malformed symbol reference")
	}
	name := s[1:]
	if name == "" {
		return nil, true, fmt.Errorf("empty symbol name")
	}
	for _, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return nil, true, fmt.Errorf("bad symbol name %q", name)
		}
	}
	return circuit.Sym(name).Scale(coeff), true, nil
}

// parseNumber accepts float literals and pi expressions of the forms
// "pi", "-pi", "k*pi", "pi/m", "k*pi/m" (k, m numeric).
func parseNumber(s string) (float64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	if !strings.Contains(s, "pi") {
		return 0, fmt.Errorf("not a number")
	}
	sign := 1.0
	if strings.HasPrefix(s, "-") {
		sign = -1
		s = s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	mult := 1.0
	div := 1.0
	if i := strings.Index(s, "*"); i >= 0 {
		k, err := strconv.ParseFloat(strings.TrimSpace(s[:i]), 64)
		if err != nil {
			return 0, fmt.Errorf("bad pi multiplier")
		}
		mult = k
		s = strings.TrimSpace(s[i+1:])
	}
	if i := strings.Index(s, "/"); i >= 0 {
		m, err := strconv.ParseFloat(strings.TrimSpace(s[i+1:]), 64)
		if err != nil || m == 0 {
			return 0, fmt.Errorf("bad pi divisor")
		}
		div = m
		s = strings.TrimSpace(s[:i])
	}
	if s != "pi" {
		return 0, fmt.Errorf("malformed pi expression")
	}
	return sign * mult * math.Pi / div, nil
}
