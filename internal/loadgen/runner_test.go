package loadgen

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// e2eScenario is a deliberately small end-to-end scenario: an open-loop
// mixed phase, a closed-loop session-bind phase, and a mid-run
// calibration-drift event — every moving part of the runner in under a
// second of wall clock.
func e2eScenario(t *testing.T) *Scenario {
	t.Helper()
	s, err := ParseScenario([]byte(`{
		"name": "e2e",
		"seeds": [42],
		"service": {"qubits": 8, "workers": 2, "queue": 64},
		"tenants": [{"name": "research", "weight": 1}],
		"phases": [
			{"name": "mixed", "duration_ms": 350,
			 "arrival": {"process": "poisson", "rate_per_sec": 40},
			 "mix": [
				{"class": "qft", "qubits": 4, "variants": 2, "shots": 16},
				{"class": "ghz", "qubits": 5, "variants": 2, "shots": 16}
			 ]},
			{"name": "binds", "duration_ms": 300,
			 "arrival": {"process": "closed", "clients": 2, "think_ms": 5},
			 "sessions": {"count": 2, "layers": 1, "qubits": 4, "shots": 16}}
		],
		"events": [{"kind": "recalibrate", "at_ms": 200,
		            "backend": "semiconducting", "drift_factor": 2}],
		"slo": {"p95_ms": 30000, "max_error_rate": 0.05, "max_reject_rate": 0.05}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRunnerEndToEnd boots a private qservd, replays the scenario and
// checks the report reflects real traffic: completed ops in both
// phases, session binds that landed, engine-dispatch deltas, and trace
// files on disk.
func TestRunnerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e runner test skipped in -short mode")
	}
	s := e2eScenario(t)
	traceDir := filepath.Join(t.TempDir(), "traces")
	r := &Runner{
		DrainTimeout:   10 * time.Second,
		SampleInterval: 20 * time.Millisecond,
		TraceDir:       traceDir,
		OpTimeout:      20 * time.Second,
		Logf:           t.Logf,
	}
	rep, err := r.Run(s, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenario != "e2e" || rep.Seed != 42 || rep.WorkloadSHA256 == "" {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(rep.Phases))
	}
	for _, p := range rep.Phases {
		if p.Metrics.Ops == 0 {
			t.Errorf("phase %s saw no ops", p.Name)
		}
	}
	if rep.Totals.OK == 0 || rep.Totals.ErrorRate > 0.05 {
		t.Fatalf("traffic unhealthy: %+v", rep.Totals)
	}
	if rep.Totals.P95Ms <= 0 || rep.Totals.P50Ms > rep.Totals.P95Ms || rep.Totals.P95Ms > rep.Totals.P99Ms {
		t.Fatalf("latency percentiles inconsistent: %+v", rep.Totals)
	}
	if rep.Server.JobsDone == 0 {
		t.Fatalf("server counted no completed jobs: %+v", rep.Server)
	}
	// GHZ is Clifford, so the auto-dispatcher must have routed at least
	// some jobs to the stabilizer engine.
	if rep.Server.EngineDispatch["stabilizer"] == 0 {
		t.Errorf("no stabilizer dispatch recorded: %v", rep.Server.EngineDispatch)
	}
	if !rep.SLO.Pass {
		t.Errorf("generous SLO failed: %v", rep.SLO.Violations)
	}
	entries, err := os.ReadDir(traceDir)
	if err != nil || len(entries) == 0 {
		t.Errorf("no trace dumps written to %s (err=%v)", traceDir, err)
	}
}

// TestRunnerGateCatchesInjectedViolation is the negative control for
// the CI gate: an impossible SLO must produce a failing gate whose
// violations name the breached bound.
func TestRunnerGateCatchesInjectedViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e runner test skipped in -short mode")
	}
	s := e2eScenario(t)
	ms := 0.001
	s.SLO.P95Ms = &ms // no real request finishes in a microsecond
	r := &Runner{
		DrainTimeout:   10 * time.Second,
		SampleInterval: 20 * time.Millisecond,
		OpTimeout:      20 * time.Second,
		Logf:           t.Logf,
	}
	g, err := r.RunGate(s, []int64{42})
	if err != nil {
		t.Fatal(err)
	}
	if g.Pass {
		t.Fatal("gate passed an impossible p95 bound")
	}
	if len(g.Violations) == 0 {
		t.Fatal("failing gate carries no violations")
	}
}
