package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
)

// Op kinds.
const (
	OpSubmit      = "submit"
	OpOpenSession = "open_session"
	OpBind        = "bind"
)

// Op is one generated unit of traffic. Everything the runner needs to
// issue the request is materialised at generation time — payload text,
// arrival offset, per-job seed — so the workload for a (scenario, seed)
// pair is byte-reproducible and the run only adds wall-clock timing.
type Op struct {
	// Index is the op's global sequence number across the workload.
	Index int `json:"i"`
	// Kind is submit, open_session or bind.
	Kind string `json:"kind"`
	// AtMs is the arrival offset from phase start (open-loop ops;
	// closed-loop ops fire as their client lane frees up).
	AtMs float64 `json:"at_ms,omitempty"`
	// Client is the closed-loop client lane the op belongs to.
	Client int `json:"client,omitempty"`
	// ThinkMs is the closed-loop pause after this op completes.
	ThinkMs float64 `json:"think_ms,omitempty"`
	Tenant  string  `json:"tenant,omitempty"`
	Class   string  `json:"class,omitempty"`
	Name    string  `json:"name,omitempty"`
	Backend string  `json:"backend,omitempty"`
	Engine  string  `json:"engine,omitempty"`
	Shots   int     `json:"shots,omitempty"`
	// Seed pins the job's PRNG walk server-side (never 0, which would
	// ask the service to derive its own).
	Seed  int64  `json:"seed,omitempty"`
	CQASM string `json:"cqasm,omitempty"`
	// Session indexes the phase's open_session op a bind targets.
	Session int `json:"session,omitempty"`
	// Values are the bind's parameter values, keyed by symbol.
	Values map[string]float64 `json:"values,omitempty"`
}

// PhaseWorkload is one phase's generated op stream.
type PhaseWorkload struct {
	Name string `json:"name"`
	// DurationMs is the phase's nominal duration (closed-loop lanes stop
	// at this deadline even with ops left).
	DurationMs int  `json:"duration_ms"`
	Closed     bool `json:"closed,omitempty"`
	Ops        []Op `json:"ops"`
}

// Workload is the fully materialised traffic of one (scenario, seed)
// pair.
type Workload struct {
	Scenario string          `json:"scenario"`
	Seed     int64           `json:"seed"`
	Phases   []PhaseWorkload `json:"phases"`
}

// Canonical renders the workload as canonical JSON bytes — the
// byte-reproducibility contract: GenerateWorkload(s, seed) yields
// identical bytes for identical inputs (encoding/json sorts the Values
// maps; every other field is ordered by construction).
func (w *Workload) Canonical() ([]byte, error) {
	return json.MarshalIndent(w, "", " ")
}

// SHA256 returns the hex digest of the canonical bytes.
func (w *Workload) SHA256() string {
	data, err := w.Canonical()
	if err != nil {
		// Workload marshalling cannot fail: plain structs and maps.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Ops returns the total op count.
func (w *Workload) Ops() int {
	n := 0
	for _, p := range w.Phases {
		n += len(p.Ops)
	}
	return n
}

// opsPerPhaseCap bounds runaway rate × duration combinations.
const opsPerPhaseCap = 100000

// derive folds parts into seed with a splitmix64-style walk, giving each
// (phase, mix, variant, op) coordinate an independent deterministic
// sub-seed.
func derive(seed int64, parts ...uint64) int64 {
	z := uint64(seed)
	for _, p := range parts {
		z ^= p + 0x9e3779b97f4a7c15
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
	}
	out := int64(z)
	if out == 0 {
		out = 1
	}
	return out
}

// weightedPick draws an index from cumulative weights.
func weightedPick(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	r := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if r < acc {
			return i
		}
	}
	return len(weights) - 1
}

// GenerateWorkload materialises the scenario's full op stream for one
// seed: per-phase arrival times (open-loop) or client lanes
// (closed-loop), tenant and mix draws, pre-rendered circuit payloads per
// variant, session ansätze and bind values. The result is
// byte-reproducible: same scenario + same seed → identical
// Canonical() bytes.
func GenerateWorkload(s *Scenario, seed int64) (*Workload, error) {
	w := &Workload{Scenario: s.Name, Seed: seed}
	tenantWeights := make([]float64, len(s.Tenants))
	for i, t := range s.Tenants {
		tenantWeights[i] = t.Weight
	}
	index := 0
	for pi, phase := range s.Phases {
		pw := PhaseWorkload{Name: phase.Name, DurationMs: phase.DurationMs}
		rng := rand.New(rand.NewSource(derive(seed, uint64(pi), 0xface)))
		var err error
		if phase.Sessions != nil {
			pw.Ops, pw.Closed, err = generateSessionPhase(s, &phase, pi, seed, rng, tenantWeights, &index)
		} else {
			pw.Ops, pw.Closed, err = generateMixPhase(s, &phase, pi, seed, rng, tenantWeights, &index)
		}
		if err != nil {
			return nil, fmt.Errorf("loadgen: scenario %s phase %s: %w", s.Name, phase.Name, err)
		}
		w.Phases = append(w.Phases, pw)
	}
	return w, nil
}

// arrivalStream yields the phase's op slots: open-loop Poisson offsets,
// or closed-loop (client, think) lanes with enough ops to outlast the
// phase deadline.
type arrivalSlot struct {
	atMs    float64
	client  int
	thinkMs float64
}

func arrivalSlots(phase *PhaseSpec, rng *rand.Rand) ([]arrivalSlot, bool) {
	if phase.Arrival.Process == ArrivalPoisson {
		var slots []arrivalSlot
		t := 0.0
		for len(slots) < opsPerPhaseCap {
			t += rng.ExpFloat64() / phase.Arrival.RatePerSec * 1000
			if t >= float64(phase.DurationMs) {
				break
			}
			slots = append(slots, arrivalSlot{atMs: t})
		}
		return slots, false
	}
	// Closed loop: each client gets a lane of ops; the runner walks the
	// lane serially (submit → await → think) until the phase deadline.
	// Generate enough ops that a fast service never starves a lane.
	think := phase.Arrival.ThinkMs
	perClient := int(float64(phase.DurationMs)/math.Max(think, 1))*2 + 8
	if perClient > opsPerPhaseCap/phase.Arrival.Clients {
		perClient = opsPerPhaseCap / phase.Arrival.Clients
	}
	var slots []arrivalSlot
	for c := 0; c < phase.Arrival.Clients; c++ {
		for k := 0; k < perClient; k++ {
			slots = append(slots, arrivalSlot{client: c, thinkMs: think})
		}
	}
	return slots, true
}

func generateMixPhase(s *Scenario, phase *PhaseSpec, pi int, seed int64, rng *rand.Rand, tenantWeights []float64, index *int) ([]Op, bool, error) {
	// Pre-render every variant's payload: repeated references are map
	// lookups, so one variant always submits byte-identical cQASM (the
	// compile-cache-hot path).
	variants := make([][]string, len(phase.Mix))
	for mi, m := range phase.Mix {
		variants[mi] = make([]string, m.Variants)
		for v := 0; v < m.Variants; v++ {
			vrng := rand.New(rand.NewSource(derive(seed, uint64(pi), uint64(mi), uint64(v))))
			text, err := BuildClassCircuit(m.Class, m.Qubits, m.Depth, v, vrng)
			if err != nil {
				return nil, false, fmt.Errorf("mix[%d] class %s: %w", mi, m.Class, err)
			}
			variants[mi][v] = text
		}
	}
	mixWeights := make([]float64, len(phase.Mix))
	for mi, m := range phase.Mix {
		mixWeights[mi] = m.Weight
	}
	slots, closed := arrivalSlots(phase, rng)
	ops := make([]Op, 0, len(slots))
	for _, slot := range slots {
		mi := weightedPick(rng, mixWeights)
		m := phase.Mix[mi]
		v := rng.Intn(m.Variants)
		ti := weightedPick(rng, tenantWeights)
		op := Op{
			Index:   *index,
			Kind:    OpSubmit,
			AtMs:    slot.atMs,
			Client:  slot.client,
			ThinkMs: slot.thinkMs,
			Tenant:  s.Tenants[ti].Name,
			Class:   m.Class,
			Name:    fmt.Sprintf("%s/%s/%s-v%d", s.Tenants[ti].Name, phase.Name, m.Class, v),
			Backend: m.Backend,
			Engine:  m.Engine,
			Shots:   m.Shots,
			Seed:    derive(seed, 0x0b, uint64(*index)),
			CQASM:   variants[mi][v],
		}
		ops = append(ops, op)
		*index++
	}
	return ops, closed, nil
}

func generateSessionPhase(s *Scenario, phase *PhaseSpec, pi int, seed int64, rng *rand.Rand, tenantWeights []float64, index *int) ([]Op, bool, error) {
	ss := phase.Sessions
	ops := make([]Op, 0, ss.Count)
	type ansatz struct{ symbols []string }
	ansaetze := make([]ansatz, ss.Count)
	for k := 0; k < ss.Count; k++ {
		arng := rand.New(rand.NewSource(derive(seed, uint64(pi), 0x5e55, uint64(k))))
		text, symbols, err := sessionAnsatz(ss.Qubits, ss.Layers, arng)
		if err != nil {
			return nil, false, err
		}
		ansaetze[k] = ansatz{symbols: symbols}
		ops = append(ops, Op{
			Index:   *index,
			Kind:    OpOpenSession,
			Tenant:  s.Tenants[0].Name,
			Class:   "qaoa",
			Name:    fmt.Sprintf("%s/session-%d", phase.Name, k),
			Backend: ss.Backend,
			Shots:   ss.Shots,
			CQASM:   text,
			Session: k,
		})
		*index++
	}
	slots, closed := arrivalSlots(phase, rng)
	for _, slot := range slots {
		k := rng.Intn(ss.Count)
		ti := weightedPick(rng, tenantWeights)
		values := make(map[string]float64, len(ansaetze[k].symbols))
		for _, sym := range ansaetze[k].symbols {
			values[sym] = rng.Float64() * 2 * math.Pi
		}
		ops = append(ops, Op{
			Index:   *index,
			Kind:    OpBind,
			AtMs:    slot.atMs,
			Client:  slot.client,
			ThinkMs: slot.thinkMs,
			Tenant:  s.Tenants[ti].Name,
			Class:   "qaoa-bind",
			Name:    fmt.Sprintf("%s/%s/bind-%d", s.Tenants[ti].Name, phase.Name, *index),
			Shots:   ss.Shots,
			Seed:    derive(seed, 0x0b, uint64(*index)),
			Session: k,
			Values:  values,
		})
		*index++
	}
	return ops, closed, nil
}
