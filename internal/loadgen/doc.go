// Package loadgen is the scenario-driven load harness for the qserv
// service stack: a deterministic workload generator, an HTTP replay
// runner and a BLIS-style multi-seed SLO gate, driven by declarative
// scenario files (scenarios/*.json) and fronted by cmd/qload.
//
// # Scenarios
//
// A scenario declares a complete load experiment: the service shape to
// boot (qubits, workers, queue and cache bounds), a weighted
// multi-tenant population, an ordered list of traffic phases, optional
// mid-run fault events, and the SLO block the run is gated on. Phases
// mix weighted circuit classes — qft, ghz, random, grover, qaoa, qec
// and genome, each built gate-for-gate from the repository's own
// algorithm packages — under either an open-loop Poisson arrival
// process (exponential inter-arrival gaps, submitted regardless of how
// the service keeps up, so overload latency is measured rather than
// hidden by client back-pressure) or a closed-loop process (a fixed
// client population with think time). A mix entry's variants count
// steers compile-cache temperature: one variant is perfectly cache-hot,
// many variants keep the cache cold. Session phases open parametric
// QAOA sessions and storm them with binds, exercising the bind-only
// fast path; recalibrate events PUT a drifted calibration table
// mid-run, rotating the full compile-cache keys live.
//
// # Determinism
//
// Workload generation is byte-reproducible: one (scenario, seed) pair
// materialises one workload, byte-identical across runs and platforms
// (Workload.Canonical / Workload.SHA256). Every op carries its payload,
// arrival offset and a non-zero derived per-job seed, so the replay
// adds wall-clock timing and nothing else. Sub-seeds derive from the
// run seed with a splitmix64-style fold over (phase, mix, variant, op)
// coordinates, so editing one phase does not reshuffle another.
//
// # SLO methodology
//
// Reports combine client-observed submit→result latency with
// server-side /stats and /metrics deltas (cache hit rates over the run
// window, engine-dispatch mix, queue-depth samples). The gate follows
// the BLIS experiment standards: a scenario's SLO block is evaluated
// independently at three seeds (42, 123, 456 by default) and the gate
// passes only with directional consistency — every bound must hold in
// every seed; a single contradicting seed fails the gate. Cross-phase
// compare hypotheses ("cache-hot p95 beats cache-cold p95") must show
// at least a 20% relative effect (configurable via min_effect) in
// every seed, mirroring BLIS's >20% effect-size floor. Gate reports
// carry mean/min/max across seeds for every headline metric.
package loadgen
