package loadgen

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMalformedScenarioCorpus rejects every fixture under
// testdata/malformed with a *FieldError carrying the exact field path
// of the defect — the contract that lets a broken scenario file point
// at its own offending line.
func TestMalformedScenarioCorpus(t *testing.T) {
	wantPath := map[string]string{
		"unknown_class.json":          "phases[0].mix[1].class",
		"negative_rate.json":          "phases[0].arrival.rate_per_sec",
		"missing_slo_p95.json":        "slo.p95_ms",
		"missing_slo_error_rate.json": "slo.max_error_rate",
		"missing_name.json":           "name",
		"zero_seed.json":              "seeds",
		"bad_event_kind.json":         "events[0].kind",
		"event_after_end.json":        "events[0].at_ms",
		"duplicate_phase.json":        "phases[1].name",
		"compare_unknown_phase.json":  "slo.compare[0].better",
		"even_qec_distance.json":      "phases[0].mix[0].qubits",
		"closed_without_clients.json": "phases[0].arrival.clients",
		"session_with_mix.json":       "phases[0].mix",
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "malformed"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		seen[name] = true
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", "malformed", name))
			if err != nil {
				t.Fatal(err)
			}
			_, err = ParseScenario(data)
			if err == nil {
				t.Fatal("malformed scenario parsed without error")
			}
			want, ok := wantPath[name]
			if !ok {
				// Fixtures outside the table (e.g. unknown_field.json) must
				// still fail, via the strict JSON decoder.
				if name != "unknown_field.json" {
					t.Fatalf("fixture %s missing from the expectation table", name)
				}
				if !strings.Contains(err.Error(), "unknown field") {
					t.Fatalf("want strict-decoder rejection, got %v", err)
				}
				return
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("want *FieldError, got %T: %v", err, err)
			}
			if fe.Path != want {
				t.Fatalf("field path = %q, want %q (msg: %s)", fe.Path, want, fe.Msg)
			}
		})
	}
	for name := range wantPath {
		if !seen[name] {
			t.Errorf("expected fixture %s not present in testdata/malformed", name)
		}
	}
}

// TestShippedScenariosParse keeps the scenarios/ directory honest:
// every shipped scenario file must parse and validate.
func TestShippedScenariosParse(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 5 {
		t.Fatalf("expected at least 5 shipped scenarios, found %d", len(matches))
	}
	for _, path := range matches {
		s, err := LoadScenario(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if len(s.Seeds) != 3 && filepath.Base(path) != "negative_slo.json" {
			t.Errorf("%s: normalized to %d seeds, want the 3-seed BLIS default", path, len(s.Seeds))
		}
	}
}

func TestNormalizeDefaults(t *testing.T) {
	s, err := ParseScenario([]byte(`{
		"name": "n",
		"phases": [{
			"name": "p", "duration_ms": 100,
			"arrival": {"process": "poisson", "rate_per_sec": 5},
			"mix": [{"class": "qaoa"}]
		}],
		"slo": {"p95_ms": 100, "max_error_rate": 0.1,
		        "compare": [{"metric": "p95_ms", "better": "p", "worse": "p"}]}
	}`))
	if err == nil {
		t.Fatal("self-compare must be rejected")
	}
	s, err = ParseScenario([]byte(`{
		"name": "n",
		"phases": [
			{"name": "a", "duration_ms": 100,
			 "arrival": {"process": "poisson", "rate_per_sec": 5},
			 "mix": [{"class": "qaoa"}]},
			{"name": "b", "duration_ms": 100,
			 "arrival": {"process": "closed", "clients": 2},
			 "sessions": {"count": 1}}
		],
		"slo": {"p95_ms": 100, "max_error_rate": 0.1,
		        "compare": [{"metric": "p95_ms", "better": "a", "worse": "b"}]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Seeds; len(got) != 3 || got[0] != 42 || got[1] != 123 || got[2] != 456 {
		t.Errorf("default seeds = %v, want [42 123 456]", got)
	}
	m := s.Phases[0].Mix[0]
	if m.Qubits != 6 || m.Depth != 2 || m.Variants != 4 || m.Backend != "perfect" || m.Shots != 64 || m.Weight != 1 {
		t.Errorf("qaoa mix defaults = %+v", m)
	}
	ss := s.Phases[1].Sessions
	if ss.Layers != 2 || ss.Qubits != 6 || ss.Backend != "perfect" || ss.Shots != 64 {
		t.Errorf("session defaults = %+v", ss)
	}
	if s.Service.Qubits != 10 || s.Service.Workers != 2 || s.Service.Queue != 256 {
		t.Errorf("service defaults = %+v", s.Service)
	}
	if s.SLO.Compare[0].MinEffect != 0.20 {
		t.Errorf("compare min_effect default = %v, want 0.20 (BLIS effect-size floor)", s.SLO.Compare[0].MinEffect)
	}
	if s.TotalDurationMs() != 200 {
		t.Errorf("TotalDurationMs = %d, want 200", s.TotalDurationMs())
	}
}
