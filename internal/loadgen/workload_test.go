package loadgen

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cqasm"
)

func testScenario(t *testing.T) *Scenario {
	t.Helper()
	s, err := ParseScenario([]byte(`{
		"name": "t",
		"tenants": [{"name": "a", "weight": 3}, {"name": "b", "weight": 1}],
		"phases": [
			{"name": "open", "duration_ms": 400,
			 "arrival": {"process": "poisson", "rate_per_sec": 50},
			 "mix": [
				{"class": "qft", "weight": 2, "qubits": 4, "variants": 3},
				{"class": "ghz", "weight": 1, "qubits": 5, "variants": 2},
				{"class": "qaoa", "weight": 1, "qubits": 4, "depth": 2},
				{"class": "grover", "weight": 1, "qubits": 3},
				{"class": "qec", "weight": 1, "qubits": 3},
				{"class": "genome", "weight": 1, "qubits": 7},
				{"class": "random", "weight": 1, "qubits": 4, "depth": 3}
			 ]},
			{"name": "binds", "duration_ms": 300,
			 "arrival": {"process": "closed", "clients": 3, "think_ms": 10},
			 "sessions": {"count": 2, "layers": 2, "qubits": 4}}
		],
		"slo": {"p95_ms": 5000, "max_error_rate": 0.05}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestWorkloadByteReproducible is the determinism contract: one
// (scenario, seed) pair yields byte-identical canonical workloads, and
// a different seed yields a different workload.
func TestWorkloadByteReproducible(t *testing.T) {
	s := testScenario(t)
	w1, err := GenerateWorkload(s, 42)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := GenerateWorkload(s, 42)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := w1.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := w2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same (scenario, seed) generated different workload bytes")
	}
	if w1.SHA256() != w2.SHA256() {
		t.Fatal("SHA256 mismatch on identical workloads")
	}
	w3, err := GenerateWorkload(s, 123)
	if err != nil {
		t.Fatal(err)
	}
	if w3.SHA256() == w1.SHA256() {
		t.Fatal("different seeds produced identical workloads")
	}
	if w1.Ops() == 0 {
		t.Fatal("workload has no ops")
	}
}

// TestWorkloadShape checks structural invariants of the generated ops:
// non-zero per-op seeds, monotone Poisson offsets inside the phase
// duration, parseable payloads, session binds carrying the ansatz's
// exact symbol set, and tenants drawn from the declared population.
func TestWorkloadShape(t *testing.T) {
	s := testScenario(t)
	w, err := GenerateWorkload(s, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(w.Phases))
	}
	open := w.Phases[0]
	if open.Closed {
		t.Error("poisson phase marked closed")
	}
	prev := 0.0
	tenants := map[string]bool{}
	for _, op := range open.Ops {
		if op.Kind != OpSubmit {
			t.Fatalf("mix phase generated op kind %q", op.Kind)
		}
		if op.Seed == 0 {
			t.Fatal("op with zero seed — the server would derive its own and break reproducibility")
		}
		if op.AtMs < prev || op.AtMs >= float64(open.DurationMs) {
			t.Fatalf("arrival offset %v out of order or past phase end", op.AtMs)
		}
		prev = op.AtMs
		if _, err := cqasm.Parse(op.CQASM); err != nil {
			t.Fatalf("op %d (%s) payload does not parse: %v", op.Index, op.Class, err)
		}
		tenants[op.Tenant] = true
	}
	if !tenants["a"] || !tenants["b"] {
		t.Errorf("tenant draw missed part of the population: %v", tenants)
	}
	binds := w.Phases[1]
	if !binds.Closed {
		t.Error("closed phase not marked closed")
	}
	opens := 0
	for _, op := range binds.Ops {
		switch op.Kind {
		case OpOpenSession:
			opens++
			if _, err := cqasm.Parse(op.CQASM); err != nil {
				t.Fatalf("session ansatz does not parse: %v", err)
			}
		case OpBind:
			if len(op.Values) != 4 {
				t.Fatalf("bind carries %d values, want 4 (2 layers x gamma+beta)", len(op.Values))
			}
			for _, sym := range []string{"gamma0", "gamma1", "beta0", "beta1"} {
				if _, ok := op.Values[sym]; !ok {
					t.Fatalf("bind missing symbol %s: %v", sym, op.Values)
				}
			}
			if op.Session < 0 || op.Session >= 2 {
				t.Fatalf("bind references session %d outside [0,2)", op.Session)
			}
		default:
			t.Fatalf("unexpected op kind %q in session phase", op.Kind)
		}
	}
	if opens != 2 {
		t.Fatalf("session phase opened %d sessions, want 2", opens)
	}
}

// TestVariantsAreCacheDistinct: distinct variants of one mix entry must
// submit distinct payloads (distinct compile-cache keys), while one
// variant is always byte-identical with itself.
func TestVariantsAreCacheDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := map[string]int{}
	for v := 0; v < 4; v++ {
		text, err := BuildClassCircuit("qft", 5, 0, v, rng)
		if err != nil {
			t.Fatal(err)
		}
		if prior, dup := seen[text]; dup {
			t.Fatalf("variants %d and %d produced identical circuits", prior, v)
		}
		seen[text] = v
	}
}

// TestBuildClassCircuitAllClasses exercises every registered class at
// its default shape and confirms the output parses as cQASM.
func TestBuildClassCircuitAllClasses(t *testing.T) {
	for _, class := range ClassNames() {
		def := classDefaults[class]
		rng := rand.New(rand.NewSource(7))
		text, err := BuildClassCircuit(class, def.qubits, def.depth, 1, rng)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if _, err := cqasm.Parse(text); err != nil {
			t.Fatalf("%s output does not parse: %v\n%s", class, err, text)
		}
		if !strings.Contains(text, "measure") {
			t.Errorf("%s circuit has no measurement", class)
		}
	}
	if _, err := BuildClassCircuit("nope", 4, 0, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("unknown class accepted")
	}
}

// TestDeriveNonZero: derived per-op seeds must never be zero (zero asks
// the service to derive its own, breaking replay determinism).
func TestDeriveNonZero(t *testing.T) {
	if derive(0) == 0 {
		t.Error("derive(0) returned 0")
	}
	seen := map[int64]bool{}
	for i := uint64(0); i < 1000; i++ {
		v := derive(42, 0x0b, i)
		if v == 0 {
			t.Fatalf("derive produced zero at %d", i)
		}
		seen[v] = true
	}
	if len(seen) < 990 {
		t.Errorf("derive collides heavily: %d distinct of 1000", len(seen))
	}
}
