package loadgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/cqasm"
	"repro/internal/genome"
	"repro/internal/grover"
	"repro/internal/qaoa"
	"repro/internal/qec"
	"repro/internal/qubo"
)

// BuildClassCircuit materialises one variant of a workload circuit class
// as cQASM source text. Everything it draws comes from rng, so a variant
// is fully determined by its derived seed — the byte-reproducibility
// contract of the workload generator. The variant index additionally
// perturbs the circuit content (input-state prefixes, Grover targets,
// QAOA instances), so distinct variants key distinct compile-cache
// entries while repeated references to one variant are cache hits.
func BuildClassCircuit(class string, qubits, depth, variant int, rng *rand.Rand) (string, error) {
	var c *circuit.Circuit
	switch class {
	case "qft":
		c = circuit.QFT(qubits, true)
		c = withInputPrefix(fmt.Sprintf("qft%d_v%d", qubits, variant), qubits, variant, c)
	case "ghz":
		// Pure Clifford: under the auto engine these dispatch to the
		// stabilizer tableau, exercising the engine-dispatch mix.
		c = circuit.GHZ(qubits)
		c = withInputPrefix(fmt.Sprintf("ghz%d_v%d", qubits, variant), qubits, variant, c)
	case "random":
		c = circuit.RandomCircuit(qubits, depth, rng)
	case "grover":
		target := variant % (1 << uint(qubits))
		gc, err := grover.BuildCircuit(qubits, target, 0)
		if err != nil {
			return "", err
		}
		c = gc
	case "qaoa":
		c2, err := qaoaCircuit(qubits, depth, rng)
		if err != nil {
			return "", err
		}
		c = c2
	case "qec":
		sc, err := qec.NewSurfaceCode(qubits)
		if err != nil {
			return "", err
		}
		// The cycle circuit measures ancillas and data itself; the
		// variant-keyed X prefix on data qubits injects distinct error
		// patterns (still Clifford), keeping variants distinct.
		c = withInputPrefix(fmt.Sprintf("qec_d%d_v%d", qubits, variant), sc.NumDataQubits(), variant, sc.CycleCircuit())
		return cqasm.PrintCircuit(c), nil
	case "genome":
		c = genomeCircuit(qubits, rng)
	default:
		return "", fmt.Errorf("loadgen: unknown circuit class %q", class)
	}
	c.MeasureAll()
	return cqasm.PrintCircuit(c), nil
}

// withInputPrefix rebuilds a circuit with an X-gate input-state prefix
// keyed by the variant bits on the first prefixQubits qubits, so variants
// of structurally identical circuits hash — and therefore cache —
// distinctly.
func withInputPrefix(name string, prefixQubits, variant int, c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(name, c.NumQubits)
	for q := 0; q < prefixQubits && q < 62; q++ {
		if variant&(1<<uint(q)) != 0 {
			out.X(q)
		}
	}
	for _, g := range c.Gates {
		out.Gates = append(out.Gates, g)
	}
	return out
}

// qaoaCircuit draws a random QUBO instance of n variables (each
// upper-triangular coefficient present with probability ½) and builds
// the depth-layer QAOA circuit with rng-drawn angles.
func qaoaCircuit(n, layers int, rng *rand.Rand) (*circuit.Circuit, error) {
	q := randomQUBO(n, rng)
	gammas := make([]float64, layers)
	betas := make([]float64, layers)
	for l := 0; l < layers; l++ {
		gammas[l] = rng.Float64() * 2 * math.Pi
		betas[l] = rng.Float64() * math.Pi
	}
	return qaoa.FromQUBO(q).BuildCircuit(gammas, betas)
}

// randomQUBO draws a dense-ish random QUBO on n variables with
// coefficients in [−1, 1).
func randomQUBO(n int, rng *rand.Rand) *qubo.QUBO {
	q := qubo.New(n)
	for i := 0; i < n; i++ {
		q.Add(i, i, rng.Float64()*2-1)
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.5 {
				q.Add(i, j, rng.Float64()*2-1)
			}
		}
	}
	return q
}

// genomeCircuit is the gate-level proxy for the paper's genome-alignment
// workload (§2.3): a read drawn from a random reference is 2-bit encoded
// onto a data register, an index register is put in uniform superposition
// (the "superposed quantum database" address lines) and entangled with
// the data register, and everything is measured. The register is
// idx + 2·readLen qubits for a total of the requested width.
func genomeCircuit(qubits int, rng *rand.Rand) *circuit.Circuit {
	idxBits := 3
	if qubits < 7 {
		idxBits = 1
	}
	readLen := (qubits - idxBits) / 2
	if readLen < 1 {
		readLen = 1
	}
	n := idxBits + 2*readLen
	read := genome.GenerateDNA(readLen, rng)
	code, err := genome.EncodeSequence(read)
	if err != nil {
		// GenerateDNA only emits ACGT; unreachable.
		panic(err)
	}
	c := circuit.New(fmt.Sprintf("genome_l%d", readLen), n)
	for i := 0; i < idxBits; i++ {
		c.H(i)
	}
	for b := 0; b < 2*readLen; b++ {
		if code&(1<<uint(b)) != 0 {
			c.X(idxBits + b)
		}
	}
	// Entangle address lines with the data register — the recall step of
	// the associative-memory model, gate-level.
	for b := 0; b < 2*readLen; b++ {
		c.CNOT(b%idxBits, idxBits+b)
	}
	return c
}

// sessionAnsatz builds the parametric QAOA ansatz a bind-storm phase
// opens sessions over: a deterministic random QUBO instance with
// symbolic $gamma{l}/$beta{l} angles surviving compilation into the
// artefact's bind table. Returns the cQASM text and the sorted symbol
// names binds must supply.
func sessionAnsatz(qubits, layers int, rng *rand.Rand) (string, []string, error) {
	q := randomQUBO(qubits, rng)
	c, err := qaoa.FromQUBO(q).BuildParametricCircuit(layers)
	if err != nil {
		return "", nil, err
	}
	c.MeasureAll()
	symbols := make([]string, 0, 2*layers)
	for l := 0; l < layers; l++ {
		symbols = append(symbols, fmt.Sprintf("beta%d", l), fmt.Sprintf("gamma%d", l))
	}
	return cqasm.PrintCircuit(c), symbols, nil
}
