package loadgen

import (
	"strings"
	"testing"
)

func sloScenario(t *testing.T) *Scenario {
	t.Helper()
	s, err := ParseScenario([]byte(`{
		"name": "slo",
		"phases": [
			{"name": "hot", "duration_ms": 100,
			 "arrival": {"process": "poisson", "rate_per_sec": 5},
			 "mix": [{"class": "qft"}]},
			{"name": "cold", "duration_ms": 100,
			 "arrival": {"process": "poisson", "rate_per_sec": 5},
			 "mix": [{"class": "qft", "variants": 8}]}
		],
		"slo": {
			"p95_ms": 100, "max_error_rate": 0.01,
			"compare": [{"metric": "p95_ms", "better": "hot", "worse": "cold", "min_effect": 0.2}]
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func report(seed int64, p95Total, p95Hot, p95Cold, errRate float64) *RunReport {
	return &RunReport{
		Scenario: "slo",
		Seed:     seed,
		Totals:   MetricsBlock{Ops: 10, OK: 10, P95Ms: p95Total, ErrorRate: errRate},
		Phases: []PhaseMetrics{
			{Name: "hot", Metrics: MetricsBlock{P95Ms: p95Hot}},
			{Name: "cold", Metrics: MetricsBlock{P95Ms: p95Cold}},
		},
	}
}

func TestEvaluateSLOBounds(t *testing.T) {
	s := sloScenario(t)
	r := report(42, 50, 10, 20, 0)
	EvaluateSLO(s, r)
	if !r.SLO.Pass {
		t.Fatalf("healthy run failed SLO: %v", r.SLO.Violations)
	}
	r = report(42, 150, 10, 20, 0)
	EvaluateSLO(s, r)
	if r.SLO.Pass || len(r.SLO.Violations) != 1 || !strings.Contains(r.SLO.Violations[0], "p95_ms") {
		t.Fatalf("latency breach not caught: %+v", r.SLO)
	}
	r = report(42, 50, 10, 20, 0.5)
	EvaluateSLO(s, r)
	if r.SLO.Pass || !strings.Contains(strings.Join(r.SLO.Violations, ";"), "error_rate") {
		t.Fatalf("error-rate breach not caught: %+v", r.SLO)
	}
}

func TestEvaluateSLOCompareEffect(t *testing.T) {
	s := sloScenario(t)
	// hot 10 vs cold 20: effect 0.5 >= 0.2 → pass.
	r := report(42, 50, 10, 20, 0)
	EvaluateSLO(s, r)
	if !r.SLO.Pass {
		t.Fatalf("0.5 effect failed: %v", r.SLO.Violations)
	}
	// hot 18 vs cold 20: effect 0.1 < 0.2 → fail.
	r = report(42, 50, 18, 20, 0)
	EvaluateSLO(s, r)
	if r.SLO.Pass || !strings.Contains(r.SLO.Violations[0], "effect") {
		t.Fatalf("weak effect not caught: %+v", r.SLO)
	}
	// hot slower than cold: negative effect → fail.
	r = report(42, 50, 30, 20, 0)
	EvaluateSLO(s, r)
	if r.SLO.Pass {
		t.Fatal("inverted effect passed")
	}
}

// TestGateDirectionalConsistency is the BLIS rule: the gate passes only
// when every seed passes every check — a single contradicting seed
// fails the whole gate even if the mean looks fine.
func TestGateDirectionalConsistency(t *testing.T) {
	s := sloScenario(t)
	good := func(seed int64) *RunReport { return report(seed, 50, 10, 20, 0) }
	g := Gate(s, []*RunReport{good(42), good(123), good(456)})
	if !g.Pass {
		t.Fatalf("all-healthy gate failed: %v", g.Violations)
	}
	if len(g.Seeds) != 3 {
		t.Fatalf("gate saw %d seeds", len(g.Seeds))
	}
	// Seed 123 contradicts the compare direction; the two other seeds
	// pass with a wide margin. Directional consistency must fail the
	// gate anyway.
	contradicting := report(123, 50, 30, 20, 0)
	g = Gate(s, []*RunReport{good(42), contradicting, good(456)})
	if g.Pass {
		t.Fatal("gate passed with a contradicting seed — directional consistency broken")
	}
	joined := strings.Join(g.Violations, ";")
	if !strings.Contains(joined, "seed 123") {
		t.Fatalf("violations do not name the contradicting seed: %v", g.Violations)
	}
	// Summary must aggregate across seeds (mean/min/max).
	var p95 *SeedSummary
	for i := range g.Summary {
		if g.Summary[i].Metric == "p95_ms" {
			p95 = &g.Summary[i]
		}
	}
	if p95 == nil || p95.Min != 50 || p95.Max != 50 || p95.Mean != 50 {
		t.Fatalf("p95 summary wrong: %+v", p95)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	lat := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(lat, 50); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := percentile(lat, 95); got != 10 {
		t.Errorf("p95 = %v, want 10", got)
	}
	if got := percentile(lat, 100); got != 10 {
		t.Errorf("p100 = %v, want 10", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestBuildBlock(t *testing.T) {
	results := []opResult{
		{latencyMs: 10}, {latencyMs: 20}, {latencyMs: 30},
		{rejected: true}, {failed: true},
	}
	b := buildBlock(results, 1000)
	if b.Ops != 5 || b.OK != 3 || b.Failed != 1 || b.Rejected != 1 {
		t.Fatalf("counts wrong: %+v", b)
	}
	if b.ErrorRate != 0.2 || b.RejectRate != 0.2 {
		t.Fatalf("rates wrong: %+v", b)
	}
	if b.MeanMs != 20 || b.MaxMs != 30 {
		t.Fatalf("latency stats wrong: %+v", b)
	}
	if b.ThroughputPerSec != 3 {
		t.Fatalf("throughput = %v, want 3", b.ThroughputPerSec)
	}
}

func TestParseEngineDispatch(t *testing.T) {
	text := `# HELP qserv_engine_dispatch_total Jobs dispatched per engine.
# TYPE qserv_engine_dispatch_total counter
qserv_engine_dispatch_total{engine="optimized"} 33
qserv_engine_dispatch_total{engine="stabilizer"} 16
qserv_jobs_submitted_total 49
`
	got := parseEngineDispatch(text)
	if got["optimized"] != 33 || got["stabilizer"] != 16 || len(got) != 2 {
		t.Fatalf("parsed %v", got)
	}
	delta := dispatchDelta(map[string]float64{"optimized": 30}, got)
	if delta["optimized"] != 3 || delta["stabilizer"] != 16 {
		t.Fatalf("delta %v", delta)
	}
	if d := dispatchDelta(got, got); d != nil {
		t.Fatalf("zero delta should be nil, got %v", d)
	}
}

func TestDeltaRate(t *testing.T) {
	before := cacheSnapshot{Hits: 10, Misses: 10}
	after := cacheSnapshot{Hits: 40, Misses: 20}
	if got := deltaRate(before, after); got != 0.75 {
		t.Errorf("delta rate = %v, want 0.75", got)
	}
	if got := deltaRate(after, after); got != 0 {
		t.Errorf("no-traffic delta rate = %v, want 0", got)
	}
}

func TestFormatRun(t *testing.T) {
	r := report(42, 50, 10, 20, 0)
	r.Server.EngineDispatch = map[string]float64{"optimized": 5, "stabilizer": 2}
	r.SLO = SLOResult{Pass: true}
	out := FormatRun(r)
	for _, want := range []string{"slo seed=42", "p95=50.0ms", "dispatch=optimized:5,stabilizer:2", "SLO=pass"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatRun missing %q: %s", want, out)
		}
	}
	r.SLO = SLOResult{Pass: false, Violations: []string{"x"}}
	if out := FormatRun(r); !strings.Contains(out, "SLO=FAIL(1)") {
		t.Errorf("FormatRun missing failure marker: %s", out)
	}
}
