package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/qserv"
	"repro/internal/target"
)

// Runner drives one scenario run against a qserv service — either a
// self-booted in-process qservd (the default) or an external one named
// by AttachURL.
type Runner struct {
	// AttachURL points the runner at an already running qservd (e.g.
	// "http://127.0.0.1:8080"). Empty boots a private service shaped by
	// the scenario's service block; self-booted services tear down with
	// a graceful drain.
	AttachURL string
	// DrainTimeout bounds the self-booted service's teardown drain
	// (default 30s).
	DrainTimeout time.Duration
	// SampleInterval is the queue-depth sampling period (default 100ms).
	SampleInterval time.Duration
	// TraceDir, when set, receives the span trees of every failed job
	// plus the slowest few, one JSON file each.
	TraceDir string
	// OpTimeout bounds one op's submit→result wait (default 60s).
	OpTimeout time.Duration
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...interface{})
}

func (r *Runner) logf(format string, args ...interface{}) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// maxInFlight caps concurrently outstanding open-loop ops (sockets and
// goroutines), not the arrival schedule itself.
const maxInFlight = 512

// traceDumpSlowest is how many of the slowest jobs get their traces
// dumped alongside every failed job when TraceDir is set.
const traceDumpSlowest = 10

// Run generates the (scenario, seed) workload, replays it against the
// service and returns the evaluated report.
func (r *Runner) Run(s *Scenario, seed int64) (*RunReport, error) {
	w, err := GenerateWorkload(s, seed)
	if err != nil {
		return nil, err
	}
	base, shutdown, err := r.bootOrAttach(s, seed)
	if err != nil {
		return nil, err
	}
	defer shutdown()

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        maxInFlight,
			MaxIdleConnsPerHost: maxInFlight,
		},
		Timeout: 0, // per-request contexts bound the waits
	}
	defer client.CloseIdleConnections()
	run := &runState{
		r:      r,
		s:      s,
		base:   base,
		client: client,
		opTimeout: func() time.Duration {
			if r.OpTimeout > 0 {
				return r.OpTimeout
			}
			return 60 * time.Second
		}(),
	}
	if err := run.waitHealthy(); err != nil {
		return nil, err
	}

	statsBefore, err := run.fetchStats()
	if err != nil {
		return nil, fmt.Errorf("loadgen: initial /stats: %w", err)
	}
	metricsBefore, err := run.fetchMetrics()
	if err != nil {
		return nil, fmt.Errorf("loadgen: initial /metrics: %w", err)
	}

	stopSampler := run.startQueueSampler()
	stopEvents := run.scheduleEvents()
	runStart := time.Now()
	var phases []PhaseMetrics
	var all []opResult
	for pi := range w.Phases {
		pw := &w.Phases[pi]
		phaseStart := time.Now()
		results := run.runPhase(pw)
		wallMs := float64(time.Since(phaseStart)) / float64(time.Millisecond)
		phases = append(phases, PhaseMetrics{Name: pw.Name, Metrics: buildBlock(results, wallMs)})
		all = append(all, results...)
		r.logf("phase %s: %d ops in %.0fms", pw.Name, len(results), wallMs)
	}
	totalWallMs := float64(time.Since(runStart)) / float64(time.Millisecond)
	stopEvents()
	maxQ, meanQ := stopSampler()

	statsAfter, err := run.fetchStats()
	if err != nil {
		return nil, fmt.Errorf("loadgen: final /stats: %w", err)
	}
	metricsAfter, err := run.fetchMetrics()
	if err != nil {
		return nil, fmt.Errorf("loadgen: final /metrics: %w", err)
	}
	if r.TraceDir != "" {
		run.dumpTraces()
	}

	report := &RunReport{
		Scenario:       s.Name,
		Seed:           seed,
		WorkloadSHA256: w.SHA256(),
		DurationMs:     totalWallMs,
		Totals:         buildBlock(all, totalWallMs),
		Phases:         phases,
		Server: ServerMetrics{
			FullHitRate:    deltaRate(statsBefore.Cache, statsAfter.Cache),
			PrefixHitRate:  deltaRate(statsBefore.PrefixCache, statsAfter.PrefixCache),
			JobsDone:       statsAfter.JobsDone - statsBefore.JobsDone,
			JobsFailed:     statsAfter.JobsFailed - statsBefore.JobsFailed,
			MaxQueueDepth:  maxQ,
			MeanQueue:      meanQ,
			EngineDispatch: dispatchDelta(parseEngineDispatch(metricsBefore), parseEngineDispatch(metricsAfter)),
		},
	}
	EvaluateSLO(s, report)
	return report, nil
}

// RunGate runs the scenario once per seed and folds the runs into the
// multi-seed gate verdict. A nil or empty seeds slice runs the
// scenario's own (normalized) seed list.
func (r *Runner) RunGate(s *Scenario, seeds []int64) (*GateReport, error) {
	if len(seeds) == 0 {
		seeds = s.Seeds
	}
	var runs []*RunReport
	for _, seed := range seeds {
		rep, err := r.Run(s, seed)
		if err != nil {
			return nil, fmt.Errorf("loadgen: %s seed %d: %w", s.Name, seed, err)
		}
		r.logf("%s", FormatRun(rep))
		runs = append(runs, rep)
	}
	return Gate(s, runs), nil
}

// bootOrAttach returns the service base URL and a teardown func.
func (r *Runner) bootOrAttach(s *Scenario, seed int64) (string, func(), error) {
	if r.AttachURL != "" {
		return r.AttachURL, func() {}, nil
	}
	sv := s.Service
	cfg := qserv.Config{
		QueueSize:      sv.Queue,
		DefaultWorkers: sv.Workers,
		DefaultShots:   sv.Shots,
		CacheSize:      sv.Cache,
		Seed:           seed,
		Engine:         sv.Engine,
	}
	svc := qserv.DefaultService(cfg, sv.Qubits, sv.Workers)
	svc.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Stop()
		return "", nil, fmt.Errorf("loadgen: listen: %w", err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() { _ = srv.Serve(ln) }()
	drainTimeout := r.DrainTimeout
	if drainTimeout <= 0 {
		drainTimeout = 30 * time.Second
	}
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := svc.Drain(ctx); err != nil {
			r.logf("drain deadline exceeded; jobs may still be running: %v", err)
		}
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// runState is the per-run mutable context shared by the phase loops.
type runState struct {
	r         *Runner
	s         *Scenario
	base      string
	client    *http.Client
	opTimeout time.Duration

	mu sync.Mutex
	// sessions maps the workload's session index to the server ID.
	sessions map[int]string
	// slow tracks (jobID, latencyMs) of completed jobs for trace dumps;
	// failures are tracked separately so they always dump.
	slow   []jobLatency
	failed []string
}

type jobLatency struct {
	id        string
	latencyMs float64
}

func (rs *runState) waitHealthy() error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := rs.client.Get(rs.base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: service at %s not healthy: %v", rs.base, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (rs *runState) fetchStats() (statsSnapshot, error) {
	var st statsSnapshot
	resp, err := rs.client.Get(rs.base + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("GET /stats: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func (rs *runState) fetchMetrics() (string, error) {
	resp, err := rs.client.Get(rs.base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// startQueueSampler polls /stats for the queue depth; the returned stop
// func reports (max, mean) over the samples.
func (rs *runState) startQueueSampler() func() (int, float64) {
	interval := rs.r.SampleInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	var maxQ int
	var sum float64
	var n int
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				st, err := rs.fetchStats()
				if err != nil {
					continue
				}
				if st.QueueDepth > maxQ {
					maxQ = st.QueueDepth
				}
				sum += float64(st.QueueDepth)
				n++
			}
		}
	}()
	return func() (int, float64) {
		close(stop)
		<-done
		if n == 0 {
			return maxQ, 0
		}
		return maxQ, sum / float64(n)
	}
}

// scheduleEvents arms the scenario's fault injections relative to now.
func (rs *runState) scheduleEvents() func() {
	var timers []*time.Timer
	for i := range rs.s.Events {
		e := rs.s.Events[i]
		timers = append(timers, time.AfterFunc(time.Duration(e.AtMs)*time.Millisecond, func() {
			if err := rs.applyEvent(&e); err != nil {
				rs.r.logf("event %s@%dms failed: %v", e.Kind, e.AtMs, err)
			} else {
				rs.r.logf("event %s@%dms applied to %s", e.Kind, e.AtMs, e.Backend)
			}
		}))
	}
	return func() {
		for _, t := range timers {
			t.Stop()
		}
	}
}

// applyEvent injects one fault. Recalibrate fetches the backend's
// current calibration, scales every error rate by the drift factor and
// PUTs the drifted table back — rotating the backend's device hash and
// with it the full compile-cache keys.
func (rs *runState) applyEvent(e *EventSpec) error {
	resp, err := rs.client.Get(rs.base + "/backends")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var list struct {
		Backends []struct {
			Name   string         `json:"name"`
			Device *target.Device `json:"device"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return err
	}
	var cal *target.Calibration
	for _, b := range list.Backends {
		if b.Name == e.Backend && b.Device != nil {
			cal = b.Device.Calibration
			break
		}
	}
	if cal == nil {
		return fmt.Errorf("backend %q has no calibration to drift", e.Backend)
	}
	drifted := cal.Clone()
	clamp := func(p float64) float64 {
		p *= e.DriftFactor
		if p >= 1 {
			p = 0.999
		}
		return p
	}
	for i := range drifted.Qubits {
		q := &drifted.Qubits[i]
		q.ReadoutError = clamp(q.ReadoutError)
		q.SingleQubitError = clamp(q.SingleQubitError)
	}
	for i := range drifted.Edges {
		drifted.Edges[i].TwoQubitError = clamp(drifted.Edges[i].TwoQubitError)
	}
	body, err := json.Marshal(drifted)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, rs.base+"/backends/"+e.Backend+"/calibration", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	put, err := rs.client.Do(req)
	if err != nil {
		return err
	}
	defer put.Body.Close()
	if put.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(put.Body, 512))
		return fmt.Errorf("PUT calibration: %s: %s", put.Status, msg)
	}
	io.Copy(io.Discard, put.Body)
	return nil
}

// runPhase replays one phase's op stream and returns the op results.
// Open-loop ops fire at their generated offsets regardless of service
// progress; closed-loop lanes walk their op list serially until the
// phase deadline. Session opens run synchronously up front.
func (rs *runState) runPhase(pw *PhaseWorkload) []opResult {
	phase := indexOfPhase(rs.s, pw.Name)
	results := make([]opResult, 0, len(pw.Ops))
	var mu sync.Mutex
	record := func(res opResult) {
		mu.Lock()
		results = append(results, res)
		mu.Unlock()
	}
	ops := pw.Ops
	for len(ops) > 0 && ops[0].Kind == OpOpenSession {
		record(rs.execute(&ops[0], phase))
		ops = ops[1:]
	}
	start := time.Now()
	deadline := start.Add(time.Duration(pw.DurationMs) * time.Millisecond)
	var wg sync.WaitGroup
	if pw.Closed {
		lanes := map[int][]*Op{}
		var order []int
		for i := range ops {
			c := ops[i].Client
			if _, ok := lanes[c]; !ok {
				order = append(order, c)
			}
			lanes[c] = append(lanes[c], &ops[i])
		}
		sort.Ints(order)
		for _, c := range order {
			lane := lanes[c]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, op := range lane {
					if !time.Now().Before(deadline) {
						return
					}
					record(rs.execute(op, phase))
					if op.ThinkMs > 0 {
						time.Sleep(time.Duration(op.ThinkMs * float64(time.Millisecond)))
					}
				}
			}()
		}
	} else {
		sem := make(chan struct{}, maxInFlight)
		for i := range ops {
			op := &ops[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				at := start.Add(time.Duration(op.AtMs * float64(time.Millisecond)))
				time.Sleep(time.Until(at))
				sem <- struct{}{}
				defer func() { <-sem }()
				record(rs.execute(op, phase))
			}()
		}
	}
	wg.Wait()
	return results
}

func indexOfPhase(s *Scenario, name string) int {
	for i := range s.Phases {
		if s.Phases[i].Name == name {
			return i
		}
	}
	return -1
}

// execute issues one op and waits for its terminal state, returning the
// client-observed submit→result record.
func (rs *runState) execute(op *Op, phase int) opResult {
	res := opResult{phase: phase}
	begin := time.Now()
	finish := func() opResult {
		res.latencyMs = float64(time.Since(begin)) / float64(time.Millisecond)
		return res
	}
	switch op.Kind {
	case OpOpenSession:
		body := map[string]interface{}{
			"name":    op.Name,
			"cqasm":   op.CQASM,
			"backend": op.Backend,
			"shots":   op.Shots,
		}
		status, data, err := rs.post("/sessions", body)
		switch {
		case err != nil || status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests:
			res.rejected = true
		case status != http.StatusCreated:
			res.failed = true
		default:
			var view struct {
				ID string `json:"id"`
			}
			if json.Unmarshal(data, &view) == nil && view.ID != "" {
				rs.mu.Lock()
				if rs.sessions == nil {
					rs.sessions = map[int]string{}
				}
				rs.sessions[op.Session] = view.ID
				rs.mu.Unlock()
				res.ok = true
			} else {
				res.failed = true
			}
		}
		return finish()
	case OpBind:
		rs.mu.Lock()
		sid := rs.sessions[op.Session]
		rs.mu.Unlock()
		if sid == "" {
			res.failed = true
			return finish()
		}
		body := map[string]interface{}{
			"name":   op.Name,
			"values": op.Values,
			"shots":  op.Shots,
			"seed":   op.Seed,
		}
		return rs.submitAndAwait("/sessions/"+sid+"/bind", body, begin, res)
	default: // OpSubmit
		body := map[string]interface{}{
			"name":    op.Name,
			"cqasm":   op.CQASM,
			"backend": op.Backend,
			"shots":   op.Shots,
			"seed":    op.Seed,
		}
		if op.Engine != "" {
			body["engine"] = op.Engine
		}
		return rs.submitAndAwait("/submit", body, begin, res)
	}
}

// submitAndAwait posts a job-producing request and long-polls the job to
// a terminal state.
func (rs *runState) submitAndAwait(path string, body interface{}, begin time.Time, res opResult) opResult {
	finish := func() opResult {
		res.latencyMs = float64(time.Since(begin)) / float64(time.Millisecond)
		return res
	}
	status, data, err := rs.post(path, body)
	switch {
	case err != nil:
		res.failed = true
		return finish()
	case status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests:
		res.rejected = true
		return finish()
	case status != http.StatusAccepted:
		res.failed = true
		return finish()
	}
	var sub struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(data, &sub) != nil || sub.ID == "" {
		res.failed = true
		return finish()
	}
	deadline := time.Now().Add(rs.opTimeout)
	for {
		resp, err := rs.client.Get(rs.base + "/jobs/" + sub.ID + "?wait=2s")
		if err != nil {
			res.failed = true
			return finish()
		}
		view := struct {
			Status string `json:"status"`
		}{}
		err = json.NewDecoder(resp.Body).Decode(&view)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			res.failed = true
			return finish()
		}
		switch view.Status {
		case "done":
			res.ok = true
			out := finish()
			rs.trackJob(sub.ID, out.latencyMs, false)
			return out
		case "failed":
			res.failed = true
			out := finish()
			rs.trackJob(sub.ID, out.latencyMs, true)
			return out
		}
		if time.Now().After(deadline) {
			res.failed = true
			out := finish()
			rs.trackJob(sub.ID, out.latencyMs, true)
			return out
		}
	}
}

func (rs *runState) post(path string, body interface{}) (int, []byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := rs.client.Post(rs.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, out, nil
}

// trackJob records a completed job for the post-run trace dump.
func (rs *runState) trackJob(id string, latencyMs float64, failed bool) {
	if rs.r.TraceDir == "" {
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if failed {
		rs.failed = append(rs.failed, id)
		return
	}
	rs.slow = append(rs.slow, jobLatency{id: id, latencyMs: latencyMs})
}

// dumpTraces writes the span trees of every failed job and the slowest
// completed jobs into TraceDir.
func (rs *runState) dumpTraces() {
	rs.mu.Lock()
	failed := append([]string(nil), rs.failed...)
	slow := append([]jobLatency(nil), rs.slow...)
	rs.mu.Unlock()
	sort.Slice(slow, func(i, j int) bool { return slow[i].latencyMs > slow[j].latencyMs })
	if len(slow) > traceDumpSlowest {
		slow = slow[:traceDumpSlowest]
	}
	ids := failed
	for _, jl := range slow {
		ids = append(ids, jl.id)
	}
	if len(ids) == 0 {
		return
	}
	if err := os.MkdirAll(rs.r.TraceDir, 0o755); err != nil {
		rs.r.logf("trace dir: %v", err)
		return
	}
	for _, id := range ids {
		resp, err := rs.client.Get(rs.base + "/jobs/" + id + "/trace")
		if err != nil {
			continue
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			continue
		}
		path := filepath.Join(rs.r.TraceDir, id+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			rs.r.logf("trace dump %s: %v", path, err)
		}
	}
}
