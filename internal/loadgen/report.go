package loadgen

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// MetricsBlock is the client-side view of a slice of ops (one phase, or
// the whole run). Latency is submit→result: from the POST leaving the
// client to the job reaching a terminal state.
type MetricsBlock struct {
	Ops      int `json:"ops"`
	OK       int `json:"ok"`
	Failed   int `json:"failed"`
	Rejected int `json:"rejected"`
	// ErrorRate counts jobs that were admitted but failed (or whose
	// result never arrived) over all ops.
	ErrorRate float64 `json:"error_rate"`
	// RejectRate counts 429/503 backpressure rejections over all ops.
	RejectRate float64 `json:"reject_rate"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MeanMs     float64 `json:"mean_ms"`
	MaxMs      float64 `json:"max_ms"`
	// ThroughputPerSec is completed ops per second of phase wall time.
	ThroughputPerSec float64 `json:"throughput_per_sec"`
}

// PhaseMetrics is one phase's MetricsBlock, ordered as the scenario
// declares the phases.
type PhaseMetrics struct {
	Name    string       `json:"name"`
	Metrics MetricsBlock `json:"metrics"`
}

// ServerMetrics is the server-side delta between the /stats and /metrics
// snapshots taken at run start and run end, plus queue-depth samples
// polled during the run.
type ServerMetrics struct {
	// FullHitRate / PrefixHitRate are delta hit rates over the run (hits
	// gained / lookups gained), not lifetime averages — attach mode would
	// otherwise dilute the scenario's own behaviour.
	FullHitRate   float64 `json:"full_hit_rate"`
	PrefixHitRate float64 `json:"prefix_hit_rate"`
	JobsDone      uint64  `json:"jobs_done"`
	JobsFailed    uint64  `json:"jobs_failed"`
	MaxQueueDepth int     `json:"max_queue_depth"`
	MeanQueue     float64 `json:"mean_queue_depth"`
	// EngineDispatch is the delta of qserv_engine_dispatch_total by
	// engine label.
	EngineDispatch map[string]float64 `json:"engine_dispatch,omitempty"`
}

// RunReport is the machine-readable result of one (scenario, seed) run.
type RunReport struct {
	Scenario       string         `json:"scenario"`
	Seed           int64          `json:"seed"`
	WorkloadSHA256 string         `json:"workload_sha256"`
	DurationMs     float64        `json:"duration_ms"`
	Totals         MetricsBlock   `json:"totals"`
	Phases         []PhaseMetrics `json:"phases"`
	Server         ServerMetrics  `json:"server"`
	SLO            SLOResult      `json:"slo"`
}

// opResult is the runner's record of one completed op.
type opResult struct {
	phase     int
	latencyMs float64
	ok        bool
	rejected  bool
	failed    bool
}

// percentile returns the nearest-rank percentile of sorted (ascending)
// latencies; p in (0,100].
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// buildBlock computes a MetricsBlock over a set of op results.
func buildBlock(results []opResult, wallMs float64) MetricsBlock {
	b := MetricsBlock{Ops: len(results)}
	var lat []float64
	sum := 0.0
	for _, r := range results {
		switch {
		case r.rejected:
			b.Rejected++
		case r.failed:
			b.Failed++
		default:
			b.OK++
			lat = append(lat, r.latencyMs)
			sum += r.latencyMs
		}
	}
	if b.Ops > 0 {
		b.ErrorRate = float64(b.Failed) / float64(b.Ops)
		b.RejectRate = float64(b.Rejected) / float64(b.Ops)
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		b.P50Ms = percentile(lat, 50)
		b.P95Ms = percentile(lat, 95)
		b.P99Ms = percentile(lat, 99)
		b.MeanMs = sum / float64(len(lat))
		b.MaxMs = lat[len(lat)-1]
	}
	if wallMs > 0 {
		b.ThroughputPerSec = float64(b.OK) / (wallMs / 1000)
	}
	return b
}

// statsSnapshot mirrors the /stats fields the harness consumes.
type statsSnapshot struct {
	QueueDepth    int           `json:"queue_depth"`
	JobsSubmitted uint64        `json:"jobs_submitted"`
	JobsDone      uint64        `json:"jobs_done"`
	JobsFailed    uint64        `json:"jobs_failed"`
	Cache         cacheSnapshot `json:"cache"`
	PrefixCache   cacheSnapshot `json:"prefix_cache"`
}

type cacheSnapshot struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// deltaRate computes the hit rate of the (after − before) window.
func deltaRate(before, after cacheSnapshot) float64 {
	hits := float64(after.Hits - before.Hits)
	misses := float64(after.Misses - before.Misses)
	if hits+misses == 0 {
		return 0
	}
	return hits / (hits + misses)
}

// parseEngineDispatch extracts qserv_engine_dispatch_total{engine=...}
// samples from Prometheus exposition text. It is deliberately a minimal
// line parser: the only family it needs has a single label with a plain
// value, so a full exposition-format parser would be dead weight.
func parseEngineDispatch(text string) map[string]float64 {
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	const prefix = `qserv_engine_dispatch_total{engine="`
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		end := strings.Index(rest, `"`)
		if end < 0 {
			continue
		}
		engine := rest[:end]
		fields := strings.Fields(rest[end+2:])
		if len(fields) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			continue
		}
		out[engine] += v
	}
	return out
}

// dispatchDelta subtracts the before snapshot from after, dropping
// engines with no growth.
func dispatchDelta(before, after map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for engine, v := range after {
		d := v - before[engine]
		if d > 0 {
			out[engine] = d
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// FormatRun renders a terse human-readable summary of a run report.
func FormatRun(r *RunReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s seed=%d ops=%d ok=%d failed=%d rejected=%d p50=%.1fms p95=%.1fms p99=%.1fms err=%.3f rej=%.3f full-hit=%.2f prefix-hit=%.2f maxq=%d",
		r.Scenario, r.Seed, r.Totals.Ops, r.Totals.OK, r.Totals.Failed, r.Totals.Rejected,
		r.Totals.P50Ms, r.Totals.P95Ms, r.Totals.P99Ms,
		r.Totals.ErrorRate, r.Totals.RejectRate,
		r.Server.FullHitRate, r.Server.PrefixHitRate, r.Server.MaxQueueDepth)
	if len(r.Server.EngineDispatch) > 0 {
		engines := make([]string, 0, len(r.Server.EngineDispatch))
		for e := range r.Server.EngineDispatch {
			engines = append(engines, e)
		}
		sort.Strings(engines)
		b.WriteString(" dispatch=")
		for i, e := range engines {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s:%.0f", e, r.Server.EngineDispatch[e])
		}
	}
	if r.SLO.Pass {
		b.WriteString(" SLO=pass")
	} else {
		fmt.Fprintf(&b, " SLO=FAIL(%d)", len(r.SLO.Violations))
	}
	return b.String()
}
