package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// FieldError locates a scenario defect by the exact JSON field path that
// caused it ("phases[0].mix[1].class", "slo.p95_ms", …), so a broken
// scenario file points straight at the offending line instead of failing
// deep inside the generator.
type FieldError struct {
	// Path is the JSON field path of the defect, dotted with [i] array
	// indices, relative to the document root.
	Path string
	// Msg describes the defect.
	Msg string
}

func (e *FieldError) Error() string { return e.Path + ": " + e.Msg }

func fieldErrf(path, format string, args ...interface{}) error {
	return &FieldError{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Arrival processes.
const (
	// ArrivalPoisson is the open-loop process: exponentially distributed
	// inter-arrival gaps at rate_per_sec, submitted regardless of how the
	// service keeps up — latency under overload is visible, not hidden by
	// client back-pressure (coordinated omission).
	ArrivalPoisson = "poisson"
	// ArrivalClosed is the closed-loop process: clients issue one request
	// at a time and sleep think_ms between completion and the next
	// submission, the interactive-user model.
	ArrivalClosed = "closed"
)

// Scenario is one declarative load experiment: a service shape, a tenant
// population, an ordered list of traffic phases, optional mid-run fault
// events, and the SLO block the run is gated on. Scenarios are stored as
// scenarios/*.json and are fully deterministic: one (scenario, seed)
// pair generates one byte-identical workload.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seeds are the PRNG seeds a gate run evaluates; empty defaults to
	// the BLIS standard triple {42, 123, 456}.
	Seeds []int64 `json:"seeds,omitempty"`
	// Service shapes the self-booted qservd when the runner is not
	// attached to an external one.
	Service *ServiceSpec `json:"service,omitempty"`
	// Tenants is the weighted multi-tenant population ops are drawn from;
	// empty defaults to a single "default" tenant.
	Tenants []TenantSpec `json:"tenants,omitempty"`
	Phases  []PhaseSpec  `json:"phases"`
	// Events are mid-run fault injections, timed relative to run start.
	Events []EventSpec `json:"events,omitempty"`
	SLO    SLOSpec     `json:"slo"`
}

// ServiceSpec shapes the in-process qservd a non-attached run boots.
type ServiceSpec struct {
	// Qubits sizes the perfect stack (default 10).
	Qubits int `json:"qubits,omitempty"`
	// Workers per backend pool (default 2).
	Workers int `json:"workers,omitempty"`
	// Queue bounds each backend's job queue (default 256); shrink it to
	// provoke back-pressure rejections.
	Queue int `json:"queue,omitempty"`
	// Cache bounds the full-artefact compile cache (default 512;
	// negative disables).
	Cache int `json:"cache,omitempty"`
	// Shots is the service default per gate job (default 1024; per-op
	// shots usually override it).
	Shots int `json:"shots,omitempty"`
	// Engine names the default qx engine ("auto" when empty).
	Engine string `json:"engine,omitempty"`
}

// TenantSpec is one tenant of the weighted multi-tenant mix.
type TenantSpec struct {
	Name string `json:"name"`
	// Weight is the tenant's share of generated ops (default 1).
	Weight float64 `json:"weight,omitempty"`
}

// PhaseSpec is one traffic phase. Phases run strictly in order with a
// completion barrier between them, so cache-cold and cache-hot phases
// (or pre- and post-drift phases) measure separately.
type PhaseSpec struct {
	Name       string      `json:"name"`
	DurationMs int         `json:"duration_ms"`
	Arrival    ArrivalSpec `json:"arrival"`
	// Mix is the weighted circuit-class mix of an ordinary phase; empty
	// only for session phases, whose ops are binds.
	Mix []MixSpec `json:"mix,omitempty"`
	// Sessions turns the phase into a bind storm: Count variational
	// sessions open at phase start and every generated op is a bind
	// against one of them.
	Sessions *SessionSpec `json:"sessions,omitempty"`
}

// ArrivalSpec selects the phase's arrival process.
type ArrivalSpec struct {
	Process    string  `json:"process"`
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Clients and ThinkMs shape the closed-loop process.
	Clients int     `json:"clients,omitempty"`
	ThinkMs float64 `json:"think_ms,omitempty"`
}

// MixSpec is one weighted circuit class of a phase's traffic mix.
type MixSpec struct {
	// Class is one of the workload circuit classes; see ClassNames.
	Class  string  `json:"class"`
	Weight float64 `json:"weight,omitempty"`
	// Qubits sizes the circuit (class-specific default; for "qec" it is
	// the surface-code distance, odd ≥ 3).
	Qubits int `json:"qubits,omitempty"`
	// Depth is the layer count for "random" and "qaoa".
	Depth int `json:"depth,omitempty"`
	// Variants is the number of distinct circuit instances ops of this
	// entry draw from: 1 makes the class perfectly cache-hot, a large
	// value keeps the compile cache cold (default 4).
	Variants int `json:"variants,omitempty"`
	// Backend routes the ops ("perfect" when empty).
	Backend string `json:"backend,omitempty"`
	Shots   int    `json:"shots,omitempty"`
	// Engine optionally pins the qx engine per op.
	Engine string `json:"engine,omitempty"`
}

// SessionSpec shapes a bind-storm phase: Count sessions over a
// depth-Layers parametric QAOA ansatz on Qubits variables.
type SessionSpec struct {
	Count   int    `json:"count"`
	Layers  int    `json:"layers,omitempty"`
	Qubits  int    `json:"qubits,omitempty"`
	Backend string `json:"backend,omitempty"`
	Shots   int    `json:"shots,omitempty"`
}

// Event kinds.
const (
	// EventRecalibrate replaces a backend's calibration mid-run via
	// PUT /backends/{name}/calibration, with every error rate scaled by
	// drift_factor — the calibration-drift fault. The new device hash
	// rotates the full compile-cache keys, so the post-drift traffic
	// recompiles (prefix artefacts stay live).
	EventRecalibrate = "recalibrate"
)

// EventSpec is one mid-run fault injection.
type EventSpec struct {
	// AtMs is the injection time relative to run start (phase durations
	// accumulate).
	AtMs int    `json:"at_ms"`
	Kind string `json:"kind"`
	// Backend names the target backend (recalibrate).
	Backend string `json:"backend"`
	// DriftFactor scales every calibration error rate (default 2.0);
	// results are clamped below 1.
	DriftFactor float64 `json:"drift_factor,omitempty"`
}

// SLOSpec is the scenario's declarative service-level objective block,
// evaluated per seed and gated BLIS-style: every bound must hold in
// every seed (directional consistency — one contradicting seed fails
// the gate).
type SLOSpec struct {
	// P50Ms/P95Ms/P99Ms are client-observed submit→result latency
	// ceilings in milliseconds. P95Ms is required — a scenario without a
	// tail-latency objective gates nothing.
	P50Ms *float64 `json:"p50_ms,omitempty"`
	P95Ms *float64 `json:"p95_ms"`
	P99Ms *float64 `json:"p99_ms,omitempty"`
	// MaxErrorRate bounds failed jobs / completed jobs; required.
	MaxErrorRate *float64 `json:"max_error_rate"`
	// MaxRejectRate bounds back-pressure rejections (HTTP 429/503) /
	// submit attempts.
	MaxRejectRate *float64 `json:"max_reject_rate,omitempty"`
	// MinFullHitRate / MinPrefixHitRate floor the two compile-cache
	// levels' hit rates over the run (computed as deltas, so attached
	// services gate on this run's traffic only).
	MinFullHitRate   *float64 `json:"min_full_hit_rate,omitempty"`
	MinPrefixHitRate *float64 `json:"min_prefix_hit_rate,omitempty"`
	// MaxQueueDepth ceilings the maximum sampled service queue depth.
	MaxQueueDepth *int `json:"max_queue_depth,omitempty"`
	// Compare are cross-phase hypotheses in the BLIS A-vs-B form: the
	// "better" phase must beat the "worse" phase on the metric by at
	// least min_effect in every seed.
	Compare []CompareSpec `json:"compare,omitempty"`
}

// CompareSpec is one cross-phase hypothesis: metric(better) must undercut
// metric(worse) by min_effect (relative, default 0.20 — the BLIS >20%
// effect-size standard) in every seed.
type CompareSpec struct {
	// Metric is one of p50_ms, p95_ms, p99_ms, mean_ms.
	Metric string `json:"metric"`
	// Better and Worse name phases of the scenario.
	Better string `json:"better"`
	Worse  string `json:"worse"`
	// MinEffect is the required relative improvement
	// (worse−better)/worse; default 0.20.
	MinEffect float64 `json:"min_effect,omitempty"`
}

// classDefault describes one workload circuit class's default shape and
// the bounds validation enforces.
type classDefault struct {
	qubits, depth        int
	minQubits, maxQubits int
	note                 string
}

var classDefaults = map[string]classDefault{
	"qft":    {qubits: 5, minQubits: 2, maxQubits: 16},
	"ghz":    {qubits: 8, minQubits: 2, maxQubits: 20},
	"random": {qubits: 5, depth: 4, minQubits: 2, maxQubits: 12},
	"grover": {qubits: 3, minQubits: 2, maxQubits: 3, note: "the gate-level Grover builder supports 2 or 3 qubits"},
	"qaoa":   {qubits: 6, depth: 2, minQubits: 2, maxQubits: 12},
	"qec":    {qubits: 3, minQubits: 3, maxQubits: 7, note: "qubits is the surface-code distance, odd"},
	"genome": {qubits: 7, minQubits: 5, maxQubits: 16},
}

// ClassNames returns the workload circuit classes, sorted.
func ClassNames() []string {
	names := make([]string, 0, len(classDefaults))
	for name := range classDefaults {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// compareMetrics are the metrics CompareSpec may reference, sorted.
var compareMetrics = []string{"mean_ms", "p50_ms", "p95_ms", "p99_ms"}

// ParseScenario decodes and validates one scenario document. Unknown
// JSON fields are rejected (typos in scenario files must not silently
// generate the wrong workload), and every validation failure is a
// *FieldError carrying the exact field path.
func ParseScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("loadgen: scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s.normalize()
	return &s, nil
}

// LoadScenario reads and parses a scenario file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseScenario(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Validate checks the raw document, returning a *FieldError naming the
// first offending field by exact path.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fieldErrf("name", "missing required field")
	}
	for _, seed := range s.Seeds {
		if seed == 0 {
			return fieldErrf("seeds", "seed 0 is reserved for per-job derivation; use a non-zero seed")
		}
	}
	if sv := s.Service; sv != nil {
		if sv.Qubits < 0 || sv.Qubits > 20 {
			return fieldErrf("service.qubits", "must be between 0 (default) and 20, got %d", sv.Qubits)
		}
		if sv.Workers < 0 {
			return fieldErrf("service.workers", "must be non-negative, got %d", sv.Workers)
		}
		if sv.Queue < 0 {
			return fieldErrf("service.queue", "must be non-negative, got %d", sv.Queue)
		}
	}
	seenTenant := map[string]bool{}
	for i, t := range s.Tenants {
		path := fmt.Sprintf("tenants[%d]", i)
		if t.Name == "" {
			return fieldErrf(path+".name", "missing required field")
		}
		if seenTenant[t.Name] {
			return fieldErrf(path+".name", "duplicate tenant %q", t.Name)
		}
		seenTenant[t.Name] = true
		if t.Weight < 0 {
			return fieldErrf(path+".weight", "must be non-negative, got %v", t.Weight)
		}
	}
	if len(s.Phases) == 0 {
		return fieldErrf("phases", "scenario needs at least one phase")
	}
	seenPhase := map[string]bool{}
	for i, p := range s.Phases {
		if err := p.validate(fmt.Sprintf("phases[%d]", i), seenPhase); err != nil {
			return err
		}
	}
	total := 0
	for _, p := range s.Phases {
		total += p.DurationMs
	}
	for i, e := range s.Events {
		path := fmt.Sprintf("events[%d]", i)
		if e.Kind != EventRecalibrate {
			return fieldErrf(path+".kind", "unknown event kind %q (known: %s)", e.Kind, EventRecalibrate)
		}
		if e.Backend == "" {
			return fieldErrf(path+".backend", "missing required field")
		}
		if e.AtMs < 0 || e.AtMs >= total {
			return fieldErrf(path+".at_ms", "must fall inside the run (0..%dms), got %d", total, e.AtMs)
		}
		if e.DriftFactor < 0 {
			return fieldErrf(path+".drift_factor", "must be non-negative, got %v", e.DriftFactor)
		}
	}
	return s.SLO.validate("slo", seenPhase)
}

func (p *PhaseSpec) validate(path string, seen map[string]bool) error {
	if p.Name == "" {
		return fieldErrf(path+".name", "missing required field")
	}
	if seen[p.Name] {
		return fieldErrf(path+".name", "duplicate phase %q", p.Name)
	}
	seen[p.Name] = true
	if p.DurationMs <= 0 {
		return fieldErrf(path+".duration_ms", "must be positive, got %d", p.DurationMs)
	}
	switch p.Arrival.Process {
	case ArrivalPoisson:
		if p.Arrival.RatePerSec <= 0 {
			return fieldErrf(path+".arrival.rate_per_sec", "must be positive for the poisson process, got %v", p.Arrival.RatePerSec)
		}
	case ArrivalClosed:
		if p.Arrival.Clients <= 0 {
			return fieldErrf(path+".arrival.clients", "must be positive for the closed process, got %d", p.Arrival.Clients)
		}
		if p.Arrival.ThinkMs < 0 {
			return fieldErrf(path+".arrival.think_ms", "must be non-negative, got %v", p.Arrival.ThinkMs)
		}
	case "":
		return fieldErrf(path+".arrival.process", "missing required field (want %q or %q)", ArrivalPoisson, ArrivalClosed)
	default:
		return fieldErrf(path+".arrival.process", "unknown arrival process %q (want %q or %q)", p.Arrival.Process, ArrivalPoisson, ArrivalClosed)
	}
	if p.Sessions != nil {
		if len(p.Mix) > 0 {
			return fieldErrf(path+".mix", "session phases generate bind ops; mix must be empty")
		}
		ss := p.Sessions
		if ss.Count <= 0 {
			return fieldErrf(path+".sessions.count", "must be positive, got %d", ss.Count)
		}
		if ss.Layers < 0 {
			return fieldErrf(path+".sessions.layers", "must be non-negative, got %d", ss.Layers)
		}
		if ss.Qubits < 0 || (ss.Qubits > 0 && (ss.Qubits < 2 || ss.Qubits > 12)) {
			return fieldErrf(path+".sessions.qubits", "must be between 2 and 12, got %d", ss.Qubits)
		}
		if ss.Shots < 0 {
			return fieldErrf(path+".sessions.shots", "must be non-negative, got %d", ss.Shots)
		}
		return nil
	}
	if len(p.Mix) == 0 {
		return fieldErrf(path+".mix", "phase needs at least one mix entry (or a sessions block)")
	}
	for j, m := range p.Mix {
		if err := m.validate(fmt.Sprintf("%s.mix[%d]", path, j)); err != nil {
			return err
		}
	}
	return nil
}

func (m *MixSpec) validate(path string) error {
	def, ok := classDefaults[m.Class]
	if !ok {
		if m.Class == "" {
			return fieldErrf(path+".class", "missing required field (known classes: %s)", strings.Join(ClassNames(), ", "))
		}
		return fieldErrf(path+".class", "unknown circuit class %q (known: %s)", m.Class, strings.Join(ClassNames(), ", "))
	}
	if m.Weight < 0 {
		return fieldErrf(path+".weight", "must be non-negative, got %v", m.Weight)
	}
	if m.Qubits != 0 {
		if m.Qubits < def.minQubits || m.Qubits > def.maxQubits {
			msg := fmt.Sprintf("must be between %d and %d for class %q, got %d", def.minQubits, def.maxQubits, m.Class, m.Qubits)
			if def.note != "" {
				msg += " (" + def.note + ")"
			}
			return fieldErrf(path+".qubits", "%s", msg)
		}
		if m.Class == "qec" && m.Qubits%2 == 0 {
			return fieldErrf(path+".qubits", "surface-code distance must be odd, got %d", m.Qubits)
		}
	}
	if m.Depth < 0 {
		return fieldErrf(path+".depth", "must be non-negative, got %d", m.Depth)
	}
	if m.Variants < 0 {
		return fieldErrf(path+".variants", "must be non-negative, got %d", m.Variants)
	}
	if m.Shots < 0 {
		return fieldErrf(path+".shots", "must be non-negative, got %d", m.Shots)
	}
	return nil
}

func (o *SLOSpec) validate(path string, phases map[string]bool) error {
	if o.P95Ms == nil {
		return fieldErrf(path+".p95_ms", "missing required field (a scenario must declare a tail-latency objective)")
	}
	if o.MaxErrorRate == nil {
		return fieldErrf(path+".max_error_rate", "missing required field")
	}
	ceilings := []struct {
		name string
		v    *float64
	}{
		{"p50_ms", o.P50Ms}, {"p95_ms", o.P95Ms}, {"p99_ms", o.P99Ms},
	}
	for _, c := range ceilings {
		if c.v != nil && *c.v <= 0 {
			return fieldErrf(path+"."+c.name, "must be positive, got %v", *c.v)
		}
	}
	rates := []struct {
		name string
		v    *float64
	}{
		{"max_error_rate", o.MaxErrorRate}, {"max_reject_rate", o.MaxRejectRate},
		{"min_full_hit_rate", o.MinFullHitRate}, {"min_prefix_hit_rate", o.MinPrefixHitRate},
	}
	for _, r := range rates {
		if r.v != nil && (*r.v < 0 || *r.v > 1) {
			return fieldErrf(path+"."+r.name, "must be a rate in [0, 1], got %v", *r.v)
		}
	}
	if o.MaxQueueDepth != nil && *o.MaxQueueDepth < 0 {
		return fieldErrf(path+".max_queue_depth", "must be non-negative, got %d", *o.MaxQueueDepth)
	}
	for i, c := range o.Compare {
		cpath := fmt.Sprintf("%s.compare[%d]", path, i)
		known := false
		for _, m := range compareMetrics {
			if c.Metric == m {
				known = true
				break
			}
		}
		if !known {
			return fieldErrf(cpath+".metric", "unknown metric %q (known: %s)", c.Metric, strings.Join(compareMetrics, ", "))
		}
		if !phases[c.Better] {
			return fieldErrf(cpath+".better", "unknown phase %q", c.Better)
		}
		if !phases[c.Worse] {
			return fieldErrf(cpath+".worse", "unknown phase %q", c.Worse)
		}
		if c.Better == c.Worse {
			return fieldErrf(cpath+".worse", "better and worse name the same phase %q", c.Worse)
		}
		if c.MinEffect < 0 || c.MinEffect >= 1 {
			return fieldErrf(cpath+".min_effect", "must be in [0, 1), got %v", c.MinEffect)
		}
	}
	return nil
}

// normalize fills defaults into a validated scenario, so the generator
// and runner never re-derive them.
func (s *Scenario) normalize() {
	if len(s.Seeds) == 0 {
		// The BLIS standard seed triple.
		s.Seeds = []int64{42, 123, 456}
	}
	if s.Service == nil {
		s.Service = &ServiceSpec{}
	}
	sv := s.Service
	if sv.Qubits == 0 {
		sv.Qubits = 10
	}
	if sv.Workers == 0 {
		sv.Workers = 2
	}
	if sv.Queue == 0 {
		sv.Queue = 256
	}
	if sv.Cache == 0 {
		sv.Cache = 512
	}
	if sv.Shots == 0 {
		sv.Shots = 1024
	}
	if len(s.Tenants) == 0 {
		s.Tenants = []TenantSpec{{Name: "default", Weight: 1}}
	}
	for i := range s.Tenants {
		if s.Tenants[i].Weight == 0 {
			s.Tenants[i].Weight = 1
		}
	}
	for i := range s.Phases {
		p := &s.Phases[i]
		if ss := p.Sessions; ss != nil {
			if ss.Layers == 0 {
				ss.Layers = 2
			}
			if ss.Qubits == 0 {
				ss.Qubits = 6
			}
			if ss.Backend == "" {
				ss.Backend = "perfect"
			}
			if ss.Shots == 0 {
				ss.Shots = 64
			}
		}
		for j := range p.Mix {
			m := &p.Mix[j]
			def := classDefaults[m.Class]
			if m.Weight == 0 {
				m.Weight = 1
			}
			if m.Qubits == 0 {
				m.Qubits = def.qubits
			}
			if m.Depth == 0 {
				m.Depth = def.depth
			}
			if m.Variants == 0 {
				m.Variants = 4
			}
			if m.Backend == "" {
				m.Backend = "perfect"
			}
			if m.Shots == 0 {
				m.Shots = 64
			}
		}
	}
	for i := range s.Events {
		if s.Events[i].DriftFactor == 0 {
			s.Events[i].DriftFactor = 2
		}
	}
	for i := range s.SLO.Compare {
		if s.SLO.Compare[i].MinEffect == 0 {
			// The BLIS >20% effect-size standard.
			s.SLO.Compare[i].MinEffect = 0.20
		}
	}
}

// TotalDurationMs returns the sum of the phase durations.
func (s *Scenario) TotalDurationMs() int {
	total := 0
	for _, p := range s.Phases {
		total += p.DurationMs
	}
	return total
}
