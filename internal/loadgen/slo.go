package loadgen

import (
	"fmt"
)

// SLOResult is the outcome of evaluating one run against the scenario's
// SLO block.
type SLOResult struct {
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
}

// EvaluateSLO checks one run report against the scenario's SLO block
// and stores the result on the report. Bounds gate the run totals;
// compare hypotheses gate phase-vs-phase metrics.
func EvaluateSLO(s *Scenario, r *RunReport) {
	var v []string
	slo := &s.SLO
	t := &r.Totals
	check := func(cond bool, format string, args ...interface{}) {
		if cond {
			v = append(v, fmt.Sprintf(format, args...))
		}
	}
	if slo.P50Ms != nil {
		check(t.P50Ms > *slo.P50Ms, "p50_ms %.2f > ceiling %.2f", t.P50Ms, *slo.P50Ms)
	}
	if slo.P95Ms != nil {
		check(t.P95Ms > *slo.P95Ms, "p95_ms %.2f > ceiling %.2f", t.P95Ms, *slo.P95Ms)
	}
	if slo.P99Ms != nil {
		check(t.P99Ms > *slo.P99Ms, "p99_ms %.2f > ceiling %.2f", t.P99Ms, *slo.P99Ms)
	}
	if slo.MaxErrorRate != nil {
		check(t.ErrorRate > *slo.MaxErrorRate, "error_rate %.4f > max %.4f", t.ErrorRate, *slo.MaxErrorRate)
	}
	if slo.MaxRejectRate != nil {
		check(t.RejectRate > *slo.MaxRejectRate, "reject_rate %.4f > max %.4f", t.RejectRate, *slo.MaxRejectRate)
	}
	if slo.MinFullHitRate != nil {
		check(r.Server.FullHitRate < *slo.MinFullHitRate, "full_hit_rate %.4f < min %.4f", r.Server.FullHitRate, *slo.MinFullHitRate)
	}
	if slo.MinPrefixHitRate != nil {
		check(r.Server.PrefixHitRate < *slo.MinPrefixHitRate, "prefix_hit_rate %.4f < min %.4f", r.Server.PrefixHitRate, *slo.MinPrefixHitRate)
	}
	if slo.MaxQueueDepth != nil {
		check(r.Server.MaxQueueDepth > *slo.MaxQueueDepth, "max_queue_depth %d > ceiling %d", r.Server.MaxQueueDepth, *slo.MaxQueueDepth)
	}
	for _, c := range slo.Compare {
		better, okB := phaseMetric(r, c.Better, c.Metric)
		worse, okW := phaseMetric(r, c.Worse, c.Metric)
		if !okB || !okW {
			v = append(v, fmt.Sprintf("compare %s: phase metrics unavailable (%s/%s)", c.Metric, c.Better, c.Worse))
			continue
		}
		if worse <= 0 {
			v = append(v, fmt.Sprintf("compare %s: %s has zero %s; cannot establish effect", c.Metric, c.Worse, c.Metric))
			continue
		}
		effect := (worse - better) / worse
		check(effect < c.MinEffect,
			"compare %s: %s (%.2f) vs %s (%.2f) effect %.3f < min %.3f",
			c.Metric, c.Better, better, c.Worse, worse, effect, c.MinEffect)
	}
	r.SLO = SLOResult{Pass: len(v) == 0, Violations: v}
}

// phaseMetric extracts one compare metric from a named phase's block.
func phaseMetric(r *RunReport, phase, metric string) (float64, bool) {
	for _, p := range r.Phases {
		if p.Name != phase {
			continue
		}
		switch metric {
		case "p50_ms":
			return p.Metrics.P50Ms, true
		case "p95_ms":
			return p.Metrics.P95Ms, true
		case "p99_ms":
			return p.Metrics.P99Ms, true
		case "mean_ms":
			return p.Metrics.MeanMs, true
		}
	}
	return 0, false
}

// SeedSummary aggregates one totals metric across the gate's seeds.
type SeedSummary struct {
	Metric string  `json:"metric"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// GateReport is the multi-seed gate verdict for one scenario: BLIS-style
// directional consistency — the gate passes only if every seed passes
// every SLO check. One contradicting seed fails the gate.
type GateReport struct {
	Scenario string  `json:"scenario"`
	Seeds    []int64 `json:"seeds"`
	Pass     bool    `json:"pass"`
	// Violations are the per-seed failures, prefixed "seed N: ".
	Violations []string      `json:"violations,omitempty"`
	Summary    []SeedSummary `json:"summary"`
	Runs       []*RunReport  `json:"runs"`
}

// Gate evaluates each run's SLO and folds the per-seed verdicts into
// the directional-consistency gate verdict.
func Gate(s *Scenario, runs []*RunReport) *GateReport {
	g := &GateReport{Scenario: s.Name, Pass: true, Runs: runs}
	for _, r := range runs {
		g.Seeds = append(g.Seeds, r.Seed)
		// Re-evaluation is idempotent, so the gate never trusts a stale
		// (or zero-value) SLOResult on the run.
		EvaluateSLO(s, r)
		if !r.SLO.Pass {
			g.Pass = false
			for _, v := range r.SLO.Violations {
				g.Violations = append(g.Violations, fmt.Sprintf("seed %d: %s", r.Seed, v))
			}
		}
	}
	summarize := func(metric string, pick func(*RunReport) float64) {
		if len(runs) == 0 {
			return
		}
		sum := SeedSummary{Metric: metric}
		for i, r := range runs {
			v := pick(r)
			sum.Mean += v
			if i == 0 || v < sum.Min {
				sum.Min = v
			}
			if i == 0 || v > sum.Max {
				sum.Max = v
			}
		}
		sum.Mean /= float64(len(runs))
		g.Summary = append(g.Summary, sum)
	}
	summarize("p50_ms", func(r *RunReport) float64 { return r.Totals.P50Ms })
	summarize("p95_ms", func(r *RunReport) float64 { return r.Totals.P95Ms })
	summarize("p99_ms", func(r *RunReport) float64 { return r.Totals.P99Ms })
	summarize("error_rate", func(r *RunReport) float64 { return r.Totals.ErrorRate })
	summarize("reject_rate", func(r *RunReport) float64 { return r.Totals.RejectRate })
	summarize("throughput_per_sec", func(r *RunReport) float64 { return r.Totals.ThroughputPerSec })
	summarize("full_hit_rate", func(r *RunReport) float64 { return r.Server.FullHitRate })
	summarize("prefix_hit_rate", func(r *RunReport) float64 { return r.Server.PrefixHitRate })
	return g
}
