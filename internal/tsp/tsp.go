// Package tsp implements the Travelling Salesman use case of §3.3:
// weighted tour graphs, exact and heuristic classical solvers, and the
// QUBO encoding with N² binary variables x_{c,t} (city c visited at time
// t) that both the annealing and the gate-based (QAOA) accelerators
// consume.
package tsp

import (
	"fmt"
	"math"
)

// Graph is a complete weighted graph over N cities.
type Graph struct {
	N     int
	W     [][]float64
	Names []string
}

// NewGraph returns an N-city graph with zero weights.
func NewGraph(n int) *Graph {
	if n < 2 {
		panic("tsp: need at least 2 cities")
	}
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	return &Graph{N: n, W: w}
}

// SetWeight assigns the symmetric edge weight between cities a and b.
func (g *Graph) SetWeight(a, b int, w float64) {
	g.W[a][b] = w
	g.W[b][a] = w
}

// FromPoints builds a graph with scaled Euclidean distances, matching the
// paper's "TSP graph made from the scaled Euclidean distance".
func FromPoints(points [][2]float64, scale float64) *Graph {
	g := NewGraph(len(points))
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			dx := points[i][0] - points[j][0]
			dy := points[i][1] - points[j][1]
			g.SetWeight(i, j, scale*math.Hypot(dx, dy))
		}
	}
	return g
}

// TourCost sums the cyclic tour cost (returning to the start).
func (g *Graph) TourCost(tour []int) float64 {
	if len(tour) != g.N {
		panic(fmt.Sprintf("tsp: tour length %d != %d cities", len(tour), g.N))
	}
	var cost float64
	for i := range tour {
		cost += g.W[tour[i]][tour[(i+1)%len(tour)]]
	}
	return cost
}

// ValidTour reports whether tour visits every city exactly once.
func (g *Graph) ValidTour(tour []int) bool {
	if len(tour) != g.N {
		return false
	}
	seen := make([]bool, g.N)
	for _, c := range tour {
		if c < 0 || c >= g.N || seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}

// BruteForce enumerates all (N−1)! tours with city 0 fixed first and
// returns an optimal tour and its cost — the "enumerate all possible
// solutions" reference of Fig 9.
func (g *Graph) BruteForce() ([]int, float64) {
	rest := make([]int, 0, g.N-1)
	for c := 1; c < g.N; c++ {
		rest = append(rest, c)
	}
	best := append([]int{0}, rest...)
	bestCost := g.TourCost(best)
	tour := make([]int, g.N)
	tour[0] = 0
	var permute func(k int)
	current := append([]int(nil), rest...)
	permute = func(k int) {
		if k == len(current) {
			copy(tour[1:], current)
			if c := g.TourCost(tour); c < bestCost {
				bestCost = c
				best = append([]int(nil), tour...)
			}
			return
		}
		for i := k; i < len(current); i++ {
			current[k], current[i] = current[i], current[k]
			permute(k + 1)
			current[k], current[i] = current[i], current[k]
		}
	}
	permute(0)
	return best, bestCost
}

// NearestNeighbor returns the greedy tour from the given start city.
func (g *Graph) NearestNeighbor(start int) ([]int, float64) {
	visited := make([]bool, g.N)
	tour := make([]int, 0, g.N)
	cur := start
	visited[cur] = true
	tour = append(tour, cur)
	for len(tour) < g.N {
		next, nextW := -1, math.Inf(1)
		for c := 0; c < g.N; c++ {
			if !visited[c] && g.W[cur][c] < nextW {
				next, nextW = c, g.W[cur][c]
			}
		}
		visited[next] = true
		tour = append(tour, next)
		cur = next
	}
	return tour, g.TourCost(tour)
}

// TwoOpt improves a tour by 2-opt moves until no improvement remains.
func (g *Graph) TwoOpt(tour []int) ([]int, float64) {
	t := append([]int(nil), tour...)
	improved := true
	for improved {
		improved = false
		for i := 1; i < g.N-1; i++ {
			for j := i + 1; j < g.N; j++ {
				// Reverse segment [i, j] if it shortens the tour.
				a, b := t[i-1], t[i]
				c, d := t[j], t[(j+1)%g.N]
				delta := g.W[a][c] + g.W[b][d] - g.W[a][b] - g.W[c][d]
				if delta < -1e-12 {
					for l, r := i, j; l < r; l, r = l+1, r-1 {
						t[l], t[r] = t[r], t[l]
					}
					improved = true
				}
			}
		}
	}
	return t, g.TourCost(t)
}

// Netherlands4 returns the paper's Fig 9 instance: four Dutch cities with
// scaled Euclidean distances such that the optimal tour costs 1.42. The
// coordinates are approximate city positions (RD-like planar km); the
// scale is chosen so the enumerated optimum reproduces the figure's 1.42.
func Netherlands4() *Graph {
	// Amsterdam, Den Haag, Eindhoven, Groningen (planar approximations in
	// kilometres).
	points := [][2]float64{
		{121, 487}, // Amsterdam
		{80, 454},  // Den Haag
		{161, 383}, // Eindhoven
		{233, 582}, // Groningen
	}
	g := FromPoints(points, 1)
	_, raw := g.BruteForce()
	scaled := FromPoints(points, 1.42/raw)
	scaled.Names = []string{"Amsterdam", "Den Haag", "Eindhoven", "Groningen"}
	return scaled
}
