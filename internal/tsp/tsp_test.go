package tsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func square() *Graph {
	// Unit square: optimal tour = perimeter 4.
	return FromPoints([][2]float64{{0, 0}, {1, 0}, {1, 1}, {0, 1}}, 1)
}

func TestTourCost(t *testing.T) {
	g := square()
	if c := g.TourCost([]int{0, 1, 2, 3}); math.Abs(c-4) > 1e-12 {
		t.Errorf("perimeter = %v, want 4", c)
	}
	diag := g.TourCost([]int{0, 2, 1, 3})
	if diag <= 4 {
		t.Errorf("crossing tour %v should cost more than 4", diag)
	}
}

func TestBruteForceSquare(t *testing.T) {
	g := square()
	tour, cost := g.BruteForce()
	if !g.ValidTour(tour) {
		t.Fatalf("invalid tour %v", tour)
	}
	if math.Abs(cost-4) > 1e-12 {
		t.Errorf("optimal cost %v, want 4", cost)
	}
}

func TestNearestNeighborAndTwoOpt(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points := make([][2]float64, 9)
	for i := range points {
		points[i] = [2]float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	g := FromPoints(points, 1)
	_, optimal := g.BruteForce()
	nnTour, nnCost := g.NearestNeighbor(0)
	if !g.ValidTour(nnTour) {
		t.Fatal("NN produced invalid tour")
	}
	if nnCost < optimal-1e-9 {
		t.Errorf("NN better than optimal?!")
	}
	toTour, toCost := g.TwoOpt(nnTour)
	if !g.ValidTour(toTour) {
		t.Fatal("2-opt produced invalid tour")
	}
	if toCost > nnCost+1e-9 {
		t.Errorf("2-opt worsened: %v → %v", nnCost, toCost)
	}
	if toCost < optimal-1e-9 {
		t.Error("2-opt better than optimal?!")
	}
}

func TestNetherlands4ReproducesFig9(t *testing.T) {
	g := Netherlands4()
	tour, cost := g.BruteForce()
	if math.Abs(cost-1.42) > 1e-9 {
		t.Errorf("Fig 9 optimal cost = %v, want 1.42", cost)
	}
	if !g.ValidTour(tour) {
		t.Error("invalid optimal tour")
	}
	if len(g.Names) != 4 {
		t.Error("city names missing")
	}
}

func TestEncodeSize(t *testing.T) {
	g := Netherlands4()
	e := Encode(g, 0)
	if e.NumQubits() != 16 {
		t.Errorf("4 cities need %d qubits, want 16 (paper: N²)", e.NumQubits())
	}
}

func TestEncodeBruteForceFindsOptimum(t *testing.T) {
	g := Netherlands4()
	e := Encode(g, 0)
	x, energy := e.Q.BruteForce()
	tour, err := e.Decode(x)
	if err != nil {
		t.Fatalf("optimal assignment infeasible: %v", err)
	}
	cost := g.TourCost(tour)
	if math.Abs(cost-1.42) > 1e-9 {
		t.Errorf("QUBO optimum decodes to cost %v, want 1.42", cost)
	}
	// Energy + offset must equal the tour cost.
	if math.Abs(energy+e.ConstraintOffset()-cost) > 1e-9 {
		t.Errorf("energy bookkeeping: %v + %v != %v", energy, e.ConstraintOffset(), cost)
	}
}

func TestEncodeTourRoundTrip(t *testing.T) {
	g := square()
	e := Encode(g, 0)
	tour := []int{2, 0, 3, 1}
	x := e.EncodeTour(tour)
	back, err := e.Decode(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tour {
		if back[i] != tour[i] {
			t.Fatalf("round trip changed tour: %v → %v", tour, back)
		}
	}
}

func TestDecodeRejectsInfeasible(t *testing.T) {
	g := square()
	e := Encode(g, 0)
	x := make([]int, 16)
	if _, err := e.Decode(x); err == nil {
		t.Error("all-zero assignment accepted")
	}
	x = e.EncodeTour([]int{0, 1, 2, 3})
	x[e.Var(3, 0)] = 1 // two cities at slot 0
	if _, err := e.Decode(x); err == nil {
		t.Error("doubly-assigned slot accepted")
	}
	if _, err := e.Decode(make([]int, 3)); err == nil {
		t.Error("wrong length accepted")
	}
}

// Property: for random graphs and random tours, the QUBO energy of the
// encoded tour plus offset equals the tour cost, and infeasible
// assignments always cost more than the optimum.
func TestEncodingEnergyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(2)
		points := make([][2]float64, n)
		for i := range points {
			points[i] = [2]float64{rng.Float64(), rng.Float64()}
		}
		g := FromPoints(points, 1)
		e := Encode(g, 0)
		tour := rng.Perm(n)
		if math.Abs(e.TourEnergyCheck(tour)-g.TourCost(tour)) > 1e-9 {
			return false
		}
		// A random infeasible flip must not beat the constraint penalty.
		x := e.EncodeTour(tour)
		x[rng.Intn(len(x))] ^= 1
		if _, err := e.Decode(x); err == nil {
			return true // flip happened to keep feasibility (impossible here, but safe)
		}
		_, bestTourCost := g.BruteForce()
		return e.Q.Energy(x)+e.ConstraintOffset() > bestTourCost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMaxCitiesForQubits(t *testing.T) {
	cases := map[int]int{
		16:   4,
		81:   9,  // paper: 9 cities max on D-Wave 2000Q
		8192: 90, // paper: 90 cities on Fujitsu's 8192 fully-connected nodes
		3:    0,
		100:  10,
	}
	for qubits, want := range cases {
		if got := MaxCitiesForQubits(qubits); got != want {
			t.Errorf("MaxCitiesForQubits(%d) = %d, want %d", qubits, got, want)
		}
	}
}
