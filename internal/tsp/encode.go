package tsp

import (
	"fmt"
	"math"

	"repro/internal/qubo"
)

// Encoding holds a TSP→QUBO reduction. Variable x_{c,t} (index c*N+t)
// means city c is visited at time slot t; the paper's four interaction
// categories are (i) every node assigned, (ii) one time slot per city,
// (iii) one city per time slot, (iv) tour edge costs between consecutive
// slots. N cities need N² qubits — the quadratic growth of §3.3.
type Encoding struct {
	Graph   *Graph
	Q       *qubo.QUBO
	Penalty float64
}

// Var returns the QUBO variable index of x_{city,time}.
func (e *Encoding) Var(city, time int) int { return city*e.Graph.N + time }

// Encode builds the QUBO for the graph. penalty is the constraint weight
// A; it must exceed the largest possible tour-edge contribution, and
// defaults (when ≤ 0) to 2·N·max(w), which guarantees constraint
// violations are never energetically favourable.
func Encode(g *Graph, penalty float64) *Encoding {
	n := g.N
	if penalty <= 0 {
		maxW := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if g.W[i][j] > maxW {
					maxW = g.W[i][j]
				}
			}
		}
		penalty = 2 * float64(n) * maxW
		if penalty == 0 {
			penalty = 1
		}
	}
	q := qubo.New(n * n)
	e := &Encoding{Graph: g, Q: q, Penalty: penalty}

	// (i)+(ii) Each city appears in exactly one time slot:
	// A(1 − Σ_t x_{c,t})² = A(−Σ x + 2Σ_{t<t'} x x' ) + const.
	for c := 0; c < n; c++ {
		for t := 0; t < n; t++ {
			q.Add(e.Var(c, t), e.Var(c, t), -penalty)
			for t2 := t + 1; t2 < n; t2++ {
				q.Add(e.Var(c, t), e.Var(c, t2), 2*penalty)
			}
		}
	}
	// (iii) Each time slot holds exactly one city.
	for t := 0; t < n; t++ {
		for c := 0; c < n; c++ {
			q.Add(e.Var(c, t), e.Var(c, t), -penalty)
			for c2 := c + 1; c2 < n; c2++ {
				q.Add(e.Var(c, t), e.Var(c2, t), 2*penalty)
			}
		}
	}
	// (iv) Tour cost between consecutive time slots (cyclic).
	for t := 0; t < n; t++ {
		t2 := (t + 1) % n
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				q.Add(e.Var(a, t), e.Var(b, t2), g.W[a][b])
			}
		}
	}
	return e
}

// ConstraintOffset is the constant dropped by the quadratic expansion:
// adding it back makes feasible energies equal the pure tour cost.
func (e *Encoding) ConstraintOffset() float64 {
	// Each of the 2N constraints contributes A·1² from the (1 − Σx)²
	// expansion.
	return 2 * float64(e.Graph.N) * e.Penalty
}

// Decode extracts the tour from a QUBO assignment. It returns an error if
// the assignment violates the one-hot constraints.
func (e *Encoding) Decode(x []int) ([]int, error) {
	n := e.Graph.N
	if len(x) != n*n {
		return nil, fmt.Errorf("tsp: assignment length %d != %d", len(x), n*n)
	}
	tour := make([]int, n)
	for t := range tour {
		tour[t] = -1
	}
	for c := 0; c < n; c++ {
		count := 0
		for t := 0; t < n; t++ {
			if x[e.Var(c, t)] == 1 {
				count++
				if tour[t] != -1 {
					return nil, fmt.Errorf("tsp: time slot %d doubly assigned", t)
				}
				tour[t] = c
			}
		}
		if count != 1 {
			return nil, fmt.Errorf("tsp: city %d assigned %d times", c, count)
		}
	}
	for t, c := range tour {
		if c == -1 {
			return nil, fmt.Errorf("tsp: time slot %d unassigned", t)
		}
	}
	return tour, nil
}

// EncodeTour produces the feasible assignment corresponding to a tour.
func (e *Encoding) EncodeTour(tour []int) []int {
	n := e.Graph.N
	x := make([]int, n*n)
	for t, c := range tour {
		x[e.Var(c, t)] = 1
	}
	return x
}

// TourEnergyCheck verifies that for a feasible assignment the QUBO energy
// plus the constraint offset equals the tour cost (used by tests and the
// benchmark harness as a self-check).
func (e *Encoding) TourEnergyCheck(tour []int) float64 {
	x := e.EncodeTour(tour)
	return e.Q.Energy(x) + e.ConstraintOffset()
}

// NumQubits returns the QUBO size N².
func (e *Encoding) NumQubits() int { return e.Graph.N * e.Graph.N }

// MaxCitiesForQubits answers the paper's capacity question: the largest
// N with N² ≤ qubits (e.g. 9 for ~81-qubit effective capacity on the
// D-Wave 2000Q after embedding, 90 for Fujitsu's 8192 fully-connected
// nodes).
func MaxCitiesForQubits(qubits int) int {
	if qubits < 4 {
		return 0
	}
	return int(math.Sqrt(float64(qubits)))
}
