package quantum

import (
	"math"
	"math/cmplx"
)

// ReducedDensityMatrix returns the reduced density matrix of the listed
// qubits, tracing out the rest — the tool behind "fully entangled"
// claims: a maximally entangled subsystem has a maximally mixed
// reduction.
func (s *State) ReducedDensityMatrix(keep ...int) Matrix {
	k := len(keep)
	if k == 0 || k > s.n {
		panic("quantum: invalid subsystem")
	}
	inKeep := map[int]bool{}
	for _, q := range keep {
		s.checkQubit(q)
		if inKeep[q] {
			panic("quantum: duplicate qubit in subsystem")
		}
		inKeep[q] = true
	}
	var rest []int
	for q := 0; q < s.n; q++ {
		if !inKeep[q] {
			rest = append(rest, q)
		}
	}
	subDim := 1 << uint(k)
	envDim := 1 << uint(len(rest))
	rho := NewMatrix(subDim)
	// amplitude index for subsystem value a and environment value e.
	compose := func(a, e int) int {
		idx := 0
		for bit, q := range keep {
			if a&(1<<uint(bit)) != 0 {
				idx |= 1 << uint(q)
			}
		}
		for bit, q := range rest {
			if e&(1<<uint(bit)) != 0 {
				idx |= 1 << uint(q)
			}
		}
		return idx
	}
	for a := 0; a < subDim; a++ {
		for b := 0; b < subDim; b++ {
			var sum complex128
			for e := 0; e < envDim; e++ {
				sum += s.amps[compose(a, e)] * cmplx.Conj(s.amps[compose(b, e)])
			}
			rho.Set(a, b, sum)
		}
	}
	return rho
}

// EntanglementEntropy returns the von Neumann entropy (in bits) of the
// reduced state of the listed qubits: 0 for product states, k for a
// maximally entangled k-qubit subsystem.
func (s *State) EntanglementEntropy(keep ...int) float64 {
	rho := s.ReducedDensityMatrix(keep...)
	evs := hermitianEigenvalues(rho)
	var h float64
	for _, ev := range evs {
		if ev > 1e-12 {
			h -= ev * math.Log2(ev)
		}
	}
	return h
}

// hermitianEigenvalues computes the eigenvalues of a Hermitian matrix by
// the Jacobi rotation method (adequate for the small reduced density
// matrices this package produces).
func hermitianEigenvalues(m Matrix) []float64 {
	n := m.N
	// Work on a copy.
	a := NewMatrix(n)
	copy(a.Data, m.Data)
	for sweep := 0; sweep < 100; sweep++ {
		// Find the largest off-diagonal element.
		var off float64
		p, q := 0, 1
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if v := cmplx.Abs(a.At(i, j)); v > off {
					off = v
					p, q = i, j
				}
			}
		}
		if off < 1e-12 {
			break
		}
		// Complex Jacobi rotation zeroing a[p][q].
		apq := a.At(p, q)
		app := real(a.At(p, p))
		aqq := real(a.At(q, q))
		absApq := cmplx.Abs(apq)
		phase := apq / complex(absApq, 0)
		theta := 0.5 * math.Atan2(2*absApq, app-aqq)
		c := math.Cos(theta)
		sn := math.Sin(theta)
		// Build rotation columns: new_p = c·p + s·conj(phase)·q etc.
		for i := 0; i < n; i++ {
			aip := a.At(i, p)
			aiq := a.At(i, q)
			a.Set(i, p, aip*complex(c, 0)+aiq*phase*complex(sn, 0))
			a.Set(i, q, -aip*cmplx.Conj(phase)*complex(sn, 0)+aiq*complex(c, 0))
		}
		for j := 0; j < n; j++ {
			apj := a.At(p, j)
			aqj := a.At(q, j)
			a.Set(p, j, apj*complex(c, 0)+aqj*cmplx.Conj(phase)*complex(sn, 0))
			a.Set(q, j, -apj*phase*complex(sn, 0)+aqj*complex(c, 0))
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = real(a.At(i, i))
	}
	return out
}

// IsProductState reports whether the given qubit is unentangled with the
// rest of the register (its reduced state is pure within tol).
func (s *State) IsProductState(q int, tol float64) bool {
	rho := s.ReducedDensityMatrix(q)
	purity := real(rho.Mul(rho).Trace())
	return math.Abs(purity-1) < tol
}
