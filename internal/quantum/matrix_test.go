package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := RandomUnitary(4, rng)
	if !Identity(4).Mul(u).Equal(u, tol) {
		t.Error("I*U != U")
	}
	if !u.Mul(Identity(4)).Equal(u, tol) {
		t.Error("U*I != U")
	}
}

func TestStandardGatesUnitary(t *testing.T) {
	gates := map[string]Matrix{
		"I": I2, "X": X, "Y": Y, "Z": Z, "H": H,
		"S": S, "Sdag": Sdag, "T": T, "Tdag": Tdag, "SqrtX": SqrtX,
		"CNOT": CNOT, "CZ": CZ, "SWAP": SWAP, "ISWAP": ISWAP,
		"Toffoli": Toffoli, "Fredkin": Fredkin,
		"RX(0.3)": RX(0.3), "RY(1.1)": RY(1.1), "RZ(-0.7)": RZ(-0.7),
		"Phase(0.5)": Phase(0.5), "CPhase(0.9)": CPhase(0.9),
		"U3": U3(0.4, 1.2, -0.3), "CRK(3)": CRK(3),
	}
	for name, g := range gates {
		if !g.IsUnitary(tol) {
			t.Errorf("%s is not unitary", name)
		}
	}
}

func TestPauliAlgebra(t *testing.T) {
	// X² = Y² = Z² = I, XY = iZ.
	if !X.Mul(X).Equal(I2, tol) {
		t.Error("X^2 != I")
	}
	if !Y.Mul(Y).Equal(I2, tol) {
		t.Error("Y^2 != I")
	}
	if !Z.Mul(Z).Equal(I2, tol) {
		t.Error("Z^2 != I")
	}
	if !X.Mul(Y).Equal(Z.Scale(1i), tol) {
		t.Error("XY != iZ")
	}
}

func TestHadamardConjugation(t *testing.T) {
	// HXH = Z and HZH = X.
	if !H.Mul(X).Mul(H).Equal(Z, tol) {
		t.Error("HXH != Z")
	}
	if !H.Mul(Z).Mul(H).Equal(X, tol) {
		t.Error("HZH != X")
	}
}

func TestSqrtGates(t *testing.T) {
	if !S.Mul(S).Equal(Z, tol) {
		t.Error("S^2 != Z")
	}
	if !T.Mul(T).Equal(S, tol) {
		t.Error("T^2 != S")
	}
	if !SqrtX.Mul(SqrtX).Equal(X, tol) {
		t.Error("SqrtX^2 != X")
	}
	if !S.Mul(Sdag).Equal(I2, tol) {
		t.Error("S Sdag != I")
	}
	if !T.Mul(Tdag).Equal(I2, tol) {
		t.Error("T Tdag != I")
	}
}

func TestRotationComposition(t *testing.T) {
	// RZ(a)RZ(b) = RZ(a+b).
	a, b := 0.37, 1.91
	if !RZ(a).Mul(RZ(b)).Equal(RZ(a+b), tol) {
		t.Error("RZ(a)RZ(b) != RZ(a+b)")
	}
	// RX(2π) = -I (spinor double cover).
	if !RX(2*math.Pi).Equal(I2.Scale(-1), tol) {
		t.Error("RX(2π) != -I")
	}
	// RY(π) equals -iY.
	if !RY(math.Pi).Equal(Y.Scale(-1i), tol) {
		t.Error("RY(π) != -iY")
	}
}

func TestControlledLift(t *testing.T) {
	if !Controlled(X).Equal(CNOT, tol) {
		t.Errorf("Controlled(X) != CNOT:\n%v", Controlled(X))
	}
	if !Controlled(Z).Equal(CZ, tol) {
		t.Error("Controlled(Z) != CZ")
	}
}

func TestKronIdentity(t *testing.T) {
	got := I2.Kron(I2)
	if !got.Equal(Identity(4), tol) {
		t.Error("I ⊗ I != I4")
	}
}

func TestKronDims(t *testing.T) {
	k := X.Kron(Identity(4))
	if k.N != 8 {
		t.Fatalf("Kron dim = %d, want 8", k.N)
	}
	if !k.IsUnitary(tol) {
		t.Error("X ⊗ I4 not unitary")
	}
}

func TestDaggerInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := RandomUnitary(8, rng)
	if !u.Dagger().Dagger().Equal(u, tol) {
		t.Error("(U†)† != U")
	}
}

func TestEqualUpToPhase(t *testing.T) {
	u := RX(0.9)
	v := u.Scale(complex(math.Cos(1.3), math.Sin(1.3)))
	if !v.EqualUpToPhase(u, tol) {
		t.Error("phase-scaled matrix not recognised")
	}
	if v.Equal(u, tol) {
		t.Error("phase-scaled matrix should differ exactly")
	}
	if X.EqualUpToPhase(Z, tol) {
		t.Error("X ~ Z reported equal up to phase")
	}
}

func TestTrace(t *testing.T) {
	if Z.Trace() != 0 {
		t.Errorf("tr Z = %v, want 0", Z.Trace())
	}
	if Identity(8).Trace() != 8 {
		t.Errorf("tr I8 = %v, want 8", Identity(8).Trace())
	}
}

// Property: random unitaries are unitary and composition preserves
// unitarity.
func TestRandomUnitaryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)*2 // 2, 4 or 6
		u := RandomUnitary(n, r)
		v := RandomUnitary(n, r)
		return u.IsUnitary(1e-8) && u.Mul(v).IsUnitary(1e-8)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMatrixFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ragged rows")
		}
	}()
	MatrixFromRows([]complex128{1, 0}, []complex128{1})
}
