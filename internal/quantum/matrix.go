// Package quantum provides the linear-algebra substrate for the full-stack
// quantum accelerator: complex matrices, the standard gate set, state
// vectors with in-place gate application, and measurement.
//
// Convention: qubit 0 is the least-significant bit of a basis-state index.
// Basis state |q_{n-1} ... q_1 q_0> corresponds to index
// q_0 + 2*q_1 + ... + 2^{n-1}*q_{n-1}.
package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix is a dense square complex matrix in row-major order.
type Matrix struct {
	N    int          // dimension
	Data []complex128 // row-major, len N*N
}

// NewMatrix returns an N×N zero matrix.
func NewMatrix(n int) Matrix {
	return Matrix{N: n, Data: make([]complex128, n*n)}
}

// MatrixFromRows builds a matrix from row slices. All rows must have equal
// length, and the matrix must be square.
func MatrixFromRows(rows ...[]complex128) Matrix {
	n := len(rows)
	m := NewMatrix(n)
	for i, r := range rows {
		if len(r) != n {
			panic(fmt.Sprintf("quantum: row %d has %d entries, want %d", i, len(r), n))
		}
		copy(m.Data[i*n:(i+1)*n], r)
	}
	return m
}

// Identity returns the N×N identity matrix.
func Identity(n int) Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m Matrix) At(i, j int) complex128 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m Matrix) Set(i, j int, v complex128) { m.Data[i*m.N+j] = v }

// Mul returns the matrix product m·other.
func (m Matrix) Mul(other Matrix) Matrix {
	if m.N != other.N {
		panic("quantum: dimension mismatch in Mul")
	}
	n := m.N
	out := NewMatrix(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			a := m.Data[i*n+k]
			if a == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += a * other.Data[k*n+j]
			}
		}
	}
	return out
}

// Add returns the element-wise sum m+other.
func (m Matrix) Add(other Matrix) Matrix {
	if m.N != other.N {
		panic("quantum: dimension mismatch in Add")
	}
	out := NewMatrix(m.N)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + other.Data[i]
	}
	return out
}

// Scale returns s·m.
func (m Matrix) Scale(s complex128) Matrix {
	out := NewMatrix(m.N)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// Dagger returns the conjugate transpose of m.
func (m Matrix) Dagger() Matrix {
	n := m.N
	out := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*n+i] = cmplx.Conj(m.Data[i*n+j])
		}
	}
	return out
}

// Kron returns the Kronecker (tensor) product m ⊗ other.
func (m Matrix) Kron(other Matrix) Matrix {
	a, b := m.N, other.N
	out := NewMatrix(a * b)
	for i := 0; i < a; i++ {
		for j := 0; j < a; j++ {
			v := m.Data[i*a+j]
			if v == 0 {
				continue
			}
			for k := 0; k < b; k++ {
				for l := 0; l < b; l++ {
					out.Data[(i*b+k)*(a*b)+(j*b+l)] = v * other.Data[k*b+l]
				}
			}
		}
	}
	return out
}

// Equal reports whether m and other agree element-wise within tol.
func (m Matrix) Equal(other Matrix, tol float64) bool {
	if m.N != other.N {
		return false
	}
	for i := range m.Data {
		if cmplx.Abs(m.Data[i]-other.Data[i]) > tol {
			return false
		}
	}
	return true
}

// EqualUpToPhase reports whether m equals e^{iφ}·other for some global
// phase φ, within tol.
func (m Matrix) EqualUpToPhase(other Matrix, tol float64) bool {
	if m.N != other.N {
		return false
	}
	// Find the first element of other with significant magnitude and derive
	// the candidate phase from it.
	var phase complex128
	found := false
	for i := range other.Data {
		if cmplx.Abs(other.Data[i]) > tol {
			if cmplx.Abs(m.Data[i]) <= tol {
				return false
			}
			phase = m.Data[i] / other.Data[i]
			found = true
			break
		}
	}
	if !found {
		return m.Equal(other, tol)
	}
	if math.Abs(cmplx.Abs(phase)-1) > tol {
		return false
	}
	return m.Equal(other.Scale(phase), tol)
}

// IsUnitary reports whether m†·m = I within tol.
func (m Matrix) IsUnitary(tol float64) bool {
	return m.Dagger().Mul(m).Equal(Identity(m.N), tol)
}

// Trace returns the sum of diagonal elements.
func (m Matrix) Trace() complex128 {
	var t complex128
	for i := 0; i < m.N; i++ {
		t += m.Data[i*m.N+i]
	}
	return t
}

// String renders the matrix for debugging.
func (m Matrix) String() string {
	s := ""
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			s += fmt.Sprintf("%6.3f%+6.3fi ", real(m.At(i, j)), imag(m.At(i, j)))
		}
		s += "\n"
	}
	return s
}
