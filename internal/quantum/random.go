package quantum

import (
	"math"
	"math/cmplx"
	"math/rand"
)

// RandomState returns a Haar-random pure state on n qubits, drawn from the
// given PRNG (Gaussian amplitudes, normalised).
func RandomState(n int, rng *rand.Rand) *State {
	s := NewState(n)
	for i := range s.amps {
		s.amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	s.Normalize()
	return s
}

// RandomUnitary returns an approximately Haar-random n×n unitary generated
// by Gram–Schmidt orthonormalisation of a complex Gaussian matrix.
func RandomUnitary(n int, rng *rand.Rand) Matrix {
	m := NewMatrix(n)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	// Gram–Schmidt over columns.
	for c := 0; c < n; c++ {
		for prev := 0; prev < c; prev++ {
			var dot complex128
			for r := 0; r < n; r++ {
				dot += cmplx.Conj(m.Data[r*n+prev]) * m.Data[r*n+c]
			}
			for r := 0; r < n; r++ {
				m.Data[r*n+c] -= dot * m.Data[r*n+prev]
			}
		}
		var norm float64
		for r := 0; r < n; r++ {
			v := m.Data[r*n+c]
			norm += real(v)*real(v) + imag(v)*imag(v)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			// Degenerate draw; replace with a basis vector to keep the
			// matrix well formed.
			m.Data[c*n+c] = 1
			continue
		}
		inv := complex(1/norm, 0)
		for r := 0; r < n; r++ {
			m.Data[r*n+c] *= inv
		}
	}
	return m
}

// RandomPauli returns a uniformly random non-identity Pauli matrix
// (X, Y or Z).
func RandomPauli(rng *rand.Rand) Matrix {
	switch rng.Intn(3) {
	case 0:
		return X
	case 1:
		return Y
	default:
		return Z
	}
}
