package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewStateIsZeroKet(t *testing.T) {
	s := NewState(3)
	if s.Dim() != 8 {
		t.Fatalf("dim = %d, want 8", s.Dim())
	}
	if s.Amplitude(0) != 1 {
		t.Error("amp(|000>) != 1")
	}
	if math.Abs(s.Norm()-1) > tol {
		t.Error("norm != 1")
	}
}

func TestApplyOneHadamard(t *testing.T) {
	s := NewState(1)
	s.ApplyOne(H, 0)
	want := 1 / math.Sqrt2
	if math.Abs(real(s.Amplitude(0))-want) > tol || math.Abs(real(s.Amplitude(1))-want) > tol {
		t.Errorf("H|0> = %v", s)
	}
	s.ApplyOne(H, 0)
	if math.Abs(real(s.Amplitude(0))-1) > tol {
		t.Error("HH|0> != |0>")
	}
}

func TestApplyOneOnTargetedQubit(t *testing.T) {
	s := NewState(3)
	s.ApplyOne(X, 1)
	if s.Amplitude(2) != 1 { // |010> = index 2
		t.Errorf("X on qubit 1: state %v", s)
	}
}

func TestBellState(t *testing.T) {
	s := NewState(2)
	s.ApplyOne(H, 0)
	s.ApplyTwo(CNOT, 0, 1) // control qubit 0, target qubit 1
	want := 1 / math.Sqrt2
	if math.Abs(real(s.Amplitude(0))-want) > tol {
		t.Errorf("amp(00) = %v", s.Amplitude(0))
	}
	if math.Abs(real(s.Amplitude(3))-want) > tol {
		t.Errorf("amp(11) = %v", s.Amplitude(3))
	}
	if p := s.ProbOne(0); math.Abs(p-0.5) > tol {
		t.Errorf("P(q0=1) = %v, want 0.5", p)
	}
}

func TestGHZ(t *testing.T) {
	n := 5
	s := NewState(n)
	s.ApplyOne(H, 0)
	for q := 1; q < n; q++ {
		s.ApplyTwo(CNOT, q-1, q)
	}
	want := 1 / math.Sqrt2
	if math.Abs(real(s.Amplitude(0))-want) > tol {
		t.Error("GHZ |0...0> amplitude wrong")
	}
	if math.Abs(real(s.Amplitude(s.Dim()-1))-want) > tol {
		t.Error("GHZ |1...1> amplitude wrong")
	}
}

func TestApplyGeneralMatchesSpecialised(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := RandomUnitary(4, rng)
	a := RandomState(4, rand.New(rand.NewSource(5)))
	b := a.Clone()
	a.ApplyTwo(u, 1, 3)
	b.Apply(u, 1, 3)
	if f := a.Fidelity(b); math.Abs(f-1) > 1e-9 {
		t.Errorf("general vs specialised two-qubit apply fidelity %v", f)
	}
}

func TestApplyThreeQubitToffoli(t *testing.T) {
	s := NewState(3)
	s.ApplyOne(X, 0)
	s.ApplyOne(X, 1)
	s.Apply(Toffoli, 0, 1, 2)
	if s.Amplitude(7) != 1 {
		t.Errorf("Toffoli|011> should be |111>, got %v", s)
	}
	// Single control set: no flip.
	s2 := NewState(3)
	s2.ApplyOne(X, 0)
	s2.Apply(Toffoli, 0, 1, 2)
	if s2.Amplitude(1) != 1 {
		t.Errorf("Toffoli|001> should stay, got %v", s2)
	}
}

func TestControlledOneMatchesCNOT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := RandomState(3, rng)
	b := a.Clone()
	a.ApplyTwo(CNOT, 0, 2) // control 0, target 2
	b.ApplyControlledOne(X, 2, 0)
	if f := a.Fidelity(b); math.Abs(f-1) > 1e-9 {
		t.Errorf("controlled apply mismatch, fidelity %v", f)
	}
}

func TestMultiControlled(t *testing.T) {
	a := NewState(3)
	a.ApplyOne(X, 0)
	a.ApplyOne(X, 1)
	a.ApplyControlledOne(X, 2, 0, 1)
	if a.Amplitude(7) != 1 {
		t.Errorf("CCX via controls failed: %v", a)
	}
}

func TestProjectQubit(t *testing.T) {
	s := NewState(2)
	s.ApplyOne(H, 0)
	s.ApplyTwo(CNOT, 0, 1)
	s.ProjectQubit(0, 1)
	if math.Abs(real(s.Amplitude(3))-1) > tol {
		t.Errorf("projection of Bell onto q0=1 should give |11>, got %v", s)
	}
}

func TestMeasureQubitStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ones := 0
	const shots = 2000
	for i := 0; i < shots; i++ {
		s := NewState(1)
		s.ApplyOne(RY(2*math.Asin(math.Sqrt(0.3))), 0) // P(1)=0.3
		ones += s.MeasureQubit(0, rng)
	}
	p := float64(ones) / shots
	if math.Abs(p-0.3) > 0.05 {
		t.Errorf("measured P(1) = %v, want ≈0.3", p)
	}
}

func TestMeasureAllCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewState(3)
	s.ApplyOne(H, 0)
	s.ApplyTwo(CNOT, 0, 1)
	s.ApplyTwo(CNOT, 1, 2)
	idx := s.MeasureAll(rng)
	if idx != 0 && idx != 7 {
		t.Errorf("GHZ measurement gave %d, want 0 or 7", idx)
	}
	if s.Amplitude(idx) != 1 {
		t.Error("state not collapsed")
	}
}

func TestExpectationZ(t *testing.T) {
	s := NewState(1)
	if math.Abs(s.ExpectationZ(0)-1) > tol {
		t.Error("<Z> on |0> != 1")
	}
	s.ApplyOne(X, 0)
	if math.Abs(s.ExpectationZ(0)+1) > tol {
		t.Error("<Z> on |1> != -1")
	}
	s.ApplyOne(H, 0)
	if math.Abs(s.ExpectationZ(0)) > tol {
		t.Error("<Z> on |-> != 0")
	}
}

func TestPrepareBasisAndSample(t *testing.T) {
	s := NewState(4)
	s.PrepareBasis(9)
	rng := rand.New(rand.NewSource(1))
	if got := s.SampleIndex(rng); got != 9 {
		t.Errorf("sample of basis state = %d, want 9", got)
	}
}

func TestNewStateFromAmplitudes(t *testing.T) {
	s, err := NewStateFromAmplitudes([]complex128{0, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumQubits() != 2 || s.Amplitude(1) != 1 {
		t.Error("state from amplitudes wrong")
	}
	if _, err := NewStateFromAmplitudes(make([]complex128, 3)); err == nil {
		t.Error("expected error for non-power-of-two length")
	}
}

// Property: every unitary application preserves the norm.
func TestNormPreservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		s := RandomState(n, rng)
		u1 := RandomUnitary(2, rng)
		u2 := RandomUnitary(4, rng)
		s.ApplyOne(u1, rng.Intn(n))
		q0 := rng.Intn(n)
		q1 := (q0 + 1 + rng.Intn(n-1)) % n
		s.ApplyTwo(u2, q0, q1)
		return math.Abs(s.Norm()-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: applying U then U† restores the original state.
func TestUnitaryInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		s := RandomState(n, rng)
		orig := s.Clone()
		u := RandomUnitary(4, rng)
		q0, q1 := 0, 1
		s.ApplyTwo(u, q0, q1)
		s.ApplyTwo(u.Dagger(), q0, q1)
		return math.Abs(s.Fidelity(orig)-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := NewState(2)
	c := s.Clone()
	s.ApplyOne(X, 0)
	if c.Amplitude(0) != 1 {
		t.Error("clone mutated by original")
	}
}

func TestStateString(t *testing.T) {
	s := NewState(2)
	if got := s.String(); got == "" {
		t.Error("empty String()")
	}
}
