package quantum

import (
	"math"
	"math/rand"
	"testing"
)

func TestReducedDensityMatrixProduct(t *testing.T) {
	// |+>|0>: qubit 0's reduced state is pure |+><+|.
	s := NewState(2)
	s.ApplyOne(H, 0)
	rho := s.ReducedDensityMatrix(0)
	if math.Abs(real(rho.At(0, 0))-0.5) > tol || math.Abs(real(rho.At(0, 1))-0.5) > tol {
		t.Errorf("rho(|+>) wrong:\n%v", rho)
	}
	if math.Abs(real(rho.Trace())-1) > tol {
		t.Error("trace != 1")
	}
}

func TestReducedDensityMatrixBell(t *testing.T) {
	// Bell pair: each qubit's reduction is maximally mixed.
	s := NewState(2)
	s.ApplyOne(H, 0)
	s.ApplyTwo(CNOT, 0, 1)
	for q := 0; q < 2; q++ {
		rho := s.ReducedDensityMatrix(q)
		if math.Abs(real(rho.At(0, 0))-0.5) > tol || math.Abs(real(rho.At(1, 1))-0.5) > tol {
			t.Errorf("qubit %d not maximally mixed", q)
		}
		if math.Abs(real(rho.At(0, 1))) > tol {
			t.Errorf("qubit %d has coherences", q)
		}
	}
}

func TestEntanglementEntropy(t *testing.T) {
	// Product state: entropy 0.
	s := NewState(3)
	s.ApplyOne(H, 0)
	if h := s.EntanglementEntropy(0); math.Abs(h) > 1e-9 {
		t.Errorf("product state entropy %v", h)
	}
	// Bell: 1 bit.
	s.ApplyTwo(CNOT, 0, 1)
	if h := s.EntanglementEntropy(0); math.Abs(h-1) > 1e-9 {
		t.Errorf("Bell entropy %v, want 1", h)
	}
	// GHZ-3 is "fully entangled" in the bipartite sense: any single
	// qubit carries 1 bit.
	s.ApplyTwo(CNOT, 1, 2)
	for q := 0; q < 3; q++ {
		if h := s.EntanglementEntropy(q); math.Abs(h-1) > 1e-9 {
			t.Errorf("GHZ qubit %d entropy %v", q, h)
		}
	}
	// Two-qubit cut of GHZ-3 still has entropy 1 (GHZ is not maximally
	// entangled across larger cuts).
	if h := s.EntanglementEntropy(0, 1); math.Abs(h-1) > 1e-9 {
		t.Errorf("GHZ 2-cut entropy %v, want 1", h)
	}
}

func TestEntropyOfRandomHaarStateIsHigh(t *testing.T) {
	// A Haar-random 6-qubit state has near-maximal 1-qubit entanglement
	// entropy (Page's theorem: ≈1 − O(1/dim)).
	rng := rand.New(rand.NewSource(8))
	s := RandomState(6, rng)
	h := s.EntanglementEntropy(0)
	if h < 0.9 || h > 1.0+1e-9 {
		t.Errorf("Haar state entropy %v, want ≈1", h)
	}
}

func TestIsProductState(t *testing.T) {
	s := NewState(2)
	s.ApplyOne(H, 0)
	if !s.IsProductState(0, 1e-9) {
		t.Error("|+>|0> flagged entangled")
	}
	s.ApplyTwo(CNOT, 0, 1)
	if s.IsProductState(0, 1e-9) {
		t.Error("Bell flagged product")
	}
}

func TestHermitianEigenvalues(t *testing.T) {
	// diag(3, 1) rotated by H: eigenvalues must survive.
	m := MatrixFromRows(
		[]complex128{2, 1},
		[]complex128{1, 2},
	)
	evs := hermitianEigenvalues(m)
	// Eigenvalues of [[2,1],[1,2]] are 1 and 3.
	lo, hi := evs[0], evs[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if math.Abs(lo-1) > 1e-9 || math.Abs(hi-3) > 1e-9 {
		t.Errorf("eigenvalues %v, want [1 3]", evs)
	}
	// Complex Hermitian case: [[1, i],[-i, 1]] has eigenvalues 0 and 2.
	mc := MatrixFromRows(
		[]complex128{1, 1i},
		[]complex128{-1i, 1},
	)
	evs = hermitianEigenvalues(mc)
	lo, hi = evs[0], evs[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if math.Abs(lo) > 1e-9 || math.Abs(hi-2) > 1e-9 {
		t.Errorf("complex eigenvalues %v, want [0 2]", evs)
	}
}

func TestReducedDensityPanics(t *testing.T) {
	s := NewState(2)
	assert := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	assert(func() { s.ReducedDensityMatrix() })
	assert(func() { s.ReducedDensityMatrix(0, 0) })
	assert(func() { s.ReducedDensityMatrix(5) })
}
