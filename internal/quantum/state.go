package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// State is a pure quantum state over n qubits, stored as a dense vector of
// 2^n complex amplitudes. Qubit 0 is the least-significant bit of the
// basis-state index.
type State struct {
	n    int
	amps []complex128
	// workers is the gate-kernel parallelism (see SetParallelism); <=1
	// keeps every kernel serial.
	workers int
}

// NewState returns the n-qubit state initialised to |0...0>.
func NewState(n int) *State {
	if n < 0 || n > 30 {
		panic(fmt.Sprintf("quantum: unsupported qubit count %d", n))
	}
	s := &State{n: n, amps: make([]complex128, 1<<uint(n))}
	s.amps[0] = 1
	return s
}

// NewStateFromAmplitudes builds a state from an explicit amplitude vector,
// whose length must be a power of two. The vector is copied.
func NewStateFromAmplitudes(amps []complex128) (*State, error) {
	n := 0
	for (1 << uint(n)) < len(amps) {
		n++
	}
	if 1<<uint(n) != len(amps) {
		return nil, fmt.Errorf("quantum: amplitude vector length %d is not a power of two", len(amps))
	}
	s := &State{n: n, amps: make([]complex128, len(amps))}
	copy(s.amps, amps)
	return s, nil
}

// NumQubits returns the number of qubits in the state.
func (s *State) NumQubits() int { return s.n }

// Dim returns the Hilbert-space dimension 2^n.
func (s *State) Dim() int { return len(s.amps) }

// Amplitude returns the amplitude of basis state idx.
func (s *State) Amplitude(idx int) complex128 { return s.amps[idx] }

// SetAmplitude assigns the amplitude of basis state idx. The caller is
// responsible for renormalising.
func (s *State) SetAmplitude(idx int, v complex128) { s.amps[idx] = v }

// Amplitudes returns a copy of the amplitude vector.
func (s *State) Amplitudes() []complex128 {
	out := make([]complex128, len(s.amps))
	copy(out, s.amps)
	return out
}

// Clone returns a deep copy of the state (including its parallelism
// setting).
func (s *State) Clone() *State {
	c := &State{n: s.n, amps: make([]complex128, len(s.amps)), workers: s.workers}
	copy(c.amps, s.amps)
	return c
}

// Reset returns the state to |0...0>.
func (s *State) Reset() {
	for i := range s.amps {
		s.amps[i] = 0
	}
	s.amps[0] = 1
}

// PrepareBasis sets the state to the computational basis state idx.
func (s *State) PrepareBasis(idx int) {
	if idx < 0 || idx >= len(s.amps) {
		panic("quantum: basis index out of range")
	}
	for i := range s.amps {
		s.amps[i] = 0
	}
	s.amps[idx] = 1
}

// Norm returns the 2-norm of the amplitude vector (1 for a valid state).
func (s *State) Norm() float64 {
	var t float64
	for _, a := range s.amps {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(t)
}

// Normalize rescales the state to unit norm. It is a no-op on the zero
// vector.
func (s *State) Normalize() {
	n := s.Norm()
	if n == 0 {
		return
	}
	inv := complex(1/n, 0)
	for i := range s.amps {
		s.amps[i] *= inv
	}
}

// InnerProduct returns <s|t>.
func (s *State) InnerProduct(t *State) complex128 {
	if s.n != t.n {
		panic("quantum: qubit count mismatch in InnerProduct")
	}
	var sum complex128
	for i, a := range s.amps {
		sum += cmplx.Conj(a) * t.amps[i]
	}
	return sum
}

// Fidelity returns |<s|t>|^2.
func (s *State) Fidelity(t *State) float64 {
	ip := s.InnerProduct(t)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// ApplyOne applies the 2×2 unitary u to qubit q in place. Amplitude pairs
// are independent, so the loop fans out across goroutines when kernel
// parallelism is enabled (see SetParallelism).
func (s *State) ApplyOne(u Matrix, q int) {
	if u.N != 2 {
		panic("quantum: ApplyOne requires a 2x2 matrix")
	}
	s.checkQubit(q)
	bit := 1 << uint(q)
	low := bit - 1
	u00, u01 := u.Data[0], u.Data[1]
	u10, u11 := u.Data[2], u.Data[3]
	s.parRange(len(s.amps)/2, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			i0 := expand1(p, low)
			i1 := i0 | bit
			a0, a1 := s.amps[i0], s.amps[i1]
			s.amps[i0] = u00*a0 + u01*a1
			s.amps[i1] = u10*a0 + u11*a1
		}
	})
}

// ApplyTwo applies the 4×4 unitary u to the qubit pair (q0, q1), where q0
// indexes bit 0 of the gate's 2-bit basis and q1 bit 1 (basis order
// |q1 q0>).
func (s *State) ApplyTwo(u Matrix, q0, q1 int) {
	if u.N != 4 {
		panic("quantum: ApplyTwo requires a 4x4 matrix")
	}
	s.checkQubit(q0)
	s.checkQubit(q1)
	if q0 == q1 {
		panic("quantum: ApplyTwo requires distinct qubits")
	}
	b0 := 1 << uint(q0)
	b1 := 1 << uint(q1)
	lowA, lowB := pairMasks(q0, q1)
	s.parRange(len(s.amps)/4, func(lo, hi int) {
		var idx [4]int
		var in, out [4]complex128
		for p := lo; p < hi; p++ {
			i := expand2(p, lowA, lowB)
			idx[0] = i
			idx[1] = i | b0
			idx[2] = i | b1
			idx[3] = i | b0 | b1
			for k := 0; k < 4; k++ {
				in[k] = s.amps[idx[k]]
			}
			for r := 0; r < 4; r++ {
				var acc complex128
				for c := 0; c < 4; c++ {
					acc += u.Data[r*4+c] * in[c]
				}
				out[r] = acc
			}
			for k := 0; k < 4; k++ {
				s.amps[idx[k]] = out[k]
			}
		}
	})
}

// Apply applies a k-qubit unitary u to the listed qubits; qubits[0] maps to
// bit 0 of the gate's k-bit basis index, qubits[1] to bit 1, and so on.
func (s *State) Apply(u Matrix, qubits ...int) {
	k := len(qubits)
	switch k {
	case 1:
		s.ApplyOne(u, qubits[0])
		return
	case 2:
		s.ApplyTwo(u, qubits[0], qubits[1])
		return
	}
	if u.N != 1<<uint(k) {
		panic(fmt.Sprintf("quantum: matrix dim %d does not match %d qubits", u.N, k))
	}
	seen := map[int]bool{}
	mask := 0
	for _, q := range qubits {
		s.checkQubit(q)
		if seen[q] {
			panic("quantum: duplicate qubit in Apply")
		}
		seen[q] = true
		mask |= 1 << uint(q)
	}
	sub := 1 << uint(k)
	lows := maskLows(mask, s.n)
	// Enumerate the 2^(n-k) amplitude groups compactly so every chunk
	// carries equal work regardless of which qubits the gate acts on.
	s.parRange(len(s.amps)>>uint(k), func(lo, hi int) {
		idx := make([]int, sub)
		in := make([]complex128, sub)
		for p := lo; p < hi; p++ {
			i := expandN(p, lows)
			for g := 0; g < sub; g++ {
				j := i
				for b := 0; b < k; b++ {
					if g&(1<<uint(b)) != 0 {
						j |= 1 << uint(qubits[b])
					}
				}
				idx[g] = j
				in[g] = s.amps[j]
			}
			for r := 0; r < sub; r++ {
				var acc complex128
				for c := 0; c < sub; c++ {
					acc += u.Data[r*sub+c] * in[c]
				}
				s.amps[idx[r]] = acc
			}
		}
	})
}

// ApplyControlledOne applies u to target when all control qubits are 1.
func (s *State) ApplyControlledOne(u Matrix, target int, controls ...int) {
	if u.N != 2 {
		panic("quantum: ApplyControlledOne requires a 2x2 matrix")
	}
	s.checkQubit(target)
	cmask := 0
	for _, c := range controls {
		s.checkQubit(c)
		if c == target {
			panic("quantum: control equals target")
		}
		cmask |= 1 << uint(c)
	}
	bit := 1 << uint(target)
	u00, u01 := u.Data[0], u.Data[1]
	u10, u11 := u.Data[2], u.Data[3]
	// Enumerate only the active groups — control bits set, target clear —
	// compactly, so work stays balanced across parallel chunks and the
	// serial path never scans inactive indices.
	lows := maskLows(cmask|bit, s.n)
	s.parRange(len(s.amps)>>uint(len(lows)), func(lo, hi int) {
		for p := lo; p < hi; p++ {
			i0 := expandN(p, lows) | cmask
			i1 := i0 | bit
			a0, a1 := s.amps[i0], s.amps[i1]
			s.amps[i0] = u00*a0 + u01*a1
			s.amps[i1] = u10*a0 + u11*a1
		}
	})
}

// ProbOne returns the probability that measuring qubit q yields 1.
func (s *State) ProbOne(q int) float64 {
	s.checkQubit(q)
	bit := 1 << uint(q)
	var p float64
	for i, a := range s.amps {
		if i&bit != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// Probabilities returns |amp|^2 for every basis state.
func (s *State) Probabilities() []float64 {
	out := make([]float64, len(s.amps))
	for i, a := range s.amps {
		out[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return out
}

// MeasureQubit performs a projective Z-measurement of qubit q, collapsing
// the state, and returns the outcome (0 or 1).
func (s *State) MeasureQubit(q int, rng *rand.Rand) int {
	p1 := s.ProbOne(q)
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	s.ProjectQubit(q, outcome)
	return outcome
}

// ProjectQubit projects qubit q onto the given outcome and renormalises.
// Zeroing the non-matching amplitudes and accumulating the surviving norm
// happen in one pass — this sits inside MeasureQubit, which runs in every
// noisy shot loop. A zero-probability outcome leaves the zero vector, as
// Normalize would.
func (s *State) ProjectQubit(q, outcome int) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	want := 0
	if outcome == 1 {
		want = bit
	}
	var t float64
	for i := range s.amps {
		if i&bit != want {
			s.amps[i] = 0
			continue
		}
		a := s.amps[i]
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	if t == 0 {
		return
	}
	inv := complex(1/math.Sqrt(t), 0)
	low := bit - 1
	for p := 0; p < len(s.amps)/2; p++ {
		s.amps[expand1(p, low)|want] *= inv
	}
}

// SampleIndex draws a basis-state index from the measurement distribution
// without collapsing the state.
func (s *State) SampleIndex(rng *rand.Rand) int {
	r := rng.Float64()
	var acc float64
	for i, a := range s.amps {
		acc += real(a)*real(a) + imag(a)*imag(a)
		if r < acc {
			return i
		}
	}
	return len(s.amps) - 1
}

// MeasureAll measures every qubit, collapsing the state to one basis state,
// and returns that basis index.
func (s *State) MeasureAll(rng *rand.Rand) int {
	idx := s.SampleIndex(rng)
	s.PrepareBasis(idx)
	return idx
}

// ExpectationZ returns <Z> on qubit q: P(0) − P(1).
func (s *State) ExpectationZ(q int) float64 {
	return 1 - 2*s.ProbOne(q)
}

func (s *State) checkQubit(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("quantum: qubit %d out of range [0,%d)", q, s.n))
	}
}

// String renders the non-negligible amplitudes in ket notation.
func (s *State) String() string {
	out := ""
	for i, a := range s.amps {
		if cmplx.Abs(a) < 1e-9 {
			continue
		}
		if out != "" {
			out += " + "
		}
		out += fmt.Sprintf("(%.4f%+.4fi)|%0*b>", real(a), imag(a), s.n, i)
	}
	if out == "" {
		out = "0"
	}
	return out
}
