package quantum

import (
	"math"
	"math/cmplx"
)

// Standard single-qubit gate matrices. These are package-level values; they
// must be treated as read-only.
var (
	// I2 is the single-qubit identity.
	I2 = Identity(2)
	// X is the Pauli-X (NOT) gate.
	X = MatrixFromRows(
		[]complex128{0, 1},
		[]complex128{1, 0},
	)
	// Y is the Pauli-Y gate.
	Y = MatrixFromRows(
		[]complex128{0, -1i},
		[]complex128{1i, 0},
	)
	// Z is the Pauli-Z gate.
	Z = MatrixFromRows(
		[]complex128{1, 0},
		[]complex128{0, -1},
	)
	// H is the Hadamard gate.
	H = MatrixFromRows(
		[]complex128{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		[]complex128{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	)
	// S is the phase gate (sqrt of Z).
	S = MatrixFromRows(
		[]complex128{1, 0},
		[]complex128{0, 1i},
	)
	// Sdag is the inverse phase gate.
	Sdag = MatrixFromRows(
		[]complex128{1, 0},
		[]complex128{0, -1i},
	)
	// T is the π/8 gate (sqrt of S).
	T = MatrixFromRows(
		[]complex128{1, 0},
		[]complex128{0, cmplx.Exp(1i * math.Pi / 4)},
	)
	// Tdag is the inverse T gate.
	Tdag = MatrixFromRows(
		[]complex128{1, 0},
		[]complex128{0, cmplx.Exp(-1i * math.Pi / 4)},
	)
	// SqrtX is the square root of X (X90 pulse), native on transmons.
	SqrtX = MatrixFromRows(
		[]complex128{0.5 + 0.5i, 0.5 - 0.5i},
		[]complex128{0.5 - 0.5i, 0.5 + 0.5i},
	)
)

// Two-qubit gate matrices using the convention that the FIRST operand qubit
// is the low-order bit of the 2-bit index (basis order |q1 q0>).
var (
	// CNOT with qubit operand order (control, target): control is bit 0.
	CNOT = MatrixFromRows(
		[]complex128{1, 0, 0, 0},
		[]complex128{0, 0, 0, 1},
		[]complex128{0, 0, 1, 0},
		[]complex128{0, 1, 0, 0},
	)
	// CZ is the controlled-Z gate (symmetric in its operands).
	CZ = MatrixFromRows(
		[]complex128{1, 0, 0, 0},
		[]complex128{0, 1, 0, 0},
		[]complex128{0, 0, 1, 0},
		[]complex128{0, 0, 0, -1},
	)
	// SWAP exchanges two qubits.
	SWAP = MatrixFromRows(
		[]complex128{1, 0, 0, 0},
		[]complex128{0, 0, 1, 0},
		[]complex128{0, 1, 0, 0},
		[]complex128{0, 0, 0, 1},
	)
	// ISWAP exchanges two qubits and adds an i phase on the swapped states.
	ISWAP = MatrixFromRows(
		[]complex128{1, 0, 0, 0},
		[]complex128{0, 0, 1i, 0},
		[]complex128{0, 1i, 0, 0},
		[]complex128{0, 0, 0, 1},
	)
)

// RX returns the rotation exp(-iθX/2).
func RX(theta float64) Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return MatrixFromRows(
		[]complex128{c, s},
		[]complex128{s, c},
	)
}

// RY returns the rotation exp(-iθY/2).
func RY(theta float64) Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return MatrixFromRows(
		[]complex128{c, -s},
		[]complex128{s, c},
	)
}

// RZ returns the rotation exp(-iθZ/2).
func RZ(theta float64) Matrix {
	return MatrixFromRows(
		[]complex128{cmplx.Exp(complex(0, -theta/2)), 0},
		[]complex128{0, cmplx.Exp(complex(0, theta/2))},
	)
}

// Phase returns diag(1, e^{iθ}), the phase-shift gate.
func Phase(theta float64) Matrix {
	return MatrixFromRows(
		[]complex128{1, 0},
		[]complex128{0, cmplx.Exp(complex(0, theta))},
	)
}

// U3 returns the generic single-qubit rotation with Euler angles
// (θ, φ, λ), following the OpenQASM u3 convention.
func U3(theta, phi, lambda float64) Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return MatrixFromRows(
		[]complex128{c, -cmplx.Exp(complex(0, lambda)) * s},
		[]complex128{cmplx.Exp(complex(0, phi)) * s, cmplx.Exp(complex(0, phi+lambda)) * c},
	)
}

// CPhase returns the controlled phase gate diag(1,1,1,e^{iθ}).
func CPhase(theta float64) Matrix {
	m := Identity(4)
	m.Set(3, 3, cmplx.Exp(complex(0, theta)))
	return m
}

// CRK returns the controlled phase gate with angle 2π/2^k, as used in the
// quantum Fourier transform.
func CRK(k int) Matrix {
	return CPhase(2 * math.Pi / math.Pow(2, float64(k)))
}

// Controlled lifts a single-qubit gate u to its controlled two-qubit
// version with the control on bit 0 and the target on bit 1.
func Controlled(u Matrix) Matrix {
	if u.N != 2 {
		panic("quantum: Controlled requires a 2x2 matrix")
	}
	m := Identity(4)
	// Basis order |q1 q0> with control = q0: the control-set states are
	// indices 1 (q1=0,q0=1) and 3 (q1=1,q0=1); target is q1.
	m.Set(1, 1, u.At(0, 0))
	m.Set(1, 3, u.At(0, 1))
	m.Set(3, 1, u.At(1, 0))
	m.Set(3, 3, u.At(1, 1))
	return m
}

// Toffoli is the doubly-controlled NOT on 3 qubits; controls are bits 0
// and 1, target is bit 2.
var Toffoli = toffoli()

func toffoli() Matrix {
	m := Identity(8)
	// Swap amplitudes of |011> (3) and |111> (7): both controls set.
	m.Set(3, 3, 0)
	m.Set(7, 7, 0)
	m.Set(3, 7, 1)
	m.Set(7, 3, 1)
	return m
}

// Fredkin is the controlled-SWAP on 3 qubits; control is bit 0, the
// swapped pair are bits 1 and 2.
var Fredkin = fredkin()

func fredkin() Matrix {
	m := Identity(8)
	// With control q0=1, swap q1 and q2: indices 3 (011) and 5 (101).
	m.Set(3, 3, 0)
	m.Set(5, 5, 0)
	m.Set(3, 5, 1)
	m.Set(5, 3, 1)
	return m
}
