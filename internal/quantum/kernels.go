package quantum

import (
	"runtime"
	"sync"
)

// Specialized gate kernels. The generic ApplyOne/ApplyTwo paths multiply a
// dense 2×2/4×4 matrix into every amplitude group; the kernels below
// exploit gate structure instead — permutations (X, CNOT, SWAP) move
// amplitudes without arithmetic, diagonal gates (Z, S, T, RZ, phase,
// CPhase, CZ) multiply only the amplitudes they touch. All kernels produce
// measurement probabilities bit-identical to the generic path (the only
// representable difference is the sign of zero amplitudes), which is what
// lets the optimized QX engine substitute them freely while keeping seeded
// shot counts identical to the reference engine.

// parallelThreshold is the amplitude count from which kernels fan work out
// across goroutines when parallelism is enabled. Below it the
// goroutine-dispatch overhead dominates the arithmetic.
const parallelThreshold = 1 << 13

// SetParallelism sets the number of goroutines gate kernels may use on
// this state. workers <= 1 keeps every kernel serial (the default);
// workers <= 0 is reset to 1. Parallel application is bit-identical to
// serial: each amplitude group is read and written by exactly one
// goroutine, so only the iteration order changes — never a result.
func (s *State) SetParallelism(workers int) {
	if workers < 1 {
		workers = 1
	}
	s.workers = workers
}

// Parallelism returns the kernel worker count (1 = serial).
func (s *State) Parallelism() int {
	if s.workers < 1 {
		return 1
	}
	return s.workers
}

// AutoParallelism enables kernel parallelism sized to the machine.
func (s *State) AutoParallelism() {
	s.SetParallelism(runtime.GOMAXPROCS(0))
}

// parRange runs body over the index range [0, n) split into contiguous
// chunks, one goroutine per chunk, when parallelism is enabled and the
// range is large enough; otherwise it runs body inline. Chunks are
// disjoint, so bodies need no synchronisation beyond the final join.
func (s *State) parRange(n int, body func(lo, hi int)) {
	w := s.workers
	if w <= 1 || n < parallelThreshold {
		body(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// expand1 maps a compact pair index p (the state index with qubit bit
// removed) back to the full index with a zero at that bit. low = bit-1.
func expand1(p, low int) int {
	return (p&^low)<<1 | p&low
}

// expand2 inserts zeros at two bit positions; lowA must belong to the
// lower of the two bits so the second insertion lands past the first.
func expand2(p, lowA, lowB int) int {
	p = (p&^lowA)<<1 | p&lowA
	return (p&^lowB)<<1 | p&lowB
}

// maskLows returns the insertion masks for every set bit of mask, in
// ascending order, for use with expandN.
func maskLows(mask, n int) []int {
	lows := make([]int, 0, n)
	for q := 0; q < n; q++ {
		if bit := 1 << uint(q); mask&bit != 0 {
			lows = append(lows, bit-1)
		}
	}
	return lows
}

// expandN inserts a zero bit at each position named by lows (ascending
// insertion masks from maskLows), mapping a compact group index to the
// group's lowest full state index.
func expandN(p int, lows []int) int {
	for _, low := range lows {
		p = (p&^low)<<1 | p&low
	}
	return p
}

// pairMasks returns the sorted insertion masks for a two-qubit kernel.
func pairMasks(q0, q1 int) (lowA, lowB int) {
	a, b := 1<<uint(q0), 1<<uint(q1)
	if a > b {
		a, b = b, a
	}
	return a - 1, b - 1
}

// ApplyX applies the Pauli-X (NOT) gate to qubit q by swapping amplitude
// pairs — a pure permutation, no arithmetic.
func (s *State) ApplyX(q int) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	low := bit - 1
	s.parRange(len(s.amps)/2, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			i0 := expand1(p, low)
			i1 := i0 | bit
			s.amps[i0], s.amps[i1] = s.amps[i1], s.amps[i0]
		}
	})
}

// ApplyY applies the Pauli-Y gate to qubit q: |0> ↦ i|1>, |1> ↦ -i|0>.
func (s *State) ApplyY(q int) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	low := bit - 1
	const u01, u10 = complex(0, -1), complex(0, 1)
	s.parRange(len(s.amps)/2, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			i0 := expand1(p, low)
			i1 := i0 | bit
			a0, a1 := s.amps[i0], s.amps[i1]
			s.amps[i0] = u01 * a1
			s.amps[i1] = u10 * a0
		}
	})
}

// ApplyDiag applies the diagonal single-qubit gate diag(d0, d1) to qubit
// q. This one kernel covers Z, S, S†, T, T†, RZ and phase gates.
func (s *State) ApplyDiag(q int, d0, d1 complex128) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	low := bit - 1
	if d0 == 1 {
		// Common case (Z, S, T, phase): only the bit-set half is touched.
		s.parRange(len(s.amps)/2, func(lo, hi int) {
			for p := lo; p < hi; p++ {
				s.amps[expand1(p, low)|bit] *= d1
			}
		})
		return
	}
	s.parRange(len(s.amps)/2, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			i0 := expand1(p, low)
			s.amps[i0] *= d0
			s.amps[i0|bit] *= d1
		}
	})
}

// ApplyCNOT applies a controlled-NOT with the given control and target:
// amplitude pairs with the control bit set are swapped across the target
// bit.
func (s *State) ApplyCNOT(control, target int) {
	s.checkQubit(control)
	s.checkQubit(target)
	if control == target {
		panic("quantum: ApplyCNOT requires distinct qubits")
	}
	cb, tb := 1<<uint(control), 1<<uint(target)
	lowA, lowB := pairMasks(control, target)
	s.parRange(len(s.amps)/4, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			i0 := expand2(p, lowA, lowB) | cb
			i1 := i0 | tb
			s.amps[i0], s.amps[i1] = s.amps[i1], s.amps[i0]
		}
	})
}

// ApplyCZ applies a controlled-Z to the pair: amplitudes with both bits
// set are negated.
func (s *State) ApplyCZ(a, b int) {
	s.ApplyCPhase(a, b, -1)
}

// ApplyCPhase applies the controlled phase gate diag(1,1,1,phase):
// amplitudes with both bits set are multiplied by phase.
func (s *State) ApplyCPhase(a, b int, phase complex128) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		panic("quantum: ApplyCPhase requires distinct qubits")
	}
	both := 1<<uint(a) | 1<<uint(b)
	lowA, lowB := pairMasks(a, b)
	s.parRange(len(s.amps)/4, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			s.amps[expand2(p, lowA, lowB)|both] *= phase
		}
	})
}

// ApplySWAP exchanges qubits a and b by swapping the amplitudes whose
// bits differ.
func (s *State) ApplySWAP(a, b int) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		panic("quantum: ApplySWAP requires distinct qubits")
	}
	ab, bb := 1<<uint(a), 1<<uint(b)
	lowA, lowB := pairMasks(a, b)
	s.parRange(len(s.amps)/4, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			base := expand2(p, lowA, lowB)
			i0, i1 := base|ab, base|bb
			s.amps[i0], s.amps[i1] = s.amps[i1], s.amps[i0]
		}
	})
}
