package quantum

import (
	"math"
	"math/rand"
	"testing"
)

// randomState returns a normalised random n-qubit state.
func randomState(n int, rng *rand.Rand) *State {
	s := NewState(n)
	for i := 0; i < s.Dim(); i++ {
		s.amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	s.Normalize()
	return s
}

func statesMatch(t *testing.T, label string, a, b *State, tol float64) {
	t.Helper()
	if a.Dim() != b.Dim() {
		t.Fatalf("%s: dimension mismatch %d vs %d", label, a.Dim(), b.Dim())
	}
	for i := 0; i < a.Dim(); i++ {
		d := a.amps[i] - b.amps[i]
		if math.Hypot(real(d), imag(d)) > tol {
			t.Fatalf("%s: amplitude %d differs: %v vs %v", label, i, a.amps[i], b.amps[i])
		}
	}
}

// Every specialized kernel must reproduce the generic matrix path exactly
// (signed zeros aside, which compare equal).
func TestSpecializedKernelsMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 5
	oneQubit := []struct {
		name string
		run  func(s *State, q int)
		gate Matrix
	}{
		{"x", func(s *State, q int) { s.ApplyX(q) }, X},
		{"y", func(s *State, q int) { s.ApplyY(q) }, Y},
		{"z", func(s *State, q int) { s.ApplyDiag(q, 1, -1) }, Z},
		{"s", func(s *State, q int) { s.ApplyDiag(q, S.Data[0], S.Data[3]) }, S},
		{"t", func(s *State, q int) { s.ApplyDiag(q, T.Data[0], T.Data[3]) }, T},
		{"rz", func(s *State, q int) {
			m := RZ(0.37)
			s.ApplyDiag(q, m.Data[0], m.Data[3])
		}, RZ(0.37)},
	}
	for _, tc := range oneQubit {
		for q := 0; q < n; q++ {
			a := randomState(n, rng)
			b := a.Clone()
			tc.run(a, q)
			b.ApplyOne(tc.gate, q)
			statesMatch(t, tc.name, a, b, 0)
		}
	}

	twoQubit := []struct {
		name string
		run  func(s *State, q0, q1 int)
		gate Matrix
	}{
		{"cnot", func(s *State, q0, q1 int) { s.ApplyCNOT(q0, q1) }, CNOT},
		{"cz", func(s *State, q0, q1 int) { s.ApplyCZ(q0, q1) }, CZ},
		{"swap", func(s *State, q0, q1 int) { s.ApplySWAP(q0, q1) }, SWAP},
		{"cphase", func(s *State, q0, q1 int) {
			s.ApplyCPhase(q0, q1, CPhase(1.1).Data[15])
		}, CPhase(1.1)},
	}
	for _, tc := range twoQubit {
		for q0 := 0; q0 < n; q0++ {
			for q1 := 0; q1 < n; q1++ {
				if q0 == q1 {
					continue
				}
				a := randomState(n, rng)
				b := a.Clone()
				tc.run(a, q0, q1)
				b.ApplyTwo(tc.gate, q0, q1)
				statesMatch(t, tc.name, a, b, 0)
			}
		}
	}
}

// Parallel kernel application must be bitwise identical to serial: the
// amplitude groups are disjoint, only the iteration order changes.
func TestParallelKernelsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 14 // 16384 amplitudes, above parallelThreshold
	serial := randomState(n, rng)
	par := serial.Clone()
	par.SetParallelism(4)
	if par.Parallelism() != 4 {
		t.Fatalf("Parallelism = %d, want 4", par.Parallelism())
	}

	apply := func(s *State) {
		s.ApplyOne(H, 3)
		s.ApplyX(0)
		s.ApplyY(5)
		s.ApplyDiag(9, T.Data[0], T.Data[3])
		s.ApplyTwo(CNOT, 2, 11)
		s.ApplyCNOT(7, 1)
		s.ApplyCZ(4, 13)
		s.ApplyCPhase(6, 12, CPhase(0.9).Data[15])
		s.ApplySWAP(8, 10)
		s.ApplyControlledOne(RZ(0.4), 2, 9)
		s.Apply(Toffoli, 1, 4, 7)
	}
	apply(serial)
	apply(par)
	statesMatch(t, "parallel vs serial", serial, par, 0)
}

func TestSetParallelismClamps(t *testing.T) {
	s := NewState(2)
	s.SetParallelism(-3)
	if s.Parallelism() != 1 {
		t.Errorf("negative workers should clamp to 1, got %d", s.Parallelism())
	}
	s.AutoParallelism()
	if s.Parallelism() < 1 {
		t.Errorf("AutoParallelism gave %d", s.Parallelism())
	}
}

// The fused zero-and-renormalise pass must leave a unit-norm state, and a
// zero-probability projection must leave the zero vector rather than NaN.
func TestProjectQubitOnePass(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randomState(6, rng)
	s.ProjectQubit(2, 1)
	if norm := s.Norm(); math.Abs(norm-1) > 1e-12 {
		t.Errorf("projected state norm %v", norm)
	}
	for i := 0; i < s.Dim(); i++ {
		if i&(1<<2) == 0 && s.amps[i] != 0 {
			t.Fatalf("amplitude %d should be projected out", i)
		}
	}

	z := NewState(2) // |00>: outcome 1 on qubit 0 has probability 0
	z.ProjectQubit(0, 1)
	for i := 0; i < z.Dim(); i++ {
		if z.amps[i] != 0 {
			t.Fatalf("impossible projection left amplitude %v at %d", z.amps[i], i)
		}
	}
}
