package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricName constrains family names to the Prometheus identifier
// grammar; label names additionally exclude colons.
var (
	metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Metric family types, as rendered in # TYPE exposition lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Registry is a set of metric families with Prometheus text-format
// exposition. Families are created once at wiring time (creation panics
// on invalid or duplicate names — misregistration is a programming
// error, caught at startup); the returned handles are safe for
// concurrent use and lock-free on the record path.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is one named metric with a fixed label schema and a child per
// observed label-value combination.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64      // histograms only
	fn      func() float64 // GaugeFunc families only

	mu       sync.Mutex
	children map[string]*metric
}

// metric is one child's storage: a float64-bits atomic for counters and
// gauges, per-bucket counts plus a sum for histograms.
type metric struct {
	labelValues []string
	bits        atomic.Uint64 // counter/gauge value as math.Float64bits
	buckets     []float64     // histogram upper bounds (shared with family)
	counts      []atomic.Uint64
	sumBits     atomic.Uint64
	total       atomic.Uint64
}

// newFamily registers a family, panicking on schema errors.
func (r *Registry) newFamily(name, help, typ string, buckets []float64, labels ...string) *family {
	if !metricName.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelName.MatchString(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	if typ == typeHistogram {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
			}
		}
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   labels,
		buckets:  buckets,
		children: map[string]*metric{},
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.families[name] = f
	return f
}

// child resolves (and lazily creates) the child for the given label
// values, panicking on arity mismatch.
func (f *family) child(labelValues []string) *metric {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.children[key]
	if !ok {
		m = &metric{labelValues: append([]string(nil), labelValues...), buckets: f.buckets}
		if f.typ == typeHistogram {
			m.counts = make([]atomic.Uint64, len(f.buckets)+1) // +1: the +Inf bucket
		}
		f.children[key] = m
	}
	return m
}

// addFloat folds v into the metric's float64 value with a CAS loop.
func (m *metric) addFloat(v float64) {
	for {
		old := m.bits.Load()
		if m.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Counter is a monotonically increasing value.
type Counter struct{ m *metric }

// Inc adds 1.
func (c *Counter) Inc() { c.m.addFloat(1) }

// Add adds v, which must be non-negative.
func (c *Counter) Add(v float64) { c.m.addFloat(v) }

// Set overwrites the counter's value. It exists for scrape-time mirrors
// of monotonic counts maintained elsewhere (cache hit totals, say) that
// an OnCollect hook copies into the registry; instrumentation sites
// should use Inc/Add.
func (c *Counter) Set(v float64) { c.m.bits.Store(math.Float64bits(v)) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.m.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct{ m *metric }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.m.bits.Store(math.Float64bits(v)) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { g.m.addFloat(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.m.bits.Load()) }

// Histogram counts observations into fixed buckets with ascending upper
// bounds (inclusive, Prometheus "le" semantics) plus an implicit +Inf
// bucket, tracking the running sum alongside.
type Histogram struct{ m *metric }

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	m := h.m
	// First index whose upper bound admits v; len(buckets) is +Inf.
	i := sort.SearchFloat64s(m.buckets, v)
	m.counts[i].Add(1)
	m.total.Add(1)
	for {
		old := m.sumBits.Load()
		if m.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSeconds records a duration given in nanoseconds as seconds —
// the convention every latency histogram in the service follows.
func (h *Histogram) ObserveSeconds(ns int64) { h.Observe(float64(ns) / 1e9) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.m.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.m.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q ≤ 1) of the observations
// from the bucket counts: the geometric midpoint of the bucket holding
// the rank. Observations in the +Inf bucket report the highest finite
// bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	m := h.m
	total := m.total.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range m.counts {
		cum += m.counts[i].Load()
		if cum >= rank {
			return bucketMid(m.buckets, i)
		}
	}
	return bucketMid(m.buckets, len(m.counts)-1)
}

// bucketMid is a bucket's representative value: the geometric midpoint
// of its bounds, half the first bound for the leading bucket, and the
// highest finite bound for the +Inf bucket.
func bucketMid(bounds []float64, i int) float64 {
	switch {
	case i == 0:
		return bounds[0] / 2
	case i >= len(bounds):
		return bounds[len(bounds)-1]
	default:
		return math.Sqrt(bounds[i-1] * bounds[i])
	}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With resolves the child counter for the given label values. Resolve
// once and hold the handle on hot paths.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{m: v.f.child(labelValues)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With resolves the child gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{m: v.f.child(labelValues)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With resolves the child histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{m: v.f.child(labelValues)}
}

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return &Counter{m: r.newFamily(name, help, typeCounter, nil).child(nil)}
}

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.newFamily(name, help, typeCounter, nil, labels...)}
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return &Gauge{m: r.newFamily(name, help, typeGauge, nil).child(nil)}
}

// NewGaugeVec registers a gauge family with the given label names.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.newFamily(name, help, typeGauge, nil, labels...)}
}

// NewHistogram registers an unlabeled histogram with the given
// ascending upper bounds.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return &Histogram{m: r.newFamily(name, help, typeHistogram, buckets).child(nil)}
}

// NewHistogramVec registers a histogram family with the given ascending
// upper bounds and label names.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.newFamily(name, help, typeHistogram, buckets, labels...)}
}

// GaugeFunc registers a gauge whose value is computed by fn at each
// exposition — for values that are cheap to read but wasteful to track
// (uptime, queue depth snapshots).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.newFamily(name, help, typeGauge, nil)
	f.fn = fn
}

// OnCollect registers a hook run before each exposition, so values
// maintained outside the registry can be mirrored into gauges and
// counters at scrape time.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// ExpBuckets returns n geometrically spaced upper bounds starting at
// start and multiplying by factor (> 1) per bucket.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the shared latency ladder: 35 geometric bounds
// doubling from 128 ns (so bucket 0 is [0, 128 ns]) up to ~2199 s, plus
// the implicit +Inf bucket — 36 buckets spanning sub-microsecond
// compiler passes to multi-second job outliers.
var LatencyBuckets = ExpBuckets(128e-9, 2, 35)
