package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// The span tree must preserve creation order, nest children correctly,
// and render durations that sum consistently with the root.
func TestSpanTreeOrdering(t *testing.T) {
	tr := NewTrace("job-1", "job")
	root := tr.Root()
	q := root.StartChild("queue.wait")
	q.End()
	run := root.StartChild("run")
	run.SetAttr("backend", "perfect")
	compile := run.StartChild("compile")
	base := time.Now()
	compile.ChildAt("pass:decompose", base, 100*time.Nanosecond)
	compile.ChildAt("pass:schedule", base.Add(100*time.Nanosecond), 200*time.Nanosecond)
	compile.End()
	run.StartChild("execute").End()
	run.End()
	root.End()

	v := tr.View()
	if v.TraceID != "job-1" || v.Root.Name != "job" {
		t.Fatalf("view root = %+v", v)
	}
	var names []string
	for _, c := range v.Root.Children {
		names = append(names, c.Name)
	}
	if fmt.Sprint(names) != "[queue.wait run]" {
		t.Errorf("root children = %v", names)
	}
	runView := v.Root.Children[1]
	if runView.Attrs["backend"] != "perfect" {
		t.Errorf("run attrs = %v", runView.Attrs)
	}
	var runChildren []string
	for _, c := range runView.Children {
		runChildren = append(runChildren, c.Name)
	}
	if fmt.Sprint(runChildren) != "[compile execute]" {
		t.Errorf("run children = %v", runChildren)
	}
	passes := runView.Children[0].Children
	if len(passes) != 2 || passes[0].Name != "pass:decompose" || passes[1].Name != "pass:schedule" {
		t.Errorf("synthesized pass spans = %+v", passes)
	}
	if passes[0].DurationNs != 100 || passes[1].DurationNs != 200 {
		t.Errorf("synthesized durations = %d, %d", passes[0].DurationNs, passes[1].DurationNs)
	}
	// Children fit inside the root's duration.
	var childSum int64
	for _, c := range v.Root.Children {
		childSum += c.DurationNs
	}
	if v.Root.DurationNs < childSum {
		t.Errorf("root duration %dns shorter than the sum of its children %dns", v.Root.DurationNs, childSum)
	}
	// The view marshals to JSON.
	if _, err := json.Marshal(v); err != nil {
		t.Fatal(err)
	}
}

// An open span renders as in-flight; EndAt pins the closing edge and a
// second End is a no-op.
func TestSpanLifecycle(t *testing.T) {
	tr := NewTrace("job-2", "job")
	open := tr.Root().StartChild("open")
	v := tr.View()
	if !v.Root.Children[0].InFlight || v.Root.Children[0].DurationNs != 0 {
		t.Errorf("open span view = %+v", v.Root.Children[0])
	}
	at := open.start.Add(123 * time.Nanosecond)
	open.EndAt(at)
	open.EndAt(at.Add(time.Hour)) // no-op: already ended
	if got := tr.View().Root.Children[0].DurationNs; got != 123 {
		t.Errorf("duration = %dns, want 123", got)
	}
	// Overwriting an attribute keeps one entry.
	open.SetAttr("k", "v1")
	open.SetAttr("k", "v2")
	if got := tr.View().Root.Children[0].Attrs; len(got) != 1 || got["k"] != "v2" {
		t.Errorf("attrs = %v", got)
	}
}

// Nil traces and spans must swallow every call: instrumentation sites
// run with tracing disabled at zero cost and zero branches.
func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Root() != nil || tr.View() != nil {
		t.Error("nil trace leaked state")
	}
	sp := tr.Root().StartChild("x")
	if sp != nil {
		t.Error("nil span spawned a child")
	}
	sp.SetAttr("k", "v")
	sp.ChildAt("y", time.Now(), time.Second)
	sp.End()
	sp.EndAt(time.Now())

	var tc *Tracer
	if got := tc.Start("id", "job"); got != nil {
		t.Error("nil tracer started a trace")
	}
	if _, ok := tc.Get("id"); ok || tc.Len() != 0 {
		t.Error("nil tracer found a trace")
	}
}

// The tracer ring must bound retention, evicting oldest-first, and
// support concurrent Start/Get (run under -race).
func TestTracerRing(t *testing.T) {
	tc := NewTracer(3)
	for i := 1; i <= 5; i++ {
		tc.Start(fmt.Sprintf("job-%d", i), "job")
	}
	if tc.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", tc.Len())
	}
	for _, gone := range []string{"job-1", "job-2"} {
		if _, ok := tc.Get(gone); ok {
			t.Errorf("%s survived eviction", gone)
		}
	}
	for _, kept := range []string{"job-3", "job-4", "job-5"} {
		if _, ok := tc.Get(kept); !ok {
			t.Errorf("%s evicted too early", kept)
		}
	}
	// Re-registering an ID replaces without growing the ring.
	tc.Start("job-5", "job")
	if tc.Len() != 3 {
		t.Errorf("ring len after re-register = %d, want 3", tc.Len())
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				tr := tc.Start(id, "job")
				tr.Root().StartChild("phase").End()
				tc.Get(id)
			}
		}(w)
	}
	wg.Wait()
	if tc.Len() != 3 {
		t.Errorf("ring len after concurrent churn = %d, want 3", tc.Len())
	}
}
