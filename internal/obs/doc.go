// Package obs is the dependency-free observability substrate of the
// accelerator service: a Prometheus-style metrics registry (atomic
// counters, gauges and fixed-bucket histograms with text-format
// exposition) and a span-based job tracer with a bounded ring of
// retained traces.
//
// # Metrics
//
// A Registry holds metric families created once at wiring time; the
// returned handles (Counter, Gauge, Histogram) are lock-free on the
// record path — one atomic CAS per Observe/Add — so instrumenting a hot
// path costs nanoseconds. Families may carry labels: a CounterVec
// resolves (label values...) to a child Counter, and callers are
// expected to resolve children once and hold the handle, not to call
// With per event. WritePrometheus renders the whole registry in the
// Prometheus text exposition format (families sorted by name, children
// by label values — deterministic, golden-testable), and Handler serves
// it over HTTP. OnCollect hooks run before each exposition so scrape-
// time values (queue depths, cache counters maintained elsewhere) can be
// mirrored into gauges and counters.
//
// Histograms use explicit ascending upper bounds (seconds, by
// convention); ExpBuckets builds geometric ladders, and LatencyBuckets
// is the shared 36-bucket ladder spanning 128 ns to ~37 minutes that the
// service's latency and per-pass compile histograms use. Histogram
// additionally exposes Quantile — a midpoint estimate over its buckets —
// so JSON views (/stats) can stay thin reads over the same instruments
// the /metrics endpoint exports.
//
// # Tracing
//
// A Trace is a tree of Spans rooted at one job: NewTrace starts the
// root, StartChild/End bracket live phases, and ChildAt grafts
// synthesized spans (per-compiler-pass timings reconstructed from a
// CompileReport, say) at explicit instants. All Span and Trace methods
// are safe for concurrent use and nil-safe — a nil *Trace or *Span is a
// disabled trace, so instrumentation sites need no enabled-checks and
// cost nothing when tracing is off. View renders the tree as a JSON-
// ready SpanView with start instants, durations and attributes.
//
// A Tracer keeps completed and in-flight traces in a bounded ring keyed
// by trace ID (the service uses job IDs), evicting the oldest insertion
// beyond capacity — memory stays bounded no matter the traffic.
package obs
