package obs

import (
	"sync"
	"time"
)

// Trace is one job's span tree. All methods — on the trace and on its
// spans — are safe for concurrent use (one mutex guards the whole tree;
// traces are small and short-lived) and nil-safe: a nil *Trace is a
// disabled trace whose spans are all nil, so instrumentation sites call
// straight through without enabled-checks.
type Trace struct {
	id   string
	mu   sync.Mutex
	root *Span
}

// Span is one timed phase of a trace, with optional attributes and
// child spans. Create spans through Trace/Span methods only.
type Span struct {
	t        *Trace
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// NewTrace starts a trace whose root span begins now.
func NewTrace(id, rootName string) *Trace {
	return NewTraceAt(id, rootName, time.Now())
}

// NewTraceAt starts a trace whose root span begins at an explicit
// instant — used where the root must agree exactly with a timestamp
// recorded elsewhere (a job's submit time).
func NewTraceAt(id, rootName string, start time.Time) *Trace {
	t := &Trace{id: id}
	t.root = &Span{t: t, name: rootName, start: start}
	return t
}

// ID returns the trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// StartChild adds a child span beginning now.
func (s *Span) StartChild(name string) *Span {
	return s.StartChildAt(name, time.Now())
}

// StartChildAt adds a child span beginning at an explicit instant.
func (s *Span) StartChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	c := &Span{t: s.t, name: name, start: start}
	s.children = append(s.children, c)
	return c
}

// ChildAt grafts an already-timed child span — how spans synthesized
// from external timing records (a CompileReport's per-pass wall times,
// an engine's shot-batch timing) enter the tree.
func (s *Span) ChildAt(name string, start time.Time, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	c := &Span{t: s.t, name: name, start: start, end: start.Add(d)}
	s.children = append(s.children, c)
	return c
}

// SetAttr annotates the span. Setting an existing key overwrites it.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i, a := range s.attrs {
		if a.Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span now. Ending an ended span is a no-op.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt closes the span at an explicit instant — used where span edges
// must agree exactly with timestamps recorded elsewhere (a job's
// finish time, so the root span's duration matches the reported
// latency).
func (s *Span) EndAt(at time.Time) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.end.IsZero() {
		s.end = at
	}
}

// SpanView is the JSON rendering of one span.
type SpanView struct {
	Name        string `json:"name"`
	StartUnixNs int64  `json:"start_unix_ns"`
	// DurationNs is the span's closed duration; 0 with InFlight set
	// while the span is still open.
	DurationNs int64             `json:"duration_ns"`
	InFlight   bool              `json:"in_flight,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*SpanView       `json:"children,omitempty"`
}

// TraceView is the JSON rendering of a whole trace.
type TraceView struct {
	TraceID string    `json:"trace_id"`
	Root    *SpanView `json:"root"`
}

// View snapshots the trace as a JSON-ready span tree, children in
// creation order. Returns nil on a nil trace.
func (t *Trace) View() *TraceView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return &TraceView{TraceID: t.id, Root: t.root.view()}
}

// view renders a span and its subtree; the caller holds the trace lock.
func (s *Span) view() *SpanView {
	v := &SpanView{Name: s.name, StartUnixNs: s.start.UnixNano()}
	if s.end.IsZero() {
		v.InFlight = true
	} else {
		v.DurationNs = s.end.Sub(s.start).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		v.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			v.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		v.Children = append(v.Children, c.view())
	}
	return v
}

// Tracer keeps traces in a bounded ring keyed by ID: Start registers a
// new trace (evicting the oldest beyond capacity) and Get looks one up —
// in-flight or completed. A nil *Tracer is a disabled tracer: Start
// returns a nil (disabled) trace and Get finds nothing.
type Tracer struct {
	mu   sync.Mutex
	cap  int
	byID map[string]*Trace
	ring []string // insertion order, oldest first
}

// NewTracer returns a tracer retaining at most capacity traces
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{cap: capacity, byID: map[string]*Trace{}}
}

// Start creates and registers a trace whose root span begins now,
// evicting the oldest retained trace beyond capacity. Registering an ID
// twice replaces the earlier trace.
func (tr *Tracer) Start(id, rootName string) *Trace {
	return tr.StartAt(id, rootName, time.Now())
}

// StartAt is Start with an explicit root start instant.
func (tr *Tracer) StartAt(id, rootName string, at time.Time) *Trace {
	if tr == nil {
		return nil
	}
	t := NewTraceAt(id, rootName, at)
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, dup := tr.byID[id]; !dup {
		tr.ring = append(tr.ring, id)
	}
	tr.byID[id] = t
	for len(tr.ring) > tr.cap {
		delete(tr.byID, tr.ring[0])
		tr.ring = tr.ring[1:]
	}
	return t
}

// Get looks a trace up by ID.
func (tr *Tracer) Get(id string) (*Trace, bool) {
	if tr == nil {
		return nil, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t, ok := tr.byID[id]
	return t, ok
}

// Len reports how many traces are retained.
func (tr *Tracer) Len() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.byID)
}
