package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// Concurrent increments across counters, gauges and histograms must
// lose nothing (run under -race in CI).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("ops_total", "ops")
	cv := r.NewCounterVec("labeled_total", "labeled", "lane")
	g := r.NewGauge("depth", "depth")
	h := r.NewHistogram("lat_seconds", "latency", ExpBuckets(1e-6, 2, 10))

	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lane := cv.With("a")
			if w%2 == 1 {
				lane = cv.With("b")
			}
			for i := 0; i < perWorker; i++ {
				c.Inc()
				lane.Add(2)
				g.Add(1)
				g.Add(-1)
				h.Observe(1e-5)
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %v, want %d", got, workers*perWorker)
	}
	sum := cv.With("a").Value() + cv.With("b").Value()
	if sum != 2*workers*perWorker {
		t.Errorf("labeled counters sum = %v, want %d", sum, 2*workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	wantSum := float64(workers*perWorker) * 1e-5
	if got := h.Sum(); math.Abs(got-wantSum)/wantSum > 1e-9 {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
}

// Observations landing exactly on a bucket's upper bound must count
// into that bucket (inclusive "le" semantics), and values beyond the
// last bound into the +Inf bucket.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("edges", "", []float64{1, 2, 4})
	for _, v := range []float64{0, 1, 1.0000001, 2, 3.999, 4, 4.1, 1000} {
		h.Observe(v)
	}
	m := h.m
	wantCounts := []uint64{2, 2, 2, 2} // [0,1], (1,2], (2,4], (4,+Inf]
	for i, want := range wantCounts {
		if got := m.counts[i].Load(); got != want {
			t.Errorf("bucket %d count = %d, want %d", i, got, want)
		}
	}
	if got, want := h.Count(), uint64(8); got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
}

// Quantile walks the cumulative counts and reports geometric bucket
// midpoints; the +Inf bucket reports the highest finite bound.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q", "", []float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	// 10 observations in (1,2], 1 outlier beyond every bound.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	h.Observe(100)
	if got, want := h.Quantile(0.5), math.Sqrt(1*2); got != want {
		t.Errorf("p50 = %v, want %v", got, want)
	}
	if got, want := h.Quantile(1.0), 8.0; got != want {
		t.Errorf("p100 = %v, want %v (highest finite bound)", got, want)
	}
	// Leading bucket reports half its bound.
	h2 := r.NewHistogram("q2", "", []float64{10, 20})
	h2.Observe(3)
	if got, want := h2.Quantile(0.5), 5.0; got != want {
		t.Errorf("leading-bucket mid = %v, want %v", got, want)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(128e-9, 2, 4)
	want := []float64{128e-9, 256e-9, 512e-9, 1024e-9}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Errorf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	if len(LatencyBuckets) != 35 {
		t.Errorf("LatencyBuckets has %d bounds, want 35", len(LatencyBuckets))
	}
}

// Registration misuse is a programming error caught by panics at wiring
// time.
func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	mustPanic("duplicate", func() { r.NewCounter("dup_total", "") })
	mustPanic("bad name", func() { r.NewCounter("0bad", "") })
	mustPanic("bad label", func() { r.NewCounterVec("lv_total", "", "0bad") })
	mustPanic("no buckets", func() { r.NewHistogram("h0", "", nil) })
	mustPanic("unsorted buckets", func() { r.NewHistogram("h1", "", []float64{2, 1}) })
	v := r.NewCounterVec("arity_total", "", "a", "b")
	mustPanic("arity", func() { v.With("only-one") })
}

// Counter.Set exists for scrape-time mirrors; GaugeFunc and OnCollect
// feed exposition-time values.
func TestCollectHooks(t *testing.T) {
	r := NewRegistry()
	mirror := r.NewCounter("mirrored_total", "")
	external := 0.0
	r.OnCollect(func() { mirror.Set(external) })
	r.GaugeFunc("uptime_seconds", "", func() float64 { return 42 })

	external = 7
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "mirrored_total 7\n") {
		t.Errorf("mirrored counter missing:\n%s", out)
	}
	if !strings.Contains(out, "uptime_seconds 42\n") {
		t.Errorf("gauge func missing:\n%s", out)
	}
}
