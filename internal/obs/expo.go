package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, children sorted by
// label values, histograms expanded to cumulative _bucket/_sum/_count
// series. OnCollect hooks run first, so scrape-time mirrors are fresh.
// The output is deterministic for a given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()

	for _, fn := range collectors {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry over HTTP in the text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func (f *family) write(w io.Writer) error {
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
		return err
	}
	if f.fn != nil {
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn()))
		return err
	}
	f.mu.Lock()
	children := make([]*metric, 0, len(f.children))
	for _, m := range f.children {
		children = append(children, m)
	}
	f.mu.Unlock()
	sort.Slice(children, func(i, j int) bool {
		return strings.Join(children[i].labelValues, "\xff") < strings.Join(children[j].labelValues, "\xff")
	})
	for _, m := range children {
		if err := f.writeChild(w, m); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeChild(w io.Writer, m *metric) error {
	if f.typ != typeHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n",
			f.name, labelString(f.labels, m.labelValues, "", ""),
			formatFloat(math.Float64frombits(m.bits.Load())))
		return err
	}
	var cum uint64
	for i, bound := range m.buckets {
		cum += m.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelString(f.labels, m.labelValues, "le", formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += m.counts[len(m.buckets)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		f.name, labelString(f.labels, m.labelValues, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		f.name, labelString(f.labels, m.labelValues, "", ""),
		formatFloat(math.Float64frombits(m.sumBits.Load()))); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		f.name, labelString(f.labels, m.labelValues, "", ""), cum)
	return err
}

// labelString renders a {k="v",...} label set, appending the extra pair
// (the histogram "le" bound) when extraKey is non-empty. Empty label
// sets render as nothing.
func labelString(names, values []string, extraKey, extraVal string) string {
	if len(names) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trip representation, integers without an exponent.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', -1, 64)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}
