package obs

import (
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// The exposition format is a wire contract: pin it against a golden
// file (regenerate with `go test ./internal/obs -run Golden -update`).
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	jobs := r.NewCounterVec("qserv_jobs_completed_total", "Jobs completed, by backend and status.", "backend", "status")
	jobs.With("perfect", "done").Add(41)
	jobs.With("perfect", "failed").Inc()
	jobs.With(`we"ird\back`+"\nend`", "done").Inc() // label escaping
	r.NewCounter("qserv_jobs_submitted_total", "Jobs admitted by Submit.").Add(43)
	r.NewGaugeVec("qserv_queue_depth", "Queued jobs per backend.", "backend").With("perfect").Set(3)
	h := r.NewHistogramVec("qserv_job_latency_seconds", "Submit-to-finish latency.",
		[]float64{0.001, 0.01, 0.1}, "backend").With("perfect")
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(7)
	r.GaugeFunc("qserv_uptime_seconds", "Seconds since Start.", func() float64 { return 12.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// The HTTP handler serves the same rendering with the Prometheus
// content type.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "").Add(5)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	buf := make([]byte, 4096)
	n, _ := res.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "x_total 5") {
		t.Errorf("body missing sample: %q", buf[:n])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		5:       "5",
		0.001:   "0.001",
		1.5e-07: "1.5e-07",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
