package openql

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/compiler"
)

// mapPrefixCache is a minimal compiler.PrefixCache for tests: a map with
// counters, no eviction, no singleflight.
type mapPrefixCache struct {
	mu     sync.Mutex
	m      map[string]*compiler.PrefixArtefact
	hits   int
	misses int
}

func newMapPrefixCache() *mapPrefixCache {
	return &mapPrefixCache{m: map[string]*compiler.PrefixArtefact{}}
}

func (c *mapPrefixCache) GetOrCompute(key string, compute func() (*compiler.PrefixArtefact, error)) (*compiler.PrefixArtefact, bool, error) {
	c.mu.Lock()
	if a, ok := c.m[key]; ok {
		c.hits++
		c.mu.Unlock()
		return a, true, nil
	}
	c.mu.Unlock()
	a, err := compute()
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	c.m[key] = a
	c.misses++
	c.mu.Unlock()
	return a, false, nil
}

// multiKernelProgram builds a program whose kernels exercise decompose
// (toffoli, swap), optimize (cancelling pairs) and routing.
func multiKernelProgram(n int) *Program {
	p := NewProgram("multi", n)
	k1 := NewKernel("prep", n)
	for q := 0; q < n; q++ {
		k1.H(q)
	}
	k1.Toffoli(0, 1, 2)
	p.AddKernel(k1)
	k2 := NewKernel("mix", n).CNOT(0, 1).CNOT(1, 2).RZ(0, 0.3).RZ(0, 0.4)
	k2.Gate("swap", []int{0, 2})
	p.AddKernel(k2)
	k3 := NewKernel("loop", n).RY(1, 0.7).CZ(1, 3).Repeat(3)
	p.AddKernel(k3)
	k4 := NewKernel("meas", n)
	for q := 0; q < n; q++ {
		k4.Measure(q)
	}
	p.AddKernel(k4)
	return p
}

func assertSameCompiled(t *testing.T, label string, want, got *Compiled) {
	t.Helper()
	if want.CQASM != got.CQASM {
		t.Fatalf("%s: compiled cQASM differs", label)
	}
	if want.Schedule.Makespan != got.Schedule.Makespan {
		t.Fatalf("%s: makespan %d != %d", label, want.Schedule.Makespan, got.Schedule.Makespan)
	}
	if (want.EQASM == nil) != (got.EQASM == nil) {
		t.Fatalf("%s: eQASM presence differs", label)
	}
	if want.EQASM != nil && want.EQASM.String() != got.EQASM.String() {
		t.Fatalf("%s: eQASM differs", label)
	}
}

// TestParallelKernelCompileDeterministic proves the tentpole's
// concatenation contract: compiling kernels serially, across workers,
// and across workers under a shared gate all produce byte-identical
// artefacts on every preset target.
func TestParallelKernelCompileDeterministic(t *testing.T) {
	prog := multiKernelProgram(5)
	for _, tc := range []struct {
		name string
		mode QubitMode
		opts CompileOptions
	}{
		{name: "perfect", mode: PerfectQubits},
		{name: "superconducting", mode: RealisticQubits},
	} {
		base := CompileOptions{
			Mode:     tc.mode,
			Platform: platformFor(tc.name, 5),
			Optimize: true,
			Mapping:  compiler.MapOptions{Lookahead: true},
		}
		want, err := prog.Compile(base)
		if err != nil {
			t.Fatalf("%s serial: %v", tc.name, err)
		}
		for _, workers := range []int{2, 8} {
			opts := base
			opts.Workers = workers
			opts.CompileGate = compiler.NewWorkerGate(2)
			got, err := prog.Compile(opts)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			assertSameCompiled(t, fmt.Sprintf("%s workers=%d", tc.name, workers), want, got)
		}
	}
}

func platformFor(name string, n int) *compiler.Platform {
	if name == "perfect" {
		return compiler.Perfect(n)
	}
	return compiler.Superconducting()
}

// TestPrefixCacheSuffixOnlyRecompile proves the two-level contract: with
// a warm prefix cache, a recompile that only changes scheduling policy
// or mapping options fetches every kernel's prefix artefact (PrefixHits
// = kernel count, no prefix pass rows in the report) and still produces
// artefacts identical to an uncached compile of the same variant.
func TestPrefixCacheSuffixOnlyRecompile(t *testing.T) {
	prog := multiKernelProgram(5)
	cache := newMapPrefixCache()
	base := CompileOptions{
		Mode:        RealisticQubits,
		Platform:    compiler.Superconducting(),
		Optimize:    true,
		PrefixCache: cache,
	}
	cold, err := prog.Compile(base)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Report.PrefixHits != 0 {
		t.Fatalf("cold compile reported %d prefix hits", cold.Report.PrefixHits)
	}
	if cache.misses != len(prog.Kernels) {
		t.Fatalf("cold compile missed %d times, want %d", cache.misses, len(prog.Kernels))
	}

	variants := []CompileOptions{base, base, base}
	variants[0].Policy = compiler.ALAP
	variants[1].Mapping = compiler.MapOptions{Lookahead: true, LookaheadWindow: 4}
	variants[2].Passes = "decompose,optimize,map(strategy=noise),lower-swaps,optimize-lowered,schedule,assemble"
	for i, opts := range variants {
		warm, err := prog.Compile(opts)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if warm.Report.PrefixHits != len(prog.Kernels) {
			t.Fatalf("variant %d: %d prefix hits, want %d",
				i, warm.Report.PrefixHits, len(prog.Kernels))
		}
		for _, m := range warm.Report.Passes {
			if m.Pass == "decompose" || m.Pass == "optimize" {
				t.Fatalf("variant %d: prefix pass %q ran despite full prefix hit", i, m.Pass)
			}
		}
		uncachedOpts := opts
		uncachedOpts.PrefixCache = nil
		uncached, err := prog.Compile(uncachedOpts)
		if err != nil {
			t.Fatalf("variant %d uncached: %v", i, err)
		}
		assertSameCompiled(t, fmt.Sprintf("variant %d", i), uncached, warm)
	}
}

// keyRecordingCache wraps mapPrefixCache and records every key it is
// asked for.
type keyRecordingCache struct {
	mapPrefixCache
	keys []string
}

func (c *keyRecordingCache) GetOrCompute(key string, compute func() (*compiler.PrefixArtefact, error)) (*compiler.PrefixArtefact, bool, error) {
	c.keys = append(c.keys, key)
	return c.mapPrefixCache.GetOrCompute(key, compute)
}

// TestPrefixCacheKeysMatchDerivation ties the production key path to its
// documented derivation: the keys Compile hands the prefix cache must be
// exactly compiler.PrefixKey over (Platform.GateSetHash, canonical
// prefix spec, Kernel.ContentHash) — the same components
// core.Stack.PrefixFingerprint exposes — so the fingerprint-invariance
// tests describe the real cache behaviour.
func TestPrefixCacheKeysMatchDerivation(t *testing.T) {
	prog := multiKernelProgram(5)
	cache := &keyRecordingCache{mapPrefixCache: *newMapPrefixCache()}
	platform := compiler.Superconducting()
	if _, err := prog.Compile(CompileOptions{
		Mode:        RealisticQubits,
		Platform:    platform,
		Optimize:    true,
		PrefixCache: cache,
	}); err != nil {
		t.Fatal(err)
	}
	pl, err := compiler.NewPipeline(compiler.DefaultPassSpec(true))
	if err != nil {
		t.Fatal(err)
	}
	prefix, _ := pl.Split()
	want := make([]string, len(prog.Kernels))
	for i, k := range prog.Kernels {
		want[i] = compiler.PrefixKey(platform.GateSetHash(), prefix.Spec, k.ContentHash(prog.NumQubits))
	}
	if len(cache.keys) != len(want) {
		t.Fatalf("cache consulted %d times, want %d", len(cache.keys), len(want))
	}
	for i := range want {
		if cache.keys[i] != want[i] {
			t.Errorf("kernel %d key = %s, want PrefixKey(GateSetHash, %q, ContentHash) = %s",
				i, cache.keys[i], prefix.Spec, want[i])
		}
	}
}

// TestKernelBoundaryBarrier pins the semantics change the per-kernel
// prefix makes deliberate: the peephole optimiser no longer merges gates
// across kernel boundaries — kernels are separately-offloaded units of
// classical control — while gates within one kernel still cancel.
func TestKernelBoundaryBarrier(t *testing.T) {
	split := NewProgram("split", 1)
	split.AddKernel(NewKernel("a", 1).X(0).H(0))
	split.AddKernel(NewKernel("b", 1).H(0).X(0))
	joined := NewProgram("joined", 1)
	joined.AddKernel(NewKernel("ab", 1).X(0).H(0).H(0).X(0))

	opts := CompileOptions{Mode: PerfectQubits, Platform: compiler.Perfect(1), Optimize: true}
	compiledSplit, err := split.Compile(opts)
	if err != nil {
		t.Fatal(err)
	}
	compiledJoined, err := joined.Compile(opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(compiledJoined.Circuit.Gates); n != 0 {
		t.Fatalf("single-kernel x·h·h·x should cancel entirely, kept %d gates", n)
	}
	if n := len(compiledSplit.Circuit.Gates); n != 4 {
		t.Fatalf("kernel boundary must act as an optimisation barrier: want 4 gates, got %d", n)
	}
}

// TestKernelContentHash pins that the canonical kernel identity is
// independent of kernel and program names but sensitive to register
// size, iteration count, gate parameters and conditional bindings — and
// that unrolling n iterations equals writing the gates out n times.
func TestKernelContentHash(t *testing.T) {
	a := NewKernel("alpha", 2).H(0).CNOT(0, 1)
	b := NewKernel("beta", 2).H(0).CNOT(0, 1)
	if a.ContentHash(3) != b.ContentHash(3) {
		t.Error("kernel names must not affect the content hash")
	}
	if a.ContentHash(2) == a.ContentHash(3) {
		t.Error("register size must affect the content hash")
	}
	c := NewKernel("gamma", 2).H(0).CNOT(0, 1).Repeat(2)
	if a.ContentHash(3) == c.ContentHash(3) {
		t.Error("iteration counts must affect the content hash")
	}
	unrolled := NewKernel("delta", 2).H(0).CNOT(0, 1).H(0).CNOT(0, 1)
	if c.ContentHash(3) != unrolled.ContentHash(3) {
		t.Error("n iterations must hash like the gates written out n times")
	}
	if NewKernel("r", 1).RZ(0, 0.5).ContentHash(1) == NewKernel("r", 1).RZ(0, 0.25).ContentHash(1) {
		t.Error("gate parameters must affect the content hash")
	}
}
