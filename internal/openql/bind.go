package openql

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/eqasm"
)

// circuitSlot locates one symbolic parameter in the compiled circuit.
type circuitSlot struct {
	gate, param int
	expr        *circuit.ParamExpr
}

// eqasmSlot locates one symbolic parameter in the assembled eQASM
// program: bundle instruction index, operation index within the bundle,
// parameter index within the operation.
type eqasmSlot struct {
	instr, op, param int
	expr             *circuit.ParamExpr
}

// BindTable records where every symbolic parameter expression surfaced in
// the compiled artefacts — the final circuit and, on realistic targets,
// the assembled eQASM bundles. It is built once at compile time by one
// scan of the artefacts; BindArtefact then reduces a parameter point to
// evaluating each slot's expression and patching the recorded offsets,
// never re-running mapping, scheduling or assembly.
type BindTable struct {
	symbols []string
	cslots  []circuitSlot
	eslots  []eqasmSlot
}

// newBindTable scans a compiled artefact for symbolic slots. It returns
// nil for concrete artefacts, so non-parametric compiles carry no
// overhead.
func newBindTable(c *Compiled) *BindTable {
	t := &BindTable{}
	syms := map[string]bool{}
	for gi, g := range c.Circuit.Gates {
		for pi := range g.Params {
			if !g.Symbolic(pi) {
				continue
			}
			t.cslots = append(t.cslots, circuitSlot{gate: gi, param: pi, expr: g.Exprs[pi]})
			for _, s := range g.Exprs[pi].Symbols() {
				syms[s] = true
			}
		}
	}
	if c.EQASM != nil {
		for ii, in := range c.EQASM.Instrs {
			b, ok := in.(eqasm.Bundle)
			if !ok {
				continue
			}
			for oi, op := range b.Ops {
				for pi := range op.Params {
					if !op.Symbolic(pi) {
						continue
					}
					t.eslots = append(t.eslots, eqasmSlot{instr: ii, op: oi, param: pi, expr: op.Exprs[pi]})
					for _, s := range op.Exprs[pi].Symbols() {
						syms[s] = true
					}
				}
			}
		}
	}
	if len(t.cslots) == 0 && len(t.eslots) == 0 {
		return nil
	}
	t.symbols = make([]string, 0, len(syms))
	for s := range syms {
		t.symbols = append(t.symbols, s)
	}
	sort.Strings(t.symbols)
	return t
}

// Symbols returns the sorted parameter symbols of the compiled program,
// or nil when it is concrete.
func (c *Compiled) Symbols() []string {
	if c.Binds == nil {
		return nil
	}
	return append([]string(nil), c.Binds.symbols...)
}

// IsParametric reports whether the artefact still carries unbound
// symbolic parameters and must be bound before execution.
func (c *Compiled) IsParametric() bool { return c.Binds != nil }

// BindArtefact returns a concrete copy of the artefact with every
// symbolic slot evaluated under vals — the bind-only fast path of the
// variational loop. The receiver is never modified (compiled artefacts
// are shared by the compile caches), but the copy is as shallow as
// correctness allows: only the gate list, the gates that actually carry
// symbols, the eQASM instruction list and the bundles that carry symbols
// are cloned, so a bind is O(#slots + #gates) pointer work with no pass
// re-runs. Schedule, mapping result and compile report are shared with
// the symbolic artefact. The bound copy's CQASM is re-rendered lazily by
// callers that need it; the field keeps the symbolic text (with $symbol
// parameters) as the canonical form of the program.
//
// vals must bind exactly the symbols of the program: missing and unknown
// names both fail, so optimiser typos surface immediately.
func (c *Compiled) BindArtefact(vals map[string]float64) (*Compiled, error) {
	t := c.Binds
	if t == nil {
		if len(vals) > 0 {
			return nil, fmt.Errorf("openql: program is not parametric; no symbols to bind")
		}
		return c, nil
	}
	if len(vals) != len(t.symbols) {
		return nil, fmt.Errorf("openql: bind wants symbols %v, got %d values", t.symbols, len(vals))
	}
	for _, s := range t.symbols {
		if _, ok := vals[s]; !ok {
			return nil, fmt.Errorf("openql: missing binding for symbol %q", s)
		}
	}

	out := *c
	out.Binds = nil

	// Patch the circuit: clone the gate slice, then deep-copy only the
	// gates holding symbolic slots (fresh Params, expressions dropped).
	gates := append([]circuit.Gate(nil), c.Circuit.Gates...)
	cloned := map[int]bool{}
	for _, s := range t.cslots {
		g := &gates[s.gate]
		if !cloned[s.gate] {
			g.Params = append([]float64(nil), g.Params...)
			g.Exprs = nil
			cloned[s.gate] = true
		}
		v, err := s.expr.Eval(vals)
		if err != nil {
			return nil, err
		}
		g.Params[s.param] = v
	}
	cc := *c.Circuit
	cc.Gates = gates
	out.Circuit = &cc

	// Patch the eQASM program the same way: clone the instruction slice,
	// then per affected bundle clone its op slice and the affected ops.
	if len(t.eslots) > 0 {
		instrs := append([]eqasm.Instr(nil), c.EQASM.Instrs...)
		opsCloned := map[int]bool{}
		opCloned := map[[2]int]bool{}
		for _, s := range t.eslots {
			if !opsCloned[s.instr] {
				b := instrs[s.instr].(eqasm.Bundle)
				b.Ops = append([]eqasm.QOp(nil), b.Ops...)
				instrs[s.instr] = b
				opsCloned[s.instr] = true
			}
			b := instrs[s.instr].(eqasm.Bundle)
			op := &b.Ops[s.op]
			if k := [2]int{s.instr, s.op}; !opCloned[k] {
				op.Params = append([]float64(nil), op.Params...)
				op.Exprs = nil
				opCloned[k] = true
			}
			v, err := s.expr.Eval(vals)
			if err != nil {
				return nil, err
			}
			op.Params[s.param] = v
		}
		ep := *c.EQASM
		ep.Instrs = instrs
		out.EQASM = &ep
	}
	return &out, nil
}
