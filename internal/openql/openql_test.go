package openql

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/compiler"
	"repro/internal/cqasm"
	"repro/internal/eqasm"
)

func bellProgram() *Program {
	p := NewProgram("bell", 2)
	k := NewKernel("entangle", 2)
	k.H(0).CNOT(0, 1).MeasureAll()
	p.AddKernel(k)
	return p
}

func TestKernelBuilders(t *testing.T) {
	k := NewKernel("k", 3)
	k.H(0).X(1).Y(2).Z(0).RX(0, 0.1).RY(1, 0.2).RZ(2, 0.3).
		CNOT(0, 1).CZ(1, 2).Toffoli(0, 1, 2).
		Measure(0).PrepZ(1).Barrier()
	c := k.Circuit()
	if c.GateCount() != 13 {
		t.Errorf("gates = %d, want 13", c.GateCount())
	}
}

func TestKernelRepeat(t *testing.T) {
	k := NewKernel("loop", 1).X(0).Repeat(3)
	if k.Circuit().GateCount() != 3 {
		t.Errorf("repeat not unrolled: %d", k.Circuit().GateCount())
	}
	if k.Repeat(0).Iterations != 1 {
		t.Error("repeat < 1 should clamp")
	}
}

func TestProgramFlatten(t *testing.T) {
	p := NewProgram("p", 2)
	p.AddKernel(NewKernel("a", 2).H(0))
	p.AddKernel(NewKernel("b", 2).CNOT(0, 1).Repeat(2))
	flat := p.Flatten()
	if flat.GateCount() != 3 {
		t.Errorf("flattened = %d gates, want 3", flat.GateCount())
	}
}

func TestAddKernelPanicsOnOversize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized kernel accepted")
		}
	}()
	NewProgram("p", 1).AddKernel(NewKernel("big", 2))
}

func TestCQASMOutputParses(t *testing.T) {
	text := bellProgram().CQASM()
	if !strings.Contains(text, ".entangle") {
		t.Errorf("kernel name missing:\n%s", text)
	}
	parsed, err := cqasm.Parse(text)
	if err != nil {
		t.Fatalf("emitted cQASM does not parse: %v\n%s", err, text)
	}
	flat, err := parsed.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if flat.GateCount() != 3 {
		t.Errorf("round-tripped gates = %d", flat.GateCount())
	}
}

func TestCQASMIterations(t *testing.T) {
	p := NewProgram("it", 1)
	p.AddKernel(NewKernel("spin", 1).X(0).Repeat(4))
	text := p.CQASM()
	if !strings.Contains(text, ".spin(4)") {
		t.Errorf("iterations missing:\n%s", text)
	}
}

func TestCompilePerfect(t *testing.T) {
	compiled, err := bellProgram().Compile(CompileOptions{Mode: PerfectQubits})
	if err != nil {
		t.Fatal(err)
	}
	if compiled.EQASM != nil {
		t.Error("perfect mode should not emit eQASM")
	}
	if compiled.Schedule == nil || compiled.Schedule.Makespan == 0 {
		t.Error("no schedule produced")
	}
	if compiled.CQASM == "" {
		t.Error("no cQASM artefact")
	}
}

func TestCompileRealistic(t *testing.T) {
	compiled, err := bellProgram().Compile(CompileOptions{
		Mode:     RealisticQubits,
		Platform: compiler.Superconducting(),
		Optimize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if compiled.EQASM == nil {
		t.Fatal("realistic mode must emit eQASM")
	}
	if compiled.MapResult == nil {
		t.Error("topology platform should produce mapping stats")
	}
	// All gates must be platform primitives after decomposition.
	for _, g := range compiled.Circuit.Gates {
		if g.IsUnitary() && !compiler.Superconducting().Supports(g.Name) {
			t.Errorf("non-primitive gate %q survived", g.Name)
		}
	}
	// eQASM must produce a valid timeline.
	if _, err := compiled.EQASM.Timeline(); err != nil {
		t.Errorf("invalid eQASM: %v", err)
	}
}

func TestCompileOptimizeShrinks(t *testing.T) {
	p := NewProgram("redundant", 1)
	p.AddKernel(NewKernel("k", 1).H(0).H(0).X(0).X(0))
	plain, err := p.Compile(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := p.Compile(CompileOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Circuit.Gates) >= len(plain.Circuit.Gates) {
		t.Errorf("optimisation did not shrink: %d vs %d",
			len(opt.Circuit.Gates), len(plain.Circuit.Gates))
	}
}

func TestQubitModeString(t *testing.T) {
	if PerfectQubits.String() != "perfect" || RealisticQubits.String() != "realistic" {
		t.Error("mode strings wrong")
	}
}

func TestGateGenericBuilder(t *testing.T) {
	k := NewKernel("g", 2)
	k.Gate("cphase", []int{0, 1}, 0.5)
	gates := k.Circuit().Gates
	if len(gates) != 1 || gates[0].Name != "cphase" {
		t.Errorf("generic gate failed: %v", gates)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("my kernel-1!"); got != "my_kernel_1_" {
		t.Errorf("sanitize = %q", got)
	}
	if sanitize("") != "kernel" {
		t.Error("empty name")
	}
}

// compileLegacy is a verbatim copy of the pre-pass-manager Program.Compile
// — the hard-wired decompose/optimize/map/schedule chain. It is the
// reference implementation the default pass pipeline must reproduce
// gate for gate.
func compileLegacy(p *Program, opts CompileOptions) (*Compiled, error) {
	if opts.Platform == nil {
		opts.Platform = compiler.Perfect(p.NumQubits)
	}
	flat := p.Flatten()
	c, err := compiler.Decompose(flat, opts.Platform)
	if err != nil {
		return nil, err
	}
	if opts.Optimize {
		c = compiler.Optimize(c)
	}
	out := &Compiled{Mode: opts.Mode}
	if opts.Platform.Topology != nil {
		mr, err := compiler.MapCircuit(c, opts.Platform, opts.Mapping)
		if err != nil {
			return nil, err
		}
		out.MapResult = mr
		c = mr.Circuit
		if !opts.Platform.Supports("swap") {
			c, err = compiler.Decompose(c, opts.Platform)
			if err != nil {
				return nil, err
			}
			if opts.Optimize {
				c = compiler.Optimize(c)
			}
		}
	}
	sched, err := compiler.ScheduleCircuit(c, opts.Platform, opts.Policy)
	if err != nil {
		return nil, err
	}
	out.Circuit = c
	out.Schedule = sched
	out.CQASM = cqasm.PrintCircuit(c)
	if opts.Mode == RealisticQubits {
		prog, err := eqasm.Assemble(sched, opts.Platform)
		if err != nil {
			return nil, err
		}
		prog.Name = p.Name
		out.EQASM = prog
	}
	return out, nil
}

// diffCorpus returns randomized + structured programs over n qubits.
func diffCorpus(n int, seed int64) []*Program {
	rng := rand.New(rand.NewSource(seed))
	var progs []*Program
	for i := 0; i < 4; i++ {
		c := circuit.RandomCircuit(n, 2+i, rng)
		for q := 0; q < n; q++ {
			c.Measure(q)
		}
		progs = append(progs, ProgramFromCircuit(fmt.Sprintf("rand%d", i), c))
	}
	// Structured circuits exercising multi-level decomposition, swaps and
	// conditionals.
	s := circuit.New("struct", n)
	s.Toffoli(0, 1, 2).SWAP(0, n-1).CPhase(1, 2, 0.7).H(0).Barrier().T(1)
	g, _ := circuit.NewGate("x", []int{2})
	g.HasCond, g.CondBit = true, 0
	s.Measure(0)
	s.AddGate(g)
	s.MeasureAll()
	progs = append(progs, ProgramFromCircuit("struct", s))
	progs = append(progs, ProgramFromCircuit("qft", circuit.QFT(n, true)))
	return progs
}

// TestDefaultPipelineMatchesLegacy is the refactor's safety net: across a
// randomized corpus and all three platform presets, the default pass
// pipeline must emit a compiled artefact — circuit, schedule, eQASM, map
// result — identical to the pre-refactor hard-wired compiler.
func TestDefaultPipelineMatchesLegacy(t *testing.T) {
	// nativeSwap is a topology-constrained platform with a primitive swap
	// gate: the one configuration class where the classic compiler skipped
	// SWAP lowering *and* the post-routing re-optimisation — the pipeline's
	// optimize-lowered pass must skip there too.
	nativeSwap := func(n int) *compiler.Platform {
		cfg, err := compiler.LoadPlatform([]byte(fmt.Sprintf(`{
			"name": "nativeswap", "qubits": %d, "cycle_time_ns": 20,
			"gates": {"i":{}, "rz":{}, "x90":{}, "mx90":{}, "y90":{}, "my90":{},
			          "cz":{}, "swap":{"duration":3}, "measure":{}, "prep_z":{},
			          "wait":{}, "barrier":{}},
			"topology": {"kind": "linear"}}`, n)))
		if err != nil {
			t.Fatal(err)
		}
		return cfg
	}
	targets := []struct {
		name     string
		mode     QubitMode
		platform func(n int) *compiler.Platform
		qubits   int
	}{
		{"perfect", PerfectQubits, compiler.Perfect, 5},
		{"superconducting", RealisticQubits, func(int) *compiler.Platform { return compiler.Superconducting() }, 5},
		{"semiconducting", RealisticQubits, func(int) *compiler.Platform { return compiler.Semiconducting() }, 5},
		{"native-swap", PerfectQubits, nativeSwap, 5},
	}
	for _, tc := range targets {
		for _, optimize := range []bool{true, false} {
			for _, policy := range []compiler.Policy{compiler.ASAP, compiler.ALAP} {
				for pi, prog := range diffCorpus(tc.qubits, 42) {
					opts := CompileOptions{
						Mode:     tc.mode,
						Platform: tc.platform(tc.qubits),
						Optimize: optimize,
						Policy:   policy,
						Mapping:  compiler.MapOptions{Lookahead: pi%2 == 0},
					}
					want, errLegacy := compileLegacy(prog, opts)
					got, errNew := prog.Compile(opts)
					label := fmt.Sprintf("%s/opt=%v/%s/%s", tc.name, optimize, policy, prog.Name)
					if (errLegacy == nil) != (errNew == nil) {
						t.Fatalf("%s: error mismatch: legacy %v, pipeline %v", label, errLegacy, errNew)
					}
					if errLegacy != nil {
						continue
					}
					if !reflect.DeepEqual(got.Circuit.Gates, want.Circuit.Gates) {
						t.Fatalf("%s: circuits diverge\nlegacy:\n%s\npipeline:\n%s",
							label, want.Circuit, got.Circuit)
					}
					if got.CQASM != want.CQASM {
						t.Fatalf("%s: cQASM diverges", label)
					}
					if !reflect.DeepEqual(got.Schedule, want.Schedule) {
						t.Fatalf("%s: schedules diverge", label)
					}
					if !reflect.DeepEqual(got.MapResult, want.MapResult) {
						t.Fatalf("%s: map results diverge: %+v vs %+v", label, got.MapResult, want.MapResult)
					}
					switch {
					case (got.EQASM == nil) != (want.EQASM == nil):
						t.Fatalf("%s: eQASM presence diverges", label)
					case got.EQASM != nil && got.EQASM.String() != want.EQASM.String():
						t.Fatalf("%s: eQASM diverges", label)
					}
					if got.Report == nil || len(got.Report.Passes) == 0 {
						t.Fatalf("%s: pipeline produced no compile report", label)
					}
				}
			}
		}
	}
}

// TestCompileCustomPassSpec drives the extension point: a custom pipeline
// with the commutation-aware folding pass compiles at least as small a
// circuit, and pass specs missing required stages fail with clear errors.
func TestCompileCustomPassSpec(t *testing.T) {
	c := circuit.New("fold", 3).RZ(0, 0.3).CNOT(0, 1).RZ(0, 0.4).H(2)
	prog := ProgramFromCircuit("fold", c)

	plain, err := prog.Compile(CompileOptions{Passes: "decompose,schedule"})
	if err != nil {
		t.Fatal(err)
	}
	folded, err := prog.Compile(CompileOptions{Passes: "decompose,fold-rotations,schedule"})
	if err != nil {
		t.Fatal(err)
	}
	if len(folded.Circuit.Gates) >= len(plain.Circuit.Gates) {
		t.Errorf("fold-rotations pass did not shrink the circuit: %d vs %d gates",
			len(folded.Circuit.Gates), len(plain.Circuit.Gates))
	}
	if folded.Report.PassSpec != "decompose,fold-rotations,schedule" {
		t.Errorf("report spec %q", folded.Report.PassSpec)
	}
}

func TestCompileRejectsBadPassSpecs(t *testing.T) {
	prog := bellProgram()
	if _, err := prog.Compile(CompileOptions{Passes: "decompose,teleport"}); err == nil ||
		!strings.Contains(err.Error(), "unknown pass") {
		t.Errorf("unknown pass not rejected clearly: %v", err)
	}
	if _, err := prog.Compile(CompileOptions{Passes: "decompose,optimize"}); err == nil ||
		!strings.Contains(err.Error(), "schedule") {
		t.Errorf("schedule-less spec not rejected clearly: %v", err)
	}
	if _, err := prog.Compile(CompileOptions{
		Mode:     RealisticQubits,
		Platform: compiler.Superconducting(),
		Passes:   "decompose,optimize,map,lower-swaps,schedule",
	}); err == nil || !strings.Contains(err.Error(), "assemble") {
		t.Errorf("assemble-less realistic spec not rejected clearly: %v", err)
	}
}

// The ISSUE's canonical example spec must work end to end on a perfect
// target (assemble is optional there).
func TestCompileExampleSpecPerfect(t *testing.T) {
	compiled, err := bellProgram().Compile(CompileOptions{Passes: "decompose,optimize,map,schedule"})
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Schedule == nil || compiled.Report == nil {
		t.Fatal("example spec produced incomplete artefacts")
	}
	if got := len(compiled.Report.Passes); got != 4 {
		t.Errorf("%d pass metrics, want 4", got)
	}
}
