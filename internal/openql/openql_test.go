package openql

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/cqasm"
)

func bellProgram() *Program {
	p := NewProgram("bell", 2)
	k := NewKernel("entangle", 2)
	k.H(0).CNOT(0, 1).MeasureAll()
	p.AddKernel(k)
	return p
}

func TestKernelBuilders(t *testing.T) {
	k := NewKernel("k", 3)
	k.H(0).X(1).Y(2).Z(0).RX(0, 0.1).RY(1, 0.2).RZ(2, 0.3).
		CNOT(0, 1).CZ(1, 2).Toffoli(0, 1, 2).
		Measure(0).PrepZ(1).Barrier()
	c := k.Circuit()
	if c.GateCount() != 13 {
		t.Errorf("gates = %d, want 13", c.GateCount())
	}
}

func TestKernelRepeat(t *testing.T) {
	k := NewKernel("loop", 1).X(0).Repeat(3)
	if k.Circuit().GateCount() != 3 {
		t.Errorf("repeat not unrolled: %d", k.Circuit().GateCount())
	}
	if k.Repeat(0).Iterations != 1 {
		t.Error("repeat < 1 should clamp")
	}
}

func TestProgramFlatten(t *testing.T) {
	p := NewProgram("p", 2)
	p.AddKernel(NewKernel("a", 2).H(0))
	p.AddKernel(NewKernel("b", 2).CNOT(0, 1).Repeat(2))
	flat := p.Flatten()
	if flat.GateCount() != 3 {
		t.Errorf("flattened = %d gates, want 3", flat.GateCount())
	}
}

func TestAddKernelPanicsOnOversize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized kernel accepted")
		}
	}()
	NewProgram("p", 1).AddKernel(NewKernel("big", 2))
}

func TestCQASMOutputParses(t *testing.T) {
	text := bellProgram().CQASM()
	if !strings.Contains(text, ".entangle") {
		t.Errorf("kernel name missing:\n%s", text)
	}
	parsed, err := cqasm.Parse(text)
	if err != nil {
		t.Fatalf("emitted cQASM does not parse: %v\n%s", err, text)
	}
	flat, err := parsed.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if flat.GateCount() != 3 {
		t.Errorf("round-tripped gates = %d", flat.GateCount())
	}
}

func TestCQASMIterations(t *testing.T) {
	p := NewProgram("it", 1)
	p.AddKernel(NewKernel("spin", 1).X(0).Repeat(4))
	text := p.CQASM()
	if !strings.Contains(text, ".spin(4)") {
		t.Errorf("iterations missing:\n%s", text)
	}
}

func TestCompilePerfect(t *testing.T) {
	compiled, err := bellProgram().Compile(CompileOptions{Mode: PerfectQubits})
	if err != nil {
		t.Fatal(err)
	}
	if compiled.EQASM != nil {
		t.Error("perfect mode should not emit eQASM")
	}
	if compiled.Schedule == nil || compiled.Schedule.Makespan == 0 {
		t.Error("no schedule produced")
	}
	if compiled.CQASM == "" {
		t.Error("no cQASM artefact")
	}
}

func TestCompileRealistic(t *testing.T) {
	compiled, err := bellProgram().Compile(CompileOptions{
		Mode:     RealisticQubits,
		Platform: compiler.Superconducting(),
		Optimize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if compiled.EQASM == nil {
		t.Fatal("realistic mode must emit eQASM")
	}
	if compiled.MapResult == nil {
		t.Error("topology platform should produce mapping stats")
	}
	// All gates must be platform primitives after decomposition.
	for _, g := range compiled.Circuit.Gates {
		if g.IsUnitary() && !compiler.Superconducting().Supports(g.Name) {
			t.Errorf("non-primitive gate %q survived", g.Name)
		}
	}
	// eQASM must produce a valid timeline.
	if _, err := compiled.EQASM.Timeline(); err != nil {
		t.Errorf("invalid eQASM: %v", err)
	}
}

func TestCompileOptimizeShrinks(t *testing.T) {
	p := NewProgram("redundant", 1)
	p.AddKernel(NewKernel("k", 1).H(0).H(0).X(0).X(0))
	plain, err := p.Compile(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := p.Compile(CompileOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Circuit.Gates) >= len(plain.Circuit.Gates) {
		t.Errorf("optimisation did not shrink: %d vs %d",
			len(opt.Circuit.Gates), len(plain.Circuit.Gates))
	}
}

func TestQubitModeString(t *testing.T) {
	if PerfectQubits.String() != "perfect" || RealisticQubits.String() != "realistic" {
		t.Error("mode strings wrong")
	}
}

func TestGateGenericBuilder(t *testing.T) {
	k := NewKernel("g", 2)
	k.Gate("cphase", []int{0, 1}, 0.5)
	gates := k.Circuit().Gates
	if len(gates) != 1 || gates[0].Name != "cphase" {
		t.Errorf("generic gate failed: %v", gates)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("my kernel-1!"); got != "my_kernel_1_" {
		t.Errorf("sanitize = %q", got)
	}
	if sanitize("") != "kernel" {
		t.Error("empty name")
	}
}
