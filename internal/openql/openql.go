// Package openql implements the programming layer of the stack (§2.4): a
// builder API in the style of the OpenQL language, producing kernels of
// quantum gates wrapped in classical control, and a compiler entry point
// that lowers programs through decomposition, optimisation, mapping and
// scheduling to cQASM — and on to eQASM for hardware-style targets.
// "The OpenQL compiler translates the program to a common assembly
// language, called cQASM … in a subsequent step the compiler can convert
// the cQASM to generate the eQASM."
package openql

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/compiler"
	"repro/internal/cqasm"
	"repro/internal/eqasm"
	"repro/internal/target"
)

// QubitMode selects the qubit abstraction of §2.1.
type QubitMode int

// Qubit modes.
const (
	// PerfectQubits have no decoherence and no errors; connectivity
	// constraints are waived unless a topology is forced.
	PerfectQubits QubitMode = iota
	// RealisticQubits carry error models and the platform's topology and
	// timing constraints.
	RealisticQubits
)

func (m QubitMode) String() string {
	if m == RealisticQubits {
		return "realistic"
	}
	return "perfect"
}

// Kernel is a named block of quantum logic, optionally iterated — the
// unit the host offloads to the accelerator.
type Kernel struct {
	Name       string
	Iterations int
	c          *circuit.Circuit
}

// NewKernel returns an empty kernel over n qubits.
func NewKernel(name string, n int) *Kernel {
	return &Kernel{Name: name, Iterations: 1, c: circuit.New(name, n)}
}

// Gate appends a gate by registry name.
func (k *Kernel) Gate(name string, qubits []int, params ...float64) *Kernel {
	k.c.Add(name, qubits, params...)
	return k
}

// Convenience single-gate builders mirroring the OpenQL API.

// H appends a Hadamard.
func (k *Kernel) H(q int) *Kernel { k.c.H(q); return k }

// X appends a Pauli-X.
func (k *Kernel) X(q int) *Kernel { k.c.X(q); return k }

// Y appends a Pauli-Y.
func (k *Kernel) Y(q int) *Kernel { k.c.Y(q); return k }

// Z appends a Pauli-Z.
func (k *Kernel) Z(q int) *Kernel { k.c.Z(q); return k }

// RX appends an X rotation.
func (k *Kernel) RX(q int, theta float64) *Kernel { k.c.RX(q, theta); return k }

// RY appends a Y rotation.
func (k *Kernel) RY(q int, theta float64) *Kernel { k.c.RY(q, theta); return k }

// RZ appends a Z rotation.
func (k *Kernel) RZ(q int, theta float64) *Kernel { k.c.RZ(q, theta); return k }

// CNOT appends a controlled-NOT.
func (k *Kernel) CNOT(control, target int) *Kernel { k.c.CNOT(control, target); return k }

// CZ appends a controlled-Z.
func (k *Kernel) CZ(a, b int) *Kernel { k.c.CZ(a, b); return k }

// Toffoli appends a doubly-controlled NOT.
func (k *Kernel) Toffoli(a, b, target int) *Kernel { k.c.Toffoli(a, b, target); return k }

// Measure appends a Z measurement.
func (k *Kernel) Measure(q int) *Kernel { k.c.Measure(q); return k }

// MeasureAll measures every qubit.
func (k *Kernel) MeasureAll() *Kernel { k.c.MeasureAll(); return k }

// PrepZ resets a qubit to |0>.
func (k *Kernel) PrepZ(q int) *Kernel { k.c.PrepZ(q); return k }

// Barrier appends a scheduling barrier.
func (k *Kernel) Barrier() *Kernel { k.c.Barrier(); return k }

// Repeat sets the kernel's iteration count (classical loop construct).
func (k *Kernel) Repeat(n int) *Kernel {
	if n < 1 {
		n = 1
	}
	k.Iterations = n
	return k
}

// Circuit returns a copy of the kernel's gate list as a flat circuit,
// iterations unrolled.
func (k *Kernel) Circuit() *circuit.Circuit {
	out := circuit.New(k.Name, k.c.NumQubits)
	for i := 0; i < k.Iterations; i++ {
		out.Append(k.c)
	}
	return out
}

// KernelFromCircuit wraps a copy of an existing flat circuit as a kernel,
// so gate sequences produced outside the builder API (e.g. parsed from
// cQASM text) can enter the compiler pipeline.
func KernelFromCircuit(name string, c *circuit.Circuit) *Kernel {
	cc := circuit.New(name, c.NumQubits)
	cc.Append(c)
	return &Kernel{Name: name, Iterations: 1, c: cc}
}

// Program is an OpenQL program: an ordered list of kernels over a shared
// qubit register.
type Program struct {
	Name      string
	NumQubits int
	Kernels   []*Kernel
}

// NewProgram returns an empty program.
func NewProgram(name string, n int) *Program {
	return &Program{Name: name, NumQubits: n}
}

// AddKernel appends a kernel; its qubit count must not exceed the
// program's.
func (p *Program) AddKernel(k *Kernel) *Program {
	if k.c.NumQubits > p.NumQubits {
		panic(fmt.Sprintf("openql: kernel %q uses %d qubits, program has %d",
			k.Name, k.c.NumQubits, p.NumQubits))
	}
	p.Kernels = append(p.Kernels, k)
	return p
}

// ProgramFromCircuit lifts a flat circuit into a single-kernel program —
// the entry point for cQASM text submitted to the service layer.
func ProgramFromCircuit(name string, c *circuit.Circuit) *Program {
	p := NewProgram(name, c.NumQubits)
	p.AddKernel(KernelFromCircuit(name, c))
	return p
}

// Flatten lowers the program to one circuit (kernels concatenated,
// iterations unrolled).
func (p *Program) Flatten() *circuit.Circuit {
	out := circuit.New(p.Name, p.NumQubits)
	for _, k := range p.Kernels {
		out.Append(k.Circuit())
	}
	return out
}

// CQASM renders the program as cQASM with one subcircuit per kernel,
// iteration counts preserved.
func (p *Program) CQASM() string {
	prog := &cqasm.Program{Version: "1.0", NumQubits: p.NumQubits}
	for _, k := range p.Kernels {
		sub := cqasm.Subcircuit{Name: sanitize(k.Name), Iterations: k.Iterations}
		for _, g := range k.c.Gates {
			sub.Bundles = append(sub.Bundles, cqasm.Bundle{Gates: []circuit.Gate{g.Clone()}})
		}
		prog.Subcircuits = append(prog.Subcircuits, sub)
	}
	return cqasm.Print(prog)
}

func sanitize(s string) string {
	out := []rune(s)
	for i, r := range out {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			out[i] = '_'
		}
	}
	if len(out) == 0 {
		return "kernel"
	}
	return string(out)
}

// CompileOptions configures the compiler pipeline.
type CompileOptions struct {
	Mode QubitMode
	// Target is the device to compile for; when set it takes precedence
	// over Platform (the compiler views it through compiler.PlatformFor).
	// The device's calibration table is what noise-aware passes read.
	Target   *target.Device
	Platform *compiler.Platform
	// Optimize selects the default pass pipeline with the peephole
	// optimiser included; ignored when Passes is set.
	Optimize bool
	// Policy selects ASAP or ALAP scheduling.
	Policy compiler.Policy
	// Mapping configures placement and routing (used when the platform
	// has a topology).
	Mapping compiler.MapOptions
	// Passes is a comma-separated pass spec (e.g.
	// "decompose,optimize,map,lower-swaps,optimize-lowered,schedule,assemble")
	// overriding the default pipeline; names must be registered with the
	// compiler pass registry. The spec must include "schedule" (execution
	// needs a timed circuit) and, on realistic targets, "assemble".
	Passes string
}

// Compiled is the full output of the compiler: every intermediate
// artefact of Fig 4's flow.
type Compiled struct {
	Mode      QubitMode
	Circuit   *circuit.Circuit    // final gate-level circuit (mapped if applicable)
	CQASM     string              // cQASM of the final circuit
	Schedule  *compiler.Schedule  // timed bundles
	EQASM     *eqasm.Program      // executable assembly (realistic targets)
	MapResult *compiler.MapResult // routing statistics, nil for all-to-all
	// Report records the executed pass pipeline with per-pass wall time,
	// gate count, depth and added SWAPs.
	Report *compiler.CompileReport
}

// assembleEQASM is the Assembler this layer injects into the pass
// pipeline: the compiler's "assemble" pass delegates to it on realistic
// targets (eQASM assembly sits above the compiler in the import graph).
func assembleEQASM(ctx *compiler.PassContext) error {
	prog, err := eqasm.Assemble(ctx.Schedule, ctx.Platform)
	if err != nil {
		return err
	}
	prog.Name = ctx.ProgramName
	ctx.Assembled = prog
	return nil
}

// Compile lowers the program for the given target by running a compiler
// pass pipeline: by default decompose to the platform's primitives,
// optionally optimise, map to the topology, lower routing SWAPs,
// schedule, and (for realistic targets) assemble eQASM. Options.Passes
// selects a custom pipeline from the registered passes instead.
func (p *Program) Compile(opts CompileOptions) (*Compiled, error) {
	if opts.Target != nil {
		opts.Platform = compiler.PlatformFor(opts.Target)
	}
	if opts.Platform == nil {
		opts.Platform = compiler.Perfect(p.NumQubits)
	}
	spec := opts.Passes
	if spec == "" {
		spec = compiler.DefaultPassSpec(opts.Optimize)
	}
	pipeline, err := compiler.NewPipeline(spec)
	if err != nil {
		return nil, err
	}
	ctx := &compiler.PassContext{
		Platform:    opts.Platform,
		Mapping:     opts.Mapping,
		Policy:      opts.Policy,
		Assemble:    opts.Mode == RealisticQubits,
		Assembler:   assembleEQASM,
		ProgramName: p.Name,
		Circuit:     p.Flatten(),
	}
	report, err := pipeline.Run(ctx)
	if err != nil {
		return nil, err
	}
	if ctx.Schedule == nil {
		return nil, fmt.Errorf("openql: pass spec %q produced no schedule; include the \"schedule\" pass", spec)
	}
	out := &Compiled{
		Mode:      opts.Mode,
		Circuit:   ctx.Circuit,
		CQASM:     cqasm.PrintCircuit(ctx.Circuit),
		Schedule:  ctx.Schedule,
		MapResult: ctx.MapResult,
		Report:    report,
	}
	if opts.Mode == RealisticQubits {
		prog, _ := ctx.Assembled.(*eqasm.Program)
		if prog == nil {
			return nil, fmt.Errorf("openql: pass spec %q produced no eQASM for a realistic target; include the \"assemble\" pass", spec)
		}
		out.EQASM = prog
	}
	return out, nil
}
