// Package openql implements the programming layer of the stack (§2.4): a
// builder API in the style of the OpenQL language, producing kernels of
// quantum gates wrapped in classical control, and a compiler entry point
// that lowers programs through decomposition, optimisation, mapping and
// scheduling to cQASM — and on to eQASM for hardware-style targets.
// "The OpenQL compiler translates the program to a common assembly
// language, called cQASM … in a subsequent step the compiler can convert
// the cQASM to generate the eQASM."
package openql

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sync"

	"repro/internal/circuit"
	"repro/internal/compiler"
	"repro/internal/cqasm"
	"repro/internal/eqasm"
	"repro/internal/target"
)

// QubitMode selects the qubit abstraction of §2.1.
type QubitMode int

// Qubit modes.
const (
	// PerfectQubits have no decoherence and no errors; connectivity
	// constraints are waived unless a topology is forced.
	PerfectQubits QubitMode = iota
	// RealisticQubits carry error models and the platform's topology and
	// timing constraints.
	RealisticQubits
)

func (m QubitMode) String() string {
	if m == RealisticQubits {
		return "realistic"
	}
	return "perfect"
}

// Kernel is a named block of quantum logic, optionally iterated — the
// unit the host offloads to the accelerator.
type Kernel struct {
	Name       string
	Iterations int
	c          *circuit.Circuit
}

// NewKernel returns an empty kernel over n qubits.
func NewKernel(name string, n int) *Kernel {
	return &Kernel{Name: name, Iterations: 1, c: circuit.New(name, n)}
}

// Gate appends a gate by registry name.
func (k *Kernel) Gate(name string, qubits []int, params ...float64) *Kernel {
	k.c.Add(name, qubits, params...)
	return k
}

// GateExpr appends a gate whose parameter slots are given as expressions
// over named symbols (circuit.Sym / circuit.Lit) — the entry point for
// parametric kernels that compile once and bind per parameter point.
func (k *Kernel) GateExpr(name string, qubits []int, exprs ...*circuit.ParamExpr) *Kernel {
	k.c.AddExpr(name, qubits, exprs...)
	return k
}

// RXExpr appends an X rotation with a symbolic angle.
func (k *Kernel) RXExpr(q int, theta *circuit.ParamExpr) *Kernel { k.c.RXExpr(q, theta); return k }

// RYExpr appends a Y rotation with a symbolic angle.
func (k *Kernel) RYExpr(q int, theta *circuit.ParamExpr) *Kernel { k.c.RYExpr(q, theta); return k }

// RZExpr appends a Z rotation with a symbolic angle.
func (k *Kernel) RZExpr(q int, theta *circuit.ParamExpr) *Kernel { k.c.RZExpr(q, theta); return k }

// CPhaseExpr appends a controlled phase with a symbolic angle.
func (k *Kernel) CPhaseExpr(a, b int, theta *circuit.ParamExpr) *Kernel {
	k.c.CPhaseExpr(a, b, theta)
	return k
}

// Convenience single-gate builders mirroring the OpenQL API.

// H appends a Hadamard.
func (k *Kernel) H(q int) *Kernel { k.c.H(q); return k }

// X appends a Pauli-X.
func (k *Kernel) X(q int) *Kernel { k.c.X(q); return k }

// Y appends a Pauli-Y.
func (k *Kernel) Y(q int) *Kernel { k.c.Y(q); return k }

// Z appends a Pauli-Z.
func (k *Kernel) Z(q int) *Kernel { k.c.Z(q); return k }

// RX appends an X rotation.
func (k *Kernel) RX(q int, theta float64) *Kernel { k.c.RX(q, theta); return k }

// RY appends a Y rotation.
func (k *Kernel) RY(q int, theta float64) *Kernel { k.c.RY(q, theta); return k }

// RZ appends a Z rotation.
func (k *Kernel) RZ(q int, theta float64) *Kernel { k.c.RZ(q, theta); return k }

// CNOT appends a controlled-NOT.
func (k *Kernel) CNOT(control, target int) *Kernel { k.c.CNOT(control, target); return k }

// CZ appends a controlled-Z.
func (k *Kernel) CZ(a, b int) *Kernel { k.c.CZ(a, b); return k }

// Toffoli appends a doubly-controlled NOT.
func (k *Kernel) Toffoli(a, b, target int) *Kernel { k.c.Toffoli(a, b, target); return k }

// Measure appends a Z measurement.
func (k *Kernel) Measure(q int) *Kernel { k.c.Measure(q); return k }

// MeasureAll measures every qubit.
func (k *Kernel) MeasureAll() *Kernel { k.c.MeasureAll(); return k }

// PrepZ resets a qubit to |0>.
func (k *Kernel) PrepZ(q int) *Kernel { k.c.PrepZ(q); return k }

// Barrier appends a scheduling barrier.
func (k *Kernel) Barrier() *Kernel { k.c.Barrier(); return k }

// Repeat sets the kernel's iteration count (classical loop construct).
func (k *Kernel) Repeat(n int) *Kernel {
	if n < 1 {
		n = 1
	}
	k.Iterations = n
	return k
}

// Circuit returns a copy of the kernel's gate list as a flat circuit,
// iterations unrolled.
func (k *Kernel) Circuit() *circuit.Circuit {
	out := circuit.New(k.Name, k.c.NumQubits)
	for i := 0; i < k.Iterations; i++ {
		out.Append(k.c)
	}
	return out
}

// ContentHash returns a stable hash of the kernel's unrolled gate stream
// over a register of programQubits — the canonical identity compile
// caches key kernels by, so the same gate sequence keys one entry
// whether it was built with the builder API, parsed from cQASM text, or
// embedded in differently-named programs. Kernel and program names are
// deliberately excluded; register size, gate order, operands, exact
// parameter bits, conditional bindings and the iteration count all enter
// the hash. The encoding is length-prefixed binary (no float formatting):
// hashing sits on the per-compile cache path and must stay far cheaper
// than the passes it short-circuits.
func (k *Kernel) ContentHash(programQubits int) string {
	h := sha256.New()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(uint64(programQubits))
	// Iterations are hashed by unrolling, matching Kernel.Circuit, so a
	// kernel repeated twice equals the same gates written out twice.
	for it := 0; it < k.Iterations; it++ {
		for _, g := range k.c.Gates {
			h.Write([]byte(g.Name))
			h.Write([]byte{0})
			word(uint64(len(g.Qubits)))
			for _, q := range g.Qubits {
				word(uint64(q))
			}
			word(uint64(len(g.Params)))
			for i, p := range g.Params {
				if g.Symbolic(i) {
					// Symbolic slots hash the expression's canonical form,
					// not the placeholder literal — every binding of one
					// ansatz therefore shares a single hash, which is what
					// lets all bindings share one entry in both cache
					// levels. The all-ones tag word (a NaN bit pattern no
					// real angle uses) keeps symbolic and literal slots
					// from ever colliding.
					word(^uint64(0))
					for _, w := range g.Exprs[i].HashWords() {
						word(w)
					}
				} else {
					word(math.Float64bits(p))
				}
			}
			if g.HasCond {
				word(1)
				word(uint64(g.CondBit))
			} else {
				word(0)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// KernelFromCircuit wraps a copy of an existing flat circuit as a kernel,
// so gate sequences produced outside the builder API (e.g. parsed from
// cQASM text) can enter the compiler pipeline.
func KernelFromCircuit(name string, c *circuit.Circuit) *Kernel {
	cc := circuit.New(name, c.NumQubits)
	cc.Append(c)
	return &Kernel{Name: name, Iterations: 1, c: cc}
}

// Program is an OpenQL program: an ordered list of kernels over a shared
// qubit register.
type Program struct {
	Name      string
	NumQubits int
	Kernels   []*Kernel
}

// NewProgram returns an empty program.
func NewProgram(name string, n int) *Program {
	return &Program{Name: name, NumQubits: n}
}

// AddKernel appends a kernel; its qubit count must not exceed the
// program's.
func (p *Program) AddKernel(k *Kernel) *Program {
	if k.c.NumQubits > p.NumQubits {
		panic(fmt.Sprintf("openql: kernel %q uses %d qubits, program has %d",
			k.Name, k.c.NumQubits, p.NumQubits))
	}
	p.Kernels = append(p.Kernels, k)
	return p
}

// ProgramFromCircuit lifts a flat circuit into a single-kernel program —
// the entry point for cQASM text submitted to the service layer.
func ProgramFromCircuit(name string, c *circuit.Circuit) *Program {
	p := NewProgram(name, c.NumQubits)
	p.AddKernel(KernelFromCircuit(name, c))
	return p
}

// Flatten lowers the program to one circuit (kernels concatenated,
// iterations unrolled).
func (p *Program) Flatten() *circuit.Circuit {
	out := circuit.New(p.Name, p.NumQubits)
	for _, k := range p.Kernels {
		out.Append(k.Circuit())
	}
	return out
}

// CQASM renders the program as cQASM with one subcircuit per kernel,
// iteration counts preserved.
func (p *Program) CQASM() string {
	prog := &cqasm.Program{Version: "1.0", NumQubits: p.NumQubits}
	for _, k := range p.Kernels {
		sub := cqasm.Subcircuit{Name: sanitize(k.Name), Iterations: k.Iterations}
		for _, g := range k.c.Gates {
			sub.Bundles = append(sub.Bundles, cqasm.Bundle{Gates: []circuit.Gate{g.Clone()}})
		}
		prog.Subcircuits = append(prog.Subcircuits, sub)
	}
	return cqasm.Print(prog)
}

func sanitize(s string) string {
	out := []rune(s)
	for i, r := range out {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			out[i] = '_'
		}
	}
	if len(out) == 0 {
		return "kernel"
	}
	return string(out)
}

// CompileOptions configures the compiler pipeline.
type CompileOptions struct {
	Mode QubitMode
	// Target is the device to compile for; when set it takes precedence
	// over Platform (the compiler views it through compiler.PlatformFor).
	// The device's calibration table is what noise-aware passes read.
	Target   *target.Device
	Platform *compiler.Platform
	// Optimize selects the default pass pipeline with the peephole
	// optimiser included; ignored when Passes is set.
	Optimize bool
	// Policy selects ASAP or ALAP scheduling.
	Policy compiler.Policy
	// Mapping configures placement and routing (used when the platform
	// has a topology).
	Mapping compiler.MapOptions
	// Passes is a comma-separated pass spec (e.g.
	// "decompose,optimize,map,lower-swaps,optimize-lowered,schedule,assemble")
	// overriding the default pipeline; names must be registered with the
	// compiler pass registry. The spec must include "schedule" (execution
	// needs a timed circuit) and, on realistic targets, "assemble".
	Passes string
	// Workers bounds the number of kernels compiled concurrently through
	// the pipeline's platform-generic prefix (decompose/optimize/
	// fold-rotations run per kernel; mapping and scheduling always run on
	// the concatenated program). 0 or 1 compiles serially. Parallel and
	// serial compilations produce identical artefacts.
	Workers int
	// CompileGate, when non-nil, additionally bounds kernel-compile
	// parallelism across concurrent Compile calls — the shared semaphore
	// a service sizes to its worker budget.
	CompileGate compiler.WorkerGate
	// PrefixCache, when non-nil, caches per-kernel prefix artefacts
	// across compilations (level 1 of the two-level compile cache): a
	// recompile that only changes mapping, scheduling or calibration
	// configuration re-runs just the variant suffix. Cached artefacts
	// are keyed by (gate-set hash, prefix spec, kernel text) — see
	// compiler.PrefixKey — and never change compiled output.
	PrefixCache compiler.PrefixCache
}

// Compiled is the full output of the compiler: every intermediate
// artefact of Fig 4's flow.
type Compiled struct {
	Mode      QubitMode
	Circuit   *circuit.Circuit    // final gate-level circuit (mapped if applicable)
	CQASM     string              // cQASM of the final circuit
	Schedule  *compiler.Schedule  // timed bundles
	EQASM     *eqasm.Program      // executable assembly (realistic targets)
	MapResult *compiler.MapResult // routing statistics, nil for all-to-all
	// Report records the executed pass pipeline with per-pass wall time,
	// gate count, depth and added SWAPs.
	Report *compiler.CompileReport
	// Binds, non-nil for parametric programs, maps symbolic parameters to
	// the artefact offsets they flow into; BindArtefact consumes it. A
	// nil table means the artefact is concrete and ready to execute.
	Binds *BindTable
}

// compilePrefix runs every kernel through the pipeline's platform-generic
// prefix — across workers when allowed, consulting the prefix cache when
// one is configured — and folds the per-kernel accounts into the report.
// The returned artefacts are in program order regardless of completion
// order, so concatenation is deterministic. Prefix rows are aggregated
// over the kernels that actually ran the passes; cache hits contribute
// nothing (their artefact was fetched, not compiled) and are counted in
// report.PrefixHits instead.
func (p *Program) compilePrefix(prefix *compiler.Pipeline, opts *CompileOptions, report *compiler.CompileReport) ([]*compiler.PrefixArtefact, error) {
	n := len(p.Kernels)
	arts := make([]*compiler.PrefixArtefact, n)
	hits := make([]bool, n)
	errs := make([]error, n)

	gateHash := ""
	if opts.PrefixCache != nil {
		gateHash = opts.Platform.GateSetHash()
	}
	one := func(i int) {
		k := p.Kernels[i]
		build := func() (*compiler.PrefixArtefact, error) {
			// The gate is held only while a kernel actually compiles —
			// never while waiting on another in-flight computation — so
			// concurrent gated compilations cannot deadlock.
			opts.CompileGate.Acquire()
			defer opts.CompileGate.Release()
			// Unroll straight into the program-width circuit: one gate
			// clone per iteration, no intermediate kernel-width copy.
			kc := circuit.New(k.Name, p.NumQubits)
			for it := 0; it < k.Iterations; it++ {
				kc.Append(k.c)
			}
			ctx := &compiler.PassContext{
				Platform:    opts.Platform,
				ProgramName: p.Name,
				Circuit:     kc,
			}
			rep, err := prefix.Run(ctx)
			if err != nil {
				return nil, err
			}
			return &compiler.PrefixArtefact{Circuit: ctx.Circuit, Passes: rep.Passes}, nil
		}
		if opts.PrefixCache == nil {
			arts[i], errs[i] = build()
			return
		}
		key := compiler.PrefixKey(gateHash, prefix.Spec, k.ContentHash(p.NumQubits))
		arts[i], hits[i], errs[i] = opts.PrefixCache.GetOrCompute(key, build)
	}

	workers := opts.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		workers = 1
		for i := range p.Kernels {
			one(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					one(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	report.PrefixSpec = prefix.Spec
	report.CompileWorkers = workers
	agg := make([]compiler.PassMetrics, 0, prefix.Len())
	for i, a := range arts {
		kc := compiler.KernelCompile{Kernel: p.Kernels[i].Name, PrefixCached: hits[i]}
		if hits[i] {
			report.PrefixHits++
		} else {
			kc.Passes = a.Passes
			for j, m := range a.Passes {
				kc.WallNs += m.WallNs
				if j == len(agg) {
					agg = append(agg, compiler.PassMetrics{Pass: m.Pass})
				}
				agg[j].WallNs += m.WallNs
				agg[j].GatesBefore += m.GatesBefore
				agg[j].GatesAfter += m.GatesAfter
				agg[j].DepthBefore += m.DepthBefore
				agg[j].DepthAfter += m.DepthAfter
			}
		}
		report.Kernels = append(report.Kernels, kc)
	}
	report.Passes = append(report.Passes, agg...)
	for _, m := range agg {
		report.TotalNs += m.WallNs
	}
	return arts, nil
}

// assembleEQASM is the Assembler this layer injects into the pass
// pipeline: the compiler's "assemble" pass delegates to it on realistic
// targets (eQASM assembly sits above the compiler in the import graph).
func assembleEQASM(ctx *compiler.PassContext) error {
	prog, err := eqasm.Assemble(ctx.Schedule, ctx.Platform)
	if err != nil {
		return err
	}
	prog.Name = ctx.ProgramName
	ctx.Assembled = prog
	return nil
}

// Compile lowers the program for the given target by running a compiler
// pass pipeline: by default decompose to the platform's primitives,
// optionally optimise, map to the topology, lower routing SWAPs,
// schedule, and (for realistic targets) assemble eQASM. Options.Passes
// selects a custom pipeline from the registered passes instead.
//
// Compilation is two-level: the pipeline's platform-generic prefix
// (decompose, optimize, fold-rotations) runs per kernel — concurrently
// when Options.Workers allows, consulting Options.PrefixCache when one
// is supplied — and the per-kernel artefacts are concatenated in program
// order before the variant suffix (mapping, scheduling, assembly) runs
// over the whole program. Kernel boundaries are therefore optimisation
// barriers: the peephole passes never merge gates across kernels, which
// both matches the kernels' role as separately-offloaded units of
// classical control and makes every kernel's prefix artefact reusable by
// any program embedding the same kernel.
func (p *Program) Compile(opts CompileOptions) (*Compiled, error) {
	if opts.Target != nil {
		opts.Platform = compiler.PlatformFor(opts.Target)
	}
	if opts.Platform == nil {
		opts.Platform = compiler.Perfect(p.NumQubits)
	}
	spec := opts.Passes
	if spec == "" {
		spec = compiler.DefaultPassSpec(opts.Optimize)
	}
	pipeline, err := compiler.NewPipeline(spec)
	if err != nil {
		return nil, err
	}
	prefix, suffix := pipeline.Split()

	report := &compiler.CompileReport{PassSpec: pipeline.Spec}
	var full *circuit.Circuit
	if prefix.Len() == 0 || len(p.Kernels) == 0 {
		// No generic prefix (or nothing to split): one-shot compile of
		// the flattened program through the whole pipeline.
		full = p.Flatten()
		suffix = pipeline
	} else {
		arts, err := p.compilePrefix(prefix, &opts, report)
		if err != nil {
			return nil, err
		}
		full = circuit.New(p.Name, p.NumQubits)
		for _, a := range arts {
			full.Append(a.Circuit)
		}
	}
	ctx := &compiler.PassContext{
		Platform:    opts.Platform,
		Mapping:     opts.Mapping,
		Policy:      opts.Policy,
		Assemble:    opts.Mode == RealisticQubits,
		Assembler:   assembleEQASM,
		ProgramName: p.Name,
		Circuit:     full,
	}
	sufReport, err := suffix.Run(ctx)
	if err != nil {
		return nil, err
	}
	report.Passes = append(report.Passes, sufReport.Passes...)
	report.TotalNs += sufReport.TotalNs
	if ctx.Schedule == nil {
		return nil, fmt.Errorf("openql: pass spec %q produced no schedule; include the \"schedule\" pass", spec)
	}
	out := &Compiled{
		Mode:      opts.Mode,
		Circuit:   ctx.Circuit,
		CQASM:     cqasm.PrintCircuit(ctx.Circuit),
		Schedule:  ctx.Schedule,
		MapResult: ctx.MapResult,
		Report:    report,
	}
	if opts.Mode == RealisticQubits {
		prog, _ := ctx.Assembled.(*eqasm.Program)
		if prog == nil {
			return nil, fmt.Errorf("openql: pass spec %q produced no eQASM for a realistic target; include the \"assemble\" pass", spec)
		}
		out.EQASM = prog
	}
	out.Binds = newBindTable(out)
	return out, nil
}
