package openql_test

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/openql"
	"repro/internal/target"
)

// buildAnsatz builds a QAOA-flavoured program with mixed symbolic/literal
// rotation chains. When lit is nil the angles are the symbolic expressions
// (2γ_l on the cost layer, β_l on the mixer); otherwise they are the
// literal values from lit, so the same construction yields the
// bind-then-compile reference program.
func buildAnsatz(nq, layers int, lit map[string]float64) *openql.Program {
	angle := func(k *openql.Kernel, name string, q int, sym string, coeff float64) {
		if lit == nil {
			k.GateExpr(name, []int{q}, circuit.Sym(sym).Scale(coeff))
		} else {
			k.Gate(name, []int{q}, coeff*lit[sym])
		}
	}
	p := openql.NewProgram("ansatz", nq)
	prep := openql.NewKernel("prep", nq)
	for q := 0; q < nq; q++ {
		prep.H(q)
	}
	p.AddKernel(prep)
	for l := 0; l < layers; l++ {
		k := openql.NewKernel(fmt.Sprintf("layer%d", l), nq)
		gamma := fmt.Sprintf("gamma%d", l)
		beta := fmt.Sprintf("beta%d", l)
		for q := 0; q < nq; q++ {
			// Mixed chain: symbolic rz, a literal rz that fold-rotations
			// must absorb into the symbolic sum, then a CNOT-separated
			// symbolic rz that commutes back onto the control.
			angle(k, "rz", q, gamma, 2)
			k.RZ(q, 0.375)
			k.CNOT(q, (q+1)%nq)
			angle(k, "rz", (q+1)%nq, gamma, 1)
		}
		for q := 0; q < nq; q++ {
			angle(k, "rx", q, beta, 1)
		}
		p.AddKernel(k)
	}
	meas := openql.NewKernel("meas", nq)
	meas.MeasureAll()
	p.AddKernel(meas)
	return p
}

// TestBindArtefactMatchesRecompile: Compile().BindArtefact(θ) must equal
// Bind(θ)-then-Compile() gate for gate — across pass specs, devices,
// engines and randomized angle sets — and produce identical counts.
func TestBindArtefactMatchesRecompile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specs := []string{
		"", // default optimize pipeline
		"decompose,optimize,fold-rotations,map,lower-swaps,optimize-lowered,schedule,assemble",
		"decompose,fold-rotations,map,lower-swaps,schedule,assemble",
	}
	devices := []*target.Device{target.Perfect(5), target.Superconducting()}
	engines := []string{"optimized", "reference"}

	for _, dev := range devices {
		for _, spec := range specs {
			trials := 2
			if dev.Calibration != nil {
				// The realistic device simulates 17 noisy qubits per shot;
				// one angle set per spec keeps the matrix affordable.
				trials = 1
			}
			for trial := 0; trial < trials; trial++ {
				layers := 1 + trial%2
				vals := map[string]float64{}
				for l := 0; l < layers; l++ {
					vals[fmt.Sprintf("gamma%d", l)] = rng.Float64()*4 - 2
					vals[fmt.Sprintf("beta%d", l)] = rng.Float64()*4 - 2
				}
				name := fmt.Sprintf("%s/spec%q/trial%d", dev.Name, spec, trial)

				sym := buildAnsatz(5, layers, nil)
				ref := buildAnsatz(5, layers, vals)

				stack, err := core.NewStackForDevice(dev, 11)
				if err != nil {
					t.Fatal(err)
				}
				stack.Passes = spec
				cs, err := stack.Compile(sym)
				if err != nil {
					t.Fatalf("%s: symbolic compile: %v", name, err)
				}
				if !cs.IsParametric() {
					t.Fatalf("%s: symbolic compile lost its symbols", name)
				}
				bound, err := cs.BindArtefact(vals)
				if err != nil {
					t.Fatalf("%s: bind: %v", name, err)
				}
				if bound.IsParametric() || bound.Circuit.IsParametric() {
					t.Fatalf("%s: bound artefact still parametric", name)
				}
				cr, err := stack.Compile(ref)
				if err != nil {
					t.Fatalf("%s: reference compile: %v", name, err)
				}

				// Gate-for-gate artefact equality.
				if len(bound.Circuit.Gates) != len(cr.Circuit.Gates) {
					t.Fatalf("%s: gate counts differ: bound %d vs recompiled %d",
						name, len(bound.Circuit.Gates), len(cr.Circuit.Gates))
				}
				for i := range bound.Circuit.Gates {
					a, b := bound.Circuit.Gates[i], cr.Circuit.Gates[i]
					if a.Name != b.Name || !reflect.DeepEqual(a.Qubits, b.Qubits) || len(a.Params) != len(b.Params) {
						t.Fatalf("%s: gate %d differs: %v vs %v", name, i, a, b)
					}
					for k := range a.Params {
						if math.Abs(a.Params[k]-b.Params[k]) > 1e-9 {
							t.Fatalf("%s: gate %d param %d: %v vs %v", name, i, k, a.Params[k], b.Params[k])
						}
					}
				}
				if (bound.EQASM == nil) != (cr.EQASM == nil) {
					t.Fatalf("%s: eQASM presence differs", name)
				}
				if bound.EQASM != nil && bound.EQASM.String() != cr.EQASM.String() {
					t.Fatalf("%s: eQASM differs:\nbound:\n%s\nrecompiled:\n%s",
						name, bound.EQASM.String(), cr.EQASM.String())
				}

				// Counts equality under the same seed, per engine. The
				// realistic runs are per-shot 17-qubit trajectory sims, so
				// they get few shots and one engine.
				shots := 256
				engs := engines
				if dev.Calibration != nil {
					shots = 8
					engs = engines[:1]
				}
				for _, eng := range engs {
					stack.Engine = eng
					ra, err := stack.RunCompiled(bound, 5, shots, 1234)
					if err != nil {
						t.Fatalf("%s/%s: run bound: %v", name, eng, err)
					}
					rb, err := stack.RunCompiled(cr, 5, shots, 1234)
					if err != nil {
						t.Fatalf("%s/%s: run recompiled: %v", name, eng, err)
					}
					if !reflect.DeepEqual(ra.Result.Counts, rb.Result.Counts) {
						t.Fatalf("%s/%s: counts differ:\nbound:      %v\nrecompiled: %v",
							name, eng, ra.Result.Counts, rb.Result.Counts)
					}
				}
				stack.Engine = ""
			}
		}
	}
}

// TestBindArtefactValidation: strict symbol checking and immutability of
// the shared symbolic artefact.
func TestBindArtefactValidation(t *testing.T) {
	sym := buildAnsatz(3, 1, nil)
	stack, err := core.NewStackForDevice(target.Perfect(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := stack.Compile(sym)
	if err != nil {
		t.Fatal(err)
	}
	if got := cs.Symbols(); !reflect.DeepEqual(got, []string{"beta0", "gamma0"}) {
		t.Fatalf("Symbols = %v", got)
	}
	if _, err := cs.BindArtefact(map[string]float64{"gamma0": 1}); err == nil {
		t.Fatal("missing symbol must fail")
	}
	if _, err := cs.BindArtefact(map[string]float64{"gamma0": 1, "beta0": 2, "nope": 3}); err == nil {
		t.Fatal("unknown symbol must fail")
	}
	// Unbound execution is rejected.
	if _, err := stack.RunCompiled(cs, 3, 8, 1); err == nil {
		t.Fatal("executing an unbound artefact must fail")
	}
	before := cs.Circuit.String()
	b1, err := cs.BindArtefact(map[string]float64{"gamma0": 0.7, "beta0": -0.3})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := cs.BindArtefact(map[string]float64{"gamma0": -1.1, "beta0": 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Circuit.String() != before {
		t.Fatal("BindArtefact mutated the shared symbolic artefact")
	}
	if b1.Circuit.String() == b2.Circuit.String() {
		t.Fatal("distinct bindings produced identical circuits")
	}
	// Non-parametric artefacts reject bindings but pass through empty ones.
	lit := buildAnsatz(3, 1, map[string]float64{"gamma0": 0.7, "beta0": -0.3})
	cl, err := stack.Compile(lit)
	if err != nil {
		t.Fatal(err)
	}
	if cl.IsParametric() {
		t.Fatal("literal program must not be parametric")
	}
	if _, err := cl.BindArtefact(map[string]float64{"x": 1}); err == nil {
		t.Fatal("binding a concrete artefact must fail")
	}
	if same, err := cl.BindArtefact(nil); err != nil || same != cl {
		t.Fatal("empty bind of a concrete artefact must be the identity")
	}
}

// TestSymbolicContentHashSharedAcrossBindings: the kernel content hash of
// a symbolic kernel is binding-independent and distinct from any literal
// instantiation, so every binding of one ansatz keys the same prefix and
// full-artefact cache entries.
func TestSymbolicContentHashSharedAcrossBindings(t *testing.T) {
	mk := func() *openql.Kernel {
		k := openql.NewKernel("k", 2)
		k.H(0).RZExpr(0, circuit.Sym("theta").Scale(2)).CNOT(0, 1)
		return k
	}
	h1 := mk().ContentHash(2)
	h2 := mk().ContentHash(2)
	if h1 != h2 {
		t.Fatal("symbolic hash must be deterministic")
	}
	lit := openql.NewKernel("k", 2)
	lit.H(0).RZ(0, 0).CNOT(0, 1)
	if lit.ContentHash(2) == h1 {
		t.Fatal("symbolic kernel must not collide with its placeholder literal form")
	}
	other := openql.NewKernel("k", 2)
	other.H(0).RZExpr(0, circuit.Sym("theta").Scale(3)).CNOT(0, 1)
	if other.ContentHash(2) == h1 {
		t.Fatal("different expressions must hash differently")
	}
}
