package qx

import (
	"fmt"
	"sort"
	"strings"
)

// Result aggregates the outcome of a multi-shot execution. The paper notes
// that quantum accelerators aggregate measurement statistics over multiple
// runs inside the accelerator itself; Result is that aggregate.
type Result struct {
	NumQubits int
	Shots     int
	// Counts maps a measured basis-state index to its occurrence count.
	Counts map[int]int
	// GateErrorsInjected counts stochastic Pauli errors inserted by the
	// noise model across all shots (diagnostic).
	GateErrorsInjected int
	// ElapsedNs is the measured wall time of the execution that produced
	// this result, and Batches the number of parallel shot batches it ran
	// as (1 for a serial run). Both are observability diagnostics set by
	// Simulator.Run/RunParallel — excluded from determinism contracts and
	// never part of result equality (compare Counts).
	ElapsedNs int64
	Batches   int
}

// Probability returns the empirical probability of basis state idx.
func (r *Result) Probability(idx int) float64 {
	if r.Shots == 0 {
		return 0
	}
	return float64(r.Counts[idx]) / float64(r.Shots)
}

// Top returns the k most frequent outcomes in descending order.
func (r *Result) Top(k int) []Outcome {
	out := make([]Outcome, 0, len(r.Counts))
	for idx, c := range r.Counts {
		out = append(out, Outcome{Index: idx, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Index < out[j].Index
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Best returns the most frequent outcome index.
func (r *Result) Best() int {
	best, bestCount := 0, -1
	for idx, c := range r.Counts {
		if c > bestCount || (c == bestCount && idx < best) {
			best, bestCount = idx, c
		}
	}
	return best
}

// Outcome is one (basis state, count) pair.
type Outcome struct {
	Index int
	Count int
}

// BitString renders idx as a binary string of width n with qubit 0 as the
// rightmost character (matching the amplitude-index convention).
func BitString(idx, n int) string {
	return fmt.Sprintf("%0*b", n, idx)
}

// Histogram renders the result as sorted "bitstring: count" lines.
func (r *Result) Histogram() string {
	var b strings.Builder
	for _, o := range r.Top(len(r.Counts)) {
		fmt.Fprintf(&b, "%s: %d (%.3f)\n", BitString(o.Index, r.NumQubits), o.Count, r.Probability(o.Index))
	}
	return b.String()
}
