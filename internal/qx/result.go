package qx

import (
	"fmt"
	"sort"
	"strings"
)

// Result aggregates the outcome of a multi-shot execution. The paper notes
// that quantum accelerators aggregate measurement statistics over multiple
// runs inside the accelerator itself; Result is that aggregate.
type Result struct {
	NumQubits int
	Shots     int
	// Counts maps a measured basis-state index to its occurrence count.
	Counts map[int]int
	// WideCounts replaces Counts on registers too wide for an int index
	// (more than 63 qubits — stabilizer-engine territory): keys are
	// bitstrings with qubit 0 as the rightmost character, exactly the
	// BitString rendering of narrow outcomes. Nil on narrow registers;
	// when non-nil, Counts is empty.
	WideCounts map[string]int
	// GateErrorsInjected counts stochastic Pauli errors inserted by the
	// noise model across all shots (diagnostic).
	GateErrorsInjected int
	// ElapsedNs is the measured wall time of the execution that produced
	// this result, and Batches the number of parallel shot batches it ran
	// as (1 for a serial run). Both are observability diagnostics set by
	// Simulator.Run/RunParallel — excluded from determinism contracts and
	// never part of result equality (compare Counts).
	ElapsedNs int64
	Batches   int
}

// Probability returns the empirical probability of basis state idx.
func (r *Result) Probability(idx int) float64 {
	if r.Shots == 0 {
		return 0
	}
	return float64(r.Counts[idx]) / float64(r.Shots)
}

// Count returns the occurrence count of the outcome rendered as a
// bitstring (qubit 0 rightmost), transparently reading Counts or
// WideCounts. It is the register-width-independent accessor.
func (r *Result) Count(bits string) int {
	if r.WideCounts != nil {
		return r.WideCounts[bits]
	}
	idx := 0
	for _, ch := range bits {
		idx <<= 1
		if ch == '1' {
			idx |= 1
		}
	}
	return r.Counts[idx]
}

// ProbabilityOf returns the empirical probability of the outcome
// rendered as a bitstring, on registers of any width.
func (r *Result) ProbabilityOf(bits string) float64 {
	if r.Shots == 0 {
		return 0
	}
	return float64(r.Count(bits)) / float64(r.Shots)
}

// Top returns the k most frequent outcomes in descending order.
func (r *Result) Top(k int) []Outcome {
	var out []Outcome
	if r.WideCounts != nil {
		out = make([]Outcome, 0, len(r.WideCounts))
		for bs, c := range r.WideCounts {
			out = append(out, Outcome{Bits: bs, Count: c})
		}
	} else {
		out = make([]Outcome, 0, len(r.Counts))
		for idx, c := range r.Counts {
			out = append(out, Outcome{Index: idx, Bits: BitString(idx, r.NumQubits), Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Bits < out[j].Bits
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// countWords tallies one outcome delivered as packed register words.
func (r *Result) countWords(words []uint64) {
	if r.WideCounts != nil {
		r.WideCounts[wordsBitString(words, r.NumQubits)]++
		return
	}
	r.Counts[int(words[0])]++
}

// countBits tallies one outcome delivered as a measured-bits map.
func (r *Result) countBits(bits map[int]int) {
	if r.WideCounts != nil {
		words := make([]uint64, (r.NumQubits+63)/64)
		//qlint:nondeterministic-ok order-independent: ORs disjoint bits into packed words; any visit order builds the same mask
		for q, b := range bits {
			if b == 1 {
				words[q>>6] |= 1 << (uint(q) & 63)
			}
		}
		r.WideCounts[wordsBitString(words, r.NumQubits)]++
		return
	}
	idx := 0
	//qlint:nondeterministic-ok order-independent: ORs disjoint bits into an index; any visit order builds the same mask
	for q, b := range bits {
		if b == 1 {
			idx |= 1 << uint(q)
		}
	}
	r.Counts[idx]++
}

// wordsBitString renders packed register words as an n-character
// bitstring with qubit 0 rightmost, matching BitString.
func wordsBitString(words []uint64, n int) string {
	buf := make([]byte, n)
	for q := 0; q < n; q++ {
		buf[n-1-q] = '0' + byte((words[q>>6]>>(uint(q)&63))&1)
	}
	return string(buf)
}

// Best returns the most frequent outcome index.
func (r *Result) Best() int {
	best, bestCount := 0, -1
	//qlint:nondeterministic-ok order-independent: strict count ordering with lowest-index tie-break yields one winner regardless of iteration order
	for idx, c := range r.Counts {
		if c > bestCount || (c == bestCount && idx < best) {
			best, bestCount = idx, c
		}
	}
	return best
}

// Outcome is one (basis state, count) pair. Index is meaningful only on
// registers of at most 63 qubits; Bits is always the bitstring
// rendering (qubit 0 rightmost).
type Outcome struct {
	Index int
	Bits  string
	Count int
}

// BitString renders idx as a binary string of width n with qubit 0 as the
// rightmost character (matching the amplitude-index convention).
func BitString(idx, n int) string {
	return fmt.Sprintf("%0*b", n, idx)
}

// Histogram renders the result as sorted "bitstring: count" lines.
func (r *Result) Histogram() string {
	var b strings.Builder
	n := len(r.Counts)
	if r.WideCounts != nil {
		n = len(r.WideCounts)
	}
	for _, o := range r.Top(n) {
		fmt.Fprintf(&b, "%s: %d (%.3f)\n", o.Bits, o.Count, r.ProbabilityOf(o.Bits))
	}
	return b.String()
}
