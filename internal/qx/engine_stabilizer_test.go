package qx

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/circuit"
)

// cliffordRandomCircuit mirrors richRandomCircuit but draws only from
// the Clifford group — every generator the tableau implements plus
// every rotation-snapping path of the classifier — so the stabilizer
// engine can be differentially tested against the dense engines on the
// full surface it accepts. withMeasure adds mid-circuit measurement,
// feed-forward and prep.
func cliffordRandomCircuit(n, depth int, rng *rand.Rand, withMeasure bool) *circuit.Circuit {
	c := circuit.New("clifford", n)
	q := func() int { return rng.Intn(n) }
	pair := func() (int, int) {
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		return a, b
	}
	quarter := func() float64 { return float64(rng.Intn(8)-4) * math.Pi / 2 }
	measured := -1
	for d := 0; d < depth; d++ {
		for k := 0; k < n; k++ {
			switch rng.Intn(18) {
			case 0:
				c.X(q())
			case 1:
				c.Y(q())
			case 2:
				c.Z(q())
			case 3:
				c.H(q())
			case 4:
				c.S(q())
			case 5:
				c.Sdag(q())
			case 6:
				c.Add([]string{"x90", "mx90", "y90", "my90"}[rng.Intn(4)], []int{q()})
			case 7:
				c.RX(q(), quarter())
			case 8:
				c.RY(q(), quarter())
			case 9:
				c.RZ(q(), quarter())
			case 10:
				c.Add("phase", []int{q()}, quarter())
			case 11:
				c.Add("u3", []int{q()}, quarter(), quarter(), quarter())
			case 12:
				a, b := pair()
				c.CNOT(a, b)
			case 13:
				a, b := pair()
				c.CZ(a, b)
			case 14:
				a, b := pair()
				c.SWAP(a, b)
			case 15:
				a, b := pair()
				c.Add([]string{"iswap", "iswapdag"}[rng.Intn(2)], []int{a, b})
			case 16:
				a, b := pair()
				if rng.Intn(2) == 0 {
					c.CPhase(a, b, float64(rng.Intn(2))*math.Pi)
				} else {
					c.Add("crz", []int{a, b}, float64(rng.Intn(4))*math.Pi)
				}
			case 17:
				c.I(q())
			}
		}
		if withMeasure && rng.Intn(3) == 0 {
			m := q()
			c.Measure(m)
			measured = m
		}
		if withMeasure && measured >= 0 && rng.Intn(3) == 0 {
			c.AddGate(circuit.Gate{Name: "x", Qubits: []int{q()}, HasCond: true, CondBit: measured})
		}
		if withMeasure && rng.Intn(5) == 0 {
			c.PrepZ(q())
		}
	}
	return c
}

// The tentpole contract: on randomized perfect Clifford circuits up to
// 12 qubits the stabilizer engine produces bit-identical seeded counts
// to both dense engines (the sampling path: one uniform draw per shot).
func TestStabilizerAgreesOnPerfectCliffordCircuits(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(seed)%10 // 3..12 qubits
		c := cliffordRandomCircuit(n, 5, rng, false)

		ra, err := NewWithEngine(seed+100, Reference()).Run(c, 400)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := NewWithEngine(seed+100, Optimized()).Run(c, 400)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewWithEngine(seed+100, Stabilizer()).Run(c, 400)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra.Counts, rs.Counts) {
			t.Fatalf("seed %d (n=%d): counts diverge:\nreference  %v\nstabilizer %v", seed, n, ra.Counts, rs.Counts)
		}
		if !reflect.DeepEqual(rb.Counts, rs.Counts) {
			t.Fatalf("seed %d (n=%d): counts diverge:\noptimized  %v\nstabilizer %v", seed, n, rb.Counts, rs.Counts)
		}
	}
}

// Same contract with mid-circuit measurement, feed-forward and resets —
// the snapshot-and-replay path.
func TestStabilizerAgreesWithMeasurement(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed + 50))
		n := 3 + int(seed)%8
		c := cliffordRandomCircuit(n, 4, rng, true)
		ra, err := NewWithEngine(seed, Optimized()).Run(c, 200)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewWithEngine(seed, Stabilizer()).Run(c, 200)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra.Counts, rs.Counts) {
			t.Fatalf("seed %d (n=%d): counts diverge:\noptimized  %v\nstabilizer %v", seed, n, ra.Counts, rs.Counts)
		}
	}
}

// And under Clifford-compatible noise: the stochastic Pauli-channel
// mirrors must consume the PRNG draw-for-draw like the dense channels.
func TestStabilizerAgreesOnNoisyCliffordCircuits(t *testing.T) {
	models := []*NoiseModel{
		Depolarizing(0.02),
		{T2: 3_000, GateTimeNs: 50, ReadoutError: 0.05}, // dephasing + readout, no T1
		{DepolarizingProb: 0.01, TwoQubitDepolarizingProb: 0.04, ReadoutError: 0.02},
	}
	for mi, noise := range models {
		if !noise.CliffordCompatible() {
			t.Fatalf("model %d unexpectedly Clifford-incompatible", mi)
		}
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(seed + 500))
			n := 3 + int(seed)%6
			c := cliffordRandomCircuit(n, 4, rng, seed%2 == 0)
			ra, err := NewNoisyWithEngine(seed, noise, Reference()).Run(c, 120)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := NewNoisyWithEngine(seed, noise, Stabilizer()).Run(c, 120)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ra.Counts, rs.Counts) {
				t.Fatalf("model %d seed %d (n=%d): counts diverge:\nreference  %v\nstabilizer %v",
					mi, seed, n, ra.Counts, rs.Counts)
			}
			if ra.GateErrorsInjected != rs.GateErrorsInjected {
				t.Fatalf("model %d seed %d: injected errors %d vs %d",
					mi, seed, ra.GateErrorsInjected, rs.GateErrorsInjected)
			}
		}
	}
}

// Auto dispatch, differentially proven: Clifford circuits route to the
// tableau and still match dense seeded counts; non-Clifford circuits
// route to dense with artefacts unchanged.
func TestAutoDispatch(t *testing.T) {
	auto := Auto().(Dispatcher)
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed + 300))
		cliff := cliffordRandomCircuit(4+int(seed)%5, 4, rng, seed%2 == 0)
		if got := auto.Dispatch(cliff, nil).Name(); got != EngineStabilizer {
			t.Fatalf("seed %d: Clifford circuit dispatched to %q", seed, got)
		}
		ra, err := NewWithEngine(seed, Optimized()).Run(cliff, 200)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewWithEngine(seed, Auto()).Run(cliff, 200)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra.Counts, rs.Counts) {
			t.Fatalf("seed %d: auto(clifford) counts diverge from optimized:\n%v\n%v", seed, ra.Counts, rs.Counts)
		}

		dense := richRandomCircuit(4, 4, rng, seed%2 == 0)
		dense.T(0) // guarantee non-Clifford
		if got := auto.Dispatch(dense, nil).Name(); got != EngineOptimized {
			t.Fatalf("seed %d: non-Clifford circuit dispatched to %q", seed, got)
		}
		rd, err := NewWithEngine(seed, Optimized()).Run(dense, 150)
		if err != nil {
			t.Fatal(err)
		}
		rad, err := NewWithEngine(seed, Auto()).Run(dense, 150)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rd.Counts, rad.Counts) {
			t.Fatalf("seed %d: auto(non-clifford) differs from optimized:\n%v\n%v", seed, rd.Counts, rad.Counts)
		}
	}

	// Noise steers dispatch too: amplitude damping forces the dense path
	// even on Clifford circuits; Pauli channels keep the tableau.
	ghz := circuit.GHZ(4)
	if got := auto.Dispatch(ghz, Superconducting()).Name(); got != EngineOptimized {
		t.Errorf("T1 noise model dispatched to %q, want optimized", got)
	}
	if got := auto.Dispatch(ghz, Depolarizing(0.01)).Name(); got != EngineStabilizer {
		t.Errorf("depolarizing model dispatched to %q, want stabilizer", got)
	}
}

// The stabilizer engine must reject what it cannot simulate, loudly and
// at submit time: non-Clifford gates and non-Clifford noise.
func TestStabilizerRejections(t *testing.T) {
	tq := circuit.New("t", 2).H(0).T(0)
	if _, err := NewWithEngine(1, Stabilizer()).Run(tq, 10); err == nil || !strings.Contains(err.Error(), "non-Clifford") {
		t.Errorf("T-gate circuit: err = %v, want non-Clifford rejection", err)
	}
	if _, err := NewWithEngine(1, Stabilizer()).RunState(tq); err == nil {
		t.Error("RunState accepted a T-gate circuit")
	}
	ghz := circuit.GHZ(3)
	if _, err := NewNoisyWithEngine(1, Superconducting(), Stabilizer()).Run(ghz, 10); err == nil || !strings.Contains(err.Error(), "amplitude-damping") {
		t.Errorf("T1 noise: err = %v, want amplitude-damping rejection", err)
	}
}

// RunState delegates to the dense engine under the cap (state-vector
// semantics preserved for small Clifford circuits) and refuses beyond it.
func TestStabilizerRunState(t *testing.T) {
	c := circuit.GHZ(3)
	sa, err := NewWithEngine(7, Optimized()).RunState(c)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewWithEngine(7, Stabilizer()).RunState(c)
	if err != nil {
		t.Fatal(err)
	}
	if f := sa.Fidelity(sb); math.Abs(f-1) > 1e-9 {
		t.Errorf("RunState fidelity %v", f)
	}
	if _, err := NewWithEngine(7, Stabilizer()).RunState(circuit.GHZ(maxStabStateQubits + 1)); err == nil {
		t.Error("RunState accepted a register beyond the dense cap")
	}
}

// Acceptance: a 100-qubit GHZ sample (2048 shots) completes in well
// under a second and lands exclusively on the two legal outcomes,
// roughly balanced.
func TestStabilizer100QubitGHZ(t *testing.T) {
	const n, shots = 100, 2048
	start := time.Now()
	res, err := NewWithEngine(11, Stabilizer()).Run(circuit.GHZ(n), shots)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("100-qubit GHZ took %v, want < 1s", elapsed)
	}
	if res.WideCounts == nil {
		t.Fatal("expected WideCounts on a 100-qubit register")
	}
	zeros, ones := strings.Repeat("0", n), strings.Repeat("1", n)
	if got := res.Count(zeros) + res.Count(ones); got != shots {
		t.Fatalf("GHZ outcomes outside {0^n, 1^n}: %d of %d legal\n%s", got, shots, res.Histogram())
	}
	if res.Count(zeros) < shots/4 || res.Count(ones) < shots/4 {
		t.Errorf("GHZ outcomes badly unbalanced: %d / %d", res.Count(zeros), res.Count(ones))
	}
}

// Wide registers must survive the parallel shot-batch merge.
func TestStabilizerRunParallelWide(t *testing.T) {
	const n, shots = 70, 800
	sim := NewWithEngine(5, Stabilizer())
	res, err := sim.RunParallel(circuit.GHZ(n), shots, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for bits, cnt := range res.WideCounts {
		if bits != strings.Repeat("0", n) && bits != strings.Repeat("1", n) {
			t.Errorf("impossible GHZ outcome %s", bits)
		}
		total += cnt
	}
	if total != shots || res.Shots != shots {
		t.Errorf("merged %d shots (Shots=%d), want %d", total, res.Shots, shots)
	}
}

// The explicit-measurement path must also work on wide registers,
// including feed-forward.
func TestStabilizerWideMeasured(t *testing.T) {
	const n = 66
	c := circuit.GHZ(n)
	for q := 0; q < n; q++ {
		c.Measure(q)
	}
	res, err := NewWithEngine(3, Stabilizer()).Run(c, 300)
	if err != nil {
		t.Fatal(err)
	}
	zeros, ones := strings.Repeat("0", n), strings.Repeat("1", n)
	if got := res.Count(zeros) + res.Count(ones); got != 300 {
		t.Fatalf("measured GHZ outside legal outcomes: %d of 300", got)
	}
}
