package qx

import (
	"repro/internal/circuit"
	"repro/internal/quantum"
)

// referenceEngine is the naive dense engine: every unitary gate
// materialises its matrix via Gate.Matrix() and is applied through the
// generic quantum.State paths, and sampling walks the distribution
// linearly. It preserves the original single-engine Simulator behaviour —
// with one deliberate semantic fix: the old Run applied readout error a
// second time over the whole register after explicit measure gates had
// already flipped their bits, so noisy measured circuits now draw fewer
// PRNG values per shot and seeded counts for those circuits differ from
// the pre-engine code. It serves as the baseline the optimized engine is
// differentially tested against.
type referenceEngine struct{}

// Name returns "reference".
func (referenceEngine) Name() string { return EngineReference }

// RunState executes the circuit once and returns the final state vector.
func (referenceEngine) RunState(c *circuit.Circuit, env *ExecEnv) (*quantum.State, error) {
	st := quantum.NewState(c.NumQubits)
	if _, _, err := refExecuteOnce(c, st, env); err != nil {
		return nil, err
	}
	return st, nil
}

// Run executes the circuit for the given number of shots.
func (referenceEngine) Run(c *circuit.Circuit, shots int, env *ExecEnv) (*Result, error) {
	res := &Result{NumQubits: c.NumQubits, Shots: shots, Counts: map[int]int{}}
	hasMeasure := circuitMeasures(c)
	noisy := env.noisy()

	// Perfect, measurement-free circuits are deterministic: execute the
	// unitary part once and sample the final distribution per shot. No
	// noise means no readout error, so no per-shot readout pass either.
	if !noisy && !hasMeasure {
		st := quantum.NewState(c.NumQubits)
		if _, _, err := refExecuteOnce(c, st, env); err != nil {
			return nil, err
		}
		for i := 0; i < shots; i++ {
			res.Counts[st.SampleIndex(env.Rng)]++
		}
		return res, nil
	}

	st := quantum.NewState(c.NumQubits)
	for i := 0; i < shots; i++ {
		st.Reset()
		bits, errs, err := refExecuteOnce(c, st, env)
		if err != nil {
			return nil, err
		}
		res.GateErrorsInjected += errs
		idx := 0
		if hasMeasure {
			// Readout error was already applied per measurement gate;
			// unmeasured qubits are never read out, so no register-wide
			// flip pass here.
			//qlint:nondeterministic-ok order-independent: ORs disjoint bits into an index; any visit order builds the same mask
			for q, b := range bits {
				if b == 1 {
					idx |= 1 << uint(q)
				}
			}
		} else {
			idx = st.MeasureAll(env.Rng)
			if noisy {
				idx = applyEnvReadoutError(env, idx, c.NumQubits)
			}
		}
		res.Counts[idx]++
	}
	return res, nil
}

// refExecuteOnce runs all gates on st, returning measured bits per qubit
// (latest measurement wins) and the number of injected errors.
func refExecuteOnce(c *circuit.Circuit, st *quantum.State, env *ExecEnv) (map[int]int, int, error) {
	bits := map[int]int{}
	injected := 0
	noisy := env.noisy()
	if env.Fusion && !noisy {
		for _, op := range fuseSingleQubitRuns(c.Gates) {
			if op.fused != nil {
				st.ApplyOne(*op.fused, op.fusedQubit)
				continue
			}
			if err := refApplyGate(op.gate, c, st, env, bits, &injected); err != nil {
				return nil, injected, err
			}
		}
		return bits, injected, nil
	}
	for _, g := range c.Gates {
		if err := refApplyGate(g, c, st, env, bits, &injected); err != nil {
			return nil, injected, err
		}
	}
	return bits, injected, nil
}

// refApplyGate executes one gate, including measurement, feed-forward and
// noise insertion.
func refApplyGate(g circuit.Gate, c *circuit.Circuit, st *quantum.State, env *ExecEnv, bits map[int]int, injected *int) error {
	noisy := env.noisy()
	switch g.Name {
	case circuit.OpMeasure:
		q := g.Qubits[0]
		b := st.MeasureQubit(q, env.Rng)
		if noisy {
			b = flipReadoutBit(env, b)
		}
		bits[q] = b
	case circuit.OpMeasureAll:
		for q := 0; q < c.NumQubits; q++ {
			b := st.MeasureQubit(q, env.Rng)
			if noisy {
				b = flipReadoutBit(env, b)
			}
			bits[q] = b
		}
	case circuit.OpPrepZ:
		q := g.Qubits[0]
		if st.MeasureQubit(q, env.Rng) == 1 {
			st.ApplyOne(quantum.X, q)
		}
	case circuit.OpBarrier, circuit.OpWait, circuit.OpDisplay:
		// No quantum effect; decoherence during explicit waits.
		if noisy && g.Name == circuit.OpWait && len(g.Params) > 0 {
			applyEnvWait(env, st, c.NumQubits, g.Params[0])
		}
	default:
		// Classically-controlled gates (feed-forward) fire only when the
		// referenced measurement bit is 1.
		if g.HasCond && bits[g.CondBit] != 1 {
			return nil
		}
		m, err := g.Matrix()
		if err != nil {
			return err
		}
		st.Apply(m, g.Qubits...)
		if noisy {
			*injected += applyEnvGateNoise(env, st, g.Qubits)
		}
	}
	return nil
}

// execOp is the unit the reference engine executes after gate fusion: a
// plain circuit gate, or a fused single-qubit unitary synthesized by the
// engine. Fused matrices live here as typed values rather than being
// smuggled through circuit.Gate.Params as table indices.
type execOp struct {
	gate       circuit.Gate
	fused      *quantum.Matrix // non-nil marks a synthesized fused unitary
	fusedQubit int             // target of the fused unitary
}

// fuseSingleQubitRuns merges consecutive single-qubit unitaries acting on
// the same qubit into one matrix. This is the gate-fusion optimisation
// benchmarked in the ablation suite; both engines build their fused ops
// through it so the products are bit-identical.
func fuseSingleQubitRuns(gates []circuit.Gate) []execOp {
	out := make([]execOp, 0, len(gates))
	i := 0
	for i < len(gates) {
		g := gates[i]
		if !g.IsUnitary() || len(g.Qubits) != 1 || g.HasCond {
			out = append(out, execOp{gate: g})
			i++
			continue
		}
		// Collect the run of single-qubit gates on this qubit.
		q := g.Qubits[0]
		m, _ := g.Matrix()
		j := i + 1
		for j < len(gates) {
			nx := gates[j]
			if !nx.IsUnitary() || len(nx.Qubits) != 1 || nx.Qubits[0] != q || nx.HasCond {
				break
			}
			nm, _ := nx.Matrix()
			m = nm.Mul(m)
			j++
		}
		if j == i+1 {
			out = append(out, execOp{gate: g})
		} else {
			fused := m
			out = append(out, execOp{fused: &fused, fusedQubit: q})
		}
		i = j
	}
	return out
}
