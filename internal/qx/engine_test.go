package qx

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/circuit"
)

// richRandomCircuit draws from the full gate set — every specialized
// kernel of the optimized engine plus generic, controlled and three-qubit
// gates — so the differential tests cover each lowering path. withMeasure
// adds mid-circuit measurement, feed-forward and prep.
func richRandomCircuit(n, depth int, rng *rand.Rand, withMeasure bool) *circuit.Circuit {
	c := circuit.New("rich", n)
	q := func() int { return rng.Intn(n) }
	pair := func() (int, int) {
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		return a, b
	}
	measured := -1
	for d := 0; d < depth; d++ {
		for k := 0; k < n; k++ {
			switch rng.Intn(16) {
			case 0:
				c.X(q())
			case 1:
				c.Y(q())
			case 2:
				c.Z(q())
			case 3:
				c.H(q())
			case 4:
				c.S(q())
			case 5:
				c.T(q())
			case 6:
				c.RZ(q(), rng.Float64()*2*math.Pi)
			case 7:
				c.RX(q(), rng.Float64()*2*math.Pi)
			case 8:
				c.Add("phase", []int{q()}, rng.Float64())
			case 9:
				a, b := pair()
				c.CNOT(a, b)
			case 10:
				a, b := pair()
				c.CZ(a, b)
			case 11:
				a, b := pair()
				c.CPhase(a, b, rng.Float64())
			case 12:
				a, b := pair()
				c.SWAP(a, b)
			case 13:
				a, b := pair()
				c.Add("crz", []int{a, b}, rng.Float64())
			case 14:
				if n >= 3 {
					a := rng.Perm(n)
					c.Toffoli(a[0], a[1], a[2])
				}
			case 15:
				c.I(q())
			}
		}
		if withMeasure && rng.Intn(3) == 0 {
			m := q()
			c.Measure(m)
			measured = m
		}
		if withMeasure && measured >= 0 && rng.Intn(3) == 0 {
			// Feed-forward: conditional X on the last measured bit.
			c.AddGate(circuit.Gate{Name: "x", Qubits: []int{q()}, HasCond: true, CondBit: measured})
		}
		if withMeasure && rng.Intn(5) == 0 {
			c.PrepZ(q())
		}
	}
	return c
}

func TestEngineRegistry(t *testing.T) {
	if got := Reference().Name(); got != EngineReference {
		t.Errorf("Reference().Name() = %q", got)
	}
	if got := Optimized().Name(); got != EngineOptimized {
		t.Errorf("Optimized().Name() = %q", got)
	}
	def, err := EngineByName("")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name() != DefaultEngine {
		t.Errorf("default engine is %q, want %q", def.Name(), DefaultEngine)
	}
	if _, err := EngineByName("warp-drive"); err == nil {
		t.Error("unknown engine accepted")
	}
	if got := Stabilizer().Name(); got != EngineStabilizer {
		t.Errorf("Stabilizer().Name() = %q", got)
	}
	if got := Auto().Name(); got != EngineAuto {
		t.Errorf("Auto().Name() = %q", got)
	}
	names := EngineNames()
	want := []string{EngineAuto, EngineOptimized, EngineReference, EngineStabilizer}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("EngineNames() = %v, want %v", names, want)
	}
	if New(1).engine().Name() != DefaultEngine {
		t.Errorf("New does not default to %q", DefaultEngine)
	}
}

// The tentpole contract: on randomized perfect circuits the optimized
// engine produces bit-identical seeded counts and (up to float noise)
// the same final state as the reference engine.
func TestEnginesAgreeOnPerfectCircuits(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := richRandomCircuit(4, 5, rng, false)

		sa, err := NewWithEngine(seed+100, Reference()).RunState(c)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := NewWithEngine(seed+100, Optimized()).RunState(c)
		if err != nil {
			t.Fatal(err)
		}
		if f := sa.Fidelity(sb); math.Abs(f-1) > 1e-9 {
			t.Fatalf("seed %d: state fidelity %v", seed, f)
		}

		ra, err := NewWithEngine(seed+100, Reference()).Run(c, 300)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := NewWithEngine(seed+100, Optimized()).Run(c, 300)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra.Counts, rb.Counts) {
			t.Fatalf("seed %d: counts diverge:\nreference %v\noptimized %v", seed, ra.Counts, rb.Counts)
		}
	}
}

// Same contract on circuits with mid-circuit measurement, feed-forward
// and resets.
func TestEnginesAgreeWithMeasurement(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed + 50))
		c := richRandomCircuit(4, 4, rng, true)
		ra, err := NewWithEngine(seed, Reference()).Run(c, 200)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := NewWithEngine(seed, Optimized()).Run(c, 200)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra.Counts, rb.Counts) {
			t.Fatalf("seed %d: counts diverge:\nreference %v\noptimized %v", seed, ra.Counts, rb.Counts)
		}
	}
}

// And on noisy circuits: the per-shot trajectory path must consume the
// PRNG identically gate for gate.
func TestEnginesAgreeOnNoisyCircuits(t *testing.T) {
	models := []*NoiseModel{
		Depolarizing(0.02),
		Superconducting(),
		{T1: 5_000, T2: 3_000, GateTimeNs: 50, ReadoutError: 0.05},
	}
	for mi, noise := range models {
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(seed + 500))
			c := richRandomCircuit(4, 4, rng, seed%2 == 0)
			ra, err := NewNoisyWithEngine(seed, noise, Reference()).Run(c, 120)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := NewNoisyWithEngine(seed, noise, Optimized()).Run(c, 120)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ra.Counts, rb.Counts) {
				t.Fatalf("model %d seed %d: counts diverge:\nreference %v\noptimized %v",
					mi, seed, ra.Counts, rb.Counts)
			}
			if ra.GateErrorsInjected != rb.GateErrorsInjected {
				t.Fatalf("model %d seed %d: injected errors %d vs %d",
					mi, seed, ra.GateErrorsInjected, rb.GateErrorsInjected)
			}
		}
	}
}

// Satellite: gate fusion on/off must not change results — identical
// seeded counts and fidelity 1 on randomized circuits, for both engines.
func TestFusionEquivalenceProperty(t *testing.T) {
	for _, eng := range []Engine{Reference(), Optimized()} {
		for seed := int64(0); seed < 10; seed++ {
			rng := rand.New(rand.NewSource(seed + 900))
			c := circuit.RandomCircuit(4, 5, rng)

			plain := NewWithEngine(seed, eng)
			fused := NewWithEngine(seed, eng)
			fused.EnableFusion = true

			sa, err := plain.RunState(c)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := fused.RunState(c)
			if err != nil {
				t.Fatal(err)
			}
			if f := sa.Fidelity(sb); math.Abs(f-1) > 1e-9 {
				t.Fatalf("%s seed %d: fusion changed the state, fidelity %v", eng.Name(), seed, f)
			}

			ra, err := NewWithEngine(seed, eng).Run(c, 250)
			if err != nil {
				t.Fatal(err)
			}
			fsim := NewWithEngine(seed, eng)
			fsim.EnableFusion = true
			rb, err := fsim.Run(c, 250)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ra.Counts, rb.Counts) {
				t.Fatalf("%s seed %d: fusion changed seeded counts:\noff %v\non  %v",
					eng.Name(), seed, ra.Counts, rb.Counts)
			}
		}
	}
}

// The cumulative-distribution sampler must return the same index as the
// linear scan for every draw.
func TestCumSamplerMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	c := circuit.RandomCircuit(6, 4, rng)
	st, err := NewWithEngine(1, Reference()).RunState(c)
	if err != nil {
		t.Fatal(err)
	}
	sampler := newCumSampler(st)
	ra := rand.New(rand.NewSource(5))
	rb := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		want := st.SampleIndex(ra)
		got := sampler.sample(rb)
		if got != want {
			t.Fatalf("draw %d: sampler %d, linear scan %d", i, got, want)
		}
	}
}

func TestRunParallel(t *testing.T) {
	c := circuit.New("bell", 2).H(0).CNOT(0, 1).Measure(0).Measure(1)

	res, err := New(9).RunParallel(c, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for idx, n := range res.Counts {
		if idx != 0 && idx != 3 {
			t.Errorf("impossible Bell outcome %d", idx)
		}
		total += n
	}
	if total != 1000 || res.Shots != 1000 {
		t.Errorf("merged %d shots (Shots=%d), want 1000", total, res.Shots)
	}

	// Determinism: same seed and worker count → identical merged counts.
	again, err := New(9).RunParallel(c, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Counts, again.Counts) {
		t.Error("RunParallel is not deterministic for fixed (seed, workers)")
	}

	// Repeated calls on ONE simulator draw fresh batch seeds, so they are
	// independent samples, like repeated Run calls.
	sim := New(9)
	first, err := sim.RunParallel(c, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sim.RunParallel(c, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(first.Counts, second.Counts) {
		t.Error("repeated RunParallel on one simulator returned identical batches")
	}

	// A single worker degenerates to the serial path.
	serial, err := New(9).Run(c, 100)
	if err != nil {
		t.Fatal(err)
	}
	one, err := New(9).RunParallel(c, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Counts, one.Counts) {
		t.Error("RunParallel(workers=1) differs from serial Run")
	}

	if _, err := New(9).RunParallel(c, 0, 4); err == nil {
		t.Error("RunParallel accepted zero shots")
	}
}

// Readout error must hit each measured bit exactly once, and never touch
// qubits that were not read out.
func TestReadoutErrorAppliedOncePerMeasuredBit(t *testing.T) {
	const p = 0.2
	const shots = 6000
	c := circuit.New("ro1", 2).Measure(0) // qubit 1 is never measured
	for _, eng := range []Engine{Reference(), Optimized()} {
		sim := NewNoisyWithEngine(5, &NoiseModel{ReadoutError: p}, eng)
		res, err := sim.Run(c, shots)
		if err != nil {
			t.Fatal(err)
		}
		flipped, spurious := 0, 0
		for idx, n := range res.Counts {
			if idx&1 != 0 {
				flipped += n
			}
			if idx&2 != 0 {
				spurious += n
			}
		}
		if got := float64(flipped) / shots; math.Abs(got-p) > 0.02 {
			t.Errorf("%s: measured-bit flip rate %.3f, want ≈%.2f (double application?)", eng.Name(), got, p)
		}
		if spurious != 0 {
			t.Errorf("%s: unmeasured qubit flipped %d times", eng.Name(), spurious)
		}
	}
}

func TestRunParallelNoisy(t *testing.T) {
	c := circuit.GHZ(5)
	res, err := NewNoisy(3, Depolarizing(0.05)).RunParallel(c, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != 400 {
		t.Errorf("merged %d shots, want 400", total)
	}
	if res.GateErrorsInjected == 0 {
		t.Error("no injected errors merged from workers")
	}
}

func TestRegisterEngine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterEngine did not panic")
		}
	}()
	RegisterEngine(referenceEngine{})
}
