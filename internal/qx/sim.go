package qx

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/quantum"
)

// Simulator executes circuits on perfect or realistic qubits. It mirrors
// the QX engine of the paper: the micro-architecture sends instructions,
// the simulator executes them, measures qubit states and returns results.
//
// A Simulator is not safe for concurrent use (it owns the PRNG and the
// fusion scratch table); create one per goroutine. Input circuits are
// never mutated and may be shared across simulators. See the package
// comment for the full concurrency contract.
type Simulator struct {
	// Noise selects realistic-qubit execution; nil means perfect qubits.
	Noise *NoiseModel
	// EnableFusion fuses runs of consecutive single-qubit gates on the
	// same qubit into one matrix before application (perfect mode only;
	// with noise each physical gate must see its own error channel).
	EnableFusion bool

	rng   *rand.Rand
	fused []quantum.Matrix // scratch table for fused gates, rebuilt per execution
}

// New returns a perfect-qubit simulator seeded deterministically.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// NewNoisy returns a realistic-qubit simulator with the given noise model.
func NewNoisy(seed int64, noise *NoiseModel) *Simulator {
	return &Simulator{Noise: noise, rng: rand.New(rand.NewSource(seed))}
}

// Rand exposes the simulator PRNG (for callers that interleave their own
// sampling deterministically).
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// RunState executes the circuit once and returns the final state vector.
// Measurement gates collapse the state. Intended for perfect-qubit
// application development where the full state is the artefact of
// interest.
func (s *Simulator) RunState(c *circuit.Circuit) (*quantum.State, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	st := quantum.NewState(c.NumQubits)
	_, _, err := s.executeOnce(c, st)
	if err != nil {
		return nil, err
	}
	return st, nil
}

// Run executes the circuit for the given number of shots and aggregates
// measured outcomes. If the circuit contains no measurement at all, every
// qubit is measured at the end of each shot.
func (s *Simulator) Run(c *circuit.Circuit, shots int) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if shots <= 0 {
		return nil, fmt.Errorf("qx: shots must be positive, got %d", shots)
	}
	res := &Result{NumQubits: c.NumQubits, Shots: shots, Counts: map[int]int{}}
	hasMeasure := circuitMeasures(c)
	noisy := !s.Noise.IsZero()

	// Perfect, measurement-free circuits are deterministic: execute the
	// unitary part once and sample the final distribution per shot.
	if !noisy && !hasMeasure {
		st := quantum.NewState(c.NumQubits)
		if _, _, err := s.executeOnce(c, st); err != nil {
			return nil, err
		}
		for i := 0; i < shots; i++ {
			idx := st.SampleIndex(s.rng)
			res.Counts[s.applyReadoutError(idx, c.NumQubits)]++
		}
		return res, nil
	}

	st := quantum.NewState(c.NumQubits)
	for i := 0; i < shots; i++ {
		st.Reset()
		bits, errs, err := s.executeOnce(c, st)
		if err != nil {
			return nil, err
		}
		res.GateErrorsInjected += errs
		idx := 0
		if hasMeasure {
			for q, b := range bits {
				if b == 1 {
					idx |= 1 << uint(q)
				}
			}
		} else {
			idx = st.MeasureAll(s.rng)
		}
		res.Counts[s.applyReadoutError(idx, c.NumQubits)]++
	}
	return res, nil
}

// SampleExpectation estimates the expectation of f over measured basis
// states using the given number of shots.
func (s *Simulator) SampleExpectation(c *circuit.Circuit, shots int, f func(idx int) float64) (float64, error) {
	res, err := s.Run(c, shots)
	if err != nil {
		return 0, err
	}
	var acc float64
	for idx, count := range res.Counts {
		acc += f(idx) * float64(count)
	}
	return acc / float64(res.Shots), nil
}

// executeOnce runs all gates on st, returning measured bits per qubit
// (latest measurement wins) and the number of injected errors.
func (s *Simulator) executeOnce(c *circuit.Circuit, st *quantum.State) (map[int]int, int, error) {
	bits := map[int]int{}
	injected := 0
	noisy := !s.Noise.IsZero()
	gates := c.Gates
	if s.EnableFusion && !noisy {
		gates = s.fuseSingleQubitRuns(gates)
	}
	for _, g := range gates {
		switch g.Name {
		case circuit.OpMeasure:
			q := g.Qubits[0]
			b := st.MeasureQubit(q, s.rng)
			if noisy && s.Noise.ReadoutError > 0 && s.rng.Float64() < s.Noise.ReadoutError {
				b ^= 1
			}
			bits[q] = b
		case circuit.OpMeasureAll:
			for q := 0; q < c.NumQubits; q++ {
				b := st.MeasureQubit(q, s.rng)
				if noisy && s.Noise.ReadoutError > 0 && s.rng.Float64() < s.Noise.ReadoutError {
					b ^= 1
				}
				bits[q] = b
			}
		case circuit.OpPrepZ:
			q := g.Qubits[0]
			if st.MeasureQubit(q, s.rng) == 1 {
				st.ApplyOne(quantum.X, q)
			}
		case circuit.OpBarrier, circuit.OpWait, circuit.OpDisplay:
			// No quantum effect; decoherence during explicit waits.
			if noisy && g.Name == circuit.OpWait && len(g.Params) > 0 {
				cycles := g.Params[0]
				for q := 0; q < c.NumQubits; q++ {
					for k := 0.0; k < cycles; k++ {
						s.applyDecoherence(st, q)
					}
				}
			}
		case fusedGateName:
			st.Apply(s.fused[int(g.Params[0])], g.Qubits...)
		default:
			// Classically-controlled gates (feed-forward) fire only when
			// the referenced measurement bit is 1.
			if g.HasCond && bits[g.CondBit] != 1 {
				continue
			}
			m, err := g.Matrix()
			if err != nil {
				return nil, injected, err
			}
			st.Apply(m, g.Qubits...)
			if noisy {
				injected += s.applyGateNoise(st, g)
			}
		}
	}
	return bits, injected, nil
}

// applyGateNoise inserts the error channels that follow a gate in
// realistic mode and returns the number of discrete Pauli errors injected.
func (s *Simulator) applyGateNoise(st *quantum.State, g circuit.Gate) int {
	p := s.Noise.DepolarizingProb
	if len(g.Qubits) >= 2 {
		p = s.Noise.TwoQubitDepolarizingProb
	}
	injected := 0
	for _, q := range g.Qubits {
		if applyPauliError(st, q, p, s.rng) {
			injected++
		}
		s.applyDecoherence(st, q)
	}
	return injected
}

func (s *Simulator) applyDecoherence(st *quantum.State, q int) {
	if gamma := s.Noise.ampDampingGamma(); gamma > 0 {
		applyAmplitudeDamping(st, q, gamma, s.rng)
	}
	if lambda := s.Noise.dephasingLambda(); lambda > 0 {
		applyDephasing(st, q, lambda, s.rng)
	}
}

func (s *Simulator) applyReadoutError(idx, n int) int {
	if s.Noise.IsZero() || s.Noise.ReadoutError == 0 {
		return idx
	}
	for q := 0; q < n; q++ {
		if s.rng.Float64() < s.Noise.ReadoutError {
			idx ^= 1 << uint(q)
		}
	}
	return idx
}

func circuitMeasures(c *circuit.Circuit) bool {
	for _, g := range c.Gates {
		if g.Name == circuit.OpMeasure || g.Name == circuit.OpMeasureAll {
			return true
		}
	}
	return false
}

// fusedGateName marks a synthetic gate produced by fusion; Params[0]
// indexes the simulator's fused-matrix table, which is rebuilt per
// execution.
const fusedGateName = "__fused"

// fuseSingleQubitRuns merges consecutive single-qubit unitaries acting on
// the same qubit into one matrix. This is the gate-fusion optimisation
// benchmarked in the ablation suite.
func (s *Simulator) fuseSingleQubitRuns(gates []circuit.Gate) []circuit.Gate {
	s.fused = s.fused[:0]
	out := make([]circuit.Gate, 0, len(gates))
	i := 0
	for i < len(gates) {
		g := gates[i]
		if !g.IsUnitary() || len(g.Qubits) != 1 || g.HasCond {
			out = append(out, g)
			i++
			continue
		}
		// Collect the run of single-qubit gates on this qubit.
		q := g.Qubits[0]
		m, _ := g.Matrix()
		j := i + 1
		for j < len(gates) {
			nx := gates[j]
			if !nx.IsUnitary() || len(nx.Qubits) != 1 || nx.Qubits[0] != q || nx.HasCond {
				break
			}
			nm, _ := nx.Matrix()
			m = nm.Mul(m)
			j++
		}
		if j == i+1 {
			out = append(out, g)
		} else {
			s.fused = append(s.fused, m)
			out = append(out, circuit.Gate{
				Name:   fusedGateName,
				Qubits: []int{q},
				Params: []float64{float64(len(s.fused) - 1)},
			})
		}
		i = j
	}
	return out
}
