package qx

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/quantum"
)

// Simulator executes circuits on perfect or realistic qubits. It mirrors
// the QX engine of the paper: the micro-architecture sends instructions,
// the simulator executes them, measures qubit states and returns results.
// The actual execution strategy is delegated to a pluggable Engine; the
// Simulator owns the run configuration (noise model, fusion flag, PRNG).
//
// A Simulator is not safe for concurrent use (it owns the PRNG); create
// one per goroutine, or use RunParallel, which fans shots out over
// internally-created per-goroutine simulators. Input circuits are never
// mutated and may be shared across simulators. See the package comment
// for the full concurrency contract.
type Simulator struct {
	// Noise selects realistic-qubit execution; nil means perfect qubits.
	Noise *NoiseModel
	// EnableFusion fuses runs of consecutive single-qubit gates on the
	// same qubit into one matrix before application (perfect mode only;
	// with noise each physical gate must see its own error channel).
	EnableFusion bool
	// Engine selects the execution engine; nil uses the default
	// (optimized) engine. Engines are stateless and may be shared.
	Engine Engine
	// KernelWorkers caps amplitude-kernel parallelism for engine-created
	// states: 0 sizes it to the machine, 1 keeps kernels serial. Callers
	// that already run many simulators concurrently (worker pools,
	// parallel shot batches) should budget this so job-level and
	// amplitude-level parallelism do not multiply into oversubscription;
	// RunParallel sets 1 on its own shot workers automatically.
	KernelWorkers int

	seed int64
	rng  *rand.Rand
}

// New returns a perfect-qubit simulator seeded deterministically, backed
// by the default engine.
func New(seed int64) *Simulator {
	return &Simulator{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// NewWithEngine returns a perfect-qubit simulator backed by the given
// engine (nil selects the default).
func NewWithEngine(seed int64, e Engine) *Simulator {
	s := New(seed)
	s.Engine = e
	return s
}

// NewNoisy returns a realistic-qubit simulator with the given noise model.
func NewNoisy(seed int64, noise *NoiseModel) *Simulator {
	s := New(seed)
	s.Noise = noise
	return s
}

// NewNoisyWithEngine returns a realistic-qubit simulator backed by the
// given engine (nil selects the default).
func NewNoisyWithEngine(seed int64, noise *NoiseModel, e Engine) *Simulator {
	s := NewNoisy(seed, noise)
	s.Engine = e
	return s
}

// Rand exposes the simulator PRNG (for callers that interleave their own
// sampling deterministically).
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Seed returns the seed the simulator was constructed with; all PRNG
// streams — including RunParallel's per-worker seeds — derive from it.
func (s *Simulator) Seed() int64 { return s.seed }

func (s *Simulator) engine() Engine {
	if s.Engine != nil {
		return s.Engine
	}
	return Optimized()
}

func (s *Simulator) env() *ExecEnv {
	return &ExecEnv{Rng: s.rng, Noise: s.Noise, Fusion: s.EnableFusion, KernelWorkers: s.KernelWorkers}
}

// RunState executes the circuit once and returns the final state vector.
// Measurement gates collapse the state. Intended for perfect-qubit
// application development where the full state is the artefact of
// interest.
func (s *Simulator) RunState(c *circuit.Circuit) (*quantum.State, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return s.engine().RunState(c, s.env())
}

// Run executes the circuit for the given number of shots and aggregates
// measured outcomes. If the circuit contains no measurement at all, every
// qubit is measured at the end of each shot.
func (s *Simulator) Run(c *circuit.Circuit, shots int) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if shots <= 0 {
		return nil, fmt.Errorf("qx: shots must be positive, got %d", shots)
	}
	start := time.Now()
	res, err := s.engine().Run(c, shots, s.env())
	if res != nil {
		res.ElapsedNs = time.Since(start).Nanoseconds()
		res.Batches = 1
	}
	return res, err
}

// RunParallel executes the circuit's shots split across worker
// goroutines, each running on its own Simulator with this simulator's
// configuration and a derived seed. workers <= 0 sizes the pool to the
// machine's cores. Each call draws a fresh batch seed from the
// simulator's PRNG, so repeated calls produce independent batches (like
// repeated Run calls) while staying deterministic from the construction
// seed.
//
// The merged counts are deterministic for a fixed (seed, workers) pair
// but differ from a serial Run with the same seed: each worker draws from
// its own PRNG stream. Use Run when cross-engine or cross-run count
// equality matters; use RunParallel when wall-clock matters. Shot workers
// run their amplitude kernels serially — shot-level parallelism already
// saturates the cores, so the two levels never multiply.
func (s *Simulator) RunParallel(c *circuit.Circuit, shots, workers int) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if shots <= 0 {
		return nil, fmt.Errorf("qx: shots must be positive, got %d", shots)
	}
	workers = shotWorkers(workers, shots)
	start := time.Now()
	if workers <= 1 {
		res, err := s.engine().Run(c, shots, s.env())
		if res != nil {
			res.ElapsedNs = time.Since(start).Nanoseconds()
			res.Batches = 1
		}
		return res, err
	}
	batchSeed := s.rng.Int63()
	results := make([]*Result, workers)
	errs := make([]error, workers)
	base, extra := shots/workers, shots%workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := base
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			sub := &Simulator{
				Noise:         s.Noise,
				EnableFusion:  s.EnableFusion,
				Engine:        s.Engine,
				KernelWorkers: 1,
				seed:          workerSeed(batchSeed, w),
			}
			sub.rng = rand.New(rand.NewSource(sub.seed))
			results[w], errs[w] = sub.Run(c, n)
		}(w, n)
	}
	wg.Wait()
	merged := &Result{NumQubits: c.NumQubits, Shots: shots, Counts: map[int]int{}}
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, errs[w]
		}
		//qlint:nondeterministic-ok order-independent: commutative integer += into the merged map
		for idx, count := range results[w].Counts {
			merged.Counts[idx] += count
		}
		//qlint:nondeterministic-ok order-independent: commutative integer += into the merged map
		for bits, count := range results[w].WideCounts {
			if merged.WideCounts == nil {
				merged.WideCounts = map[string]int{}
			}
			merged.WideCounts[bits] += count
		}
		merged.GateErrorsInjected += results[w].GateErrorsInjected
	}
	merged.ElapsedNs = time.Since(start).Nanoseconds()
	merged.Batches = workers
	return merged, nil
}

// workerSeed derives a distinct deterministic seed per shot-batch worker
// from the batch seed (odd multiplier keeps the streams unique).
func workerSeed(batchSeed int64, w int) int64 {
	return batchSeed + int64(w+1)*2654435761
}

// SampleExpectation estimates the expectation of f over measured basis
// states using the given number of shots.
func (s *Simulator) SampleExpectation(c *circuit.Circuit, shots int, f func(idx int) float64) (float64, error) {
	res, err := s.Run(c, shots)
	if err != nil {
		return 0, err
	}
	// Accumulate in sorted index order: float addition is not
	// associative, so summing in map order would wobble the low bits of
	// the estimate between runs of the same seed.
	idxs := make([]int, 0, len(res.Counts))
	for idx := range res.Counts {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	var acc float64
	for _, idx := range idxs {
		acc += f(idx) * float64(res.Counts[idx])
	}
	return acc / float64(res.Shots), nil
}
