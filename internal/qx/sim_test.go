package qx

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

func TestRunStateBell(t *testing.T) {
	sim := New(1)
	st, err := sim.RunState(circuit.Bell())
	if err != nil {
		t.Fatal(err)
	}
	p := st.Probabilities()
	if math.Abs(p[0]-0.5) > 1e-9 || math.Abs(p[3]-0.5) > 1e-9 {
		t.Errorf("Bell state probabilities %v", p)
	}
}

func TestRunShotsBell(t *testing.T) {
	sim := New(2)
	res, err := sim.Run(circuit.Bell(), 4000)
	if err != nil {
		t.Fatal(err)
	}
	p00 := res.Probability(0)
	p11 := res.Probability(3)
	if math.Abs(p00-0.5) > 0.05 || math.Abs(p11-0.5) > 0.05 {
		t.Errorf("Bell sampling p00=%v p11=%v", p00, p11)
	}
	if res.Counts[1]+res.Counts[2] != 0 {
		t.Errorf("impossible Bell outcomes observed: %v", res.Counts)
	}
}

func TestRunWithExplicitMeasure(t *testing.T) {
	sim := New(3)
	c := circuit.New("m", 2).H(0).CNOT(0, 1).Measure(0).Measure(1)
	res, err := sim.Run(c, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for idx := range res.Counts {
		if idx != 0 && idx != 3 {
			t.Errorf("correlated measurement broken: outcome %d", idx)
		}
	}
}

func TestRunRejectsBadShots(t *testing.T) {
	sim := New(1)
	if _, err := sim.Run(circuit.Bell(), 0); err == nil {
		t.Error("shots=0 accepted")
	}
}

func TestPrepZ(t *testing.T) {
	sim := New(5)
	c := circuit.New("p", 1).X(0).PrepZ(0).Measure(0)
	res, err := sim.Run(c, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0] != 100 {
		t.Errorf("prep_z did not reset: %v", res.Counts)
	}
}

func TestNoisyGHZDegrades(t *testing.T) {
	shots := 600
	perfect := New(7)
	ghz := circuit.GHZ(5)
	resP, err := perfect.Run(ghz, shots)
	if err != nil {
		t.Fatal(err)
	}
	if resP.Counts[0]+resP.Counts[31] != shots {
		t.Error("perfect GHZ should only yield all-0 or all-1")
	}
	noisy := NewNoisy(7, Depolarizing(0.05))
	resN, err := noisy.Run(ghz, shots)
	if err != nil {
		t.Fatal(err)
	}
	good := resN.Counts[0] + resN.Counts[31]
	if good == shots {
		t.Error("noisy GHZ produced zero errors at 5% depolarising")
	}
	if resN.GateErrorsInjected == 0 {
		t.Error("no gate errors recorded")
	}
	if float64(good)/float64(shots) < 0.3 {
		t.Errorf("noise too destructive: only %d/%d good", good, shots)
	}
}

func TestReadoutError(t *testing.T) {
	sim := NewNoisy(11, &NoiseModel{ReadoutError: 0.5})
	c := circuit.New("ro", 1) // identity circuit: ideal outcome always 0
	res, err := sim.Run(c, 2000)
	if err != nil {
		t.Fatal(err)
	}
	p1 := res.Probability(1)
	if math.Abs(p1-0.5) > 0.05 {
		t.Errorf("50%% readout error gives P(1)=%v", p1)
	}
}

func TestAmplitudeDampingRelaxesToGround(t *testing.T) {
	// Strong T1 relative to gate time: |1> should decay towards |0> over
	// many idle gates.
	noise := &NoiseModel{T1: 100, GateTimeNs: 100} // gamma ≈ 0.63 per gate
	sim := NewNoisy(13, noise)
	c := circuit.New("t1", 1).X(0)
	for i := 0; i < 10; i++ {
		c.I(0)
	}
	res, err := sim.Run(c, 500)
	if err != nil {
		t.Fatal(err)
	}
	if p0 := res.Probability(0); p0 < 0.9 {
		t.Errorf("after 10 decay steps P(0)=%v, want >0.9", p0)
	}
}

func TestDephasingDestroysCoherence(t *testing.T) {
	// H, heavy dephasing, H: without noise returns |0>; dephasing turns
	// the middle state into a mixture so the final distribution is ~50/50.
	noise := &NoiseModel{T2: 10, GateTimeNs: 1000}
	sim := NewNoisy(17, noise)
	c := circuit.New("t2", 1).H(0).I(0).H(0)
	res, err := sim.Run(c, 2000)
	if err != nil {
		t.Fatal(err)
	}
	p1 := res.Probability(1)
	if math.Abs(p1-0.5) > 0.06 {
		t.Errorf("dephased Ramsey P(1)=%v, want ≈0.5", p1)
	}
}

func TestFusionMatchesUnfused(t *testing.T) {
	c := circuit.New("f", 2)
	c.H(0).T(0).S(0).RZ(0, 0.3).H(1).CNOT(0, 1).X(1).Y(1)
	plain := New(21)
	fused := New(21)
	fused.EnableFusion = true
	sa, err := plain.RunState(c)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := fused.RunState(c)
	if err != nil {
		t.Fatal(err)
	}
	if f := sa.Fidelity(sb); math.Abs(f-1) > 1e-9 {
		t.Errorf("fusion changed the state: fidelity %v", f)
	}
}

// Property: fusion never changes measurement distributions for random
// circuits.
func TestFusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		sim := New(seed)
		c := circuit.RandomCircuit(4, 4, sim.Rand())
		a, err := New(99).RunState(c)
		if err != nil {
			return false
		}
		fs := New(99)
		fs.EnableFusion = true
		b, err := fs.RunState(c)
		if err != nil {
			return false
		}
		return math.Abs(a.Fidelity(b)-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSampleExpectation(t *testing.T) {
	sim := New(31)
	// <Z0> on |+> is 0; encode Z0 as f(idx).
	c := circuit.New("e", 1).H(0)
	z0 := func(idx int) float64 {
		if idx&1 == 1 {
			return -1
		}
		return 1
	}
	v, err := sim.SampleExpectation(c, 4000, z0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v) > 0.06 {
		t.Errorf("<Z> on |+> = %v, want ≈0", v)
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{NumQubits: 2, Shots: 10, Counts: map[int]int{0: 7, 3: 3}}
	if r.Best() != 0 {
		t.Error("Best wrong")
	}
	top := r.Top(1)
	if len(top) != 1 || top[0].Index != 0 || top[0].Count != 7 {
		t.Errorf("Top wrong: %v", top)
	}
	if BitString(3, 4) != "0011" {
		t.Errorf("BitString = %q", BitString(3, 4))
	}
	if r.Histogram() == "" {
		t.Error("empty histogram")
	}
}

func TestDeterministicSeeding(t *testing.T) {
	c := circuit.New("d", 3).H(0).H(1).H(2)
	a, _ := New(5).Run(c, 100)
	b, _ := New(5).Run(c, 100)
	for idx, n := range a.Counts {
		if b.Counts[idx] != n {
			t.Fatal("same seed produced different results")
		}
	}
}

func TestNoiseModelHelpers(t *testing.T) {
	var nilModel *NoiseModel
	if !nilModel.IsZero() {
		t.Error("nil model should be zero")
	}
	if Superconducting().IsZero() {
		t.Error("superconducting model should not be zero")
	}
	m := &NoiseModel{T1: 1000, GateTimeNs: 20}
	if g := m.ampDampingGamma(); g <= 0 || g >= 1 {
		t.Errorf("gamma = %v", g)
	}
	if l := (&NoiseModel{}).dephasingLambda(); l != 0 {
		t.Errorf("lambda without T2 = %v", l)
	}
}

// TestConcurrentShotExecution enforces the package's concurrency
// contract under -race: one Simulator per goroutine, input circuits
// shared read-only across all of them. Both the perfect fast path (with
// fusion, which exercises the per-simulator scratch table) and the noisy
// per-shot path are driven in parallel.
func TestConcurrentShotExecution(t *testing.T) {
	shared := circuit.New("shared", 3)
	shared.H(0).CNOT(0, 1).RX(2, 0.3).RZ(2, 0.7).CNOT(1, 2).MeasureAll()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sim *Simulator
			if g%2 == 0 {
				sim = New(int64(g))
				sim.EnableFusion = true
			} else {
				sim = NewNoisy(int64(g), Depolarizing(1e-3))
			}
			for iter := 0; iter < 20; iter++ {
				res, err := sim.Run(shared, 50)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				total := 0
				for _, c := range res.Counts {
					total += c
				}
				if total != 50 {
					t.Errorf("goroutine %d: %d shots aggregated, want 50", g, total)
					return
				}
			}
		}()
	}
	wg.Wait()
}
