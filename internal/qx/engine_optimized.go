package qx

import (
	"runtime"

	"repro/internal/circuit"
	"repro/internal/quantum"
)

// optimizedEngine is the fast dense engine. It compiles each circuit once
// per run into a table of typed ops with every gate matrix precomputed —
// noisy multi-shot runs never call Gate.Matrix() inside the shot loop —
// and lowers the common gate set to specialized bit-twiddling kernels
// (X/Y/diagonal/CNOT/CZ/CPhase/SWAP and controlled single-qubit gates)
// instead of generic dense matrix multiplies. States it executes on have
// chunk-parallel kernel application enabled, and deterministic multi-shot
// sampling goes through the cumulative-distribution binary-search sampler.
//
// Every substitution is probability-preserving at the bit level, so the
// engine produces seeded counts identical to the reference engine — the
// differential tests in engine_test.go enforce this.
type optimizedEngine struct{}

// Name returns "optimized".
func (optimizedEngine) Name() string { return EngineOptimized }

// RunState executes the circuit once and returns the final state vector.
func (optimizedEngine) RunState(c *circuit.Circuit, env *ExecEnv) (*quantum.State, error) {
	prog, err := compileDense(c, env.Fusion && !env.noisy())
	if err != nil {
		return nil, err
	}
	st := newDenseState(c.NumQubits, env)
	prog.executeOnce(st, env)
	return st, nil
}

// Run executes the circuit for the given number of shots.
func (optimizedEngine) Run(c *circuit.Circuit, shots int, env *ExecEnv) (*Result, error) {
	noisy := env.noisy()
	prog, err := compileDense(c, env.Fusion && !noisy)
	if err != nil {
		return nil, err
	}
	res := &Result{NumQubits: c.NumQubits, Shots: shots, Counts: map[int]int{}}

	// Deterministic fast path: one execution, then O(log dim) sampling
	// per shot. The readout-error pass is statically a no-op here (no
	// noise), so it is hoisted out entirely.
	if !noisy && !prog.hasMeasure {
		st := newDenseState(c.NumQubits, env)
		prog.executeOnce(st, env)
		sampler := newCumSampler(st)
		for i := 0; i < shots; i++ {
			res.Counts[sampler.sample(env.Rng)]++
		}
		return res, nil
	}

	st := newDenseState(c.NumQubits, env)
	for i := 0; i < shots; i++ {
		st.Reset()
		bits, errs := prog.executeOnce(st, env)
		res.GateErrorsInjected += errs
		idx := 0
		if prog.hasMeasure {
			// Readout error was already applied per measurement gate;
			// unmeasured qubits are never read out, so no register-wide
			// flip pass here.
			//qlint:nondeterministic-ok order-independent: ORs disjoint bits into an index; any visit order builds the same mask
			for q, b := range bits {
				if b == 1 {
					idx |= 1 << uint(q)
				}
			}
		} else {
			idx = st.MeasureAll(env.Rng)
			if noisy {
				idx = applyEnvReadoutError(env, idx, c.NumQubits)
			}
		}
		res.Counts[idx]++
	}
	return res, nil
}

// newDenseState returns a fresh zero state with kernel parallelism from
// the environment's worker budget (machine-sized by default).
func newDenseState(n int, env *ExecEnv) *quantum.State {
	st := quantum.NewState(n)
	if env.KernelWorkers == 0 {
		st.AutoParallelism()
	} else {
		st.SetParallelism(env.KernelWorkers)
	}
	return st
}

// denseKind discriminates the optimized engine's op table.
type denseKind uint8

const (
	kGeneric    denseKind = iota // precomputed matrix via State.Apply
	kIdentity                    // identity gate: state untouched, noise still applies
	kDiag                        // single-qubit diagonal diag(d0, d1)
	kX                           // Pauli-X permutation
	kY                           // Pauli-Y
	kCNOT                        // controlled-NOT
	kCZ                          // controlled-Z
	kCPhase                      // controlled phase diag(1,1,1,d1)
	kSWAP                        // qubit exchange
	kControlled                  // controlled single-qubit matrix (crz, toffoli)
	kMeasure                     // projective measurement of qubits[0]
	kMeasureAll                  // measure every qubit
	kPrepZ                       // reset qubits[0] to |0>
	kWait                        // explicit idle (decoherence under noise)
	kNop                         // barrier, display
)

// denseOp is one compiled operation: the kind, its operands and any
// precomputed matrix or diagonal entries. Fused single-qubit runs become
// ordinary kGeneric ops with the product matrix attached — the typed
// replacement for the old magic-gate-name + Params-index encoding.
type denseOp struct {
	kind    denseKind
	qubits  []int
	mat     quantum.Matrix // kGeneric, kControlled
	d0, d1  complex128     // kDiag, kCPhase
	hasCond bool
	condBit int
	cycles  float64 // kWait
	fused   bool    // synthesized by fusion: exempt from per-gate noise
}

// denseProgram is a circuit compiled for the optimized engine.
type denseProgram struct {
	numQubits  int
	ops        []denseOp
	hasMeasure bool
}

// compileDense lowers a validated circuit into the engine's op table,
// fusing single-qubit runs when fusion is on (perfect mode only — with
// noise each physical gate must see its own error channel).
func compileDense(c *circuit.Circuit, fusion bool) (*denseProgram, error) {
	prog := &denseProgram{numQubits: c.NumQubits, ops: make([]denseOp, 0, len(c.Gates))}
	if fusion {
		for _, eop := range fuseSingleQubitRuns(c.Gates) {
			if eop.fused != nil {
				prog.ops = append(prog.ops, denseOp{
					kind:   kGeneric,
					qubits: []int{eop.fusedQubit},
					mat:    *eop.fused,
					fused:  true,
				})
				continue
			}
			if err := prog.lower(eop.gate); err != nil {
				return nil, err
			}
		}
	} else {
		for _, g := range c.Gates {
			if err := prog.lower(g); err != nil {
				return nil, err
			}
		}
	}
	return prog, nil
}

// lower appends the compiled form of one gate, precomputing its matrix or
// diagonal entries from the same registry constructors the reference
// engine calls, so both engines apply bit-identical unitaries.
func (p *denseProgram) lower(g circuit.Gate) error {
	op := denseOp{qubits: g.Qubits, hasCond: g.HasCond, condBit: g.CondBit}
	switch g.Name {
	case circuit.OpMeasure:
		op.kind = kMeasure
		p.hasMeasure = true
	case circuit.OpMeasureAll:
		op.kind = kMeasureAll
		p.hasMeasure = true
	case circuit.OpPrepZ:
		op.kind = kPrepZ
	case circuit.OpWait:
		op.kind = kWait
		if len(g.Params) > 0 {
			op.cycles = g.Params[0]
		}
	case circuit.OpBarrier, circuit.OpDisplay:
		op.kind = kNop
	case "i":
		op.kind = kIdentity
	case "x":
		op.kind = kX
	case "y":
		op.kind = kY
	case "z", "s", "sdag", "t", "tdag", "rz", "phase":
		m, err := g.Matrix()
		if err != nil {
			return err
		}
		op.kind = kDiag
		op.d0, op.d1 = m.Data[0], m.Data[3]
	case "cnot":
		op.kind = kCNOT
	case "cz":
		op.kind = kCZ
	case "swap":
		op.kind = kSWAP
	case "cphase":
		m, err := g.Matrix()
		if err != nil {
			return err
		}
		op.kind = kCPhase
		op.d1 = m.Data[15]
	case "crz":
		// Controlled(RZ(θ)) applied as a controlled 2×2 kernel; the inner
		// matrix comes from the same constructor the registry embeds.
		op.kind = kControlled
		op.mat = quantum.RZ(g.Params[0])
	case "toffoli":
		op.kind = kControlled
		op.mat = quantum.X
	default:
		m, err := g.Matrix()
		if err != nil {
			return err
		}
		op.kind = kGeneric
		op.mat = m
	}
	p.ops = append(p.ops, op)
	return nil
}

// executeOnce runs the compiled ops on st, returning measured bits per
// qubit and the number of injected errors. It mirrors the reference
// engine's walk exactly — same gate order, same PRNG consumption points —
// differing only in how each unitary reaches the amplitudes.
func (p *denseProgram) executeOnce(st *quantum.State, env *ExecEnv) (map[int]int, int) {
	bits := map[int]int{}
	injected := 0
	noisy := env.noisy()
	for i := range p.ops {
		op := &p.ops[i]
		switch op.kind {
		case kMeasure:
			q := op.qubits[0]
			b := st.MeasureQubit(q, env.Rng)
			if noisy {
				b = flipReadoutBit(env, b)
			}
			bits[q] = b
		case kMeasureAll:
			for q := 0; q < p.numQubits; q++ {
				b := st.MeasureQubit(q, env.Rng)
				if noisy {
					b = flipReadoutBit(env, b)
				}
				bits[q] = b
			}
		case kPrepZ:
			q := op.qubits[0]
			if st.MeasureQubit(q, env.Rng) == 1 {
				st.ApplyX(q)
			}
		case kWait:
			if noisy {
				applyEnvWait(env, st, p.numQubits, op.cycles)
			}
		case kNop:
		default:
			if op.hasCond && bits[op.condBit] != 1 {
				continue
			}
			switch op.kind {
			case kIdentity:
				// State untouched; noise below still applies.
			case kX:
				st.ApplyX(op.qubits[0])
			case kY:
				st.ApplyY(op.qubits[0])
			case kDiag:
				st.ApplyDiag(op.qubits[0], op.d0, op.d1)
			case kCNOT:
				st.ApplyCNOT(op.qubits[0], op.qubits[1])
			case kCZ:
				st.ApplyCZ(op.qubits[0], op.qubits[1])
			case kCPhase:
				st.ApplyCPhase(op.qubits[0], op.qubits[1], op.d1)
			case kSWAP:
				st.ApplySWAP(op.qubits[0], op.qubits[1])
			case kControlled:
				n := len(op.qubits)
				st.ApplyControlledOne(op.mat, op.qubits[n-1], op.qubits[:n-1]...)
			case kGeneric:
				st.Apply(op.mat, op.qubits...)
			}
			if noisy && !op.fused {
				injected += applyEnvGateNoise(env, st, op.qubits)
			}
		}
	}
	return bits, injected
}

// shotWorkers returns the effective worker count for parallel shot
// batches: the machine's core count when workers <= 0, never more than
// the shot count.
func shotWorkers(workers, shots int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shots {
		workers = shots
	}
	return workers
}
