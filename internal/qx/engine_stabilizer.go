package qx

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/quantum"
)

// stabilizerEngine executes Clifford(+measurement) circuits on an
// Aaronson–Gottesman tableau (tableau.go): polynomial in qubit count
// instead of exponential, which is what lets surface-code QEC, RB and
// GHZ workloads run at 100+ qubits. It accepts exactly the circuits
// circuit.IsClifford accepts — H/S/S†/X/Y/Z/CNOT/CZ/SWAP plus rotations
// at Clifford angles — with measurement, prep_z, feed-forward
// conditionals and Pauli-channel noise (depolarizing, dephasing,
// readout); amplitude-damping noise is rejected up front.
//
// The engine walks gates in circuit order and consumes the ExecEnv PRNG
// at exactly the same points as the dense engines — one draw per
// measurement against P(1), the same noise-channel draw pattern, one
// draw per deterministic-path sample — so seeded counts agree
// bit-for-bit with reference/optimized wherever those can run at all.
// The differential tests in engine_stabilizer_test.go enforce this.
type stabilizerEngine struct{}

// Name returns "stabilizer".
func (stabilizerEngine) Name() string { return EngineStabilizer }

// maxStabStateQubits caps RunState: returning a state vector is
// inherently dense (2^n amplitudes), so the stabilizer engine delegates
// to the optimized engine below the cap and refuses above it.
const maxStabStateQubits = 24

// RunState validates the circuit against the Clifford contract, then
// delegates the state-vector materialisation to the optimized engine —
// a tableau has no amplitudes to return. Above maxStabStateQubits the
// call fails: use Run, which samples without ever building the vector.
func (stabilizerEngine) RunState(c *circuit.Circuit, env *ExecEnv) (*quantum.State, error) {
	if err := stabNoiseCompatible(env.Noise); err != nil {
		return nil, err
	}
	if _, err := compileStab(c); err != nil {
		return nil, err
	}
	if c.NumQubits > maxStabStateQubits {
		return nil, fmt.Errorf("qx: stabilizer engine cannot materialise a %d-qubit state vector (RunState caps at %d qubits); use Run for sampled counts", c.NumQubits, maxStabStateQubits)
	}
	return optimizedEngine{}.RunState(c, env)
}

// Run executes the circuit for the given number of shots on the tableau.
func (stabilizerEngine) Run(c *circuit.Circuit, shots int, env *ExecEnv) (*Result, error) {
	if err := stabNoiseCompatible(env.Noise); err != nil {
		return nil, err
	}
	prog, err := compileStab(c)
	if err != nil {
		return nil, err
	}
	n := c.NumQubits
	res := &Result{NumQubits: n, Shots: shots, Counts: map[int]int{}}
	wide := n > 63
	if wide {
		res.WideCounts = map[string]int{}
	}
	noisy := env.noisy()

	// Deterministic fast path, mirroring the dense engines: one
	// execution, then one uniform draw per shot over the state's
	// computational-basis support.
	if !noisy && !prog.hasMeasure {
		t := newTableau(n)
		prog.execute(t, prog.ops, env, map[int]int{}, false)
		sampler := newSupportSampler(t)
		buf := make([]uint64, t.w)
		for i := 0; i < shots; i++ {
			sampler.sample(env.Rng, buf)
			res.countWords(buf)
		}
		return res, nil
	}

	// Perfect measured circuits: snapshot the tableau just before the
	// first PRNG-consuming operation and replay only the measurement
	// tail per shot. The prefix is pure Clifford (no draws), so running
	// it once is draw-for-draw identical to the dense engines' full
	// per-shot re-execution.
	if !noisy {
		base := newTableau(n)
		prog.execute(base, prog.ops[:prog.tailStart], env, map[int]int{}, false)
		tail := prog.ops[prog.tailStart:]
		for i := 0; i < shots; i++ {
			t := base.clone()
			bits := map[int]int{}
			prog.execute(t, tail, env, bits, false)
			res.countBits(bits)
		}
		return res, nil
	}

	// Noisy path: noise draws precede the first measurement, so every
	// shot replays the whole circuit on a fresh tableau.
	for i := 0; i < shots; i++ {
		t := newTableau(n)
		bits := map[int]int{}
		res.GateErrorsInjected += prog.execute(t, prog.ops, env, bits, true)
		if prog.hasMeasure {
			// Readout error was already applied per measurement gate.
			res.countBits(bits)
			continue
		}
		sampler := newSupportSampler(t)
		buf := make([]uint64, t.w)
		sampler.sample(env.Rng, buf)
		tabReadoutError(env, buf, n)
		res.countWords(buf)
	}
	return res, nil
}

// stabNoiseCompatible rejects noise models whose trajectories leave the
// stabilizer formalism.
func stabNoiseCompatible(nm *NoiseModel) error {
	if nm.CliffordCompatible() {
		return nil
	}
	return fmt.Errorf("qx: stabilizer engine cannot apply amplitude-damping (T1) noise — only Pauli channels (depolarizing, dephasing, readout error) stay Clifford; use a dense engine or the %q engine", EngineAuto)
}

// stabKind discriminates the stabilizer engine's op table.
type stabKind uint8

const (
	sUnitary    stabKind = iota // Clifford generator word
	sMeasure                    // projective measurement of qubits[0]
	sMeasureAll                 // measure every qubit
	sPrepZ                      // reset qubits[0] to |0>
	sWait                       // explicit idle (decoherence under noise)
	sNop                        // barrier, display
)

// stabOp is one compiled operation: for unitaries, the gate lowered to
// tableau generators by circuit.CliffordDecompose.
type stabOp struct {
	kind    stabKind
	gens    []circuit.CliffordGate
	qubits  []int
	hasCond bool
	condBit int
	cycles  float64
}

// stabProgram is a circuit compiled for the stabilizer engine.
type stabProgram struct {
	numQubits  int
	ops        []stabOp
	hasMeasure bool
	// tailStart indexes the first op that consumes PRNG on the perfect
	// path (measure, measure_all, prep_z); everything before it is the
	// shot-invariant prefix the snapshot optimisation runs once.
	tailStart int
}

// compileStab lowers a validated circuit into the tableau op table,
// failing on the first gate outside the Clifford group.
func compileStab(c *circuit.Circuit) (*stabProgram, error) {
	prog := &stabProgram{numQubits: c.NumQubits, ops: make([]stabOp, 0, len(c.Gates)), tailStart: -1}
	for _, g := range c.Gates {
		op := stabOp{qubits: g.Qubits, hasCond: g.HasCond, condBit: g.CondBit}
		switch g.Name {
		case circuit.OpMeasure:
			op.kind = sMeasure
			prog.hasMeasure = true
		case circuit.OpMeasureAll:
			op.kind = sMeasureAll
			prog.hasMeasure = true
		case circuit.OpPrepZ:
			op.kind = sPrepZ
		case circuit.OpWait:
			op.kind = sWait
			if len(g.Params) > 0 {
				op.cycles = g.Params[0]
			}
		case circuit.OpBarrier, circuit.OpDisplay:
			op.kind = sNop
		default:
			gens, ok := circuit.CliffordDecompose(g)
			if !ok {
				return nil, fmt.Errorf("qx: stabilizer engine cannot execute non-Clifford gate %q; use a dense engine or the %q engine", g.String(), EngineAuto)
			}
			op.kind = sUnitary
			op.gens = gens
		}
		if prog.tailStart < 0 && (op.kind == sMeasure || op.kind == sMeasureAll || op.kind == sPrepZ) {
			prog.tailStart = len(prog.ops)
		}
		prog.ops = append(prog.ops, op)
	}
	if prog.tailStart < 0 {
		prog.tailStart = len(prog.ops)
	}
	return prog, nil
}

// execute runs the given op span on t, mirroring the dense engines'
// walk: same gate order, same PRNG consumption points. It returns the
// number of injected Pauli errors.
func (p *stabProgram) execute(t *tableau, ops []stabOp, env *ExecEnv, bits map[int]int, noisy bool) int {
	injected := 0
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case sMeasure:
			q := op.qubits[0]
			b := t.measureQubit(q, env.Rng)
			if noisy {
				b = flipReadoutBit(env, b)
			}
			bits[q] = b
		case sMeasureAll:
			for q := 0; q < p.numQubits; q++ {
				b := t.measureQubit(q, env.Rng)
				if noisy {
					b = flipReadoutBit(env, b)
				}
				bits[q] = b
			}
		case sPrepZ:
			q := op.qubits[0]
			if t.measureQubit(q, env.Rng) == 1 {
				t.applyX(q)
			}
		case sWait:
			if noisy {
				tabWait(env, t, p.numQubits, op.cycles)
			}
		case sNop:
		default:
			if op.hasCond && bits[op.condBit] != 1 {
				continue
			}
			for _, gen := range op.gens {
				t.applyGen(gen)
			}
			if noisy {
				injected += tabGateNoise(env, t, op.qubits)
			}
		}
	}
	return injected
}

// applyGen applies one Clifford generator to the tableau.
func (t *tableau) applyGen(g circuit.CliffordGate) {
	switch g.Kind {
	case circuit.CliffordH:
		t.applyH(g.Q0)
	case circuit.CliffordS:
		t.applyS(g.Q0)
	case circuit.CliffordSdag:
		t.applySdag(g.Q0)
	case circuit.CliffordX:
		t.applyX(g.Q0)
	case circuit.CliffordY:
		t.applyY(g.Q0)
	case circuit.CliffordZ:
		t.applyZ(g.Q0)
	case circuit.CliffordCNOT:
		t.applyCNOT(g.Q0, g.Q1)
	case circuit.CliffordCZ:
		t.applyCZ(g.Q0, g.Q1)
	case circuit.CliffordSWAP:
		t.applySWAP(g.Q0, g.Q1)
	}
}

// The tableau noise mirrors below consume the PRNG in exactly the order
// of their dense counterparts in noise.go/engine.go (applyPauliError,
// applyDephasing, applyEnvGateNoise, applyEnvWait, applyEnvReadoutError)
// so noisy seeded runs stay engine-independent.

// tabPauliError mirrors applyPauliError: one acceptance draw, then one
// Intn(3) Pauli pick matching quantum.RandomPauli's X/Y/Z order.
func tabPauliError(t *tableau, q int, p float64, rng *rand.Rand) bool {
	if p <= 0 || rng.Float64() >= p {
		return false
	}
	switch rng.Intn(3) {
	case 0:
		t.applyX(q)
	case 1:
		t.applyY(q)
	default:
		t.applyZ(q)
	}
	return true
}

// tabDecoherence mirrors applyEnvDecoherence. Amplitude damping is
// rejected before execution, so only the dephasing channel remains.
func tabDecoherence(env *ExecEnv, t *tableau, q int) {
	if lambda := env.Noise.dephasingLambda(); lambda > 0 {
		if env.Rng.Float64() < lambda {
			t.applyZ(q)
		}
	}
}

// tabGateNoise mirrors applyEnvGateNoise.
func tabGateNoise(env *ExecEnv, t *tableau, qubits []int) int {
	p := env.Noise.DepolarizingProb
	if len(qubits) >= 2 {
		p = env.Noise.TwoQubitDepolarizingProb
	}
	injected := 0
	for _, q := range qubits {
		if tabPauliError(t, q, p, env.Rng) {
			injected++
		}
		tabDecoherence(env, t, q)
	}
	return injected
}

// tabWait mirrors applyEnvWait.
func tabWait(env *ExecEnv, t *tableau, numQubits int, cycles float64) {
	for q := 0; q < numQubits; q++ {
		for k := 0.0; k < cycles; k++ {
			tabDecoherence(env, t, q)
		}
	}
}

// tabReadoutError mirrors applyEnvReadoutError on a packed outcome word
// slice (the wide-register counterpart of the int-index version).
func tabReadoutError(env *ExecEnv, words []uint64, n int) {
	if env.Noise.ReadoutError == 0 {
		return
	}
	for q := 0; q < n; q++ {
		if env.Rng.Float64() < env.Noise.ReadoutError {
			words[q>>6] ^= 1 << (uint(q) & 63)
		}
	}
}
