package qx

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/circuit"
	"repro/internal/quantum"
)

// Engine is the pluggable execution layer beneath Simulator: it takes a
// validated circuit and turns it into sampled counts or a final state.
// The upper layers of the stack (core.Stack, microarch, qserv) target
// this interface rather than one concrete implementation, mirroring how
// the paper treats QX as the swappable layer under the micro-architecture.
//
// Engines must be stateless (or internally synchronised): one Engine
// value is shared by every Simulator that selects it, across goroutines.
// All per-run mutable state — the PRNG above all — arrives through the
// ExecEnv and must stay local to the call.
type Engine interface {
	// Name returns the engine's registry name.
	Name() string
	// RunState executes the circuit once from |0…0>, collapsing on
	// measurement, and returns the final state vector.
	RunState(c *circuit.Circuit, env *ExecEnv) (*quantum.State, error)
	// Run executes the circuit for the given number of shots and
	// aggregates measured outcomes, exactly as Simulator.Run documents.
	Run(c *circuit.Circuit, shots int, env *ExecEnv) (*Result, error)
}

// ExecEnv is the per-run execution environment a Simulator hands its
// engine: the simulator's PRNG, noise model and fusion flag. It is only
// valid for the duration of one engine call.
type ExecEnv struct {
	Rng    *rand.Rand
	Noise  *NoiseModel
	Fusion bool
	// KernelWorkers bounds the amplitude-kernel parallelism of states the
	// engine creates: 0 sizes it to the machine, 1 keeps kernels serial.
	// RunParallel sets 1 on its shot workers so shot-level and
	// amplitude-level parallelism never multiply into oversubscription.
	KernelWorkers int
}

func (e *ExecEnv) noisy() bool { return !e.Noise.IsZero() }

// Engine registry names.
const (
	// EngineReference is the naive dense engine: generic matrix
	// application, per-gate matrix materialisation, linear-scan sampling.
	// It is the behavioural baseline every other engine is differentially
	// tested against.
	EngineReference = "reference"
	// EngineOptimized is the fast dense engine: specialized bit-twiddling
	// kernels, a precompiled per-circuit op/matrix table, chunk-parallel
	// amplitude application and O(log dim) cumulative sampling. Seeded
	// counts are identical to the reference engine.
	EngineOptimized = "optimized"
	// EngineStabilizer is the Aaronson–Gottesman tableau engine for
	// Clifford(+measurement) circuits: polynomial in qubit count, so GHZ,
	// surface-code and RB workloads run at 100+ qubits. Seeded counts are
	// identical to the dense engines on any circuit both can execute.
	EngineStabilizer = "stabilizer"
	// EngineAuto dispatches per circuit: the stabilizer tableau when the
	// circuit is Clifford and the noise model is Clifford-compatible, the
	// optimized dense engine otherwise.
	EngineAuto = "auto"
	// DefaultEngine is the engine used when none is selected.
	DefaultEngine = EngineOptimized
)

var (
	engineMu       sync.RWMutex
	engineRegistry = map[string]Engine{
		EngineReference:  referenceEngine{},
		EngineOptimized:  optimizedEngine{},
		EngineStabilizer: stabilizerEngine{},
		EngineAuto:       autoEngine{},
	}
)

// Reference returns the reference engine.
func Reference() Engine { return referenceEngine{} }

// Optimized returns the optimized dense engine.
func Optimized() Engine { return optimizedEngine{} }

// Stabilizer returns the Clifford tableau engine.
func Stabilizer() Engine { return stabilizerEngine{} }

// Auto returns the dispatching meta-engine.
func Auto() Engine { return autoEngine{} }

// Dispatcher is implemented by meta-engines (the auto engine) that pick
// a concrete engine per circuit. Callers that record or expose the
// engine actually executing a workload — core.Stack's report, the qserv
// span attributes and dispatch counter — resolve through this interface
// before running.
type Dispatcher interface {
	// Dispatch returns the engine that will execute the circuit under
	// the given noise model (nil means perfect execution).
	Dispatch(c *circuit.Circuit, noise *NoiseModel) Engine
}

// RegisterEngine adds an engine under its Name for EngineByName lookup —
// the extension point for alternative execution layers (sparse,
// tensor-network, remote hardware). Registering an existing name panics.
func RegisterEngine(e Engine) {
	engineMu.Lock()
	defer engineMu.Unlock()
	if _, dup := engineRegistry[e.Name()]; dup {
		panic(fmt.Sprintf("qx: engine %q already registered", e.Name()))
	}
	engineRegistry[e.Name()] = e
}

// EngineByName resolves an engine name; the empty string selects the
// default engine.
func EngineByName(name string) (Engine, error) {
	if name == "" {
		name = DefaultEngine
	}
	engineMu.RLock()
	e, ok := engineRegistry[name]
	engineMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("qx: unknown engine %q (have %v)", name, EngineNames())
	}
	return e, nil
}

// EngineNames returns the registered engine names, sorted.
func EngineNames() []string {
	engineMu.RLock()
	defer engineMu.RUnlock()
	out := make([]string, 0, len(engineRegistry))
	for n := range engineRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Noise helpers shared by every engine. They consume the ExecEnv PRNG in
// a fixed order, which is what keeps seeded counts identical across
// engines: any engine that walks gates in circuit order and calls these
// at the same points draws the same random sequence.

// applyEnvGateNoise inserts the error channels that follow a gate on the
// listed operand qubits in realistic mode, returning the number of
// discrete Pauli errors injected.
func applyEnvGateNoise(env *ExecEnv, st *quantum.State, qubits []int) int {
	p := env.Noise.DepolarizingProb
	if len(qubits) >= 2 {
		p = env.Noise.TwoQubitDepolarizingProb
	}
	injected := 0
	for _, q := range qubits {
		if applyPauliError(st, q, p, env.Rng) {
			injected++
		}
		applyEnvDecoherence(env, st, q)
	}
	return injected
}

func applyEnvDecoherence(env *ExecEnv, st *quantum.State, q int) {
	if gamma := env.Noise.ampDampingGamma(); gamma > 0 {
		applyAmplitudeDamping(st, q, gamma, env.Rng)
	}
	if lambda := env.Noise.dephasingLambda(); lambda > 0 {
		applyDephasing(st, q, lambda, env.Rng)
	}
}

// flipReadoutBit classically flips a measured bit with the model's
// readout-error probability.
func flipReadoutBit(env *ExecEnv, b int) int {
	if env.Noise.ReadoutError > 0 && env.Rng.Float64() < env.Noise.ReadoutError {
		return b ^ 1
	}
	return b
}

// applyEnvReadoutError flips each bit of a measured basis index with the
// readout-error probability. It must only be called on the noisy path
// (the deterministic perfect path hoists the no-noise check instead of
// paying a per-shot no-op call), and only for implicit end-of-shot
// MeasureAll outcomes — explicit measurement gates apply their readout
// flip at the gate via flipReadoutBit, and applying both would double the
// effective readout-error rate.
func applyEnvReadoutError(env *ExecEnv, idx, n int) int {
	if env.Noise.ReadoutError == 0 {
		return idx
	}
	for q := 0; q < n; q++ {
		if env.Rng.Float64() < env.Noise.ReadoutError {
			idx ^= 1 << uint(q)
		}
	}
	return idx
}

// applyEnvWait applies decoherence for an explicit wait of the given
// cycle count across every qubit.
func applyEnvWait(env *ExecEnv, st *quantum.State, numQubits int, cycles float64) {
	for q := 0; q < numQubits; q++ {
		for k := 0.0; k < cycles; k++ {
			applyEnvDecoherence(env, st, q)
		}
	}
}

func circuitMeasures(c *circuit.Circuit) bool {
	for _, g := range c.Gates {
		if g.Name == circuit.OpMeasure || g.Name == circuit.OpMeasureAll {
			return true
		}
	}
	return false
}
