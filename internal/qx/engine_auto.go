package qx

import (
	"repro/internal/circuit"
	"repro/internal/quantum"
)

// autoEngine is the dispatching meta-engine: per circuit it selects the
// stabilizer tableau when the circuit is Clifford and the noise model is
// Clifford-compatible, and the optimized dense engine otherwise. Both
// targets produce identical seeded counts wherever they overlap (the
// stabilizer engine mirrors the dense PRNG consumption draw for draw),
// so dispatch is a pure performance decision — it never changes
// results, only which asymptotic regime pays for them.
type autoEngine struct{}

// Name returns "auto".
func (autoEngine) Name() string { return EngineAuto }

// Dispatch implements Dispatcher: the concrete engine that will execute
// the circuit under the given noise model.
func (autoEngine) Dispatch(c *circuit.Circuit, noise *NoiseModel) Engine {
	if circuit.IsClifford(c) && noise.CliffordCompatible() {
		return stabilizerEngine{}
	}
	return optimizedEngine{}
}

// RunState dispatches and executes once to a final state vector.
func (a autoEngine) RunState(c *circuit.Circuit, env *ExecEnv) (*quantum.State, error) {
	return a.Dispatch(c, env.Noise).RunState(c, env)
}

// Run dispatches and executes the circuit for the given number of shots.
func (a autoEngine) Run(c *circuit.Circuit, shots int, env *ExecEnv) (*Result, error) {
	return a.Dispatch(c, env.Noise).Run(c, shots, env)
}
