package qx

import (
	"math/bits"
	"math/rand"
)

// Aaronson–Gottesman stabilizer tableau (the CHP algorithm,
// arXiv:quant-ph/0406196). The state of n qubits is represented by 2n
// Pauli strings — n destabilizers (rows 0..n-1) and n stabilizers (rows
// n..2n-1) — plus one scratch row used by deterministic measurement.
// Each row holds an X bit and a Z bit per qubit, packed into uint64
// words so gate conjugation and row multiplication run word-parallel,
// and a sign bit r: the row's Pauli is (-1)^r · X^x Z^z. Every Clifford
// gate updates the tableau in O(n) (column ops) and measurement in
// O(n^2/64) (row multiplications), which is what opens the 100+ qubit
// regime the dense engines cannot reach.

type tableau struct {
	n int // qubits
	w int // uint64 words per row: ceil(n/64)
	// x and z are (2n+1) rows by w words, flattened row-major.
	x []uint64
	z []uint64
	r []uint8 // sign bit per row
}

// newTableau returns the tableau of |0...0>: destabilizer i = X_i,
// stabilizer i = Z_i, all signs +.
func newTableau(n int) *tableau {
	w := (n + 63) / 64
	t := &tableau{
		n: n,
		w: w,
		x: make([]uint64, (2*n+1)*w),
		z: make([]uint64, (2*n+1)*w),
		r: make([]uint8, 2*n+1),
	}
	for i := 0; i < n; i++ {
		t.x[i*w+(i>>6)] |= 1 << (uint(i) & 63)
		t.z[(n+i)*w+(i>>6)] |= 1 << (uint(i) & 63)
	}
	return t
}

// clone deep-copies the tableau (used to snapshot the pre-measurement
// state for multi-shot replay).
func (t *tableau) clone() *tableau {
	c := &tableau{
		n: t.n,
		w: t.w,
		x: make([]uint64, len(t.x)),
		z: make([]uint64, len(t.z)),
		r: make([]uint8, len(t.r)),
	}
	copy(c.x, t.x)
	copy(c.z, t.z)
	copy(c.r, t.r)
	return c
}

func (t *tableau) xbit(row, q int) bool {
	return t.x[row*t.w+(q>>6)]&(1<<(uint(q)&63)) != 0
}

// applyH conjugates every row by H(q): X<->Z, phase flips on Y.
func (t *tableau) applyH(q int) {
	wq, m := q>>6, uint64(1)<<(uint(q)&63)
	for i := 0; i < 2*t.n; i++ {
		px, pz := &t.x[i*t.w+wq], &t.z[i*t.w+wq]
		xb, zb := *px&m, *pz&m
		if xb != 0 && zb != 0 {
			t.r[i] ^= 1
		}
		if (xb != 0) != (zb != 0) {
			*px ^= m
			*pz ^= m
		}
	}
}

// applyS conjugates by S(q): X -> Y, phase flips on Y.
func (t *tableau) applyS(q int) {
	wq, m := q>>6, uint64(1)<<(uint(q)&63)
	for i := 0; i < 2*t.n; i++ {
		px, pz := &t.x[i*t.w+wq], &t.z[i*t.w+wq]
		if *px&m != 0 {
			if *pz&m != 0 {
				t.r[i] ^= 1
			}
			*pz ^= m
		}
	}
}

// applySdag conjugates by S†(q) = Z·S: X -> -Y.
func (t *tableau) applySdag(q int) {
	wq, m := q>>6, uint64(1)<<(uint(q)&63)
	for i := 0; i < 2*t.n; i++ {
		px, pz := &t.x[i*t.w+wq], &t.z[i*t.w+wq]
		if *px&m != 0 {
			if *pz&m == 0 {
				t.r[i] ^= 1
			}
			*pz ^= m
		}
	}
}

// applyX conjugates by X(q): phase flips on Z and Y.
func (t *tableau) applyX(q int) {
	wq, m := q>>6, uint64(1)<<(uint(q)&63)
	for i := 0; i < 2*t.n; i++ {
		if t.z[i*t.w+wq]&m != 0 {
			t.r[i] ^= 1
		}
	}
}

// applyZ conjugates by Z(q): phase flips on X and Y.
func (t *tableau) applyZ(q int) {
	wq, m := q>>6, uint64(1)<<(uint(q)&63)
	for i := 0; i < 2*t.n; i++ {
		if t.x[i*t.w+wq]&m != 0 {
			t.r[i] ^= 1
		}
	}
}

// applyY conjugates by Y(q): phase flips on X and Z.
func (t *tableau) applyY(q int) {
	wq, m := q>>6, uint64(1)<<(uint(q)&63)
	for i := 0; i < 2*t.n; i++ {
		row := i * t.w
		if (t.x[row+wq]&m != 0) != (t.z[row+wq]&m != 0) {
			t.r[i] ^= 1
		}
	}
}

// applyCNOT conjugates by CNOT(c -> tq).
func (t *tableau) applyCNOT(c, tq int) {
	wc, mc := c>>6, uint64(1)<<(uint(c)&63)
	wt, mt := tq>>6, uint64(1)<<(uint(tq)&63)
	for i := 0; i < 2*t.n; i++ {
		row := i * t.w
		xc, zc := t.x[row+wc]&mc != 0, t.z[row+wc]&mc != 0
		xt, zt := t.x[row+wt]&mt != 0, t.z[row+wt]&mt != 0
		if xc && zt && (xt == zc) {
			t.r[i] ^= 1
		}
		if xc {
			t.x[row+wt] ^= mt
		}
		if zt {
			t.z[row+wc] ^= mc
		}
	}
}

// applyCZ conjugates by CZ(a, b): X_a -> X_a Z_b, X_b -> X_b Z_a.
func (t *tableau) applyCZ(a, b int) {
	wa, ma := a>>6, uint64(1)<<(uint(a)&63)
	wb, mb := b>>6, uint64(1)<<(uint(b)&63)
	for i := 0; i < 2*t.n; i++ {
		row := i * t.w
		xa, za := t.x[row+wa]&ma != 0, t.z[row+wa]&ma != 0
		xb, zb := t.x[row+wb]&mb != 0, t.z[row+wb]&mb != 0
		if xa && xb && (za != zb) {
			t.r[i] ^= 1
		}
		if xb {
			t.z[row+wa] ^= ma
		}
		if xa {
			t.z[row+wb] ^= mb
		}
	}
}

// applySWAP exchanges the X and Z columns of qubits a and b.
func (t *tableau) applySWAP(a, b int) {
	wa, ma := a>>6, uint64(1)<<(uint(a)&63)
	wb, mb := b>>6, uint64(1)<<(uint(b)&63)
	for i := 0; i < 2*t.n; i++ {
		row := i * t.w
		xa, xb := t.x[row+wa]&ma != 0, t.x[row+wb]&mb != 0
		if xa != xb {
			t.x[row+wa] ^= ma
			t.x[row+wb] ^= mb
		}
		za, zb := t.z[row+wa]&ma != 0, t.z[row+wb]&mb != 0
		if za != zb {
			t.z[row+wa] ^= ma
			t.z[row+wb] ^= mb
		}
	}
}

// rowmult multiplies row h by row i in place (the AG "rowsum"): the
// Pauli of row h becomes the product P_i · P_h with the correct sign,
// tracked word-parallel by counting the +i and -i contributions of each
// single-qubit Pauli product.
func (t *tableau) rowmult(h, i int) {
	hw, iw := h*t.w, i*t.w
	e := 0
	for k := 0; k < t.w; k++ {
		x1, z1 := t.x[iw+k], t.z[iw+k] // row i (left factor)
		x2, z2 := t.x[hw+k], t.z[hw+k] // row h (right factor)
		// +i from X·Y, Y·Z, Z·X; -i from X·Z, Y·X, Z·Y.
		pos := (x1 & ^z1 & x2 & z2) | (x1 & z1 & ^x2 & z2) | (^x1 & z1 & x2 & ^z2)
		neg := (x1 & ^z1 & ^x2 & z2) | (x1 & z1 & x2 & ^z2) | (^x1 & z1 & x2 & z2)
		e += bits.OnesCount64(pos) - bits.OnesCount64(neg)
		t.x[hw+k] = x1 ^ x2
		t.z[hw+k] = z1 ^ z2
	}
	tot := ((2*int(t.r[h]+t.r[i])+e)%4 + 4) % 4
	t.r[h] = uint8(tot >> 1)
}

// measureProb returns the probability that measuring qubit q in the
// computational basis yields 1 — always 0, 0.5 or 1 for a stabilizer
// state — together with the index of the pivot stabilizer row when the
// outcome is random (pivot = -1 when deterministic).
func (t *tableau) measureProb(q int) (p1 float64, pivot int) {
	for i := t.n; i < 2*t.n; i++ {
		if t.xbit(i, q) {
			return 0.5, i
		}
	}
	return float64(t.deterministicOutcome(q)), -1
}

// deterministicOutcome computes the forced measurement result of qubit q
// when no stabilizer anticommutes with Z_q: the product of the
// stabilizers whose destabilizer partners have X support on q fixes
// Z_q's sign.
func (t *tableau) deterministicOutcome(q int) int {
	s := 2 * t.n // scratch row
	sw := s * t.w
	for k := 0; k < t.w; k++ {
		t.x[sw+k] = 0
		t.z[sw+k] = 0
	}
	t.r[s] = 0
	for i := 0; i < t.n; i++ {
		if t.xbit(i, q) {
			t.rowmult(s, t.n+i)
		}
	}
	return int(t.r[s])
}

// collapse projects the state after a random measurement of qubit q with
// the given outcome, where pivot is the anticommuting stabilizer row
// found by measureProb.
func (t *tableau) collapse(q, pivot, outcome int) {
	for i := 0; i < 2*t.n; i++ {
		if i != pivot && t.xbit(i, q) {
			t.rowmult(i, pivot)
		}
	}
	// The old stabilizer becomes the destabilizer of the measured qubit;
	// the stabilizer row becomes ±Z_q.
	dw, pw := (pivot-t.n)*t.w, pivot*t.w
	copy(t.x[dw:dw+t.w], t.x[pw:pw+t.w])
	copy(t.z[dw:dw+t.w], t.z[pw:pw+t.w])
	t.r[pivot-t.n] = t.r[pivot]
	for k := 0; k < t.w; k++ {
		t.x[pw+k] = 0
		t.z[pw+k] = 0
	}
	t.z[pw+(q>>6)] |= 1 << (uint(q) & 63)
	t.r[pivot] = uint8(outcome)
}

// measureQubit measures qubit q, collapsing the state. It consumes
// exactly one rng.Float64 draw compared against P(1), mirroring the
// dense engines' quantum.State.MeasureQubit draw-for-draw so seeded
// runs agree bit-for-bit across engines.
func (t *tableau) measureQubit(q int, rng *rand.Rand) int {
	p1, pivot := t.measureProb(q)
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	if pivot >= 0 {
		t.collapse(q, pivot, outcome)
	}
	return outcome
}

// measureForced is measureQubit with the random branch pinned to 0 and
// no rng draw; it is used to extract one reference element of the
// state's computational-basis support.
func (t *tableau) measureForced(q int) int {
	p1, pivot := t.measureProb(q)
	if pivot >= 0 {
		t.collapse(q, pivot, 0)
		return 0
	}
	return int(p1)
}

// supportSampler samples computational-basis outcomes of a stabilizer
// state with a single uniform draw per shot, matching the dense
// engines' cumulative-distribution samplers. The support of a
// stabilizer state is an affine subspace {base ⊕ span(vecs)} over GF(2)
// with all 2^k elements equally likely; vecs is in reduced row-echelon
// form with strictly descending pivots and base has every pivot bit
// clear, so the basis-index j enumerates support elements in increasing
// integer order — exactly the order dense cumulative samplers walk.
type supportSampler struct {
	n    int
	w    int
	base []uint64
	vecs [][]uint64
}

// newSupportSampler destructively extracts the support of t.
func newSupportSampler(t *tableau) *supportSampler {
	s := &supportSampler{n: t.n, w: t.w}
	// Basis of the span: the X parts of the stabilizer generators,
	// Gauss-reduced over GF(2).
	rows := make([][]uint64, 0, t.n)
	for i := t.n; i < 2*t.n; i++ {
		row := make([]uint64, t.w)
		copy(row, t.x[i*t.w:(i+1)*t.w])
		rows = append(rows, row)
	}
	for b := t.n - 1; b >= 0; b-- {
		wb, mb := b>>6, uint64(1)<<(uint(b)&63)
		pivot := -1
		for ri, row := range rows {
			if row[wb]&mb != 0 {
				pivot = ri
				break
			}
		}
		if pivot < 0 {
			continue
		}
		v := rows[pivot]
		rows = append(rows[:pivot], rows[pivot+1:]...)
		for _, row := range rows {
			if row[wb]&mb != 0 {
				xorWords(row, v)
			}
		}
		for _, prev := range s.vecs {
			if prev[wb]&mb != 0 {
				xorWords(prev, v)
			}
		}
		s.vecs = append(s.vecs, v)
	}
	// One support element, canonicalised to the coset representative
	// with all pivot bits clear.
	s.base = make([]uint64, t.w)
	for q := 0; q < t.n; q++ {
		if t.measureForced(q) == 1 {
			s.base[q>>6] |= 1 << (uint(q) & 63)
		}
	}
	for _, v := range s.vecs {
		hb := highestBit(v)
		if s.base[hb>>6]&(1<<(uint(hb)&63)) != 0 {
			xorWords(s.base, v)
		}
	}
	return s
}

// sample draws one support element uniformly into out (length w). For
// k ≤ 52 span dimensions a single rng.Float64 draw selects the element,
// reproducing the dense samplers' draw sequence; wider spans (beyond any
// state a dense engine could ever hold) consume one draw per 32 basis
// bits.
func (s *supportSampler) sample(rng *rand.Rand, out []uint64) {
	copy(out, s.base)
	k := len(s.vecs)
	if k <= 52 {
		j := uint64(rng.Float64() * float64(uint64(1)<<uint(k)))
		if j >= uint64(1)<<uint(k) {
			j = uint64(1)<<uint(k) - 1
		}
		for i, v := range s.vecs {
			if j&(1<<uint(k-1-i)) != 0 {
				xorWords(out, v)
			}
		}
		return
	}
	for lo := 0; lo < k; lo += 32 {
		hi := lo + 32
		if hi > k {
			hi = k
		}
		chunk := uint64(rng.Float64() * float64(uint64(1)<<uint(hi-lo)))
		for i := lo; i < hi; i++ {
			if chunk&(1<<uint(hi-1-i)) != 0 {
				xorWords(out, s.vecs[i])
			}
		}
	}
}

func xorWords(dst, src []uint64) {
	for k := range dst {
		dst[k] ^= src[k]
	}
}

func highestBit(words []uint64) int {
	for k := len(words) - 1; k >= 0; k-- {
		if words[k] != 0 {
			return k*64 + 63 - bits.LeadingZeros64(words[k])
		}
	}
	return -1
}
