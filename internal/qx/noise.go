package qx

import (
	"math"
	"math/rand"

	"repro/internal/quantum"
)

// NoiseModel parameterises realistic-qubit execution. The zero value is a
// noise-free model; use nil for the perfect-qubit fast path.
type NoiseModel struct {
	// DepolarizingProb is the probability that each single-qubit gate is
	// followed by a uniformly random Pauli error on its operand.
	DepolarizingProb float64
	// TwoQubitDepolarizingProb is the per-operand error probability after
	// a two-qubit gate. Two-qubit gates dominate NISQ error budgets.
	TwoQubitDepolarizingProb float64
	// T1 and T2 are relaxation/dephasing times in nanoseconds. Zero
	// disables the corresponding channel.
	T1, T2 float64
	// GateTimeNs is the wall-clock duration ascribed to each gate for
	// decoherence purposes.
	GateTimeNs float64
	// ReadoutError is the probability that a measurement outcome is
	// flipped classically.
	ReadoutError float64
}

// Depolarizing returns a model with uniform per-gate depolarising
// probability p (two-qubit gates use 2p, reflecting their higher physical
// error rates) — the "simplistic error model" the paper names as the QX
// baseline.
func Depolarizing(p float64) *NoiseModel {
	return &NoiseModel{DepolarizingProb: p, TwoQubitDepolarizingProb: 2 * p}
}

// Superconducting returns a model with parameters typical of the
// transmon devices the paper's experimental stack targets: T1 ≈ 30 µs,
// T2 ≈ 20 µs, 20 ns single-qubit gates, 0.1 % gate error, 1 % readout
// error.
func Superconducting() *NoiseModel {
	return &NoiseModel{
		DepolarizingProb:         1e-3,
		TwoQubitDepolarizingProb: 5e-3,
		T1:                       30_000,
		T2:                       20_000,
		GateTimeNs:               20,
		ReadoutError:             0.01,
	}
}

// IsZero reports whether the model introduces no errors at all.
func (m *NoiseModel) IsZero() bool {
	if m == nil {
		return true
	}
	return m.DepolarizingProb == 0 && m.TwoQubitDepolarizingProb == 0 &&
		m.T1 == 0 && m.T2 == 0 && m.ReadoutError == 0
}

// ampDampingGamma returns the amplitude-damping probability for one gate
// duration.
func (m *NoiseModel) ampDampingGamma() float64 {
	if m.T1 <= 0 || m.GateTimeNs <= 0 {
		return 0
	}
	return 1 - math.Exp(-m.GateTimeNs/m.T1)
}

// dephasingLambda returns the phase-flip probability for one gate
// duration. Pure dephasing rate is 1/T2 − 1/(2·T1); the channel applies Z
// with probability (1−exp(−t·rate))/2.
func (m *NoiseModel) dephasingLambda() float64 {
	if m.T2 <= 0 || m.GateTimeNs <= 0 {
		return 0
	}
	rate := 1 / m.T2
	if m.T1 > 0 {
		rate -= 1 / (2 * m.T1)
		if rate < 0 {
			rate = 0
		}
	}
	return (1 - math.Exp(-m.GateTimeNs*rate)) / 2
}

// CliffordCompatible reports whether every channel in the model maps
// Pauli operators to Pauli operators, so a stochastic trajectory stays
// inside the stabilizer formalism: depolarizing and dephasing inject
// sampled Paulis and readout error flips classical bits, all fine, but
// amplitude damping (a finite T1 with a gate time) applies a
// non-unitary Kraus jump no tableau can represent. The stabilizer
// engine rejects incompatible models; the auto engine dispatches them
// to the dense path.
func (m *NoiseModel) CliffordCompatible() bool {
	return m.IsZero() || m.ampDampingGamma() == 0
}

// applyPauliError applies a uniformly random Pauli to qubit q with
// probability p.
func applyPauliError(s *quantum.State, q int, p float64, rng *rand.Rand) bool {
	if p <= 0 || rng.Float64() >= p {
		return false
	}
	s.ApplyOne(quantum.RandomPauli(rng), q)
	return true
}

// applyAmplitudeDamping applies one trajectory step of the amplitude
// damping channel with decay probability gamma to qubit q.
func applyAmplitudeDamping(s *quantum.State, q int, gamma float64, rng *rand.Rand) {
	if gamma <= 0 {
		return
	}
	// Kraus operators: K0 = diag(1, sqrt(1-γ)), K1 = |0><1|·sqrt(γ).
	// P(jump) = γ·P(q=1).
	p1 := s.ProbOne(q)
	pJump := gamma * p1
	if rng.Float64() < pJump {
		// Jump: project to |1> then flip to |0> (i.e. apply K1 and
		// renormalise).
		s.ProjectQubit(q, 1)
		s.ApplyOne(quantum.X, q)
		return
	}
	// No-jump evolution: apply K0 and renormalise.
	k0 := quantum.MatrixFromRows(
		[]complex128{1, 0},
		[]complex128{0, complex(math.Sqrt(1-gamma), 0)},
	)
	s.ApplyOne(k0, q)
	s.Normalize()
}

// applyDephasing applies a Z flip to qubit q with probability lambda.
func applyDephasing(s *quantum.State, q int, lambda float64, rng *rand.Rand) {
	if lambda <= 0 || rng.Float64() >= lambda {
		return
	}
	s.ApplyOne(quantum.Z, q)
}
