package qx

import (
	"math/rand"
	"sort"

	"repro/internal/quantum"
)

// cumSampler draws basis-state indices from a fixed state's measurement
// distribution in O(log dim) per shot via binary search over the
// cumulative distribution, replacing the O(dim) linear scan of
// State.SampleIndex. The prefix sums are accumulated in index order with
// the same floating-point operations as the linear scan, so a given PRNG
// draw returns the identical index — this is what keeps the optimized
// engine's seeded counts equal to the reference engine's.
type cumSampler struct {
	cum []float64
}

func newCumSampler(st *quantum.State) *cumSampler {
	cum := make([]float64, st.Dim())
	acc := 0.0
	for i := range cum {
		a := st.Amplitude(i)
		acc += real(a)*real(a) + imag(a)*imag(a)
		cum[i] = acc
	}
	return &cumSampler{cum: cum}
}

// sample consumes exactly one rng.Float64, like State.SampleIndex.
func (s *cumSampler) sample(rng *rand.Rand) int {
	r := rng.Float64()
	// Smallest i with r < cum[i] — the first index whose running
	// probability mass exceeds the draw, exactly as the linear scan
	// returns. The prefix sums are non-decreasing (each term is a square),
	// so binary search finds the same index.
	i := sort.Search(len(s.cum), func(i int) bool { return r < s.cum[i] })
	if i == len(s.cum) {
		return len(s.cum) - 1
	}
	return i
}
