// Package qx implements the QX simulator layer of the stack: execution of
// gate circuits on perfect qubits (no decoherence, no gate errors) or
// realistic qubits (stochastic Pauli errors, amplitude/phase damping and
// readout errors via quantum-trajectory unravelling), as described in
// §2.7 of the paper.
//
// # Engine layer
//
// Execution is split from configuration: a Simulator holds the run
// configuration (noise model, fusion flag, PRNG) and delegates the actual
// work to a pluggable Engine — the swappable execution layer the upper
// layers of the stack (core.Stack, the micro-architecture, qserv) target
// by interface rather than by implementation. Two engines ship:
//
//   - "reference" (Reference): the naive dense engine — per-gate matrix
//     materialisation, generic matrix application, linear-scan sampling.
//     It is the behavioural baseline.
//   - "optimized" (Optimized, the default): compiles the circuit once per
//     run into a typed op table with precomputed matrices, lowers the
//     common gate set to specialized bit-twiddling kernels, applies
//     amplitudes chunk-parallel across goroutines on large states, and
//     samples deterministic multi-shot runs through a cumulative
//     distribution with binary search.
//
// The two produce identical seeded counts — every optimized substitution
// preserves measurement probabilities bit-for-bit — which the randomized
// differential tests in engine_test.go enforce. Engine selection threads
// through the whole stack: core.Stack.Engine (part of the stack
// fingerprint), the qserv per-job "engine" field, and the -engine flags
// of cmd/qx and cmd/qservd.
//
// To add an engine, implement Engine (execute a validated circuit against
// a dense state, consuming randomness only from the ExecEnv PRNG) and
// RegisterEngine it; EngineByName then resolves it everywhere a name is
// accepted. An engine that walks gates in circuit order and draws from
// the PRNG at the same points as the reference engine keeps seeded counts
// comparable; one that does not must document its own determinism story.
//
// # Concurrency contract
//
// A Simulator is NOT safe for concurrent use: it owns a PRNG that is
// mutated during execution. The contract for parallel execution — worker
// pools in internal/qserv run many jobs simultaneously — is one Simulator
// per goroutine: construct a fresh Simulator (New/NewNoisy, each with its
// own seeded PRNG) per job and keep all per-job simulation state
// goroutine-local. core.Stack.RunCompiled follows this contract, so a
// shared *core.Stack may be executed from many goroutines at once.
//
// Engines are stateless and shared: all per-run state lives in the
// ExecEnv and in locals. Simulator.RunParallel fans one run's shots out
// across internally-created per-goroutine simulators with derived seeds,
// so callers get parallel shot batches without managing simulators
// themselves. Within a single run, the optimized engine additionally
// parallelises amplitude application across goroutines (bit-identical to
// serial; see quantum.State.SetParallelism) — that parallelism is
// confined to the engine call and invisible to the caller.
//
// Everything a Simulator reads from outside itself is safe to share:
// *circuit.Circuit values and their gates are only read (engines compile
// or fuse into their own structures; they never mutate the input),
// *NoiseModel is only read, and the package-level gate matrices and the
// circuit registry are immutable after init. A *Result is returned
// exclusively to its caller.
package qx
