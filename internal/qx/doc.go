// Package qx implements the QX simulator layer of the stack: execution of
// gate circuits on perfect qubits (no decoherence, no gate errors) or
// realistic qubits (stochastic Pauli errors, amplitude/phase damping and
// readout errors via quantum-trajectory unravelling), as described in
// §2.7 of the paper.
//
// # Engine layer
//
// Execution is split from configuration: a Simulator holds the run
// configuration (noise model, fusion flag, PRNG) and delegates the actual
// work to a pluggable Engine — the swappable execution layer the upper
// layers of the stack (core.Stack, the micro-architecture, qserv) target
// by interface rather than by implementation. Three engines ship, plus a
// dispatching meta-engine:
//
//   - "reference" (Reference): the naive dense engine — per-gate matrix
//     materialisation, generic matrix application, linear-scan sampling.
//     It is the behavioural baseline.
//   - "optimized" (Optimized, the default): compiles the circuit once per
//     run into a typed op table with precomputed matrices, lowers the
//     common gate set to specialized bit-twiddling kernels, applies
//     amplitudes chunk-parallel across goroutines on large states, and
//     samples deterministic multi-shot runs through a cumulative
//     distribution with binary search.
//   - "stabilizer" (Stabilizer): an Aaronson–Gottesman CHP tableau —
//     n destabilizer and n stabilizer generators as packed X/Z bit rows
//     plus a sign — O(n) per Clifford gate and O(n²) per measurement,
//     so cost is polynomial in qubit count where dense engines double
//     per qubit. It executes only Clifford circuits (see below) and,
//     with noise, only tableau-compatible models: stochastic Pauli
//     channels — depolarizing, T2 dephasing, readout flips — are fine,
//     amplitude damping (T1) is rejected because a non-unital channel
//     has no stabilizer unravelling. Results for registers wider than
//     63 qubits land in Result.WideCounts, keyed by bitstring.
//   - "auto" (Auto): a Dispatcher that inspects each circuit at run
//     time and picks Stabilizer when circuit.IsClifford holds and the
//     noise model is CliffordCompatible, Optimized otherwise. Layers
//     that want the report/metrics to name the real execution path
//     (core.Stack, qserv) resolve the Dispatcher once before running.
//
// The Clifford classifier (circuit.CliffordDecompose / IsClifford)
// recognises the structural Clifford gates (h, s, sdag, x, y, z, the
// ±90° axis rotations, cnot, cz, swap, iswap) and any parameterised
// rotation — rx, ry, rz, phase, u3, cphase, crz — whose angles are
// exact multiples of π/2 (within CliffordAngleTol), decomposing each
// into generator words over {H, S, S†, X, Y, Z, CNOT, CZ, SWAP}.
// Measurement, measure_all, prep_z, feed-forward conditions, barriers
// and classical display ops are all tableau-executable and do not break
// Cliffordness; t, toffoli, fredkin and unbound symbolic angles do.
//
// All engines produce identical seeded counts on circuits they share:
// the stabilizer engine draws from the PRNG at exactly the points the
// dense walk does (one draw per measurement against p₁ ∈ {0, ½, 1}, the
// same noise-channel draws, and support sampling that enumerates the
// stabilizer state's support in the dense sampler's integer order), so
// the randomized differential tests in engine_test.go enforce
// bit-identical counts across all three engines on perfect, noisy and
// feed-forward Clifford circuits. Engine selection threads through the
// whole stack: core.Stack.Engine (part of the stack fingerprint), the
// qserv per-job "engine" field (default auto), and the -engine flags of
// cmd/qx and cmd/qservd.
//
// To add an engine, implement Engine (execute a validated circuit against
// a dense state, consuming randomness only from the ExecEnv PRNG) and
// RegisterEngine it; EngineByName then resolves it everywhere a name is
// accepted. An engine that walks gates in circuit order and draws from
// the PRNG at the same points as the reference engine keeps seeded counts
// comparable; one that does not must document its own determinism story.
//
// # Concurrency contract
//
// A Simulator is NOT safe for concurrent use: it owns a PRNG that is
// mutated during execution. The contract for parallel execution — worker
// pools in internal/qserv run many jobs simultaneously — is one Simulator
// per goroutine: construct a fresh Simulator (New/NewNoisy, each with its
// own seeded PRNG) per job and keep all per-job simulation state
// goroutine-local. core.Stack.RunCompiled follows this contract, so a
// shared *core.Stack may be executed from many goroutines at once.
//
// Engines are stateless and shared: all per-run state lives in the
// ExecEnv and in locals. Simulator.RunParallel fans one run's shots out
// across internally-created per-goroutine simulators with derived seeds,
// so callers get parallel shot batches without managing simulators
// themselves. Within a single run, the optimized engine additionally
// parallelises amplitude application across goroutines (bit-identical to
// serial; see quantum.State.SetParallelism) — that parallelism is
// confined to the engine call and invisible to the caller.
//
// Everything a Simulator reads from outside itself is safe to share:
// *circuit.Circuit values and their gates are only read (engines compile
// or fuse into their own structures; they never mutate the input),
// *NoiseModel is only read, and the package-level gate matrices and the
// circuit registry are immutable after init. A *Result is returned
// exclusively to its caller.
//
// The seeded-determinism contract — bit-identical counts across engines
// for a fixed seed — is machine-checked by the qlint analyzer suite
// (internal/lint, run by `make lint` and CI): rngwalk forbids global
// math/rand draws, private PRNG construction outside New/RunParallel,
// and direct PRNG draws inside Engine methods (all randomness flows
// from the Simulator seed through ExecEnv.Rng and the shared helpers);
// detmap keeps map iteration order out of results and samplers.
package qx
