package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one resolved diagnostic: an analyzer name plus a
// position rendered against the loader's file set.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run loads every package and applies every analyzer, returning the
// findings sorted by position then analyzer name. A package that fails
// to load aborts the run: analyzers must not report against a broken
// type graph.
func Run(l *Loader, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	paths, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		for _, az := range analyzers {
			pass := &Pass{
				Analyzer:  az,
				Fset:      l.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: az.Name,
					Pos:      l.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if _, err := az.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", az.Name, path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
