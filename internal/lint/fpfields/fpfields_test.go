package fpfields

import (
	"testing"

	"repro/internal/lint/lintest"
)

func withFixture(t *testing.T, pkgs []string, fn func()) {
	t.Helper()
	saved := Packages
	Packages = pkgs
	defer func() { Packages = saved }()
	fn()
}

func TestFpfieldsFixture(t *testing.T) {
	withFixture(t, []string{"fpfix"}, func() {
		lintest.Run(t, Analyzer, "testdata/src/fpfix", "fpfix")
	})
}

func TestFpfieldsMissingMethods(t *testing.T) {
	withFixture(t, []string{"fpnone"}, func() {
		lintest.Run(t, Analyzer, "testdata/src/fpnone", "fpnone")
	})
}

func TestFpfieldsOutOfScope(t *testing.T) {
	withFixture(t, []string{"somewhere/else"}, func() {
		lintest.RunExpectClean(t, Analyzer, "testdata/src/fpfix", "fpfix")
	})
}
