// Package fpfields implements the qlint analyzer guarding cache-key
// completeness: every field of core.Stack must either be read by one of
// the stack's fingerprint methods (directly or through another receiver
// method they call) or explicitly opt out with an `fp:"-"` struct tag.
//
// The compile caches key on Stack.CompileFingerprint/PrefixFingerprint;
// a compilation-relevant field added without a fingerprint mention makes
// both cache levels silently serve stale artefacts across configuration
// changes — the worst failure mode the service has. fpfields turns that
// omission into a lint error at the field declaration, and also reports
// the inverse drift (a field tagged fp:"-" that a fingerprint method
// actually reads), so the tags stay honest documentation.
package fpfields

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"

	"repro/internal/lint"
)

// Configuration. Tests point these at fixture packages; the defaults
// bind the analyzer to the real cache-key contract.
var (
	// Packages scopes the analyzer.
	Packages = []string{"repro/internal/core"}
	// StructName is the cached-configuration struct.
	StructName = "Stack"
	// Methods are the fingerprint methods whose reads define coverage.
	Methods = []string{"Fingerprint", "CompileFingerprint", "PrefixFingerprint"}
	// TagKey is the struct-tag key carrying the "-" opt-out.
	TagKey = "fp"
)

// Analyzer reports Stack fields missing from every fingerprint method.
var Analyzer = &lint.Analyzer{
	Name: "fpfields",
	Doc: "verifies every core.Stack field is read by a fingerprint method " +
		"or tagged fp:\"-\", so new fields cannot silently alias compile-cache keys",
	Run: run,
}

func run(pass *lint.Pass) (any, error) {
	if pass.Pkg == nil || !lint.InScope(pass.Pkg.Path(), Packages) {
		return nil, nil
	}
	st := findStruct(pass, StructName)
	if st == nil {
		return nil, nil
	}
	methods := receiverMethods(pass, StructName)
	var roots []*ast.FuncDecl
	for _, m := range Methods {
		if fd, ok := methods[m]; ok {
			roots = append(roots, fd)
		}
	}
	if len(roots) == 0 {
		pass.Reportf(st.Pos(), "struct %s has none of the fingerprint methods %v: "+
			"the cache-key completeness check cannot run", StructName, Methods)
		return nil, nil
	}
	used := fieldsRead(pass, roots, methods)
	for _, field := range st.Fields.List {
		tag := fieldTag(field, TagKey)
		for _, name := range fieldNames(field) {
			switch {
			case tag == "-" && used[name]:
				pass.Reportf(field.Pos(), "field %s.%s is tagged %s:\"-\" but a fingerprint method reads it: "+
					"drop the tag or stop fingerprinting the field", StructName, name, TagKey)
			case tag != "-" && !used[name]:
				pass.Reportf(field.Pos(), "field %s.%s appears in no fingerprint method (%s): "+
					"fold it into a fingerprint if it affects compilation output, or tag it %s:\"-\" if it cannot",
					StructName, name, strings.Join(Methods, "/"), TagKey)
			}
		}
	}
	return nil, nil
}

// findStruct locates the declaration of the named struct type.
func findStruct(pass *lint.Pass, name string) *ast.StructType {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// receiverMethods indexes the struct's methods (value or pointer
// receiver) by name.
func receiverMethods(pass *lint.Pass, typeName string) map[string]*ast.FuncDecl {
	out := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == typeName {
				out[fd.Name.Name] = fd
			}
		}
	}
	return out
}

// fieldsRead computes the set of receiver fields read by the root
// methods, following calls to other receiver methods to a fixed point —
// Fingerprint covers everything CompileFingerprint covers because it
// calls it.
func fieldsRead(pass *lint.Pass, roots []*ast.FuncDecl, methods map[string]*ast.FuncDecl) map[string]bool {
	used := map[string]bool{}
	visited := map[string]bool{}
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if visited[fd.Name.Name] || fd.Body == nil {
			return
		}
		visited[fd.Name.Name] = true
		recv := receiverObject(pass, fd)
		if recv == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || pass.TypesInfo.ObjectOf(id) != recv {
				return true
			}
			name := sel.Sel.Name
			if callee, ok := methods[name]; ok {
				visit(callee)
				return true
			}
			used[name] = true
			return true
		})
	}
	for _, fd := range roots {
		visit(fd)
	}
	return used
}

// receiverObject resolves the method's receiver variable.
func receiverObject(pass *lint.Pass, fd *ast.FuncDecl) types.Object {
	names := fd.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[names[0]]
}

// fieldNames lists the declared names of a struct field (embedded
// fields use their type name).
func fieldNames(field *ast.Field) []string {
	if len(field.Names) > 0 {
		out := make([]string, len(field.Names))
		for i, n := range field.Names {
			out[i] = n.Name
		}
		return out
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if sel, ok := t.(*ast.SelectorExpr); ok {
		return []string{sel.Sel.Name}
	}
	if id, ok := t.(*ast.Ident); ok {
		return []string{id.Name}
	}
	return nil
}

// fieldTag extracts one struct-tag key's value.
func fieldTag(field *ast.Field, key string) string {
	if field.Tag == nil {
		return ""
	}
	tag := strings.Trim(field.Tag.Value, "`")
	return reflect.StructTag(tag).Get(key)
}
