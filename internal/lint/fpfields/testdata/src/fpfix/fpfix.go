// Package fpfix is the fpfields fixture: a Stack whose fingerprint
// methods cover some fields, miss one (flagged — the synthetic
// compilation-relevant field added without a fingerprint mention),
// honour fp:"-" opt-outs, and carry one stale opt-out (flagged).
package fpfix

import "fmt"

// Stack mirrors the shape of core.Stack for the cache-key check.
type Stack struct {
	Name   string
	Passes string
	Engine string
	// Lookahead is compilation-relevant but missing from every
	// fingerprint — the cache-poisoning bug class.
	Lookahead int // want `field Stack\.Lookahead appears in no fingerprint method`
	// Workers is execution tuning, correctly opted out.
	Workers int `fp:"-"`
	// Stale is fingerprinted AND opted out — the tag lies.
	Stale string `fp:"-"` // want `field Stack\.Stale is tagged fp:"-" but a fingerprint method reads it`
	// cache is unexported but still subject to the contract.
	cache map[string]string `fp:"-"`
}

// Fingerprint covers Engine and Stale directly and everything
// CompileFingerprint covers transitively.
func (s *Stack) Fingerprint() string {
	return s.CompileFingerprint() + "|" + s.Engine + s.Stale
}

// CompileFingerprint covers Name and the pass spec via a helper method.
func (s *Stack) CompileFingerprint() string {
	return fmt.Sprintf("%s|%s", s.Name, s.passSpec())
}

// passSpec is a non-fingerprint receiver method reached from one: the
// fields it reads count as covered.
func (s *Stack) passSpec() string { return s.Passes }

// Reset writes fields outside any fingerprint; reads here must not
// count as coverage.
func (s *Stack) Reset() {
	s.Lookahead = 0
	s.Workers = 0
}
