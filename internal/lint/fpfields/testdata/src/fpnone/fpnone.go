// Package fpnone is the fpfields degenerate fixture: the configured
// struct exists but none of the fingerprint methods do, so the
// completeness check cannot run — itself a finding, or renaming a
// fingerprint method would silently disable the analyzer.
package fpnone

// Stack has no fingerprint methods at all.
type Stack struct { // want `struct Stack has none of the fingerprint methods`
	Name string
}

// Hash is not one of the configured fingerprint methods.
func (s *Stack) Hash() string { return s.Name }
