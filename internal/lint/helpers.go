package lint

import "go/ast"

// Functions yields every function body in the files: declarations
// (with their *ast.FuncDecl) and function literals (decl == nil).
// Nested literals are yielded as their own units, so analyzers that
// reason about control flow within "one function" can treat each body
// independently.
func Functions(files []*ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n, n.Body)
				}
			case *ast.FuncLit:
				fn(nil, n.Body)
			}
			return true
		})
	}
}

// WalkBody walks a function body without descending into nested
// function literals (those are separate Functions units).
func WalkBody(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return visit(n)
	})
}

// InScope reports whether pkgPath matches any of the configured package
// paths exactly.
func InScope(pkgPath string, packages []string) bool {
	for _, p := range packages {
		if pkgPath == p {
			return true
		}
	}
	return false
}
