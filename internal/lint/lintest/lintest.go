// Package lintest is qlint's analysistest: it loads a fixture package
// from a testdata directory, runs one analyzer over it, and compares
// the diagnostics against `// want` comments in the fixture source.
//
// A want comment holds one regular expression per expected diagnostic
// on its line, backquoted or double-quoted:
//
//	for k := range m { // want `range over map`
//	x := rand.New(rand.NewSource(1)) // want `rand\.New ` `rand\.NewSource`
//
// Lines with findings but no matching want, and wants with no matching
// finding, both fail the test — exactly analysistest's contract.
package lintest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var argRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads the fixture package rooted at dir under the given import
// path, applies the analyzer, and reports every mismatch between its
// diagnostics and the fixture's want comments.
func Run(t *testing.T, az *lint.Analyzer, dir, importPath string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l.Extra = map[string]string{importPath: abs}
	findings, err := lint.Run(l, []string{importPath}, []*lint.Analyzer{az})
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		got[k] = append(got[k], f.Message)
	}
	wants, err := parseWants(abs)
	if err != nil {
		t.Fatal(err)
	}
	for k, patterns := range wants {
		msgs := got[k]
		for _, pat := range patterns {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", k.file, k.line, pat, err)
			}
			idx := -1
			for i, m := range msgs {
				if re.MatchString(m) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %v)", k.file, k.line, pat, msgs)
				continue
			}
			msgs = append(msgs[:idx], msgs[idx+1:]...)
		}
		if len(msgs) > 0 {
			t.Errorf("%s:%d: unexpected diagnostics beyond wants: %v", k.file, k.line, msgs)
		}
		delete(got, k)
	}
	for k, msgs := range got {
		t.Errorf("%s:%d: unexpected diagnostics: %v", k.file, k.line, msgs)
	}
}

// RunExpectClean loads the fixture and asserts the analyzer reports
// nothing, ignoring want comments — how scope/config negatives are
// tested (the same violation-rich fixture must go quiet when out of
// scope).
func RunExpectClean(t *testing.T, az *lint.Analyzer, dir, importPath string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l.Extra = map[string]string{importPath: abs}
	findings, err := lint.Run(l, []string{importPath}, []*lint.Analyzer{az})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected diagnostic: %s", f)
	}
}

// parseWants scans the fixture files for want comments, keyed by
// (file, line).
func parseWants(dir string) (map[struct {
	file string
	line int
}][]string, error) {
	type key = struct {
		file string
		line int
	}
	out := map[key][]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			args := argRe.FindAllString(m[1], -1)
			if len(args) == 0 {
				return nil, fmt.Errorf("%s:%d: want comment without quoted patterns", path, i+1)
			}
			for _, a := range args {
				pat, err := unquoteArg(a)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", path, i+1, err)
				}
				k := key{path, i + 1}
				out[k] = append(out[k], pat)
			}
		}
	}
	return out, nil
}

func unquoteArg(a string) (string, error) {
	if strings.HasPrefix(a, "`") {
		return strings.Trim(a, "`"), nil
	}
	return strconv.Unquote(a)
}
