// Package spanend implements the qlint analyzer guarding the obs span
// lifecycle: a span acquired from Span.StartChild/StartChildAt (and the
// root of a trace from Tracer.Start/StartAt) must be Ended on every
// return path of the function that created it — the lostcancel shape.
// A span that leaks stays in-flight forever: the trace endpoint serves
// it with duration 0, and latency accounting built on the span tree
// under-reports the phase.
//
// The analyzer tracks spans held in plain locals. A span that escapes
// the function — stored in a struct or another variable, passed as an
// argument, returned, or captured by a closure — transfers its
// lifecycle elsewhere and is not checked (the qserv job spans, closed
// at job-finish time, all take this shape). `defer x.End()` anywhere in
// the function satisfies the check. Escape hatch: //qlint:span-ok on
// the acquisition line.
package spanend

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Configuration. Tests may retarget the package holding the span types;
// fixtures normally just import the real obs package.
var (
	// ObsPath is the package defining Span and Tracer.
	ObsPath = "repro/internal/obs"
	// StartMethods are the acquisition methods returning a live span
	// (ChildAt returns an already-closed span and is exempt).
	StartMethods = map[string]bool{"StartChild": true, "StartChildAt": true, "Start": true, "StartAt": true}
	// EndMethods close a span (or, via Root().End*, a trace).
	EndMethods = map[string]bool{"End": true, "EndAt": true}
)

// Analyzer reports spans not ended on all return paths.
var Analyzer = &lint.Analyzer{
	Name: "spanend",
	Doc: "verifies every obs span from Tracer.Start/Span.StartChild is Ended " +
		"on all return paths of the acquiring function (lostcancel-style)",
	Run: run,
}

func run(pass *lint.Pass) (any, error) {
	if pass.Pkg == nil || pass.Pkg.Path() == ObsPath {
		// The obs package itself constructs and stores spans freely.
		return nil, nil
	}
	lint.Functions(pass.Files, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
		checkBody(pass, body)
	})
	return nil, nil
}

// checkBody finds span acquisitions in one function body and runs the
// all-paths check for each non-escaping one.
func checkBody(pass *lint.Pass, body *ast.BlockStmt) {
	lint.WalkBody(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if !isStartCall(pass, as.Rhs[0]) {
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			return true
		}
		if pass.Exempted(as.Pos(), "span-ok") {
			return true
		}
		if escapes(pass, body, obj) {
			return true
		}
		if deferredEnd(pass, body, obj) {
			return true
		}
		list, idx := enclosingList(body, as)
		if list == nil {
			return true
		}
		c := &checker{pass: pass, obj: obj, name: id.Name, acquired: as.Pos()}
		ended, terminated := c.walk(list[idx+1:], false)
		// Falling off the end of the function body without ending the
		// span leaks it just like an early return does. Only the
		// function's top-level list proves fall-through reaches the
		// function end; nested lists flow into code this walker does
		// not see, so they stay silent.
		if !terminated && !ended && sameList(body.List, list) {
			pass.Reportf(as.Pos(), "span %s is not ended on the fall-through path: "+
				"add %s.End() before the function returns or defer it at acquisition", c.name, c.name)
		}
		return true
	})
}

// isStartCall reports whether the expression is a call to one of the
// obs acquisition methods.
func isStartCall(pass *lint.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !StartMethods[sel.Sel.Name] {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == ObsPath
}

// escapes reports whether the span object is used in any way other
// than as the receiver of a method call or a comparison operand:
// stored, passed, returned or captured uses hand the End
// responsibility to someone this function cannot see.
func escapes(pass *lint.Pass, body *ast.BlockStmt, obj types.Object) bool {
	escaped := false
	// parent-tracked walk: maintain a stack to classify each use site.
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if escaped {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if _, ok := n.(*ast.FuncLit); ok && len(stack) > 1 {
			// A closure referencing the span captures it.
			captured := false
			ast.Inspect(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					captured = true
				}
				return !captured
			})
			if captured {
				escaped = true
			}
			stack = stack[:len(stack)-1]
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		// Receiver position — x.Method(...) — keeps ownership here, and
		// a comparison (`if x != nil`) only inspects the pointer;
		// everything else escapes.
		if len(stack) >= 2 {
			if _, ok := stack[len(stack)-2].(*ast.BinaryExpr); ok {
				return true
			}
		}
		if len(stack) >= 3 {
			if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.X == id {
				if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == sel {
					return true
				}
			}
		}
		escaped = true
		return false
	}
	ast.Inspect(body, visit)
	return escaped
}

// deferredEnd reports whether the function defers an End on the span —
// directly (`defer x.End()`); closures were already classed as escapes.
func deferredEnd(pass *lint.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	lint.WalkBody(body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isEndCall(pass, ds.Call, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isEndCall reports whether the call ends the tracked object: a call to
// an End method whose receiver chain is rooted at the object (covers
// both span.End() and trace.Root().EndAt(t)).
func isEndCall(pass *lint.Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !EndMethods[sel.Sel.Name] {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != ObsPath {
		return false
	}
	return rootIdentIs(pass, sel.X, obj)
}

// rootIdentIs walks selector/call chains to the leftmost identifier.
func rootIdentIs(pass *lint.Pass, e ast.Expr, obj types.Object) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x] == obj
		case *ast.SelectorExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// enclosingList finds the statement list directly containing stmt.
func enclosingList(body *ast.BlockStmt, stmt ast.Stmt) ([]ast.Stmt, int) {
	var list []ast.Stmt
	idx := -1
	lint.WalkBody(body, func(n ast.Node) bool {
		if idx >= 0 {
			return false
		}
		var stmts []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			stmts = b.List
		case *ast.CaseClause:
			stmts = b.Body
		case *ast.CommClause:
			stmts = b.Body
		default:
			return true
		}
		for i, s := range stmts {
			if s == stmt {
				list, idx = stmts, i
				return false
			}
		}
		return true
	})
	if idx < 0 {
		return nil, -1
	}
	return list, idx
}

func sameList(a, b []ast.Stmt) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// checker runs the conservative all-paths walk: every return statement
// reachable after acquisition must be preceded by an End on its path.
type checker struct {
	pass     *lint.Pass
	obj      types.Object
	name     string
	acquired token.Pos
}

// walk interprets a statement list with the given "already ended"
// state. It returns the state at fall-through and whether the list
// terminates (returns/panics on every path it models).
func (c *checker) walk(stmts []ast.Stmt, ended bool) (endedOut, terminated bool) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if isEndCall(c.pass, call, c.obj) {
					ended = true
				} else if isTerminalCall(c.pass, call) {
					return ended, true
				}
			}
		case *ast.ReturnStmt:
			if !ended {
				c.pass.Reportf(s.Pos(), "return without ending span %s (started at %s): "+
					"the span stays in-flight forever; call %s.End() on this path or defer it",
					c.name, c.pass.Fset.Position(c.acquired), c.name)
			}
			return ended, true
		case *ast.IfStmt:
			ended, terminated = c.walkIf(s, ended)
			if terminated {
				return ended, true
			}
		case *ast.BlockStmt:
			var term bool
			ended, term = c.walk(s.List, ended)
			if term {
				return ended, true
			}
		case *ast.ForStmt:
			// The body may run zero times: diagnose paths inside, but
			// carry the pre-loop state forward.
			c.walk(s.Body.List, ended)
		case *ast.RangeStmt:
			c.walk(s.Body.List, ended)
		case *ast.SwitchStmt:
			ended = c.walkCases(s.Body, ended)
		case *ast.TypeSwitchStmt:
			ended = c.walkCases(s.Body, ended)
		case *ast.SelectStmt:
			ended = c.walkCases(s.Body, ended)
		case *ast.LabeledStmt:
			var term bool
			ended, term = c.walk([]ast.Stmt{s.Stmt}, ended)
			if term {
				return ended, true
			}
		case *ast.BranchStmt:
			// break/continue/goto leave this list; the jump target is
			// outside the model, so stay silent about it.
			return ended, true
		case *ast.GoStmt, *ast.DeferStmt, *ast.DeclStmt, *ast.AssignStmt,
			*ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
			// No control transfer, no End (an End buried in an
			// assignment RHS is not a shape this repo uses).
		}
	}
	return ended, false
}

// walkIf merges the two branches of an if statement.
func (c *checker) walkIf(s *ast.IfStmt, ended bool) (endedOut, terminated bool) {
	thenEnded, thenTerm := c.walk(s.Body.List, ended)
	elseEnded, elseTerm := ended, false
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		elseEnded, elseTerm = c.walk(e.List, ended)
	case *ast.IfStmt:
		elseEnded, elseTerm = c.walkIf(e, ended)
	}
	switch {
	case thenTerm && elseTerm:
		return ended, true
	case thenTerm:
		return elseEnded, false
	case elseTerm:
		return thenEnded, false
	default:
		return thenEnded && elseEnded, false
	}
}

// walkCases conservatively merges switch/select clauses: the state
// becomes "ended" only when a default clause exists and every clause
// ends the span (or terminates).
func (c *checker) walkCases(body *ast.BlockStmt, ended bool) bool {
	hasDefault := false
	allEnd := true
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
			if cl.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = cl.Body
			if cl.Comm == nil {
				hasDefault = true
			}
		default:
			continue
		}
		clEnded, clTerm := c.walk(stmts, ended)
		if !clEnded && !clTerm {
			allEnd = false
		}
	}
	return ended || (hasDefault && allEnd)
}

// isTerminalCall recognises calls that never return: panic and os.Exit.
func isTerminalCall(pass *lint.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			if _, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
				return true
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok &&
				pn.Imported().Path() == "os" && fun.Sel.Name == "Exit" {
				return true
			}
		}
	}
	return false
}
